package dfi_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestProcessesEndToEnd builds the real binaries and runs the deployment
// the README documents: controllerd ← dfid ← cbench, administered with
// dfictl (including a policy document via `dfictl policy apply`).
func TestProcessesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns processes")
	}
	binDir := t.TempDir()
	for _, name := range []string{"dfid", "controllerd", "cbench", "dfictl"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	ctlAddr := freeAddr(t)
	dfiAddr := freeAddr(t)
	adminAddr := freeAddr(t)

	ctld := startProc(t, filepath.Join(binDir, "controllerd"), "-listen", ctlAddr)
	defer stopProc(ctld)
	waitListening(t, ctlAddr)

	dfid := startProc(t, filepath.Join(binDir, "dfid"),
		"-listen", dfiAddr, "-controller", ctlAddr, "-admin", adminAddr)
	defer stopProc(dfid)
	waitListening(t, dfiAddr)
	waitListening(t, adminAddr)

	dfictl := func(args ...string) string {
		t.Helper()
		full := append([]string{"-admin", "http://" + adminAddr}, args...)
		out, err := exec.Command(filepath.Join(binDir, "dfictl"), full...).CombinedOutput()
		if err != nil {
			t.Fatalf("dfictl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Policy administration over the real admin API.
	dfictl("pdp", "register", "ops", "50")
	dfictl("allow", "-pdp", "ops", "-src-user", "alice", "-dst-host", "mail")
	if out := dfictl("rules"); !strings.Contains(out, "alice") {
		t.Fatalf("rules output missing the inserted rule:\n%s", out)
	}

	// Apply a policy file through dfictl.
	policyPath := filepath.Join(binDir, "corp.policy")
	policyText := "pdp corp priority 60\nallow proto tcp from host a to host b\n"
	if err := os.WriteFile(policyPath, []byte(policyText), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := dfictl("policy", "apply", policyPath); !strings.Contains(out, "1 rule(s) inserted, 0 revoked") {
		t.Fatalf("apply output: %s", out)
	}
	if out := dfictl("policy", "show"); !strings.Contains(out, "pdp corp priority 60") {
		t.Fatalf("policy show output: %s", out)
	}

	// cbench drives real packet-ins through dfid to the controller.
	out, err := exec.Command(filepath.Join(binDir, "cbench"),
		"-connect", dfiAddr, "-mode", "latency", "-flows", "15").CombinedOutput()
	if err != nil {
		t.Fatalf("cbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "latency over 15 flows") {
		t.Fatalf("cbench output: %s", out)
	}

	// The control plane saw and decided the flows.
	stats := dfictl("stats")
	if !strings.Contains(stats, "pcp processed:    15") {
		t.Fatalf("stats after cbench:\n%s", stats)
	}
	// cbench has exited: its switch session must have been detached (the
	// proxy keeps no cross-session state).
	if out := dfictl("switches"); !strings.Contains(out, "no switches attached") {
		t.Fatalf("switches output after disconnect: %s", out)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	return cmd
}

func stopProc(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(fmt.Sprintf("nothing listening on %s", addr))
}
