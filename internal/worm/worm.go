// Package worm implements the paper's NotPetya surrogate (§V-B): a
// self-propagating malware model built from the published propagation
// logic. An infected instance performs reconnaissance to build a target
// list, then loops over the shuffled list serially, trying each target
// first with a vulnerability exploit and, if that fails, with credential
// theft — remote access using a cached credential that holds Local
// Administrator on the target. Between sweeps it waits three minutes; after
// a random 10–60 minute lifetime it times out and stops propagating (the
// ransomware "lock down").
package worm

import (
	"math/rand"
	"sync"
	"time"

	"github.com/dfi-sdn/dfi/internal/simclock"
)

// SMBPort is the propagation port the surrogate attacks over (the
// EternalBlue/SMB vector NotPetya used).
const SMBPort uint16 = 445

// Params are the surrogate's timing constants. The three-minute sweep wait
// and the 10–60 minute lifetime are the paper's; the per-attempt costs are
// calibrated to reproduce the infection-curve knees of Figure 5a.
type Params struct {
	// SweepWait separates full passes over the target list (paper: 3 min).
	SweepWait time.Duration
	// MinLifetime/MaxLifetime bound the uniformly random propagation
	// window (paper: 10–60 min).
	MinLifetime time.Duration
	MaxLifetime time.Duration
	// BlockedCost is the connection timeout paid when the network denies
	// the flow.
	BlockedCost time.Duration
	// ExploitCost is the time to deliver the exploit payload (success).
	ExploitCost time.Duration
	// ExploitFailCost is the time for the exploit to fail on a patched
	// target.
	ExploitFailCost time.Duration
	// CredentialCost is the time for one remote log-on with stolen
	// credentials.
	CredentialCost time.Duration
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		SweepWait:       3 * time.Minute,
		MinLifetime:     10 * time.Minute,
		MaxLifetime:     60 * time.Minute,
		BlockedCost:     10 * time.Second,
		ExploitCost:     time.Second,
		ExploitFailCost: 500 * time.Millisecond,
		CredentialCost:  500 * time.Millisecond,
	}
}

// Network is the worm's view of the environment, provided by the testbed.
type Network interface {
	// Targets returns the reconnaissance result for an instance on host:
	// every other end host and server (control-plane hosts are protected
	// from recon and out of scope).
	Targets(host string) []string
	// TryConnect attempts a TCP connection src→dst on port, reporting
	// whether the network (DFI) admitted it bidirectionally.
	TryConnect(src, dst string, port uint16) bool
	// Vulnerable reports whether dst is exploitable.
	Vulnerable(dst string) bool
	// CachedCredentials returns the credentials dumpable on host.
	CachedCredentials(host string) []string
	// HasLocalAdmin reports whether user can install software on dst
	// remotely.
	HasLocalAdmin(user, dst string) bool
}

// Outbreak coordinates worm instances over a simulated clock and records
// infection times.
type Outbreak struct {
	params  Params
	network Network
	clock   *simclock.Simulated
	rng     *rand.Rand
	rngMu   sync.Mutex

	mu        sync.Mutex
	infected  map[string]time.Time
	instances int
	onInfect  func(host string)
}

// SetOnInfect registers a callback invoked (outside the outbreak's lock,
// in the infecting goroutine) whenever a new host becomes infected — the
// hook detection/incident-response models attach to. It must be set before
// the first Infect.
func (o *Outbreak) SetOnInfect(fn func(host string)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.onInfect = fn
}

// NewOutbreak prepares an outbreak; no host is infected yet.
func NewOutbreak(params Params, network Network, clock *simclock.Simulated, seed int64) *Outbreak {
	return &Outbreak{
		params:   params,
		network:  network,
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		infected: make(map[string]time.Time),
	}
}

// Infect marks host as infected and starts its propagation instance as a
// simulated goroutine. Re-infection is a no-op.
func (o *Outbreak) Infect(host string) {
	o.mu.Lock()
	if _, done := o.infected[host]; done {
		o.mu.Unlock()
		return
	}
	o.infected[host] = o.clock.Now()
	o.instances++
	hook := o.onInfect
	o.mu.Unlock()

	if hook != nil {
		hook(host)
	}

	o.rngMu.Lock()
	lifetime := o.params.MinLifetime +
		time.Duration(o.rng.Int63n(int64(o.params.MaxLifetime-o.params.MinLifetime)+1))
	shuffleSeed := o.rng.Int63()
	o.rngMu.Unlock()

	o.clock.Go(func() {
		o.run(host, lifetime, shuffleSeed)
	})
}

// IsInfected reports whether host has been infected.
func (o *Outbreak) IsInfected(host string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.infected[host]
	return ok
}

// Infections returns a copy of the infection times.
func (o *Outbreak) Infections() map[string]time.Time {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]time.Time, len(o.infected))
	for h, at := range o.infected {
		out[h] = at
	}
	return out
}

// Count returns the number of infected hosts.
func (o *Outbreak) Count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.infected)
}

// run is one instance's propagation loop (paper §V-B threat model).
func (o *Outbreak) run(self string, lifetime time.Duration, shuffleSeed int64) {
	deadline := o.clock.Now().Add(lifetime)
	targets := o.network.Targets(self)
	rng := rand.New(rand.NewSource(shuffleSeed))

	for o.clock.Now().Before(deadline) {
		// The target list is shuffled on each infected host (and the
		// order varies across sweeps as real scanning does).
		rng.Shuffle(len(targets), func(i, j int) {
			targets[i], targets[j] = targets[j], targets[i]
		})
		for _, target := range targets {
			if !o.clock.Now().Before(deadline) {
				return
			}
			o.attempt(self, target)
		}
		o.clock.Sleep(o.params.SweepWait)
	}
}

// attempt tries to propagate self→target: exploit first, then credential
// theft. Both vectors require the network to admit the SMB connection.
func (o *Outbreak) attempt(self, target string) {
	if !o.network.TryConnect(self, target, SMBPort) {
		o.clock.Sleep(o.params.BlockedCost)
		return
	}
	if o.network.Vulnerable(target) {
		o.clock.Sleep(o.params.ExploitCost)
		o.Infect(target)
		return
	}
	o.clock.Sleep(o.params.ExploitFailCost)

	// Exploit failed: dump local credentials and try each that holds
	// Local Administrator on the target.
	for _, cred := range o.network.CachedCredentials(self) {
		if !o.network.HasLocalAdmin(cred, target) {
			continue
		}
		o.clock.Sleep(o.params.CredentialCost)
		o.Infect(target)
		return
	}
}
