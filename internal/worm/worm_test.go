package worm

import (
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/simclock"
)

var epoch = time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)

// fakeNet is a scripted worm environment.
type fakeNet struct {
	mu       sync.Mutex
	hosts    []string
	reach    func(src, dst string) bool
	vuln     map[string]bool
	creds    map[string][]string
	admin    func(user, dst string) bool
	attempts int
}

func (f *fakeNet) Targets(host string) []string {
	out := make([]string, 0, len(f.hosts))
	for _, h := range f.hosts {
		if h != host {
			out = append(out, h)
		}
	}
	return out
}

func (f *fakeNet) TryConnect(src, dst string, _ uint16) bool {
	f.mu.Lock()
	f.attempts++
	f.mu.Unlock()
	if f.reach == nil {
		return true
	}
	return f.reach(src, dst)
}

func (f *fakeNet) Vulnerable(dst string) bool { return f.vuln[dst] }

func (f *fakeNet) CachedCredentials(host string) []string { return f.creds[host] }

func (f *fakeNet) HasLocalAdmin(user, dst string) bool {
	if f.admin == nil {
		return false
	}
	return f.admin(user, dst)
}

func fastParams() Params {
	p := DefaultParams()
	p.SweepWait = 10 * time.Second
	p.MinLifetime = 2 * time.Minute
	p.MaxLifetime = 5 * time.Minute
	return p
}

func TestExploitVectorSpreads(t *testing.T) {
	clk := simclock.NewSimulated(epoch)
	net := &fakeNet{
		hosts: []string{"a", "b", "c"},
		vuln:  map[string]bool{"b": true, "c": true},
	}
	o := NewOutbreak(fastParams(), net, clk, 1)
	o.Infect("a")
	clk.Run()
	if o.Count() != 3 {
		t.Fatalf("infected %d/3", o.Count())
	}
}

func TestCredentialVectorNeedsAdminCred(t *testing.T) {
	clk := simclock.NewSimulated(epoch)
	net := &fakeNet{
		hosts: []string{"a", "b", "c"},
		vuln:  map[string]bool{}, // nothing exploitable
		creds: map[string][]string{"a": {"u-a"}},
		admin: func(user, dst string) bool { return user == "u-a" && dst == "b" },
	}
	o := NewOutbreak(fastParams(), net, clk, 1)
	o.Infect("a")
	clk.Run()
	if !o.IsInfected("b") {
		t.Fatal("credential vector failed against b")
	}
	if o.IsInfected("c") {
		t.Fatal("c infected without exploit or admin credential")
	}
}

func TestUnreachableTargetsSafe(t *testing.T) {
	clk := simclock.NewSimulated(epoch)
	net := &fakeNet{
		hosts: []string{"a", "b"},
		vuln:  map[string]bool{"b": true},
		reach: func(string, string) bool { return false },
	}
	o := NewOutbreak(fastParams(), net, clk, 1)
	o.Infect("a")
	clk.Run()
	if o.Count() != 1 {
		t.Fatalf("infected %d, want isolated foothold", o.Count())
	}
	if net.attempts == 0 {
		t.Fatal("worm never tried")
	}
}

func TestLifetimeBoundsPropagation(t *testing.T) {
	clk := simclock.NewSimulated(epoch)
	params := fastParams()
	net := &fakeNet{hosts: []string{"a", "b"}, vuln: map[string]bool{"b": true}}
	o := NewOutbreak(params, net, clk, 1)
	o.Infect("a")
	end := clk.Run()
	// All activity must stop within every instance's max lifetime plus
	// one final sweep.
	latest := epoch.Add(2*params.MaxLifetime + params.SweepWait + time.Minute)
	if end.After(latest) {
		t.Fatalf("simulation ran until %v, after %v", end, latest)
	}
}

func TestReinfectionIsNoOp(t *testing.T) {
	clk := simclock.NewSimulated(epoch)
	net := &fakeNet{hosts: []string{"a"}}
	o := NewOutbreak(fastParams(), net, clk, 1)
	o.Infect("a")
	o.Infect("a")
	clk.Run()
	if o.Count() != 1 {
		t.Fatalf("count = %d", o.Count())
	}
	inf := o.Infections()
	if len(inf) != 1 {
		t.Fatalf("infections = %v", inf)
	}
}

func TestInfectionTimesMonotone(t *testing.T) {
	clk := simclock.NewSimulated(epoch)
	net := &fakeNet{
		hosts: []string{"a", "b", "c", "d"},
		vuln:  map[string]bool{"b": true, "c": true, "d": true},
	}
	o := NewOutbreak(fastParams(), net, clk, 7)
	o.Infect("a")
	clk.Run()
	for host, at := range o.Infections() {
		if at.Before(epoch) {
			t.Fatalf("%s infected at %v, before epoch", host, at)
		}
	}
	if at := o.Infections()["a"]; !at.Equal(epoch) {
		t.Fatalf("foothold time = %v", at)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() map[string]time.Time {
		clk := simclock.NewSimulated(epoch)
		net := &fakeNet{
			hosts: []string{"a", "b", "c", "d", "e"},
			vuln:  map[string]bool{"b": true, "d": true},
			creds: map[string][]string{"a": {"u"}, "b": {"u"}, "d": {"u"}},
			admin: func(user, dst string) bool { return dst == "c" || dst == "e" },
		}
		o := NewOutbreak(fastParams(), net, clk, 99)
		o.Infect("a")
		clk.Run()
		return o.Infections()
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("non-deterministic: %v vs %v", first, second)
	}
	for host, at := range first {
		if !second[host].Equal(at) {
			t.Fatalf("non-deterministic time for %s: %v vs %v", host, at, second[host])
		}
	}
}
