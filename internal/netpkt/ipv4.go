package netpkt

import (
	"encoding/binary"
	"fmt"
)

// IPv4Packet is an IPv4 datagram (no options).
type IPv4Packet struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src      IPv4
	Dst      IPv4
	Payload  []byte
}

const ipv4HeaderLen = 20

// Marshal serializes the datagram, computing the header checksum.
func (p *IPv4Packet) Marshal() []byte {
	b := make([]byte, ipv4HeaderLen+len(p.Payload))
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(ipv4HeaderLen+len(p.Payload)))
	binary.BigEndian.PutUint16(b[4:6], p.ID)
	// flags+fragment offset zero
	ttl := p.TTL
	if ttl == 0 {
		ttl = 64
	}
	b[8] = ttl
	b[9] = p.Protocol
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:ipv4HeaderLen]))
	copy(b[ipv4HeaderLen:], p.Payload)
	return b
}

// UnmarshalIPv4 parses an IPv4 datagram. The returned payload aliases b.
func UnmarshalIPv4(b []byte) (*IPv4Packet, error) {
	if len(b) < ipv4HeaderLen {
		return nil, fmt.Errorf("ipv4: %w", ErrTruncated)
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("ipv4: version %d", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("ipv4: bad IHL %d: %w", ihl, ErrTruncated)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total > len(b) || total < ihl {
		total = len(b)
	}
	p := &IPv4Packet{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Protocol: b[9],
		Payload:  b[ihl:total],
	}
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	return p, nil
}

// Checksum computes the RFC 1071 internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

func pseudoHeaderSum(src, dst IPv4, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

func l4Checksum(src, dst IPv4, proto uint8, seg []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i : i+2]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
