package netpkt

import (
	"encoding/binary"
	"fmt"
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// TCPSegment is a TCP segment (no options).
type TCPSegment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Payload []byte
}

const tcpHeaderLen = 20

// Marshal serializes the segment, computing the checksum against the given
// pseudo-header addresses.
func (t *TCPSegment) Marshal(src, dst IPv4) []byte {
	b := make([]byte, tcpHeaderLen+len(t.Payload))
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = t.Flags
	window := t.Window
	if window == 0 {
		window = 65535
	}
	binary.BigEndian.PutUint16(b[14:16], window)
	copy(b[tcpHeaderLen:], t.Payload)
	binary.BigEndian.PutUint16(b[16:18], l4Checksum(src, dst, ProtoTCP, b))
	return b
}

// UnmarshalTCP parses a TCP segment. The returned payload aliases b.
func UnmarshalTCP(b []byte) (*TCPSegment, error) {
	if len(b) < tcpHeaderLen {
		return nil, fmt.Errorf("tcp: %w", ErrTruncated)
	}
	off := int(b[12]>>4) * 4
	if off < tcpHeaderLen || len(b) < off {
		return nil, fmt.Errorf("tcp: bad data offset %d: %w", off, ErrTruncated)
	}
	return &TCPSegment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Payload: b[off:],
	}, nil
}

// UDPDatagram is a UDP datagram.
type UDPDatagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

const udpHeaderLen = 8

// Marshal serializes the datagram, computing the checksum against the given
// pseudo-header addresses.
func (u *UDPDatagram) Marshal(src, dst IPv4) []byte {
	b := make([]byte, udpHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	copy(b[udpHeaderLen:], u.Payload)
	binary.BigEndian.PutUint16(b[6:8], l4Checksum(src, dst, ProtoUDP, b))
	return b
}

// UnmarshalUDP parses a UDP datagram. The returned payload aliases b.
func UnmarshalUDP(b []byte) (*UDPDatagram, error) {
	if len(b) < udpHeaderLen {
		return nil, fmt.Errorf("udp: %w", ErrTruncated)
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < udpHeaderLen || length > len(b) {
		length = len(b)
	}
	return &UDPDatagram{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: b[udpHeaderLen:length],
	}, nil
}

// ICMP message types.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMPMessage is an ICMP message.
type ICMPMessage struct {
	Type    uint8
	Code    uint8
	Payload []byte
}

const icmpHeaderLen = 4

// Marshal serializes the message, computing the checksum.
func (m *ICMPMessage) Marshal() []byte {
	b := make([]byte, icmpHeaderLen+len(m.Payload))
	b[0] = m.Type
	b[1] = m.Code
	copy(b[icmpHeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// UnmarshalICMP parses an ICMP message. The returned payload aliases b.
func UnmarshalICMP(b []byte) (*ICMPMessage, error) {
	if len(b) < icmpHeaderLen {
		return nil, fmt.Errorf("icmp: %w", ErrTruncated)
	}
	return &ICMPMessage{Type: b[0], Code: b[1], Payload: b[icmpHeaderLen:]}, nil
}
