// Package netpkt implements serialization and parsing for the packet
// formats DFI's data plane carries: Ethernet II, ARP, IPv4, TCP, UDP and
// ICMP. It is the from-scratch substrate standing in for real NICs and OS
// network stacks on the paper's testbed.
package netpkt

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-separated lowercase hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsZero reports whether m is the all-zero address.
func (m MAC) IsZero() bool { return m == MAC{} }

// ParseMAC parses a colon-separated hex MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("parse MAC %q: want 6 octets, got %d", s, len(parts))
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("parse MAC %q: octet %d: %w", s, i, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error; for tests and fixtures.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// IPv4 is a 32-bit IPv4 address.
type IPv4 [4]byte

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether ip is 0.0.0.0.
func (ip IPv4) IsZero() bool { return ip == IPv4{} }

// Uint32 returns the address as a big-endian uint32.
func (ip IPv4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// IPv4FromUint32 converts a big-endian uint32 to an IPv4 address.
func IPv4FromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("parse IPv4 %q: want 4 octets, got %d", s, len(parts))
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("parse IPv4 %q: octet %d: %w", s, i, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustParseIPv4 is ParseIPv4 that panics on error; for tests and fixtures.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// ErrTruncated reports a buffer too short for the format being parsed.
var ErrTruncated = errors.New("netpkt: truncated packet")
