package netpkt

import (
	"encoding/binary"
	"fmt"
)

// EtherType values used by the data plane.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers used by the data plane.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Ethernet is an Ethernet II frame.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

const ethernetHeaderLen = 14

// Marshal serializes the frame.
func (e *Ethernet) Marshal() []byte {
	b := make([]byte, ethernetHeaderLen+len(e.Payload))
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	copy(b[ethernetHeaderLen:], e.Payload)
	return b
}

// UnmarshalEthernet parses an Ethernet II frame. The returned payload
// aliases b.
func UnmarshalEthernet(b []byte) (*Ethernet, error) {
	if len(b) < ethernetHeaderLen {
		return nil, fmt.Errorf("ethernet: %w", ErrTruncated)
	}
	e := &Ethernet{
		EtherType: binary.BigEndian.Uint16(b[12:14]),
		Payload:   b[ethernetHeaderLen:],
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	return e, nil
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IPv4
	TargetMAC MAC
	TargetIP  IPv4
}

const arpLen = 28

// Marshal serializes the ARP packet.
func (a *ARP) Marshal() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:2], 1)      // hardware type: Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // protocol type: IPv4
	b[4] = 6                                   // hardware addr len
	b[5] = 4                                   // protocol addr len
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	copy(b[14:18], a.SenderIP[:])
	copy(b[18:24], a.TargetMAC[:])
	copy(b[24:28], a.TargetIP[:])
	return b
}

// UnmarshalARP parses an ARP packet.
func UnmarshalARP(b []byte) (*ARP, error) {
	if len(b) < arpLen {
		return nil, fmt.Errorf("arp: %w", ErrTruncated)
	}
	a := &ARP{Op: binary.BigEndian.Uint16(b[6:8])}
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}
