package netpkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		give    string
		want    MAC
		wantErr bool
	}{
		{give: "00:11:22:33:44:55", want: MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}},
		{give: "ff:ff:ff:ff:ff:ff", want: Broadcast},
		{give: "aa:BB:cc:DD:ee:FF", want: MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}},
		{give: "00:11:22:33:44", wantErr: true},
		{give: "00:11:22:33:44:55:66", wantErr: true},
		{give: "zz:11:22:33:44:55", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseMAC(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseMAC(%q): want error, got %v", tt.give, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMAC(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		give    string
		want    IPv4
		wantErr bool
	}{
		{give: "10.0.0.1", want: IPv4{10, 0, 0, 1}},
		{give: "255.255.255.255", want: IPv4{255, 255, 255, 255}},
		{give: "0.0.0.0", want: IPv4{}},
		{give: "10.0.0", wantErr: true},
		{give: "10.0.0.256", wantErr: true},
		{give: "10.0.0.1.2", wantErr: true},
		{give: "a.b.c.d", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseIPv4(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseIPv4(%q): want error, got %v", tt.give, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseIPv4(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{
		Dst:       MustParseMAC("02:00:00:00:00:01"),
		Src:       MustParseMAC("02:00:00:00:00:02"),
		EtherType: EtherTypeIPv4,
		Payload:   []byte{1, 2, 3, 4},
	}
	got, err := UnmarshalEthernet(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != e.Dst || got.Src != e.Src || got.EtherType != e.EtherType {
		t.Fatalf("got %+v, want %+v", got, e)
	}
	if !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("payload = %v, want %v", got.Payload, e.Payload)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, err := UnmarshalEthernet(make([]byte, 13)); err == nil {
		t.Fatal("want error on truncated frame")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Op:        ARPRequest,
		SenderMAC: MustParseMAC("02:00:00:00:00:01"),
		SenderIP:  MustParseIPv4("10.0.0.1"),
		TargetIP:  MustParseIPv4("10.0.0.2"),
	}
	got, err := UnmarshalARP(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("got %+v, want %+v", got, a)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	p := &IPv4Packet{
		ID:       1234,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      MustParseIPv4("192.168.1.10"),
		Dst:      MustParseIPv4("192.168.1.20"),
		Payload:  []byte("hello"),
	}
	got, err := UnmarshalIPv4(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.Protocol != p.Protocol || got.ID != p.ID {
		t.Fatalf("got %+v, want %+v", got, p)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload = %q, want %q", got.Payload, p.Payload)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	p := &IPv4Packet{Protocol: ProtoUDP, Src: IPv4{1, 2, 3, 4}, Dst: IPv4{5, 6, 7, 8}}
	b := p.Marshal()
	// The checksum of a header including its own checksum field is zero.
	if got := Checksum(b[:20]); got != 0 {
		t.Fatalf("header checksum verification = 0x%04x, want 0", got)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = 0x%04x, want 0x220d", got)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	src, dst := MustParseIPv4("10.0.0.1"), MustParseIPv4("10.0.0.2")
	seg := &TCPSegment{
		SrcPort: 49152,
		DstPort: 445,
		Seq:     1000,
		Ack:     2000,
		Flags:   TCPSyn | TCPAck,
		Payload: []byte("data"),
	}
	b := seg.Marshal(src, dst)
	got, err := UnmarshalTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != seg.SrcPort || got.DstPort != seg.DstPort ||
		got.Seq != seg.Seq || got.Ack != seg.Ack || got.Flags != seg.Flags {
		t.Fatalf("got %+v, want %+v", got, seg)
	}
	if !bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("payload = %q, want %q", got.Payload, seg.Payload)
	}
	// Verify checksum correctness: recomputing over the segment with the
	// pseudo-header must give zero.
	if sum := l4Checksum(src, dst, ProtoTCP, b); sum != 0 {
		t.Fatalf("TCP checksum verification = 0x%04x, want 0", sum)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := MustParseIPv4("10.0.0.1"), MustParseIPv4("10.0.0.53")
	d := &UDPDatagram{SrcPort: 5353, DstPort: 53, Payload: []byte("query")}
	b := d.Marshal(src, dst)
	got, err := UnmarshalUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != d.SrcPort || got.DstPort != d.DstPort {
		t.Fatalf("got %+v, want %+v", got, d)
	}
	if !bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("payload = %q, want %q", got.Payload, d.Payload)
	}
	if sum := l4Checksum(src, dst, ProtoUDP, b); sum != 0 {
		t.Fatalf("UDP checksum verification = 0x%04x, want 0", sum)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := &ICMPMessage{Type: ICMPEchoRequest, Payload: []byte{0, 1, 0, 1}}
	got, err := UnmarshalICMP(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Code != m.Code {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestExtractFlowKeyTCP(t *testing.T) {
	srcMAC, dstMAC := MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02")
	srcIP, dstIP := MustParseIPv4("10.1.0.5"), MustParseIPv4("10.2.0.9")
	frame := BuildTCP(srcMAC, dstMAC, srcIP, dstIP, &TCPSegment{SrcPort: 31337, DstPort: 445, Flags: TCPSyn})
	k, err := ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	if k.EthSrc != srcMAC || k.EthDst != dstMAC || k.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethernet fields wrong: %v", k)
	}
	if !k.HasIP || k.IPSrc != srcIP || k.IPDst != dstIP || k.IPProto != ProtoTCP {
		t.Fatalf("IP fields wrong: %v", k)
	}
	if !k.HasL4 || k.L4Src != 31337 || k.L4Dst != 445 {
		t.Fatalf("L4 fields wrong: %v", k)
	}
}

func TestExtractFlowKeyUDP(t *testing.T) {
	frame := BuildUDP(
		MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02"),
		MustParseIPv4("10.0.0.1"), MustParseIPv4("10.0.0.53"),
		&UDPDatagram{SrcPort: 5353, DstPort: 53},
	)
	k, err := ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	if k.IPProto != ProtoUDP || !k.HasL4 || k.L4Dst != 53 {
		t.Fatalf("UDP key wrong: %v", k)
	}
}

func TestExtractFlowKeyARP(t *testing.T) {
	frame := BuildARP(&ARP{
		Op:        ARPRequest,
		SenderMAC: MustParseMAC("02:00:00:00:00:01"),
		SenderIP:  MustParseIPv4("10.0.0.1"),
		TargetIP:  MustParseIPv4("10.0.0.2"),
	})
	k, err := ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	if k.EtherType != EtherTypeARP {
		t.Fatalf("EtherType = 0x%04x, want ARP", k.EtherType)
	}
	if !k.HasIP || k.IPSrc != MustParseIPv4("10.0.0.1") || k.IPDst != MustParseIPv4("10.0.0.2") {
		t.Fatalf("ARP addresses wrong: %v", k)
	}
	if k.EthDst != Broadcast {
		t.Fatalf("ARP request dst = %v, want broadcast", k.EthDst)
	}
}

func TestExtractFlowKeyICMP(t *testing.T) {
	frame := BuildICMP(
		MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02"),
		MustParseIPv4("10.0.0.1"), MustParseIPv4("10.0.0.2"),
		&ICMPMessage{Type: ICMPEchoRequest},
	)
	k, err := ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	if k.IPProto != ProtoICMP || k.HasL4 {
		t.Fatalf("ICMP key wrong: %v", k)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	frame := BuildTCP(
		MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02"),
		MustParseIPv4("10.0.0.1"), MustParseIPv4("10.0.0.2"),
		&TCPSegment{SrcPort: 1000, DstPort: 2000},
	)
	k, err := ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	r := k.Reverse()
	if r.EthSrc != k.EthDst || r.IPSrc != k.IPDst || r.L4Src != k.L4Dst {
		t.Fatalf("Reverse() = %v", r)
	}
	if rr := r.Reverse(); rr != k {
		t.Fatalf("double reverse = %v, want %v", rr, k)
	}
}

func TestFlowKeyReverseInvolution(t *testing.T) {
	f := func(k FlowKey) bool {
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractFlowKeyTruncatedInner(t *testing.T) {
	// An IPv4 ethertype with a payload too short for an IP header.
	e := &Ethernet{EtherType: EtherTypeIPv4, Payload: []byte{0x45, 0x00}}
	if _, err := ExtractFlowKey(e.Marshal()); err == nil {
		t.Fatal("want error for truncated IP payload")
	}
}
