package netpkt

import "fmt"

// FlowKey is the set of header fields DFI and the switch pipeline match on,
// extracted from a raw Ethernet frame. Fields beyond EtherType are only
// meaningful when the corresponding Has* flag is set.
type FlowKey struct {
	EthSrc    MAC
	EthDst    MAC
	EtherType uint16

	HasIP   bool
	IPSrc   IPv4
	IPDst   IPv4
	IPProto uint8

	HasL4 bool
	L4Src uint16
	L4Dst uint16
}

// String renders the key for logs and error messages.
func (k FlowKey) String() string {
	s := fmt.Sprintf("%s->%s type=0x%04x", k.EthSrc, k.EthDst, k.EtherType)
	if k.HasIP {
		s += fmt.Sprintf(" %s->%s proto=%d", k.IPSrc, k.IPDst, k.IPProto)
	}
	if k.HasL4 {
		s += fmt.Sprintf(" %d->%d", k.L4Src, k.L4Dst)
	}
	return s
}

// Reverse returns the key for the reverse direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	r := k
	r.EthSrc, r.EthDst = k.EthDst, k.EthSrc
	r.IPSrc, r.IPDst = k.IPDst, k.IPSrc
	r.L4Src, r.L4Dst = k.L4Dst, k.L4Src
	return r
}

// ExtractFlowKey parses the headers of a raw Ethernet frame into a FlowKey.
// For ARP frames the sender/target protocol addresses populate IPSrc/IPDst
// (mirroring OpenFlow's ARP_SPA/ARP_TPA usage in access-control matches).
func ExtractFlowKey(frame []byte) (FlowKey, error) {
	var k FlowKey
	eth, err := UnmarshalEthernet(frame)
	if err != nil {
		return k, err
	}
	k.EthSrc = eth.Src
	k.EthDst = eth.Dst
	k.EtherType = eth.EtherType
	switch eth.EtherType {
	case EtherTypeIPv4:
		ip, err := UnmarshalIPv4(eth.Payload)
		if err != nil {
			return k, err
		}
		k.HasIP = true
		k.IPSrc = ip.Src
		k.IPDst = ip.Dst
		k.IPProto = ip.Protocol
		switch ip.Protocol {
		case ProtoTCP:
			t, err := UnmarshalTCP(ip.Payload)
			if err != nil {
				return k, err
			}
			k.HasL4 = true
			k.L4Src = t.SrcPort
			k.L4Dst = t.DstPort
		case ProtoUDP:
			u, err := UnmarshalUDP(ip.Payload)
			if err != nil {
				return k, err
			}
			k.HasL4 = true
			k.L4Src = u.SrcPort
			k.L4Dst = u.DstPort
		}
	case EtherTypeARP:
		a, err := UnmarshalARP(eth.Payload)
		if err != nil {
			return k, err
		}
		k.HasIP = true
		k.IPSrc = a.SenderIP
		k.IPDst = a.TargetIP
	}
	return k, nil
}

// BuildTCP constructs a full Ethernet/IPv4/TCP frame.
func BuildTCP(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, seg *TCPSegment) []byte {
	ip := &IPv4Packet{Protocol: ProtoTCP, Src: srcIP, Dst: dstIP, Payload: seg.Marshal(srcIP, dstIP)}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}
	return eth.Marshal()
}

// BuildUDP constructs a full Ethernet/IPv4/UDP frame.
func BuildUDP(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, dgram *UDPDatagram) []byte {
	ip := &IPv4Packet{Protocol: ProtoUDP, Src: srcIP, Dst: dstIP, Payload: dgram.Marshal(srcIP, dstIP)}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}
	return eth.Marshal()
}

// BuildARP constructs a full Ethernet/ARP frame. Requests are broadcast.
func BuildARP(a *ARP) []byte {
	dst := a.TargetMAC
	if a.Op == ARPRequest {
		dst = Broadcast
	}
	eth := &Ethernet{Dst: dst, Src: a.SenderMAC, EtherType: EtherTypeARP, Payload: a.Marshal()}
	return eth.Marshal()
}

// BuildICMP constructs a full Ethernet/IPv4/ICMP frame.
func BuildICMP(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, msg *ICMPMessage) []byte {
	ip := &IPv4Packet{Protocol: ProtoICMP, Src: srcIP, Dst: dstIP, Payload: msg.Marshal()}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}
	return eth.Marshal()
}
