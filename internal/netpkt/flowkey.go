package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FlowKey is the set of header fields DFI and the switch pipeline match on,
// extracted from a raw Ethernet frame. Fields beyond EtherType are only
// meaningful when the corresponding Has* flag is set.
type FlowKey struct {
	EthSrc    MAC
	EthDst    MAC
	EtherType uint16

	HasIP   bool
	IPSrc   IPv4
	IPDst   IPv4
	IPProto uint8

	HasL4 bool
	L4Src uint16
	L4Dst uint16
}

// String renders the key for logs and error messages.
func (k FlowKey) String() string {
	s := fmt.Sprintf("%s->%s type=0x%04x", k.EthSrc, k.EthDst, k.EtherType)
	if k.HasIP {
		s += fmt.Sprintf(" %s->%s proto=%d", k.IPSrc, k.IPDst, k.IPProto)
	}
	if k.HasL4 {
		s += fmt.Sprintf(" %d->%d", k.L4Src, k.L4Dst)
	}
	return s
}

// Reverse returns the key for the reverse direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	r := k
	r.EthSrc, r.EthDst = k.EthDst, k.EthSrc
	r.IPSrc, r.IPDst = k.IPDst, k.IPSrc
	r.L4Src, r.L4Dst = k.L4Dst, k.L4Src
	return r
}

// Precomputed parse errors for ExtractFlowKey: formatting an error on the
// admission hot path allocates, and the malformed-packet path is reachable
// from arbitrary attacker frames, so the errors are built once here instead
// of per packet (found by dfilint's hotpathalloc analyzer). They wrap
// ErrTruncated like the Unmarshal* helpers' errors, minus the per-packet
// field values.
var (
	errFlowEthTruncated  = fmt.Errorf("ethernet: %w", ErrTruncated)
	errFlowIPv4Truncated = fmt.Errorf("ipv4: %w", ErrTruncated)
	errFlowIPv4Version   = errors.New("ipv4: bad version")
	errFlowIPv4IHL       = fmt.Errorf("ipv4: bad IHL: %w", ErrTruncated)
	errFlowTCPTruncated  = fmt.Errorf("tcp: %w", ErrTruncated)
	errFlowTCPOffset     = fmt.Errorf("tcp: bad data offset: %w", ErrTruncated)
	errFlowUDPTruncated  = fmt.Errorf("udp: %w", ErrTruncated)
	errFlowARPTruncated  = fmt.Errorf("arp: %w", ErrTruncated)
)

// ExtractFlowKey parses the headers of a raw Ethernet frame into a FlowKey.
// For ARP frames the sender/target protocol addresses populate IPSrc/IPDst
// (mirroring OpenFlow's ARP_SPA/ARP_TPA usage in access-control matches).
//
// The headers are decoded inline rather than through the Unmarshal* helpers:
// those return heap-allocated header structs, and this function runs on the
// admission hot path, which must not allocate — on malformed input too,
// since the error path is attacker-reachable. Validation matches the
// helpers field for field.
//
//dfi:hotpath
func ExtractFlowKey(frame []byte) (FlowKey, error) {
	var k FlowKey
	if len(frame) < ethernetHeaderLen {
		return k, errFlowEthTruncated
	}
	copy(k.EthDst[:], frame[0:6])
	copy(k.EthSrc[:], frame[6:12])
	k.EtherType = binary.BigEndian.Uint16(frame[12:14])
	payload := frame[ethernetHeaderLen:]
	switch k.EtherType {
	case EtherTypeIPv4:
		b := payload
		if len(b) < ipv4HeaderLen {
			return k, errFlowIPv4Truncated
		}
		if b[0]>>4 != 4 {
			return k, errFlowIPv4Version
		}
		ihl := int(b[0]&0x0f) * 4
		if ihl < ipv4HeaderLen || len(b) < ihl {
			return k, errFlowIPv4IHL
		}
		total := int(binary.BigEndian.Uint16(b[2:4]))
		if total > len(b) || total < ihl {
			total = len(b)
		}
		k.HasIP = true
		copy(k.IPSrc[:], b[12:16])
		copy(k.IPDst[:], b[16:20])
		k.IPProto = b[9]
		l4 := b[ihl:total]
		switch k.IPProto {
		case ProtoTCP:
			if len(l4) < tcpHeaderLen {
				return k, errFlowTCPTruncated
			}
			off := int(l4[12]>>4) * 4
			if off < tcpHeaderLen || len(l4) < off {
				return k, errFlowTCPOffset
			}
			k.HasL4 = true
			k.L4Src = binary.BigEndian.Uint16(l4[0:2])
			k.L4Dst = binary.BigEndian.Uint16(l4[2:4])
		case ProtoUDP:
			if len(l4) < udpHeaderLen {
				return k, errFlowUDPTruncated
			}
			k.HasL4 = true
			k.L4Src = binary.BigEndian.Uint16(l4[0:2])
			k.L4Dst = binary.BigEndian.Uint16(l4[2:4])
		}
	case EtherTypeARP:
		if len(payload) < arpLen {
			return k, errFlowARPTruncated
		}
		k.HasIP = true
		copy(k.IPSrc[:], payload[14:18])
		copy(k.IPDst[:], payload[24:28])
	}
	return k, nil
}

// BuildTCP constructs a full Ethernet/IPv4/TCP frame.
func BuildTCP(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, seg *TCPSegment) []byte {
	ip := &IPv4Packet{Protocol: ProtoTCP, Src: srcIP, Dst: dstIP, Payload: seg.Marshal(srcIP, dstIP)}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}
	return eth.Marshal()
}

// BuildUDP constructs a full Ethernet/IPv4/UDP frame.
func BuildUDP(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, dgram *UDPDatagram) []byte {
	ip := &IPv4Packet{Protocol: ProtoUDP, Src: srcIP, Dst: dstIP, Payload: dgram.Marshal(srcIP, dstIP)}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}
	return eth.Marshal()
}

// BuildARP constructs a full Ethernet/ARP frame. Requests are broadcast.
func BuildARP(a *ARP) []byte {
	dst := a.TargetMAC
	if a.Op == ARPRequest {
		dst = Broadcast
	}
	eth := &Ethernet{Dst: dst, Src: a.SenderMAC, EtherType: EtherTypeARP, Payload: a.Marshal()}
	return eth.Marshal()
}

// BuildICMP constructs a full Ethernet/IPv4/ICMP frame.
func BuildICMP(srcMAC, dstMAC MAC, srcIP, dstIP IPv4, msg *ICMPMessage) []byte {
	ip := &IPv4Packet{Protocol: ProtoICMP, Src: srcIP, Dst: dstIP, Payload: msg.Marshal()}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}
	return eth.Marshal()
}
