package netpkt

import (
	"bytes"
	"testing"
)

// fuzzSeedFrames builds a representative frame per protocol plus malformed
// variants, so the fuzzers start from deep in the parse tree instead of
// random bytes.
func fuzzSeedFrames() [][]byte {
	srcMAC := MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC := MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	srcIP := IPv4{10, 0, 0, 1}
	dstIP := IPv4{10, 0, 0, 2}

	tcp := BuildTCP(srcMAC, dstMAC, srcIP, dstIP, &TCPSegment{
		SrcPort: 44123, DstPort: 443, Seq: 1, Flags: 0x02, Window: 65535,
		Payload: []byte("hello"),
	})
	udp := BuildUDP(srcMAC, dstMAC, srcIP, dstIP, &UDPDatagram{
		SrcPort: 5353, DstPort: 53, Payload: []byte("query"),
	})
	arp := BuildARP(&ARP{
		Op: ARPRequest, SenderMAC: srcMAC, SenderIP: srcIP, TargetIP: dstIP,
	})
	icmp := BuildICMP(srcMAC, dstMAC, srcIP, dstIP, &ICMPMessage{
		Type: 8, Payload: []byte{0, 1, 0, 1},
	})

	// Malformed variants: truncation at every layer boundary, a bad IP
	// version, and a bad IHL.
	badVersion := append([]byte(nil), tcp...)
	badVersion[ethernetHeaderLen] = 0x65 // version 6, IHL 5
	badIHL := append([]byte(nil), tcp...)
	badIHL[ethernetHeaderLen] = 0x4f // version 4, IHL 15 (> remaining bytes)

	return [][]byte{
		tcp, udp, arp, icmp,
		tcp[:ethernetHeaderLen-1],
		tcp[:ethernetHeaderLen+ipv4HeaderLen-1],
		tcp[:len(tcp)-len("hello")-1],
		arp[:ethernetHeaderLen+arpLen-1],
		badVersion, badIHL,
		nil,
	}
}

// FuzzParseEthernet checks that frame parsing never panics and that a
// successfully parsed frame re-marshals to the exact input bytes.
func FuzzParseEthernet(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEthernet(data)
		if err != nil {
			return
		}
		if got := e.Marshal(); !bytes.Equal(got, data) {
			t.Fatalf("ethernet remarshal mismatch:\n got %x\nwant %x", got, data)
		}
		switch e.EtherType {
		case EtherTypeARP:
			_, _ = UnmarshalARP(e.Payload)
		case EtherTypeIPv4:
			ip, err := UnmarshalIPv4(e.Payload)
			if err != nil {
				return
			}
			switch ip.Protocol {
			case ProtoTCP:
				_, _ = UnmarshalTCP(ip.Payload)
			case ProtoUDP:
				_, _ = UnmarshalUDP(ip.Payload)
			case ProtoICMP:
				_, _ = UnmarshalICMP(ip.Payload)
			}
		}
	})
}

// FuzzParseIPv4 drives the IPv4 header parser and the nested L4 parsers
// directly, without the Ethernet framing.
func FuzzParseIPv4(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		if len(seed) > ethernetHeaderLen {
			f.Add(seed[ethernetHeaderLen:])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ip, err := UnmarshalIPv4(data)
		if err != nil {
			return
		}
		if len(ip.Payload) > len(data) {
			t.Fatalf("ipv4 payload of %d bytes exceeds %d input bytes", len(ip.Payload), len(data))
		}
		switch ip.Protocol {
		case ProtoTCP:
			_, _ = UnmarshalTCP(ip.Payload)
		case ProtoUDP:
			_, _ = UnmarshalUDP(ip.Payload)
		case ProtoICMP:
			_, _ = UnmarshalICMP(ip.Payload)
		}
	})
}

// FuzzExtractFlowKey cross-checks the zero-alloc single-pass extractor
// against the per-layer parsers: whenever both succeed on the same bytes,
// they must agree on every field.
func FuzzExtractFlowKey(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := ExtractFlowKey(data)
		if err != nil {
			return
		}
		e, err := UnmarshalEthernet(data)
		if err != nil {
			t.Fatalf("ExtractFlowKey accepted a frame UnmarshalEthernet rejects: %v", err)
		}
		if k.EthSrc != e.Src || k.EthDst != e.Dst || k.EtherType != e.EtherType {
			t.Fatalf("ethernet fields diverge: key %v/%v/%#04x frame %v/%v/%#04x",
				k.EthSrc, k.EthDst, k.EtherType, e.Src, e.Dst, e.EtherType)
		}
		switch {
		case k.EtherType == EtherTypeIPv4 && k.HasIP:
			ip, err := UnmarshalIPv4(e.Payload)
			if err != nil {
				t.Fatalf("key has IP fields but UnmarshalIPv4 rejects the payload: %v", err)
			}
			if k.IPSrc != ip.Src || k.IPDst != ip.Dst || k.IPProto != ip.Protocol {
				t.Fatalf("ipv4 fields diverge: key %v->%v/%d packet %v->%v/%d",
					k.IPSrc, k.IPDst, k.IPProto, ip.Src, ip.Dst, ip.Protocol)
			}
			if !k.HasL4 {
				return
			}
			// The extractor reads ports at the IHL offset; the layered
			// parsers see the total-length-clamped payload, which starts
			// at the same offset, so when they succeed the ports must
			// match.
			switch k.IPProto {
			case ProtoTCP:
				if seg, err := UnmarshalTCP(ip.Payload); err == nil &&
					(k.L4Src != seg.SrcPort || k.L4Dst != seg.DstPort) {
					t.Fatalf("tcp ports diverge: key %d->%d segment %d->%d",
						k.L4Src, k.L4Dst, seg.SrcPort, seg.DstPort)
				}
			case ProtoUDP:
				if dgram, err := UnmarshalUDP(ip.Payload); err == nil &&
					(k.L4Src != dgram.SrcPort || k.L4Dst != dgram.DstPort) {
					t.Fatalf("udp ports diverge: key %d->%d datagram %d->%d",
						k.L4Src, k.L4Dst, dgram.SrcPort, dgram.DstPort)
				}
			}
		case k.EtherType == EtherTypeARP:
			a, err := UnmarshalARP(e.Payload)
			if err != nil {
				t.Fatalf("key parsed an ARP frame UnmarshalARP rejects: %v", err)
			}
			if k.HasIP && (k.IPSrc != a.SenderIP || k.IPDst != a.TargetIP) {
				t.Fatalf("arp addresses diverge: key %v->%v packet %v->%v",
					k.IPSrc, k.IPDst, a.SenderIP, a.TargetIP)
			}
		}
	})
}
