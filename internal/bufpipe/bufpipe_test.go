package bufpipe

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

func TestWriteThenRead(t *testing.T) {
	a, b := New()
	msg := []byte("hello")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestBothDirections(t *testing.T) {
	a, b := New()
	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("b read %q, %v", buf, err)
	}
	if _, err := io.ReadFull(a, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("a read %q, %v", buf, err)
	}
}

func TestWritesDoNotBlock(t *testing.T) {
	a, _ := New()
	// Unlike net.Pipe, many writes with no reader must not block: this is
	// the property that lets both OpenFlow endpoints greet concurrently.
	for i := 0; i < 1000; i++ {
		if _, err := a.Write(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadBlocksUntilWrite(t *testing.T) {
	a, b := New()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(b, buf); err == nil {
			got <- buf
		}
	}()
	if _, err := a.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if string(<-got) != "data" {
		t.Fatal("wrong data")
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	a, b := New()
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		done <- err
	}()
	a.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("read after close = %v, want EOF", err)
	}
}

func TestCloseDrainsPendingData(t *testing.T) {
	a, b := New()
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "tail" {
		t.Fatalf("drain read %q, %v", buf, err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("after drain = %v, want EOF", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	a, _ := New()
	a.Close()
	if _, err := a.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("err = %v, want ErrClosedPipe", err)
	}
}

func TestConcurrentStreaming(t *testing.T) {
	a, b := New()
	const total = 1 << 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]byte, 4096)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		for sent := 0; sent < total; sent += len(chunk) {
			if _, err := a.Write(chunk); err != nil {
				t.Error(err)
				return
			}
		}
		a.Close()
	}()
	got, err := io.ReadAll(b)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("read %d bytes, want %d", len(got), total)
	}
}
