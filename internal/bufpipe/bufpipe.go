// Package bufpipe provides an in-process, buffered, bidirectional byte
// stream. Unlike net.Pipe, writes do not rendezvous with reads, matching
// TCP socket semantics closely enough that OpenFlow endpoints which both
// send greetings immediately (switch and controller HELLOs) cannot
// deadlock. It backs in-process wiring in tests, examples and benchmarks.
package bufpipe

import (
	"bytes"
	"io"
	"sync"
)

// buffer is one direction of the stream.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   bytes.Buffer
	closed bool
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	n, _ := b.data.Write(p)
	b.cond.Broadcast()
	return n, nil
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.data.Len() == 0 && !b.closed {
		b.cond.Wait()
	}
	if b.data.Len() == 0 {
		return 0, io.EOF
	}
	return b.data.Read(p)
}

func (b *buffer) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// Conn is one end of a buffered pipe.
type Conn struct {
	rd *buffer
	wr *buffer
}

var _ io.ReadWriteCloser = (*Conn)(nil)

// Read implements io.Reader, blocking until data or close.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write implements io.Writer; it buffers without blocking.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close closes both directions; pending reads return EOF once drained.
func (c *Conn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

// New returns the two ends of a connected buffered pipe.
func New() (*Conn, *Conn) {
	ab, ba := newBuffer(), newBuffer()
	return &Conn{rd: ba, wr: ab}, &Conn{rd: ab, wr: ba}
}
