package testbed

import (
	"sync/atomic"

	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/switchsim"
	"github.com/dfi-sdn/dfi/internal/worm"
)

// The testbed is the worm's network environment.
var _ worm.Network = (*Testbed)(nil)

// Targets implements worm.Network: reconnaissance returns every other end
// host and server (control-plane hosts are out of the threat's scope).
func (tb *Testbed) Targets(host string) []string {
	targets := make([]string, 0, len(tb.hosts)-1)
	for _, n := range tb.Hosts() {
		if n != host {
			targets = append(targets, n)
		}
	}
	return targets
}

// Vulnerable implements worm.Network.
func (tb *Testbed) Vulnerable(dst string) bool {
	h, ok := tb.hosts[dst]
	return ok && h.Vulnerable
}

// CachedCredentials implements worm.Network. Servers are defended against
// credential theft by configuration (paper §V-B): nothing to dump.
func (tb *Testbed) CachedCredentials(host string) []string {
	h, ok := tb.hosts[host]
	if !ok || h.IsServer {
		return nil
	}
	return tb.dir.CachedCredentials(host)
}

// HasLocalAdmin implements worm.Network. Servers reject remote credential
// installs by configuration.
func (tb *Testbed) HasLocalAdmin(user, dst string) bool {
	h, ok := tb.hosts[dst]
	if !ok || h.IsServer {
		return false
	}
	return tb.dir.IsLocalAdmin(dst, user)
}

// TryConnect implements worm.Network: a TCP connection src→dst on port
// succeeds only if the SYN is admitted along the forward path and the
// SYN-ACK along the reverse path — each hop enforcing current DFI policy.
func (tb *Testbed) TryConnect(src, dst string, port uint16) bool {
	hs, ok := tb.hosts[src]
	if !ok {
		return false
	}
	hd, ok := tb.hosts[dst]
	if !ok {
		return false
	}
	// A stable per-pair ephemeral port keeps flow identity deterministic.
	srcPort := 49152 + uint16(pairHash(src, dst)&0x3fff)

	syn := netpkt.BuildTCP(hs.MAC, hd.MAC, hs.IP, hd.IP,
		&netpkt.TCPSegment{SrcPort: srcPort, DstPort: port, Flags: netpkt.TCPSyn})
	if !tb.admitPath(hs, hd, syn) {
		return false
	}
	synAck := netpkt.BuildTCP(hd.MAC, hs.MAC, hd.IP, hs.IP,
		&netpkt.TCPSegment{SrcPort: port, DstPort: srcPort, Flags: netpkt.TCPSyn | netpkt.TCPAck})
	return tb.admitPath(hd, hs, synAck)
}

// tryUDP checks a UDP request/response exchange src→dst on port (used for
// the core-service reachability the AT-RBAC baseline must preserve).
func (tb *Testbed) tryUDP(src, dst string, port uint16) bool {
	hs, ok := tb.hosts[src]
	if !ok {
		return false
	}
	hd, ok := tb.hosts[dst]
	if !ok {
		return false
	}
	srcPort := 49152 + uint16(pairHash(src, dst)&0x3fff)
	req := netpkt.BuildUDP(hs.MAC, hd.MAC, hs.IP, hd.IP,
		&netpkt.UDPDatagram{SrcPort: srcPort, DstPort: port})
	if !tb.admitPath(hs, hd, req) {
		return false
	}
	resp := netpkt.BuildUDP(hd.MAC, hs.MAC, hd.IP, hs.IP,
		&netpkt.UDPDatagram{SrcPort: port, DstPort: srcPort})
	return tb.admitPath(hd, hs, resp)
}

// Admissions reports how many PCP admission checks the testbed performed.
func (tb *Testbed) Admissions() uint64 { return atomic.LoadUint64(&tb.admissions) }

// hop is one switch traversal.
type hop struct {
	sw     *switchsim.Switch
	inPort uint32
}

// path returns the star-topology switch path from src to dst.
func (tb *Testbed) path(src, dst *Host) []hop {
	srcEdge := tb.switches[src.DPID]
	if src.DPID == dst.DPID {
		return []hop{{sw: srcEdge, inPort: src.Port}}
	}
	dstEdge := tb.switches[dst.DPID]
	return []hop{
		{sw: srcEdge, inPort: src.Port},
		// The core's ingress from an enclave uplink is numbered by the
		// enclave switch's DPID.
		{sw: tb.core, inPort: uint32(src.DPID)},
		{sw: dstEdge, inPort: uplinkPort},
	}
}

// admitPath walks the frame through each hop's pipeline. On a table-0 miss
// it runs the real PCP admission (entity resolution, policy query, rule
// compilation and installation) for that switch, exactly as the proxy
// would, then acts on the decision. Misses above table 0 belong to the
// forwarding controller and pass (routing on the star is static).
func (tb *Testbed) admitPath(src, dst *Host, frame []byte) bool {
	for _, h := range tb.path(src, dst) {
		outcome, table := h.sw.Evaluate(h.inPort, frame)
		switch outcome {
		case switchsim.OutcomeForward:
			continue
		case switchsim.OutcomeDrop:
			return false
		case switchsim.OutcomeMiss:
			if table > 0 {
				continue // the controller's tables: forwarding, not policy
			}
			if !tb.admitAt(h, frame) {
				return false
			}
		}
	}
	return true
}

// admitAt runs one synchronous PCP admission for a table-0 miss.
func (tb *Testbed) admitAt(h hop, frame []byte) bool {
	atomic.AddUint64(&tb.admissions, 1)
	allowed := false
	req := &pcp.Request{
		DPID: h.sw.DPID(),
		PacketIn: &openflow.PacketIn{
			BufferID: openflow.NoBuffer,
			Reason:   openflow.PacketInReasonNoMatch,
			TableID:  0,
			Match:    &openflow.Match{InPort: openflow.U32(h.inPort)},
			Data:     frame,
		},
		Done: func(dec pcp.Decision) { allowed = dec.Allow },
	}
	tb.pcp.Process(req)
	return allowed
}

func pairHash(a, b string) uint32 {
	var h uint32 = 2166136261
	for _, s := range []string{a, "→", b} {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
	}
	return h
}
