// Package testbed implements the paper's security-evaluation environment
// (§V-B) as a deterministic discrete-event simulation: a small enterprise
// of 86 Windows end hosts and 6 servers on 14 OpenFlow switches in a star
// topology (one core, 13 enclave switches: nine 9-host departments, one
// 5-host department, three server enclaves), an Active Directory domain
// with per-host primary users and department-wide Local Administrator
// grants, day-long per-user log-on/log-off scripts, and DFI enforcing one
// of three conditions: no access control (Baseline), static RBAC (S-RBAC)
// or authentication-triggered RBAC (AT-RBAC).
//
// The data plane is real: every reachability check builds an Ethernet/IPv4
// frame, walks the switchsim pipeline at each hop of the star, and — on a
// table-0 miss — runs the actual PCP admission path (entity resolution,
// policy query, exact-match rule compilation and installation), so policy
// is enforced at each hop exactly as in the paper's deployment.
package testbed

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/pdp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/sensors"
	"github.com/dfi-sdn/dfi/internal/services"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/switchsim"
	"github.com/dfi-sdn/dfi/internal/worm"
)

// Condition selects the access-control policy under test.
type Condition int

// The paper's three evaluation conditions.
const (
	ConditionBaseline Condition = iota + 1
	ConditionSRBAC
	ConditionATRBAC
)

// String renders the condition name as the paper writes it.
func (c Condition) String() string {
	switch c {
	case ConditionBaseline:
		return "Baseline"
	case ConditionSRBAC:
		return "S-RBAC"
	case ConditionATRBAC:
		return "AT-RBAC"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Host is one endpoint of the testbed.
type Host struct {
	Name        string
	Enclave     string
	MAC         netpkt.MAC
	IP          netpkt.IPv4
	DPID        uint64
	Port        uint32
	IsServer    bool
	PrimaryUser string
	Vulnerable  bool
}

// Config parameterizes a testbed build.
type Config struct {
	Condition Condition
	// Seed drives every random choice (vulnerable hosts, user scripts,
	// worm shuffles); same seed → identical run.
	Seed int64
	// Epoch is midnight of the simulated day (default 2019-03-01 UTC).
	Epoch time.Time
	// WormParams tune the surrogate (default worm.DefaultParams).
	WormParams worm.Params
	// QuarantineDelay, when positive, models an incident-response team:
	// each infection is detected and the host isolated by the Quarantine
	// PDP this long after it is compromised. Zero disables the model.
	// This quantifies the paper's closing claim that AT-RBAC's slowdown
	// "could provide additional time for an incident response team to be
	// notified and isolate infected hosts".
	QuarantineDelay time.Duration
	// Metrics, when non-nil, is the registry the testbed's Policy Manager
	// and PCP register their instruments with, so scenario harnesses can
	// read time-to-enforcement and admission-latency histograms out of a
	// testbed run. Nil leaves both uninstrumented (the historical default).
	Metrics *obs.Registry
}

const (
	coreDPID     = 100
	uplinkPort   = 100
	numDepts     = 9
	hostsPerDept = 9
	smallDeptN   = 5
)

// Testbed is a built evaluation environment.
type Testbed struct {
	cfg   Config
	clock *simclock.Simulated
	rng   *rand.Rand

	dir  *services.Directory
	dns  *services.DNSServer
	dhcp *services.DHCPServer

	erm *entity.Manager
	pm  *policy.Manager
	pcp *pcp.PCP

	core     *switchsim.Switch
	switches map[uint64]*switchsim.Switch

	hosts  map[string]*Host
	byIP   map[netpkt.IPv4]*Host
	roster pdp.Roster

	atrbac     *pdp.ATRBAC
	quarantine *pdp.Quarantine

	scripts map[string][]Interval // user -> logged-on intervals

	outbreak *worm.Outbreak

	// admissions counts PCP admission checks (for reporting).
	admissions uint64
}

// Interval is a logged-on period as offsets from the epoch (midnight).
type Interval struct {
	Start time.Duration
	End   time.Duration
}

type swClient struct {
	sw *switchsim.Switch
}

var _ pcp.SwitchClient = swClient{}

func (c swClient) WriteFlowMod(fm *openflow.FlowMod) error {
	return c.sw.ApplyFlowMod(fm)
}

// New builds the testbed for the given configuration.
func New(cfg Config) (*Testbed, error) {
	if cfg.Condition == 0 {
		cfg.Condition = ConditionBaseline
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.WormParams == (worm.Params{}) {
		cfg.WormParams = worm.DefaultParams()
	}
	tb := &Testbed{
		cfg:      cfg,
		clock:    simclock.NewSimulated(cfg.Epoch),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		dir:      services.NewDirectory(),
		hosts:    make(map[string]*Host),
		byIP:     make(map[netpkt.IPv4]*Host),
		switches: make(map[uint64]*switchsim.Switch),
		scripts:  make(map[string][]Interval),
	}
	tb.erm = entity.NewManager()
	var pmOpts []policy.ManagerOption
	if cfg.Metrics != nil {
		pmOpts = append(pmOpts, policy.WithObserver(cfg.Metrics))
	}
	tb.pm = policy.NewManager(pmOpts...)
	// Authoritative services feed the ERM directly (the simulation's
	// synchronous stand-in for the bus-attached sensors).
	tb.dns = services.NewDNSServer(func(h string, ip netpkt.IPv4, removed bool) {
		if removed {
			tb.erm.UnbindHostIP(h, ip)
		} else {
			tb.erm.BindHostIP(h, ip)
		}
	})
	tb.dhcp = services.NewDHCPServer(netpkt.MustParseIPv4("10.10.0.10"), 1024,
		func(ip netpkt.IPv4, mac netpkt.MAC, removed bool) {
			if removed {
				tb.erm.UnbindIPMAC(ip, mac)
			} else {
				tb.erm.BindIPMAC(ip, mac)
			}
		})
	tb.pcp = pcp.New(pcp.Config{
		Entity: tb.erm,
		Policy: tb.pm,
		Clock:  tb.clock,
		Obs:    cfg.Metrics,
	})

	if err := tb.buildTopology(); err != nil {
		return nil, err
	}
	tb.buildPopulation()
	if err := tb.installCondition(); err != nil {
		return nil, err
	}
	tb.buildScripts()
	tb.outbreak = worm.NewOutbreak(cfg.WormParams, tb, tb.clock, cfg.Seed^0x5eed)
	if cfg.QuarantineDelay > 0 {
		q, err := pdp.NewQuarantine(tb.pm)
		if err != nil {
			return nil, err
		}
		tb.quarantine = q
		delay := cfg.QuarantineDelay
		tb.outbreak.SetOnInfect(func(host string) {
			tb.clock.ScheduleAfter(delay, func() {
				_ = q.Isolate(host)
			})
		})
	}
	return tb, nil
}

// Quarantined reports whether incident response has isolated host (always
// false when QuarantineDelay is unset).
func (tb *Testbed) Quarantined(host string) bool {
	return tb.quarantine != nil && tb.quarantine.Quarantined(host)
}

// buildTopology creates the 14-switch star and registers them with the PCP.
func (tb *Testbed) buildTopology() error {
	tb.core = switchsim.NewSwitch(switchsim.Config{DPID: coreDPID, Clock: tb.clock})
	tb.pcp.AttachSwitch(coreDPID, swClient{sw: tb.core})
	for dpid := uint64(1); dpid <= 13; dpid++ {
		sw := switchsim.NewSwitch(switchsim.Config{DPID: dpid, Clock: tb.clock})
		tb.switches[dpid] = sw
		tb.pcp.AttachSwitch(dpid, swClient{sw: sw})
	}
	return nil
}

// buildPopulation creates enclaves, hosts, users, grants, leases and DNS
// records. Enclave switches 1–9 hold the nine-host departments, switch 10
// the five-host department, switches 11–13 the server enclaves.
func (tb *Testbed) buildPopulation() {
	addHost := func(name, enclave string, dpid uint64, port uint32, isServer bool, primaryUser string) *Host {
		mac := netpkt.MAC{0x02, 0x10, byte(dpid), 0, 0, byte(port)}
		ip, err := tb.dhcp.Lease(mac)
		if err != nil {
			panic(fmt.Sprintf("testbed DHCP pool exhausted: %v", err)) // sized at build; cannot happen
		}
		tb.dns.Register(name, ip)
		h := &Host{
			Name: name, Enclave: enclave, MAC: mac, IP: ip,
			DPID: dpid, Port: port, IsServer: isServer, PrimaryUser: primaryUser,
		}
		tb.hosts[name] = h
		tb.byIP[ip] = h
		tb.dir.AddHost(name, enclave, primaryUser)
		return h
	}

	// Departments.
	for d := 1; d <= numDepts+1; d++ {
		enclave := fmt.Sprintf("dept-%02d", d)
		n := hostsPerDept
		if d == numDepts+1 {
			n = smallDeptN
		}
		dpid := uint64(d)
		var deptUsers []string
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("d%02d-h%d", d, i)
			user := fmt.Sprintf("u-%s", name)
			deptUsers = append(deptUsers, user)
			tb.dir.AddUser(user, enclave)
			addHost(name, enclave, dpid, uint32(i), false, user)
			// The primary user's credentials are cached from historical
			// log-ons; this is what credential theft dumps.
			if err := tb.dir.CacheCredential(name, user); err != nil {
				panic(err) // host was just added
			}
		}
		// Everyone in the department has Local Administrator on every
		// department host (paper §V-B).
		for _, hostName := range tb.dir.HostsInEnclave(enclave) {
			for _, u := range deptUsers {
				if err := tb.dir.GrantLocalAdmin(hostName, u); err != nil {
					panic(err)
				}
			}
		}
	}

	// Servers: 6 across 3 server enclaves, no primary users.
	serverNames := []string{"srv-ad", "srv-mail", "srv-web", "srv-file", "srv-db", "srv-backup"}
	for i, name := range serverNames {
		dpid := uint64(11 + i/2)
		enclave := fmt.Sprintf("srv-enclave-%d", 11+i/2-10)
		srv := addHost(name, enclave, dpid, uint32(i%2+1), true, "")
		srv.Vulnerable = true // all servers are vulnerable (paper §V-B)
	}

	// One vulnerable end host per departmental enclave (10/86, within the
	// patch-compliance range the paper cites).
	for d := 1; d <= numDepts+1; d++ {
		enclave := fmt.Sprintf("dept-%02d", d)
		hosts := tb.dir.HostsInEnclave(enclave)
		pick := hosts[tb.rng.Intn(len(hosts))]
		tb.hosts[pick].Vulnerable = true
	}

	// Roster for the RBAC PDPs.
	tb.roster = pdp.Roster{EnclaveOf: make(map[string]string)}
	for name, h := range tb.hosts {
		tb.roster.EnclaveOf[name] = h.Enclave
		if h.IsServer {
			tb.roster.Servers = append(tb.roster.Servers, name)
		}
	}
	sort.Strings(tb.roster.Servers)
	tb.roster.CoreServices = []pdp.ServiceEndpoint{
		{Host: "srv-ad", Proto: netpkt.ProtoUDP, Port: 53}, // DNS
		{Host: "srv-ad", Proto: netpkt.ProtoUDP, Port: 67}, // DHCP
		{Host: "srv-ad", Proto: netpkt.ProtoTCP, Port: 88}, // Kerberos/AD
	}
}

// installCondition registers and installs the PDP for the configured
// condition.
func (tb *Testbed) installCondition() error {
	switch tb.cfg.Condition {
	case ConditionBaseline:
		allowAll, err := pdp.NewAllowAll(tb.pm)
		if err != nil {
			return err
		}
		return allowAll.Enable()
	case ConditionSRBAC:
		srbac, err := pdp.NewSRBAC(tb.pm, tb.roster)
		if err != nil {
			return err
		}
		_, err = srbac.Install()
		return err
	case ConditionATRBAC:
		atrbac, err := pdp.NewATRBAC(tb.pm, tb.roster)
		if err != nil {
			return err
		}
		if err := atrbac.Start(nil); err != nil {
			return err
		}
		tb.atrbac = atrbac
		return nil
	default:
		return fmt.Errorf("testbed: unknown condition %v", tb.cfg.Condition)
	}
}

// Clock exposes the simulated clock.
func (tb *Testbed) Clock() *simclock.Simulated { return tb.clock }

// Policy exposes the policy manager (for inspection in tests).
func (tb *Testbed) Policy() *policy.Manager { return tb.pm }

// Entities exposes the entity resolution manager.
func (tb *Testbed) Entities() *entity.Manager { return tb.erm }

// Directory exposes the AD stand-in.
func (tb *Testbed) Directory() *services.Directory { return tb.dir }

// Roster exposes the role structure.
func (tb *Testbed) Roster() pdp.Roster { return tb.roster }

// Host returns a host by name.
func (tb *Testbed) Host(name string) (*Host, bool) {
	h, ok := tb.hosts[name]
	return h, ok
}

// Hosts returns all host names, sorted.
func (tb *Testbed) Hosts() []string {
	names := make([]string, 0, len(tb.hosts))
	for n := range tb.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EndHosts returns all non-server host names, sorted.
func (tb *Testbed) EndHosts() []string {
	var names []string
	for n, h := range tb.hosts {
		if !h.IsServer {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// VulnerableHosts returns the exploitable hosts, sorted.
func (tb *Testbed) VulnerableHosts() []string {
	var names []string
	for n, h := range tb.hosts {
		if h.Vulnerable {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Outbreak exposes the worm outbreak state.
func (tb *Testbed) Outbreak() *worm.Outbreak { return tb.outbreak }

// logon applies a log-on: credentials get cached on the machine, the ERM
// binding updates, and (under AT-RBAC) the PDP reacts.
func (tb *Testbed) logon(user, host string) {
	_ = tb.dir.CacheCredential(host, user)
	tb.erm.BindUserHost(user, host)
	if tb.atrbac != nil {
		tb.atrbac.HandleAuth(sensors.AuthEvent{User: user, Host: host, LoggedOn: true})
	}
}

func (tb *Testbed) logoff(user, host string) {
	tb.erm.UnbindUserHost(user, host)
	if tb.atrbac != nil {
		tb.atrbac.HandleAuth(sensors.AuthEvent{User: user, Host: host, LoggedOn: false})
	}
}

// LoggedOn reports whether any user is currently logged onto host.
func (tb *Testbed) LoggedOn(host string) bool {
	return len(tb.erm.UsersOn(host)) > 0
}
