package testbed

import (
	"sort"
	"time"
)

// buildScripts generates each user's day-long log-on/log-off script
// (paper §V-B): every script has at least two hours logged on between
// 09:00 and 13:00; most users return for the afternoon; a few work into
// the evening; activity dwindles outside business hours. Scripts are
// deterministic per seed and fixed across conditions.
func (tb *Testbed) buildScripts() {
	for _, name := range tb.EndHosts() {
		h := tb.hosts[name]
		user := h.PrimaryUser
		var script []Interval

		// Morning block: start 08:30–10:30, lasting 2–4 h past 09:00 —
		// every script keeps the paper's "at least two hours logged on
		// within 09:00–13:00". The spread in arrival times is what lets
		// late hosts escape a morning outbreak (the paper's post-hoc
		// 10:46 log-on).
		start := 8*time.Hour + 30*time.Minute + time.Duration(tb.rng.Int63n(int64(120*time.Minute)))
		effective := start
		if effective < 9*time.Hour {
			effective = 9 * time.Hour
		}
		// Ensure ≥2h past 09:00 regardless of an early arrival.
		dur := (effective - start) + 2*time.Hour + time.Duration(tb.rng.Int63n(int64(2*time.Hour)))
		script = append(script, Interval{Start: start, End: start + dur})

		// Afternoon block for 90% of users: 13:00–14:00 start, 2–4.5 h.
		if tb.rng.Float64() < 0.9 {
			aStart := 13*time.Hour + time.Duration(tb.rng.Int63n(int64(time.Hour)))
			if aStart < script[0].End+10*time.Minute {
				aStart = script[0].End + 10*time.Minute
			}
			aDur := 2*time.Hour + time.Duration(tb.rng.Int63n(int64(150*time.Minute)))
			script = append(script, Interval{Start: aStart, End: aStart + aDur})
		}

		// Evening block for 15%: 18:30–20:30 start, 0.5–2 h.
		if tb.rng.Float64() < 0.15 {
			eStart := 18*time.Hour + 30*time.Minute + time.Duration(tb.rng.Int63n(int64(2*time.Hour)))
			prev := script[len(script)-1].End
			if eStart < prev+10*time.Minute {
				eStart = prev + 10*time.Minute
			}
			eDur := 30*time.Minute + time.Duration(tb.rng.Int63n(int64(90*time.Minute)))
			script = append(script, Interval{Start: eStart, End: eStart + eDur})
		}
		tb.scripts[user] = script
	}
}

// Script returns a user's logged-on intervals.
func (tb *Testbed) Script(user string) []Interval {
	return append([]Interval(nil), tb.scripts[user]...)
}

// FootholdHost picks the departmental end host to infect for a foothold at
// the given offset from midnight: the host whose user is logged on at that
// time with the earliest arrival (the paper's foothold is a host in active
// use, compromised e.g. via a malicious software update). If nobody is
// logged on at that hour, the first end host is returned — an unattended
// always-on desktop.
func (tb *Testbed) FootholdHost(at time.Duration) string {
	bestName := ""
	bestStart := time.Duration(-1)
	for _, name := range tb.EndHosts() {
		h := tb.hosts[name]
		for _, iv := range tb.scripts[h.PrimaryUser] {
			if iv.Start <= at && at < iv.End {
				if bestStart < 0 || iv.Start < bestStart {
					bestName = name
					bestStart = iv.Start
				}
				break
			}
		}
	}
	if bestName != "" {
		return bestName
	}
	return tb.EndHosts()[0]
}

// scheduleDay registers every script event and periodic switch timeout
// sweeps on the simulated clock.
func (tb *Testbed) scheduleDay(horizon time.Duration) {
	for _, name := range tb.EndHosts() {
		h := tb.hosts[name]
		user := h.PrimaryUser
		host := h.Name
		for _, iv := range tb.scripts[user] {
			iv := iv
			tb.clock.ScheduleAt(tb.cfg.Epoch.Add(iv.Start), func() { tb.logon(user, host) })
			tb.clock.ScheduleAt(tb.cfg.Epoch.Add(iv.End), func() { tb.logoff(user, host) })
		}
	}
	// Sweep flow-rule timeouts every simulated minute so stale entries do
	// not exhaust table capacity.
	for off := time.Minute; off <= horizon; off += time.Minute {
		tb.clock.ScheduleAt(tb.cfg.Epoch.Add(off), func() {
			tb.core.SweepTimeouts()
			for _, sw := range tb.switches {
				sw.SweepTimeouts()
			}
		})
	}
}

// InfectionRecord reports one infection.
type InfectionRecord struct {
	Host string
	// At is the offset from the epoch (midnight).
	At time.Duration
}

// Result summarizes one outbreak run.
type Result struct {
	Condition Condition
	Foothold  string
	// FootholdAt is the infection start, offset from midnight.
	FootholdAt time.Duration
	// Infections are ordered by time (the foothold first).
	Infections []InfectionRecord
	// TotalHosts is the testbed size (92).
	TotalHosts int
}

// InfectedBy returns how many hosts were infected within d of the foothold.
func (r *Result) InfectedBy(d time.Duration) int {
	n := 0
	for _, rec := range r.Infections {
		if rec.At-r.FootholdAt <= d {
			n++
		}
	}
	return n
}

// FirstSpread returns the delay from foothold to the first *other* host's
// infection, and false if the worm never spread.
func (r *Result) FirstSpread() (time.Duration, bool) {
	for _, rec := range r.Infections {
		if rec.Host != r.Foothold {
			return rec.At - r.FootholdAt, true
		}
	}
	return 0, false
}

// Timeline buckets cumulative infections at the given interval for span
// time after the foothold (inclusive of t=0).
func (r *Result) Timeline(interval, span time.Duration) []int {
	var out []int
	for t := time.Duration(0); t <= span; t += interval {
		out = append(out, r.InfectedBy(t))
	}
	return out
}

// RunInfection executes the full scenario: user scripts run from midnight,
// the worm takes its foothold at footholdAt (offset from midnight), and
// the simulation runs until horizon. It returns the infection record.
func (tb *Testbed) RunInfection(foothold string, footholdAt, horizon time.Duration) (*Result, error) {
	if _, ok := tb.hosts[foothold]; !ok {
		return nil, errUnknownHost(foothold)
	}
	tb.scheduleDay(horizon)
	tb.clock.ScheduleAt(tb.cfg.Epoch.Add(footholdAt), func() {
		tb.outbreak.Infect(foothold)
	})
	tb.clock.RunUntil(tb.cfg.Epoch.Add(horizon))

	res := &Result{
		Condition:  tb.cfg.Condition,
		Foothold:   foothold,
		FootholdAt: footholdAt,
		TotalHosts: len(tb.hosts),
	}
	for host, at := range tb.outbreak.Infections() {
		res.Infections = append(res.Infections, InfectionRecord{Host: host, At: at.Sub(tb.cfg.Epoch)})
	}
	sort.Slice(res.Infections, func(i, j int) bool {
		if res.Infections[i].At != res.Infections[j].At {
			return res.Infections[i].At < res.Infections[j].At
		}
		return res.Infections[i].Host < res.Infections[j].Host
	})
	return res, nil
}

type errUnknownHost string

func (e errUnknownHost) Error() string { return "testbed: unknown host " + string(e) }
