package testbed

import (
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/worm"
)

const nineAM = 9 * time.Hour

func build(t *testing.T, cond Condition, seed int64) *Testbed {
	t.Helper()
	tb, err := New(Config{Condition: cond, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func footholdOf(tb *Testbed) string {
	// A departmental end host in active use at 09:00.
	return tb.FootholdHost(nineAM)
}

func TestPopulationMatchesPaper(t *testing.T) {
	tb := build(t, ConditionBaseline, 1)
	if got := len(tb.Hosts()); got != 92 {
		t.Fatalf("total hosts = %d, want 92", got)
	}
	if got := len(tb.EndHosts()); got != 86 {
		t.Fatalf("end hosts = %d, want 86", got)
	}
	vuln := tb.VulnerableHosts()
	if got := len(vuln); got != 16 {
		t.Fatalf("vulnerable hosts = %d, want 16 (10 end hosts + 6 servers)", got)
	}
	servers := 0
	deptWithVuln := map[string]int{}
	for _, name := range vuln {
		h, _ := tb.Host(name)
		if h.IsServer {
			servers++
		} else {
			deptWithVuln[h.Enclave]++
		}
	}
	if servers != 6 {
		t.Fatalf("vulnerable servers = %d, want all 6", servers)
	}
	if len(deptWithVuln) != 10 {
		t.Fatalf("departments with a vulnerable host = %d, want 10", len(deptWithVuln))
	}
	for dept, n := range deptWithVuln {
		if n != 1 {
			t.Fatalf("department %s has %d vulnerable hosts, want 1", dept, n)
		}
	}
}

func TestScriptsGuaranteeMorningPresence(t *testing.T) {
	tb := build(t, ConditionBaseline, 2)
	for _, name := range tb.EndHosts() {
		h, _ := tb.Host(name)
		script := tb.Script(h.PrimaryUser)
		if len(script) == 0 {
			t.Fatalf("user %s has no script", h.PrimaryUser)
		}
		// ≥2h overlap with 09:00–13:00 (paper §V-B).
		var overlap time.Duration
		for _, iv := range script {
			lo, hi := iv.Start, iv.End
			if lo < nineAM {
				lo = nineAM
			}
			if hi > 13*time.Hour {
				hi = 13 * time.Hour
			}
			if hi > lo {
				overlap += hi - lo
			}
		}
		if overlap < 2*time.Hour {
			t.Fatalf("user %s has %v morning presence, want ≥2h", h.PrimaryUser, overlap)
		}
		// Intervals are ordered and non-overlapping.
		for i := 1; i < len(script); i++ {
			if script[i].Start < script[i-1].End {
				t.Fatalf("user %s has overlapping intervals %v", h.PrimaryUser, script)
			}
		}
	}
}

func TestScriptsDeterministicPerSeed(t *testing.T) {
	a := build(t, ConditionBaseline, 7)
	b := build(t, ConditionATRBAC, 7)
	for _, name := range a.EndHosts() {
		h, _ := a.Host(name)
		sa, sb := a.Script(h.PrimaryUser), b.Script(h.PrimaryUser)
		if len(sa) != len(sb) {
			t.Fatalf("scripts differ across conditions for %s", h.PrimaryUser)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("scripts differ across conditions for %s", h.PrimaryUser)
			}
		}
	}
}

func TestBaselineFullInfectionFast(t *testing.T) {
	tb := build(t, ConditionBaseline, 3)
	res, err := tb.RunInfection(footholdOf(tb), nineAM, 11*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Infections); got != 92 {
		t.Fatalf("baseline infected %d/92", got)
	}
	first, ok := res.FirstSpread()
	if !ok {
		t.Fatal("worm never spread")
	}
	// Paper: first infection after ~1 second, all hosts within ~2 minutes.
	if first > 30*time.Second {
		t.Fatalf("first spread took %v, want seconds", first)
	}
	if got := res.InfectedBy(5 * time.Minute); got != 92 {
		t.Fatalf("baseline infected %d/92 within 5 min, want all", got)
	}
}

func TestSRBACSlowerButComplete(t *testing.T) {
	tb := build(t, ConditionSRBAC, 3)
	res, err := tb.RunInfection(footholdOf(tb), nineAM, 11*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := res.FirstSpread()
	if !ok {
		t.Fatal("worm never spread under S-RBAC")
	}
	// Paper: first infection ≈2.5 min (enclave RBAC blocks early probes).
	if first < 30*time.Second {
		t.Fatalf("first spread %v, want ≥30s (blocked probes first)", first)
	}
	// Paper: full infection by ~25 min; assert the same order of
	// magnitude and strictly slower than baseline.
	if got := res.InfectedBy(60 * time.Minute); got != 92 {
		t.Fatalf("S-RBAC infected %d/92 within 60 min, want all", got)
	}
	if got := res.InfectedBy(2 * time.Minute); got >= 92 {
		t.Fatal("S-RBAC as fast as baseline")
	}
}

func TestATRBACLimitsInfection(t *testing.T) {
	tb := build(t, ConditionATRBAC, 3)
	res, err := tb.RunInfection(footholdOf(tb), nineAM, 11*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Infections)
	if total <= 1 {
		t.Fatalf("AT-RBAC at 09:00 should still spread some (morning log-ons), got %d", total)
	}
	// Paper: 83/92 with at least one enclave escaping; assert spread is
	// substantial but incomplete.
	if total >= 92 {
		t.Fatalf("AT-RBAC infected all 92; paper shows incomplete infection")
	}
	srbac := build(t, ConditionSRBAC, 3)
	sres, err := srbac.RunInfection(footholdOf(srbac), nineAM, 11*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if total > len(sres.Infections) {
		t.Fatalf("AT-RBAC (%d) infected more than S-RBAC (%d)", total, len(sres.Infections))
	}
}

func TestATRBACNightFootholdIsolated(t *testing.T) {
	tb := build(t, ConditionATRBAC, 3)
	res, err := tb.RunInfection(tb.FootholdHost(3*time.Hour), 3*time.Hour, 7*time.Hour) // 03:00
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 5b: a foothold outside business hours cannot spread
	// before the worm times out (max lifetime 60 min < first log-on 08:30).
	if got := len(res.Infections); got != 1 {
		t.Fatalf("night foothold infected %d hosts, want 1 (itself)", got)
	}
}

func TestBaselineNightStillSpreads(t *testing.T) {
	tb := build(t, ConditionBaseline, 3)
	res, err := tb.RunInfection(tb.FootholdHost(3*time.Hour), 3*time.Hour, 5*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Infections); got != 92 {
		t.Fatalf("baseline night foothold infected %d/92, want all (no access control)", got)
	}
}

func TestTryConnectRespectsCondition(t *testing.T) {
	tb := build(t, ConditionSRBAC, 5)
	// Same-enclave: allowed.
	if !tb.TryConnect("d01-h1", "d01-h2", worm.SMBPort) {
		t.Fatal("S-RBAC blocked same-enclave flow")
	}
	// Cross-enclave host-to-host: denied.
	if tb.TryConnect("d01-h1", "d02-h1", worm.SMBPort) {
		t.Fatal("S-RBAC allowed cross-enclave host flow")
	}
	// Host to server: allowed.
	if !tb.TryConnect("d01-h1", "srv-mail", worm.SMBPort) {
		t.Fatal("S-RBAC blocked host→server flow")
	}
}

func TestATRBACCoreServicesOnlyWhenLoggedOff(t *testing.T) {
	tb := build(t, ConditionATRBAC, 5)
	// Nobody is logged on (no scripts running: we don't schedule the day).
	if tb.TryConnect("d01-h1", "srv-mail", worm.SMBPort) {
		t.Fatal("no-user host reached a server over SMB")
	}
	if tb.TryConnect("d01-h1", "d01-h2", worm.SMBPort) {
		t.Fatal("no-user host reached an enclave peer")
	}
	// DNS to the AD server is always allowed.
	if !tb.tryUDP("d01-h1", "srv-ad", 53) {
		t.Fatal("no-user host could not reach DNS")
	}
	// But SMB to the same AD server is not.
	if tb.TryConnect("d01-h1", "srv-ad", worm.SMBPort) {
		t.Fatal("no-user host reached the AD server over SMB")
	}

	// After log-on on both sides, peer and server flows open up.
	tb.logon("u-d01-h1", "d01-h1")
	tb.logon("u-d01-h2", "d01-h2")
	if !tb.TryConnect("d01-h1", "d01-h2", worm.SMBPort) {
		t.Fatal("logged-on peers blocked")
	}
	if !tb.TryConnect("d01-h1", "srv-mail", worm.SMBPort) {
		t.Fatal("logged-on host blocked from server")
	}
	// Log-off revokes and flushes: reachability closes again.
	tb.logoff("u-d01-h2", "d01-h2")
	if tb.TryConnect("d01-h1", "d01-h2", worm.SMBPort) {
		t.Fatal("flow still admitted after peer logged off")
	}
}

func TestQuarantineDelayContainsOutbreak(t *testing.T) {
	// AT-RBAC with a 5-minute incident response: the outbreak must be
	// contained far below the no-response total, and the foothold itself
	// ends up isolated.
	base := build(t, ConditionATRBAC, 3)
	noIR, err := base.RunInfection(base.FootholdHost(nineAM), nineAM, 17*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	withQ, err := New(Config{Condition: ConditionATRBAC, Seed: 3, QuarantineDelay: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	foothold := withQ.FootholdHost(nineAM)
	res, err := withQ.RunInfection(foothold, nineAM, 17*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if 2*len(res.Infections) >= len(noIR.Infections) {
		t.Fatalf("IR run infected %d, no-IR %d; want large containment",
			len(res.Infections), len(noIR.Infections))
	}
	if !withQ.Quarantined(foothold) {
		t.Fatal("foothold never quarantined")
	}
	// Quarantined hosts are network-isolated.
	if withQ.TryConnect(foothold, "srv-mail", worm.SMBPort) {
		t.Fatal("quarantined foothold can still reach a server")
	}
	if base.Quarantined("d01-h1") {
		t.Fatal("Quarantined reports true without the model enabled")
	}
}
