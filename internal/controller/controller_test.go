package controller

import (
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

var (
	macA = netpkt.MustParseMAC("02:00:00:00:00:0a")
	macB = netpkt.MustParseMAC("02:00:00:00:00:0b")
	ipA  = netpkt.MustParseIPv4("10.0.0.10")
	ipB  = netpkt.MustParseIPv4("10.0.0.11")
)

// host is a minimal endpoint: it records received frames and can send into
// a switch port.
type host struct {
	sw   *switchsim.Switch
	port uint32
	rx   chan []byte
}

func attachHost(t *testing.T, sw *switchsim.Switch, port uint32) *host {
	t.Helper()
	h := &host{sw: sw, port: port, rx: make(chan []byte, 64)}
	if err := sw.AttachPort(port, func(f []byte) {
		select {
		case h.rx <- f:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *host) send(frame []byte) { h.sw.Inject(h.port, frame) }

func (h *host) recv(t *testing.T, within time.Duration) []byte {
	t.Helper()
	select {
	case f := <-h.rx:
		return f
	case <-time.After(within):
		t.Fatal("timeout waiting for frame")
		return nil
	}
}

func startLearningSwitch(t *testing.T) (*switchsim.Switch, *Controller) {
	t.Helper()
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	ctl := New(Config{})
	swEnd, ctlEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	go func() { _ = ctl.Serve(ctlEnd) }()
	t.Cleanup(func() {
		swEnd.Close()
		ctlEnd.Close()
	})
	if !sw.WaitConfigured(5 * time.Second) {
		t.Fatal("switch never configured by controller")
	}
	return sw, ctl
}

func TestLearningSwitchFloodsThenForwards(t *testing.T) {
	sw, ctl := startLearningSwitch(t)
	hA := attachHost(t, sw, 1)
	hB := attachHost(t, sw, 2)
	hC := attachHost(t, sw, 3)

	// First frame A→B: destination unknown, controller floods.
	frame := netpkt.BuildTCP(macA, macB, ipA, ipB, &netpkt.TCPSegment{SrcPort: 100, DstPort: 200, Flags: netpkt.TCPSyn})
	hA.send(frame)
	hB.recv(t, 2*time.Second)
	hC.recv(t, 2*time.Second) // flood reaches C too

	// B replies: controller has learned A's port, so it installs a flow
	// and forwards; C must NOT see it.
	reply := netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 200, DstPort: 100, Flags: netpkt.TCPSyn | netpkt.TCPAck})
	hB.send(reply)
	hA.recv(t, 2*time.Second)
	select {
	case <-hC.rx:
		t.Fatal("learned unicast still flooded to C")
	case <-time.After(50 * time.Millisecond):
	}

	if port, ok := ctl.MACLocation(1, macA); !ok || port != 1 {
		t.Fatalf("learned location of A = %d, %v", port, ok)
	}
	if port, ok := ctl.MACLocation(1, macB); !ok || port != 2 {
		t.Fatalf("learned location of B = %d, %v", port, ok)
	}

	// Once the flow rule is installed, subsequent B→A traffic is
	// hardware-forwarded without new packet-ins.
	waitUntil(t, func() bool { return sw.FlowCount(0) >= 1 })
	before := ctl.Stats().PacketIns
	hB.send(reply)
	hA.recv(t, 2*time.Second)
	if after := ctl.Stats().PacketIns; after != before {
		t.Fatalf("packet-ins grew %d→%d for an installed flow", before, after)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestBroadcastAlwaysFloods(t *testing.T) {
	sw, _ := startLearningSwitch(t)
	hA := attachHost(t, sw, 1)
	hB := attachHost(t, sw, 2)
	_ = hA
	arp := netpkt.BuildARP(&netpkt.ARP{
		Op: netpkt.ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	})
	hA.send(arp)
	hB.recv(t, 2*time.Second)
	if sw.FlowCount(0) != 0 {
		t.Fatalf("broadcast installed %d flows, want 0", sw.FlowCount(0))
	}
}

func TestMultipleSwitchesIndependentMACTables(t *testing.T) {
	ctl := New(Config{})
	sw1 := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	sw2 := switchsim.NewSwitch(switchsim.Config{DPID: 2})
	for _, sw := range []*switchsim.Switch{sw1, sw2} {
		swEnd, ctlEnd := bufpipe.New()
		sw := sw
		go func() { _ = sw.ServeControl(swEnd) }()
		go func() { _ = ctl.Serve(ctlEnd) }()
		t.Cleanup(func() {
			swEnd.Close()
			ctlEnd.Close()
		})
	}
	if !sw1.WaitConfigured(5*time.Second) || !sw2.WaitConfigured(5*time.Second) {
		t.Fatal("switches never configured")
	}
	hA := attachHost(t, sw1, 1)
	attachHost(t, sw1, 2)
	hC := attachHost(t, sw2, 1)
	attachHost(t, sw2, 2)

	frame := netpkt.BuildTCP(macA, macB, ipA, ipB, &netpkt.TCPSegment{SrcPort: 1, DstPort: 2})
	hA.send(frame)
	waitUntil(t, func() bool {
		_, ok := ctl.MACLocation(1, macA)
		return ok
	})
	hC.send(netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 2, DstPort: 1}))
	waitUntil(t, func() bool {
		_, ok := ctl.MACLocation(2, macB)
		return ok
	})
	if _, ok := ctl.MACLocation(2, macA); ok {
		t.Fatal("MAC table leaked across switches")
	}
}

func TestPortDownPurgesLearnedMACs(t *testing.T) {
	sw, ctl := startLearningSwitch(t)
	hA := attachHost(t, sw, 1)
	hB := attachHost(t, sw, 2)
	hC := attachHost(t, sw, 3)

	// Teach the controller where A and B are.
	hA.send(netpkt.BuildTCP(macA, macB, ipA, ipB, &netpkt.TCPSegment{SrcPort: 1, DstPort: 2}))
	hB.recv(t, 2*time.Second)
	hB.send(netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 2, DstPort: 1}))
	hA.recv(t, 2*time.Second)
	waitUntil(t, func() bool {
		_, okA := ctl.MACLocation(1, macA)
		_, okB := ctl.MACLocation(1, macB)
		return okA && okB
	})

	// B's port goes down: the switch announces it, the controller forgets B.
	sw.DetachPort(2)
	waitUntil(t, func() bool {
		_, ok := ctl.MACLocation(1, macB)
		return !ok
	})
	// A's entry is untouched.
	if _, ok := ctl.MACLocation(1, macA); !ok {
		t.Fatal("port-down purge removed an unrelated MAC")
	}
	_ = hC
}
