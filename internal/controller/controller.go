// Package controller implements a reactive learning-switch SDN controller:
// it learns MAC-to-port attachments from packet-ins, installs forwarding
// flow rules, and floods unknown destinations. It is the from-scratch
// substrate standing in for ONOS's reactive forwarding in the paper's
// testbed, and is deliberately DFI-unaware: DFI's proxy interposes on its
// connections without the controller's knowledge (controller obliviousness,
// paper §III-B).
package controller

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// Config parameterizes a Controller.
type Config struct {
	// FlowPriority is the priority of installed forwarding rules.
	FlowPriority uint16
	// IdleTimeoutSec is the idle timeout on installed forwarding rules.
	IdleTimeoutSec uint16
	// Clock and ProcessingLatency simulate the controller's per-packet-in
	// compute cost (ONOS's reactive forwarding path); zero by default.
	Clock             simclock.Clock
	ProcessingLatency store.LatencyModel
	// MaxConcurrent bounds in-flight packet-in handlers per connection
	// (default 64).
	MaxConcurrent int
}

// Stats exposes aggregate controller statistics.
type Stats struct {
	PacketIns uint64
	FlowMods  uint64
	Floods    uint64
	Errors    uint64
}

// Controller is a reactive learning-switch controller serving any number of
// switch connections.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	macTables map[uint64]map[netpkt.MAC]uint32

	packetIns atomic.Uint64
	flowMods  atomic.Uint64
	floods    atomic.Uint64
	errs      atomic.Uint64
}

// New returns a controller with the given configuration.
func New(cfg Config) *Controller {
	if cfg.FlowPriority == 0 {
		cfg.FlowPriority = 10
	}
	if cfg.IdleTimeoutSec == 0 {
		cfg.IdleTimeoutSec = 60
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	return &Controller{
		cfg:       cfg,
		macTables: make(map[uint64]map[netpkt.MAC]uint32),
	}
}

// Stats returns a snapshot of aggregate statistics.
func (c *Controller) Stats() Stats {
	return Stats{
		PacketIns: c.packetIns.Load(),
		FlowMods:  c.flowMods.Load(),
		Floods:    c.floods.Load(),
		Errors:    c.errs.Load(),
	}
}

// Serve handles one switch connection until it closes, performing the
// OpenFlow handshake and then reacting to packet-ins. It blocks; run one
// goroutine per switch.
func (c *Controller) Serve(rw io.ReadWriter) error {
	conn := openflow.NewConn(rw)
	fr, err := conn.Handshake()
	if err != nil {
		return fmt.Errorf("controller: %w", err)
	}
	dpid := fr.DatapathID

	// Ask for full packets on miss, as reactive controllers do.
	if _, err := conn.Send(&openflow.SetConfig{MissSendLen: 0xffff}); err != nil {
		return fmt.Errorf("controller: set config: %w", err)
	}

	sem := make(chan struct{}, c.cfg.MaxConcurrent)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		xid, msg, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("controller: recv: %w", err)
		}
		switch m := msg.(type) {
		case *openflow.EchoRequest:
			if err := conn.SendXID(xid, &openflow.EchoReply{Data: m.Data}); err != nil {
				return fmt.Errorf("controller: echo: %w", err)
			}
		case *openflow.PacketIn:
			sem <- struct{}{}
			wg.Add(1)
			go func(pi *openflow.PacketIn) {
				defer wg.Done()
				defer func() { <-sem }()
				c.handlePacketIn(conn, dpid, pi)
			}(m)
		case *openflow.PortStatus:
			if m.Reason == openflow.PortReasonDelete || m.Desc.State&openflow.PortStateLinkDown != 0 {
				c.purgePort(dpid, m.Desc.PortNo)
			}
		case *openflow.Error:
			c.errs.Add(1)
		default:
			// Flow-removed etc. carry no work for a learning switch.
		}
	}
}

func (c *Controller) handlePacketIn(conn *openflow.Conn, dpid uint64, pi *openflow.PacketIn) {
	c.packetIns.Add(1)
	store.Charge(c.cfg.Clock, c.cfg.ProcessingLatency)

	inPort := pi.InPort()
	eth, err := netpkt.UnmarshalEthernet(pi.Data)
	if err != nil {
		return
	}

	c.mu.Lock()
	table := c.macTables[dpid]
	if table == nil {
		table = make(map[netpkt.MAC]uint32)
		c.macTables[dpid] = table
	}
	if !eth.Src.IsBroadcast() && !eth.Src.IsZero() && inPort != openflow.PortAny {
		table[eth.Src] = inPort
	}
	outPort, known := table[eth.Dst]
	c.mu.Unlock()

	if eth.Dst.IsBroadcast() || !known {
		c.floods.Add(1)
		c.packetOut(conn, inPort, pi.Data, openflow.PortFlood)
		return
	}

	// Install a per-flow forwarding rule (as ONOS reactive forwarding
	// does — every new flow visits the controller once), then release the
	// packet along the same path.
	key, err := netpkt.ExtractFlowKey(pi.Data)
	if err != nil {
		return
	}
	fm := &openflow.FlowMod{
		TableID:     0, // the controller's view; the DFI Proxy shifts it
		Command:     openflow.FlowModAdd,
		IdleTimeout: c.cfg.IdleTimeoutSec,
		Priority:    c.cfg.FlowPriority,
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortAny,
		OutGroup:    0xffffffff,
		Match:       openflow.ExactMatchFor(key, inPort),
		Instructions: []openflow.Instruction{
			&openflow.InstructionApplyActions{
				Actions: []openflow.Action{&openflow.ActionOutput{Port: outPort}},
			},
		},
	}
	if _, err := conn.Send(fm); err != nil {
		c.errs.Add(1)
		return
	}
	c.flowMods.Add(1)
	c.packetOut(conn, inPort, pi.Data, outPort)
}

func (c *Controller) packetOut(conn *openflow.Conn, inPort uint32, data []byte, outPort uint32) {
	po := &openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   inPort,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: outPort}},
		Data:     data,
	}
	if _, err := conn.Send(po); err != nil {
		c.errs.Add(1)
	}
}

// purgePort forgets every MAC learned on a now-down port, so stale
// locations cannot black-hole traffic after a host moves.
func (c *Controller) purgePort(dpid uint64, port uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for mac, p := range c.macTables[dpid] {
		if p == port {
			delete(c.macTables[dpid], mac)
		}
	}
}

// MACLocation reports the learned port for mac on switch dpid.
func (c *Controller) MACLocation(dpid uint64, mac netpkt.MAC) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	port, ok := c.macTables[dpid][mac]
	return port, ok
}
