package store

import (
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/simclock"
)

func TestZeroLatency(t *testing.T) {
	if d := Zero().Sample(); d != 0 {
		t.Fatalf("Zero().Sample() = %v", d)
	}
}

func TestFixedLatency(t *testing.T) {
	m := Fixed(5 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if d := m.Sample(); d != 5*time.Millisecond {
			t.Fatalf("Fixed.Sample() = %v", d)
		}
	}
}

func TestGaussianStats(t *testing.T) {
	mean := 2410 * time.Microsecond
	stddev := 970 * time.Microsecond
	g := NewGaussian(mean, stddev, 1)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := g.Sample()
		if d < 0 {
			t.Fatal("negative sample")
		}
		v := float64(d)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	// Truncation at zero biases the mean slightly upward; allow 5%.
	if diff := gotMean - float64(mean); diff < -0.05*float64(mean) || diff > 0.05*float64(mean) {
		t.Fatalf("mean = %v, want ≈ %v", time.Duration(gotMean), mean)
	}
	gotVar := sumSq/n - gotMean*gotMean
	wantVar := float64(stddev) * float64(stddev)
	if gotVar < 0.8*wantVar || gotVar > 1.2*wantVar {
		t.Fatalf("variance = %v, want ≈ %v", gotVar, wantVar)
	}
}

func TestGaussianDeterministicPerSeed(t *testing.T) {
	a := NewGaussian(time.Millisecond, time.Millisecond/4, 7)
	b := NewGaussian(time.Millisecond, time.Millisecond/4, 7)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestChargeAdvancesSimulatedClock(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	var charged time.Duration
	clk.Go(func() {
		charged = Charge(clk, Fixed(3*time.Millisecond))
	})
	end := clk.Run()
	if charged != 3*time.Millisecond {
		t.Fatalf("charged = %v", charged)
	}
	if want := epoch.Add(3 * time.Millisecond); !end.Equal(want) {
		t.Fatalf("clock at %v, want %v", end, want)
	}
}

func TestChargeNilIsFree(t *testing.T) {
	if d := Charge(nil, Fixed(time.Second)); d != 0 {
		t.Fatalf("Charge(nil, ...) = %v", d)
	}
	if d := Charge(simclock.Real{}, nil); d != 0 {
		t.Fatalf("Charge(..., nil) = %v", d)
	}
}

func TestTableCRUD(t *testing.T) {
	tab := NewTable[string, int]()
	if _, ok := tab.Get("a"); ok {
		t.Fatal("empty table returned a row")
	}
	tab.Put("a", 1)
	tab.Put("b", 2)
	if v, ok := tab.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	tab.Put("a", 10)
	if v, _ := tab.Get("a"); v != 10 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if !tab.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if tab.Delete("a") {
		t.Fatal("double delete = true")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len after delete = %d", tab.Len())
	}
}

func TestTableForEachSnapshotAllowsMutation(t *testing.T) {
	tab := NewTable[int, int]()
	for i := 0; i < 10; i++ {
		tab.Put(i, i)
	}
	seen := 0
	tab.ForEach(func(k, _ int) bool {
		seen++
		tab.Delete(k) // must not deadlock or skip
		return true
	})
	if seen != 10 {
		t.Fatalf("visited %d rows, want 10", seen)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tab.Len())
	}
}

func TestTableForEachEarlyStop(t *testing.T) {
	tab := NewTable[int, int]()
	for i := 0; i < 10; i++ {
		tab.Put(i, i)
	}
	seen := 0
	tab.ForEach(func(int, int) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("visited %d rows after early stop, want 1", seen)
	}
}

func TestTableUpdate(t *testing.T) {
	tab := NewTable[string, int]()
	tab.Update("counter", func(v int) int { return v + 1 })
	tab.Update("counter", func(v int) int { return v + 1 })
	if v, _ := tab.Get("counter"); v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
}
