// Package store provides the in-memory storage layer backing DFI's Policy
// Manager and Entity Resolution Manager. It is the from-scratch substrate
// standing in for the paper's MySQL databases: concurrent tables plus an
// injectable query-latency model, so that the RPC+database costs the paper
// measured (≈2.4–2.5 ms per query, Table II) can be reproduced for the
// evaluation while remaining zero for ordinary library use.
package store

import (
	"math/rand"
	"sync"
	"time"

	"github.com/dfi-sdn/dfi/internal/simclock"
)

// LatencyModel samples the simulated cost of one query round trip.
type LatencyModel interface {
	// Sample returns the cost of the next query; never negative.
	Sample() time.Duration
}

type zeroLatency struct{}

func (zeroLatency) Sample() time.Duration { return 0 }

// Zero returns a LatencyModel with no cost (the default for library use).
func Zero() LatencyModel { return zeroLatency{} }

// Gaussian is a LatencyModel with normally distributed samples truncated at
// zero, matching the mean ± σ figures the paper reports.
type Gaussian struct {
	mu     sync.Mutex
	rng    *rand.Rand
	mean   time.Duration
	stddev time.Duration
}

var _ LatencyModel = (*Gaussian)(nil)

// NewGaussian returns a Gaussian latency model with the given parameters,
// deterministic for a given seed.
func NewGaussian(mean, stddev time.Duration, seed int64) *Gaussian {
	return &Gaussian{rng: rand.New(rand.NewSource(seed)), mean: mean, stddev: stddev}
}

// Sample implements LatencyModel.
func (g *Gaussian) Sample() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := time.Duration(g.rng.NormFloat64()*float64(g.stddev)) + g.mean
	if d < 0 {
		d = 0
	}
	return d
}

// Fixed returns a LatencyModel that always samples d.
func Fixed(d time.Duration) LatencyModel { return fixedLatency(d) }

type fixedLatency time.Duration

func (f fixedLatency) Sample() time.Duration { return time.Duration(f) }

// Charge sleeps on clock for one sample of m and returns the charged cost.
// A nil model or clock charges nothing.
//
// On the real clock, time.Sleep overshoots by roughly the kernel timer
// granularity (measured near a millisecond on coarse-tick kernels), which
// would inflate every calibrated stage cost. Charge compensates by
// measuring the overshoot once and sleeping that much less; charges below
// the measured overshoot cost only their code path, keeping the benchmark's
// aggregate latency faithful to the model.
func Charge(clock simclock.Clock, m LatencyModel) time.Duration {
	if m == nil || clock == nil {
		return 0
	}
	d := m.Sample()
	if d <= 0 {
		return 0
	}
	if _, isReal := clock.(simclock.Real); isReal {
		if over := sleepOvershoot(); d > over {
			time.Sleep(d - over)
		}
		return d
	}
	clock.Sleep(d)
	return d
}

var (
	overshootOnce sync.Once
	overshootEst  time.Duration
)

// sleepOvershoot measures, once, how far time.Sleep overshoots on this
// machine (a memoized hardware calibration constant, not mutable state).
func sleepOvershoot() time.Duration {
	overshootOnce.Do(func() {
		const (
			probes = 8
			probeD = 200 * time.Microsecond
		)
		var total time.Duration
		for i := 0; i < probes; i++ {
			start := time.Now()
			time.Sleep(probeD)
			total += time.Since(start) - probeD
		}
		overshootEst = total / probes
		if overshootEst < 0 {
			overshootEst = 0
		}
	})
	return overshootEst
}

// Table is a concurrent map with copy-on-read iteration, the storage
// primitive behind the policy and binding databases.
type Table[K comparable, V any] struct {
	mu   sync.RWMutex
	rows map[K]V
}

// NewTable returns an empty table.
func NewTable[K comparable, V any]() *Table[K, V] {
	return &Table[K, V]{rows: make(map[K]V)}
}

// Get returns the row for k.
func (t *Table[K, V]) Get(k K) (V, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.rows[k]
	return v, ok
}

// Put inserts or replaces the row for k.
func (t *Table[K, V]) Put(k K, v V) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[k] = v
}

// Delete removes the row for k, reporting whether it existed.
func (t *Table[K, V]) Delete(k K) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.rows[k]
	delete(t.rows, k)
	return ok
}

// Len returns the number of rows.
func (t *Table[K, V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// ForEach calls fn for every row of a consistent snapshot, stopping early
// if fn returns false. fn may safely mutate the table.
func (t *Table[K, V]) ForEach(fn func(K, V) bool) {
	t.mu.RLock()
	snapshot := make(map[K]V, len(t.rows))
	for k, v := range t.rows {
		snapshot[k] = v
	}
	t.mu.RUnlock()
	for k, v := range snapshot {
		if !fn(k, v) {
			return
		}
	}
}

// Update atomically applies fn to the row for k (zero value if absent) and
// stores the result. fn runs with the table's lock held — the atomicity is
// the point of this API — so it must be a pure transform: calling back into
// the same Table from fn deadlocks.
func (t *Table[K, V]) Update(k K, fn func(V) V) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[k] = fn(t.rows[k]) //dfi:ignore lockheld
}
