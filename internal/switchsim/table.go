package switchsim

import (
	"sort"
	"time"

	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// flowEntry is one installed flow rule.
type flowEntry struct {
	match        *openflow.Match
	priority     uint16
	cookie       uint64
	idleTimeout  time.Duration // zero = none
	hardTimeout  time.Duration // zero = none
	flags        uint16
	instructions []openflow.Instruction

	installedAt time.Time
	lastMatched time.Time
	seq         uint64
	packets     uint64
	bytes       uint64
}

func (e *flowEntry) expired(now time.Time) (bool, uint8) {
	if e.hardTimeout > 0 && !now.Before(e.installedAt.Add(e.hardTimeout)) {
		return true, openflow.FlowRemovedHardTimeout
	}
	if e.idleTimeout > 0 && !now.Before(e.lastMatched.Add(e.idleTimeout)) {
		return true, openflow.FlowRemovedIdleTimeout
	}
	return false, 0
}

// exactKind distinguishes the canonical fully-pinned match shapes that
// ExactMatchFor produces, so exact entries can live in a hash index (the
// software analogue of a TCAM exact-match partition).
type exactKind uint8

const (
	kindNone exactKind = iota // not a canonical exact match
	kindTCP
	kindUDP
	kindIPOther
	kindARP
	kindEthOnly
)

// exactKey is the hash-index key for canonical exact matches.
type exactKey struct {
	kind    exactKind
	inPort  uint32
	ethSrc  netpkt.MAC
	ethDst  netpkt.MAC
	ethType uint16
	ipProto uint8
	ipSrc   netpkt.IPv4
	ipDst   netpkt.IPv4
	l4Src   uint16
	l4Dst   uint16
}

// exactKeyForMatch classifies a match: if it pins exactly the canonical
// field set for some packet shape it returns the index key, else kindNone.
func exactKeyForMatch(m *openflow.Match) exactKey {
	if m.InPort == nil || m.EthSrc == nil || m.EthDst == nil || m.EthType == nil {
		return exactKey{}
	}
	k := exactKey{
		inPort:  *m.InPort,
		ethSrc:  *m.EthSrc,
		ethDst:  *m.EthDst,
		ethType: *m.EthType,
	}
	nIP := m.IPProto != nil || m.IPv4Src != nil || m.IPv4Dst != nil
	nL4 := m.TCPSrc != nil || m.TCPDst != nil || m.UDPSrc != nil || m.UDPDst != nil
	nARP := m.ARPSPA != nil || m.ARPTPA != nil

	switch {
	case *m.EthType == netpkt.EtherTypeIPv4 && m.IPProto != nil && m.IPv4Src != nil && m.IPv4Dst != nil && !nARP:
		k.ipProto = *m.IPProto
		k.ipSrc = *m.IPv4Src
		k.ipDst = *m.IPv4Dst
		switch {
		case *m.IPProto == netpkt.ProtoTCP && m.TCPSrc != nil && m.TCPDst != nil && m.UDPSrc == nil && m.UDPDst == nil:
			k.kind = kindTCP
			k.l4Src = *m.TCPSrc
			k.l4Dst = *m.TCPDst
		case *m.IPProto == netpkt.ProtoUDP && m.UDPSrc != nil && m.UDPDst != nil && m.TCPSrc == nil && m.TCPDst == nil:
			k.kind = kindUDP
			k.l4Src = *m.UDPSrc
			k.l4Dst = *m.UDPDst
		case !nL4 && *m.IPProto != netpkt.ProtoTCP && *m.IPProto != netpkt.ProtoUDP:
			k.kind = kindIPOther
		default:
			return exactKey{}
		}
	case *m.EthType == netpkt.EtherTypeARP && m.ARPSPA != nil && m.ARPTPA != nil && !nIP && !nL4:
		k.kind = kindARP
		k.ipSrc = *m.ARPSPA
		k.ipDst = *m.ARPTPA
	case !nIP && !nL4 && !nARP && *m.EthType != netpkt.EtherTypeIPv4 && *m.EthType != netpkt.EtherTypeARP:
		k.kind = kindEthOnly
	default:
		return exactKey{}
	}
	return k
}

// exactKeyForPacket derives the canonical key a packet would be stored
// under, mirroring ExactMatchFor.
func exactKeyForPacket(fk netpkt.FlowKey, inPort uint32) exactKey {
	k := exactKey{
		inPort:  inPort,
		ethSrc:  fk.EthSrc,
		ethDst:  fk.EthDst,
		ethType: fk.EtherType,
	}
	switch {
	case fk.EtherType == netpkt.EtherTypeIPv4 && fk.HasIP:
		k.ipProto = fk.IPProto
		k.ipSrc = fk.IPSrc
		k.ipDst = fk.IPDst
		switch {
		case fk.HasL4 && fk.IPProto == netpkt.ProtoTCP:
			k.kind = kindTCP
			k.l4Src = fk.L4Src
			k.l4Dst = fk.L4Dst
		case fk.HasL4 && fk.IPProto == netpkt.ProtoUDP:
			k.kind = kindUDP
			k.l4Src = fk.L4Src
			k.l4Dst = fk.L4Dst
		default:
			k.kind = kindIPOther
		}
	case fk.EtherType == netpkt.EtherTypeARP && fk.HasIP:
		k.kind = kindARP
		k.ipSrc = fk.IPSrc
		k.ipDst = fk.IPDst
	default:
		k.kind = kindEthOnly
	}
	return k
}

// table is one flow table. Canonical exact-match entries (the shape DFI's
// PCP compiles) live in a hash index; everything else is a priority-sorted
// linear list, as in a TCAM.
type table struct {
	id    uint8
	wild  []*flowEntry // sorted by (priority desc, seq asc)
	exact map[exactKey]*flowEntry

	// lookups/matches feed OFPMP_TABLE statistics; guarded by the
	// switch's table mutex like everything else here.
	lookups uint64
	matches uint64
}

func newTable(id uint8) *table {
	return &table{id: id, exact: make(map[exactKey]*flowEntry)}
}

func (t *table) size() int { return len(t.wild) + len(t.exact) }

func (t *table) sortWild() {
	sort.SliceStable(t.wild, func(i, j int) bool {
		if t.wild[i].priority != t.wild[j].priority {
			return t.wild[i].priority > t.wild[j].priority
		}
		return t.wild[i].seq < t.wild[j].seq
	})
}

// lookup returns the highest-priority live entry matching the packet.
func (t *table) lookup(k netpkt.FlowKey, inPort uint32, now time.Time) *flowEntry {
	t.lookups++
	var best *flowEntry
	if e, ok := t.exact[exactKeyForPacket(k, inPort)]; ok {
		if dead, _ := e.expired(now); !dead {
			best = e
		}
	}
	for _, e := range t.wild {
		if best != nil && (e.priority < best.priority ||
			(e.priority == best.priority && e.seq > best.seq)) {
			break
		}
		if dead, _ := e.expired(now); dead {
			continue
		}
		if e.match.MatchesKey(k, inPort) {
			t.matches++
			return e
		}
	}
	if best != nil {
		t.matches++
	}
	return best
}

// add inserts an entry, replacing any existing entry with an identical
// match and priority (OpenFlow add semantics).
func (t *table) add(e *flowEntry) {
	if key := exactKeyForMatch(e.match); key.kind != kindNone {
		if old, ok := t.exact[key]; ok && old.priority != e.priority {
			// Same match at a different priority cannot share the index
			// slot; demote the newcomer to the linear list.
			t.addWild(e)
			return
		}
		t.exact[key] = e
		return
	}
	t.addWild(e)
}

func (t *table) addWild(e *flowEntry) {
	for i, old := range t.wild {
		if old.priority == e.priority && old.match.Equal(e.match) {
			t.wild[i] = e
			t.sortWild()
			return
		}
	}
	t.wild = append(t.wild, e)
	t.sortWild()
}

// cookieMatches applies the flow-mod cookie/cookie_mask filter.
func cookieMatches(e *flowEntry, cookie, mask uint64) bool {
	return mask == 0 || e.cookie&mask == cookie&mask
}

// removeWhere deletes entries satisfying pred, returning them.
func (t *table) removeWhere(pred func(*flowEntry) bool) []*flowEntry {
	var removed []*flowEntry
	kept := t.wild[:0]
	for _, e := range t.wild {
		if pred(e) {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.wild); i++ {
		t.wild[i] = nil
	}
	t.wild = kept
	for key, e := range t.exact {
		if pred(e) {
			removed = append(removed, e)
			delete(t.exact, key)
		}
	}
	return removed
}

// forEach visits every entry.
func (t *table) forEach(fn func(*flowEntry)) {
	for _, e := range t.wild {
		fn(e)
	}
	for _, e := range t.exact {
		fn(e)
	}
}

// modifyWhere updates instructions on entries satisfying pred.
func (t *table) modifyWhere(pred func(*flowEntry) bool, instrs []openflow.Instruction) {
	t.forEach(func(e *flowEntry) {
		if pred(e) {
			e.instructions = instrs
		}
	})
}
