package switchsim

import (
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

var (
	mac1 = netpkt.MustParseMAC("02:00:00:00:00:01")
	mac2 = netpkt.MustParseMAC("02:00:00:00:00:02")
	ip1  = netpkt.MustParseIPv4("10.0.0.1")
	ip2  = netpkt.MustParseIPv4("10.0.0.2")
)

func tcpFrame(sport, dport uint16) []byte {
	return netpkt.BuildTCP(mac1, mac2, ip1, ip2, &netpkt.TCPSegment{SrcPort: sport, DstPort: dport, Flags: netpkt.TCPSyn})
}

// collector records frames delivered out a port.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) deliver(f []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, f)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func addFlow(t *testing.T, sw *Switch, tableID uint8, priority uint16, match *openflow.Match, instrs ...openflow.Instruction) {
	t.Helper()
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID:      tableID,
		Command:      openflow.FlowModAdd,
		Priority:     priority,
		BufferID:     openflow.NoBuffer,
		Match:        match,
		Instructions: instrs,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func outputTo(port uint32) openflow.Instruction {
	return &openflow.InstructionApplyActions{
		Actions: []openflow.Action{&openflow.ActionOutput{Port: port}},
	}
}

func TestForwardOnMatch(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	addFlow(t, sw, 0, 10, &openflow.Match{EthDst: openflow.MACPtr(mac2)}, outputTo(2))
	sw.Inject(1, tcpFrame(1000, 80))
	if out.count() != 1 {
		t.Fatalf("delivered %d frames, want 1", out.count())
	}
	if c := sw.Counters(); c.RxPackets != 1 || c.TxPackets != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMissDropsWithoutController(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	sw.Inject(1, tcpFrame(1000, 80))
	if c := sw.Counters(); c.CtrlDrops != 1 {
		t.Fatalf("counters = %+v, want 1 ctrl drop", c)
	}
}

func TestPriorityHigherWins(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var lo, hi collector
	if err := sw.AttachPort(2, lo.deliver); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(3, hi.deliver); err != nil {
		t.Fatal(err)
	}
	addFlow(t, sw, 0, 1, &openflow.Match{}, outputTo(2))
	addFlow(t, sw, 0, 100, &openflow.Match{EthDst: openflow.MACPtr(mac2)}, outputTo(3))
	sw.Inject(1, tcpFrame(1000, 80))
	if hi.count() != 1 || lo.count() != 0 {
		t.Fatalf("hi=%d lo=%d, want 1/0", hi.count(), lo.count())
	}
	// A non-matching destination falls to the low-priority wildcard.
	other := netpkt.BuildTCP(mac2, mac1, ip2, ip1, &netpkt.TCPSegment{SrcPort: 1, DstPort: 2})
	sw.Inject(1, other)
	if lo.count() != 1 {
		t.Fatalf("lo=%d, want 1", lo.count())
	}
}

func TestGotoTablePipeline(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	// Table 0: everything continues to table 1 (DFI allow pattern).
	addFlow(t, sw, 0, 100, &openflow.Match{}, &openflow.InstructionGotoTable{TableID: 1})
	// Table 1: forward to port 2.
	addFlow(t, sw, 1, 10, &openflow.Match{EthDst: openflow.MACPtr(mac2)}, outputTo(2))
	sw.Inject(1, tcpFrame(1000, 80))
	if out.count() != 1 {
		t.Fatalf("delivered %d, want 1", out.count())
	}
}

func TestDenyEntryDropsAndCounts(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	// A matching entry with no instructions is a drop (DFI deny pattern).
	addFlow(t, sw, 0, 100, &openflow.Match{EthDst: openflow.MACPtr(mac2)})
	addFlow(t, sw, 0, 1, &openflow.Match{}, outputTo(2))
	sw.Inject(1, tcpFrame(1000, 80))
	if out.count() != 0 {
		t.Fatal("deny entry forwarded the packet")
	}
	if c := sw.Counters(); c.Drops != 1 {
		t.Fatalf("counters = %+v, want 1 drop", c)
	}
}

func TestFloodExcludesIngress(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var p1, p2, p3 collector
	for port, c := range map[uint32]*collector{1: &p1, 2: &p2, 3: &p3} {
		if err := sw.AttachPort(port, c.deliver); err != nil {
			t.Fatal(err)
		}
	}
	addFlow(t, sw, 0, 1, &openflow.Match{}, outputTo(openflow.PortFlood))
	sw.Inject(1, tcpFrame(1000, 80))
	if p1.count() != 0 || p2.count() != 1 || p3.count() != 1 {
		t.Fatalf("flood delivered %d/%d/%d, want 0/1/1", p1.count(), p2.count(), p3.count())
	}
}

func TestExactMatchIsolation(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	key, err := netpkt.ExtractFlowKey(tcpFrame(1000, 80))
	if err != nil {
		t.Fatal(err)
	}
	addFlow(t, sw, 0, 100, openflow.ExactMatchFor(key, 1), outputTo(2))
	sw.Inject(1, tcpFrame(1000, 80)) // exact flow: forwarded
	sw.Inject(1, tcpFrame(1001, 80)) // different source port: miss
	if out.count() != 1 {
		t.Fatalf("delivered %d, want 1", out.count())
	}
	if c := sw.Counters(); c.CtrlDrops != 1 {
		t.Fatalf("counters = %+v, want 1 missed packet", c)
	}
}

func TestAddReplacesIdenticalMatch(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var a, b collector
	if err := sw.AttachPort(2, a.deliver); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(3, b.deliver); err != nil {
		t.Fatal(err)
	}
	m := &openflow.Match{EthDst: openflow.MACPtr(mac2)}
	addFlow(t, sw, 0, 10, m, outputTo(2))
	addFlow(t, sw, 0, 10, m, outputTo(3)) // replaces
	if sw.FlowCount(0) != 1 {
		t.Fatalf("FlowCount = %d, want 1", sw.FlowCount(0))
	}
	sw.Inject(1, tcpFrame(1000, 80))
	if a.count() != 0 || b.count() != 1 {
		t.Fatalf("a=%d b=%d, want 0/1", a.count(), b.count())
	}
}

func TestDeleteByCookie(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	for i := uint64(1); i <= 3; i++ {
		err := sw.ApplyFlowMod(&openflow.FlowMod{
			TableID: 0, Command: openflow.FlowModAdd, Priority: uint16(i), Cookie: i,
			Match: &openflow.Match{TCPDst: openflow.U16(uint16(i)), EthType: openflow.U16(netpkt.EtherTypeIPv4), IPProto: openflow.U8(netpkt.ProtoTCP)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Cookie-scoped flush, as the PCP issues on policy change.
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModDelete,
		Cookie: 2, CookieMask: ^uint64(0),
		Match: &openflow.Match{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.FlowCount(0) != 2 {
		t.Fatalf("FlowCount = %d, want 2", sw.FlowCount(0))
	}
}

func TestDeleteNonStrictCovers(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	addFlow(t, sw, 0, 10, &openflow.Match{EthDst: openflow.MACPtr(mac2), EthType: openflow.U16(netpkt.EtherTypeIPv4)})
	addFlow(t, sw, 0, 11, &openflow.Match{EthDst: openflow.MACPtr(mac1)})
	// Delete everything matching eth_dst=mac2 (any other fields).
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModDelete,
		Match: &openflow.Match{EthDst: openflow.MACPtr(mac2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.FlowCount(0) != 1 {
		t.Fatalf("FlowCount = %d, want 1", sw.FlowCount(0))
	}
}

func TestDeleteStrict(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	m := &openflow.Match{EthDst: openflow.MACPtr(mac2)}
	addFlow(t, sw, 0, 10, m)
	addFlow(t, sw, 0, 20, m)
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModDeleteStrict, Priority: 10, Match: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.FlowCount(0) != 1 {
		t.Fatalf("FlowCount = %d, want 1 (only priority-10 deleted)", sw.FlowCount(0))
	}
}

func TestModifyUpdatesInstructionsKeepsCounters(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var a, b collector
	if err := sw.AttachPort(2, a.deliver); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(3, b.deliver); err != nil {
		t.Fatal(err)
	}
	m := &openflow.Match{EthDst: openflow.MACPtr(mac2)}
	addFlow(t, sw, 0, 10, m, outputTo(2))
	sw.Inject(1, tcpFrame(1000, 80))
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModModify, Match: m,
		Instructions: []openflow.Instruction{outputTo(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw.Inject(1, tcpFrame(1000, 80))
	if a.count() != 1 || b.count() != 1 {
		t.Fatalf("a=%d b=%d, want 1/1", a.count(), b.count())
	}
}

func TestTableCapacity(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1, TableCapacity: 2})
	addFlow(t, sw, 0, 1, &openflow.Match{TCPDst: openflow.U16(1)})
	addFlow(t, sw, 0, 2, &openflow.Match{TCPDst: openflow.U16(2)})
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 3,
		Match: &openflow.Match{TCPDst: openflow.U16(3)},
	})
	if err == nil {
		t.Fatal("want table-full error")
	}
}

func TestBadTableRejected(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1, NumTables: 2})
	err := sw.ApplyFlowMod(&openflow.FlowMod{TableID: 5, Command: openflow.FlowModAdd, Match: &openflow.Match{}})
	if err == nil {
		t.Fatal("want bad-table error")
	}
}

func TestIdleTimeoutSweep(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	sw := NewSwitch(Config{DPID: 1, Clock: clk})
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 1,
		IdleTimeout: 10, Match: &openflow.Match{},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.ScheduleAfter(5*time.Second, func() {
		if n := sw.SweepTimeouts(); n != 0 {
			t.Errorf("swept %d entries at t+5s, want 0", n)
		}
	})
	clk.ScheduleAfter(11*time.Second, func() {
		if n := sw.SweepTimeouts(); n != 1 {
			t.Errorf("swept %d entries at t+11s, want 1", n)
		}
	})
	clk.Run()
	if sw.FlowCount(0) != 0 {
		t.Fatalf("FlowCount = %d after idle expiry", sw.FlowCount(0))
	}
}

func TestIdleTimeoutRefreshedByTraffic(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	sw := NewSwitch(Config{DPID: 1, Clock: clk})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 1,
		IdleTimeout: 10, Match: &openflow.Match{},
		Instructions: []openflow.Instruction{outputTo(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.ScheduleAfter(8*time.Second, func() { sw.Inject(1, tcpFrame(1, 2)) })
	clk.ScheduleAfter(15*time.Second, func() {
		if n := sw.SweepTimeouts(); n != 0 {
			t.Errorf("entry expired despite traffic at t+8s")
		}
	})
	clk.ScheduleAfter(19*time.Second, func() {
		if n := sw.SweepTimeouts(); n != 1 {
			t.Errorf("swept %d at t+19s, want 1 (idle since t+8s)", n)
		}
	})
	clk.Run()
}

func TestHardTimeoutExpiresActiveFlow(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	sw := NewSwitch(Config{DPID: 1, Clock: clk})
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 1,
		HardTimeout: 10, Match: &openflow.Match{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic does not refresh a hard timeout.
	clk.ScheduleAfter(9*time.Second, func() { sw.Inject(1, tcpFrame(1, 2)) })
	clk.ScheduleAfter(11*time.Second, func() {
		if n := sw.SweepTimeouts(); n != 1 {
			t.Errorf("swept %d, want 1", n)
		}
	})
	clk.Run()
}

// recvNonStatus reads messages, skipping asynchronous PORT_STATUS
// announcements (emitted whenever ports attach/detach).
func recvNonStatus(t *testing.T, conn *openflow.Conn) (uint32, openflow.Message) {
	t.Helper()
	for {
		xid, msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, isStatus := msg.(*openflow.PortStatus); isStatus {
			continue
		}
		return xid, msg
	}
}

func TestControlChannelEndToEnd(t *testing.T) {
	sw := NewSwitch(Config{DPID: 0xab})
	swEnd, ctlEnd := bufpipe.New()
	serveDone := make(chan error, 1)
	go func() { serveDone <- sw.ServeControl(swEnd) }()

	conn := openflow.NewConn(ctlEnd)
	fr, err := conn.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if fr.DatapathID != 0xab || fr.NumTables != 4 {
		t.Fatalf("features = %+v", fr)
	}

	// Install a flow over the wire and verify a miss generates PACKET_IN.
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 10,
		BufferID: openflow.NoBuffer,
		Match:    &openflow.Match{EthDst: openflow.MACPtr(mac2)},
		Instructions: []openflow.Instruction{
			&openflow.InstructionApplyActions{Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Barrier to ensure the flow-mod was processed.
	if _, err := conn.Send(&openflow.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, msg := recvNonStatus(t, conn); true {
		if _, ok := msg.(*openflow.BarrierReply); !ok {
			t.Fatalf("got %T, want BarrierReply", msg)
		}
	}

	sw.Inject(1, tcpFrame(1000, 80)) // matches: forwarded
	if out.count() != 1 {
		t.Fatalf("forwarded %d, want 1", out.count())
	}

	miss := netpkt.BuildTCP(mac2, mac1, ip2, ip1, &netpkt.TCPSegment{SrcPort: 1, DstPort: 2})
	sw.Inject(3, miss)
	_, msg := recvNonStatus(t, conn)
	pi, ok := msg.(*openflow.PacketIn)
	if !ok {
		t.Fatalf("got %T, want PacketIn", msg)
	}
	if pi.InPort() != 3 || pi.TableID != 0 || pi.Reason != openflow.PacketInReasonNoMatch {
		t.Fatalf("packet-in = %+v", pi)
	}

	// Flow stats over the wire.
	if _, err := conn.Send(&openflow.MultipartRequest{
		PartType: openflow.MultipartFlow,
		Flow:     &openflow.FlowStatsRequest{TableID: openflow.AllTables, Match: &openflow.Match{}},
	}); err != nil {
		t.Fatal(err)
	}
	_, msg = recvNonStatus(t, conn)
	rep, ok := msg.(*openflow.MultipartReply)
	if !ok || len(rep.Flows) != 1 {
		t.Fatalf("stats reply = %#v", msg)
	}
	if rep.Flows[0].PacketCount != 1 {
		t.Fatalf("packet count = %d, want 1", rep.Flows[0].PacketCount)
	}

	// Packet-out injection.
	if _, err := conn.Send(&openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   openflow.PortController,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
		Data:     tcpFrame(5, 6),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for out.count() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if out.count() != 2 {
		t.Fatalf("packet-out delivered %d, want 2", out.count())
	}

	// Echo keep-alive.
	if _, err := conn.Send(&openflow.EchoRequest{Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if _, msg := recvNonStatus(t, conn); true {
		if rep, ok := msg.(*openflow.EchoReply); !ok || string(rep.Data) != "hi" {
			t.Fatalf("echo reply = %#v", msg)
		}
	}

	ctlEnd.Close()
	if err := <-serveDone; err != nil && err != errClosed {
		t.Fatalf("serve exited: %v", err)
	}
}

func TestFlowRemovedOnDelete(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	swEnd, ctlEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	defer ctlEnd.Close()

	conn := openflow.NewConn(ctlEnd)
	// Consume the switch HELLO.
	if _, msg, err := conn.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*openflow.Hello); !ok {
		t.Fatalf("got %T, want Hello", msg)
	}

	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 7, Cookie: 99,
		Flags: openflow.FlowFlagSendFlowRem,
		Match: &openflow.Match{EthDst: openflow.MACPtr(mac2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModDelete,
		Cookie: 99, CookieMask: ^uint64(0), Match: &openflow.Match{},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, msg := recvNonStatus(t, conn)
	fr, ok := msg.(*openflow.FlowRemoved)
	if !ok {
		t.Fatalf("got %T, want FlowRemoved", msg)
	}
	if fr.Cookie != 99 || fr.Reason != openflow.FlowRemovedDelete || fr.Priority != 7 {
		t.Fatalf("flow-removed = %+v", fr)
	}
}

func TestInvalidPortAttach(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	if err := sw.AttachPort(0, func([]byte) {}); err == nil {
		t.Fatal("port 0 accepted")
	}
	if err := sw.AttachPort(openflow.PortFlood, func([]byte) {}); err == nil {
		t.Fatal("reserved port accepted")
	}
	if err := sw.AttachPort(1, nil); err == nil {
		t.Fatal("nil deliver accepted")
	}
}

func TestGotoTableBackwardReferenceStops(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	// goto table 1, and table 1 tries to go back to 0: must stop, not loop.
	addFlow(t, sw, 0, 1, &openflow.Match{}, &openflow.InstructionGotoTable{TableID: 1})
	addFlow(t, sw, 1, 1, &openflow.Match{}, outputTo(2), &openflow.InstructionGotoTable{TableID: 0})
	done := make(chan struct{})
	go func() {
		sw.Inject(1, tcpFrame(1, 2))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline looped")
	}
	if out.count() != 1 {
		t.Fatalf("delivered %d, want 1", out.count())
	}
}

func TestTableStatsOverControlChannel(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1, NumTables: 2})
	swEnd, ctlEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	defer ctlEnd.Close()
	conn := openflow.NewConn(ctlEnd)
	if _, msg := recvNonStatus(t, conn); true {
		if _, ok := msg.(*openflow.Hello); !ok {
			t.Fatalf("got %T, want Hello", msg)
		}
	}
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	addFlow(t, sw, 0, 10, &openflow.Match{EthDst: openflow.MACPtr(mac2)}, outputTo(2))
	sw.Inject(1, tcpFrame(1, 2)) // match in table 0
	miss := netpkt.BuildTCP(mac2, mac1, ip2, ip1, &netpkt.TCPSegment{SrcPort: 3, DstPort: 4})
	sw.Inject(1, miss) // miss

	if _, err := conn.Send(&openflow.MultipartRequest{PartType: openflow.MultipartTable}); err != nil {
		t.Fatal(err)
	}
	_, msg := recvNonStatus(t, conn)
	// Skip the packet-in generated by the miss.
	for {
		if _, isPI := msg.(*openflow.PacketIn); !isPI {
			break
		}
		_, msg = recvNonStatus(t, conn)
	}
	rep, ok := msg.(*openflow.MultipartReply)
	if !ok || rep.PartType != openflow.MultipartTable {
		t.Fatalf("got %#v", msg)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(rep.Tables))
	}
	t0 := rep.Tables[0]
	if t0.TableID != 0 || t0.ActiveCount != 1 {
		t.Fatalf("table 0 stats = %+v", t0)
	}
	if t0.LookupCount != 2 || t0.MatchedCount != 1 {
		t.Fatalf("table 0 lookups/matches = %d/%d, want 2/1", t0.LookupCount, t0.MatchedCount)
	}
}

func TestAggregateStats(t *testing.T) {
	sw := NewSwitch(Config{DPID: 1})
	var out collector
	if err := sw.AttachPort(2, out.deliver); err != nil {
		t.Fatal(err)
	}
	addFlow(t, sw, 0, 10, &openflow.Match{EthDst: openflow.MACPtr(mac2)}, outputTo(2))
	addFlow(t, sw, 0, 11, &openflow.Match{EthDst: openflow.MACPtr(mac1)}, outputTo(2))
	frame := tcpFrame(1, 2)
	sw.Inject(1, frame)
	sw.Inject(1, frame)

	swEnd, ctlEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	defer ctlEnd.Close()
	conn := openflow.NewConn(ctlEnd)
	if _, msg := recvNonStatus(t, conn); true {
		if _, ok := msg.(*openflow.Hello); !ok {
			t.Fatalf("got %T, want Hello", msg)
		}
	}
	if _, err := conn.Send(&openflow.MultipartRequest{
		PartType: openflow.MultipartAggregate,
		Flow:     &openflow.FlowStatsRequest{TableID: openflow.AllTables, Match: &openflow.Match{}},
	}); err != nil {
		t.Fatal(err)
	}
	_, msg := recvNonStatus(t, conn)
	rep, ok := msg.(*openflow.MultipartReply)
	if !ok || rep.Aggregate == nil {
		t.Fatalf("got %#v", msg)
	}
	if rep.Aggregate.FlowCount != 2 || rep.Aggregate.PacketCount != 2 {
		t.Fatalf("aggregate = %+v", rep.Aggregate)
	}
	if rep.Aggregate.ByteCount != uint64(2*len(frame)) {
		t.Fatalf("bytes = %d, want %d", rep.Aggregate.ByteCount, 2*len(frame))
	}
}

func TestCapacityEvictsExpiredBeforeRefusing(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	sw := NewSwitch(Config{DPID: 1, TableCapacity: 2, Clock: clk})
	// Two short-lived entries fill the table.
	for i := uint16(1); i <= 2; i++ {
		err := sw.ApplyFlowMod(&openflow.FlowMod{
			TableID: 0, Command: openflow.FlowModAdd, Priority: i, IdleTimeout: 5,
			Match: &openflow.Match{TCPDst: openflow.U16(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Still within their lifetime: a third entry is refused.
	err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 3,
		Match: &openflow.Match{TCPDst: openflow.U16(3)},
	})
	if err == nil {
		t.Fatal("overfull table accepted an entry")
	}
	// After they expire, the same add must succeed without an explicit
	// sweep: capacity pressure evicts dead entries.
	clk.ScheduleAfter(10*time.Second, func() {})
	clk.Run()
	err = sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, Priority: 3,
		Match: &openflow.Match{TCPDst: openflow.U16(3)},
	})
	if err != nil {
		t.Fatalf("add after expiry: %v", err)
	}
}

func TestExactIndexPriorityDemotion(t *testing.T) {
	// Two rules with the same canonical exact match but different
	// priorities cannot share the index slot; the higher priority must
	// still win lookups.
	sw := NewSwitch(Config{DPID: 1})
	var lo, hi collector
	if err := sw.AttachPort(2, lo.deliver); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachPort(3, hi.deliver); err != nil {
		t.Fatal(err)
	}
	key, err := netpkt.ExtractFlowKey(tcpFrame(1000, 80))
	if err != nil {
		t.Fatal(err)
	}
	m := openflow.ExactMatchFor(key, 1)
	addFlow(t, sw, 0, 10, m, outputTo(2))
	addFlow(t, sw, 0, 20, m.Clone(), outputTo(3))
	if sw.FlowCount(0) != 2 {
		t.Fatalf("FlowCount = %d, want 2 distinct priorities", sw.FlowCount(0))
	}
	sw.Inject(1, tcpFrame(1000, 80))
	if hi.count() != 1 || lo.count() != 0 {
		t.Fatalf("hi=%d lo=%d, want high priority to win", hi.count(), lo.count())
	}
	// Deleting the high-priority entry re-exposes the low one.
	err = sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModDeleteStrict, Priority: 20, Match: m.Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sw.Inject(1, tcpFrame(1000, 80))
	if lo.count() != 1 {
		t.Fatalf("lo=%d after delete, want 1", lo.count())
	}
}
