// Package switchsim implements a software OpenFlow 1.3 switch: a
// multi-table flow pipeline with priority matching, goto-table chaining,
// cookies, idle/hard timeouts and per-rule counters on the data-plane side,
// and an OpenFlow agent serving flow-mods, packet-outs, barriers and flow
// statistics on the control-plane side. It is the from-scratch substrate
// standing in for Open vSwitch on the paper's testbed.
package switchsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

// Config parameterizes a Switch.
type Config struct {
	// DPID is the datapath id reported in the features reply.
	DPID uint64
	// NumTables is the pipeline depth (default 4).
	NumTables int
	// TableCapacity bounds entries per table, reflecting hardware rule
	// memory limits of 512–8192 the paper cites (default 8192).
	TableCapacity int
	// Clock provides time for timeouts and statistics (default wall clock).
	Clock simclock.Clock
	// MissSendToController makes table misses generate packet-ins, as in
	// the paper's reactive deployment (default true via NewSwitch).
	MissSendToController bool
}

// Counters exposes aggregate data-plane statistics.
type Counters struct {
	RxPackets    uint64
	TxPackets    uint64
	PacketIns    uint64
	Drops        uint64
	CtrlDrops    uint64 // packet-ins lost because no controller was attached
	FlowModCount uint64
}

// Switch is a software OpenFlow switch.
type Switch struct {
	cfg Config

	mu      sync.Mutex
	tables  []*table
	nextSeq uint64

	portMu sync.RWMutex
	ports  map[uint32]func([]byte)

	ctrlMu sync.Mutex
	ctrl   *openflow.Conn

	configured atomic.Bool

	rxPackets atomic.Uint64
	txPackets atomic.Uint64
	packetIns atomic.Uint64
	drops     atomic.Uint64
	ctrlDrops atomic.Uint64
	flowMods  atomic.Uint64
}

// NewSwitch returns a switch with the given configuration.
func NewSwitch(cfg Config) *Switch {
	if cfg.NumTables <= 0 {
		cfg.NumTables = 4
	}
	if cfg.NumTables > 254 {
		cfg.NumTables = 254
	}
	if cfg.TableCapacity <= 0 {
		cfg.TableCapacity = 8192
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	cfg.MissSendToController = true
	s := &Switch{
		cfg:   cfg,
		ports: make(map[uint32]func([]byte)),
	}
	for i := 0; i < cfg.NumTables; i++ {
		s.tables = append(s.tables, newTable(uint8(i)))
	}
	return s
}

// DPID returns the datapath id.
func (s *Switch) DPID() uint64 { return s.cfg.DPID }

// Configured reports whether a controller has completed its handshake and
// sent SET_CONFIG — a readiness probe for harnesses that inject traffic.
func (s *Switch) Configured() bool { return s.configured.Load() }

// WaitConfigured polls Configured until it is true or the timeout elapses.
func (s *Switch) WaitConfigured(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.Configured() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return s.Configured()
}

// AttachPort registers the delivery function for frames output on port.
// Reserved port numbers are rejected.
func (s *Switch) AttachPort(port uint32, deliver func(frame []byte)) error {
	if port == 0 || port >= openflow.PortMax {
		return fmt.Errorf("switchsim: invalid port %d", port)
	}
	if deliver == nil {
		return errors.New("switchsim: nil deliver func")
	}
	s.portMu.Lock()
	s.ports[port] = deliver
	s.portMu.Unlock()
	s.sendPortStatus(port, openflow.PortReasonAdd, openflow.PortStateLive)
	return nil
}

// DetachPort removes a port, announcing the link-down to the control plane
// (real switches emit PORT_STATUS; controllers purge learned locations).
func (s *Switch) DetachPort(port uint32) {
	s.portMu.Lock()
	_, existed := s.ports[port]
	delete(s.ports, port)
	s.portMu.Unlock()
	if existed {
		s.sendPortStatus(port, openflow.PortReasonDelete, openflow.PortStateLinkDown)
	}
}

func (s *Switch) sendPortStatus(port uint32, reason uint8, state uint32) {
	s.ctrlMu.Lock()
	ctrl := s.ctrl
	s.ctrlMu.Unlock()
	if ctrl == nil {
		return
	}
	_, _ = ctrl.Send(&openflow.PortStatus{
		Reason: reason,
		Desc: openflow.PortDesc{
			PortNo: port,
			Name:   fmt.Sprintf("port%d", port),
			State:  state,
		},
	})
}

// Counters returns a snapshot of aggregate statistics.
func (s *Switch) Counters() Counters {
	return Counters{
		RxPackets:    s.rxPackets.Load(),
		TxPackets:    s.txPackets.Load(),
		PacketIns:    s.packetIns.Load(),
		Drops:        s.drops.Load(),
		CtrlDrops:    s.ctrlDrops.Load(),
		FlowModCount: s.flowMods.Load(),
	}
}

// Outcome classifies the pipeline result for one packet.
type Outcome int

// Pipeline outcomes.
const (
	// OutcomeMiss means no entry matched in the ending table (a real
	// switch would send a packet-in).
	OutcomeMiss Outcome = iota + 1
	// OutcomeDrop means a matching entry had no output (a deny rule).
	OutcomeDrop
	// OutcomeForward means the packet would be output on a port.
	OutcomeForward
)

// Evaluate runs the pipeline for a frame as if it arrived on inPort —
// updating match counters and idle timestamps exactly like Inject — but
// performs no deliveries and sends no packet-in. It returns the outcome and
// the table where processing ended. The discrete-event testbed uses this as
// its synchronous data plane.
func (s *Switch) Evaluate(inPort uint32, frame []byte) (Outcome, uint8) {
	key, err := netpkt.ExtractFlowKey(frame)
	if err != nil {
		return OutcomeDrop, 0
	}
	res := s.runPipeline(key, inPort, frame)
	switch {
	case res.packetIn != nil && res.packetIn.Reason == openflow.PacketInReasonNoMatch:
		return OutcomeMiss, res.packetIn.TableID
	case len(res.outputs) > 0 || res.packetIn != nil:
		return OutcomeForward, 0
	default:
		return OutcomeDrop, 0
	}
}

// pipelineResult captures the outcome of a pipeline walk so that frame
// delivery happens outside the table lock.
type pipelineResult struct {
	outputs  []uint32
	packetIn *openflow.PacketIn
}

// Inject delivers a frame arriving on inPort into the pipeline. It is safe
// for concurrent use.
func (s *Switch) Inject(inPort uint32, frame []byte) {
	s.rxPackets.Add(1)
	key, err := netpkt.ExtractFlowKey(frame)
	if err != nil {
		s.drops.Add(1)
		return
	}
	res := s.runPipeline(key, inPort, frame)
	s.execute(inPort, frame, res)
}

func (s *Switch) runPipeline(key netpkt.FlowKey, inPort uint32, frame []byte) pipelineResult {
	now := s.cfg.Clock.Now()
	var res pipelineResult

	s.mu.Lock()
	defer s.mu.Unlock()
	tableID := 0
	for tableID < len(s.tables) {
		entry := s.tables[tableID].lookup(key, inPort, now)
		if entry == nil {
			if s.cfg.MissSendToController {
				res.packetIn = &openflow.PacketIn{
					BufferID: openflow.NoBuffer,
					Reason:   openflow.PacketInReasonNoMatch,
					TableID:  uint8(tableID),
					Match:    &openflow.Match{InPort: openflow.U32(inPort)},
					Data:     frame,
				}
			}
			return res
		}
		entry.packets++
		entry.bytes += uint64(len(frame))
		entry.lastMatched = now

		next := -1
		for _, instr := range entry.instructions {
			switch in := instr.(type) {
			case *openflow.InstructionApplyActions:
				for _, act := range in.Actions {
					out, ok := act.(*openflow.ActionOutput)
					if !ok {
						continue
					}
					if out.Port == openflow.PortController {
						res.packetIn = &openflow.PacketIn{
							BufferID: openflow.NoBuffer,
							Reason:   openflow.PacketInReasonAction,
							TableID:  uint8(tableID),
							Cookie:   entry.cookie,
							Match:    &openflow.Match{InPort: openflow.U32(inPort)},
							Data:     frame,
						}
					} else {
						res.outputs = append(res.outputs, out.Port)
					}
				}
			case *openflow.InstructionGotoTable:
				next = int(in.TableID)
			}
		}
		if next < 0 {
			return res
		}
		if next <= tableID || next >= len(s.tables) {
			// Invalid forward reference: stop processing.
			return res
		}
		tableID = next
	}
	return res
}

// execute performs frame deliveries and packet-ins decided by a pipeline
// walk; called without holding the table lock.
func (s *Switch) execute(inPort uint32, frame []byte, res pipelineResult) {
	if res.packetIn != nil {
		s.sendPacketIn(res.packetIn)
	}
	if len(res.outputs) == 0 && res.packetIn == nil {
		s.drops.Add(1)
		return
	}
	for _, port := range res.outputs {
		switch port {
		case openflow.PortFlood, openflow.PortAll:
			s.flood(inPort, frame)
		case openflow.PortInPort:
			s.deliver(inPort, frame)
		default:
			s.deliver(port, frame)
		}
	}
}

func (s *Switch) deliver(port uint32, frame []byte) {
	s.portMu.RLock()
	fn := s.ports[port]
	s.portMu.RUnlock()
	if fn == nil {
		s.drops.Add(1)
		return
	}
	s.txPackets.Add(1)
	fn(frame)
}

func (s *Switch) flood(exceptPort uint32, frame []byte) {
	s.portMu.RLock()
	targets := make([]func([]byte), 0, len(s.ports))
	for port, fn := range s.ports {
		if port != exceptPort {
			targets = append(targets, fn)
		}
	}
	s.portMu.RUnlock()
	for _, fn := range targets {
		s.txPackets.Add(1)
		fn(frame)
	}
}

func (s *Switch) sendPacketIn(pi *openflow.PacketIn) {
	s.ctrlMu.Lock()
	ctrl := s.ctrl
	s.ctrlMu.Unlock()
	if ctrl == nil {
		s.ctrlDrops.Add(1)
		return
	}
	s.packetIns.Add(1)
	if _, err := ctrl.Send(pi); err != nil {
		s.ctrlDrops.Add(1)
	}
}

// SweepTimeouts removes expired entries across all tables, emitting
// FLOW_REMOVED for entries that requested it. It returns the number of
// entries removed. The testbed calls this from simulated time; real
// deployments run it from a ticker.
func (s *Switch) SweepTimeouts() int {
	now := s.cfg.Clock.Now()
	type removal struct {
		entry  *flowEntry
		reason uint8
		table  uint8
	}
	var removals []removal

	s.mu.Lock()
	for _, t := range s.tables {
		removed := t.removeWhere(func(e *flowEntry) bool {
			dead, _ := e.expired(now)
			return dead
		})
		for _, e := range removed {
			_, reason := e.expired(now)
			removals = append(removals, removal{entry: e, reason: reason, table: t.id})
		}
	}
	s.mu.Unlock()

	for _, r := range removals {
		if r.entry.flags&openflow.FlowFlagSendFlowRem != 0 {
			s.sendFlowRemoved(r.entry, r.table, r.reason, now)
		}
	}
	return len(removals)
}

func (s *Switch) sendFlowRemoved(e *flowEntry, tableID uint8, reason uint8, now time.Time) {
	s.ctrlMu.Lock()
	ctrl := s.ctrl
	s.ctrlMu.Unlock()
	if ctrl == nil {
		return
	}
	dur := now.Sub(e.installedAt)
	fr := &openflow.FlowRemoved{
		Cookie:      e.cookie,
		Priority:    e.priority,
		Reason:      reason,
		TableID:     tableID,
		DurationSec: uint32(dur / time.Second),
		IdleTimeout: uint16(e.idleTimeout / time.Second),
		HardTimeout: uint16(e.hardTimeout / time.Second),
		PacketCount: e.packets,
		ByteCount:   e.bytes,
		Match:       e.match.Clone(),
	}
	_, _ = ctrl.Send(fr)
}

// FlowCount returns the number of installed entries in the given table.
func (s *Switch) FlowCount(tableID uint8) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(tableID) >= len(s.tables) {
		return 0
	}
	return s.tables[tableID].size()
}

// TotalFlowCount returns the number of installed entries across all tables.
func (s *Switch) TotalFlowCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tables {
		n += t.size()
	}
	return n
}

var errClosed = errors.New("switchsim: control connection closed")

// ServeControl runs the OpenFlow agent over the given control-channel
// stream, blocking until the stream fails or closes. The switch sends its
// HELLO immediately, as a real switch does on connect.
func (s *Switch) ServeControl(rw io.ReadWriter) error {
	conn := openflow.NewConn(rw)
	s.ctrlMu.Lock()
	s.ctrl = conn
	s.ctrlMu.Unlock()
	defer func() {
		s.ctrlMu.Lock()
		if s.ctrl == conn {
			s.ctrl = nil
		}
		s.ctrlMu.Unlock()
	}()

	if _, err := conn.Send(&openflow.Hello{}); err != nil {
		return fmt.Errorf("switchsim: hello: %w", err)
	}
	for {
		xid, msg, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return errClosed
			}
			return fmt.Errorf("switchsim: recv: %w", err)
		}
		if err := s.handleControl(conn, xid, msg); err != nil {
			return err
		}
	}
}

func (s *Switch) handleControl(conn *openflow.Conn, xid uint32, msg openflow.Message) error {
	switch m := msg.(type) {
	case *openflow.Hello:
		return nil
	case *openflow.EchoRequest:
		return conn.SendXID(xid, &openflow.EchoReply{Data: m.Data})
	case *openflow.FeaturesRequest:
		return conn.SendXID(xid, &openflow.FeaturesReply{
			DatapathID: s.cfg.DPID,
			NumTables:  uint8(len(s.tables)),
		})
	case *openflow.GetConfigRequest:
		return conn.SendXID(xid, &openflow.GetConfigReply{MissSendLen: 0xffff})
	case *openflow.SetConfig:
		s.configured.Store(true)
		return nil
	case *openflow.BarrierRequest:
		return conn.SendXID(xid, &openflow.BarrierReply{})
	case *openflow.PacketOut:
		s.handlePacketOut(m)
		return nil
	case *openflow.FlowMod:
		if err := s.ApplyFlowMod(m); err != nil {
			return conn.SendXID(xid, &openflow.Error{
				ErrType: 5, // OFPET_FLOW_MOD_FAILED
				Code:    errorCodeFor(err),
			})
		}
		return nil
	case *openflow.MultipartRequest:
		return s.handleMultipart(conn, xid, m)
	default:
		return nil // ignore unmodeled messages
	}
}

func (s *Switch) handlePacketOut(po *openflow.PacketOut) {
	var res pipelineResult
	for _, act := range po.Actions {
		out, ok := act.(*openflow.ActionOutput)
		if !ok {
			continue
		}
		switch out.Port {
		case openflow.PortTable:
			// Re-submit to the pipeline.
			key, err := netpkt.ExtractFlowKey(po.Data)
			if err != nil {
				s.drops.Add(1)
				continue
			}
			sub := s.runPipeline(key, po.InPort, po.Data)
			s.execute(po.InPort, po.Data, sub)
		default:
			res.outputs = append(res.outputs, out.Port)
		}
	}
	s.execute(po.InPort, po.Data, res)
}

// Errors from flow-mod application, matched to OpenFlow error codes.
var (
	ErrBadTable  = errors.New("switchsim: bad table id")
	ErrTableFull = errors.New("switchsim: table full")
)

func errorCodeFor(err error) uint16 {
	switch {
	case errors.Is(err, ErrTableFull):
		return 1 // OFPFMFC_TABLE_FULL
	case errors.Is(err, ErrBadTable):
		return 2 // OFPFMFC_BAD_TABLE_ID
	default:
		return 0 // OFPFMFC_UNKNOWN
	}
}

// ApplyFlowMod applies a flow-mod to the pipeline. It is exported so that
// in-process harnesses can program the switch without a control channel.
func (s *Switch) ApplyFlowMod(fm *openflow.FlowMod) error {
	s.flowMods.Add(1)
	now := s.cfg.Clock.Now()
	match := fm.Match
	if match == nil {
		match = &openflow.Match{}
	}

	type removal struct {
		entry *flowEntry
		table uint8
	}
	var flowRemoveds []removal

	s.mu.Lock()
	switch fm.Command {
	case openflow.FlowModAdd:
		if int(fm.TableID) >= len(s.tables) {
			s.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrBadTable, fm.TableID)
		}
		t := s.tables[fm.TableID]
		if t.size() >= s.cfg.TableCapacity {
			// Evict expired entries before refusing, as hardware table
			// managers do; FLOW_REMOVED notifications are best-effort
			// skipped on this opportunistic path.
			t.removeWhere(func(e *flowEntry) bool {
				dead, _ := e.expired(now)
				return dead
			})
		}
		if t.size() >= s.cfg.TableCapacity {
			s.mu.Unlock()
			return fmt.Errorf("%w: table %d at capacity %d", ErrTableFull, fm.TableID, s.cfg.TableCapacity)
		}
		e := &flowEntry{
			match:        match.Clone(),
			priority:     fm.Priority,
			cookie:       fm.Cookie,
			idleTimeout:  time.Duration(fm.IdleTimeout) * time.Second,
			hardTimeout:  time.Duration(fm.HardTimeout) * time.Second,
			flags:        fm.Flags,
			instructions: fm.Instructions,
			installedAt:  now,
			lastMatched:  now,
			seq:          s.nextSeq,
		}
		s.nextSeq++
		t.add(e)

	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := fm.Command == openflow.FlowModDeleteStrict
		for _, t := range s.tables {
			if fm.TableID != openflow.AllTables && t.id != fm.TableID {
				continue
			}
			removed := t.removeWhere(func(e *flowEntry) bool {
				if !cookieMatches(e, fm.Cookie, fm.CookieMask) {
					return false
				}
				if strict {
					return e.priority == fm.Priority && e.match.Equal(match)
				}
				return match.Covers(e.match)
			})
			for _, e := range removed {
				if e.flags&openflow.FlowFlagSendFlowRem != 0 {
					flowRemoveds = append(flowRemoveds, removal{entry: e, table: t.id})
				}
			}
		}

	case openflow.FlowModModify, openflow.FlowModModifyStrict:
		strict := fm.Command == openflow.FlowModModifyStrict
		if int(fm.TableID) >= len(s.tables) && fm.TableID != openflow.AllTables {
			s.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrBadTable, fm.TableID)
		}
		for _, t := range s.tables {
			if fm.TableID != openflow.AllTables && t.id != fm.TableID {
				continue
			}
			t.modifyWhere(func(e *flowEntry) bool {
				if !cookieMatches(e, fm.Cookie, fm.CookieMask) {
					return false
				}
				if strict {
					return e.priority == fm.Priority && e.match.Equal(match)
				}
				return match.Covers(e.match)
			}, fm.Instructions)
		}

	default:
		s.mu.Unlock()
		return fmt.Errorf("switchsim: unsupported flow-mod command %d", fm.Command)
	}
	s.mu.Unlock()

	for _, r := range flowRemoveds {
		s.sendFlowRemoved(r.entry, r.table, openflow.FlowRemovedDelete, now)
	}
	return nil
}

func (s *Switch) handleMultipart(conn *openflow.Conn, xid uint32, req *openflow.MultipartRequest) error {
	switch req.PartType {
	case openflow.MultipartTable:
		var tables []*openflow.TableStatsEntry
		s.mu.Lock()
		for _, t := range s.tables {
			tables = append(tables, &openflow.TableStatsEntry{
				TableID:      t.id,
				ActiveCount:  uint32(t.size()),
				LookupCount:  t.lookups,
				MatchedCount: t.matches,
			})
		}
		s.mu.Unlock()
		return conn.SendXID(xid, &openflow.MultipartReply{PartType: openflow.MultipartTable, Tables: tables})

	case openflow.MultipartAggregate:
		if req.Flow == nil {
			return conn.SendXID(xid, &openflow.MultipartReply{
				PartType: openflow.MultipartAggregate, Aggregate: &openflow.AggregateStats{}})
		}
		match := req.Flow.Match
		if match == nil {
			match = &openflow.Match{}
		}
		agg := &openflow.AggregateStats{}
		s.mu.Lock()
		for _, t := range s.tables {
			if req.Flow.TableID != openflow.AllTables && t.id != req.Flow.TableID {
				continue
			}
			t.forEach(func(e *flowEntry) {
				if !cookieMatches(e, req.Flow.Cookie, req.Flow.CookieMask) {
					return
				}
				if !match.Covers(e.match) {
					return
				}
				agg.PacketCount += e.packets
				agg.ByteCount += e.bytes
				agg.FlowCount++
			})
		}
		s.mu.Unlock()
		return conn.SendXID(xid, &openflow.MultipartReply{PartType: openflow.MultipartAggregate, Aggregate: agg})
	}

	if req.PartType != openflow.MultipartFlow || req.Flow == nil {
		return conn.SendXID(xid, &openflow.MultipartReply{PartType: req.PartType})
	}
	now := s.cfg.Clock.Now()
	match := req.Flow.Match
	if match == nil {
		match = &openflow.Match{}
	}
	var flows []*openflow.FlowStatsEntry
	s.mu.Lock()
	for _, t := range s.tables {
		if req.Flow.TableID != openflow.AllTables && t.id != req.Flow.TableID {
			continue
		}
		t.forEach(func(e *flowEntry) {
			if !cookieMatches(e, req.Flow.Cookie, req.Flow.CookieMask) {
				return
			}
			if !match.Covers(e.match) {
				return
			}
			dur := now.Sub(e.installedAt)
			flows = append(flows, &openflow.FlowStatsEntry{
				TableID:      t.id,
				DurationSec:  uint32(dur / time.Second),
				DurationNsec: uint32(dur % time.Second),
				Priority:     e.priority,
				IdleTimeout:  uint16(e.idleTimeout / time.Second),
				HardTimeout:  uint16(e.hardTimeout / time.Second),
				Flags:        e.flags,
				Cookie:       e.cookie,
				PacketCount:  e.packets,
				ByteCount:    e.bytes,
				Match:        e.match.Clone(),
				Instructions: e.instructions,
			})
		})
	}
	s.mu.Unlock()
	return conn.SendXID(xid, &openflow.MultipartReply{PartType: openflow.MultipartFlow, Flows: flows})
}
