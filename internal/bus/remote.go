package bus

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
)

// The remote transport: sensors on other machines publish events to the
// control plane over TCP as length-prefixed JSON frames (the multi-process
// stand-in for the paper's RabbitMQ + protocol buffers deployment). A
// Codec maps payload type names to Go types so events arrive with their
// concrete types, not maps.

// Codec translates event payloads to and from the wire.
type Codec struct {
	mu    sync.RWMutex
	types map[string]reflect.Type
	names map[reflect.Type]string
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{
		types: make(map[string]reflect.Type),
		names: make(map[reflect.Type]string),
	}
}

// Register maps a payload type (given by example value) to a wire name.
// Both sides of a connection must register the same mappings.
func (c *Codec) Register(name string, sample any) {
	t := reflect.TypeOf(sample)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.types[name] = t
	c.names[t] = name
}

// wireEvent is the frame body.
type wireEvent struct {
	Topic   string          `json:"topic"`
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

func (c *Codec) encode(ev Event) ([]byte, error) {
	w := wireEvent{Topic: ev.Topic}
	if ev.Payload != nil {
		t := reflect.TypeOf(ev.Payload)
		c.mu.RLock()
		name, ok := c.names[t]
		c.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("bus: unregistered payload type %v", t)
		}
		raw, err := json.Marshal(ev.Payload)
		if err != nil {
			return nil, fmt.Errorf("bus: marshal payload: %w", err)
		}
		w.Type = name
		w.Payload = raw
	}
	return json.Marshal(w)
}

func (c *Codec) decode(b []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(b, &w); err != nil {
		return Event{}, fmt.Errorf("bus: decode frame: %w", err)
	}
	ev := Event{Topic: w.Topic}
	if w.Type == "" {
		return ev, nil
	}
	c.mu.RLock()
	t, ok := c.types[w.Type]
	c.mu.RUnlock()
	if !ok {
		return Event{}, fmt.Errorf("bus: unknown payload type %q", w.Type)
	}
	ptr := reflect.New(t)
	if err := json.Unmarshal(w.Payload, ptr.Interface()); err != nil {
		return Event{}, fmt.Errorf("bus: decode %q payload: %w", w.Type, err)
	}
	ev.Payload = ptr.Elem().Interface()
	return ev, nil
}

// maxFrameLen bounds accepted frames.
const maxFrameLen = 1 << 20

func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrameLen {
		return fmt.Errorf("bus: frame of %d bytes exceeds max", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("bus: frame of %d bytes exceeds max", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// RemotePublisher publishes events to a remote bus over a byte stream.
// Writes are safe for concurrent use.
type RemotePublisher struct {
	codec *Codec
	mu    sync.Mutex
	w     io.Writer
}

// NewRemotePublisher wraps a connection to a ServeSink endpoint.
func NewRemotePublisher(w io.Writer, codec *Codec) *RemotePublisher {
	return &RemotePublisher{codec: codec, w: w}
}

// Publish sends one event to the remote bus.
func (p *RemotePublisher) Publish(ev Event) error {
	body, err := p.codec.encode(ev)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return writeFrame(p.w, body)
}

// ServeSink accepts connections from RemotePublishers and republishes every
// received event on the local bus. It blocks until the listener closes.
// Malformed frames terminate only the offending connection.
func ServeSink(lis net.Listener, codec *Codec, local *Bus) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = PumpInto(conn, codec, local)
		}()
	}
}

// PumpInto reads frames from r and republishes them on local until EOF or
// a decode error. Exposed for transports other than TCP listeners.
func PumpInto(r io.Reader, codec *Codec, local *Bus) error {
	for {
		body, err := readFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		ev, err := codec.decode(body)
		if err != nil {
			return err
		}
		if err := local.Publish(ev); err != nil {
			return err
		}
	}
}
