package bus

import (
	"net"
	"sync"
	"testing"
	"time"
)

type testPayload struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

type otherPayload struct {
	X float64 `json:"x"`
}

func newTestCodec() *Codec {
	c := NewCodec()
	c.Register("test", testPayload{})
	c.Register("other", otherPayload{})
	return c
}

func TestCodecRoundTrip(t *testing.T) {
	c := newTestCodec()
	ev := Event{Topic: "a.b", Payload: testPayload{Name: "x", Count: 3}}
	b, err := c.encode(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != "a.b" {
		t.Fatalf("topic = %q", got.Topic)
	}
	p, ok := got.Payload.(testPayload)
	if !ok {
		t.Fatalf("payload type %T", got.Payload)
	}
	if p != (testPayload{Name: "x", Count: 3}) {
		t.Fatalf("payload = %+v", p)
	}
}

func TestCodecNilPayload(t *testing.T) {
	c := newTestCodec()
	b, err := c.encode(Event{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil {
		t.Fatalf("payload = %v, want nil", got.Payload)
	}
}

func TestCodecRejectsUnregistered(t *testing.T) {
	c := newTestCodec()
	if _, err := c.encode(Event{Topic: "t", Payload: struct{ Z int }{1}}); err == nil {
		t.Fatal("unregistered type encoded")
	}
	// Decoding an unknown wire name fails too.
	stranger := NewCodec()
	stranger.Register("mystery", testPayload{})
	b, err := stranger.encode(Event{Topic: "t", Payload: testPayload{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.decode(b); err == nil {
		t.Fatal("unknown wire name decoded")
	}
}

func TestRemotePublishOverTCP(t *testing.T) {
	codec := newTestCodec()
	local := New()
	defer local.Close()

	var mu sync.Mutex
	var got []Event
	if _, err := local.Subscribe("sensor.*", func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, ev)
	}); err != nil {
		t.Fatal(err)
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = ServeSink(lis, codec, local) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pub := NewRemotePublisher(conn, codec)
	for i := 0; i < 5; i++ {
		if err := pub.Publish(Event{Topic: "sensor.test", Payload: testPayload{Name: "n", Count: i}}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("received %d events, want 5", len(got))
	}
	for i, ev := range got {
		p, ok := ev.Payload.(testPayload)
		if !ok {
			t.Fatalf("event %d payload type %T", i, ev.Payload)
		}
		if p.Count != i {
			t.Fatalf("event %d out of order: %+v", i, p)
		}
	}
}

func TestPumpIntoStopsOnGarbage(t *testing.T) {
	codec := newTestCodec()
	local := New()
	defer local.Close()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- PumpInto(b, codec, local) }()
	// A frame header claiming an absurd size must terminate the pump.
	if _, err := a.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pump accepted absurd frame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pump never returned")
	}
}
