// Package bus provides the publish/subscribe message bus DFI components use
// to exchange sensor events and policy notifications. It is the from-scratch
// substrate standing in for RabbitMQ in the paper's implementation:
// topic-based routing, per-subscriber bounded queues, asynchronous delivery
// with per-subscriber FIFO ordering, and an optional length-prefixed JSON
// TCP transport for multi-process deployments.
package bus

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/obs"
)

// Event is a routed message. Payload types are defined by publishers; DFI's
// event payloads live in the sensors and policy packages.
type Event struct {
	// Topic routes the event, e.g. "sensor.dns" or "policy.flush".
	Topic string
	// Payload is the event body.
	Payload any
	// Trace is the causal span context the event carries. Publishers
	// normally leave it zero: when a tracer is attached (SetTracer) the
	// bus starts a fresh trace per publish and subscribers see the
	// publish span's context here, so work they do — entity-binding
	// updates, policy revocations, flow-mod flushes — parents under it.
	// A publisher forwarding someone else's event may set Trace to keep
	// the original chain. The field does not cross the TCP transport;
	// remote events re-root on the receiving bus.
	Trace obs.SpanContext
}

// Handler consumes events delivered to a subscription.
type Handler func(Event)

// ErrClosed is returned by operations on a closed bus.
var ErrClosed = errors.New("bus: closed")

// DefaultQueueDepth is the per-subscriber queue bound when none is given.
const DefaultQueueDepth = 1024

// Bus is an in-process topic pub/sub bus. The zero value is not usable;
// construct with New.
type Bus struct {
	mu     sync.Mutex
	subs   map[int]*subscription
	nextID int
	closed bool

	published uint64
	dropped   uint64

	tracer atomic.Pointer[obs.SpanStore]
}

// SetTracer attaches a span store: every subsequent Publish opens a trace
// (or continues the event's existing one), commits a ("bus","publish")
// span covering the fan-out, and delivers the span context to subscribers
// via Event.Trace. A nil store detaches tracing.
func (b *Bus) SetTracer(ts *obs.SpanStore) {
	b.tracer.Store(ts)
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{subs: make(map[int]*subscription)}
}

type subscription struct {
	id      int
	pattern string
	queue   chan Event
	done    chan struct{}
}

// Subscription identifies an active subscription and owns its delivery
// goroutine.
type Subscription struct {
	bus *Bus
	sub *subscription
}

// Subscribe registers handler for every event whose topic matches pattern
// and starts its delivery goroutine. Patterns match exact topics, or a
// trailing ".*" matches any suffix ("sensor.*" matches "sensor.dns").
// The pattern "*" matches everything. Events overflowing the subscriber's
// queue are dropped (counted in Dropped), mirroring a bounded AMQP queue.
func (b *Bus) Subscribe(pattern string, handler Handler) (*Subscription, error) {
	return b.SubscribeDepth(pattern, DefaultQueueDepth, handler)
}

// SubscribeDepth is Subscribe with an explicit queue bound.
func (b *Bus) SubscribeDepth(pattern string, depth int, handler Handler) (*Subscription, error) {
	if handler == nil {
		return nil, errors.New("bus: nil handler")
	}
	if depth < 1 {
		depth = 1
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	s := &subscription{
		id:      b.nextID,
		pattern: pattern,
		queue:   make(chan Event, depth),
		done:    make(chan struct{}),
	}
	b.nextID++
	b.subs[s.id] = s
	b.mu.Unlock()

	go func() {
		defer close(s.done)
		for ev := range s.queue {
			handler(ev)
		}
	}()
	return &Subscription{bus: b, sub: s}, nil
}

// Publish routes ev to every matching subscriber. It never blocks: full
// subscriber queues drop the event for that subscriber.
func (b *Bus) Publish(ev Event) error {
	ts := b.tracer.Load()
	var sc obs.SpanContext
	var parent uint64
	var start time.Time
	if ts.Enabled() {
		parent = ev.Trace.Span
		sc = ts.Child(ev.Trace) // fresh root unless the publisher chained one
		ev.Trace = sc
		start = ts.Now()
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.published++
	matched := make([]*subscription, 0, 4)
	for _, s := range b.subs {
		if topicMatches(s.pattern, ev.Topic) {
			matched = append(matched, s)
		}
	}
	for _, s := range matched {
		select {
		case s.queue <- ev:
		default:
			b.dropped++
		}
	}
	b.mu.Unlock()

	if ts.Enabled() {
		ts.Commit(obs.Span{
			Trace:     sc.Trace,
			ID:        sc.Span,
			Parent:    parent,
			Component: obs.CompBus,
			Stage:     "publish",
			Start:     start,
			Duration:  ts.Now().Sub(start),
			Detail:    ev.Topic,
		})
	}
	return nil
}

// Published reports how many events have been accepted by Publish since the
// bus was created (each counted once regardless of subscriber fan-out).
func (b *Bus) Published() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

// Dropped reports how many events were discarded due to full subscriber
// queues since the bus was created.
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close shuts down the bus and waits for all delivery goroutines to drain.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = map[int]*subscription{}
	b.mu.Unlock()

	for _, s := range subs {
		close(s.queue)
		<-s.done
	}
}

// Cancel removes the subscription and waits for its delivery goroutine to
// drain. It is safe to call after the bus is closed.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	sub, ok := s.bus.subs[s.sub.id]
	if ok {
		delete(s.bus.subs, s.sub.id)
	}
	s.bus.mu.Unlock()
	if ok {
		close(sub.queue)
		<-sub.done
	}
}

// topicMatches reports whether topic matches pattern ("*" wildcard, or a
// "prefix.*" suffix wildcard).
func topicMatches(pattern, topic string) bool {
	if pattern == "*" || pattern == topic {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, ".*"); ok {
		return strings.HasPrefix(topic, prefix+".")
	}
	return false
}

// Validate reports whether a topic is well-formed (non-empty dot-separated
// labels).
func Validate(topic string) error {
	if topic == "" {
		return errors.New("bus: empty topic")
	}
	for _, label := range strings.Split(topic, ".") {
		if label == "" {
			return fmt.Errorf("bus: topic %q has empty label", topic)
		}
	}
	return nil
}
