package bus

import (
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func TestPublishDelivers(t *testing.T) {
	b := New()
	defer b.Close()
	var mu sync.Mutex
	var got []Event
	if _, err := b.Subscribe("a.b", func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Event{Topic: "a.b", Payload: 42}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	}, "delivery")
	mu.Lock()
	defer mu.Unlock()
	if got[0].Payload != 42 {
		t.Fatalf("payload = %v", got[0].Payload)
	}
}

func TestTopicFiltering(t *testing.T) {
	b := New()
	defer b.Close()
	var mu sync.Mutex
	counts := map[string]int{}
	sub := func(pattern string) {
		if _, err := b.Subscribe(pattern, func(Event) {
			mu.Lock()
			defer mu.Unlock()
			counts[pattern]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	sub("sensor.dns")
	sub("sensor.*")
	sub("*")
	sub("policy.flush")

	for _, topic := range []string{"sensor.dns", "sensor.dhcp", "policy.flush"} {
		if err := b.Publish(Event{Topic: topic}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return counts["*"] == 3 && counts["sensor.*"] == 2 && counts["sensor.dns"] == 1 && counts["policy.flush"] == 1
	}, "filtered delivery")
}

func TestPerSubscriberFIFO(t *testing.T) {
	b := New()
	defer b.Close()
	var mu sync.Mutex
	var got []int
	if _, err := b.Subscribe("t", func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, ev.Payload.(int))
	}); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := b.Publish(Event{Topic: "t", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	}, "all deliveries")
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, v)
		}
	}
}

func TestOverflowDrops(t *testing.T) {
	b := New()
	defer b.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	if _, err := b.SubscribeDepth("t", 1, func(Event) {
		once.Do(func() { close(started) })
		<-block
	}); err != nil {
		t.Fatal(err)
	}
	// First event occupies the handler; second fills the depth-1 queue;
	// the rest must drop.
	if err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 10; i++ {
		if err := b.Publish(Event{Topic: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Dropped() == 0 {
		t.Fatal("expected drops with a full depth-1 queue")
	}
	close(block)
}

func TestCancelStopsDelivery(t *testing.T) {
	b := New()
	defer b.Close()
	var mu sync.Mutex
	n := 0
	sub, err := b.Subscribe("t", func(Event) {
		mu.Lock()
		defer mu.Unlock()
		n++
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return n == 1
	}, "first delivery")
	sub.Cancel()
	if err := b.Publish(Event{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("delivered after cancel: %d", n)
	}
}

func TestCloseRejectsOperations(t *testing.T) {
	b := New()
	b.Close()
	if err := b.Publish(Event{Topic: "t"}); err != ErrClosed {
		t.Fatalf("Publish after close = %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe("t", func(Event) {}); err != ErrClosed {
		t.Fatalf("Subscribe after close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestCloseDrainsHandlers(t *testing.T) {
	b := New()
	var mu sync.Mutex
	n := 0
	if _, err := b.Subscribe("t", func(Event) {
		time.Sleep(time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		n++
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Publish(Event{Topic: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if n != 5 {
		t.Fatalf("Close returned before handlers drained: %d/5", n)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	b := New()
	defer b.Close()
	if _, err := b.Subscribe("t", nil); err == nil {
		t.Fatal("want error for nil handler")
	}
}

func TestTopicMatches(t *testing.T) {
	tests := []struct {
		pattern string
		topic   string
		want    bool
	}{
		{pattern: "a.b", topic: "a.b", want: true},
		{pattern: "a.b", topic: "a.c", want: false},
		{pattern: "a.*", topic: "a.b", want: true},
		{pattern: "a.*", topic: "a.b.c", want: true},
		{pattern: "a.*", topic: "ab", want: false},
		{pattern: "a.*", topic: "a", want: false},
		{pattern: "*", topic: "anything.at.all", want: true},
	}
	for _, tt := range tests {
		if got := topicMatches(tt.pattern, tt.topic); got != tt.want {
			t.Errorf("topicMatches(%q, %q) = %v, want %v", tt.pattern, tt.topic, got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate("a.b.c"); err != nil {
		t.Errorf("Validate(a.b.c) = %v", err)
	}
	for _, bad := range []string{"", ".", "a..b", "a."} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate(%q) = nil, want error", bad)
		}
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := New()
	defer b.Close()
	var mu sync.Mutex
	n := 0
	if _, err := b.SubscribeDepth("t", 10000, func(Event) {
		mu.Lock()
		defer mu.Unlock()
		n++
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = b.Publish(Event{Topic: "t"})
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return n == 800
	}, "all concurrent deliveries")
}
