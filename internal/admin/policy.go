package admin

import (
	"encoding/json"
	"net/http"
	"strings"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/policytext"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
	"github.com/dfi-sdn/dfi/internal/policytext/compile/verify"
)

// PolicyDocJSON carries a policy document in the policytext language.
// GET /v1/policy returns the running document in canonical form
// (including runtime group-membership changes); PUT /v1/policy applies a
// new one atomically.
type PolicyDocJSON struct {
	Source string `json:"source"`
}

// PolicyDeltaJSON is the rule delta a document apply produced — or, for
// a dry run or POST /v1/policy/diff, would produce. Inserted rules carry
// assigned IDs only when the apply was real. Findings are the policy
// verifier's diagnostics over the proposed document (a dry run reports
// error-severity findings here; a real apply can only carry warnings,
// since errors reject with 422); Widening is the allow-set growth versus
// the currently-running document.
type PolicyDeltaJSON struct {
	DryRun   bool              `json:"dryRun,omitempty"`
	Insert   []RuleJSON        `json:"insert"`
	Revoke   []RuleJSON        `json:"revoke"`
	Findings []verify.Finding  `json:"findings,omitempty"`
	Widening []verify.Widening `json:"widening,omitempty"`
}

// ProvenanceJSON records where a compiled rule came from in the source
// document. Line is 1-based.
type ProvenanceJSON struct {
	Line     int    `json:"line"`
	Stmt     string `json:"stmt"`
	Template string `json:"template,omitempty"`
	Via      string `json:"via,omitempty"`
}

// CompiledRuleJSON is one lowered rule with provenance, served by
// GET /v1/policy/compiled.
type CompiledRuleJSON struct {
	RuleJSON
	Provenance ProvenanceJSON `json:"provenance"`
}

// registerPolicy mounts the declarative policy-document endpoints. The
// per-rule /v1/rules endpoints remain the imperative low-level escape
// hatch; these operate on whole documents and return rule deltas.
func registerPolicy(handle func(string, http.HandlerFunc), sys *dfi.System) {
	eng := sys.PolicyEngine()

	handle("GET /v1/policy", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, PolicyDocJSON{Source: eng.Source()})
	})

	handle("PUT /v1/policy", func(w http.ResponseWriter, r *http.Request) {
		var j PolicyDocJSON
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		dry := isDryRun(r)
		prevSrc := eng.Source()
		var (
			d   compile.Delta
			err error
		)
		if dry {
			d, err = eng.Diff(j.Source)
		} else {
			d, err = eng.SetSource(j.Source)
		}
		if err != nil {
			httpPolicyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, annotate(fromDelta(d, dry), prevSrc, j.Source))
	})

	handle("POST /v1/policy/diff", func(w http.ResponseWriter, r *http.Request) {
		var j PolicyDocJSON
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		prevSrc := eng.Source()
		d, err := eng.Diff(j.Source)
		if err != nil {
			httpPolicyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, annotate(fromDelta(d, true), prevSrc, j.Source))
	})

	handle("GET /v1/policy/compiled", func(w http.ResponseWriter, _ *http.Request) {
		compiled := eng.Compiled()
		out := make([]CompiledRuleJSON, 0, len(compiled))
		for _, cr := range compiled {
			out = append(out, CompiledRuleJSON{
				RuleJSON: fromRule(cr.Rule),
				Provenance: ProvenanceJSON{
					Line:     cr.Prov.Line,
					Stmt:     cr.Prov.Stmt,
					Template: cr.Prov.Template,
					Via:      cr.Prov.Via,
				},
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
}

func isDryRun(r *http.Request) bool {
	switch r.URL.Query().Get("dryRun") {
	case "", "0", "false":
		return false
	default:
		return true
	}
}

// annotate attaches the verifier's findings for the proposed document and
// the allow-set widening versus the previously-running one. The delta
// itself already compiled, so parse failures here are impossible; the
// guards keep the endpoint total anyway.
func annotate(out PolicyDeltaJSON, prevSrc, nextSrc string) PolicyDeltaJSON {
	next, err := policytext.Parse(strings.NewReader(nextSrc))
	if err != nil {
		return out
	}
	out.Findings = verify.Document(next)
	if prev, err := policytext.Parse(strings.NewReader(prevSrc)); err == nil {
		out.Widening = verify.VerifyTransition(prev, next)
	}
	return out
}

func fromDelta(d compile.Delta, dry bool) PolicyDeltaJSON {
	out := PolicyDeltaJSON{DryRun: dry, Insert: []RuleJSON{}, Revoke: []RuleJSON{}}
	for _, r := range d.Insert {
		out.Insert = append(out.Insert, fromRule(r))
	}
	for _, r := range d.Revoke {
		out.Revoke = append(out.Revoke, fromRule(r))
	}
	return out
}

// httpPolicyError maps a parse/compile failure to the uniform 422
// envelope, carrying each error's 1-based source line in lines.
func httpPolicyError(w http.ResponseWriter, err error) {
	list := policytext.AsErrorList(err)
	var lines []int
	for _, l := range list.Lines() {
		if l > 0 {
			lines = append(lines, l)
		}
	}
	writeJSON(w, http.StatusUnprocessableEntity, ErrorJSON{Error: ErrorBody{
		Code:    CodeValidation,
		Message: err.Error(),
		Lines:   lines,
	}})
}
