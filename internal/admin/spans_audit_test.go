package admin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
)

// newTestServerOpts is newTestServer with extra system and handler options.
func newTestServerOpts(t *testing.T, sysOpts []dfi.Option, hOpts []HandlerOption) (*dfi.System, *Client) {
	t.Helper()
	opts := append([]dfi.Option{dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	})}, sysOpts...)
	sys, err := dfi.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	srv := httptest.NewServer(Handler(sys, hOpts...))
	t.Cleanup(srv.Close)
	return sys, NewClient(srv.URL)
}

func TestSpansEndpoint(t *testing.T) {
	sys, client := newTestServer(t)
	sys.PCP().AttachSwitch(7, nopSwitch{})
	if err := client.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	id, err := client.InsertRule(RuleJSON{PDP: "ops", Action: "allow"})
	if err != nil {
		t.Fatal(err)
	}
	admitFlow(sys.PCP(), 41000)

	recent, err := client.RecentSpans(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recent) == 0 {
		t.Fatal("no spans after a mutation and an admission")
	}
	// Find the policy insert span and pull its whole trace.
	var insertTrace uint64
	for _, sp := range recent {
		if sp.Component == "policy" && sp.Stage == "insert" && sp.RuleID == id {
			insertTrace = sp.Trace
		}
	}
	if insertTrace == 0 {
		t.Fatalf("no policy/insert span among %d recent spans", len(recent))
	}
	trace, err := client.Spans(insertTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatalf("trace %d retrieved no spans", insertTrace)
	}
	for _, sp := range trace {
		if sp.Trace != insertTrace {
			t.Fatalf("span %d belongs to trace %d, queried %d", sp.ID, sp.Trace, insertTrace)
		}
	}
	// The admission emitted its span tree too.
	var admission bool
	for _, sp := range recent {
		if sp.Component == "pcp" && sp.Stage == "admission" && sp.DPID == 7 {
			admission = true
		}
	}
	if !admission {
		t.Fatal("no pcp/admission span for the admitted flow")
	}

	// Validation: bad trace id and bad count are 422 envelopes.
	for _, q := range []string{"?trace=banana", "?trace=0", "?n=0", "?n=x"} {
		resp, env := get(t, http.MethodGet, client.base+"/v1/spans"+q, "")
		if resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != CodeValidation {
			t.Fatalf("GET /v1/spans%s = %d %+v", q, resp.StatusCode, env)
		}
	}
}

func TestSpansDisabled(t *testing.T) {
	_, client := newTestServerOpts(t, []dfi.Option{dfi.WithCausalTracing(-1)}, nil)
	resp, env := get(t, http.MethodGet, client.base+"/v1/spans", "")
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Fatalf("spans disabled = %d %+v", resp.StatusCode, env)
	}
}

func TestAuditEndpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	sys, client := newTestServerOpts(t, []dfi.Option{dfi.WithAuditLog(path, 0)}, nil)
	sys.PCP().AttachSwitch(7, nopSwitch{})
	if err := client.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := client.InsertRule(RuleJSON{PDP: "ops", Action: "allow"}); err != nil {
		t.Fatal(err)
	}
	admitFlow(sys.PCP(), 42000)

	recs, err := client.Audit(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("audit records = %d, want at least a mutation and a decision", len(recs))
	}
	kinds := map[string]bool{}
	for _, r := range recs {
		kinds[r.Kind] = true
	}
	if !kinds["policy"] || !kinds["decision"] {
		t.Fatalf("audit kinds = %v, want policy and decision", kinds)
	}

	v, err := client.AuditVerify()
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Records == 0 || v.Error != "" {
		t.Fatalf("verify = %+v", v)
	}

	// Flip one byte on disk: the endpoint must report the tampering.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err = client.AuditVerify()
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Error == "" {
		t.Fatalf("verify after tamper = %+v, want failure", v)
	}
}

func TestAuditDisabled(t *testing.T) {
	_, client := newTestServer(t)
	for _, p := range []string{"/v1/audit", "/v1/audit/verify"} {
		resp, env := get(t, http.MethodGet, client.base+p, "")
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
			t.Fatalf("GET %s = %d %+v", p, resp.StatusCode, env)
		}
	}
}

func TestPprofOptIn(t *testing.T) {
	// Default handler: pprof absent, enveloped 404.
	_, client := newTestServer(t)
	resp, env := get(t, http.MethodGet, client.base+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Fatalf("pprof without opt-in = %d %+v", resp.StatusCode, env)
	}

	_, client = newTestServerOpts(t, nil, []HandlerOption{WithPprof()})
	resp, _ = get(t, http.MethodGet, client.base+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with opt-in = %d", resp.StatusCode)
	}
}
