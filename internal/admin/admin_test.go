package admin

import (
	"io"
	"net/http/httptest"
	"testing"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

func newTestServer(t *testing.T) (*dfi.System, *Client) {
	t.Helper()
	sys, err := dfi.New(dfi.WithControllerDialer(func() (io.ReadWriteCloser, error) {
		a, b := bufpipe.New()
		ctl := controller.New(controller.Config{})
		go func() { _ = ctl.Serve(b) }()
		return a, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	srv := httptest.NewServer(Handler(sys))
	t.Cleanup(srv.Close)
	return sys, NewClient(srv.URL)
}

func TestRuleLifecycle(t *testing.T) {
	_, client := newTestServer(t)

	if err := client.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	// Re-registering must conflict.
	if err := client.RegisterPDP("ops", 60); err == nil {
		t.Fatal("duplicate PDP registration accepted")
	}

	id, err := client.InsertRule(RuleJSON{
		PDP:    "ops",
		Action: "allow",
		Src:    EndpointJSON{User: "alice"},
		Dst:    EndpointJSON{Host: "mail", IP: "10.0.0.9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero rule id")
	}

	rules, err := client.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %d", len(rules))
	}
	r := rules[0]
	if r.ID != id || r.Action != "allow" || r.Src.User != "alice" ||
		r.Dst.Host != "mail" || r.Dst.IP != "10.0.0.9" || r.Priority != 50 {
		t.Fatalf("rule = %+v", r)
	}

	if err := client.RevokeRule(id); err != nil {
		t.Fatal(err)
	}
	if err := client.RevokeRule(id); err == nil {
		t.Fatal("double revoke accepted")
	}
	rules, err = client.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("rules after revoke = %d", len(rules))
	}
}

func TestInsertValidation(t *testing.T) {
	_, client := newTestServer(t)
	if _, err := client.InsertRule(RuleJSON{PDP: "ghost", Action: "allow"}); err == nil {
		t.Fatal("rule from unregistered PDP accepted")
	}
	if err := client.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := client.InsertRule(RuleJSON{PDP: "ops", Action: "shrug"}); err == nil {
		t.Fatal("bad action accepted")
	}
	if _, err := client.InsertRule(RuleJSON{PDP: "ops", Action: "allow",
		Src: EndpointJSON{IP: "not-an-ip"}}); err == nil {
		t.Fatal("bad IP accepted")
	}
	if _, err := client.InsertRule(RuleJSON{PDP: "ops", Action: "allow",
		Src: EndpointJSON{MAC: "zz:zz"}}); err == nil {
		t.Fatal("bad MAC accepted")
	}
}

func TestBindings(t *testing.T) {
	sys, client := newTestServer(t)
	steps := []BindingJSON{
		{Kind: "ip-mac", IP: "10.0.0.1", MAC: "02:00:00:00:00:01"},
		{Kind: "host-ip", Host: "h1", IP: "10.0.0.1"},
		{Kind: "user-host", User: "alice", Host: "h1"},
	}
	for _, b := range steps {
		if err := client.AddBinding(b); err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
	}
	if users := sys.Entity().UsersOn("h1"); len(users) != 1 || users[0] != "alice" {
		t.Fatalf("users = %v", users)
	}
	if err := client.AddBinding(BindingJSON{Kind: "user-host", User: "alice", Host: "h1", Remove: true}); err != nil {
		t.Fatal(err)
	}
	if users := sys.Entity().UsersOn("h1"); len(users) != 0 {
		t.Fatalf("users after unbind = %v", users)
	}
	if err := client.AddBinding(BindingJSON{Kind: "nonsense"}); err == nil {
		t.Fatal("unknown binding kind accepted")
	}
	if err := client.AddBinding(BindingJSON{Kind: "ip-mac", IP: "bad", MAC: "02:00:00:00:00:01"}); err == nil {
		t.Fatal("bad IP accepted")
	}
}

func TestStats(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := client.InsertRule(RuleJSON{PDP: "ops", Action: "deny"}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rules != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFlowInspectionThroughProxy(t *testing.T) {
	sys, client := newTestServer(t)

	// Wire a real switch through the proxy so flows can be read back.
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 0x7})
	swEnd, dfiEnd := bufpipe.New()
	go func() { _ = sw.ServeControl(swEnd) }()
	go func() { _ = sys.ServeSwitch(dfiEnd) }()
	t.Cleanup(func() {
		swEnd.Close()
		dfiEnd.Close()
	})
	if !sw.WaitConfigured(5 * time.Second) {
		t.Fatal("switch never configured")
	}

	dpids, err := client.Switches()
	if err != nil {
		t.Fatal(err)
	}
	if len(dpids) != 1 || dpids[0] != 0x7 {
		t.Fatalf("switches = %v", dpids)
	}

	// Drive one denied flow so a DFI rule lands in table 0.
	if err := sw.AttachPort(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	frame := netpkt.BuildTCP(
		netpkt.MustParseMAC("02:00:00:00:00:01"), netpkt.MustParseMAC("02:00:00:00:00:02"),
		netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"),
		&netpkt.TCPSegment{SrcPort: 1000, DstPort: 80, Flags: netpkt.TCPSyn})
	sw.Inject(1, frame)
	deadline := time.Now().Add(5 * time.Second)
	for sw.FlowCount(0) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	flows, err := client.Flows(0x7)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	f := flows[0]
	if f.TableID != 0 || f.Action != "deny" || f.Cookie != 0 {
		t.Fatalf("flow = %+v", f)
	}
	if f.Match == "" {
		t.Fatal("empty match rendering")
	}

	// Unknown switch errors cleanly.
	if _, err := client.Flows(0x99); err == nil {
		t.Fatal("unknown dpid accepted")
	}
}
