// Package admin provides the HTTP/JSON administrative API for a running
// DFI control plane: inspecting and editing policy rules, registering
// PDPs, adding identifier bindings and reading statistics. cmd/dfid serves
// it; cmd/dfictl is its client.
package admin

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	dfi "github.com/dfi-sdn/dfi"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// ErrorJSON is the uniform error envelope every non-2xx response carries.
type ErrorJSON struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the envelope's payload: a stable machine-readable code and
// a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Lines carries the 1-based source line numbers of policy-document
	// parse/compile failures (validation_failed responses from the
	// /v1/policy endpoints); empty elsewhere.
	Lines []int `json:"lines,omitempty"`
}

// Error codes used in the envelope.
const (
	CodeBadRequest       = "bad_request"        // malformed request (unparseable JSON)
	CodeValidation       = "validation_failed"  // well-formed but semantically invalid
	CodeConflict         = "conflict"           // duplicate PDP/priority
	CodeNotFound         = "not_found"          // unknown id or endpoint
	CodeMethodNotAllowed = "method_not_allowed" // endpoint exists, method does not
	CodeBadGateway       = "bad_gateway"        // a switch query failed
)

// RuleJSON is the wire form of a policy rule. Empty/absent fields are
// wildcards.
type RuleJSON struct {
	ID       uint64       `json:"id,omitempty"`
	PDP      string       `json:"pdp"`
	Priority int          `json:"priority,omitempty"`
	Action   string       `json:"action"` // "allow" | "deny"
	Props    PropsJSON    `json:"props,omitempty"`
	Src      EndpointJSON `json:"src,omitempty"`
	Dst      EndpointJSON `json:"dst,omitempty"`
	// Origin is the rule's provenance tag (set for rules compiled from a
	// policy document, e.g. "line 4" or "template quarantine(h7)").
	Origin string `json:"origin,omitempty"`
}

// PropsJSON is the wire form of flow properties.
type PropsJSON struct {
	EtherType *uint16 `json:"etherType,omitempty"`
	IPProto   *uint8  `json:"ipProto,omitempty"`
}

// EndpointJSON is the wire form of an endpoint spec.
type EndpointJSON struct {
	User       string  `json:"user,omitempty"`
	Host       string  `json:"host,omitempty"`
	IP         string  `json:"ip,omitempty"`
	Port       *uint16 `json:"port,omitempty"`
	MAC        string  `json:"mac,omitempty"`
	SwitchPort *uint32 `json:"switchPort,omitempty"`
	DPID       *uint64 `json:"dpid,omitempty"`
}

// FlowJSON is the wire form of one installed flow rule read back from a
// switch's tables.
type FlowJSON struct {
	TableID     uint8  `json:"tableId"`
	Priority    uint16 `json:"priority"`
	Cookie      uint64 `json:"cookie"`
	Match       string `json:"match"`
	Packets     uint64 `json:"packets"`
	Bytes       uint64 `json:"bytes"`
	DurationSec uint32 `json:"durationSec"`
	IdleTimeout uint16 `json:"idleTimeoutSec"`
	Action      string `json:"action"` // "allow" (goto) | "deny" (drop) | "other"
}

// StatsJSON is the wire form of control-plane statistics.
type StatsJSON struct {
	Rules          int     `json:"rules"`
	ProxyPacketIns uint64  `json:"proxyPacketIns"`
	ProxyDenied    uint64  `json:"proxyDenied"`
	ProxyDropped   uint64  `json:"proxyDropped"`
	ProxyForwarded uint64  `json:"proxyForwarded"`
	PCPProcessed   uint64  `json:"pcpProcessed"`
	PCPDropped     uint64  `json:"pcpDropped"`
	PCPAllowed     uint64  `json:"pcpAllowed"`
	PCPDenied      uint64  `json:"pcpDenied"`
	PCPCacheHits   uint64  `json:"pcpCacheHits"`
	PCPCacheMisses uint64  `json:"pcpCacheMisses"`
	PCPCacheStale  uint64  `json:"pcpCacheStale"`
	MeanLatencyMs  float64 `json:"meanLatencyMs"`
	BindingQueryMs float64 `json:"bindingQueryMs"`
	PolicyQueryMs  float64 `json:"policyQueryMs"`
}

// HealthJSON is the /v1/healthz body.
type HealthJSON struct {
	Status   string `json:"status"`
	Switches int    `json:"switches"`
	Rules    int    `json:"rules"`
	// Traces is the total number of admission traces committed so far.
	Traces uint64 `json:"traces"`
}

// TraceJSON is the wire form of one admission trace. Stage durations are
// microseconds, matching the paper's Table II units.
type TraceJSON struct {
	Seq       uint64  `json:"seq"`
	Start     string  `json:"start"`
	DPID      uint64  `json:"dpid"`
	InPort    uint32  `json:"inPort"`
	Flow      string  `json:"flow"`
	Outcome   string  `json:"outcome"`
	CacheHit  bool    `json:"cacheHit"`
	RuleID    uint64  `json:"ruleId"`
	Err       string  `json:"err,omitempty"`
	ParseUs   float64 `json:"parseUs"`
	BindingUs float64 `json:"bindingUs"`
	PolicyUs  float64 `json:"policyUs"`
	InstallUs float64 `json:"installUs"`
	ProxyUs   float64 `json:"proxyUs"`
	TotalUs   float64 `json:"totalUs"`
}

func fromTrace(t obs.AdmissionTrace) TraceJSON {
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	return TraceJSON{
		Seq:       t.Seq,
		Start:     t.Start.Format(time.RFC3339Nano),
		DPID:      t.DPID,
		InPort:    t.InPort,
		Flow:      t.Key.String(),
		Outcome:   t.Outcome.String(),
		CacheHit:  t.CacheHit,
		RuleID:    t.RuleID,
		Err:       t.Err,
		ParseUs:   us(t.Parse),
		BindingUs: us(t.Binding),
		PolicyUs:  us(t.Policy),
		InstallUs: us(t.Install),
		ProxyUs:   us(t.Proxy),
		TotalUs:   us(t.Total),
	}
}

// SpanJSON is the wire form of one causal span. Durations are
// microseconds, matching TraceJSON.
type SpanJSON struct {
	Seq        uint64  `json:"seq"`
	Trace      uint64  `json:"trace"`
	ID         uint64  `json:"id"`
	Parent     uint64  `json:"parent,omitempty"`
	Component  string  `json:"component"`
	Stage      string  `json:"stage"`
	Start      string  `json:"start"`
	DurationUs float64 `json:"durationUs"`
	DPID       uint64  `json:"dpid,omitempty"`
	RuleID     uint64  `json:"ruleId,omitempty"`
	Detail     string  `json:"detail,omitempty"`
	Err        string  `json:"err,omitempty"`
}

func fromSpan(sp obs.Span) SpanJSON {
	return SpanJSON{
		Seq:        sp.Seq,
		Trace:      uint64(sp.Trace),
		ID:         sp.ID,
		Parent:     sp.Parent,
		Component:  sp.Component,
		Stage:      sp.Stage,
		Start:      sp.Start.Format(time.RFC3339Nano),
		DurationUs: float64(sp.Duration) / 1e3,
		DPID:       sp.DPID,
		RuleID:     sp.RuleID,
		Detail:     sp.Detail,
		Err:        sp.Err,
	}
}

// AuditVerifyJSON is the /v1/audit/verify body: the outcome of walking
// the on-disk hash chain end to end.
type AuditVerifyJSON struct {
	OK      bool     `json:"ok"`
	Records int      `json:"records"`
	Files   []string `json:"files"`
	Head    string   `json:"head,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// BindingJSON adds one identifier binding.
type BindingJSON struct {
	Kind string `json:"kind"` // "user-host" | "host-ip" | "ip-mac"
	User string `json:"user,omitempty"`
	Host string `json:"host,omitempty"`
	IP   string `json:"ip,omitempty"`
	MAC  string `json:"mac,omitempty"`
	// Remove unbinds instead of binding.
	Remove bool `json:"remove,omitempty"`
}

func toRule(j RuleJSON) (policy.Rule, error) {
	r := policy.Rule{PDP: j.PDP}
	switch j.Action {
	case "allow":
		r.Action = policy.ActionAllow
	case "deny":
		r.Action = policy.ActionDeny
	default:
		return r, fmt.Errorf("admin: bad action %q", j.Action)
	}
	r.Props = policy.FlowProperties{EtherType: j.Props.EtherType, IPProto: j.Props.IPProto}
	var err error
	if r.Src, err = toEndpoint(j.Src); err != nil {
		return r, err
	}
	if r.Dst, err = toEndpoint(j.Dst); err != nil {
		return r, err
	}
	return r, nil
}

func toEndpoint(j EndpointJSON) (policy.EndpointSpec, error) {
	e := policy.EndpointSpec{
		User:       j.User,
		Host:       j.Host,
		Port:       j.Port,
		SwitchPort: j.SwitchPort,
		DPID:       j.DPID,
	}
	if j.IP != "" {
		ip, err := netpkt.ParseIPv4(j.IP)
		if err != nil {
			return e, fmt.Errorf("admin: %w", err)
		}
		e.IP = &ip
	}
	if j.MAC != "" {
		mac, err := netpkt.ParseMAC(j.MAC)
		if err != nil {
			return e, fmt.Errorf("admin: %w", err)
		}
		e.MAC = &mac
	}
	return e, nil
}

func fromRule(r policy.Rule) RuleJSON {
	j := RuleJSON{
		ID:       uint64(r.ID),
		PDP:      r.PDP,
		Priority: r.Priority,
		Props:    PropsJSON{EtherType: r.Props.EtherType, IPProto: r.Props.IPProto},
		Src:      fromEndpoint(r.Src),
		Dst:      fromEndpoint(r.Dst),
		Origin:   r.Origin,
	}
	if r.Action == policy.ActionAllow {
		j.Action = "allow"
	} else {
		j.Action = "deny"
	}
	return j
}

func fromEndpoint(e policy.EndpointSpec) EndpointJSON {
	j := EndpointJSON{
		User:       e.User,
		Host:       e.Host,
		Port:       e.Port,
		SwitchPort: e.SwitchPort,
		DPID:       e.DPID,
	}
	if e.IP != nil {
		j.IP = e.IP.String()
	}
	if e.MAC != nil {
		j.MAC = e.MAC.String()
	}
	return j
}

// HandlerOption configures optional admin API surfaces.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	pprof bool
}

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiling endpoints expose internals and should be an explicit
// operator choice (dfid's -pprof flag).
func WithPprof() HandlerOption {
	return func(c *handlerConfig) { c.pprof = true }
}

// Handler serves the admin API for sys. Every route lives under the
// versioned /v1/ prefix; the pre-versioning unversioned paths are kept as
// thin aliases of the same handlers. All error responses — including the
// mux's own 404s and 405s — carry the ErrorJSON envelope.
func Handler(sys *dfi.System, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	// handle registers a /v1 route and its legacy unversioned alias.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		mux.HandleFunc(strings.Replace(pattern, "/v1/", "/", 1), h)
	}

	registerPolicy(handle, sys)

	// The per-rule endpoints below are the imperative low-level escape
	// hatch: they mutate single manager rules directly, bypassing the
	// policy-language document. Prefer the declarative /v1/policy document
	// API; rules inserted here are not reflected in GET /v1/policy and are
	// revoked by nothing short of DELETE /v1/rules/{id}.
	handle("GET /v1/rules", func(w http.ResponseWriter, _ *http.Request) {
		rules := sys.Policy().Rules()
		out := make([]RuleJSON, 0, len(rules))
		for _, r := range rules {
			out = append(out, fromRule(r))
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("POST /v1/rules", func(w http.ResponseWriter, r *http.Request) {
		var j RuleJSON
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		rule, err := toRule(j)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, CodeValidation, err)
			return
		}
		id, err := sys.Policy().Insert(rule)
		if err != nil {
			if errors.Is(err, policy.ErrUnknownPDP) {
				httpError(w, http.StatusUnprocessableEntity, CodeValidation, err)
			} else {
				httpError(w, http.StatusConflict, CodeConflict, err)
			}
			return
		}
		writeJSON(w, http.StatusCreated, map[string]uint64{"id": uint64(id)})
	})

	handle("DELETE /v1/rules/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, CodeValidation, err)
			return
		}
		if err := sys.Policy().Revoke(policy.RuleID(id)); err != nil {
			httpError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	handle("POST /v1/pdps", func(w http.ResponseWriter, r *http.Request) {
		var j struct {
			Name     string `json:"name"`
			Priority int    `json:"priority"`
		}
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		if j.Name == "" {
			httpError(w, http.StatusUnprocessableEntity, CodeValidation,
				errors.New("admin: pdp name required"))
			return
		}
		if err := sys.Policy().RegisterPDP(j.Name, j.Priority); err != nil {
			httpError(w, http.StatusConflict, CodeConflict, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})

	handle("POST /v1/bindings", func(w http.ResponseWriter, r *http.Request) {
		var j BindingJSON
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		if err := applyBinding(sys, j); err != nil {
			httpError(w, http.StatusUnprocessableEntity, CodeValidation, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	handle("GET /v1/switches", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, sys.PCP().Switches())
	})

	handle("GET /v1/flows/{dpid}", func(w http.ResponseWriter, r *http.Request) {
		dpid, err := strconv.ParseUint(r.PathValue("dpid"), 0, 64)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, CodeValidation, err)
			return
		}
		tableID := openflow.AllTables
		if tq := r.URL.Query().Get("table"); tq != "" {
			tv, err := strconv.ParseUint(tq, 10, 8)
			if err != nil {
				httpError(w, http.StatusUnprocessableEntity, CodeValidation, err)
				return
			}
			tableID = uint8(tv)
		}
		flows, err := sys.PCP().ReadFlows(dpid, &openflow.FlowStatsRequest{
			TableID:  tableID,
			OutPort:  openflow.PortAny,
			OutGroup: 0xffffffff,
			Match:    &openflow.Match{},
		})
		if err != nil {
			httpError(w, http.StatusBadGateway, CodeBadGateway, err)
			return
		}
		out := make([]FlowJSON, 0, len(flows))
		for _, f := range flows {
			out = append(out, fromFlowStats(f))
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		ps := sys.Proxy().Stats()
		m := sys.PCP().Metrics()
		writeJSON(w, http.StatusOK, StatsJSON{
			Rules:          sys.Policy().Len(),
			ProxyPacketIns: ps.PacketIns,
			ProxyDenied:    ps.Denied,
			ProxyDropped:   ps.DroppedOverload,
			ProxyForwarded: ps.Forwarded,
			PCPProcessed:   m.Processed(),
			PCPDropped:     m.Dropped(),
			PCPAllowed:     m.Allowed(),
			PCPDenied:      m.Denied(),
			PCPCacheHits:   m.CacheHits(),
			PCPCacheMisses: m.CacheMisses(),
			PCPCacheStale:  m.CacheStale(),
			MeanLatencyMs:  float64(m.Total.Mean()) / 1e6,
			BindingQueryMs: float64(m.BindingQuery.Mean()) / 1e6,
			PolicyQueryMs:  float64(m.PolicyQuery.Mean()) / 1e6,
		})
	})

	handle("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = sys.Metrics().WritePrometheus(w)
	})

	handle("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, HealthJSON{
			Status:   "ok",
			Switches: len(sys.PCP().Switches()),
			Rules:    sys.Policy().Len(),
			Traces:   sys.Traces().Committed(),
		})
	})

	handle("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if nq := r.URL.Query().Get("n"); nq != "" {
			nv, err := strconv.Atoi(nq)
			if err != nil || nv < 1 {
				httpError(w, http.StatusUnprocessableEntity, CodeValidation,
					fmt.Errorf("admin: bad trace count %q", nq))
				return
			}
			n = nv
		}
		traces := sys.Traces().Last(n)
		out := make([]TraceJSON, 0, len(traces))
		for _, t := range traces {
			out = append(out, fromTrace(t))
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("GET /v1/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := sys.Spans()
		if !spans.Enabled() {
			httpError(w, http.StatusNotFound, CodeNotFound,
				errors.New("admin: causal tracing disabled"))
			return
		}
		var got []obs.Span
		if tq := r.URL.Query().Get("trace"); tq != "" {
			id, err := strconv.ParseUint(tq, 10, 64)
			if err != nil || id == 0 {
				httpError(w, http.StatusUnprocessableEntity, CodeValidation,
					fmt.Errorf("admin: bad trace id %q", tq))
				return
			}
			got = spans.ByTrace(obs.TraceID(id))
		} else {
			n := 64
			if nq := r.URL.Query().Get("n"); nq != "" {
				nv, err := strconv.Atoi(nq)
				if err != nil || nv < 1 {
					httpError(w, http.StatusUnprocessableEntity, CodeValidation,
						fmt.Errorf("admin: bad span count %q", nq))
					return
				}
				n = nv
			}
			got = spans.Last(n)
		}
		out := make([]SpanJSON, 0, len(got))
		for _, sp := range got {
			out = append(out, fromSpan(sp))
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("GET /v1/slo", func(w http.ResponseWriter, _ *http.Request) {
		engine := sys.SLO()
		if engine == nil {
			httpError(w, http.StatusNotFound, CodeNotFound,
				errors.New("admin: slo engine disabled"))
			return
		}
		writeJSON(w, http.StatusOK, engine.Evaluate())
	})

	handle("GET /v1/audit", func(w http.ResponseWriter, r *http.Request) {
		audit := sys.Audit()
		if audit == nil {
			httpError(w, http.StatusNotFound, CodeNotFound,
				errors.New("admin: audit log disabled"))
			return
		}
		n := 64
		if nq := r.URL.Query().Get("n"); nq != "" {
			nv, err := strconv.Atoi(nq)
			if err != nil || nv < 1 {
				httpError(w, http.StatusUnprocessableEntity, CodeValidation,
					fmt.Errorf("admin: bad audit count %q", nq))
				return
			}
			n = nv
		}
		recs := audit.Last(n)
		if recs == nil {
			recs = []obs.AuditRecord{}
		}
		writeJSON(w, http.StatusOK, recs)
	})

	handle("GET /v1/audit/verify", func(w http.ResponseWriter, _ *http.Request) {
		audit := sys.Audit()
		if audit == nil {
			httpError(w, http.StatusNotFound, CodeNotFound,
				errors.New("admin: audit log disabled"))
			return
		}
		out := AuditVerifyJSON{Files: audit.Files(), Head: audit.Head()}
		n, err := audit.Verify()
		out.Records = n
		if err != nil {
			out.Error = err.Error()
		} else {
			out.OK = true
		}
		writeJSON(w, http.StatusOK, out)
	})

	if cfg.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	return envelopeErrors(mux)
}

// envelopeErrors wraps the mux so its built-in plain-text 404 and 405
// responses are rewritten into the JSON error envelope. Handlers that
// produce their own 404s are untouched: they write JSON before the status.
func envelopeErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	// intercepted marks that the envelope replaced the handler's body.
	intercepted bool
	wroteHeader bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.intercepted = true
		body := ErrorJSON{Error: ErrorBody{Code: CodeNotFound, Message: "no such endpoint"}}
		if code == http.StatusMethodNotAllowed {
			body.Error = ErrorBody{Code: CodeMethodNotAllowed, Message: "method not allowed"}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(code)
		_ = json.NewEncoder(w.ResponseWriter).Encode(body)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercepted {
		// Swallow the mux's plain-text body; the envelope is already out.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

func fromFlowStats(f *openflow.FlowStatsEntry) FlowJSON {
	j := FlowJSON{
		TableID:     f.TableID,
		Priority:    f.Priority,
		Cookie:      f.Cookie,
		Match:       f.Match.String(),
		Packets:     f.PacketCount,
		Bytes:       f.ByteCount,
		DurationSec: f.DurationSec,
		IdleTimeout: f.IdleTimeout,
		Action:      "deny",
	}
	if len(f.Instructions) > 0 {
		j.Action = "other"
		for _, in := range f.Instructions {
			if _, ok := in.(*openflow.InstructionGotoTable); ok {
				j.Action = "allow"
			}
		}
	}
	return j
}

func applyBinding(sys *dfi.System, j BindingJSON) error {
	erm := sys.Entity()
	switch j.Kind {
	case "user-host":
		if j.User == "" || j.Host == "" {
			return fmt.Errorf("admin: user-host binding needs user and host")
		}
		if j.Remove {
			erm.UnbindUserHost(j.User, j.Host)
		} else {
			erm.BindUserHost(j.User, j.Host)
		}
	case "host-ip":
		if j.Host == "" || j.IP == "" {
			return fmt.Errorf("admin: host-ip binding needs host and ip")
		}
		ip, err := netpkt.ParseIPv4(j.IP)
		if err != nil {
			return err
		}
		if j.Remove {
			erm.UnbindHostIP(j.Host, ip)
		} else {
			erm.BindHostIP(j.Host, ip)
		}
	case "ip-mac":
		if j.IP == "" || j.MAC == "" {
			return fmt.Errorf("admin: ip-mac binding needs ip and mac")
		}
		ip, err := netpkt.ParseIPv4(j.IP)
		if err != nil {
			return err
		}
		mac, err := netpkt.ParseMAC(j.MAC)
		if err != nil {
			return err
		}
		if j.Remove {
			erm.UnbindIPMAC(ip, mac)
		} else {
			erm.BindIPMAC(ip, mac)
		}
	default:
		return fmt.Errorf("admin: unknown binding kind %q", j.Kind)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorJSON{Error: ErrorBody{Code: code, Message: err.Error()}})
}
