package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// nopSwitch satisfies pcp.SwitchClient, discarding installed rules.
type nopSwitch struct{}

func (nopSwitch) WriteFlowMod(*openflow.FlowMod) error { return nil }

// admitFlow pushes one synthetic packet-in through the PCP so counters and
// traces move without wiring a whole simulated switch.
func admitFlow(p *pcp.PCP, srcPort uint16) {
	frame := netpkt.BuildTCP(
		netpkt.MustParseMAC("02:00:00:00:00:01"), netpkt.MustParseMAC("02:00:00:00:00:02"),
		netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"),
		&netpkt.TCPSegment{SrcPort: srcPort, DstPort: 80, Flags: netpkt.TCPSyn})
	p.Process(&pcp.Request{DPID: 7, PacketIn: &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(3)},
		Data:     frame,
	}})
}

// get performs a raw request and decodes any error envelope.
func get(t *testing.T, method, url string, body string) (*http.Response, ErrorJSON) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var env ErrorJSON
	_ = json.Unmarshal(raw, &env)
	return resp, env
}

func TestErrorEnvelopeAndMethodRouting(t *testing.T) {
	_, client := newTestServer(t)
	base := client.base

	// Unknown endpoint: JSON 404 envelope, not the mux's plain text.
	resp, env := get(t, http.MethodGet, base+"/v1/nope", "")
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Fatalf("404 = %d %+v", resp.StatusCode, env)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 content type = %q", ct)
	}

	// Known endpoint, wrong method: 405 envelope.
	resp, env = get(t, http.MethodPut, base+"/v1/rules", "")
	if resp.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("405 = %d %+v", resp.StatusCode, env)
	}

	// Malformed JSON body: 400 bad_request.
	resp, env = get(t, http.MethodPost, base+"/v1/rules", "{not json")
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != CodeBadRequest {
		t.Fatalf("400 = %d %+v", resp.StatusCode, env)
	}

	// Well-formed but invalid: 422 validation_failed.
	resp, env = get(t, http.MethodPost, base+"/v1/rules", `{"pdp":"x","action":"shrug"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != CodeValidation {
		t.Fatalf("422 = %d %+v", resp.StatusCode, env)
	}
	if env.Error.Message == "" {
		t.Fatal("empty validation message")
	}

	// Bad path id: 422, unknown id: 404.
	resp, env = get(t, http.MethodDelete, base+"/v1/rules/banana", "")
	if resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != CodeValidation {
		t.Fatalf("bad id = %d %+v", resp.StatusCode, env)
	}
	resp, env = get(t, http.MethodDelete, base+"/v1/rules/999", "")
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Fatalf("unknown id = %d %+v", resp.StatusCode, env)
	}
}

func TestLegacyUnversionedAliases(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.RegisterPDP("ops", 50); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/rules", "/rules", "/v1/stats", "/stats", "/v1/healthz", "/healthz"} {
		resp, _ := get(t, http.MethodGet, client.base+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	// Aliases share handlers, not just routes: inserting via the legacy
	// path is visible under /v1.
	resp, _ := get(t, http.MethodPost, client.base+"/pdps", `{"name":"legacy","priority":60}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("legacy pdp register = %d", resp.StatusCode)
	}
	if err := client.RegisterPDP("legacy", 61); err == nil {
		t.Fatal("PDP registered via legacy alias not visible under /v1")
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	sys, client := newTestServer(t)
	sys.PCP().AttachSwitch(7, nopSwitch{})
	for i := 0; i < 5; i++ {
		admitFlow(sys.PCP(), uint16(40000+i))
	}

	h, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Traces == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	text, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE dfi_pcp_processed_total counter",
		"dfi_pcp_processed_total 5",
		`dfi_pcp_stage_seconds_count{stage="binding_query"}`,
		"dfi_policy_rules 0",
		"dfi_bus_published_total",
		"dfi_span_committed_total",
		"dfi_go_goroutines",
		"dfi_go_heap_bytes",
		"dfi_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}

	traces, err := client.Traces(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(traces))
	}
	tr := traces[0]
	if tr.Outcome != "deny" || tr.DPID != 7 || tr.TotalUs <= 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if !strings.Contains(tr.Flow, "10.0.0.1") {
		t.Fatalf("trace flow = %q", tr.Flow)
	}
	// Most recent first.
	if traces[0].Seq < traces[1].Seq {
		t.Fatalf("trace order: %d before %d", traces[0].Seq, traces[1].Seq)
	}

	// Invalid count: 422 envelope.
	resp, env := get(t, http.MethodGet, client.base+"/v1/trace?n=banana", "")
	if resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != CodeValidation {
		t.Fatalf("bad n = %d %+v", resp.StatusCode, env)
	}

	// Stats and the registry agree: one source of truth.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PCPProcessed != 5 || stats.PCPProcessed != sys.PCP().Metrics().Processed() {
		t.Fatalf("stats processed = %d", stats.PCPProcessed)
	}
}

// TestMetricsScrapeUnderAdmissionLoad hammers the registry from concurrent
// admissions while /v1/metrics is scraped; run with -race this checks the
// registry's lock-free instruments against the exposition path.
func TestMetricsScrapeUnderAdmissionLoad(t *testing.T) {
	sys, client := newTestServer(t)
	sys.PCP().AttachSwitch(7, nopSwitch{})

	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				admitFlow(sys.PCP(), uint16(20000+w*perWorker+i))
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 20; i++ {
			if _, err := client.Metrics(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-scrapeDone

	if got := sys.PCP().Metrics().Processed(); got != workers*perWorker {
		t.Fatalf("processed = %d, want %d", got, workers*perWorker)
	}
	text, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "dfi_pcp_processed_total 200") {
		t.Fatal("final scrape does not reflect all admissions")
	}
}
