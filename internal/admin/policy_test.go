package admin

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

const policyDoc = `group eng { user alice; user bob }

pdp corp priority 50
allow proto tcp from group eng to host mail port 143
deny from host lobby-kiosk
`

func TestPolicyApplyShowDiffRoundTrip(t *testing.T) {
	sys, client := newTestServer(t)

	// Dry run first: delta is reported, nothing is applied.
	d, err := client.ApplyPolicy(policyDoc, true)
	if err != nil {
		t.Fatal(err)
	}
	if !d.DryRun || len(d.Insert) != 3 || len(d.Revoke) != 0 {
		t.Fatalf("dry-run delta = %+v", d)
	}
	for _, r := range d.Insert {
		if r.ID != 0 {
			t.Fatalf("dry-run insert carries ID: %+v", r)
		}
	}
	if src, err := client.Policy(); err != nil || strings.Contains(src, "eng") {
		t.Fatalf("dry run applied the document: %q, %v", src, err)
	}
	if sys.Policy().Len() != 0 {
		t.Fatal("dry run installed rules")
	}

	// Real apply.
	d, err = client.ApplyPolicy(policyDoc, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.DryRun || len(d.Insert) != 3 {
		t.Fatalf("apply delta = %+v", d)
	}
	for _, r := range d.Insert {
		if r.ID == 0 {
			t.Fatalf("applied insert without ID: %+v", r)
		}
		if r.Origin == "" {
			t.Fatalf("applied insert without origin: %+v", r)
		}
	}
	if sys.Policy().Len() != 3 {
		t.Fatalf("manager has %d rules", sys.Policy().Len())
	}

	// Show: canonical source round-trips through a second apply as a no-op.
	src, err := client.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "group eng") || !strings.Contains(src, "pdp corp priority 50") {
		t.Fatalf("source = %q", src)
	}
	if d, err = client.ApplyPolicy(src, false); err != nil || len(d.Insert)+len(d.Revoke) != 0 {
		t.Fatalf("canonical re-apply not a no-op: %+v, %v", d, err)
	}

	// Diff against a modified document.
	d, err = client.DiffPolicy(policyDoc + "deny to ip 10.0.0.66\n")
	if err != nil {
		t.Fatal(err)
	}
	if !d.DryRun || len(d.Insert) != 1 || len(d.Revoke) != 0 {
		t.Fatalf("diff delta = %+v", d)
	}
	if sys.Policy().Len() != 3 {
		t.Fatal("diff mutated the manager")
	}

	// Compiled view carries provenance.
	compiled, err := client.CompiledPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != 3 {
		t.Fatalf("compiled = %d rules", len(compiled))
	}
	groupExpansions := 0
	for _, cr := range compiled {
		if cr.Provenance.Line < 1 || cr.Provenance.Stmt == "" {
			t.Fatalf("compiled rule without provenance: %+v", cr)
		}
		if strings.Contains(cr.Provenance.Via, "group eng") {
			groupExpansions++
		}
	}
	if groupExpansions != 2 {
		t.Fatalf("group expansions = %d, want 2 (alice, bob)", groupExpansions)
	}
}

func TestPolicyValidationErrorEnvelope(t *testing.T) {
	_, client := newTestServer(t)

	body, _ := json.Marshal(PolicyDocJSON{Source: "pdp p priority banana\nallow from group ghosts\n"})
	req, err := http.NewRequest(http.MethodPut, client.base+"/v1/policy", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var envelope ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeValidation || envelope.Error.Message == "" {
		t.Fatalf("envelope = %+v", envelope)
	}
	// Both errors reported, each with its 1-based line.
	if len(envelope.Error.Lines) < 2 || envelope.Error.Lines[0] != 1 {
		t.Fatalf("lines = %v", envelope.Error.Lines)
	}

	// The client surfaces the envelope message.
	if _, err := client.ApplyPolicy("frobnicate", false); err == nil ||
		!strings.Contains(err.Error(), "validation_failed") {
		t.Fatalf("client error = %v", err)
	}
}

func TestPolicyApplyIsAtomicOverHTTP(t *testing.T) {
	sys, client := newTestServer(t)
	if _, err := client.ApplyPolicy(policyDoc, false); err != nil {
		t.Fatal(err)
	}
	epoch := sys.Policy().Epoch()
	if _, err := client.ApplyPolicy(policyDoc+"allow from group ghosts\n", false); err == nil {
		t.Fatal("bad document accepted")
	}
	if sys.Policy().Epoch() != epoch || sys.Policy().Len() != 3 {
		t.Fatal("failed apply mutated the manager")
	}
}

// TestPolicyVerifierGateAndAnnotations: a document with an error-severity
// finding (a deny silently shadowed by a higher-priority allow) is
// rejected by the real apply with the finding's line in the 422 envelope
// and no manager mutation; the same document dry-runs successfully with
// the findings attached; and a diff that widens the allow set reports the
// widening.
func TestPolicyVerifierGateAndAnnotations(t *testing.T) {
	sys, client := newTestServer(t)
	shadowed := "pdp admin priority 100\nallow from host web\npdp corp priority 10\ndeny from host web to host db\n"

	// Real apply: blocked, atomically.
	body, _ := json.Marshal(PolicyDocJSON{Source: shadowed})
	req, err := http.NewRequest(http.MethodPut, client.base+"/v1/policy", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var envelope ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeValidation || !strings.Contains(envelope.Error.Message, "[shadow]") {
		t.Fatalf("envelope = %+v", envelope)
	}
	if len(envelope.Error.Lines) != 1 || envelope.Error.Lines[0] != 4 {
		t.Fatalf("lines = %v, want [4]", envelope.Error.Lines)
	}
	if sys.Policy().Len() != 0 {
		t.Fatal("rejected apply mutated the manager")
	}

	// Dry run: allowed through, findings attached.
	d, err := client.ApplyPolicy(shadowed, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Findings) != 1 || d.Findings[0].Check != "shadow" ||
		string(d.Findings[0].Severity) != "error" || d.Findings[0].Line != 4 {
		t.Fatalf("dry-run findings = %+v", d.Findings)
	}
	if sys.Policy().Len() != 0 {
		t.Fatal("dry run installed rules")
	}

	// Widening: a new uncovered allow shows up in the diff annotations.
	if _, err := client.ApplyPolicy(policyDoc, false); err != nil {
		t.Fatal(err)
	}
	d, err = client.DiffPolicy(policyDoc + "allow from host web to host db\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Widening) != 1 || d.Widening[0].Line != 6 ||
		!strings.Contains(d.Widening[0].Message, "no previous allow") {
		t.Fatalf("widening = %+v", d.Widening)
	}
	// The running document against itself widens nothing.
	if d, err = client.DiffPolicy(policyDoc); err != nil || len(d.Widening) != 0 || len(d.Findings) != 0 {
		t.Fatalf("self-diff annotated: %+v, %v", d, err)
	}
}
