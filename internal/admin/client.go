package admin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/obs/slo"
)

// Client talks to a dfid admin endpoint.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the admin API at base (e.g.
// "http://127.0.0.1:8181").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

// Rules lists the stored policy.
func (c *Client) Rules() ([]RuleJSON, error) {
	var out []RuleJSON
	return out, c.do(http.MethodGet, "/v1/rules", nil, &out)
}

// InsertRule inserts a rule, returning its id.
func (c *Client) InsertRule(rule RuleJSON) (uint64, error) {
	var out map[string]uint64
	if err := c.do(http.MethodPost, "/v1/rules", rule, &out); err != nil {
		return 0, err
	}
	return out["id"], nil
}

// RevokeRule revokes a rule by id.
func (c *Client) RevokeRule(id uint64) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/v1/rules/%d", id), nil, nil)
}

// Policy fetches the running policy document (canonical policytext
// source, including runtime group-membership changes).
func (c *Client) Policy() (string, error) {
	var out PolicyDocJSON
	if err := c.do(http.MethodGet, "/v1/policy", nil, &out); err != nil {
		return "", err
	}
	return out.Source, nil
}

// ApplyPolicy atomically replaces the policy document with src, returning
// the rule delta the apply produced. With dryRun the document is only
// validated and diffed: the returned delta is what an apply would do, and
// nothing changes on the server.
func (c *Client) ApplyPolicy(src string, dryRun bool) (PolicyDeltaJSON, error) {
	path := "/v1/policy"
	if dryRun {
		path += "?dryRun=1"
	}
	var out PolicyDeltaJSON
	return out, c.do(http.MethodPut, path, PolicyDocJSON{Source: src}, &out)
}

// DiffPolicy previews the rule delta that applying src would produce,
// without applying it.
func (c *Client) DiffPolicy(src string) (PolicyDeltaJSON, error) {
	var out PolicyDeltaJSON
	return out, c.do(http.MethodPost, "/v1/policy/diff", PolicyDocJSON{Source: src}, &out)
}

// CompiledPolicy lists the lowered rules the policy document compiled to,
// each with provenance back to its source statement.
func (c *Client) CompiledPolicy() ([]CompiledRuleJSON, error) {
	var out []CompiledRuleJSON
	return out, c.do(http.MethodGet, "/v1/policy/compiled", nil, &out)
}

// RegisterPDP registers a PDP name with its priority.
func (c *Client) RegisterPDP(name string, priority int) error {
	return c.do(http.MethodPost, "/v1/pdps", map[string]any{"name": name, "priority": priority}, nil)
}

// AddBinding adds or removes an identifier binding.
func (c *Client) AddBinding(b BindingJSON) error {
	return c.do(http.MethodPost, "/v1/bindings", b, nil)
}

// Switches lists the datapath ids attached through the proxy.
func (c *Client) Switches() ([]uint64, error) {
	var out []uint64
	return out, c.do(http.MethodGet, "/v1/switches", nil, &out)
}

// Flows reads the installed flow rules of one switch (all tables).
func (c *Client) Flows(dpid uint64) ([]FlowJSON, error) {
	var out []FlowJSON
	return out, c.do(http.MethodGet, fmt.Sprintf("/v1/flows/%d", dpid), nil, &out)
}

// Stats reads control-plane statistics.
func (c *Client) Stats() (StatsJSON, error) {
	var out StatsJSON
	return out, c.do(http.MethodGet, "/v1/stats", nil, &out)
}

// Healthz reads the liveness summary.
func (c *Client) Healthz() (HealthJSON, error) {
	var out HealthJSON
	return out, c.do(http.MethodGet, "/v1/healthz", nil, &out)
}

// Traces reads the last n admission traces, most recent first.
func (c *Client) Traces(n int) ([]TraceJSON, error) {
	var out []TraceJSON
	return out, c.do(http.MethodGet, fmt.Sprintf("/v1/trace?n=%d", n), nil, &out)
}

// Spans reads every retained span of one causal trace, oldest first.
func (c *Client) Spans(trace uint64) ([]SpanJSON, error) {
	var out []SpanJSON
	return out, c.do(http.MethodGet, fmt.Sprintf("/v1/spans?trace=%d", trace), nil, &out)
}

// RecentSpans reads the last n committed spans, most recent first.
func (c *Client) RecentSpans(n int) ([]SpanJSON, error) {
	var out []SpanJSON
	return out, c.do(http.MethodGet, fmt.Sprintf("/v1/spans?n=%d", n), nil, &out)
}

// Audit reads the last n audit records, most recent first.
func (c *Client) Audit(n int) ([]obs.AuditRecord, error) {
	var out []obs.AuditRecord
	return out, c.do(http.MethodGet, fmt.Sprintf("/v1/audit?n=%d", n), nil, &out)
}

// AuditVerify asks the server to walk its on-disk audit chain end to end.
func (c *Client) AuditVerify() (AuditVerifyJSON, error) {
	var out AuditVerifyJSON
	return out, c.do(http.MethodGet, "/v1/audit/verify", nil, &out)
}

// SLO reads the server's current service-level-objective report. A server
// without WithSLO answers an enveloped not_found, surfaced as an error.
func (c *Client) SLO() (slo.Report, error) {
	var out slo.Report
	return out, c.do(http.MethodGet, "/v1/slo", nil, &out)
}

// Metrics reads the Prometheus text exposition of every registered
// instrument.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.base + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("admin client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("admin client: %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("admin client: %w", err)
	}
	return string(raw), nil
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("admin client: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("admin client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("admin client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr ErrorJSON
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error.Message != "" {
			return fmt.Errorf("admin client: %s: %s (%s)",
				resp.Status, apiErr.Error.Message, apiErr.Error.Code)
		}
		return fmt.Errorf("admin client: %s", resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("admin client: decode: %w", err)
		}
	}
	return nil
}
