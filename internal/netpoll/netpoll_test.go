//go:build linux

package netpoll

import (
	"net"
	"syscall"
	"testing"
	"time"
)

// tcpPair returns two connected TCP conns on loopback.
func tcpPair(t *testing.T) (*net.TCPConn, *net.TCPConn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := lis.Accept()
		ch <- res{c, err}
	}()
	a, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { a.Close(); r.c.Close() })
	return a.(*net.TCPConn), r.c.(*net.TCPConn)
}

func waitFor(t *testing.T, p *Poller, want func(Event) bool) Event {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	events := make([]Event, 8)
	for time.Now().Before(deadline) {
		n, err := p.Wait(events)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events[:n] {
			if want(ev) {
				return ev
			}
		}
	}
	t.Fatal("timeout waiting for event")
	return Event{}
}

func TestPollerReadReadiness(t *testing.T) {
	a, b := tcpPair(t)
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	fd, ok := FD(b)
	if !ok {
		t.Fatal("TCP conn not fd-backed")
	}
	if err := p.Add(fd, 7, true, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	ev := waitFor(t, p, func(ev Event) bool { return ev.Token == 7 && ev.Readable })
	if ev.Hangup {
		t.Fatalf("unexpected hangup: %+v", ev)
	}
	// Level-triggered: until the bytes are read the event re-fires.
	waitFor(t, p, func(ev Event) bool { return ev.Token == 7 && ev.Readable })

	buf := make([]byte, 16)
	if _, err := syscall.Read(fd, buf); err != nil {
		t.Fatal(err)
	}

	// Peer close surfaces as hangup.
	a.Close()
	waitFor(t, p, func(ev Event) bool { return ev.Token == 7 && ev.Hangup })
}

func TestPollerWakeInterruptsWait(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		events := make([]Event, 4)
		n, err := p.Wait(events)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		if n != 0 {
			t.Errorf("woken wait returned %d events, want 0", n)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := p.Wake(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Wake did not interrupt Wait")
	}
}

func TestPollerWriteReadiness(t *testing.T) {
	a, b := tcpPair(t)
	_ = b
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	fd, _ := FD(a)
	if err := p.Add(fd, 3, false, true); err != nil {
		t.Fatal(err)
	}
	// An idle socket is immediately writable.
	waitFor(t, p, func(ev Event) bool { return ev.Token == 3 && ev.Writable })
	// Dropping write interest stops the events; a Wake proves the loop is
	// otherwise idle.
	if err := p.Mod(fd, 3, false, false); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		p.Wake()
	}()
	events := make([]Event, 4)
	n, err := p.Wait(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:n] {
		if ev.Token == 3 && ev.Writable {
			t.Fatal("write event after interest removed")
		}
	}
}
