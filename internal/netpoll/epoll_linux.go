//go:build linux

package netpoll

import (
	"sync"
	"syscall"
)

// Poller is a level-triggered epoll instance plus a non-blocking wake pipe.
// Add/Mod/Del/Wake are safe for concurrent use from any goroutine; Wait
// must be called from a single goroutine (the owning event-loop worker).
type Poller struct {
	epfd int
	// wake pipe: writing one byte to wakeW interrupts a blocked Wait.
	wakeR, wakeW int
	// raw is the kernel-side event buffer, owned by the Wait goroutine and
	// reused across calls so the worker loop stays allocation-free.
	raw []syscall.EpollEvent

	mu     sync.Mutex
	closed bool
}

// New creates a poller. On non-linux platforms it returns ErrUnsupported.
func New() (*Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipefd [2]int
	if err := syscall.Pipe2(pipefd[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &Poller{epfd: epfd, wakeR: pipefd[0], wakeW: pipefd[1]}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN}
	setToken(&ev, wakeToken)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// interest builds the epoll event mask. EPOLLRDHUP is always requested so
// an orderly peer shutdown surfaces as Hangup even with reads paused.
func interest(readable, writable bool) uint32 {
	events := uint32(syscall.EPOLLRDHUP)
	if readable {
		events |= syscall.EPOLLIN
	}
	if writable {
		events |= syscall.EPOLLOUT
	}
	return events
}

// setToken stashes the caller token in the event's user-data pad.
func setToken(ev *syscall.EpollEvent, token uint32) {
	ev.Fd = int32(token)
}

// Add registers fd with the given interest set.
func (p *Poller) Add(fd int, token uint32, readable, writable bool) error {
	ev := syscall.EpollEvent{Events: interest(readable, writable)}
	setToken(&ev, token)
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// Mod replaces fd's interest set.
func (p *Poller) Mod(fd int, token uint32, readable, writable bool) error {
	ev := syscall.EpollEvent{Events: interest(readable, writable)}
	setToken(&ev, token)
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

// Del removes fd. Removing an fd that was closed (and therefore already
// auto-removed) reports the syscall error; callers may ignore it.
func (p *Poller) Del(fd int) error {
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

// Wake interrupts a blocked Wait. Coalesces: multiple Wakes before the
// worker drains the pipe produce one (or few) wake events.
func (p *Poller) Wake() error {
	var b [1]byte
	_, err := syscall.Write(p.wakeW, b[:])
	if err == syscall.EAGAIN {
		// Pipe already full: a wake is pending, which is all we need.
		return nil
	}
	return err
}

// Wait blocks until at least one registered fd is ready (or a Wake), then
// fills events and returns the count. A woken Wait may return 0 events.
// Wait must only be called from one goroutine.
func (p *Poller) Wait(events []Event) (int, error) {
	if cap(p.raw) < len(events) {
		p.raw = make([]syscall.EpollEvent, len(events))
	}
	raw := p.raw[:len(events)]
	for {
		n, err := syscall.EpollWait(p.epfd, raw, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return 0, err
		}
		out := 0
		woken := false
		for i := 0; i < n; i++ {
			ev := &raw[i]
			token := uint32(ev.Fd)
			if token == wakeToken {
				woken = true
				continue
			}
			events[out] = Event{
				Token:    token,
				Readable: ev.Events&(syscall.EPOLLIN|syscall.EPOLLPRI) != 0,
				Writable: ev.Events&syscall.EPOLLOUT != 0,
				Hangup:   ev.Events&(syscall.EPOLLHUP|syscall.EPOLLRDHUP|syscall.EPOLLERR) != 0,
			}
			out++
		}
		if woken {
			p.drainWake()
		}
		return out, nil
	}
}

// drainWake empties the wake pipe so the next Wait blocks again.
func (p *Poller) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(p.wakeR, buf[:])
		if n < len(buf) || err != nil {
			return
		}
	}
}

// Close releases the epoll instance and wake pipe. Concurrent Waits return
// an error once their fds close.
func (p *Poller) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	syscall.Close(p.wakeW)
	syscall.Close(p.wakeR)
	return syscall.Close(p.epfd)
}
