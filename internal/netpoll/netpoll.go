// Package netpoll is a minimal readiness poller for the DFI proxy's
// event-loop relay (ROADMAP item 3). On linux it wraps epoll through the
// stdlib syscall package — no cgo, no golang.org/x/sys — so a small fixed
// pool of workers can multiplex tens of thousands of switch connections
// without a goroutine (and its stack) per connection. On every other
// platform New reports ErrUnsupported and callers fall back to the
// channel-based pump mode the evloop package provides.
//
// The poller is deliberately tiny: level-triggered readiness, one uint32
// token per fd, and a Wake channel an outside goroutine can use to break a
// blocked Wait (registration, teardown, write-interest changes). Everything
// higher-level — partial-frame accumulation, peer backpressure, connection
// state — lives in internal/core/proxy/evloop.
package netpoll

import (
	"errors"
	"io"
	"syscall"
)

// ErrUnsupported is returned by New on platforms without an epoll-style
// readiness facility; callers should use their portable fallback.
var ErrUnsupported = errors.New("netpoll: not supported on this platform")

// Event is one readiness notification.
type Event struct {
	// Token is the caller's identifier for the fd, chosen at Add.
	Token uint32
	// Readable reports read readiness (data or EOF pending).
	Readable bool
	// Writable reports write readiness (a previously full socket drained).
	Writable bool
	// Hangup reports peer hangup or an fd error; the connection should be
	// torn down after draining any readable bytes.
	Hangup bool
}

// wakeToken marks the poller's internal wake pipe; it is never surfaced.
const wakeToken = ^uint32(0)

// FD extracts the underlying file descriptor of a stream, reporting whether
// it is fd-backed (a *net.TCPConn, *net.UnixConn, *os.File...). The fd is
// only valid while the owner keeps the stream open; callers own that
// lifecycle. Streams wrapped beyond recognition (TLS records, in-memory
// pipes) report false and take the fallback path.
func FD(stream io.ReadWriter) (int, bool) {
	sc, ok := stream.(syscall.Conn)
	if !ok {
		return -1, false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return -1, false
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return -1, false
	}
	return fd, fd >= 0
}
