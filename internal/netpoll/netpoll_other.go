//go:build !linux

package netpoll

// Poller is unavailable on this platform; New reports ErrUnsupported and
// every method panics if reached (the evloop engine never registers fds
// without a poller).
type Poller struct{}

// New reports ErrUnsupported: callers use the channel-based fallback.
func New() (*Poller, error) { return nil, ErrUnsupported }

func (p *Poller) Add(fd int, token uint32, readable, writable bool) error {
	panic("netpoll: no poller")
}

func (p *Poller) Mod(fd int, token uint32, readable, writable bool) error {
	panic("netpoll: no poller")
}

func (p *Poller) Del(fd int) error                 { panic("netpoll: no poller") }
func (p *Poller) Wake() error                      { panic("netpoll: no poller") }
func (p *Poller) Wait(events []Event) (int, error) { panic("netpoll: no poller") }
func (p *Poller) Close() error                     { return nil }
