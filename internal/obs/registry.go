// Package obs is DFI's unified observability layer: a dependency-free
// metrics registry (atomic counters, gauges, lock-free fixed-bucket latency
// histograms and labeled families of each) plus a bounded ring of per-flow
// admission traces (trace.go). Every control-plane component registers its
// instruments here, so the experiment harness, the /v1/metrics Prometheus
// endpoint and an operator's curl all read the same numbers.
//
// Instruments are cheap enough for the admission hot path: a counter add is
// one atomic add, a histogram observation is a handful of atomic adds with
// no locks, and every method tolerates a nil receiver (a component built
// without a registry skips instrumentation without branching at call sites).
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind is a metric's Prometheus type.
type Kind uint8

// Metric kinds, in Prometheus exposition vocabulary.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// metric is one registered family: it renders its current value(s) in
// Prometheus text exposition format.
type metric interface {
	kind() Kind
	expose(w io.Writer, name string) error
}

type entry struct {
	name string
	help string
	m    metric
}

// Registry holds named metric families. Registration methods are idempotent
// by name: re-registering a name returns the existing instrument, so two
// components may share a family without coordinating. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	ordered []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register returns the existing metric under name when present (panicking
// on a kind clash — a programming error) or stores the one built by mk.
func (r *Registry) register(name, help string, k Kind, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.m.kind() != k {
			panic(fmt.Sprintf("obs: %q re-registered as %s, was %s", name, k, e.m.kind()))
		}
		return e.m
	}
	// mk is the registry's own instrument factory, supplied by the typed
	// registration methods below: it never re-enters the registry or blocks.
	e := &entry{name: name, help: help, m: mk()} //dfi:ignore lockheld
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e.m
}

// Counter registers (or returns) a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, func() metric { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time, for components that already maintain their own monotonic count.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, KindCounter, func() metric { return counterFunc(fn) })
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// (e.g. a queue length or a map size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, func() metric { return gaugeFunc(fn) })
}

// Histogram registers (or returns) a fixed-bucket latency histogram.
// A nil bounds slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, KindHistogram, func() metric { return newHistogram(bounds) }).(*Histogram)
}

// CounterVec registers (or returns) a family of counters keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, help, KindCounter, func() metric {
		return &CounterVec{label: label, children: make(map[string]*Counter)}
	}).(*CounterVec)
}

// HistogramVec registers (or returns) a family of histograms keyed by one
// label. A nil bounds slice selects DefBuckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return r.register(name, help, KindHistogram, func() metric {
		return &HistogramVec{label: label, bounds: bounds, children: make(map[string]*Histogram)}
	}).(*HistogramVec)
}

// find returns the metric registered under name, nil when absent.
func (r *Registry) find(name string) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		return e.m
	}
	return nil
}

// FindCounter returns the counter registered under name, or nil when the
// name is unregistered or belongs to another instrument type. Lookups let
// a consumer (the SLO engine, a scenario harness) read a component's
// instrument without owning a registration site.
func (r *Registry) FindCounter(name string) *Counter {
	c, _ := r.find(name).(*Counter)
	return c
}

// FindHistogram returns the histogram registered under name, or nil (see
// FindCounter).
func (r *Registry) FindHistogram(name string) *Histogram {
	h, _ := r.find(name).(*Histogram)
	return h
}

// FindCounterVec returns the counter family registered under name, or nil
// (see FindCounter).
func (r *Registry) FindCounterVec(name string) *CounterVec {
	v, _ := r.find(name).(*CounterVec)
	return v
}

// FindHistogramVec returns the histogram family registered under name, or
// nil (see FindCounter).
func (r *Registry) FindHistogramVec(name string) *HistogramVec {
	v, _ := r.find(name).(*HistogramVec)
	return v
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*entry, len(r.ordered))
	copy(families, r.ordered)
	r.mu.Unlock()
	for _, e := range families {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.m.kind()); err != nil {
			return err
		}
		if err := e.m.expose(w, e.name); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.ordered))
	for i, e := range r.ordered {
		out[i] = e.name
	}
	return out
}

// CounterVec is a labeled family of counters. Children are created on first
// use of a label value and live for the registry's lifetime; callers should
// resolve With once at setup and hold the child, keeping the hot path to a
// single atomic add.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the counter for one label value, creating it if needed.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) kind() Kind { return KindCounter }

func (v *CounterVec) expose(w io.Writer, name string) error {
	for _, value := range v.labelValues() {
		v.mu.Lock()
		c := v.children[value]
		v.mu.Unlock()
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, value, c.Value()); err != nil {
			return err
		}
	}
	return nil
}

func (v *CounterVec) labelValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.children))
	for value := range v.children {
		out = append(out, value)
	}
	sort.Strings(out)
	return out
}

// HistogramVec is a labeled family of histograms.
type HistogramVec struct {
	label    string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the histogram for one label value, creating it if needed.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

func (v *HistogramVec) kind() Kind { return KindHistogram }

func (v *HistogramVec) expose(w io.Writer, name string) error {
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for value := range v.children {
		values = append(values, value)
	}
	v.mu.Unlock()
	sort.Strings(values)
	for _, value := range values {
		v.mu.Lock()
		h := v.children[value]
		v.mu.Unlock()
		if err := h.exposeLabeled(w, name, fmt.Sprintf("%s=%q", v.label, value)); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp is reserved for help strings containing newlines/backslashes.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
