package obs

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// AuditRecord is one line of the tamper-evident enforcement audit log:
// an access-control decision ("decision") or a policy/binding mutation
// ("policy"/"binding"). Records are hash-chained — Prev is the hex SHA-256
// of the previous record, Hash is the hex SHA-256 of this record
// serialized with Hash empty — so removing, reordering or editing any line
// breaks verification from that point on.
type AuditRecord struct {
	// Seq numbers records across the whole chain (continuing across
	// rotations and restarts).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock append time, RFC3339Nano. Stored as a string
	// so the hashed serialization is byte-stable across re-marshals.
	Time string `json:"time"`
	// Kind is "decision", "policy" or "binding"; Op refines it
	// (allow/deny/error, insert/revoke/revoke_all/flush, bind/unbind).
	Kind string `json:"kind"`
	Op   string `json:"op"`
	// Trace links the record to its causal trace when one was sampled.
	Trace uint64 `json:"trace,omitempty"`
	// RuleID is the deciding or mutated policy rule, when applicable.
	RuleID uint64 `json:"ruleId,omitempty"`
	// PDP names the rule's policy decision point, when applicable.
	PDP string `json:"pdp,omitempty"`
	// DPID and Flow locate an admission decision.
	DPID uint64 `json:"dpid,omitempty"`
	Flow string `json:"flow,omitempty"`
	// PolicyEpoch/EntityEpoch capture the state versions in effect at
	// decision time.
	PolicyEpoch uint64 `json:"policyEpoch,omitempty"`
	EntityEpoch uint64 `json:"entityEpoch,omitempty"`
	// CacheHit marks decisions served from the flow-decision cache.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Detail is a human-readable elaboration (entity bindings in effect,
	// the mutated binding, the rule text).
	Detail string `json:"detail,omitempty"`
	// Prev/Hash are the chain links (hex SHA-256).
	Prev string `json:"prev"`
	Hash string `json:"hash,omitempty"`
}

// GenesisHash anchors the chain: the Prev of the very first record.
var GenesisHash = hex.EncodeToString(make([]byte, sha256.Size))

// hashRecord computes the chain hash of rec: the SHA-256 of its JSON
// serialization with the Hash field empty (Prev already set).
func hashRecord(rec AuditRecord) (string, error) {
	rec.Hash = ""
	b, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// auditTailCap bounds the in-memory ring served by Last / GET /v1/audit.
const auditTailCap = 512

// DefaultAuditMaxBytes is the rotation threshold when none is given.
const DefaultAuditMaxBytes = 64 << 20

// AuditLog is an append-only, hash-chained JSONL log. Writes are
// serialized under a mutex and handed to the OS before Append returns
// (no fsync per record); when the active file would exceed
// maxBytes it is rotated to path+".1" (one rotated generation is kept)
// and the chain continues unbroken into the fresh file.
//
// A nil *AuditLog is a valid "auditing disabled" value: Append and the
// accessors are nil-safe no-ops.
type AuditLog struct {
	path     string
	maxBytes int64

	mu     sync.Mutex
	f      *os.File
	size   int64
	seq    uint64
	prev   string // head of the chain, hex
	closed bool

	// tail is a bounded ring of recent records for the admin API.
	tail     []AuditRecord
	tailNext uint64

	records  atomic.Uint64
	bytes    atomic.Uint64
	rotated  atomic.Uint64
	failures atomic.Uint64
}

// OpenAuditLog opens (creating if needed) the audit log at path, rotating
// when the active file exceeds maxBytes (<=0 selects
// DefaultAuditMaxBytes). If the file already holds records, the chain is
// verified and resumed from its head; a corrupt existing log is refused
// rather than silently extended.
func OpenAuditLog(path string, maxBytes int64) (*AuditLog, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultAuditMaxBytes
	}
	a := &AuditLog{path: path, maxBytes: maxBytes, prev: GenesisHash}

	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		n, last, err := verifyStream(f, "", 0)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("obs: existing audit log %s fails verification, refusing to append: %w", path, err)
		}
		if n > 0 {
			a.seq = last.Seq + 1
			a.prev = last.Hash
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	a.f = f
	a.size = st.Size()
	return a, nil
}

// Append stamps, chains and durably writes one record. Seq, Time, Prev
// and Hash are assigned here; the caller fills the rest. Nil-safe no-op.
func (a *AuditLog) Append(rec AuditRecord) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("obs: audit log closed")
	}

	rec.Seq = a.seq
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	rec.Prev = a.prev
	h, err := hashRecord(rec)
	if err != nil {
		a.failures.Add(1)
		return err
	}
	rec.Hash = h
	line, err := json.Marshal(rec)
	if err != nil {
		a.failures.Add(1)
		return err
	}
	line = append(line, '\n')

	if a.size > 0 && a.size+int64(len(line)) > a.maxBytes {
		if err := a.rotateLocked(); err != nil {
			a.failures.Add(1)
			return err
		}
	}
	if _, err := a.f.Write(line); err != nil {
		a.failures.Add(1)
		return err
	}
	a.size += int64(len(line))
	a.seq++
	a.prev = rec.Hash

	if len(a.tail) < auditTailCap {
		a.tail = append(a.tail, rec)
	} else {
		a.tail[a.tailNext%auditTailCap] = rec
	}
	a.tailNext++

	a.records.Add(1)
	a.bytes.Add(uint64(len(line)))
	return nil
}

// rotateLocked moves the active file to path+".1" (replacing any previous
// rotated generation) and starts a fresh file. The hash chain continues
// across the boundary.
func (a *AuditLog) rotateLocked() error {
	if err := a.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(a.path, a.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(a.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	a.f = f
	a.size = 0
	a.rotated.Add(1)
	return nil
}

// Head returns the hex hash at the head of the chain (the Hash of the
// most recent record, or GenesisHash for an empty log). A verifier can
// compare it against the last on-disk record to detect tail truncation.
// Nil-safe: a nil log returns "".
func (a *AuditLog) Head() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prev
}

// Path returns the active file's path. Nil-safe.
func (a *AuditLog) Path() string {
	if a == nil {
		return ""
	}
	return a.path
}

// Files returns the on-disk chain in verification order: the rotated
// generation (if present) then the active file. Nil-safe.
func (a *AuditLog) Files() []string {
	if a == nil {
		return nil
	}
	var out []string
	if _, err := os.Stat(a.path + ".1"); err == nil {
		out = append(out, a.path+".1")
	}
	return append(out, a.path)
}

// Last returns up to n recent records, most recent first. Nil-safe.
func (a *AuditLog) Last(n int) []AuditRecord {
	if a == nil || n <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > len(a.tail) {
		n = len(a.tail)
	}
	out := make([]AuditRecord, n)
	for i := 0; i < n; i++ {
		out[i] = a.tail[(a.tailNext-1-uint64(i))%auditTailCap]
	}
	return out
}

// Verify re-reads the on-disk chain (rotated generation then active file)
// and checks it end to end, including that the final on-disk hash matches
// the in-memory head (detecting tail truncation). Appends are held off
// for the duration so the head comparison is consistent. It returns the
// number of verified records. Nil-safe: a nil log verifies vacuously.
func (a *AuditLog) Verify() (int, error) {
	if a == nil {
		return 0, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return VerifyAuditChain(a.Files(), a.prev)
}

// Records, BytesWritten, Rotations and Failures back the dfi_audit_*
// metric family. Nil-safe.
func (a *AuditLog) Records() uint64 {
	if a == nil {
		return 0
	}
	return a.records.Load()
}

// BytesWritten returns the total bytes appended.
func (a *AuditLog) BytesWritten() uint64 {
	if a == nil {
		return 0
	}
	return a.bytes.Load()
}

// Rotations returns how many times the active file was rotated.
func (a *AuditLog) Rotations() uint64 {
	if a == nil {
		return 0
	}
	return a.rotated.Load()
}

// Failures returns how many appends failed (marshal or I/O errors).
func (a *AuditLog) Failures() uint64 {
	if a == nil {
		return 0
	}
	return a.failures.Load()
}

// Close flushes and closes the active file. Nil-safe.
func (a *AuditLog) Close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	return a.f.Close()
}

// VerifyAuditChain verifies the hash chain across paths, read in order
// (oldest file first). Every record's hash is recomputed and compared,
// every Prev must equal the previous record's Hash, and sequence numbers
// must be contiguous. If wantHead is non-empty, the final record's Hash
// must equal it — this is what catches an attacker truncating whole
// records off the tail, which an internally consistent chain cannot see.
// The first record's Prev is additionally pinned to GenesisHash when its
// Seq is 0 (a chain whose older generations were aged out starts mid-way
// and its opening Prev is taken on faith). Returns the number of verified
// records.
func VerifyAuditChain(paths []string, wantHead string) (int, error) {
	total := 0
	prevHash := ""
	prevSeq := uint64(0)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return total, err
		}
		n, last, err := verifyStream(f, prevHash, prevSeq)
		f.Close()
		if err != nil {
			return total, fmt.Errorf("%s: %w", p, err)
		}
		if n > 0 {
			prevHash = last.Hash
			prevSeq = last.Seq + 1
			total += n
		}
	}
	if wantHead != "" {
		if total == 0 {
			if wantHead != GenesisHash {
				return 0, errors.New("obs: audit chain empty but head hash expects records (tail truncated?)")
			}
		} else if prevHash != wantHead {
			return total, fmt.Errorf("obs: audit chain head %.12s… does not match expected %.12s… (tail truncated?)", prevHash, wantHead)
		}
	}
	return total, nil
}

// verifyStream verifies one JSONL stream. wantPrev/wantSeq chain it to
// the preceding file ("" means this is the first verified file: its first
// record anchors the chain). Returns the count and the last record.
func verifyStream(r io.Reader, wantPrev string, wantSeq uint64) (int, AuditRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var last AuditRecord
	n := 0
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec AuditRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return n, last, fmt.Errorf("line %d: corrupt record: %w", line, err)
		}
		want, err := hashRecord(rec)
		if err != nil {
			return n, last, fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Hash != want {
			return n, last, fmt.Errorf("line %d (seq %d): record hash mismatch (tampered)", line, rec.Seq)
		}
		switch {
		case n == 0 && wantPrev == "":
			if rec.Seq == 0 && rec.Prev != GenesisHash {
				return n, last, fmt.Errorf("line %d: first record's prev is not the genesis hash", line)
			}
		case n == 0:
			if rec.Prev != wantPrev {
				return n, last, fmt.Errorf("line %d (seq %d): chain break across rotation (prev mismatch)", line, rec.Seq)
			}
			if rec.Seq != wantSeq {
				return n, last, fmt.Errorf("line %d: sequence gap across rotation (got %d, want %d)", line, rec.Seq, wantSeq)
			}
		default:
			if rec.Prev != last.Hash {
				return n, last, fmt.Errorf("line %d (seq %d): chain break (prev mismatch)", line, rec.Seq)
			}
			if rec.Seq != last.Seq+1 {
				return n, last, fmt.Errorf("line %d: sequence gap (got %d, want %d)", line, rec.Seq, last.Seq+1)
			}
		}
		last = rec
		n++
	}
	if err := sc.Err(); err != nil {
		return n, last, err
	}
	return n, last, nil
}
