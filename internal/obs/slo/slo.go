// Package slo evaluates service-level objectives over the live instruments
// in an obs.Registry. Enforcement is treated as a measurable service-level
// property (PEPS's framing): time-to-enforcement and admission latency are
// tracked as sliding-window quantile objectives, packet-in load as a rate
// objective, and audit durability as a zero-failure objective.
//
// The engine never touches the admission hot path: objectives read atomic
// counters and histogram bucket snapshots at evaluation time only, so
// attaching an Engine to a running System costs nothing per packet.
package slo

import (
	"sync"
	"time"

	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

// Kind classifies how an objective turns raw instrument readings into a
// pass/fail verdict.
type Kind string

// Objective kinds.
const (
	// KindQuantile gates a histogram quantile (seconds) under a maximum.
	KindQuantile Kind = "quantile"
	// KindRate gates a counter's increase per second under a maximum.
	KindRate Kind = "rate"
	// KindZero requires a counter not to increase at all in the window.
	KindZero Kind = "zero"
)

// Objective is one service-level objective over a single instrument.
// Construct with Quantile, Rate or ZeroIncrease.
type Objective struct {
	// Name identifies the objective in reports ("tte-p99").
	Name string
	// Metric names the backing instrument family, for display.
	Metric string
	// Kind selects the evaluation rule.
	Kind Kind
	// Q is the quantile for KindQuantile (0–1).
	Q float64
	// Threshold is the pass bound: seconds for KindQuantile, events/sec
	// for KindRate, absolute increase for KindZero (normally 0).
	Threshold float64
	// Window is the sliding evaluation window. Samples older than Window
	// are discarded (one is retained as the interval baseline).
	Window time.Duration

	hist    func() obs.HistogramSnapshot // KindQuantile
	counter func() uint64                // KindRate, KindZero
}

// Quantile builds an objective gating h's q-th quantile (over the sliding
// window) at or under max.
func Quantile(name, metric string, h *obs.Histogram, q float64, max time.Duration, window time.Duration) Objective {
	return Objective{
		Name: name, Metric: metric, Kind: KindQuantile, Q: q,
		Threshold: max.Seconds(), Window: window,
		hist: h.Snapshot,
	}
}

// Rate builds an objective gating the increase of the counter read by src
// at or under maxPerSec, averaged over the sliding window.
func Rate(name, metric string, src func() uint64, maxPerSec float64, window time.Duration) Objective {
	return Objective{
		Name: name, Metric: metric, Kind: KindRate,
		Threshold: maxPerSec, Window: window,
		counter: src,
	}
}

// ZeroIncrease builds an objective requiring the counter read by src not to
// increase within the window — the shape of "no audit append may fail".
func ZeroIncrease(name, metric string, src func() uint64, window time.Duration) Objective {
	return Objective{
		Name: name, Metric: metric, Kind: KindZero,
		Threshold: 0, Window: window,
		counter: src,
	}
}

// sample is one timestamped instrument reading.
type sample struct {
	at      time.Time
	hist    obs.HistogramSnapshot
	counter uint64
}

// state is an Objective plus its sliding window and violation bookkeeping.
type state struct {
	Objective
	window   []sample // ascending by at; window[0] is the interval baseline
	breaches uint64
	badSince time.Time // zero while passing
}

// Status is the externally visible verdict for one objective, shaped for
// the /v1/slo JSON body.
type Status struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"`
	Kind      string  `json:"kind"`
	Quantile  float64 `json:"quantile,omitempty"`
	Window    string  `json:"window"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Unit      string  `json:"unit"`
	OK        bool    `json:"ok"`
	// Burn is Value/Threshold — >1 means the objective is burning. For
	// zero-threshold objectives it is the raw increase.
	Burn     float64 `json:"burn"`
	Breaches uint64  `json:"breaches"`
	// Since is when the current violation began (RFC3339), empty while ok.
	Since string `json:"since,omitempty"`
}

// Report is the full evaluation result.
type Report struct {
	Evaluated time.Time `json:"evaluated"`
	Healthy   bool      `json:"healthy"`
	Statuses  []Status  `json:"objectives"`
}

// Engine evaluates a fixed set of objectives against a Clock. Evaluate may
// be called from a ticker (Run), a scrape handler and tests concurrently.
type Engine struct {
	clock simclock.Clock

	mu     sync.Mutex
	states []*state

	runMu  sync.Mutex
	cancel func()
	gen    uint64
}

// New builds an engine over the given objectives. A nil clock selects the
// wall clock. When reg is non-nil the engine registers dfi_slo_violations,
// a gauge of currently failing objectives (it re-evaluates at scrape).
func New(clock simclock.Clock, reg *obs.Registry, objectives ...Objective) *Engine {
	if clock == nil {
		clock = simclock.Real{}
	}
	e := &Engine{clock: clock}
	for _, o := range objectives {
		e.states = append(e.states, &state{Objective: o})
	}
	if reg != nil {
		reg.GaugeFunc("dfi_slo_violations",
			"Objectives currently violating their SLO (re-evaluated at scrape).",
			func() float64 {
				n := 0
				for _, st := range e.Evaluate().Statuses {
					if !st.OK {
						n++
					}
				}
				return float64(n)
			})
	}
	return e
}

// Objectives returns the configured objective count.
func (e *Engine) Objectives() int {
	if e == nil {
		return 0
	}
	return len(e.states)
}

// Evaluate takes a fresh reading of every instrument, slides each window
// forward and returns the verdicts. Nil-safe (empty report).
func (e *Engine) Evaluate() Report {
	if e == nil {
		return Report{Healthy: true}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	rep := Report{Evaluated: now, Healthy: true}
	for _, st := range e.states {
		s := st.read(now)
		st.window = append(st.window, s)
		st.trim(now)
		status := st.evaluate(now)
		if !status.OK {
			rep.Healthy = false
		}
		rep.Statuses = append(rep.Statuses, status)
	}
	return rep
}

// read samples the objective's instrument.
func (st *state) read(now time.Time) sample {
	s := sample{at: now}
	switch st.Kind {
	case KindQuantile:
		s.hist = st.hist()
	default:
		s.counter = st.counter()
	}
	return s
}

// trim drops samples that fell out of the window, always retaining the most
// recent sample at or before the window start as the interval baseline (so
// a freshly started engine compares against its first reading rather than
// an empty origin).
func (st *state) trim(now time.Time) {
	cut := now.Add(-st.Window)
	i := 0
	for i < len(st.window)-1 && !st.window[i+1].at.After(cut) {
		i++
	}
	st.window = st.window[i:]
}

// evaluate computes the objective's current value against its baseline.
func (st *state) evaluate(now time.Time) Status {
	base, cur := st.window[0], st.window[len(st.window)-1]
	status := Status{
		Name:      st.Name,
		Metric:    st.Metric,
		Kind:      string(st.Kind),
		Quantile:  st.Q,
		Window:    st.Window.String(),
		Threshold: st.Threshold,
	}
	switch st.Kind {
	case KindQuantile:
		iv := cur.hist.Sub(base.hist)
		if iv.Count() == 0 {
			// No traffic in the window: vacuously healthy.
			status.Value = 0
		} else {
			status.Value = iv.Quantile(st.Q).Seconds()
		}
		status.Unit = "seconds"
	case KindRate:
		elapsed := cur.at.Sub(base.at).Seconds()
		if elapsed > 0 {
			status.Value = float64(cur.counter-base.counter) / elapsed
		}
		status.Unit = "per_second"
	case KindZero:
		status.Value = float64(cur.counter - base.counter)
		status.Unit = "events"
	}
	status.OK = status.Value <= status.Threshold
	if status.Threshold > 0 {
		status.Burn = status.Value / status.Threshold
	} else {
		status.Burn = status.Value
	}
	if status.OK {
		st.badSince = time.Time{}
	} else {
		st.breaches++
		if st.badSince.IsZero() {
			st.badSince = now
		}
		status.Since = st.badSince.UTC().Format(time.RFC3339Nano)
	}
	status.Breaches = st.breaches
	return status
}

// Run evaluates every interval on sched until Close. Calling Run again
// replaces the previous ticker; the generation counter keeps a late firing
// from a replaced ticker from re-arming itself.
func (e *Engine) Run(sched simclock.Scheduler, interval time.Duration) {
	if e == nil || interval <= 0 {
		return
	}
	e.runMu.Lock()
	prev := e.cancel
	e.gen++ // invalidate a previous Run's in-flight tick
	gen := e.gen
	var tick func()
	tick = func() {
		e.Evaluate()
		e.runMu.Lock()
		if e.gen == gen {
			e.cancel = sched.AfterFunc(interval, tick)
		}
		e.runMu.Unlock()
	}
	e.cancel = sched.AfterFunc(interval, tick)
	e.runMu.Unlock()
	if prev != nil {
		prev()
	}
}

// Close stops a Run loop. Safe without Run and on nil.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.runMu.Lock()
	e.gen++ // invalidate any in-flight tick's re-arm
	cancel := e.cancel
	e.cancel = nil
	e.runMu.Unlock()
	if cancel != nil {
		cancel()
	}
}
