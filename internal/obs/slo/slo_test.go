package slo

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

// stepClock is a hand-cranked clock: Sleep advances it, Now reads it. It
// keeps the window tests fully deterministic without a scheduler.
type stepClock struct{ t time.Time }

func (c *stepClock) Now() time.Time        { return c.t }
func (c *stepClock) Sleep(d time.Duration) { c.t = c.t.Add(d) }

func epoch() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) }

func TestQuantileObjectiveSlidingWindow(t *testing.T) {
	clock := &stepClock{t: epoch()}
	reg := obs.NewRegistry()
	h := reg.Histogram("dfi_test_tte_seconds", "t", nil)
	e := New(clock, nil, Quantile("tte-p99", "dfi_test_tte_seconds", h, 0.99, 10*time.Millisecond, time.Minute))

	// Empty window: vacuously healthy.
	rep := e.Evaluate()
	if !rep.Healthy || len(rep.Statuses) != 1 || !rep.Statuses[0].OK {
		t.Fatalf("empty window not healthy: %+v", rep)
	}

	// Fast mutations stay under the bound.
	for i := 0; i < 100; i++ {
		h.Observe(500 * time.Microsecond)
	}
	clock.Sleep(time.Second)
	rep = e.Evaluate()
	if !rep.Statuses[0].OK {
		t.Fatalf("fast traffic violated: %+v", rep.Statuses[0])
	}

	// A burst of slow mutations blows p99.
	for i := 0; i < 1000; i++ {
		h.Observe(80 * time.Millisecond)
	}
	clock.Sleep(time.Second)
	rep = e.Evaluate()
	st := rep.Statuses[0]
	if st.OK || rep.Healthy {
		t.Fatalf("slow burst not flagged: %+v", st)
	}
	if st.Since == "" || st.Breaches == 0 || st.Burn <= 1 {
		t.Fatalf("violation bookkeeping wrong: %+v", st)
	}

	// Once the burst ages out of the window and only fast traffic remains,
	// the objective recovers and Since clears.
	clock.Sleep(2 * time.Minute)
	for i := 0; i < 100; i++ {
		h.Observe(500 * time.Microsecond)
	}
	clock.Sleep(time.Second)
	rep = e.Evaluate()
	if !rep.Statuses[0].OK || rep.Statuses[0].Since != "" {
		t.Fatalf("window did not slide past burst: %+v", rep.Statuses[0])
	}
}

func TestRateObjective(t *testing.T) {
	clock := &stepClock{t: epoch()}
	var c obs.Counter
	e := New(clock, nil, Rate("packetin-rate", "dfi_test_processed_total", c.Value, 50, time.Minute))

	e.Evaluate() // baseline
	c.Add(1000)
	clock.Sleep(10 * time.Second) // 100/s over the interval
	st := e.Evaluate().Statuses[0]
	if st.OK || st.Value < 99 || st.Value > 101 {
		t.Fatalf("rate objective = %+v, want ~100/s violation", st)
	}

	// Quiet period: the window slides, the rate decays back under the max.
	clock.Sleep(2 * time.Minute)
	e.Evaluate()
	clock.Sleep(10 * time.Second)
	st = e.Evaluate().Statuses[0]
	if !st.OK || st.Value != 0 {
		t.Fatalf("idle rate = %+v, want ok", st)
	}
}

func TestZeroIncreaseObjective(t *testing.T) {
	clock := &stepClock{t: epoch()}
	var fails obs.Counter
	e := New(clock, nil, ZeroIncrease("audit-appends", "dfi_test_failures_total", fails.Value, time.Minute))

	if st := e.Evaluate().Statuses[0]; !st.OK {
		t.Fatalf("pristine counter violated: %+v", st)
	}
	fails.Inc()
	clock.Sleep(time.Second)
	st := e.Evaluate().Statuses[0]
	if st.OK || st.Value != 1 || st.Burn != 1 {
		t.Fatalf("failure not flagged: %+v", st)
	}
	// Failures age out with the window.
	clock.Sleep(2 * time.Minute)
	e.Evaluate()
	clock.Sleep(time.Second)
	if st := e.Evaluate().Statuses[0]; !st.OK {
		t.Fatalf("stale failure still flagged: %+v", st)
	}
}

// TestViolationsGauge: a registry-attached engine exposes the failing
// objective count as dfi_slo_violations.
func TestViolationsGauge(t *testing.T) {
	clock := &stepClock{t: epoch()}
	reg := obs.NewRegistry()
	var fails obs.Counter
	e := New(clock, reg, ZeroIncrease("audit-appends", "x", fails.Value, time.Minute))
	e.Evaluate()
	fails.Inc()
	clock.Sleep(time.Second)
	// The gauge re-evaluates at scrape; it must report one violation.
	found := false
	for _, name := range reg.Names() {
		if name == "dfi_slo_violations" {
			found = true
		}
	}
	if !found {
		t.Fatal("dfi_slo_violations not registered")
	}
	if rep := e.Evaluate(); rep.Healthy {
		t.Fatalf("expected violation: %+v", rep)
	}
}

// TestRunOnSimulatedScheduler drives the periodic evaluator entirely on a
// simulated clock: ticks fire deterministically, and Close stops them.
func TestRunOnSimulatedScheduler(t *testing.T) {
	sim := simclock.NewSimulated(epoch())
	var evals atomic.Uint64
	src := func() uint64 { evals.Add(1); return 0 }
	e := New(sim, nil, ZeroIncrease("probe", "x", src, time.Minute))
	e.Run(sim, time.Second)
	sim.RunUntil(epoch().Add(10 * time.Second))
	n := evals.Load()
	if n < 9 || n > 11 {
		t.Fatalf("ticks in 10s = %d, want ~10", n)
	}
	e.Close()
	sim.RunUntil(epoch().Add(20 * time.Second))
	if after := evals.Load(); after > n+1 {
		t.Fatalf("ticks after Close: %d -> %d", n, after)
	}
}
