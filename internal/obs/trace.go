package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// Outcome classifies how one admission ended.
type Outcome uint8

// Admission outcomes.
const (
	// OutcomeAllow: the flow was admitted and forwarded to the controller.
	OutcomeAllow Outcome = iota
	// OutcomeDeny: the flow matched a deny (or the default deny).
	OutcomeDeny
	// OutcomeError: the packet could not be evaluated (parse failure or
	// inconsistent identifier bindings); such flows are denied.
	OutcomeError
	// OutcomeOverloadDrop: the PCP's admission queue was full and the
	// request was dropped (control-plane saturation).
	OutcomeOverloadDrop
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAllow:
		return "allow"
	case OutcomeDeny:
		return "deny"
	case OutcomeError:
		return "error"
	case OutcomeOverloadDrop:
		return "overload-drop"
	default:
		return "unknown"
	}
}

// AdmissionTrace records one sampled admission end to end: the stages the
// paper's Table II names — packet-in parse, binding query, policy query,
// compile+install, proxy forward — with their durations, the flow's
// identifiers and the decision outcome. The struct is fixed-size (Err is
// set only on evaluation failures), so committing a trace into the ring
// copies it without allocating.
type AdmissionTrace struct {
	// Seq is the trace's position in the total committed sequence.
	Seq uint64
	// TraceID links the admission to its spans in the SpanStore (zero when
	// causal tracing is disabled): the ring is the compact per-admission
	// view, GET /v1/spans?trace= the stage-by-stage causal one.
	TraceID uint64
	// Start is when the PCP began processing the packet-in.
	Start time.Time
	// DPID and InPort locate the flow's ingress.
	DPID   uint64
	InPort uint32
	// Key holds the flow's low-level identifiers as parsed from the packet.
	Key netpkt.FlowKey
	// Outcome is the decision; CacheHit marks decisions served from the
	// flow-decision cache (binding and policy queries skipped).
	Outcome  Outcome
	CacheHit bool
	// RuleID is the deciding policy rule (policy.DefaultDenyID for the
	// implicit default deny); zero for overload drops.
	RuleID uint64
	// Err describes the evaluation failure for OutcomeError traces.
	Err string
	// Per-stage durations. Binding and Policy are zero on cache hits;
	// Proxy is the DFI Proxy's forwarding overhead charged before the
	// request entered the queue.
	Parse   time.Duration
	Binding time.Duration
	Policy  time.Duration
	Install time.Duration
	Proxy   time.Duration
	Total   time.Duration
}

// TraceRing is a bounded ring of admission traces with 1-in-N sampling.
// Sampled and Commit tolerate a nil receiver, so an untraced pipeline pays
// one nil check per admission and allocates nothing.
//
// The write side takes a mutex; tracing is sampled, and even at full
// admission rate the copy held under the lock is tens of nanoseconds, so
// workers do not serialize in any measurable way. Reads (Last) are rare —
// an operator hitting /v1/trace.
type TraceRing struct {
	every uint64
	tick  atomic.Uint64

	mu   sync.Mutex
	buf  []AdmissionTrace
	next uint64 // total committed
}

// NewTraceRing returns a ring holding the last capacity traces, sampling
// one admission in every (1 = every admission). A non-positive capacity
// defaults to 256; a non-positive every disables sampling entirely.
func NewTraceRing(capacity, every int) *TraceRing {
	if capacity <= 0 {
		capacity = 256
	}
	if every <= 0 {
		every = 0
	}
	return &TraceRing{every: uint64(every), buf: make([]AdmissionTrace, 0, capacity)}
}

// Sampled reports whether the current admission should be traced,
// advancing the sampling tick. Nil-safe: a nil ring never samples.
func (r *TraceRing) Sampled() bool {
	if r == nil || r.every == 0 {
		return false
	}
	if r.every == 1 {
		return true
	}
	return r.tick.Add(1)%r.every == 0
}

// Commit appends one trace, overwriting the oldest once the ring is full
// and stamping t.Seq. Nil-safe no-op.
func (r *TraceRing) Commit(t AdmissionTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[t.Seq%uint64(cap(r.buf))] = t
	}
	r.mu.Unlock()
}

// Last returns up to n traces, most recent first. Nil-safe: a nil ring
// returns nil.
func (r *TraceRing) Last(n int) []AdmissionTrace {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]AdmissionTrace, n)
	for i := 0; i < n; i++ {
		// next-1 is the most recent; walk backwards through the ring.
		out[i] = r.buf[(r.next-1-uint64(i))%uint64(cap(r.buf))]
	}
	return out
}

// Committed returns the total number of traces committed (including ones
// the ring has since overwritten). Nil-safe.
func (r *TraceRing) Committed() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
