package obs

import (
	"testing"
)

func TestSpanStoreIDs(t *testing.T) {
	s := NewSpanStore(16, nil)
	a := s.NewRoot()
	b := s.NewRoot()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("roots invalid: %+v %+v", a, b)
	}
	if a.Trace == b.Trace {
		t.Fatalf("roots share trace %d", a.Trace)
	}
	if a.Span == b.Span {
		t.Fatalf("roots share span id %d", a.Span)
	}

	c := s.Child(a)
	if c.Trace != a.Trace {
		t.Fatalf("child trace = %d, want parent's %d", c.Trace, a.Trace)
	}
	if c.Span == a.Span {
		t.Fatal("child reused parent's span id")
	}

	// Child of the zero context starts a fresh root, so propagation code
	// never needs a validity check before forking.
	d := s.Child(SpanContext{})
	if !d.Valid() || d.Trace == a.Trace || d.Trace == b.Trace {
		t.Fatalf("child-of-invalid = %+v", d)
	}
}

func TestSpanStoreRingWrap(t *testing.T) {
	s := NewSpanStore(4, nil)
	for i := 0; i < 7; i++ {
		s.Commit(Span{Trace: TraceID(i + 1), ID: uint64(i + 1)})
	}
	if s.Committed() != 7 {
		t.Fatalf("committed = %d", s.Committed())
	}
	got := s.Last(10)
	if len(got) != 4 {
		t.Fatalf("retained = %d, want 4", len(got))
	}
	for i, sp := range got {
		if want := uint64(7 - i); sp.ID != want || sp.Seq != want-1 {
			t.Fatalf("span %d = {ID:%d Seq:%d}, want ID %d", i, sp.ID, sp.Seq, want)
		}
	}
}

func TestSpanStoreByTrace(t *testing.T) {
	s := NewSpanStore(8, nil)
	tr := s.NewRoot()
	other := s.NewRoot()
	s.Commit(Span{Trace: tr.Trace, ID: 1, Stage: "first"})
	s.Commit(Span{Trace: other.Trace, ID: 2})
	s.Commit(Span{Trace: tr.Trace, ID: 3, Stage: "second"})

	got := s.ByTrace(tr.Trace)
	if len(got) != 2 {
		t.Fatalf("ByTrace = %d spans, want 2", len(got))
	}
	// Oldest first: the result reads in causal commit order.
	if got[0].Stage != "first" || got[1].Stage != "second" {
		t.Fatalf("ByTrace order = %q, %q", got[0].Stage, got[1].Stage)
	}
	if s.ByTrace(0) != nil {
		t.Fatal("ByTrace(0) must return nil")
	}
	// Wrap past capacity: ByTrace still walks oldest→newest correctly.
	for i := 0; i < 10; i++ {
		s.Commit(Span{Trace: tr.Trace, ID: uint64(100 + i)})
	}
	wrapped := s.ByTrace(tr.Trace)
	for i := 1; i < len(wrapped); i++ {
		if wrapped[i].Seq <= wrapped[i-1].Seq {
			t.Fatalf("ByTrace out of order after wrap: seq %d then %d",
				wrapped[i-1].Seq, wrapped[i].Seq)
		}
	}
}

func TestSpanStoreNilSafety(t *testing.T) {
	var s *SpanStore
	if s.Enabled() {
		t.Fatal("nil store reports enabled")
	}
	if sc := s.NewRoot(); sc.Valid() {
		t.Fatalf("nil NewRoot = %+v", sc)
	}
	if sc := s.Child(SpanContext{Trace: 9, Span: 9}); sc.Valid() {
		t.Fatalf("nil Child = %+v", sc)
	}
	s.Commit(Span{Trace: 1})
	if s.ByTrace(1) != nil || s.Last(5) != nil || s.Committed() != 0 {
		t.Fatal("nil store retained data")
	}
	ran := false
	if sc := WithSpan(s, SpanContext{}, CompBus, "x", "", func(SpanContext) { ran = true }); sc.Valid() {
		t.Fatalf("nil WithSpan context = %+v", sc)
	}
	if !ran {
		t.Fatal("WithSpan on nil store must still run fn")
	}
}

func TestWithSpanCommitsChild(t *testing.T) {
	s := NewSpanStore(8, nil)
	parent := s.NewRoot()
	var inner SpanContext
	sc := WithSpan(s, parent, CompEntity, "binding_update", "dns a=b", func(got SpanContext) {
		inner = got
	})
	if inner != sc {
		t.Fatalf("fn saw %+v, WithSpan returned %+v", inner, sc)
	}
	if sc.Trace != parent.Trace {
		t.Fatalf("span trace = %d, want %d", sc.Trace, parent.Trace)
	}
	got := s.ByTrace(parent.Trace)
	if len(got) != 1 {
		t.Fatalf("committed %d spans, want 1", len(got))
	}
	sp := got[0]
	if sp.Parent != parent.Span || sp.ID != sc.Span ||
		sp.Component != CompEntity || sp.Stage != "binding_update" || sp.Detail != "dns a=b" {
		t.Fatalf("span = %+v", sp)
	}
}
