package obs

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/harness"
)

// bucketIndex returns which DefBuckets bucket d falls in (len(DefBuckets)
// for +Inf), so tests can assert two values agree at bucket resolution.
func bucketIndex(d time.Duration) int {
	for i, b := range DefBuckets {
		if float64(d)/float64(time.Second) <= b {
			return i
		}
	}
	return len(DefBuckets)
}

// TestHistogramQuantileOracle drives the bucketed quantile estimate against
// harness.Percentile over the exact sample set. A log-bucketed histogram
// can only answer at bucket resolution, so the estimate must land in the
// oracle's bucket or an adjacent one (boundary samples straddle).
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := newHistogram(nil)
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over the instrument's native range, 1µs–0.5s.
		exp := rng.Float64() * 5.7 // 10^0 .. 10^5.7 µs
		d := time.Duration(mathPow10(exp) * float64(time.Microsecond))
		samples = append(samples, d)
		h.Observe(d)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		oracle := harness.Percentile(samples, q*100)
		got := h.Quantile(q)
		bo, bg := bucketIndex(oracle), bucketIndex(got)
		if bg < bo-1 || bg > bo+1 {
			t.Errorf("Quantile(%v) = %v (bucket %d), oracle %v (bucket %d)", q, got, bg, oracle, bo)
		}
	}
}

func mathPow10(exp float64) float64 {
	v := 1.0
	for exp >= 1 {
		v *= 10
		exp--
	}
	if exp > 0 {
		// linear blend is close enough for sample generation
		v *= 1 + 9*exp
	}
	return v
}

func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
	h := newHistogram(nil)
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(3 * time.Millisecond)
	// One sample answers every q, including out-of-range q, at its bucket.
	want := bucketIndex(3 * time.Millisecond)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := bucketIndex(h.Quantile(q)); got != want {
			t.Errorf("Quantile(%v) bucket = %d, want %d", q, got, want)
		}
	}
	// Observations beyond the last bound report the last finite bound.
	over := newHistogram(nil)
	over.Observe(5 * time.Second)
	last := time.Duration(DefBuckets[len(DefBuckets)-1] * float64(time.Second))
	if got := over.Quantile(0.5); got != last {
		t.Errorf("overflow quantile = %v, want %v", got, last)
	}
}

// TestHistogramSnapshotSub verifies interval extraction: the difference of
// two snapshots sees only the observations between them.
func TestHistogramSnapshotSub(t *testing.T) {
	h := newHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Microsecond)
	}
	prev := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Millisecond)
	}
	cur := h.Snapshot()
	iv := cur.Sub(prev)
	if iv.Count() != 50 {
		t.Fatalf("interval count = %d, want 50", iv.Count())
	}
	if got, want := bucketIndex(iv.Quantile(0.5)), bucketIndex(100*time.Millisecond); got != want {
		t.Errorf("interval p50 bucket = %d, want %d", got, want)
	}
	if got := iv.Sum(); got != 50*100*time.Millisecond {
		t.Errorf("interval sum = %v", got)
	}
	// Subtracting a snapshot from itself is empty.
	if z := cur.Sub(cur); z.Count() != 0 || z.Quantile(0.5) != 0 {
		t.Errorf("self-sub not empty: count=%d", z.Count())
	}
}

// TestExpositionQuantileLines checks the appended _quantile gauge lines for
// plain and labeled histograms, and that the classic series still renders.
func TestExpositionQuantileLines(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dfi_test_latency_seconds", "test", nil)
	h.Observe(2 * time.Millisecond)
	hv := r.HistogramVec("dfi_test_stage_seconds", "test", "stage", nil)
	hv.With("total").Observe(4 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dfi_test_latency_seconds_bucket{le="+Inf"} 1`,
		`dfi_test_latency_seconds_count 1`,
		`dfi_test_latency_seconds_quantile{q="0.5"} `,
		`dfi_test_latency_seconds_quantile{q="0.95"} `,
		`dfi_test_latency_seconds_quantile{q="0.99"} `,
		`dfi_test_stage_seconds_bucket{stage="total",le="+Inf"} 1`,
		`dfi_test_stage_seconds_quantile{stage="total",q="0.99"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Quantile lines must follow _count, preserving the classic prefix.
	if strings.Index(out, "dfi_test_latency_seconds_count") >
		strings.Index(out, `dfi_test_latency_seconds_quantile`) {
		t.Error("quantile line precedes _count")
	}
}
