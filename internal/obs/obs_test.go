package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/harness"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dfi_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("dfi_test_total", "a counter"); again != c {
		t.Fatal("re-registration returned a new counter")
	}

	g := r.Gauge("dfi_test_depth", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var ring *TraceRing
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Mean() != 0 || h.StdDev() != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	if ring.Sampled() {
		t.Fatal("nil ring sampled")
	}
	ring.Commit(AdmissionTrace{})
	if ring.Last(5) != nil || ring.Committed() != 0 {
		t.Fatal("nil ring returned traces")
	}
	var cv *CounterVec
	var hv *HistogramVec
	cv.With("x").Inc()
	hv.With("x").Observe(time.Second)
}

func TestHistogramMatchesWelford(t *testing.T) {
	h := newHistogram(nil)
	w := &harness.DurationStats{}
	samples := []time.Duration{
		17 * time.Microsecond, 2 * time.Millisecond, 450 * time.Nanosecond,
		5 * time.Millisecond, 3100 * time.Microsecond, 90 * time.Microsecond,
		1200 * time.Nanosecond, 7 * time.Millisecond,
	}
	for _, s := range samples {
		h.Observe(s)
		w.Add(s)
	}
	if h.N() != w.N() {
		t.Fatalf("count: histogram %d, welford %d", h.N(), w.N())
	}
	if dm := math.Abs(float64(h.Mean() - w.Mean())); dm > 1 {
		t.Fatalf("mean: histogram %v, welford %v", h.Mean(), w.Mean())
	}
	// Sum-of-squares vs Welford agree to well under a nanosecond at these
	// magnitudes.
	if ds := math.Abs(float64(h.StdDev() - w.StdDev())); ds > 2 {
		t.Fatalf("stddev: histogram %v, welford %v", h.StdDev(), w.StdDev())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dfi_test_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond) // first bucket
	h.Observe(5 * time.Millisecond)   // second bucket
	h.Observe(50 * time.Millisecond)  // +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dfi_test_seconds_bucket{le="0.001"} 1`,
		`dfi_test_seconds_bucket{le="0.01"} 2`,
		`dfi_test_seconds_bucket{le="+Inf"} 3`,
		`dfi_test_seconds_count 3`,
		"# TYPE dfi_test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("dfi_test_decisions_total", "decisions", "outcome")
	v.With("allow").Add(3)
	v.With("deny").Inc()
	if v.With("allow") != v.With("allow") {
		t.Fatal("With not idempotent")
	}
	hv := r.HistogramVec("dfi_test_stage_seconds", "stages", "stage", []float64{0.001})
	hv.With("binding_query").Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dfi_test_decisions_total{outcome="allow"} 3`,
		`dfi_test_decisions_total{outcome="deny"} 1`,
		`dfi_test_stage_seconds_bucket{stage="binding_query",le="+Inf"} 1`,
		`dfi_test_stage_seconds_count{stage="binding_query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := uint64(9)
	r.CounterFunc("dfi_test_published_total", "published", func() uint64 { return n })
	r.GaugeFunc("dfi_test_queue_depth", "depth", func() float64 { return 4 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "dfi_test_published_total 9") ||
		!strings.Contains(out, "dfi_test_queue_depth 4") {
		t.Fatalf("exposition:\n%s", out)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dfi_test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind clash")
		}
	}()
	r.Gauge("dfi_test_x", "")
}

func TestTraceRingOrderAndWrap(t *testing.T) {
	ring := NewTraceRing(4, 1)
	for i := 0; i < 7; i++ {
		if !ring.Sampled() {
			t.Fatal("every=1 must always sample")
		}
		ring.Commit(AdmissionTrace{DPID: uint64(i)})
	}
	if ring.Committed() != 7 {
		t.Fatalf("committed = %d", ring.Committed())
	}
	got := ring.Last(10)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i, tr := range got {
		if want := uint64(6 - i); tr.DPID != want || tr.Seq != want {
			t.Fatalf("trace %d = {DPID:%d Seq:%d}, want %d", i, tr.DPID, tr.Seq, want)
		}
	}
	if n := len(ring.Last(2)); n != 2 {
		t.Fatalf("Last(2) = %d", n)
	}
}

func TestTraceRingSampling(t *testing.T) {
	ring := NewTraceRing(8, 3)
	sampled := 0
	for i := 0; i < 300; i++ {
		if ring.Sampled() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled = %d, want 100", sampled)
	}
	off := NewTraceRing(8, 0)
	if off.Sampled() {
		t.Fatal("every=0 must disable sampling")
	}
}

func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dfi_test_hammer_total", "")
	h := r.Histogram("dfi_test_hammer_seconds", "", nil)
	v := r.CounterVec("dfi_test_hammer_vec_total", "", "k")
	const perWorker = 5000
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
				h.Observe(time.Microsecond)
				v.With("a").Inc()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 4*perWorker || h.N() != 4*perWorker {
		t.Fatalf("counter = %d, histogram = %d, want %d", c.Value(), h.N(), 4*perWorker)
	}
}
