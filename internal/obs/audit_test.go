package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestLog(t *testing.T, maxBytes int64) (*AuditLog, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	a, err := OpenAuditLog(path, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a, path
}

func appendN(t *testing.T, a *AuditLog, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := a.Append(AuditRecord{Kind: "decision", Op: "allow", RuleID: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAuditAppendAndVerify(t *testing.T) {
	a, _ := openTestLog(t, 0)
	appendN(t, a, 10)
	n, err := a.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("verified %d records, want 10", n)
	}
	if a.Records() != 10 || a.BytesWritten() == 0 {
		t.Fatalf("counters = %d records, %d bytes", a.Records(), a.BytesWritten())
	}
	last := a.Last(3)
	if len(last) != 3 || last[0].RuleID != 10 || last[2].RuleID != 8 {
		t.Fatalf("Last(3) = %+v", last)
	}
}

func TestAuditFlippedByteRejected(t *testing.T) {
	a, path := openTestLog(t, 0)
	appendN(t, a, 5)
	if _, err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte mid-file: the record's own hash breaks.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)/2] ^= 0x01
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(); err == nil {
		t.Fatal("verify accepted a flipped byte")
	}
	// Restore: verification recovers, proving the failure was the flip.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(); err != nil {
		t.Fatalf("verify after restore: %v", err)
	}
}

func TestAuditTailTruncationDetected(t *testing.T) {
	a, path := openTestLog(t, 0)
	appendN(t, a, 6)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut whole records off the tail: the remaining chain is internally
	// consistent, so only the head pin can catch it.
	lines := strings.SplitAfter(string(raw), "\n")
	trunc := strings.Join(lines[:4], "")
	if err := os.WriteFile(path, []byte(trunc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("verify after truncation = %v, want truncation error", err)
	}
	// Without the head pin the truncated chain looks valid — that is
	// exactly the attack the pin exists for.
	if _, err := VerifyAuditChain([]string{path}, ""); err != nil {
		t.Fatalf("unpinned verify of truncated chain: %v", err)
	}
}

func TestAuditRotationContinuesChain(t *testing.T) {
	// A tiny threshold forces rotation after every couple of records.
	a, path := openTestLog(t, 300)
	appendN(t, a, 12)
	if a.Rotations() == 0 {
		t.Fatal("no rotation at a 300-byte threshold")
	}
	files := a.Files()
	if len(files) != 2 || files[0] != path+".1" || files[1] != path {
		t.Fatalf("files = %v", files)
	}
	// Verify spans the rotation boundary: prev/seq chain across files.
	if _, err := a.Verify(); err != nil {
		t.Fatalf("verify across rotation: %v", err)
	}
	// Only one rotated generation is kept, so a long-lived log ages out
	// its oldest records and the surviving chain starts mid-way.
	n, err := VerifyAuditChain(files, a.Head())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 12 {
		t.Fatalf("verified %d records", n)
	}
}

func TestAuditReopenResumesChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	a, err := OpenAuditLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, a, 4)
	head := a.Head()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenAuditLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Head() != head {
		t.Fatalf("reopened head = %.12s, want %.12s", b.Head(), head)
	}
	appendN(t, b, 2)
	n, err := b.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("verified %d records after reopen, want 6", n)
	}

	// A corrupt existing log is refused rather than silently extended.
	raw, _ := os.ReadFile(path)
	raw[len(raw)/3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := OpenAuditLog(path, 0); err == nil {
		t.Fatal("OpenAuditLog accepted a corrupt existing log")
	}
}

func TestAuditNilSafety(t *testing.T) {
	var a *AuditLog
	if err := a.Append(AuditRecord{Kind: "decision"}); err != nil {
		t.Fatal(err)
	}
	if a.Head() != "" || a.Path() != "" || a.Files() != nil || a.Last(5) != nil {
		t.Fatal("nil log returned data")
	}
	if a.Records() != 0 || a.BytesWritten() != 0 || a.Rotations() != 0 || a.Failures() != 0 {
		t.Fatal("nil log counters nonzero")
	}
	if n, err := a.Verify(); n != 0 || err != nil {
		t.Fatalf("nil Verify = %d, %v", n, err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
