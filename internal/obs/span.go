package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/simclock"
)

// TraceID identifies one causal chain of spans: either a sensor event's
// propagation (bus publish → entity binding update → policy mutation →
// flush compilation → proxy flow-mod writes) or one admission (packet-in →
// enrichment → policy query → install).
type TraceID uint64

// SpanContext is the propagation handle carried across component
// boundaries (on bus events, through policy mutations, into flush
// callbacks). The zero value means "no trace": components receiving it
// either start a fresh root or stay silent, so untraced paths need no
// special casing.
type SpanContext struct {
	// Trace is the causal chain both ends of an edge share.
	Trace TraceID
	// Span is the id of the emitting side's span; children record it as
	// their Parent.
	Span uint64
}

// Valid reports whether c carries a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Span components. A span's Component names the DFI layer that did the
// work; Stage names the work itself.
const (
	CompBus    = "bus"
	CompEntity = "entity"
	CompPolicy = "policy"
	CompPCP    = "pcp"
	CompProxy  = "proxy"
)

// Span is one timed unit of work attributed to a trace. The struct is
// fixed-size; committing a span copies it into the store's ring without
// allocating, which is what lets the admission path emit spans (when
// sampled) without breaking its zero-alloc contract when it is not.
type Span struct {
	// Seq is the span's position in the total committed sequence.
	Seq uint64
	// Trace, ID and Parent link the span into its causal chain. Parent is
	// zero for roots.
	Trace  TraceID
	ID     uint64
	Parent uint64
	// Component and Stage say who did what: ("bus","publish"),
	// ("entity","binding_update"), ("policy","revoke"),
	// ("pcp","flush_compile"), ("pcp","delta_compile"),
	// ("proxy","flow_mod_write"), ("pcp","admission") and its child
	// stages, ...
	Component string
	Stage     string
	// Start and Duration time the work on the store's clock.
	Start    time.Time
	Duration time.Duration
	// Optional attributes. DPID/RuleID are zero when not applicable;
	// Detail is a short human-readable annotation (topic, binding, flow).
	DPID   uint64
	RuleID uint64
	Detail string
	// Err describes a failure, empty on success.
	Err string
}

// SpanStore is a bounded ring of committed spans plus the id allocators
// that mint trace and span ids. All methods tolerate a nil receiver (no
// tracing configured): id requests return the zero SpanContext and commits
// are dropped, so instrumented code needs no enabled-checks beyond what it
// wants for efficiency.
//
// Like TraceRing, the write side takes a mutex for the ring copy; the id
// allocators are atomics so NewRoot/Child never contend.
type SpanStore struct {
	clock     simclock.Clock
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	mu   sync.Mutex
	buf  []Span
	next uint64 // total committed
}

// NewSpanStore returns a store holding the last capacity spans, timed on
// clock. A non-positive capacity defaults to 2048; a nil clock defaults to
// the wall clock.
func NewSpanStore(capacity int, clock simclock.Clock) *SpanStore {
	if capacity <= 0 {
		capacity = 2048
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	return &SpanStore{clock: clock, buf: make([]Span, 0, capacity)}
}

// Enabled reports whether spans are being collected. Nil-safe.
func (s *SpanStore) Enabled() bool { return s != nil }

// Now returns the store's clock reading, so span emitters time work on the
// same clock the store was built with (simulated in experiments, wall
// otherwise). Nil-safe: a nil store returns the zero time.
func (s *SpanStore) Now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.clock.Now()
}

// NewRoot mints a fresh trace with its first span id. Nil-safe: a nil
// store returns the zero (invalid) context.
func (s *SpanStore) NewRoot() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: TraceID(s.nextTrace.Add(1)), Span: s.nextSpan.Add(1)}
}

// Child mints a span id under parent's trace; if parent is invalid it
// starts a fresh root instead, so propagation code can call Child
// unconditionally. Nil-safe.
func (s *SpanStore) Child(parent SpanContext) SpanContext {
	if s == nil {
		return SpanContext{}
	}
	if !parent.Valid() {
		return s.NewRoot()
	}
	return SpanContext{Trace: parent.Trace, Span: s.nextSpan.Add(1)}
}

// Commit appends one span, overwriting the oldest once the ring is full
// and stamping sp.Seq. Nil-safe no-op.
func (s *SpanStore) Commit(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	sp.Seq = s.next
	s.next++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, sp)
	} else {
		s.buf[sp.Seq%uint64(cap(s.buf))] = sp
	}
	s.mu.Unlock()
}

// ByTrace returns every retained span belonging to trace id, oldest first.
// Nil-safe: a nil store returns nil.
func (s *SpanStore) ByTrace(id TraceID) []Span {
	if s == nil || id == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Span
	n := uint64(len(s.buf))
	if n == 0 {
		return nil
	}
	for i := uint64(0); i < n; i++ {
		// Walk oldest→newest so the result reads in causal commit order.
		sp := s.buf[(s.next+i)%n]
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// Last returns up to n spans, most recent first. Nil-safe.
func (s *SpanStore) Last(n int) []Span {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.buf) {
		n = len(s.buf)
	}
	out := make([]Span, n)
	for i := 0; i < n; i++ {
		out[i] = s.buf[(s.next-1-uint64(i))%uint64(cap(s.buf))]
	}
	return out
}

// Committed returns the total number of spans committed (including ones
// the ring has since overwritten). Nil-safe.
func (s *SpanStore) Committed() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// WithSpan runs fn inside a span: it mints a child context under parent
// (or a fresh root when parent is invalid), times fn on the store's clock
// and commits a span with the given attribution. When the store is nil it
// just runs fn. It returns the context the span ran under, so callers can
// propagate it further. Not for hot paths — the closure and the commit are
// control-plane costs.
func WithSpan(s *SpanStore, parent SpanContext, component, stage, detail string, fn func(SpanContext)) SpanContext {
	if !s.Enabled() {
		fn(SpanContext{})
		return SpanContext{}
	}
	sc := s.Child(parent)
	start := s.Now()
	fn(sc)
	s.Commit(Span{
		Trace:     sc.Trace,
		ID:        sc.Span,
		Parent:    parent.Span,
		Component: component,
		Stage:     stage,
		Start:     start,
		Duration:  s.Now().Sub(start),
		Detail:    detail,
	})
	return sc
}
