package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use and tolerate a nil receiver (no-op), so uninstrumented
// components need no branches at call sites.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) kind() Kind { return KindCounter }

func (c *Counter) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}

// counterFunc is a read-at-scrape counter.
type counterFunc func() uint64

func (counterFunc) kind() Kind { return KindCounter }

func (f counterFunc) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, f())
	return err
}

// Gauge is a value that can go up and down. Nil-receiver safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) kind() Kind { return KindGauge }

func (g *Gauge) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
	return err
}

// gaugeFunc is a read-at-scrape gauge.
type gaugeFunc func() float64

func (gaugeFunc) kind() Kind { return KindGauge }

func (f gaugeFunc) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
	return err
}

// DefBuckets are the default latency bounds in seconds: 1µs–1s exponential,
// spanning this implementation's native sub-microsecond stages and the
// paper's millisecond-scale calibrated profile (Table II).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
}

// Histogram is a lock-free fixed-bucket latency histogram. Observe performs
// only atomic adds (plus one CAS loop for the sum of squares), so admission
// workers never serialize on it; Mean and StdDev give the same numbers the
// harness's Welford accumulators produced, within floating-point noise.
// Nil-receiver safe like Counter.
type Histogram struct {
	boundsNs []int64   // bucket upper bounds in nanoseconds, ascending
	bounds   []float64 // same bounds in seconds, for exposition
	buckets  []atomic.Uint64
	inf      atomic.Uint64 // observations above the last bound
	count    atomic.Uint64
	sumNs    atomic.Int64
	sumSq    atomic.Uint64 // float64 bits of sum of squared nanoseconds
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds:   bounds,
		boundsNs: make([]int64, len(bounds)),
		buckets:  make([]atomic.Uint64, len(bounds)),
	}
	for i, b := range bounds {
		h.boundsNs[i] = int64(b * float64(time.Second))
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.count.Add(1)
	h.sumNs.Add(ns)
	sq := float64(ns) * float64(ns)
	for {
		old := h.sumSq.Load()
		if h.sumSq.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sq)) {
			break
		}
	}
	for i, b := range h.boundsNs {
		if ns <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Add records one duration; it aliases Observe so the Histogram is a
// drop-in replacement for the harness's DurationStats at existing call
// sites.
func (h *Histogram) Add(d time.Duration) { h.Observe(d) }

// N returns the observation count.
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Mean returns the mean duration (zero when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.N()
	if n == 0 {
		return 0
	}
	return time.Duration(float64(h.sumNs.Load()) / float64(n))
}

// StdDev returns the sample standard deviation (zero for n < 2), computed
// from the running sum and sum of squares.
func (h *Histogram) StdDev() time.Duration {
	if h == nil {
		return 0
	}
	n := float64(h.count.Load())
	if n < 2 {
		return 0
	}
	sum := float64(h.sumNs.Load())
	sumSq := math.Float64frombits(h.sumSq.Load())
	variance := (sumSq - sum*sum/n) / (n - 1)
	if variance < 0 {
		variance = 0 // floating-point cancellation on near-constant samples
	}
	return time.Duration(math.Sqrt(variance))
}

// String renders mean ± σ in milliseconds, the paper's format.
func (h *Histogram) String() string {
	return fmt.Sprintf("%.2fms ± %.2fms",
		float64(h.Mean())/float64(time.Millisecond),
		float64(h.StdDev())/float64(time.Millisecond))
}

// Quantile estimates the q-th quantile (0–1) from the bucket counts using
// linear interpolation within the containing bucket. Observations that fell
// in the +Inf overflow bucket are attributed to the last finite bound, so
// the estimate is a lower bound there. Returns zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a Histogram's bucket counts.
// Snapshots from the same family can be subtracted to obtain the histogram
// of an interval, which is how sliding-window SLO evaluation reads latency
// tails without resetting the live instrument.
type HistogramSnapshot struct {
	bounds  []float64 // shared with the source histogram; read-only
	buckets []uint64
	inf     uint64
	count   uint64
	sumNs   int64
}

// Snapshot copies the current bucket counts. Concurrent Observe calls may
// land between bucket reads; the snapshot is still internally monotone
// (cumulative counts never decrease), which is all quantile extraction
// needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		bounds:  h.bounds,
		buckets: make([]uint64, len(h.buckets)),
		inf:     h.inf.Load(),
		count:   h.count.Load(),
		sumNs:   h.sumNs.Load(),
	}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the snapshot's observation count.
func (s HistogramSnapshot) Count() uint64 { return s.count }

// Sum returns the snapshot's total observed duration.
func (s HistogramSnapshot) Sum() time.Duration { return time.Duration(s.sumNs) }

// Sub returns the interval histogram s − prev. Counters only grow, so a
// stale prev from the same instrument always subtracts cleanly; buckets
// that would go negative (snapshots from different instruments) clamp to
// zero.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		bounds:  s.bounds,
		buckets: make([]uint64, len(s.buckets)),
		inf:     sub64(s.inf, prev.inf),
		count:   sub64(s.count, prev.count),
		sumNs:   s.sumNs - prev.sumNs,
	}
	for i := range s.buckets {
		var p uint64
		if i < len(prev.buckets) {
			p = prev.buckets[i]
		}
		out.buckets[i] = sub64(s.buckets[i], p)
	}
	return out
}

func sub64(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// Quantile estimates the q-th quantile (0–1) of the snapshot by linear
// interpolation inside the containing bucket (lower edge 0 for the first
// bucket). Observations in the +Inf bucket report the last finite bound.
// q outside [0,1] clamps; an empty snapshot returns zero.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.count == 0 || len(s.bounds) == 0 {
		return 0
	}
	switch {
	case math.IsNaN(q), q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(s.count)
	if rank < 1 {
		rank = 1 // the quantile is at least the first observation
	}
	var cum float64
	lower := 0.0
	for i, b := range s.bounds {
		c := float64(s.buckets[i])
		if cum+c >= rank && c > 0 {
			frac := (rank - cum) / c
			sec := lower + frac*(b-lower)
			return time.Duration(sec * float64(time.Second))
		}
		cum += c
		lower = b
	}
	// Rank falls in the +Inf bucket: report the last finite bound.
	return time.Duration(s.bounds[len(s.bounds)-1] * float64(time.Second))
}

// quantileExports are the quantiles appended to the text exposition for
// every histogram family, matching the SLO engine's reporting points.
var quantileExports = []struct {
	label string
	q     float64
}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}

func (h *Histogram) kind() Kind { return KindHistogram }

func (h *Histogram) expose(w io.Writer, name string) error {
	return h.exposeLabeled(w, name, "")
}

// exposeLabeled renders the histogram's bucket/sum/count series, merging
// extraLabel (already formatted as `k="v"`, or empty) into each line.
func (h *Histogram) exposeLabeled(w io.Writer, name, extraLabel string) error {
	sep := ""
	if extraLabel != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, extraLabel, sep, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabel, sep, cum); err != nil {
		return err
	}
	labels := ""
	if extraLabel != "" {
		labels = "{" + extraLabel + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, labels, formatFloat(float64(h.sumNs.Load())/float64(time.Second))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load()); err != nil {
		return err
	}
	// Quantile gauge lines ride after the classic series so existing
	// bucket/sum/count consumers see byte-identical output.
	snap := h.Snapshot()
	for _, qe := range quantileExports {
		sec := float64(snap.Quantile(qe.q)) / float64(time.Second)
		if _, err := fmt.Fprintf(w, "%s_quantile{%s%sq=%q} %s\n",
			name, extraLabel, sep, qe.label, formatFloat(sec)); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trippable representation.
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
