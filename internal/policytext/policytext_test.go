package policytext

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

const sample = `
# Corporate policy.
pdp corp priority 50
allow proto tcp from user alice to host mail port 143
deny from host lobby-kiosk

pdp security priority 900
deny to ip 10.0.0.66
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.PDPs) != 2 {
		t.Fatalf("pdps = %d", len(doc.PDPs))
	}
	if doc.PDPs[0].Name != "corp" || doc.PDPs[0].Priority != 50 {
		t.Fatalf("pdp[0] = %+v", doc.PDPs[0])
	}
	if len(doc.Rules) != 3 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}

	r := doc.Rules[0]
	if r.PDP != "corp" || r.Action != policy.ActionAllow {
		t.Fatalf("rule[0] = %+v", r)
	}
	if r.Props.IPProto == nil || *r.Props.IPProto != netpkt.ProtoTCP {
		t.Fatalf("rule[0] proto = %+v", r.Props)
	}
	if r.Src.User != "alice" || r.Dst.Host != "mail" {
		t.Fatalf("rule[0] endpoints = %+v", r)
	}
	if r.Dst.Port == nil || *r.Dst.Port != 143 {
		t.Fatalf("rule[0] port = %+v", r.Dst.Port)
	}

	if doc.Rules[1].PDP != "corp" || doc.Rules[1].Src.Host != "lobby-kiosk" {
		t.Fatalf("rule[1] = %+v", doc.Rules[1])
	}
	r = doc.Rules[2]
	if r.PDP != "security" || r.Action != policy.ActionDeny {
		t.Fatalf("rule[2] = %+v", r)
	}
	if r.Dst.IP == nil || r.Dst.IP.String() != "10.0.0.66" {
		t.Fatalf("rule[2] ip = %+v", r.Dst.IP)
	}
}

func TestParseAllEndpointFields(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
pdp p priority 1
allow from user u host h ip 10.0.0.1 port 80 mac 02:00:00:00:00:01 switchport 3 dpid 0x2a to host dst
`))
	if err != nil {
		t.Fatal(err)
	}
	src := doc.Rules[0].Src
	if src.User != "u" || src.Host != "h" || src.IP == nil || src.Port == nil ||
		src.MAC == nil || src.SwitchPort == nil || src.DPID == nil {
		t.Fatalf("src = %+v", src)
	}
	if *src.DPID != 0x2a || *src.SwitchPort != 3 {
		t.Fatalf("src = %+v", src)
	}
}

func TestParseProtocols(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
pdp p priority 1
allow proto tcp from host a
allow proto udp from host a
allow proto icmp from host a
allow proto ip from host a
allow proto arp from host a
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 5 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}
	if *doc.Rules[4].Props.EtherType != netpkt.EtherTypeARP {
		t.Fatal("arp rule wrong")
	}
	if doc.Rules[3].Props.IPProto != nil {
		t.Fatal("ip rule must not pin a protocol")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
		line int
	}{
		{name: "rule before pdp", give: "allow from host a", line: 1},
		{name: "unknown statement", give: "pdp p priority 1\nfrobnicate", line: 2},
		{name: "bad priority", give: "pdp p priority banana", line: 1},
		{name: "duplicate pdp", give: "pdp p priority 1\npdp p priority 2", line: 2},
		{name: "bad proto", give: "pdp p priority 1\nallow proto quic from host a", line: 2},
		{name: "bad ip", give: "pdp p priority 1\nallow from ip 999.1.1.1", line: 2},
		{name: "bad port", give: "pdp p priority 1\nallow to port banana", line: 2},
		{name: "bad mac", give: "pdp p priority 1\nallow from mac zz", line: 2},
		{name: "empty endpoint", give: "pdp p priority 1\nallow from", line: 2},
		{name: "duplicate field", give: "pdp p priority 1\nallow from host a host b", line: 2},
		{name: "dangling token", give: "pdp p priority 1\nallow shrug", line: 2},
	}
	for _, tt := range tests {
		_, err := Parse(strings.NewReader(tt.give))
		if err == nil {
			t.Errorf("%s: parse accepted %q", tt.name, tt.give)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a ParseError", tt.name, err)
			continue
		}
		if pe.Line != tt.line {
			t.Errorf("%s: error on line %d, want %d (%v)", tt.name, pe.Line, tt.line, err)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
# leading comment

pdp p priority 1   # trailing comment
allow from host a  # another
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 1 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}
}

func TestApply(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	pm := policy.NewManager()
	ids, err := Apply(pm, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || pm.Len() != 3 {
		t.Fatalf("applied %d rules, stored %d", len(ids), pm.Len())
	}
	// Priorities flow from the pdp declarations.
	r, ok := pm.Get(ids[2])
	if !ok || r.Priority != 900 {
		t.Fatalf("rule = %+v", r)
	}
	// The security deny outranks any corp allow for the blocked IP.
	ip := netpkt.MustParseIPv4("10.0.0.66")
	d := pm.Query(&policy.FlowView{
		EtherType: netpkt.EtherTypeIPv4,
		Src:       policy.EndpointAttrs{Users: []string{"alice"}},
		Dst:       policy.EndpointAttrs{Host: "mail", HasIP: true, IP: ip},
	})
	if d.Action != policy.ActionDeny {
		t.Fatalf("decision = %+v", d)
	}
}

func TestApplyDuplicatePriorityFails(t *testing.T) {
	doc, err := Parse(strings.NewReader("pdp a priority 1\npdp b priority 1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(policy.NewManager(), doc); err == nil {
		t.Fatal("duplicate priorities accepted")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	text := Format(doc)
	doc2, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", text, err)
	}
	if len(doc2.Rules) != len(doc.Rules) || len(doc2.PDPs) != len(doc.PDPs) {
		t.Fatalf("round trip lost statements:\n%s", text)
	}
	for i := range doc.Rules {
		if FormatRule(doc.Rules[i]) != FormatRule(doc2.Rules[i]) {
			t.Fatalf("rule %d differs after round trip:\n%s\nvs\n%s",
				i, FormatRule(doc.Rules[i]), FormatRule(doc2.Rules[i]))
		}
	}
}

// TestPropertyFormatParseRoundTrip: any rule built from the value universe
// survives Format → Parse unchanged.
func TestPropertyFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randomSpec := func() policy.EndpointSpec {
		var e policy.EndpointSpec
		if rng.Intn(2) == 0 {
			e.User = "u" + strconv.Itoa(rng.Intn(5))
		}
		if rng.Intn(2) == 0 {
			e.Host = "h" + strconv.Itoa(rng.Intn(5))
		}
		if rng.Intn(2) == 0 {
			ip := netpkt.IPv4FromUint32(0x0a000000 | uint32(rng.Intn(1<<16)))
			e.IP = &ip
		}
		if rng.Intn(2) == 0 {
			port := uint16(rng.Intn(65535) + 1)
			e.Port = &port
		}
		if rng.Intn(3) == 0 {
			mac := netpkt.MAC{2, 0, 0, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			e.MAC = &mac
		}
		if rng.Intn(4) == 0 {
			sp := uint32(rng.Intn(48) + 1)
			e.SwitchPort = &sp
		}
		if rng.Intn(4) == 0 {
			d := uint64(rng.Intn(1 << 16))
			e.DPID = &d
		}
		return e
	}
	protos := []string{"", "tcp", "udp", "icmp", "ip", "arp"}
	for i := 0; i < 2000; i++ {
		r := policy.Rule{PDP: "p", Action: policy.ActionAllow}
		if rng.Intn(2) == 0 {
			r.Action = policy.ActionDeny
		}
		if proto := protos[rng.Intn(len(protos))]; proto != "" {
			props, err := protoProps(proto, 0)
			if err != nil {
				t.Fatal(err)
			}
			r.Props = props
		}
		r.Src = randomSpec()
		r.Dst = randomSpec()

		text := "pdp p priority 1\n" + FormatRule(r) + "\n"
		doc, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("re-parse of %q: %v", text, err)
		}
		if len(doc.Rules) != 1 {
			t.Fatalf("round trip produced %d rules from %q", len(doc.Rules), text)
		}
		got := doc.Rules[0]
		got.PDP = r.PDP
		if FormatRule(got) != FormatRule(r) {
			t.Fatalf("round trip changed rule:\n%s\nvs\n%s", FormatRule(r), FormatRule(got))
		}
	}
}
