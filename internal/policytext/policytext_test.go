package policytext

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

const sample = `
# Corporate policy.
pdp corp priority 50
allow proto tcp from user alice to host mail port 143
deny from host lobby-kiosk

pdp security priority 900
deny to ip 10.0.0.66
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.PDPs) != 2 {
		t.Fatalf("pdps = %d", len(doc.PDPs))
	}
	if doc.PDPs[0].Name != "corp" || doc.PDPs[0].Priority != 50 {
		t.Fatalf("pdp[0] = %+v", doc.PDPs[0])
	}
	if len(doc.Rules) != 3 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}

	r := doc.Rules[0]
	if r.PDP != "corp" || r.Action != policy.ActionAllow {
		t.Fatalf("rule[0] = %+v", r)
	}
	if r.Props.IPProto == nil || *r.Props.IPProto != netpkt.ProtoTCP {
		t.Fatalf("rule[0] proto = %+v", r.Props)
	}
	if r.Src.Spec.User != "alice" || r.Dst.Spec.Host != "mail" {
		t.Fatalf("rule[0] endpoints = %+v", r)
	}
	if r.Dst.Spec.Port == nil || *r.Dst.Spec.Port != 143 {
		t.Fatalf("rule[0] port = %+v", r.Dst.Spec.Port)
	}

	if doc.Rules[1].PDP != "corp" || doc.Rules[1].Src.Spec.Host != "lobby-kiosk" {
		t.Fatalf("rule[1] = %+v", doc.Rules[1])
	}
	r = doc.Rules[2]
	if r.PDP != "security" || r.Action != policy.ActionDeny {
		t.Fatalf("rule[2] = %+v", r)
	}
	if r.Dst.Spec.IP == nil || r.Dst.Spec.IP.String() != "10.0.0.66" {
		t.Fatalf("rule[2] ip = %+v", r.Dst.Spec.IP)
	}
}

func TestParseAllEndpointFields(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
pdp p priority 1
allow from user u host h ip 10.0.0.1 port 80 mac 02:00:00:00:00:01 switchport 3 dpid 0x2a to host dst
`))
	if err != nil {
		t.Fatal(err)
	}
	src := doc.Rules[0].Src.Spec
	if src.User != "u" || src.Host != "h" || src.IP == nil || src.Port == nil ||
		src.MAC == nil || src.SwitchPort == nil || src.DPID == nil {
		t.Fatalf("src = %+v", src)
	}
	if *src.DPID != 0x2a || *src.SwitchPort != 3 {
		t.Fatalf("src = %+v", src)
	}
}

func TestParseProtocols(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
pdp p priority 1
allow proto tcp from host a
allow proto udp from host a
allow proto icmp from host a
allow proto ip from host a
allow proto arp from host a
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 5 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}
	if *doc.Rules[4].Props.EtherType != netpkt.EtherTypeARP {
		t.Fatal("arp rule wrong")
	}
	if doc.Rules[3].Props.IPProto != nil {
		t.Fatal("ip rule must not pin a protocol")
	}
}

func TestParseGroupsRolesTemplates(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
group eng {
  user alice
  user bob; group contractors
}
group contractors { user carol }
role mail { host mailserver port 143 }
pdp corp priority 50
template quarantine(h) {
  deny from host $h
  deny to host $h
}
allow proto tcp from group eng to role mail between 09:00-17:00 days mon-fri
`))
	if err != nil {
		t.Fatal(err)
	}
	eng, ok := doc.Group("eng")
	if !ok || len(eng.Members) != 3 {
		t.Fatalf("group eng = %+v", eng)
	}
	if eng.Members[2].Group != "contractors" {
		t.Fatalf("nested member = %+v", eng.Members[2])
	}
	mail, ok := doc.Role("mail")
	if !ok || mail.Spec.Host != "mailserver" || mail.Spec.Port == nil || *mail.Spec.Port != 143 {
		t.Fatalf("role mail = %+v", mail)
	}
	q, ok := doc.Template("quarantine")
	if !ok || len(q.Params) != 1 || q.Params[0] != "h" || len(q.Body) != 2 || q.PDP != "corp" {
		t.Fatalf("template = %+v", q)
	}
	r := doc.Rules[0]
	if r.Src.Group != "eng" || r.Dst.Role != "mail" {
		t.Fatalf("rule refs = %+v", r)
	}
	if !r.Window.HasTime || r.Window.StartMin != 9*60 || r.Window.EndMin != 17*60 {
		t.Fatalf("window = %+v", r.Window)
	}
	// mon-fri = Monday..Friday bits.
	var want uint8
	for d := time.Monday; d <= time.Friday; d++ {
		want |= 1 << uint(d)
	}
	if r.Window.Days != want {
		t.Fatalf("days = %07b, want %07b", r.Window.Days, want)
	}
}

func TestParseInlineTemplateAndGroup(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
group eng { user alice; user bob }
pdp p priority 1
template quarantine(h) { deny from host $h }
`))
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := doc.Group("eng"); len(g.Members) != 2 {
		t.Fatalf("group = %+v", g)
	}
	if q, _ := doc.Template("quarantine"); len(q.Body) != 1 {
		t.Fatalf("template = %+v", q)
	}
}

func TestParseReportsAllErrors(t *testing.T) {
	_, err := Parse(strings.NewReader(`
pdp p priority banana
allow proto quic from host a
deny from ip 999.9.9.9
allow from host good
`))
	if err == nil {
		t.Fatal("want errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error %T is not an ErrorList", err)
	}
	// Line 3's allow also fails ("allow before any pdp" is avoided because
	// pdp failed — so we get: bad priority (2), no-pdp allow (3), no-pdp
	// deny (4), no-pdp allow (5)). The essential property: more than one
	// error, each with its 1-based line.
	if len(list) < 3 {
		t.Fatalf("errors = %v", list)
	}
	if got := list.Lines(); got[0] != 2 {
		t.Fatalf("first error line = %d, want 2 (%v)", got[0], list)
	}
	for _, l := range list.Lines() {
		if l < 1 {
			t.Fatalf("non-1-based line in %v", list)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
		line int
	}{
		{name: "rule before pdp", give: "allow from host a", line: 1},
		{name: "unknown statement", give: "pdp p priority 1\nfrobnicate", line: 2},
		{name: "bad priority", give: "pdp p priority banana", line: 1},
		{name: "duplicate pdp", give: "pdp p priority 1\npdp p priority 2", line: 2},
		{name: "bad proto", give: "pdp p priority 1\nallow proto quic from host a", line: 2},
		{name: "bad ip", give: "pdp p priority 1\nallow from ip 999.1.1.1", line: 2},
		{name: "bad port", give: "pdp p priority 1\nallow to port banana", line: 2},
		{name: "bad mac", give: "pdp p priority 1\nallow from mac zz", line: 2},
		{name: "empty endpoint", give: "pdp p priority 1\nallow from", line: 2},
		{name: "duplicate field", give: "pdp p priority 1\nallow from host a host b", line: 2},
		{name: "dangling token", give: "pdp p priority 1\nallow shrug", line: 2},
		{name: "unclosed group", give: "group g {\nuser a", line: 1},
		{name: "unexpected close", give: "}", line: 1},
		{name: "dup names", give: "group g { user a }\nrole g { host h }", line: 2},
		{name: "group and role ref", give: "pdp p priority 1\nallow from group g role r", line: 2},
		{name: "bad time range", give: "pdp p priority 1\nallow from host a between 9am-5pm", line: 2},
		{name: "empty time range", give: "pdp p priority 1\nallow from host a between 09:00-09:00", line: 2},
		{name: "bad days", give: "pdp p priority 1\nallow from host a days whenever", line: 2},
		{name: "template no params", give: "pdp p priority 1\ntemplate t() { deny from host x }", line: 2},
		{name: "template bad body", give: "pdp p priority 1\ntemplate t(h) { frobnicate $h }", line: 2},
		{name: "template undeclared param", give: "pdp p priority 1\ntemplate t(h) { deny from host $x }", line: 2},
		{name: "template before pdp", give: "template t(h) { deny from host $h }", line: 1},
	}
	for _, tt := range tests {
		_, err := Parse(strings.NewReader(tt.give))
		if err == nil {
			t.Errorf("%s: parse accepted %q", tt.name, tt.give)
			continue
		}
		list := AsErrorList(err)
		if len(list) == 0 {
			t.Errorf("%s: error %v carries no ParseErrors", tt.name, err)
			continue
		}
		if list[0].Line != tt.line {
			t.Errorf("%s: error on line %d, want %d (%v)", tt.name, list[0].Line, tt.line, err)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	doc, err := Parse(strings.NewReader(`
# leading comment

pdp p priority 1   # trailing comment
allow from host a  # another
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 1 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}
}

func TestParseMember(t *testing.T) {
	m, err := ParseMember("user alice")
	if err != nil || m.Spec.User != "alice" || m.Group != "" {
		t.Fatalf("member = %+v, err = %v", m, err)
	}
	if m.String() != "user alice" {
		t.Fatalf("string = %q", m.String())
	}
	m, err = ParseMember("group contractors")
	if err != nil || m.Group != "contractors" {
		t.Fatalf("member = %+v, err = %v", m, err)
	}
	if _, err := ParseMember("banana split"); err == nil {
		t.Fatal("bad member accepted")
	}
	if _, err := ParseMember(""); err == nil {
		t.Fatal("empty member accepted")
	}
}

func TestWindowActive(t *testing.T) {
	// Monday 2026-01-05.
	monday := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	bizHours := Window{HasTime: true, StartMin: 9 * 60, EndMin: 17 * 60}
	if bizHours.Active(monday.Add(8 * time.Hour)) {
		t.Fatal("8am active")
	}
	if !bizHours.Active(monday.Add(9 * time.Hour)) {
		t.Fatal("9am inactive")
	}
	if bizHours.Active(monday.Add(17 * time.Hour)) {
		t.Fatal("5pm active (end is exclusive)")
	}

	night := Window{HasTime: true, StartMin: 22 * 60, EndMin: 6 * 60}
	if !night.Active(monday.Add(23 * time.Hour)) {
		t.Fatal("11pm inactive for wrapped window")
	}
	if !night.Active(monday.Add(3 * time.Hour)) {
		t.Fatal("3am inactive for wrapped window")
	}
	if night.Active(monday.Add(12 * time.Hour)) {
		t.Fatal("noon active for wrapped window")
	}

	var weekdays uint8
	for d := time.Monday; d <= time.Friday; d++ {
		weekdays |= 1 << uint(d)
	}
	wd := Window{Days: weekdays}
	if !wd.Active(monday) {
		t.Fatal("monday inactive")
	}
	if wd.Active(monday.AddDate(0, 0, 5)) {
		t.Fatal("saturday active")
	}
}

func TestWindowNextTransition(t *testing.T) {
	monday := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	w := Window{HasTime: true, StartMin: 9 * 60, EndMin: 17 * 60}
	at, ok := w.NextTransition(monday)
	if !ok || !at.Equal(monday.Add(time.Hour)) {
		t.Fatalf("transition = %v ok=%v, want 09:00", at, ok)
	}
	at, ok = w.NextTransition(at)
	if !ok || at.Hour() != 17 {
		t.Fatalf("second transition = %v ok=%v, want 17:00", at, ok)
	}

	// Every-day no-time window never transitions.
	if _, ok := (Window{Days: 0x7f}).NextTransition(monday); ok {
		t.Fatal("constant window transitions")
	}
	if _, ok := (Window{}).NextTransition(monday); ok {
		t.Fatal("zero window transitions")
	}

	// Weekend-only day window transitions at Saturday midnight.
	we := Window{Days: (1 << uint(time.Saturday)) | (1 << uint(time.Sunday))}
	at, ok = we.NextTransition(monday)
	if !ok || at.Weekday() != time.Saturday || at.Hour() != 0 {
		t.Fatalf("weekend transition = %v ok=%v", at, ok)
	}
}

func TestDaysStringRoundTrip(t *testing.T) {
	for mask := uint8(1); mask < 0x80; mask++ {
		s := daysString(mask)
		got, n, err := parseDays(tokenize(s), 0)
		if err != nil || n == 0 {
			t.Fatalf("mask %07b: parse %q: %v", mask, s, err)
		}
		if got != mask {
			t.Fatalf("mask %07b -> %q -> %07b", mask, s, got)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	const full = `
group eng { user alice; user bob; group contractors }
group contractors { user carol }
role mail { host mailserver port 143 }
pdp corp priority 50
template quarantine(h) { deny from host $h; deny to host $h }
allow proto tcp from group eng to role mail between 09:00-17:00 days mon-fri
deny from host lobby-kiosk
pdp security priority 900
deny to ip 10.0.0.66 between 22:00-06:00
`
	doc, err := Parse(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	text := Format(doc)
	doc2, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", text, err)
	}
	if len(doc2.Rules) != len(doc.Rules) || len(doc2.PDPs) != len(doc.PDPs) ||
		len(doc2.Groups) != len(doc.Groups) || len(doc2.Roles) != len(doc.Roles) ||
		len(doc2.Templates) != len(doc.Templates) {
		t.Fatalf("round trip lost statements:\n%s", text)
	}
	for i := range doc.Rules {
		if FormatStmt(doc.Rules[i]) != FormatStmt(doc2.Rules[i]) {
			t.Fatalf("rule %d differs after round trip:\n%s\nvs\n%s",
				i, FormatStmt(doc.Rules[i]), FormatStmt(doc2.Rules[i]))
		}
	}
	// Canonical form is a fixed point: formatting the re-parse changes
	// nothing.
	if text2 := Format(doc2); text2 != text {
		t.Fatalf("Format not canonical:\n%s\nvs\n%s", text, text2)
	}
}

// TestPropertyFormatParseRoundTrip: any rule built from the value universe
// survives Format → Parse unchanged.
func TestPropertyFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randomSpec := func() policy.EndpointSpec {
		var e policy.EndpointSpec
		if rng.Intn(2) == 0 {
			e.User = "u" + strconv.Itoa(rng.Intn(5))
		}
		if rng.Intn(2) == 0 {
			e.Host = "h" + strconv.Itoa(rng.Intn(5))
		}
		if rng.Intn(2) == 0 {
			ip := netpkt.IPv4FromUint32(0x0a000000 | uint32(rng.Intn(1<<16)))
			e.IP = &ip
		}
		if rng.Intn(2) == 0 {
			port := uint16(rng.Intn(65535) + 1)
			e.Port = &port
		}
		if rng.Intn(3) == 0 {
			mac := netpkt.MAC{2, 0, 0, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			e.MAC = &mac
		}
		if rng.Intn(4) == 0 {
			sp := uint32(rng.Intn(48) + 1)
			e.SwitchPort = &sp
		}
		if rng.Intn(4) == 0 {
			d := uint64(rng.Intn(1 << 16))
			e.DPID = &d
		}
		return e
	}
	protos := []string{"", "tcp", "udp", "icmp", "ip", "arp"}
	for i := 0; i < 1000; i++ {
		r := policy.Rule{PDP: "p", Action: policy.ActionAllow}
		if rng.Intn(2) == 0 {
			r.Action = policy.ActionDeny
		}
		if proto := protos[rng.Intn(len(protos))]; proto != "" {
			props, err := protoProps(proto, 0)
			if err != nil {
				t.Fatal(err)
			}
			r.Props = props
		}
		r.Src = randomSpec()
		r.Dst = randomSpec()

		text := "pdp p priority 1\n" + FormatRule(r) + "\n"
		doc, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("re-parse of %q: %v", text, err)
		}
		if len(doc.Rules) != 1 {
			t.Fatalf("round trip produced %d rules from %q", len(doc.Rules), text)
		}
		got := policy.Rule{Action: doc.Rules[0].Action, Props: doc.Rules[0].Props,
			Src: doc.Rules[0].Src.Spec, Dst: doc.Rules[0].Dst.Spec}
		if FormatRule(got) != FormatRule(r) {
			t.Fatalf("round trip changed rule:\n%s\nvs\n%s", FormatRule(r), FormatRule(got))
		}
	}
}

// TestPropertyStmtRoundTrip: rule statements with group/role references
// and windows survive FormatStmt → ParseRuleStmt unchanged.
func TestPropertyStmtRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		var s RuleStmt
		s.Action = policy.ActionAllow
		if rng.Intn(2) == 0 {
			s.Action = policy.ActionDeny
		}
		switch rng.Intn(3) {
		case 0:
			s.Src.Group = "g" + strconv.Itoa(rng.Intn(3))
		case 1:
			s.Src.Role = "r" + strconv.Itoa(rng.Intn(3))
		default:
			s.Src.Spec.Host = "h" + strconv.Itoa(rng.Intn(3))
		}
		if rng.Intn(2) == 0 {
			s.Dst.Group = "g" + strconv.Itoa(rng.Intn(3))
			if rng.Intn(2) == 0 {
				port := uint16(rng.Intn(65535) + 1)
				s.Dst.Spec.Port = &port
			}
		} else {
			s.Dst.Spec.Host = "d" + strconv.Itoa(rng.Intn(3))
		}
		if rng.Intn(2) == 0 {
			s.Window.HasTime = true
			s.Window.StartMin = rng.Intn(24 * 60)
			s.Window.EndMin = rng.Intn(24 * 60)
			if s.Window.EndMin == s.Window.StartMin {
				s.Window.EndMin = (s.Window.StartMin + 60) % (24 * 60)
			}
		}
		if rng.Intn(2) == 0 {
			s.Window.Days = uint8(rng.Intn(127) + 1)
		}
		text := FormatStmt(s)
		got, perr := ParseRuleStmt(tokenize(text), 0)
		if perr != nil {
			t.Fatalf("re-parse of %q: %v", text, perr)
		}
		if FormatStmt(got) != text {
			t.Fatalf("round trip changed statement:\n%s\nvs\n%s", text, FormatStmt(got))
		}
	}
}
