package compile

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

const engineDoc = `
group eng { user alice; user bob }
group servers { host web; host db }
role mail { host mailserver port 143 }
pdp corp priority 50
template quarantine(h) { deny from host $h; deny to host $h }
allow proto tcp from group eng to group servers
allow from group eng to role mail
deny from host lobby-kiosk
`

func newEngine(t *testing.T) (*Engine, *policy.Manager) {
	t.Helper()
	pm := policy.NewManager()
	return NewEngine(pm, nil), pm
}

func TestSetSourceInstallsRules(t *testing.T) {
	eng, pm := newEngine(t)
	d, err := eng.SetSource(engineDoc)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 cross product + 2 mail rules + kiosk = 7.
	if len(d.Insert) != 7 || len(d.Revoke) != 0 {
		t.Fatalf("delta = +%d/-%d, want +7/-0", len(d.Insert), len(d.Revoke))
	}
	if pm.Len() != 7 {
		t.Fatalf("manager has %d rules", pm.Len())
	}
	for _, r := range d.Insert {
		if r.ID == 0 {
			t.Fatalf("insert without assigned ID: %+v", r)
		}
		if r.Origin == "" {
			t.Fatalf("insert without origin: %+v", r)
		}
	}
	if prio, ok := pm.PDPPriority("corp"); !ok || prio != 50 {
		t.Fatalf("pdp corp priority = %d, %v", prio, ok)
	}
	// Compiled reports the effective (PDP-stamped) priority, matching
	// what the manager enforces, not the pre-insert zero value.
	for _, cr := range eng.Compiled() {
		if cr.Rule.Priority != 50 {
			t.Fatalf("compiled rule priority = %d, want 50: %+v", cr.Rule.Priority, cr.Rule)
		}
	}
}

func TestSetSourceAtomicOnError(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	before := pm.Epoch()
	_, err := eng.SetSource(engineDoc + "\nallow from group ghosts\n")
	if err == nil {
		t.Fatal("bad document accepted")
	}
	if pm.Epoch() != before || pm.Len() != 7 {
		t.Fatal("failed apply mutated the manager")
	}
	if eng.Source() == "" || strings.Contains(eng.Source(), "ghosts") {
		t.Fatal("failed apply replaced the document")
	}
}

func TestSetSourceDeltaKeepsUnchangedIDs(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	idByText := map[string]policy.RuleID{}
	for _, r := range pm.Rules() {
		idByText[ruleText(r)] = r.ID
	}
	// Add one statement: the delta must be exactly its rules.
	d, err := eng.SetSource(engineDoc + "\ndeny to ip 10.0.0.66\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 1 || len(d.Revoke) != 0 {
		t.Fatalf("delta = +%d/-%d, want +1/-0", len(d.Insert), len(d.Revoke))
	}
	for _, r := range pm.Rules() {
		if id, had := idByText[ruleText(r)]; had && id != r.ID {
			t.Fatalf("rule %s changed ID %d -> %d across recompile", ruleText(r), id, r.ID)
		}
	}
}

func TestDiffDoesNotApply(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	epoch := pm.Epoch()
	d, err := eng.Diff(engineDoc + "\ndeny to ip 10.0.0.66\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 1 || len(d.Revoke) != 0 {
		t.Fatalf("diff = +%d/-%d, want +1/-0", len(d.Insert), len(d.Revoke))
	}
	if d.Insert[0].ID != 0 {
		t.Fatalf("diffed insert carries an ID: %+v", d.Insert[0])
	}
	if pm.Epoch() != epoch {
		t.Fatal("Diff mutated the manager")
	}
	// Diff of a removal reports the installed ID being revoked.
	smaller := strings.Replace(engineDoc, "deny from host lobby-kiosk\n", "", 1)
	d, err = eng.Diff(smaller)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Revoke) != 1 || d.Revoke[0].ID == 0 {
		t.Fatalf("diff revoke = %+v", d.Revoke)
	}
}

func TestMembershipDeltaIsMinimal(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	idByText := map[string]policy.RuleID{}
	for _, r := range pm.Rules() {
		idByText[ruleText(r)] = r.ID
	}
	d, err := eng.AddMember("eng", "user carol")
	if err != nil {
		t.Fatal(err)
	}
	// carol -> {web, db, mail} = 3 inserts, nothing revoked.
	if len(d.Insert) != 3 || len(d.Revoke) != 0 {
		t.Fatalf("delta = +%d/-%d, want +3/-0", len(d.Insert), len(d.Revoke))
	}
	for _, r := range pm.Rules() {
		if id, had := idByText[ruleText(r)]; had && id != r.ID {
			t.Fatalf("untouched rule %s changed ID", ruleText(r))
		}
	}
	// Idempotent.
	if d, err = eng.AddMember("eng", "user carol"); err != nil || !d.Empty() {
		t.Fatalf("re-add: %v %v", d, err)
	}
	// Remove revokes exactly carol's rules.
	d, err = eng.RemoveMember("eng", "user carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 0 || len(d.Revoke) != 3 {
		t.Fatalf("delta = +%d/-%d, want +0/-3", len(d.Insert), len(d.Revoke))
	}
	if d, err = eng.RemoveMember("eng", "user carol"); err != nil || !d.Empty() {
		t.Fatalf("re-remove: %v %v", d, err)
	}
	// The document text reflects the churn.
	if strings.Contains(eng.Source(), "carol") {
		t.Fatal("removed member still in Source()")
	}
}

func TestMembershipChangeRejectsCleanly(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	before := pm.Epoch()
	if _, err := eng.AddMember("eng", "group ghosts"); err == nil {
		t.Fatal("unknown nested group accepted")
	}
	// A member whose fields collide with a rule's literal endpoint must be
	// rejected before any rule mutation: the mail statement pins dst host.
	if _, err := eng.AddMember("ghosts", "user x"); err == nil {
		t.Fatal("unknown group accepted")
	}
	if pm.Epoch() != before {
		t.Fatal("rejected change mutated the manager")
	}
	if strings.Contains(eng.Source(), "ghosts") {
		t.Fatal("rejected change left the document dirty")
	}
}

func TestTemplateInstantiateRetract(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	base := pm.Len()
	d, err := eng.Instantiate("quarantine", "h7")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 2 || len(d.Revoke) != 0 {
		t.Fatalf("delta = +%d/-%d, want +2/-0", len(d.Insert), len(d.Revoke))
	}
	for _, r := range d.Insert {
		if !strings.Contains(r.Origin, "template quarantine(h7)") {
			t.Fatalf("origin = %q", r.Origin)
		}
	}
	if got := eng.Instances(); len(got) != 1 || got[0] != "quarantine(h7)" {
		t.Fatalf("instances = %v", got)
	}
	// Idempotent instantiate; independent second instance.
	if d, err = eng.Instantiate("quarantine", "h7"); err != nil || !d.Empty() {
		t.Fatalf("re-instantiate: %v %v", d, err)
	}
	if _, err = eng.Instantiate("quarantine", "h9"); err != nil {
		t.Fatal(err)
	}
	if pm.Len() != base+4 {
		t.Fatalf("manager has %d rules, want %d", pm.Len(), base+4)
	}
	// Retract one instance; the other survives.
	d, err = eng.Retract("quarantine", "h7")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Revoke) != 2 || pm.Len() != base+2 {
		t.Fatalf("retract delta = %+v, len = %d", d, pm.Len())
	}
	if d, err = eng.Retract("quarantine", "h7"); err != nil || !d.Empty() {
		t.Fatalf("re-retract: %v %v", d, err)
	}

	// Errors: unknown template, arity mismatch.
	if _, err = eng.Instantiate("ghost", "x"); err == nil {
		t.Fatal("unknown template accepted")
	}
	if _, err = eng.Instantiate("quarantine"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestTemplateInstancesSurviveCompatibleSetSource(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Instantiate("quarantine", "h7"); err != nil {
		t.Fatal(err)
	}
	// Compatible reload: instance rules stay, IDs intact.
	var quarantineIDs []policy.RuleID
	for _, r := range pm.Rules() {
		if strings.Contains(r.Origin, "quarantine(h7)") {
			quarantineIDs = append(quarantineIDs, r.ID)
		}
	}
	if len(quarantineIDs) != 2 {
		t.Fatalf("quarantine rules = %d", len(quarantineIDs))
	}
	d, err := eng.SetSource(engineDoc + "\ndeny to ip 10.0.0.66\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 1 || len(d.Revoke) != 0 {
		t.Fatalf("delta = +%d/-%d, want +1/-0", len(d.Insert), len(d.Revoke))
	}
	if got := eng.Instances(); len(got) != 1 {
		t.Fatalf("instances = %v", got)
	}
	for _, id := range quarantineIDs {
		if _, ok := pm.Get(id); !ok {
			t.Fatalf("instance rule %d lost across compatible reload", id)
		}
	}
	// Incompatible reload (template gone): instance dropped, rules revoked.
	noTmpl := strings.Replace(engineDoc, "template quarantine(h) { deny from host $h; deny to host $h }\n", "", 1)
	if _, err := eng.SetSource(noTmpl); err != nil {
		t.Fatal(err)
	}
	if got := eng.Instances(); len(got) != 0 {
		t.Fatalf("instances = %v, want none", got)
	}
	for _, id := range quarantineIDs {
		if _, ok := pm.Get(id); ok {
			t.Fatalf("orphaned template rule %d survived", id)
		}
	}
}

// TestIncrementalEquivalenceOracle drives random group churn through the
// incremental path and checks after every step that the installed rule set
// is identical to a fresh full compile of the same document.
func TestIncrementalEquivalenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng, pm := newEngine(t)
	src := `
group g0 { user seed0 }
group g1 { user seed1; group g0 }
group g2 { host web }
pdp p priority 10
allow from group g0 to group g2
allow proto tcp from group g1 to host db
deny from group g2
allow from host always
`
	if _, err := eng.SetSource(src); err != nil {
		t.Fatal(err)
	}
	groups := []string{"g0", "g1", "g2"}
	members := []string{}
	for i := 0; i < 8; i++ {
		members = append(members, fmt.Sprintf("user u%d", i), fmt.Sprintf("host h%d", i))
	}
	for step := 0; step < 300; step++ {
		g := groups[rng.Intn(len(groups))]
		m := members[rng.Intn(len(members))]
		var err error
		if rng.Intn(2) == 0 {
			_, err = eng.AddMember(g, m)
		} else {
			_, err = eng.RemoveMember(g, m)
		}
		if err != nil {
			t.Fatalf("step %d: %s %s: %v", step, g, m, err)
		}

		// Oracle: fresh full compile of the current document.
		fresh, err := Lower(mustParse(t, eng.Source()), noon)
		if err != nil {
			t.Fatalf("step %d: oracle compile: %v", step, err)
		}
		got := sortedTexts(pm.Rules())
		want := compiledTexts(fresh)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("step %d: incremental diverged from full compile\nincremental:\n%s\nfull:\n%s",
				step, strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}
}

func TestTemporalActivationUnderSimclock(t *testing.T) {
	// Monday 2026-01-05 08:00 UTC.
	epoch := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	sim := simclock.NewSimulated(epoch)
	pm := policy.NewManager()
	eng := NewEngine(pm, sim)
	if _, err := eng.SetSource(`
pdp p priority 10
allow from host always
allow from host office between 09:00-17:00 days mon-fri
`); err != nil {
		t.Fatal(err)
	}
	hasOffice := func() bool {
		for _, r := range pm.Rules() {
			if r.Src.Host == "office" {
				return true
			}
		}
		return false
	}
	if hasOffice() {
		t.Fatal("window active at 08:00")
	}
	if pm.Len() != 1 {
		t.Fatalf("rules at 08:00 = %d", pm.Len())
	}

	sim.RunUntil(epoch.Add(90 * time.Minute)) // 09:30
	if !hasOffice() {
		t.Fatal("window closed at 09:30")
	}

	sim.RunUntil(epoch.Add(10 * time.Hour)) // 18:00
	if hasOffice() {
		t.Fatal("window open at 18:00")
	}

	sim.RunUntil(epoch.Add(25 * time.Hour)) // Tuesday 09:00
	if !hasOffice() {
		t.Fatal("window closed Tuesday 09:00")
	}

	// Friday 17:00 closes; the following transition is Monday 09:00 — the
	// weekend gap stays closed.
	sat := time.Date(2026, 1, 10, 12, 0, 0, 0, time.UTC)
	sim.RunUntil(sat)
	if hasOffice() {
		t.Fatal("window open Saturday noon")
	}
	mon2 := time.Date(2026, 1, 12, 10, 0, 0, 0, time.UTC)
	sim.RunUntil(mon2)
	if !hasOffice() {
		t.Fatal("window closed the following Monday 10:00")
	}

	// Replacing the document with a window-free one stops the timer churn.
	if _, err := eng.SetSource("pdp p priority 10\nallow from host always\n"); err != nil {
		t.Fatal(err)
	}
	end := sim.Run()
	if end.After(mon2.AddDate(0, 1, 0)) {
		t.Fatalf("stale timers kept firing until %v", end)
	}
	if pm.Len() != 1 {
		t.Fatalf("rules after reload = %d", pm.Len())
	}
}

func TestTemporalTemplateInstance(t *testing.T) {
	epoch := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	sim := simclock.NewSimulated(epoch)
	pm := policy.NewManager()
	eng := NewEngine(pm, sim)
	if _, err := eng.SetSource(`
pdp p priority 10
template curfew(h) { deny from host $h between 22:00-06:00 }
`); err != nil {
		t.Fatal(err)
	}
	d, err := eng.Instantiate("curfew", "h7")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("daytime instantiation installed rules: %+v", d)
	}
	sim.RunUntil(epoch.Add(15 * time.Hour)) // 23:00
	if pm.Len() != 1 {
		t.Fatalf("curfew not active at 23:00 (len=%d)", pm.Len())
	}
	sim.RunUntil(epoch.Add(23 * time.Hour)) // 07:00 next day
	if pm.Len() != 0 {
		t.Fatalf("curfew still active at 07:00 (len=%d)", pm.Len())
	}
	if _, err := eng.Retract("curfew", "h7"); err != nil {
		t.Fatal(err)
	}
	end := sim.Run()
	if pm.Len() != 0 {
		t.Fatalf("retracted instance re-activated (len=%d at %v)", pm.Len(), end)
	}
}

// TestConcurrentChurnAndQuery exercises membership churn racing with
// admission queries and template churn; run under -race.
func TestConcurrentChurnAndQuery(t *testing.T) {
	eng, pm := newEngine(t)
	if _, err := eng.SetSource(engineDoc); err != nil {
		t.Fatal(err)
	}
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			m := fmt.Sprintf("user churn%d", i%4)
			if _, err := eng.AddMember("eng", m); err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.RemoveMember("eng", m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			host := fmt.Sprintf("h%d", i%3)
			if _, err := eng.Instantiate("quarantine", host); err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.Retract("quarantine", host); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		var fv policy.FlowView
		fv.Src.Users = []string{"alice"}
		fv.Dst.Host = "web"
		for i := 0; i < iters*4; i++ {
			pm.Query(&fv)
		}
	}()
	wg.Wait()

	// Steady state: back to the base document's rule set.
	fresh, err := Lower(mustParse(t, eng.Source()), noon)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedTexts(pm.Rules())
	want := compiledTexts(fresh)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("post-churn state diverged\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}
