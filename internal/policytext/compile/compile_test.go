package compile

import (
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/policytext"
)

func mustParse(t *testing.T, src string) *policytext.Document {
	t.Helper()
	doc, err := policytext.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// ruleText is a rule's identity for comparisons, independent of ID/Origin.
func ruleText(r policy.Rule) string {
	return r.PDP + "|" + r.Action.String() + "|" + policytext.FormatRule(r)
}

func sortedTexts(rs []policy.Rule) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = ruleText(r)
	}
	sort.Strings(out)
	return out
}

func compiledTexts(crs []CompiledRule) []string {
	out := make([]string, len(crs))
	for i, cr := range crs {
		out[i] = ruleText(cr.Rule)
	}
	sort.Strings(out)
	return out
}

var noon = time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC) // a Monday

func TestLowerGroupCrossProduct(t *testing.T) {
	doc := mustParse(t, `
group eng { user alice; user bob }
group servers { host web; host db }
pdp p priority 10
allow from group eng to group servers
`)
	crs, err := Lower(doc, noon)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 4 {
		t.Fatalf("rules = %d, want 4 (2x2 cross product): %v", len(crs), compiledTexts(crs))
	}
	seen := map[string]bool{}
	for _, cr := range crs {
		seen[cr.Rule.Src.User+"->"+cr.Rule.Dst.Host] = true
		if cr.Prov.Line == 0 || cr.Prov.Stmt == "" {
			t.Fatalf("missing provenance: %+v", cr.Prov)
		}
		if !strings.Contains(cr.Prov.Via, "group eng") || !strings.Contains(cr.Prov.Via, "group servers") {
			t.Fatalf("via = %q", cr.Prov.Via)
		}
		if cr.Rule.Origin == "" || !strings.Contains(cr.Rule.Origin, "line ") {
			t.Fatalf("origin = %q", cr.Rule.Origin)
		}
	}
	for _, want := range []string{"alice->web", "alice->db", "bob->web", "bob->db"} {
		if !seen[want] {
			t.Fatalf("missing expansion %s (have %v)", want, seen)
		}
	}
}

func TestLowerNestedGroupsAndRoles(t *testing.T) {
	doc := mustParse(t, `
group eng { user alice; group contractors }
group contractors { user carol }
role mail { host mailserver port 143 }
pdp p priority 10
allow proto tcp from group eng to role mail
`)
	crs, err := Lower(doc, noon)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 2 {
		t.Fatalf("rules = %d, want 2 (alice, carol)", len(crs))
	}
	for _, cr := range crs {
		if cr.Rule.Dst.Host != "mailserver" || cr.Rule.Dst.Port == nil || *cr.Rule.Dst.Port != 143 {
			t.Fatalf("role not merged: %+v", cr.Rule.Dst)
		}
	}
}

func TestLowerEmptyGroupProducesNoRules(t *testing.T) {
	doc := mustParse(t, `
group nobody { }
pdp p priority 10
deny from group nobody
allow from host a
`)
	crs, err := Lower(doc, noon)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 1 || crs[0].Rule.Src.Host != "a" {
		t.Fatalf("rules = %v", compiledTexts(crs))
	}
}

func TestLowerDuplicateStatementsUnify(t *testing.T) {
	doc := mustParse(t, `
pdp p priority 10
allow from host a
allow from host a
`)
	crs, err := Lower(doc, noon)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 1 {
		t.Fatalf("rules = %d, want 1", len(crs))
	}
}

func TestLowerWindowGating(t *testing.T) {
	doc := mustParse(t, `
pdp p priority 10
allow from host a between 09:00-17:00
allow from host b between 22:00-06:00
allow from host c days sat-sun
allow from host d
`)
	crs, err := Lower(doc, noon) // Monday 12:00
	if err != nil {
		t.Fatal(err)
	}
	var hosts []string
	for _, cr := range crs {
		hosts = append(hosts, cr.Rule.Src.Host)
	}
	sort.Strings(hosts)
	if strings.Join(hosts, ",") != "a,d" {
		t.Fatalf("active at Monday noon = %v, want [a d]", hosts)
	}
}

func TestLowerValidatesInactiveWindows(t *testing.T) {
	// The statement's window is closed at noon, but its unknown group must
	// still be an error: activation later must never surprise-fail.
	doc := mustParse(t, `
pdp p priority 10
allow from group ghosts between 02:00-03:00
`)
	if _, err := Lower(doc, noon); err == nil {
		t.Fatal("unknown group in inactive statement accepted")
	}
}

func TestLowerErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"unknown group", "pdp p priority 1\nallow from group ghosts", "unknown group"},
		{"unknown role", "pdp p priority 1\nallow from role ghost", "unknown role"},
		{"cycle", "group a { group b }\ngroup b { group a }\npdp p priority 1\nallow from group a", "cycle"},
		{"unreferenced cycle", "group a { group b }\ngroup b { group a }\npdp p priority 1\nallow from host h", "cycle"},
		{"unknown nested", "group a { group ghosts }\npdp p priority 1\nallow from host h", "unknown group"},
		{"role conflict", "role r { host x }\npdp p priority 1\nallow from host y role r", "already set"},
		{"member conflict", "group g { host x }\npdp p priority 1\nallow from host y group g", "already set"},
	}
	for _, tt := range tests {
		doc, err := policytext.Parse(strings.NewReader(tt.src))
		if err != nil {
			t.Fatalf("%s: parse: %v", tt.name, err)
		}
		_, err = Lower(doc, noon)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error = %v, want containing %q", tt.name, err, tt.want)
		}
		if err != nil && len(policytext.AsErrorList(err)) == 0 {
			t.Errorf("%s: error is not an ErrorList: %v", tt.name, err)
		}
	}
}

func TestLowerReportsAllStatementErrors(t *testing.T) {
	doc := mustParse(t, `
pdp p priority 1
allow from group ghosts
deny to role phantom
`)
	_, err := Lower(doc, noon)
	list := policytext.AsErrorList(err)
	if len(list) != 2 {
		t.Fatalf("errors = %v, want both statements reported", err)
	}
}

func TestProvenanceString(t *testing.T) {
	p := Provenance{Line: 7, Stmt: "allow from host a"}
	if p.String() != "line 7" {
		t.Fatalf("prov = %q", p.String())
	}
	p = Provenance{Line: 3, Template: "quarantine(h7)", Via: "src group g member \"user a\""}
	if got := p.String(); got != `template quarantine(h7) via src group g member "user a"` {
		t.Fatalf("prov = %q", got)
	}
}
