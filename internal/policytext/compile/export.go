package compile

import "github.com/dfi-sdn/dfi/internal/policytext"

// LowerStmt expands one statement into its lowered rules regardless of the
// statement's temporal window (Lower gates on Window.Active; static
// analysis wants the rules a window will contribute when it opens). The
// tmplInstance tag flows into provenance exactly as during a template
// instantiation.
func LowerStmt(doc *policytext.Document, rs policytext.RuleStmt, tmplInstance string) ([]CompiledRule, error) {
	crs, err := lowerStmt(doc, rs, tmplInstance)
	if err != nil {
		return nil, policytext.ErrorList{err}
	}
	return crs, nil
}

// GroupLeaves flattens a group declaration to its transitive literal
// members. Unknown nested groups and membership cycles are errors, as in
// Lower.
func GroupLeaves(doc *policytext.Document, name string) ([]policytext.Member, error) {
	leaves, err := groupLeaves(doc, name, nil, 0)
	if err != nil {
		return nil, policytext.ErrorList{err}
	}
	return leaves, nil
}

// InstantiateTemplate substitutes args into a template body and returns
// the parsed rule statements, exactly as Engine.Instantiate would lower
// them. Static analysis uses it with placeholder arguments to inspect
// template bodies that have no live instances yet.
func InstantiateTemplate(doc *policytext.Document, name string, args []string) ([]policytext.RuleStmt, error) {
	return instantiateStmts(doc, name, args)
}
