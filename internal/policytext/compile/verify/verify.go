// Package verify is the static semantic analyzer for policytext documents:
// the policy-level counterpart of dfilint. It runs over the window-ungated
// lowering of every statement (compile.LowerStmt) plus template bodies
// instantiated with placeholder arguments, and reasons about match-set
// containment with the classifier's tuple signatures: with exact-value
// fields only, rule A matches everything rule B matches iff A constrains a
// subset of B's fields and B's values projected onto that subset equal
// A's probe key. Temporal windows are compared as minute-granular
// week bitmaps, so a rule counts as shadowed only when the union of its
// coverers' windows contains its own.
//
// Checks (Finding.Check):
//
//	shadow     — a rule fully covered by higher-priority rules; never wins.
//	             Severity error when a deny is covered by an allow (the
//	             deny is silently inert — the dangerous direction), warn
//	             for dead weight and inert allows (fail-closed).
//	conflict   — an allow fully covered by equal-priority denies: deny
//	             wins priority ties, so the allow can never win.
//	redundant  — a rule implied by a same-action rule at equal priority.
//	deadwindow — a temporal constraint that can never activate, has no
//	             effect, or leaves the rule permanently shadowed inside
//	             its window.
//	structural — empty groups, unused groups/roles, unused template
//	             parameters.
//
// Engine.SetSource runs Check as its gate: error findings reject the
// document atomically with per-finding source lines; warnings annotate
// apply/diff responses and dfictl output.
package verify

import (
	"fmt"
	"sort"

	"github.com/dfi-sdn/dfi/internal/policytext"
)

// Severity classifies a finding: error blocks SetSource, warn annotates.
type Severity string

const (
	SevWarn  Severity = "warn"
	SevError Severity = "error"
)

// Check identifiers, one per analysis class.
const (
	CheckShadow     = "shadow"
	CheckConflict   = "conflict"
	CheckRedundant  = "redundant"
	CheckDeadWindow = "deadwindow"
	CheckStructural = "structural"
)

// Finding is one diagnostic about a policy document.
type Finding struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// Line is the 1-based source line of the flagged statement or
	// declaration (for template-body statements, the body line).
	Line int `json:"line"`
	// Stmt is the canonical text of the flagged statement ("" for
	// declaration-level findings).
	Stmt string `json:"stmt,omitempty"`
	// Template tags findings inside a template body with the placeholder
	// instance they were analyzed under, e.g. "quarantine($h)".
	Template string `json:"template,omitempty"`
	// Via is the group-expansion chain of the specific lowered rule the
	// finding is about, when the statement fans out.
	Via string `json:"via,omitempty"`
	// OtherLine is the line of the counterpart rule (the coverer for
	// shadow/conflict/redundant), 0 when there is none.
	OtherLine int    `json:"otherLine,omitempty"`
	Message   string `json:"message"`
}

// String renders the finding in the dfilint-style "line N: [check]" shape;
// callers holding a filename prefix it.
func (f Finding) String() string {
	return fmt.Sprintf("line %d: [%s] %s: %s", f.Line, f.Check, f.Severity, f.Message)
}

// Document analyzes a parsed document and returns its findings sorted by
// line, then check, then counterpart line. Statements that fail to lower
// (unknown groups, cycles) contribute no findings: those are compile
// errors and Lower reports them.
func Document(doc *policytext.Document) []Finding {
	wc := newWindowCache()
	rules := lowerAll(doc, wc)
	var fs []Finding
	fs = append(fs, coverage(rules)...)
	fs = append(fs, windows(doc, wc)...)
	fs = append(fs, structural(doc)...)
	return dedupe(fs)
}

// Check is the Engine.SetSource gate: it returns a policytext.ErrorList
// carrying one entry per error-severity finding (warnings pass), or nil.
// The entry lines flow into the admin API's 422 envelope unchanged.
func Check(doc *policytext.Document) error {
	var errs policytext.ErrorList
	for _, f := range Document(doc) {
		if f.Severity != SevError {
			continue
		}
		errs = append(errs, &policytext.ParseError{
			Line: f.Line,
			Msg:  fmt.Sprintf("[%s] %s", f.Check, f.Message),
		})
	}
	if len(errs) > 0 {
		return errs
	}
	return nil
}

// HasErrors reports whether any finding is error-severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// dedupe collapses findings that differ only in expansion (one statement
// fanning out to many lowered rules shadowed by the same counterpart),
// keeping the first representative and the maximum severity, then sorts.
func dedupe(fs []Finding) []Finding {
	type fkey struct {
		check     string
		line      int
		otherLine int
		message   string
	}
	idx := map[fkey]int{}
	out := fs[:0]
	for _, f := range fs {
		k := fkey{f.Check, f.Line, f.OtherLine, f.Message}
		if i, seen := idx[k]; seen {
			if f.Severity == SevError {
				out[i].Severity = SevError
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.OtherLine != b.OtherLine {
			return a.OtherLine < b.OtherLine
		}
		return a.Message < b.Message
	})
	return out
}
