package verify

import (
	"strings"
	"testing"
)

// TestVerifyTransitionExact: the crafted two-epoch pair. prev allows web
// traffic into db but denies the kiosk at a higher priority; next keeps
// the allow, drops the deny and adds a brand-new allow. Exactly two
// widenings must surface: the kiosk flows the dropped deny used to block,
// and the new allow's reachability.
func TestVerifyTransitionExact(t *testing.T) {
	prev := mustParse(t, `
pdp admin priority 100
deny from host kiosk
pdp corp priority 10
allow from host kiosk to host db
allow from host web to host db
`)
	next := mustParse(t, `
pdp corp priority 10
allow from host kiosk to host db
allow from host web to host db
allow from host web to host mail
`)
	ws := VerifyTransition(prev, next)
	if len(ws) != 2 {
		t.Fatalf("widenings = %+v, want 2", ws)
	}
	// Line 3 of next: kiosk->db was covered by the same allow in prev but
	// blocked by the admin deny (line 3 of prev), which is gone.
	if ws[0].Line != 3 || ws[0].PrevLine != 3 || !strings.Contains(ws[0].Message, "deny") {
		t.Fatalf("widening[0] = %+v", ws[0])
	}
	// Line 5 of next: web->mail is new reachability.
	if ws[1].Line != 5 || ws[1].PrevLine != 0 ||
		!strings.Contains(ws[1].Message, "no previous allow") {
		t.Fatalf("widening[1] = %+v", ws[1])
	}
}

// TestVerifyTransitionNoWidening: identical documents, narrowing edits
// and retained denies produce nothing.
func TestVerifyTransitionNoWidening(t *testing.T) {
	a := `
pdp admin priority 100
deny from host kiosk
pdp corp priority 10
allow from host web to host db
`
	tests := []struct{ name, prev, next string }{
		{"identical", a, a},
		{"narrowing", a, `
pdp admin priority 100
deny from host kiosk
pdp corp priority 10
allow proto tcp from host web to host db
`},
		{"drop-allow", a, `
pdp admin priority 100
deny from host kiosk
pdp corp priority 10
`},
	}
	for _, tt := range tests {
		if ws := VerifyTransition(mustParse(t, tt.prev), mustParse(t, tt.next)); len(ws) != 0 {
			t.Errorf("%s: widenings = %+v, want none", tt.name, ws)
		}
	}
}

// TestVerifyTransitionWindowWidening: extending an allow's window is a
// widening even when the rule text otherwise matches.
func TestVerifyTransitionWindowWidening(t *testing.T) {
	prev := mustParse(t, "pdp p priority 10\nallow from host web to host db between 09:00-17:00\n")
	next := mustParse(t, "pdp p priority 10\nallow from host web to host db\n")
	ws := VerifyTransition(prev, next)
	if len(ws) != 1 || ws[0].Line != 2 {
		t.Fatalf("widenings = %+v, want the window extension flagged", ws)
	}
	// The reverse (shrinking the window) widens nothing.
	if ws := VerifyTransition(next, prev); len(ws) != 0 {
		t.Fatalf("narrowing flagged: %+v", ws)
	}
}
