package verify

import (
	"fmt"
	"math/bits"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/policy/classifier"
	"github.com/dfi-sdn/dfi/internal/policytext"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

// weekMinutes is the granularity of temporal reasoning: one bit per
// minute of the week (Sunday 00:00 first, matching time.Weekday).
const weekMinutes = 7 * 24 * 60

// weekBits is a window's activation set over one week. Window semantics
// repeat weekly, so containment over one week is containment forever.
type weekBits [(weekMinutes + 63) / 64]uint64

func (b *weekBits) set(i int) { b[i/64] |= 1 << uint(i%64) }

// contains reports o ⊆ b.
func (b *weekBits) contains(o *weekBits) bool {
	for i := range o {
		if o[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

func (b *weekBits) or(o *weekBits) {
	for i := range o {
		b[i] |= o[i]
	}
}

func (b *weekBits) intersects(o *weekBits) bool {
	for i := range o {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (b *weekBits) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// windowBits expands a Window into its weekly activation set, mirroring
// Window.Active exactly: Days bit 0 is Sunday and 0 means every day; a
// clock interval is [StartMin, EndMin) wrapping midnight when
// StartMin > EndMin, and empty when equal.
func windowBits(w policytext.Window) *weekBits {
	var b weekBits
	setRange := func(day, from, to int) { // [from, to) minutes of day
		for m := from; m < to; m++ {
			b.set(day*1440 + m)
		}
	}
	for day := 0; day < 7; day++ {
		if w.Days != 0 && w.Days&(1<<uint(day)) == 0 {
			continue
		}
		switch {
		case !w.HasTime:
			setRange(day, 0, 1440)
		case w.StartMin < w.EndMin:
			setRange(day, w.StartMin, w.EndMin)
		case w.StartMin > w.EndMin:
			setRange(day, w.StartMin, 1440)
			setRange(day, 0, w.EndMin)
		}
	}
	return &b
}

// windowCache memoizes windowBits per distinct Window value.
type windowCache struct {
	bits map[policytext.Window]*weekBits
	full *weekBits
}

func newWindowCache() *windowCache {
	return &windowCache{bits: map[policytext.Window]*weekBits{}, full: windowBits(policytext.Window{})}
}

func (c *windowCache) get(w policytext.Window) *weekBits {
	if b, ok := c.bits[w]; ok {
		return b
	}
	b := windowBits(w)
	c.bits[w] = b
	return b
}

// vrule is one lowered rule under analysis.
type vrule struct {
	rule   policy.Rule
	action policy.Action
	prio   int
	line   int
	stmt   string
	tmpl   string
	via    string
	window policytext.Window
	bits   *weekBits
	mask   classifier.Mask
	key    classifier.Key
}

// lowerAll expands every statement window-ungated, plus every template
// body instantiated with placeholder arguments ($param stays a literal
// value), so template rules participate in coverage analysis before any
// instance exists. Statements and templates that fail to lower are
// skipped: Lower owns reporting those as compile errors.
func lowerAll(doc *policytext.Document, wc *windowCache) []*vrule {
	prio := map[string]int{}
	for _, p := range doc.PDPs {
		prio[p.Name] = p.Priority
	}
	var out []*vrule
	add := func(rs policytext.RuleStmt, tmpl string) {
		crs, err := compile.LowerStmt(doc, rs, tmpl)
		if err != nil {
			return
		}
		for _, cr := range crs {
			r := cr.Rule
			r.Priority = prio[r.PDP]
			v := &vrule{
				rule:   r,
				action: r.Action,
				prio:   r.Priority,
				line:   cr.Prov.Line,
				stmt:   cr.Prov.Stmt,
				tmpl:   tmpl,
				via:    cr.Prov.Via,
				window: rs.Window,
				bits:   wc.get(rs.Window),
			}
			v.mask, v.key = classifier.Signature(&v.rule)
			out = append(out, v)
		}
	}
	for _, rs := range doc.Rules {
		add(rs, "")
	}
	for _, t := range doc.Templates {
		args := make([]string, len(t.Params))
		for i, p := range t.Params {
			args[i] = "$" + p
		}
		stmts, err := compile.InstantiateTemplate(doc, t.Name, args)
		if err != nil {
			continue // parameter position incompatible with placeholders
		}
		tag := compile.InstanceKey(t.Name, args)
		for _, rs := range stmts {
			add(rs, tag)
		}
	}
	return out
}

// covererIndex groups rules by (mask, key) so finding every rule whose
// match set contains a given rule's is one Project + one map probe per
// distinct mask, instead of a quadratic pairwise scan.
type covererIndex struct {
	masks  []classifier.Mask
	byMask map[classifier.Mask]map[classifier.Key][]*vrule
}

func buildIndex(rules []*vrule) *covererIndex {
	ix := &covererIndex{byMask: map[classifier.Mask]map[classifier.Key][]*vrule{}}
	for _, v := range rules {
		slot := ix.byMask[v.mask]
		if slot == nil {
			slot = map[classifier.Key][]*vrule{}
			ix.byMask[v.mask] = slot
			ix.masks = append(ix.masks, v.mask)
		}
		slot[v.key] = append(slot[v.key], v)
	}
	return ix
}

// coverersOf returns every other rule whose match set contains v's:
// rules over a field subset of v's mask whose probe key equals v's
// values projected onto that subset.
func (ix *covererIndex) coverersOf(v *vrule) []*vrule {
	var out []*vrule
	for _, m := range ix.masks {
		if !m.SubsetOf(v.mask) {
			continue
		}
		k, ok := classifier.Project(&v.rule, m)
		if !ok {
			continue
		}
		for _, a := range ix.byMask[m][k] {
			if a != v {
				out = append(out, a)
			}
		}
	}
	return out
}

// sameMatchSet reports whether two rules match exactly the same flows at
// the same times.
func sameMatchSet(a, b *vrule) bool {
	return a.mask == b.mask && a.key == b.key && *a.bits == *b.bits
}

// coverage runs the shadow / conflict / redundancy analysis.
func coverage(rules []*vrule) []Finding {
	ix := buildIndex(rules)
	var fs []Finding
	for _, b := range rules {
		covs := ix.coverersOf(b)
		if len(covs) == 0 {
			continue
		}
		var higher, equalDeny, equalSame []*vrule
		for _, a := range covs {
			switch {
			case a.prio > b.prio:
				higher = append(higher, a)
			case a.prio == b.prio && a.action == b.action:
				equalSame = append(equalSame, a)
			case a.prio == b.prio && a.action == policy.ActionDeny && b.action == policy.ActionAllow:
				equalDeny = append(equalDeny, a)
			}
		}
		if f, dead := shadowFinding(b, higher); dead {
			fs = append(fs, f)
			continue // a dead rule's conflicts/redundancy are moot
		}
		if b.action == policy.ActionAllow {
			if f, hit := conflictFinding(b, equalDeny); hit {
				fs = append(fs, f)
				continue
			}
		}
		if f, hit := redundantFinding(b, equalSame); hit {
			fs = append(fs, f)
		}
	}
	return fs
}

// shadowFinding reports b dead when the union of its higher-priority
// coverers' windows contains b's own window: whenever b is active and a
// flow matches it, some coverer matches too and outranks it.
func shadowFinding(b *vrule, higher []*vrule) (Finding, bool) {
	if len(higher) == 0 {
		return Finding{}, false
	}
	var union weekBits
	for _, a := range higher {
		union.or(a.bits)
	}
	if !union.contains(b.bits) {
		return Finding{}, false
	}
	// The dangerous direction: a deny whose coverage includes an allow is
	// silently inert — traffic it names flows anyway.
	sev := SevWarn
	rep := higher[0]
	for _, a := range higher {
		if a.action != b.action && a.bits.intersects(b.bits) {
			rep = a
			if b.action == policy.ActionDeny && a.action == policy.ActionAllow {
				sev = SevError
			}
			break
		}
	}
	check := CheckShadow
	verb := "never matched"
	if !b.window.IsZero() {
		check = CheckDeadWindow
		verb = "permanently shadowed inside its window"
	}
	msg := fmt.Sprintf("%s rule is %s: covered by higher-priority %s %q (line %d, priority %d > %d)",
		b.action, verb, rep.action, rep.stmt, rep.line, rep.prio, b.prio)
	if len(higher) > 1 {
		msg += fmt.Sprintf(" and %d more", len(higher)-1)
	}
	return finding(check, sev, b, rep.line, msg), true
}

// conflictFinding reports an allow that equal-priority denies fully
// cover: deny wins priority ties, so the allow never wins. Fail-closed,
// hence warn.
func conflictFinding(b *vrule, equalDeny []*vrule) (Finding, bool) {
	if len(equalDeny) == 0 {
		return Finding{}, false
	}
	var union weekBits
	for _, a := range equalDeny {
		union.or(a.bits)
	}
	if !union.contains(b.bits) {
		return Finding{}, false
	}
	rep := equalDeny[0]
	msg := fmt.Sprintf("allow can never win: overlapping deny %q at equal priority %d (line %d) wins ties",
		rep.stmt, b.prio, rep.line)
	return finding(CheckConflict, SevWarn, b, rep.line, msg), true
}

// redundantFinding reports a rule individually implied by a same-action,
// equal-priority superset. Identical pairs tie-break to flag the later
// occurrence only.
func redundantFinding(b *vrule, equalSame []*vrule) (Finding, bool) {
	for _, a := range equalSame {
		if !a.bits.contains(b.bits) {
			continue
		}
		if sameMatchSet(a, b) && a.line >= b.line {
			continue // report the duplicate at the later line only
		}
		rel := "duplicates"
		if !sameMatchSet(a, b) {
			rel = "is implied by broader"
		}
		msg := fmt.Sprintf("rule %s same-action %s %q at equal priority (line %d)",
			rel, a.action, a.stmt, a.line)
		return finding(CheckRedundant, SevWarn, b, a.line, msg), true
	}
	return Finding{}, false
}

// windows runs the per-statement temporal checks that need no coverage
// analysis: windows that never activate (unconstructible from text, but
// documents can be built programmatically) and windows that constrain
// nothing.
func windows(doc *policytext.Document, wc *windowCache) []Finding {
	var fs []Finding
	check := func(rs policytext.RuleStmt, tmpl string) {
		if rs.Window.IsZero() {
			return
		}
		b := wc.get(rs.Window)
		switch {
		case b.count() == 0:
			fs = append(fs, Finding{
				Check: CheckDeadWindow, Severity: SevError, Line: rs.Line,
				Stmt: policytext.FormatStmt(rs), Template: tmpl,
				Message: fmt.Sprintf("temporal window %q can never be active", rs.Window),
			})
		case wc.full.contains(b) && b.contains(wc.full):
			fs = append(fs, Finding{
				Check: CheckDeadWindow, Severity: SevWarn, Line: rs.Line,
				Stmt: policytext.FormatStmt(rs), Template: tmpl,
				Message: fmt.Sprintf("temporal clause %q has no effect: the window spans the entire week", rs.Window),
			})
		}
	}
	for _, rs := range doc.Rules {
		check(rs, "")
	}
	for _, t := range doc.Templates {
		args := make([]string, len(t.Params))
		for i, p := range t.Params {
			args[i] = "$" + p
		}
		stmts, err := compile.InstantiateTemplate(doc, t.Name, args)
		if err != nil {
			continue
		}
		tag := compile.InstanceKey(t.Name, args)
		for _, rs := range stmts {
			check(rs, tag)
		}
	}
	return fs
}

func finding(check string, sev Severity, b *vrule, otherLine int, msg string) Finding {
	return Finding{
		Check:     check,
		Severity:  sev,
		Line:      b.line,
		Stmt:      b.stmt,
		Template:  b.tmpl,
		Via:       b.via,
		OtherLine: otherLine,
		Message:   msg,
	}
}
