package verify

import (
	"fmt"

	"github.com/dfi-sdn/dfi/internal/policytext"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

// structural runs the declaration-level lint: empty groups, unused
// groups and roles, and template parameters that no body line consumes
// (instances differing only in such a parameter lower to duplicate keys
// and silently unify).
func structural(doc *policytext.Document) []Finding {
	groupRefs := map[string]bool{}
	roleRefs := map[string]bool{}
	for _, rs := range doc.Rules {
		for _, ref := range []policytext.EndpointRef{rs.Src, rs.Dst} {
			if ref.Group != "" {
				groupRefs[ref.Group] = true
			}
			if ref.Role != "" {
				roleRefs[ref.Role] = true
			}
		}
	}
	for _, g := range doc.Groups {
		for _, m := range g.Members {
			if m.Group != "" {
				groupRefs[m.Group] = true
			}
		}
	}
	// Template bodies are raw tokens; a conservative adjacent-pair scan
	// ("group X" / "role X") marks declarations as used. False "used" is
	// harmless (a finding suppressed), false "unused" is not possible.
	for _, t := range doc.Templates {
		for _, line := range t.Body {
			for i := 0; i+1 < len(line.Tokens); i++ {
				switch line.Tokens[i] {
				case "group":
					groupRefs[line.Tokens[i+1]] = true
				case "role":
					roleRefs[line.Tokens[i+1]] = true
				}
			}
		}
	}

	var fs []Finding
	for _, g := range doc.Groups {
		leaves, err := compile.GroupLeaves(doc, g.Name)
		if err == nil && len(leaves) == 0 {
			msg := fmt.Sprintf("group %q has no members", g.Name)
			if groupRefs[g.Name] {
				msg += "; rules referencing it match no flows until members arrive"
			}
			fs = append(fs, Finding{
				Check: CheckStructural, Severity: SevWarn, Line: g.Line, Message: msg,
			})
		}
		if !groupRefs[g.Name] {
			fs = append(fs, Finding{
				Check: CheckStructural, Severity: SevWarn, Line: g.Line,
				Message: fmt.Sprintf("group %q is declared but never referenced", g.Name),
			})
		}
	}
	for _, r := range doc.Roles {
		if !roleRefs[r.Name] {
			fs = append(fs, Finding{
				Check: CheckStructural, Severity: SevWarn, Line: r.Line,
				Message: fmt.Sprintf("role %q is declared but never referenced", r.Name),
			})
		}
	}
	for _, t := range doc.Templates {
		used := map[string]bool{}
		for _, line := range t.Body {
			for _, tok := range line.Tokens {
				used[tok] = true
			}
		}
		for _, p := range t.Params {
			if !used["$"+p] {
				fs = append(fs, Finding{
					Check: CheckStructural, Severity: SevWarn, Line: t.Line,
					Message: fmt.Sprintf("template %q parameter %q is unused: instances differing only in it lower to duplicate rules", t.Name, p),
				})
			}
		}
	}
	return fs
}
