package verify

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/policytext"
	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

func mustParse(t *testing.T, src string) *policytext.Document {
	t.Helper()
	doc, err := policytext.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func readCorpus(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "bad", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fsum is a finding's summary for exact-match assertions.
func fsum(f Finding) string {
	return fmt.Sprintf("%s/%s@%d", f.Check, f.Severity, f.Line)
}

func sums(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fsum(f)
	}
	return out
}

// TestBadCorpus checks that every seeded bad document produces exactly
// the expected findings — all six check classes are represented across
// the corpus (shadow, conflict, redundant, deadwindow, structural here;
// the cross-epoch check in transition_test.go).
func TestBadCorpus(t *testing.T) {
	tests := []struct {
		file string
		want []string
	}{
		{"shadow.pol", []string{"shadow/error@4"}},
		{"conflict.pol", []string{"conflict/warn@3"}},
		{"redundant.pol", []string{"redundant/warn@3"}},
		{"deadwindow.pol", []string{"deadwindow/warn@4", "deadwindow/error@5"}},
		{"structural.pol", []string{
			"structural/warn@1", // ghosts empty
			"structural/warn@2", // relics unreferenced
			"structural/warn@3", // stale unreferenced
			"structural/warn@5", // padded param extra unused
		}},
		{"shadowtemplate.pol", []string{"shadow/error@4", "shadow/error@5"}},
	}
	for _, tt := range tests {
		t.Run(tt.file, func(t *testing.T) {
			doc := mustParse(t, readCorpus(t, tt.file))
			got := sums(Document(doc))
			if strings.Join(got, " ") != strings.Join(tt.want, " ") {
				t.Fatalf("findings = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestCleanDocuments: the golden documents from the compile suite and the
// README produce zero findings — the checks must not cry wolf on the
// idiomatic broad-deny-plus-specific-allow shape.
func TestCleanDocuments(t *testing.T) {
	docs := map[string]string{
		"engine": `
group eng { user alice; user bob }
group servers { host web; host db }
role mail { host mailserver port 143 }
pdp corp priority 50
template quarantine(h) { deny from host $h; deny to host $h }
allow proto tcp from group eng to group servers
allow from group eng to role mail
deny from host lobby-kiosk
`,
		"readme": `
group eng { user alice; user bob; group contractors }
group contractors { user carol }
role mail { host mailserver port 143 }
pdp corp priority 50
template quarantine(h) { deny from host $h; deny to host $h }
allow proto tcp from group eng to role mail between 09:00-17:00 days mon-fri
deny from host lobby-kiosk
`,
		"windows": `
pdp p priority 10
allow from host a between 09:00-17:00
allow from host b between 22:00-06:00
allow from host c days sat-sun
allow from host d
`,
	}
	for name, src := range docs {
		if fs := Document(mustParse(t, src)); len(fs) != 0 {
			t.Errorf("%s: unexpected findings: %v", name, fs)
		}
	}
}

// TestComplementaryWindowUnionShadow: two higher-priority windowed allows
// whose windows jointly cover the week shadow a deny that neither does
// alone.
func TestComplementaryWindowUnionShadow(t *testing.T) {
	doc := mustParse(t, `
pdp admin priority 90
allow from host web between 08:00-20:00
allow from host web between 20:00-08:00
pdp corp priority 10
deny from host web to host db
`)
	fs := Document(doc)
	if len(fs) != 1 || fs[0].Check != CheckShadow || fs[0].Severity != SevError || fs[0].Line != 6 {
		t.Fatalf("findings = %v, want one shadow error at line 6", fs)
	}
	// Narrow either window and the union no longer covers: no finding.
	doc = mustParse(t, `
pdp admin priority 90
allow from host web between 08:00-20:00
allow from host web between 21:00-08:00
pdp corp priority 10
deny from host web to host db
`)
	if fs := Document(doc); len(fs) != 0 {
		t.Fatalf("incomplete union still flagged: %v", fs)
	}
}

// TestFindingsSortedByLine: diagnostics come back ordered by source line.
func TestFindingsSortedByLine(t *testing.T) {
	doc := mustParse(t, `
group unused1 { host x }
pdp admin priority 100
allow from host web
pdp corp priority 10
deny from host web to host db
deny from host web to host mail
group unused2 { host y }
`)
	fs := Document(doc)
	if len(fs) < 4 {
		t.Fatalf("findings = %v, want 4", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Line < fs[i-1].Line {
			t.Fatalf("findings out of line order: %v", sums(fs))
		}
	}
}

// TestTemplateProvenance: a finding inside a template body carries the
// placeholder instance tag and the body statement's own source line, and
// group fan-out findings carry the via chain.
func TestTemplateProvenance(t *testing.T) {
	doc := mustParse(t, readCorpus(t, "shadowtemplate.pol"))
	fs := Document(doc)
	var tf *Finding
	for i := range fs {
		if fs[i].Template != "" {
			tf = &fs[i]
		}
	}
	if tf == nil {
		t.Fatalf("no template-tagged finding in %v", fs)
	}
	if tf.Template != "quarantine($h)" || tf.Line != 4 || tf.Stmt != "deny from host $h to host db" {
		t.Fatalf("template finding = %+v", *tf)
	}

	doc = mustParse(t, `
group kiosks { host lobby; host atrium }
pdp admin priority 100
allow to host db
pdp corp priority 10
deny from group kiosks to host db
`)
	fs = Document(doc)
	if len(fs) != 1 || fs[0].Via == "" || !strings.Contains(fs[0].Via, "group kiosks") {
		t.Fatalf("fan-out finding missing via chain: %v", fs)
	}
}

// TestShadowInvariantUnderFormat: the property from the satellite list —
// reformatting a document (canonical Format, then reparse) never changes
// which statements are flagged, even though line numbers shift.
func TestShadowInvariantUnderFormat(t *testing.T) {
	for _, file := range []string{
		"shadow.pol", "conflict.pol", "redundant.pol",
		"deadwindow.pol", "structural.pol", "shadowtemplate.pol",
	} {
		doc := mustParse(t, readCorpus(t, file))
		before := Document(doc)
		redoc := mustParse(t, policytext.Format(doc))
		after := Document(redoc)
		key := func(fs []Finding) []string {
			out := make([]string, len(fs))
			for i, f := range fs {
				out[i] = fmt.Sprintf("%s|%s|%s|%s", f.Check, f.Severity, f.Stmt, f.Template)
			}
			sort.Strings(out)
			return out
		}
		b, a := key(before), key(after)
		if strings.Join(b, "\n") != strings.Join(a, "\n") {
			t.Errorf("%s: findings changed under Format round-trip:\nbefore %v\nafter  %v", file, b, a)
		}
	}
}

// TestNeverActiveWindow: a zero-width clock interval is unconstructible
// from text but representable programmatically; the verifier must flag
// it rather than silently compiling a rule that never fires.
func TestNeverActiveWindow(t *testing.T) {
	doc := &policytext.Document{
		PDPs: []policytext.PDPDecl{{Name: "p", Priority: 10, Line: 1}},
		Rules: []policytext.RuleStmt{{
			PDP:    "p",
			Action: policy.ActionAllow,
			Src:    policytext.EndpointRef{Spec: policy.EndpointSpec{Host: "a"}},
			Window: policytext.Window{HasTime: true, StartMin: 300, EndMin: 300},
			Line:   2,
		}},
	}
	fs := Document(doc)
	if len(fs) != 1 || fs[0].Check != CheckDeadWindow || fs[0].Severity != SevError {
		t.Fatalf("findings = %v, want one deadwindow error", fs)
	}
}

// TestCheckGatesSetSource: the engine hook rejects error-severity
// documents atomically — no PDP registered, no rule inserted, and the
// ErrorList carries the finding's line — while a warning-only document
// applies and a subsequent good document still works.
func TestCheckGatesSetSource(t *testing.T) {
	pm := policy.NewManager()
	eng := compile.NewEngine(pm, nil)
	eng.SetCheck(Check)

	bad := readCorpus(t, "shadow.pol")
	if _, err := eng.SetSource(bad); err == nil {
		t.Fatal("error-severity document accepted")
	} else {
		list := policytext.AsErrorList(err)
		if len(list) != 1 || list[0].Line != 4 || !strings.Contains(list[0].Msg, "[shadow]") {
			t.Fatalf("gate error = %v", err)
		}
	}
	if pm.Len() != 0 {
		t.Fatalf("rules leaked through rejected apply: %d", pm.Len())
	}
	if _, ok := pm.PDPPriority("admin"); ok {
		t.Fatal("pdp registered by rejected apply")
	}

	warnOnly := readCorpus(t, "conflict.pol")
	if _, err := eng.SetSource(warnOnly); err != nil {
		t.Fatalf("warning-only document rejected: %v", err)
	}
	if pm.Len() != 2 {
		t.Fatalf("rules after warn-only apply = %d, want 2", pm.Len())
	}
}

// TestCheckNilOnClean mirrors the gate's contract for clean documents.
func TestCheckNilOnClean(t *testing.T) {
	doc := mustParse(t, "pdp p priority 10\nallow from host a\n")
	if err := Check(doc); err != nil {
		t.Fatalf("clean document gated: %v", err)
	}
}
