package verify

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dfi-sdn/dfi/internal/policytext"
)

// FuzzLowerVerify: any document that parses must verify without panicking,
// every finding must point inside the document (1-based line within
// bounds), ordering must hold, and the self-transition must widen nothing.
func FuzzLowerVerify(f *testing.F) {
	seeds := []string{
		"pdp p priority 10\nallow from host a\n",
		"group eng { user alice; user bob }\ngroup servers { host web; host db }\nrole mail { host mailserver port 143 }\npdp corp priority 50\ntemplate quarantine(h) { deny from host $h; deny to host $h }\nallow proto tcp from group eng to group servers\nallow from group eng to role mail\ndeny from host lobby-kiosk\n",
		"pdp p priority 10\nallow from host a between 09:00-17:00\nallow from host b between 22:00-06:00\nallow from host c days sat-sun\nallow from host d\n",
		"group g0 { user seed0 }\ngroup g1 { user seed1; group g0 }\npdp p priority 10\nallow from group g1 to host db\n",
	}
	if ents, err := os.ReadDir(filepath.Join("testdata", "bad")); err == nil {
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join("testdata", "bad", e.Name()))
			if err == nil {
				seeds = append(seeds, string(b))
			}
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := policytext.Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		lines := strings.Count(src, "\n") + 1
		fs := Document(doc)
		for i, fd := range fs {
			if fd.Line < 1 || fd.Line > lines {
				t.Fatalf("finding line %d outside document (%d lines): %+v", fd.Line, lines, fd)
			}
			if fd.OtherLine < 0 || fd.OtherLine > lines {
				t.Fatalf("counterpart line %d outside document: %+v", fd.OtherLine, fd)
			}
			if i > 0 && fd.Line < fs[i-1].Line {
				t.Fatalf("findings unsorted: %+v", fs)
			}
		}
		if ws := VerifyTransition(doc, doc); len(ws) != 0 {
			t.Fatalf("self-transition widened: %+v", ws)
		}
	})
}
