package verify

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/policytext"
)

// bigDoc builds an n-rule document shaped like a real deployment: many
// distinct endpoint rules across a few priority tiers, a sprinkle of
// windows, and one broad deny per tier.
func bigDoc(n int) string {
	var b strings.Builder
	b.WriteString("pdp edge priority 10\n")
	for i := 0; i < n/2; i++ {
		fmt.Fprintf(&b, "allow proto tcp from host h%d to host s%d\n", i, i%40)
	}
	b.WriteString("pdp campus priority 50\n")
	for i := 0; i < n/2; i++ {
		if i%7 == 0 {
			fmt.Fprintf(&b, "deny from host h%d to host vault between 22:00-06:00\n", i)
			continue
		}
		fmt.Fprintf(&b, "allow from user u%d to host s%d\n", i, i%40)
	}
	return b.String()
}

// BenchmarkVerify1k is the acceptance gate: full verification of a
// 1000-rule document must stay under 100ms per pass.
func BenchmarkVerify1k(b *testing.B) {
	doc, err := policytext.Parse(strings.NewReader(bigDoc(1000)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Document(doc)
	}
}

// TestVerify1kUnder100ms pins the acceptance budget in the regular test
// run (generous wall-clock bound; the benchmark gives the real number).
func TestVerify1kUnder100ms(t *testing.T) {
	doc, err := policytext.Parse(strings.NewReader(bigDoc(1000)))
	if err != nil {
		t.Fatal(err)
	}
	Document(doc) // warm path once
	start := time.Now()
	Document(doc)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("1k-rule verification took %v, budget 100ms", d)
	}
}
