package verify

import (
	"fmt"
	"sort"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/policytext"
)

// Widening is one unit of allow-set growth between two policy epochs:
// flows the next document allows that the previous one did not (either
// never allowed, or denied by a deny that no longer applies).
type Widening struct {
	// Line is the 1-based line of the widening allow in the next document.
	Line int `json:"line"`
	// Stmt is that allow's canonical statement text.
	Stmt string `json:"stmt"`
	// Rule is the specific lowered rule whose reachability is new.
	Rule string `json:"rule"`
	// PrevLine points at the previous document's deny that used to block
	// these flows, 0 when the flows were simply never allowed before.
	PrevLine int    `json:"prevLine,omitempty"`
	Message  string `json:"message"`
}

// VerifyTransition computes the allow-set widening from prev to next:
// every lowered allow in next that grants reachability prev did not.
// Template bodies are excluded — they widen nothing until instantiated.
// Results are sorted by line, then rule text.
func VerifyTransition(prev, next *policytext.Document) []Widening {
	wc := newWindowCache()
	prevRules := docRules(lowerAll(prev, wc))
	nextRules := docRules(lowerAll(next, wc))
	ix := buildIndex(prevRules)

	var out []Widening
	for _, n := range nextRules {
		if n.action != policy.ActionAllow {
			continue
		}
		// Previous allows covering n's whole match set, and the effective
		// priority n's flows were allowed at (the strongest coverer).
		var allowBits weekBits
		covered := false
		effPrio := 0
		for _, p := range ix.coverersOf(n) {
			if p.action != policy.ActionAllow {
				continue
			}
			allowBits.or(p.bits)
			if !covered || p.prio > effPrio {
				effPrio = p.prio
			}
			covered = true
		}
		if !covered || !allowBits.contains(n.bits) {
			out = append(out, Widening{
				Line: n.line, Stmt: n.stmt, Rule: policytext.FormatRule(n.rule),
				Message: "grants reachability no previous allow covered",
			})
			continue
		}
		// The flows were allowed — unless a previous deny outranked the
		// covering allows (deny wins ties). A deny that merely overlaps n
		// still blocked part of n's match set, so any overlap counts.
		for _, d := range prevRules {
			if d.action != policy.ActionDeny || d.prio < effPrio {
				continue
			}
			if !d.rule.Overlaps(&n.rule) || !d.bits.intersects(n.bits) {
				continue
			}
			if deniedInNext(nextRules, d, n) {
				continue
			}
			out = append(out, Widening{
				Line: n.line, Stmt: n.stmt, Rule: policytext.FormatRule(n.rule), PrevLine: d.line,
				Message: fmt.Sprintf("flows previously blocked by deny %q (line %d, priority %d) are now allowed",
					d.stmt, d.line, d.prio),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.PrevLine < b.PrevLine
	})
	return out
}

// docRules filters out template-placeholder rules.
func docRules(rules []*vrule) []*vrule {
	out := rules[:0]
	for _, v := range rules {
		if v.tmpl == "" {
			out = append(out, v)
		}
	}
	return out
}

// deniedInNext reports whether the next document still carries a deny
// with prev-deny d's exact match set, at a priority that still beats the
// widening allow n, over at least d's window.
func deniedInNext(nextRules []*vrule, d, n *vrule) bool {
	for _, d2 := range nextRules {
		if d2.action != policy.ActionDeny || d2.prio < n.prio {
			continue
		}
		if d2.mask == d.mask && d2.key == d.key && d2.bits.contains(d.bits) {
			return true
		}
	}
	return false
}
