package compile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/policytext"
	"github.com/dfi-sdn/dfi/internal/simclock"
)

// Engine keeps a policy.Manager's rule set in sync with a policytext
// document and its runtime transformations. It retains the previous
// lowering keyed by stable content identity, so every operation — a full
// SetSource, a group-membership change, a template instantiation, a
// temporal window opening — applies only the insert/revoke delta: rules
// whose definition is unchanged keep their RuleID, and the classifier's
// delta compiler sees an O(changed) epoch diff.
//
// All methods are safe for concurrent use.
type Engine struct {
	pm    *policy.Manager
	sched simclock.Scheduler

	mu        sync.Mutex
	check     SourceCheck
	doc       *policytext.Document
	stmts     map[string]*runtimeStmt // by statement key
	order     []string                // statement keys, document order
	installed map[string]installedRule
	byStmt    map[string]map[string]bool // statement key -> installed rule keys
	instances map[string]templateInstance
	timerStop func()
	timerGen  uint64
}

type runtimeStmt struct {
	key    string
	rs     policytext.RuleStmt
	tmpl   string // instance key, "" for document statements
	deps   map[string]bool
	active bool
}

type installedRule struct {
	id      policy.RuleID
	rule    policy.Rule
	prov    Provenance
	stmtKey string
}

type templateInstance struct {
	name string
	args []string
}

// NewEngine returns an engine over pm with an empty document. A nil
// scheduler defaults to the wall clock; tests inject simclock.Simulated
// to drive temporal windows deterministically.
func NewEngine(pm *policy.Manager, sched simclock.Scheduler) *Engine {
	if sched == nil {
		sched = simclock.Real{}
	}
	return &Engine{
		pm:        pm,
		sched:     sched,
		doc:       &policytext.Document{},
		stmts:     map[string]*runtimeStmt{},
		installed: map[string]installedRule{},
		byStmt:    map[string]map[string]bool{},
		instances: map[string]templateInstance{},
	}
}

// Source returns the engine's current document in canonical textual form,
// including membership changes applied since it was loaded (template
// instances are runtime state, visible via Compiled, not document text).
func (e *Engine) Source() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return policytext.Format(e.doc)
}

// Compiled returns every installed lowered rule with provenance, sorted
// by rule ID.
func (e *Engine) Compiled() []CompiledRule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]CompiledRule, 0, len(e.installed))
	for key, inst := range e.installed {
		r := inst.rule
		r.ID = inst.id
		if prio, ok := e.pm.PDPPriority(r.PDP); ok {
			r.Priority = prio
		}
		out = append(out, CompiledRule{Key: key, Rule: r, Prov: inst.prov})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.ID < out[j].Rule.ID })
	return out
}

// Instances returns the active template instance keys, sorted.
func (e *Engine) Instances() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.instances))
	for k := range e.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SourceCheck is a semantic gate run by SetSource after a document parses
// but before any rule is touched. A non-nil error (typically a
// policytext.ErrorList with per-finding lines) rejects the document
// atomically, exactly like a compile error. The check must be a pure
// function of the document: it runs outside the engine lock (so it may
// safely call back into the engine) and therefore before the compile-time
// checks that consult runtime state.
type SourceCheck func(doc *policytext.Document) error

// SetCheck installs the semantic gate applied by SetSource. The system
// wires the policy verifier here; Diff is deliberately ungated so dry runs
// and diffs still compute deltas for documents the gate would reject.
func (e *Engine) SetCheck(check SourceCheck) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.check = check
}

// SetSource parses, validates and applies a full policy document
// atomically: on any parse or compile error (returned as a
// policytext.ErrorList) nothing is changed. On success only the delta
// against the previous lowering is applied — unchanged rules keep their
// IDs — and active template instances are re-instantiated against the new
// document (instances whose template vanished or no longer compiles are
// dropped).
func (e *Engine) SetSource(src string) (Delta, error) {
	e.mu.Lock()
	check := e.check
	e.mu.Unlock()
	if check != nil {
		doc, err := policytext.Parse(strings.NewReader(src))
		if err != nil {
			return Delta{}, err
		}
		if err := check(doc); err != nil {
			return Delta{}, err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p, err := e.plan(src)
	if err != nil {
		return Delta{}, err
	}
	return e.applyPlan(p)
}

// Diff compiles a proposed document and returns the delta applying it
// would produce, without changing anything. Inserted rules carry no IDs
// (none are assigned); revoked rules carry the IDs that would be revoked.
func (e *Engine) Diff(src string) (Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, err := e.plan(src)
	if err != nil {
		return Delta{}, err
	}
	var d Delta
	for key, inst := range e.installed {
		if _, keep := p.rules[key]; !keep {
			r := inst.rule
			r.ID = inst.id
			d.Revoke = append(d.Revoke, r)
		}
	}
	for key, cr := range p.rules {
		if _, have := e.installed[key]; !have {
			d.Insert = append(d.Insert, cr.Rule)
		}
	}
	sortDelta(&d)
	return d, nil
}

// plannedState is a fully validated compilation of a proposed document.
type plannedState struct {
	doc       *policytext.Document
	stmts     map[string]*runtimeStmt
	order     []string
	rules     map[string]CompiledRule // desired installed set
	instances map[string]templateInstance
}

func (e *Engine) plan(src string) (*plannedState, error) {
	doc, err := policytext.Parse(strings.NewReader(src))
	if err != nil {
		return nil, err
	}
	now := e.sched.Now()
	var errs policytext.ErrorList
	errs = append(errs, validateDecls(doc)...)
	for _, decl := range doc.PDPs {
		if prio, ok := e.pm.PDPPriority(decl.Name); ok && prio != decl.Priority {
			errs = append(errs, perrf(decl.Line,
				"pdp %q already registered with priority %d (cannot change to %d)", decl.Name, prio, decl.Priority))
		}
	}
	p := &plannedState{
		doc:       doc,
		stmts:     map[string]*runtimeStmt{},
		rules:     map[string]CompiledRule{},
		instances: map[string]templateInstance{},
	}
	addStmt := func(rs policytext.RuleStmt, tmpl string) *policytext.ParseError {
		crs, err := lowerStmt(doc, rs, tmpl)
		if err != nil {
			return err
		}
		key := stmtKey(rs, tmpl)
		if _, dup := p.stmts[key]; dup {
			return nil // identical duplicate statement: unify
		}
		st := &runtimeStmt{key: key, rs: rs, tmpl: tmpl, deps: stmtDeps(doc, rs), active: rs.Window.Active(now)}
		p.stmts[key] = st
		p.order = append(p.order, key)
		if st.active {
			for _, cr := range crs {
				p.rules[cr.Key] = cr
			}
		}
		return nil
	}
	for _, rs := range doc.Rules {
		if err := addStmt(rs, ""); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return nil, errs
	}
	// Re-instantiate retained template instances against the new document;
	// instances that no longer fit are dropped rather than blocking apply.
	for key, inst := range e.instances {
		stmts, err := instantiateStmts(doc, inst.name, inst.args)
		if err != nil {
			continue
		}
		p.instances[key] = inst
		for _, rs := range stmts {
			if err := addStmt(rs, key); err != nil {
				delete(p.instances, key)
				break
			}
		}
	}
	return p, nil
}

// applyPlan swaps the engine onto a planned state, applying the rule
// delta through the manager. PDP registration happens first and is
// additive; rule mutations only start once every new PDP registered
// cleanly.
func (e *Engine) applyPlan(p *plannedState) (Delta, error) {
	for _, decl := range p.doc.PDPs {
		if _, ok := e.pm.PDPPriority(decl.Name); ok {
			continue // same priority, verified by plan
		}
		if err := e.pm.RegisterPDP(decl.Name, decl.Priority); err != nil {
			return Delta{}, policytext.ErrorList{perrf(decl.Line, "register pdp %q: %v", decl.Name, err)}
		}
	}
	var insertKeys, revokeKeys []string
	for key := range p.rules {
		if _, have := e.installed[key]; !have {
			insertKeys = append(insertKeys, key)
		}
	}
	for key := range e.installed {
		if _, keep := p.rules[key]; !keep {
			revokeKeys = append(revokeKeys, key)
		}
	}
	sort.Strings(insertKeys)
	sort.Strings(revokeKeys)

	var d Delta
	installed := make(map[string]installedRule, len(p.rules))
	for key, inst := range e.installed {
		if _, keep := p.rules[key]; keep {
			// Unchanged definition: the rule stays in place, ID intact, but
			// adopt the new plan's provenance/statement association.
			cr := p.rules[key]
			installed[key] = installedRule{id: inst.id, rule: cr.Rule, prov: cr.Prov, stmtKey: stmtOf(key)}
		}
	}
	for _, key := range insertKeys {
		cr := p.rules[key]
		id, err := e.pm.Insert(cr.Rule)
		if err != nil {
			// Unreachable in practice (PDPs are registered above); surface
			// rather than silently losing the rule.
			return d, policytext.ErrorList{perrf(cr.Prov.Line, "insert rule: %v", err)}
		}
		r := cr.Rule
		r.ID = id
		installed[key] = installedRule{id: id, rule: cr.Rule, prov: cr.Prov, stmtKey: stmtOf(key)}
		d.Insert = append(d.Insert, r)
	}
	for _, key := range revokeKeys {
		inst := e.installed[key]
		if err := e.pm.Revoke(inst.id); err == nil {
			r := inst.rule
			r.ID = inst.id
			d.Revoke = append(d.Revoke, r)
		}
	}

	e.doc = p.doc
	e.stmts = p.stmts
	e.order = p.order
	e.instances = p.instances
	e.installed = installed
	e.rebuildByStmt()
	e.rearmTimerLocked()
	sortDelta(&d)
	return d, nil
}

// stmtOf recovers the statement key prefix from a rule key (the rule key
// is stmtKey + "|" + lowered rule text).
func stmtOf(ruleKey string) string {
	if i := strings.LastIndex(ruleKey, "|"); i >= 0 {
		return ruleKey[:i]
	}
	return ruleKey
}

func (e *Engine) rebuildByStmt() {
	e.byStmt = map[string]map[string]bool{}
	for key, inst := range e.installed {
		set := e.byStmt[inst.stmtKey]
		if set == nil {
			set = map[string]bool{}
			e.byStmt[inst.stmtKey] = set
		}
		set[key] = true
	}
}

// AddMember adds a member (in group-member syntax, e.g. "user mallory" or
// "group contractors") to a named group and applies the resulting rule
// delta: only statements whose expansion depends on the group are
// re-lowered. Adding a member already present is a no-op.
func (e *Engine) AddMember(group, memberText string) (Delta, error) {
	return e.changeMember(group, memberText, true)
}

// RemoveMember removes a member from a named group; the inverse of
// AddMember, and likewise a no-op when the member is absent.
func (e *Engine) RemoveMember(group, memberText string) (Delta, error) {
	return e.changeMember(group, memberText, false)
}

func (e *Engine) changeMember(group, memberText string, add bool) (Delta, error) {
	member, err := policytext.ParseMember(memberText)
	if err != nil {
		return Delta{}, policytext.AsErrorList(err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	gi := -1
	for i := range e.doc.Groups {
		if e.doc.Groups[i].Name == group {
			gi = i
			break
		}
	}
	if gi < 0 {
		return Delta{}, policytext.ErrorList{perrf(0, "unknown group %q", group)}
	}
	g := &e.doc.Groups[gi]
	id := member.String()
	mi := -1
	for i, m := range g.Members {
		if m.String() == id {
			mi = i
			break
		}
	}
	if add == (mi >= 0) {
		return Delta{}, nil // already present / already absent
	}
	saved := append([]policytext.Member(nil), g.Members...)
	if add {
		g.Members = append(g.Members, member)
	} else {
		g.Members = append(g.Members[:mi:mi], g.Members[mi+1:]...)
	}
	// Adding a nested group reference can introduce unknown groups or
	// cycles; validate before touching any rules.
	if member.Group != "" {
		if _, verr := groupLeaves(e.doc, group, nil, 0); verr != nil {
			g.Members = saved
			return Delta{}, policytext.ErrorList{verr}
		}
	}
	d, aerr := e.recomputeDependents(map[string]bool{group: true})
	if aerr != nil {
		g.Members = saved
		return Delta{}, aerr
	}
	return d, nil
}

// recomputeDependents re-lowers every statement whose dependency set
// intersects changed and applies the per-statement deltas. Lowering of
// all affected statements is validated before any rule is touched, so a
// bad membership change rejects cleanly.
func (e *Engine) recomputeDependents(changed map[string]bool) (Delta, error) {
	type relowered struct {
		st  *runtimeStmt
		crs []CompiledRule
	}
	var affected []relowered
	for _, key := range e.order {
		st := e.stmts[key]
		hit := false
		for g := range changed {
			if st.deps[g] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		crs, err := lowerStmt(e.doc, st.rs, st.tmpl)
		if err != nil {
			return Delta{}, policytext.ErrorList{err}
		}
		affected = append(affected, relowered{st: st, crs: crs})
	}
	var d Delta
	for _, a := range affected {
		a.st.deps = stmtDeps(e.doc, a.st.rs)
		desired := map[string]CompiledRule{}
		if a.st.active {
			for _, cr := range a.crs {
				desired[cr.Key] = cr
			}
		}
		e.applyStmtDelta(a.st.key, desired, &d)
	}
	sortDelta(&d)
	return d, nil
}

// applyStmtDelta reconciles one statement's installed rules with the
// desired set, appending what changed to d.
func (e *Engine) applyStmtDelta(stmtKey string, desired map[string]CompiledRule, d *Delta) {
	have := e.byStmt[stmtKey]
	var insertKeys, revokeKeys []string
	for key := range desired {
		if !have[key] {
			insertKeys = append(insertKeys, key)
		}
	}
	for key := range have {
		if _, keep := desired[key]; !keep {
			revokeKeys = append(revokeKeys, key)
		}
	}
	sort.Strings(insertKeys)
	sort.Strings(revokeKeys)
	for _, key := range insertKeys {
		cr := desired[key]
		id, err := e.pm.Insert(cr.Rule)
		if err != nil {
			continue
		}
		e.installed[key] = installedRule{id: id, rule: cr.Rule, prov: cr.Prov, stmtKey: stmtKey}
		if e.byStmt[stmtKey] == nil {
			e.byStmt[stmtKey] = map[string]bool{}
		}
		e.byStmt[stmtKey][key] = true
		r := cr.Rule
		r.ID = id
		d.Insert = append(d.Insert, r)
	}
	for _, key := range revokeKeys {
		inst := e.installed[key]
		if err := e.pm.Revoke(inst.id); err == nil {
			r := inst.rule
			r.ID = inst.id
			d.Revoke = append(d.Revoke, r)
		}
		delete(e.installed, key)
		delete(e.byStmt[stmtKey], key)
	}
}

// InstanceKey renders a template instance identity, e.g. "quarantine(h7)".
func InstanceKey(name string, args []string) string {
	return name + "(" + strings.Join(args, ",") + ")"
}

// Instantiate applies a template with the given arguments, inserting the
// rules its body lowers to. Instantiating an already-active instance is a
// no-op. The instance stays active until Retract (or until a SetSource
// whose document no longer carries a compatible template).
func (e *Engine) Instantiate(name string, args ...string) (Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := InstanceKey(name, args)
	if _, active := e.instances[key]; active {
		return Delta{}, nil
	}
	stmts, err := instantiateStmts(e.doc, name, args)
	if err != nil {
		return Delta{}, policytext.AsErrorList(err)
	}
	now := e.sched.Now()
	var d Delta
	windowed := false
	for _, rs := range stmts {
		crs, lerr := lowerStmt(e.doc, rs, key)
		if lerr != nil {
			// Roll back statements already applied for this instance.
			e.retractLocked(key, &Delta{})
			return Delta{}, policytext.ErrorList{lerr}
		}
		sk := stmtKey(rs, key)
		if _, dup := e.stmts[sk]; dup {
			continue
		}
		st := &runtimeStmt{key: sk, rs: rs, tmpl: key, deps: stmtDeps(e.doc, rs), active: rs.Window.Active(now)}
		e.stmts[sk] = st
		e.order = append(e.order, sk)
		if !rs.Window.IsZero() {
			windowed = true
		}
		if st.active {
			desired := map[string]CompiledRule{}
			for _, cr := range crs {
				desired[cr.Key] = cr
			}
			e.applyStmtDelta(sk, desired, &d)
		}
	}
	e.instances[key] = templateInstance{name: name, args: args}
	if windowed {
		e.rearmTimerLocked()
	}
	sortDelta(&d)
	return d, nil
}

// Retract removes a template instance, revoking the rules it inserted.
// Retracting an inactive instance is a no-op.
func (e *Engine) Retract(name string, args ...string) (Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := InstanceKey(name, args)
	if _, active := e.instances[key]; !active {
		return Delta{}, nil
	}
	var d Delta
	e.retractLocked(key, &d)
	delete(e.instances, key)
	e.rearmTimerLocked()
	sortDelta(&d)
	return d, nil
}

// retractLocked removes every statement belonging to a template instance.
func (e *Engine) retractLocked(instanceKey string, d *Delta) {
	keep := e.order[:0]
	for _, sk := range e.order {
		st := e.stmts[sk]
		if st.tmpl != instanceKey {
			keep = append(keep, sk)
			continue
		}
		e.applyStmtDelta(sk, nil, d)
		delete(e.byStmt, sk)
		delete(e.stmts, sk)
	}
	e.order = keep
}

// instantiateStmts substitutes args into the template body and parses the
// resulting rule statements.
func instantiateStmts(doc *policytext.Document, name string, args []string) ([]policytext.RuleStmt, error) {
	tmpl, ok := doc.Template(name)
	if !ok {
		return nil, policytext.ErrorList{perrf(0, "unknown template %q", name)}
	}
	if len(args) != len(tmpl.Params) {
		return nil, policytext.ErrorList{perrf(tmpl.Line,
			"template %q wants %d argument(s), got %d", name, len(tmpl.Params), len(args))}
	}
	subst := map[string]string{}
	for i, p := range tmpl.Params {
		subst["$"+p] = args[i]
	}
	var out []policytext.RuleStmt
	var errs policytext.ErrorList
	for _, line := range tmpl.Body {
		toks := make([]string, len(line.Tokens))
		for i, t := range line.Tokens {
			if v, isParam := subst[t]; isParam {
				toks[i] = v
			} else {
				toks[i] = t
			}
		}
		rs, err := policytext.ParseRuleStmt(toks, line.Line)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		rs.PDP = tmpl.PDP
		out = append(out, rs)
	}
	if len(errs) > 0 {
		return nil, errs
	}
	return out, nil
}

// rearmTimerLocked points a single scheduler timer at the earliest
// upcoming window transition across all statements. A generation counter
// invalidates timers from superseded arrangements.
func (e *Engine) rearmTimerLocked() {
	if e.timerStop != nil {
		e.timerStop()
		e.timerStop = nil
	}
	e.timerGen++
	now := e.sched.Now()
	var next time.Time
	for _, sk := range e.order {
		st := e.stmts[sk]
		if st.rs.Window.IsZero() {
			continue
		}
		at, ok := st.rs.Window.NextTransition(now)
		if ok && (next.IsZero() || at.Before(next)) {
			next = at
		}
	}
	if next.IsZero() {
		return
	}
	gen := e.timerGen
	e.timerStop = e.sched.AfterFunc(next.Sub(now), func() { e.onWindowTimer(gen) })
}

// onWindowTimer re-evaluates every windowed statement's active state and
// applies the deltas for those that flipped, then re-arms.
func (e *Engine) onWindowTimer(gen uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if gen != e.timerGen {
		return
	}
	now := e.sched.Now()
	var d Delta
	for _, sk := range e.order {
		st := e.stmts[sk]
		if st.rs.Window.IsZero() {
			continue
		}
		active := st.rs.Window.Active(now)
		if active == st.active {
			continue
		}
		st.active = active
		desired := map[string]CompiledRule{}
		if active {
			crs, err := lowerStmt(e.doc, st.rs, st.tmpl)
			if err != nil {
				// Lowering was valid when last checked; leave the statement
				// contributing nothing rather than partially applying.
				st.active = false
				continue
			}
			for _, cr := range crs {
				desired[cr.Key] = cr
			}
		}
		e.applyStmtDelta(sk, desired, &d)
	}
	e.rearmTimerLocked()
}

func sortDelta(d *Delta) {
	byText := func(rs []policy.Rule) func(i, j int) bool {
		return func(i, j int) bool {
			a, b := rs[i], rs[j]
			if a.PDP != b.PDP {
				return a.PDP < b.PDP
			}
			return fmt.Sprint(a.Action, policytext.FormatRule(a)) < fmt.Sprint(b.Action, policytext.FormatRule(b))
		}
	}
	sort.Slice(d.Insert, byText(d.Insert))
	sort.Slice(d.Revoke, byText(d.Revoke))
}
