// Package compile lowers policytext documents into DFI's flat rule model
// and keeps a running system's lowered rule set incrementally up to date.
//
// The package has two layers. Lower is the pure compilation stage: it
// expands group references (transitively), resolves role aliases, applies
// temporal windows and produces flat policy.Rule values, each carrying
// provenance back to the source statement that produced it. Engine (see
// engine.go) owns a live policy.Manager: it applies full documents
// atomically and, for runtime events — group membership churn, template
// instantiation, temporal window transitions — recomputes only the
// affected statements and feeds the minimal insert/revoke delta to the
// manager, so the change rides the classifier's O(changed) flush path
// instead of a delete-and-repopulate.
package compile

import (
	"fmt"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/policytext"
)

// Provenance records where a lowered rule came from.
type Provenance struct {
	// Line is the 1-based source line of the producing statement (the
	// template declaration's line for instantiated rules).
	Line int `json:"line"`
	// Stmt is the canonical text of the producing statement.
	Stmt string `json:"stmt"`
	// Template is the instance key ("quarantine(h7)") when the rule came
	// from a template instantiation.
	Template string `json:"template,omitempty"`
	// Via describes the group expansions that produced this particular
	// rule out of the statement's cross product.
	Via string `json:"via,omitempty"`
}

// String renders the provenance as the rule's Origin tag.
func (p Provenance) String() string {
	var b strings.Builder
	if p.Template != "" {
		fmt.Fprintf(&b, "template %s", p.Template)
	} else {
		fmt.Fprintf(&b, "line %d", p.Line)
	}
	if p.Via != "" {
		b.WriteString(" via " + p.Via)
	}
	return b.String()
}

// CompiledRule is one lowered rule with its provenance and identity key.
type CompiledRule struct {
	// Key is the rule's stable identity: a content hash of the producing
	// statement and the lowered rule text. Recompiling an unchanged
	// statement yields the same keys, which is how the engine leaves
	// untouched rules in place across recompiles.
	Key  string
	Rule policy.Rule
	Prov Provenance
}

// Delta is the rule-set difference an operation produced (or, for a dry
// run, would produce). Inserted rules carry their assigned IDs only after
// a real apply; revoked rules always carry the ID being revoked.
type Delta struct {
	Insert []policy.Rule `json:"insert,omitempty"`
	Revoke []policy.Rule `json:"revoke,omitempty"`
}

// Empty reports a no-op delta.
func (d Delta) Empty() bool { return len(d.Insert) == 0 && len(d.Revoke) == 0 }

// Lower compiles a document to its flat rule set as of time at: temporal
// statements contribute rules only while their window is active. Every
// statement is validated (group/role resolution, cycles, field conflicts)
// regardless of window state, and all errors are reported together as a
// policytext.ErrorList.
func Lower(doc *policytext.Document, at time.Time) ([]CompiledRule, error) {
	var errs policytext.ErrorList
	errs = append(errs, validateDecls(doc)...)
	var out []CompiledRule
	seen := map[string]bool{}
	for _, rs := range doc.Rules {
		crs, err := lowerStmt(doc, rs, "")
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !rs.Window.Active(at) {
			continue
		}
		for _, cr := range crs {
			if seen[cr.Key] {
				continue
			}
			seen[cr.Key] = true
			out = append(out, cr)
		}
	}
	if len(errs) > 0 {
		return nil, errs
	}
	return out, nil
}

// validateDecls checks every group declaration for unknown nested groups
// and membership cycles, so errors surface even for groups no rule
// references yet.
func validateDecls(doc *policytext.Document) policytext.ErrorList {
	var errs policytext.ErrorList
	for _, g := range doc.Groups {
		if _, err := groupLeaves(doc, g.Name, nil, g.Line); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// stmtKey is the content-based identity of a statement: editing one
// statement never churns the identity (and therefore the installed rules)
// of any other.
func stmtKey(rs policytext.RuleStmt, tmplInstance string) string {
	text := policytext.FormatStmt(rs)
	if tmplInstance != "" {
		return "tmpl|" + tmplInstance + "|" + rs.PDP + "|" + text
	}
	return "stmt|" + rs.PDP + "|" + text
}

// lowerStmt expands one statement into its rules (ignoring the window;
// callers gate on Window.Active). The statement's cross product of source
// and destination expansions is deduplicated by key.
func lowerStmt(doc *policytext.Document, rs policytext.RuleStmt, tmplInstance string) ([]CompiledRule, *policytext.ParseError) {
	sk := stmtKey(rs, tmplInstance)
	stmtText := policytext.FormatStmt(rs)
	srcs, err := expandRef(doc, rs.Src, "src", rs.Line)
	if err != nil {
		return nil, err
	}
	dsts, err := expandRef(doc, rs.Dst, "dst", rs.Line)
	if err != nil {
		return nil, err
	}
	var out []CompiledRule
	seen := map[string]bool{}
	for _, s := range srcs {
		for _, d := range dsts {
			r := policy.Rule{
				PDP:    rs.PDP,
				Action: rs.Action,
				Props:  rs.Props,
				Src:    s.spec,
				Dst:    d.spec,
			}
			prov := Provenance{
				Line:     rs.Line,
				Stmt:     stmtText,
				Template: tmplInstance,
				Via:      joinVia(s.via, d.via),
			}
			r.Origin = prov.String()
			key := sk + "|" + policytext.FormatRule(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, CompiledRule{Key: key, Rule: r, Prov: prov})
		}
	}
	return out, nil
}

func joinVia(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + ", " + b
	}
}

// expansion is one concrete endpoint produced by resolving a reference.
type expansion struct {
	spec policy.EndpointSpec
	via  string
}

// expandRef resolves an endpoint reference: role aliases merge into the
// literal fields; a group reference fans out to one expansion per
// (transitive) literal member. An empty group expands to nothing, so the
// statement matches no flows until members arrive.
func expandRef(doc *policytext.Document, ref policytext.EndpointRef, side string, line int) ([]expansion, *policytext.ParseError) {
	base := ref.Spec
	if ref.Role != "" {
		role, ok := doc.Role(ref.Role)
		if !ok {
			return nil, perrf(line, "unknown role %q", ref.Role)
		}
		merged, conflict := policytext.MergeSpecs(base, role.Spec)
		if conflict != "" {
			return nil, perrf(line, "role %q sets %s already set on the rule", ref.Role, conflict)
		}
		base = merged
	}
	if ref.Group == "" {
		return []expansion{{spec: base}}, nil
	}
	leaves, err := groupLeaves(doc, ref.Group, nil, line)
	if err != nil {
		return nil, err
	}
	exps := make([]expansion, 0, len(leaves))
	for _, m := range leaves {
		merged, conflict := policytext.MergeSpecs(base, m.Spec)
		if conflict != "" {
			return nil, perrf(line, "group %q member %q sets %s already set on the rule", ref.Group, m.String(), conflict)
		}
		exps = append(exps, expansion{
			spec: merged,
			via:  fmt.Sprintf("%s group %s member %q", side, ref.Group, m.String()),
		})
	}
	return exps, nil
}

// groupLeaves flattens a group to its literal members, following nested
// group references and rejecting unknown groups and cycles.
func groupLeaves(doc *policytext.Document, name string, visiting map[string]bool, line int) ([]policytext.Member, *policytext.ParseError) {
	if visiting[name] {
		return nil, perrf(line, "group membership cycle involving %q", name)
	}
	g, ok := doc.Group(name)
	if !ok {
		return nil, perrf(line, "unknown group %q", name)
	}
	if visiting == nil {
		visiting = map[string]bool{}
	}
	visiting[name] = true
	defer delete(visiting, name)
	var leaves []policytext.Member
	for _, m := range g.Members {
		if m.Group == "" {
			leaves = append(leaves, m)
			continue
		}
		nested, err := groupLeaves(doc, m.Group, visiting, line)
		if err != nil {
			return nil, err
		}
		leaves = append(leaves, nested...)
	}
	return leaves, nil
}

// stmtDeps returns the set of group names a statement's lowering depends
// on, transitively: membership churn in any of them re-lowers the
// statement, churn anywhere else leaves it untouched.
func stmtDeps(doc *policytext.Document, rs policytext.RuleStmt) map[string]bool {
	deps := map[string]bool{}
	for _, name := range []string{rs.Src.Group, rs.Dst.Group} {
		if name != "" {
			addGroupDeps(doc, name, deps)
		}
	}
	return deps
}

func addGroupDeps(doc *policytext.Document, name string, deps map[string]bool) {
	if deps[name] {
		return
	}
	deps[name] = true
	g, ok := doc.Group(name)
	if !ok {
		return
	}
	for _, m := range g.Members {
		if m.Group != "" {
			addGroupDeps(doc, m.Group, deps)
		}
	}
}

func perrf(line int, format string, args ...any) *policytext.ParseError {
	return &policytext.ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
