// Package policytext implements DFI's human-readable policy language.
// The paper's first design requirement for policy (§III-A) is that rules
// be written over identifiers administrators understand; this package
// gives dfid a loadable, diffable on-disk form of such policy — not just
// flat allow/deny tuples but the vocabulary operators actually use:
// groups, roles, time windows and parameterized templates, transformed at
// runtime into the flat rule model by internal/policytext/compile.
//
// Grammar ('#' starts a comment; statements are newline-separated, block
// members may also be separated with ';'):
//
//	pdp <name> priority <n>
//	group <name> { <member> ... }        # member: endpoint fields | group <name>
//	role <name> { <endpoint fields> }
//	template <name>(<p1>[, <p2>...]) { <rule> ... }
//	allow|deny [proto tcp|udp|icmp|arp|ip] [from <endpoint>] [to <endpoint>]
//	           [between HH:MM-HH:MM] [days <spec>]
//
// where <endpoint> is one or more of:
//
//	user <name> | host <name> | ip <a.b.c.d> | port <n> | mac <xx:..:xx>
//	| switchport <n> | dpid <n> | group <name> | role <name>
//
// and a days <spec> is a day range or comma list (days mon-fri,
// days sat,sun). Rules and templates are attributed to the most recently
// declared pdp; groups and roles are global. Template bodies are rule
// statements whose $param placeholders are substituted at instantiation
// (e.g. from a sensor event). Examples:
//
//	pdp corp priority 50
//	group eng { user alice; user bob; group contractors }
//	role mail { host mailserver port 143 }
//	template quarantine(h) { deny from host $h }
//	# Engineering may reach IMAP during business hours.
//	allow proto tcp from group eng to role mail between 09:00-17:00 days mon-fri
//	deny from host lobby-kiosk
package policytext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// PDPDecl is one "pdp" statement.
type PDPDecl struct {
	Name     string
	Priority int
	Line     int
}

// Member is one entry of a group: either a literal endpoint fragment
// (Spec) or a reference to another group (Group != "").
type Member struct {
	Spec  policy.EndpointSpec
	Group string
	Line  int
}

// String renders the member in group-block syntax; it is also the
// member's canonical identity for membership add/remove events.
func (m Member) String() string {
	if m.Group != "" {
		return "group " + m.Group
	}
	var b strings.Builder
	writeEndpoint(&b, "", m.Spec)
	return strings.TrimSpace(b.String())
}

// GroupDecl is one "group" block.
type GroupDecl struct {
	Name    string
	Members []Member
	Line    int
}

// RoleDecl is one "role" block: a named endpoint spec usable anywhere an
// endpoint appears.
type RoleDecl struct {
	Name string
	Spec policy.EndpointSpec
	Line int
}

// TemplateDecl is one "template" block. The body is kept as raw token
// lines: $param placeholders are substituted and the lines parsed as rule
// statements at instantiation time.
type TemplateDecl struct {
	Name   string
	Params []string
	// PDP captures the pdp context the template was declared under;
	// instantiated rules are attributed to it.
	PDP  string
	Body []TemplateLine
	Line int
}

// TemplateLine is one raw rule statement of a template body.
type TemplateLine struct {
	Tokens []string
	Line   int
}

// EndpointRef is one end of a rule statement: literal endpoint fields
// plus at most one group or role reference.
type EndpointRef struct {
	Spec  policy.EndpointSpec
	Group string
	Role  string
}

// IsZero reports a fully wildcarded endpoint reference.
func (e EndpointRef) IsZero() bool {
	return e.Group == "" && e.Role == "" && e.Spec == (policy.EndpointSpec{})
}

// Window is a rule's temporal constraint: a clock interval (between) and
// a day-of-week set (days). The zero Window is always active.
type Window struct {
	// HasTime gates StartMin/EndMin (minutes since midnight). A window
	// whose StartMin exceeds EndMin wraps midnight (between 22:00-06:00).
	HasTime  bool
	StartMin int
	EndMin   int
	// Days is a day-of-week bitmask indexed by time.Weekday
	// (bit 0 = Sunday); 0 means every day.
	Days uint8
}

// IsZero reports an unconstrained window.
func (w Window) IsZero() bool { return !w.HasTime && w.Days == 0 }

// Active reports whether the window is open at t (minute granularity,
// evaluated in t's location). The day constraint applies to the current
// day even for clock intervals that wrap midnight.
func (w Window) Active(t time.Time) bool {
	if w.Days != 0 && w.Days&(1<<uint(t.Weekday())) == 0 {
		return false
	}
	if !w.HasTime {
		return true
	}
	m := t.Hour()*60 + t.Minute()
	if w.StartMin <= w.EndMin {
		return m >= w.StartMin && m < w.EndMin
	}
	return m >= w.StartMin || m < w.EndMin
}

// NextTransition returns the earliest instant strictly after t at which
// Active changes value, or ok=false when the window never transitions
// (e.g. a pure day mask covering every day). Transitions happen only at
// day boundaries and the window's start/end minutes, so scanning those
// candidates over the next eight days is exhaustive.
func (w Window) NextTransition(t time.Time) (at time.Time, ok bool) {
	was := w.Active(t)
	var candidates []time.Time
	for d := 0; d <= 8; d++ {
		day := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location()).AddDate(0, 0, d)
		candidates = append(candidates, day)
		if w.HasTime {
			candidates = append(candidates,
				day.Add(time.Duration(w.StartMin)*time.Minute),
				day.Add(time.Duration(w.EndMin)*time.Minute))
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Before(candidates[j]) })
	for _, c := range candidates {
		if c.After(t) && w.Active(c) != was {
			return c, true
		}
	}
	return time.Time{}, false
}

// String renders the window's rule-statement clauses ("" when zero).
func (w Window) String() string {
	var parts []string
	if w.HasTime {
		parts = append(parts, fmt.Sprintf("between %02d:%02d-%02d:%02d",
			w.StartMin/60, w.StartMin%60, w.EndMin/60, w.EndMin%60))
	}
	if w.Days != 0 {
		parts = append(parts, "days "+daysString(w.Days))
	}
	return strings.Join(parts, " ")
}

// RuleStmt is one allow/deny statement prior to lowering: endpoints may
// reference groups and roles, and a temporal window may gate the rule.
type RuleStmt struct {
	PDP    string
	Action policy.Action
	Props  policy.FlowProperties
	Src    EndpointRef
	Dst    EndpointRef
	Window Window
	Line   int
}

// Document is a parsed policy file.
type Document struct {
	PDPs      []PDPDecl
	Groups    []GroupDecl
	Roles     []RoleDecl
	Templates []TemplateDecl
	Rules     []RuleStmt
}

// Group returns the named group declaration.
func (d *Document) Group(name string) (GroupDecl, bool) {
	for _, g := range d.Groups {
		if g.Name == name {
			return g, true
		}
	}
	return GroupDecl{}, false
}

// Role returns the named role declaration.
func (d *Document) Role(name string) (RoleDecl, bool) {
	for _, r := range d.Roles {
		if r.Name == name {
			return r, true
		}
	}
	return RoleDecl{}, false
}

// Template returns the named template declaration.
func (d *Document) Template(name string) (TemplateDecl, bool) {
	for _, t := range d.Templates {
		if t.Name == name {
			return t, true
		}
	}
	return TemplateDecl{}, false
}

// ParseError reports a syntax or compile error with its line number.
// Line numbers are 1-based: the first line of the source is line 1,
// matching what editors and the dfictl validate output display.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("policy line %d: %s", e.Line, e.Msg)
}

// ErrorList collects every error found in a document, in line order.
// Parse reports all errors it can recover to — not just the first — so
// one validate run surfaces every broken statement.
type ErrorList []*ParseError

// Error implements error, joining the individual messages.
func (l ErrorList) Error() string {
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// Lines returns the (1-based) line numbers of the list's errors.
func (l ErrorList) Lines() []int {
	lines := make([]int, len(l))
	for i, e := range l {
		lines[i] = e.Line
	}
	return lines
}

// AsErrorList extracts the individual parse errors from an error returned
// by Parse (or the compile stage). A non-policy error becomes a
// single-element list with line 0.
func AsErrorList(err error) ErrorList {
	switch e := err.(type) {
	case nil:
		return nil
	case ErrorList:
		return e
	case *ParseError:
		return ErrorList{e}
	default:
		return ErrorList{{Line: 0, Msg: err.Error()}}
	}
}

func errf(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// parser carries the per-document parse state: the current pdp context
// and the open block, if any.
type parser struct {
	doc  Document
	errs ErrorList

	currentPDP string
	pdpSeen    map[string]bool
	nameSeen   map[string]int // group/role/template name -> decl line

	// Open block state; kind is "" at top level.
	blockKind  string // "group" | "role" | "template"
	blockLine  int
	curGroup   GroupDecl
	curRole    RoleDecl // accumulated via roleTokens
	roleTokens []string
	curTmpl    TemplateDecl
}

// Parse reads a policy document, reporting every recoverable error it
// finds (the returned error is an ErrorList when parsing failed).
func Parse(r io.Reader) (*Document, error) {
	p := &parser{pdpSeen: map[string]bool{}, nameSeen: map[string]int{}}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		p.line(lineNo, tokenize(scanner.Text()))
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	if p.blockKind != "" {
		p.errs = append(p.errs, errf(p.blockLine, "unclosed %s block", p.blockKind))
	}
	if len(p.errs) > 0 {
		return nil, p.errs
	}
	return &p.doc, nil
}

// tokenize splits one source line into tokens, detaching the structural
// characters {}();, so "group eng {user alice; user bob}" and the spaced
// form scan identically.
func tokenize(line string) []string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	var b strings.Builder
	for _, r := range line {
		switch r {
		case '{', '}', '(', ')', ';', ',':
			b.WriteByte(' ')
			b.WriteRune(r)
			b.WriteByte(' ')
		default:
			b.WriteRune(r)
		}
	}
	return strings.Fields(b.String())
}

// line consumes one line's tokens, dispatching on block state. Statement
// errors are recorded and the rest of the line skipped; block state is
// kept consistent so later lines still parse.
func (p *parser) line(lineNo int, tokens []string) {
	for len(tokens) > 0 {
		switch p.blockKind {
		case "group":
			tokens = p.groupTokens(lineNo, tokens)
		case "role":
			tokens = p.roleBlockTokens(lineNo, tokens)
		case "template":
			tokens = p.templateTokens(lineNo, tokens)
		default:
			tokens = p.topLevel(lineNo, tokens)
		}
	}
}

// fail records an error and discards the rest of the line.
func (p *parser) fail(err *ParseError) []string {
	p.errs = append(p.errs, err)
	return nil
}

func (p *parser) topLevel(lineNo int, tokens []string) []string {
	switch tokens[0] {
	case "pdp":
		// pdp <name> priority <n>
		if len(tokens) != 4 || tokens[2] != "priority" {
			return p.fail(errf(lineNo, "want: pdp <name> priority <n>"))
		}
		prio, err := strconv.Atoi(tokens[3])
		if err != nil {
			return p.fail(errf(lineNo, "bad priority %q", tokens[3]))
		}
		if p.pdpSeen[tokens[1]] {
			return p.fail(errf(lineNo, "pdp %q declared twice", tokens[1]))
		}
		p.pdpSeen[tokens[1]] = true
		p.doc.PDPs = append(p.doc.PDPs, PDPDecl{Name: tokens[1], Priority: prio, Line: lineNo})
		p.currentPDP = tokens[1]
		return nil

	case "group":
		if len(tokens) < 3 || tokens[2] != "{" {
			return p.fail(errf(lineNo, "want: group <name> { <members> }"))
		}
		if !p.declareName(lineNo, "group", tokens[1]) {
			return nil
		}
		p.blockKind, p.blockLine = "group", lineNo
		p.curGroup = GroupDecl{Name: tokens[1], Line: lineNo}
		return tokens[3:]

	case "role":
		if len(tokens) < 3 || tokens[2] != "{" {
			return p.fail(errf(lineNo, "want: role <name> { <endpoint fields> }"))
		}
		if !p.declareName(lineNo, "role", tokens[1]) {
			return nil
		}
		p.blockKind, p.blockLine = "role", lineNo
		p.curRole = RoleDecl{Name: tokens[1], Line: lineNo}
		p.roleTokens = nil
		return tokens[3:]

	case "template":
		return p.templateDecl(lineNo, tokens)

	case "allow", "deny":
		if p.currentPDP == "" {
			return p.fail(errf(lineNo, "%s before any pdp declaration", tokens[0]))
		}
		stmt, err := ParseRuleStmt(tokens, lineNo)
		if err != nil {
			return p.fail(err)
		}
		stmt.PDP = p.currentPDP
		p.doc.Rules = append(p.doc.Rules, stmt)
		return nil

	case "}":
		return p.fail(errf(lineNo, "unexpected %q outside a block", "}"))

	default:
		return p.fail(errf(lineNo, "unknown statement %q", tokens[0]))
	}
}

// declareName enforces one namespace across groups, roles and templates,
// so an endpoint reference is never ambiguous.
func (p *parser) declareName(lineNo int, kind, name string) bool {
	if prev, dup := p.nameSeen[name]; dup {
		p.errs = append(p.errs, errf(lineNo, "%s %q conflicts with declaration on line %d", kind, name, prev))
		return false
	}
	p.nameSeen[name] = lineNo
	return true
}

// templateDecl parses "template <name> ( p1 , p2 ) {".
func (p *parser) templateDecl(lineNo int, tokens []string) []string {
	rest := tokens[1:]
	if len(rest) < 2 || rest[1] != "(" {
		return p.fail(errf(lineNo, "want: template <name>(<params>) { <rules> }"))
	}
	name := rest[0]
	rest = rest[2:]
	var params []string
	for len(rest) > 0 && rest[0] != ")" {
		if rest[0] == "," {
			rest = rest[1:]
			continue
		}
		params = append(params, rest[0])
		rest = rest[1:]
	}
	if len(rest) == 0 || len(rest) < 2 || rest[1] != "{" {
		return p.fail(errf(lineNo, "want: template <name>(<params>) { <rules> }"))
	}
	if len(params) == 0 {
		return p.fail(errf(lineNo, "template %q has no parameters", name))
	}
	if p.currentPDP == "" {
		return p.fail(errf(lineNo, "template before any pdp declaration"))
	}
	if !p.declareName(lineNo, "template", name) {
		return nil
	}
	p.blockKind, p.blockLine = "template", lineNo
	p.curTmpl = TemplateDecl{Name: name, Params: params, PDP: p.currentPDP, Line: lineNo}
	return rest[2:]
}

// groupTokens consumes group members until ';', '}' or end of line.
func (p *parser) groupTokens(lineNo int, tokens []string) []string {
	switch tokens[0] {
	case ";":
		return tokens[1:]
	case "}":
		p.doc.Groups = append(p.doc.Groups, p.curGroup)
		p.blockKind = ""
		return tokens[1:]
	}
	// One member: "group <name>" or literal endpoint fields.
	end := len(tokens)
	for i, tok := range tokens {
		if tok == ";" || tok == "}" {
			end = i
			break
		}
	}
	member, err := parseMember(tokens[:end], lineNo)
	if err != nil {
		p.errs = append(p.errs, err)
	} else {
		p.curGroup.Members = append(p.curGroup.Members, member)
	}
	return tokens[end:]
}

// ParseMember parses one group-member declaration ("user alice",
// "group contractors", "host db ip 10.0.0.5") as membership events
// deliver them.
func ParseMember(text string) (Member, error) {
	tokens := tokenize(text)
	if len(tokens) == 0 {
		return Member{}, errf(0, "empty group member")
	}
	m, err := parseMember(tokens, 0)
	if err != nil {
		return Member{}, err
	}
	return m, nil
}

func parseMember(tokens []string, lineNo int) (Member, *ParseError) {
	if tokens[0] == "group" {
		if len(tokens) != 2 {
			return Member{}, errf(lineNo, "want: group <name>")
		}
		return Member{Group: tokens[1], Line: lineNo}, nil
	}
	spec, n, err := parseEndpoint(tokens, lineNo)
	if err != nil {
		return Member{}, err
	}
	if n != len(tokens) {
		return Member{}, errf(lineNo, "unexpected token %q in group member", tokens[n])
	}
	return Member{Spec: spec, Line: lineNo}, nil
}

// roleBlockTokens accumulates the role's endpoint fields until '}'.
func (p *parser) roleBlockTokens(lineNo int, tokens []string) []string {
	for i, tok := range tokens {
		if tok != "}" {
			continue
		}
		p.roleTokens = append(p.roleTokens, tokens[:i]...)
		spec, n, err := parseEndpoint(p.roleTokens, p.blockLine)
		switch {
		case err != nil:
			p.errs = append(p.errs, err)
		case n != len(p.roleTokens):
			p.errs = append(p.errs, errf(p.blockLine, "unexpected token %q in role %q", p.roleTokens[n], p.curRole.Name))
		default:
			p.curRole.Spec = spec
			p.doc.Roles = append(p.doc.Roles, p.curRole)
		}
		p.blockKind = ""
		return tokens[i+1:]
	}
	p.roleTokens = append(p.roleTokens, tokens...)
	return nil
}

// templateTokens consumes template-body rule lines until '}'. Bodies are
// stored raw (substituted and parsed at instantiation); only statement
// shape and parameter references are checked here.
func (p *parser) templateTokens(lineNo int, tokens []string) []string {
	if tokens[0] == "}" {
		p.doc.Templates = append(p.doc.Templates, p.curTmpl)
		p.blockKind = ""
		return tokens[1:]
	}
	if tokens[0] == ";" {
		return tokens[1:]
	}
	end := len(tokens)
	for i, tok := range tokens {
		if tok == "}" || tok == ";" {
			end = i
			break
		}
	}
	body := tokens[:end]
	if body[0] != "allow" && body[0] != "deny" {
		p.errs = append(p.errs, errf(lineNo, "template body must be allow/deny rules, got %q", body[0]))
		return tokens[end:]
	}
	declared := map[string]bool{}
	for _, param := range p.curTmpl.Params {
		declared[param] = true
	}
	for _, tok := range body {
		if strings.HasPrefix(tok, "$") && !declared[tok[1:]] {
			p.errs = append(p.errs, errf(lineNo, "template %q references undeclared parameter %s", p.curTmpl.Name, tok))
		}
	}
	p.curTmpl.Body = append(p.curTmpl.Body, TemplateLine{Tokens: body, Line: lineNo})
	return tokens[end:]
}

// ParseRuleStmt parses one allow/deny statement's tokens (PDP left for
// the caller to attribute). Exported for the compile stage, which parses
// template bodies after parameter substitution.
func ParseRuleStmt(tokens []string, line int) (RuleStmt, *ParseError) {
	stmt := RuleStmt{Line: line}
	switch tokens[0] {
	case "allow":
		stmt.Action = policy.ActionAllow
	case "deny":
		stmt.Action = policy.ActionDeny
	default:
		return stmt, errf(line, "want allow or deny, got %q", tokens[0])
	}
	rest := tokens[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "proto":
			if len(rest) < 2 {
				return stmt, errf(line, "proto needs a value")
			}
			props, err := protoProps(rest[1], line)
			if err != nil {
				return stmt, err
			}
			stmt.Props = props
			rest = rest[2:]
		case "from":
			ref, n, err := parseEndpointRef(rest[1:], line)
			if err != nil {
				return stmt, err
			}
			stmt.Src = ref
			rest = rest[1+n:]
		case "to":
			ref, n, err := parseEndpointRef(rest[1:], line)
			if err != nil {
				return stmt, err
			}
			stmt.Dst = ref
			rest = rest[1+n:]
		case "between":
			if stmt.Window.HasTime {
				return stmt, errf(line, "duplicate between clause")
			}
			if len(rest) < 2 {
				return stmt, errf(line, "between needs HH:MM-HH:MM")
			}
			start, end, err := parseClockRange(rest[1], line)
			if err != nil {
				return stmt, err
			}
			stmt.Window.HasTime = true
			stmt.Window.StartMin, stmt.Window.EndMin = start, end
			rest = rest[2:]
		case "days":
			if stmt.Window.Days != 0 {
				return stmt, errf(line, "duplicate days clause")
			}
			mask, n, err := parseDays(rest[1:], line)
			if err != nil {
				return stmt, err
			}
			stmt.Window.Days = mask
			rest = rest[1+n:]
		default:
			return stmt, errf(line, "unexpected token %q", rest[0])
		}
	}
	return stmt, nil
}

func parseClockRange(s string, line int) (start, end int, err *ParseError) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, errf(line, "bad time range %q (want HH:MM-HH:MM)", s)
	}
	parseClock := func(c string) (int, bool) {
		h, m, ok := strings.Cut(c, ":")
		if !ok {
			return 0, false
		}
		hv, err1 := strconv.Atoi(h)
		mv, err2 := strconv.Atoi(m)
		if err1 != nil || err2 != nil || hv < 0 || hv > 23 || mv < 0 || mv > 59 {
			return 0, false
		}
		return hv*60 + mv, true
	}
	start, okLo := parseClock(lo)
	end, okHi := parseClock(hi)
	if !okLo || !okHi {
		return 0, 0, errf(line, "bad time range %q (want HH:MM-HH:MM)", s)
	}
	if start == end {
		return 0, 0, errf(line, "empty time range %q", s)
	}
	return start, end, nil
}

var dayNames = map[string]time.Weekday{
	"sun": time.Sunday, "mon": time.Monday, "tue": time.Tuesday,
	"wed": time.Wednesday, "thu": time.Thursday, "fri": time.Friday,
	"sat": time.Saturday,
}

var dayOrder = [7]string{"sun", "mon", "tue", "wed", "thu", "fri", "sat"}

// parseDays consumes day names, ranges and commas (mon-fri / sat,sun),
// returning the bitmask and tokens consumed.
func parseDays(tokens []string, line int) (mask uint8, consumed int, err *ParseError) {
	for consumed < len(tokens) {
		tok := tokens[consumed]
		if tok == "," {
			consumed++
			continue
		}
		lo, hi, isRange := strings.Cut(tok, "-")
		if isRange {
			from, okLo := dayNames[lo]
			to, okHi := dayNames[hi]
			if !okLo || !okHi {
				if consumed == 0 {
					return 0, 0, errf(line, "bad day range %q", tok)
				}
				break
			}
			for d := from; ; d = (d + 1) % 7 {
				mask |= 1 << uint(d)
				if d == to {
					break
				}
			}
			consumed++
			continue
		}
		d, ok := dayNames[tok]
		if !ok {
			break
		}
		mask |= 1 << uint(d)
		consumed++
	}
	if consumed == 0 {
		return 0, 0, errf(line, "days needs day names (mon-fri, sat,sun)")
	}
	return mask, consumed, nil
}

// daysString renders a day mask canonically: a single contiguous range as
// lo-hi, anything else as a comma list.
func daysString(mask uint8) string {
	if mask == 0 {
		return ""
	}
	// Detect one contiguous run (possibly wrapping): exactly one position
	// where a set bit follows an unset bit.
	starts := 0
	start := -1
	for d := 0; d < 7; d++ {
		prev := (d + 6) % 7
		if mask&(1<<uint(d)) != 0 && mask&(1<<uint(prev)) == 0 {
			starts++
			start = d
		}
	}
	if starts == 1 && mask != 0x7f {
		end := start
		for mask&(1<<uint((end+1)%7)) != 0 {
			end = (end + 1) % 7
		}
		if start == end {
			return dayOrder[start]
		}
		return dayOrder[start] + "-" + dayOrder[end]
	}
	if mask == 0x7f {
		return "sun-sat"
	}
	var parts []string
	for d := 0; d < 7; d++ {
		if mask&(1<<uint(d)) != 0 {
			parts = append(parts, dayOrder[d])
		}
	}
	return strings.Join(parts, ",")
}

func protoProps(name string, line int) (policy.FlowProperties, *ParseError) {
	ipv4 := netpkt.EtherTypeIPv4
	arp := netpkt.EtherTypeARP
	switch name {
	case "tcp":
		p := netpkt.ProtoTCP
		return policy.FlowProperties{EtherType: &ipv4, IPProto: &p}, nil
	case "udp":
		p := netpkt.ProtoUDP
		return policy.FlowProperties{EtherType: &ipv4, IPProto: &p}, nil
	case "icmp":
		p := netpkt.ProtoICMP
		return policy.FlowProperties{EtherType: &ipv4, IPProto: &p}, nil
	case "ip":
		return policy.FlowProperties{EtherType: &ipv4}, nil
	case "arp":
		return policy.FlowProperties{EtherType: &arp}, nil
	default:
		return policy.FlowProperties{}, errf(line, "unknown proto %q", name)
	}
}

// endpoint field keywords.
var endpointKeywords = map[string]bool{
	"user": true, "host": true, "ip": true, "port": true,
	"mac": true, "switchport": true, "dpid": true,
}

// parseEndpointRef consumes endpoint fields plus group/role references
// until a non-endpoint token.
func parseEndpointRef(tokens []string, line int) (EndpointRef, int, *ParseError) {
	var ref EndpointRef
	consumed := 0
	for len(tokens) >= 2 && (endpointKeywords[tokens[0]] || tokens[0] == "group" || tokens[0] == "role") {
		switch tokens[0] {
		case "group", "role":
			if ref.Group != "" || ref.Role != "" {
				return ref, 0, errf(line, "endpoint already references %s", refName(ref))
			}
			if tokens[0] == "group" {
				ref.Group = tokens[1]
			} else {
				ref.Role = tokens[1]
			}
			tokens = tokens[2:]
			consumed += 2
		default:
			spec, n, err := parseEndpoint(tokens, line)
			if err != nil {
				return ref, 0, err
			}
			merged, conflict := MergeSpecs(ref.Spec, spec)
			if conflict != "" {
				return ref, 0, errf(line, "duplicate %s in endpoint", conflict)
			}
			ref.Spec = merged
			tokens = tokens[n:]
			consumed += n
		}
	}
	if consumed == 0 {
		got := "nothing"
		if len(tokens) > 0 {
			got = fmt.Sprintf("%q", tokens[0])
		}
		return ref, 0, errf(line, "expected endpoint fields, got %s", got)
	}
	return ref, consumed, nil
}

func refName(ref EndpointRef) string {
	if ref.Group != "" {
		return "group " + ref.Group
	}
	return "role " + ref.Role
}

// MergeSpecs overlays b's set fields onto a, reporting the first field
// both sides set differently ("" when compatible). The compile stage uses
// it to combine group-member and role specs with a rule's literal fields.
func MergeSpecs(a, b policy.EndpointSpec) (merged policy.EndpointSpec, conflict string) {
	merged = a
	if b.User != "" {
		if a.User != "" && a.User != b.User {
			return a, "user"
		}
		merged.User = b.User
	}
	if b.Host != "" {
		if a.Host != "" && a.Host != b.Host {
			return a, "host"
		}
		merged.Host = b.Host
	}
	if b.IP != nil {
		if a.IP != nil && *a.IP != *b.IP {
			return a, "ip"
		}
		merged.IP = b.IP
	}
	if b.Port != nil {
		if a.Port != nil && *a.Port != *b.Port {
			return a, "port"
		}
		merged.Port = b.Port
	}
	if b.MAC != nil {
		if a.MAC != nil && *a.MAC != *b.MAC {
			return a, "mac"
		}
		merged.MAC = b.MAC
	}
	if b.SwitchPort != nil {
		if a.SwitchPort != nil && *a.SwitchPort != *b.SwitchPort {
			return a, "switchport"
		}
		merged.SwitchPort = b.SwitchPort
	}
	if b.DPID != nil {
		if a.DPID != nil && *a.DPID != *b.DPID {
			return a, "dpid"
		}
		merged.DPID = b.DPID
	}
	return merged, ""
}

// parseEndpoint consumes literal key/value pairs until a non-endpoint
// token, returning the spec and the number of tokens consumed.
func parseEndpoint(tokens []string, line int) (policy.EndpointSpec, int, *ParseError) {
	var spec policy.EndpointSpec
	consumed := 0
	seen := map[string]bool{}
	for len(tokens) >= 2 && endpointKeywords[tokens[0]] {
		key, val := tokens[0], tokens[1]
		if seen[key] {
			return spec, 0, errf(line, "duplicate %s in endpoint", key)
		}
		seen[key] = true
		switch key {
		case "user":
			spec.User = val
		case "host":
			spec.Host = val
		case "ip":
			ip, err := netpkt.ParseIPv4(val)
			if err != nil {
				return spec, 0, errf(line, "bad ip %q", val)
			}
			spec.IP = &ip
		case "port":
			p, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return spec, 0, errf(line, "bad port %q", val)
			}
			port := uint16(p)
			spec.Port = &port
		case "mac":
			mac, err := netpkt.ParseMAC(val)
			if err != nil {
				return spec, 0, errf(line, "bad mac %q", val)
			}
			spec.MAC = &mac
		case "switchport":
			p, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return spec, 0, errf(line, "bad switchport %q", val)
			}
			sp := uint32(p)
			spec.SwitchPort = &sp
		case "dpid":
			d, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return spec, 0, errf(line, "bad dpid %q", val)
			}
			spec.DPID = &d
		}
		tokens = tokens[2:]
		consumed += 2
	}
	if consumed == 0 {
		got := "nothing"
		if len(tokens) > 0 {
			got = fmt.Sprintf("%q", tokens[0])
		}
		return spec, 0, errf(line, "expected endpoint fields, got %s", got)
	}
	return spec, consumed, nil
}

// Format renders a document back to canonical textual form: groups and
// roles first, then each pdp followed by its templates and rules.
// Parse(Format(doc)) reproduces the document's structure (line numbers
// aside), which is what GET /v1/policy serves.
func Format(doc *Document) string {
	var b strings.Builder
	for _, g := range doc.Groups {
		fmt.Fprintf(&b, "group %s {\n", g.Name)
		for _, m := range g.Members {
			fmt.Fprintf(&b, "  %s\n", m.String())
		}
		b.WriteString("}\n")
	}
	for _, r := range doc.Roles {
		var spec strings.Builder
		writeEndpoint(&spec, "", r.Spec)
		fmt.Fprintf(&b, "role %s {%s }\n", r.Name, spec.String())
	}
	for i, decl := range doc.PDPs {
		if i > 0 || len(doc.Groups) > 0 || len(doc.Roles) > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "pdp %s priority %d\n", decl.Name, decl.Priority)
		for _, t := range doc.Templates {
			if t.PDP != decl.Name {
				continue
			}
			fmt.Fprintf(&b, "template %s(%s) {\n", t.Name, strings.Join(t.Params, ", "))
			for _, line := range t.Body {
				fmt.Fprintf(&b, "  %s\n", strings.Join(line.Tokens, " "))
			}
			b.WriteString("}\n")
		}
		for _, r := range doc.Rules {
			if r.PDP != decl.Name {
				continue
			}
			b.WriteString(FormatStmt(r))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatStmt renders one rule statement as a policy-file line (without
// the pdp context).
func FormatStmt(s RuleStmt) string {
	var b strings.Builder
	if s.Action == policy.ActionAllow {
		b.WriteString("allow")
	} else {
		b.WriteString("deny")
	}
	writeProto(&b, s.Props)
	writeEndpointRef(&b, " from", s.Src)
	writeEndpointRef(&b, " to", s.Dst)
	if w := s.Window.String(); w != "" {
		b.WriteString(" " + w)
	}
	return b.String()
}

func writeEndpointRef(b *strings.Builder, prefix string, ref EndpointRef) {
	var parts []string
	if ref.Group != "" {
		parts = append(parts, "group "+ref.Group)
	}
	if ref.Role != "" {
		parts = append(parts, "role "+ref.Role)
	}
	var spec strings.Builder
	writeEndpoint(&spec, "", ref.Spec)
	if s := strings.TrimSpace(spec.String()); s != "" {
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return
	}
	b.WriteString(prefix + " " + strings.Join(parts, " "))
}

func writeProto(b *strings.Builder, props policy.FlowProperties) {
	if props.EtherType == nil {
		return
	}
	switch {
	case *props.EtherType == netpkt.EtherTypeARP:
		b.WriteString(" proto arp")
	case props.IPProto == nil:
		b.WriteString(" proto ip")
	case *props.IPProto == netpkt.ProtoTCP:
		b.WriteString(" proto tcp")
	case *props.IPProto == netpkt.ProtoUDP:
		b.WriteString(" proto udp")
	case *props.IPProto == netpkt.ProtoICMP:
		b.WriteString(" proto icmp")
	}
}

// FormatRule renders one flat (lowered) rule as a policy-file statement.
func FormatRule(r policy.Rule) string {
	var b strings.Builder
	if r.Action == policy.ActionAllow {
		b.WriteString("allow")
	} else {
		b.WriteString("deny")
	}
	writeProto(&b, r.Props)
	writeEndpoint(&b, " from", r.Src)
	writeEndpoint(&b, " to", r.Dst)
	return b.String()
}

func writeEndpoint(b *strings.Builder, prefix string, e policy.EndpointSpec) {
	var parts []string
	if e.User != "" {
		parts = append(parts, "user "+e.User)
	}
	if e.Host != "" {
		parts = append(parts, "host "+e.Host)
	}
	if e.IP != nil {
		parts = append(parts, "ip "+e.IP.String())
	}
	if e.Port != nil {
		parts = append(parts, fmt.Sprintf("port %d", *e.Port))
	}
	if e.MAC != nil {
		parts = append(parts, "mac "+e.MAC.String())
	}
	if e.SwitchPort != nil {
		parts = append(parts, fmt.Sprintf("switchport %d", *e.SwitchPort))
	}
	if e.DPID != nil {
		parts = append(parts, fmt.Sprintf("dpid %#x", *e.DPID))
	}
	if len(parts) == 0 {
		return
	}
	b.WriteString(prefix + " " + strings.Join(parts, " "))
}
