// Package policytext implements DFI's human-readable policy file format.
// The paper's first design requirement for policy (§III-A) is that rules
// be written over identifiers administrators understand; this package
// gives dfid a loadable, diffable on-disk form of such rules.
//
// Grammar (one statement per line; '#' starts a comment):
//
//	pdp <name> priority <n>
//	allow|deny [proto tcp|udp|icmp|arp|ip] [from <endpoint>] [to <endpoint>]
//
// where <endpoint> is one or more of:
//
//	user <name> | host <name> | ip <a.b.c.d> | port <n> | mac <xx:..:xx>
//	| switchport <n> | dpid <n>
//
// Rules are attributed to the most recently declared pdp. Examples:
//
//	pdp corp priority 50
//	# Alice's machines may reach the mail server's IMAP port.
//	allow proto tcp from user alice to host mail port 143
//	deny from host lobby-kiosk
package policytext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// PDPDecl is one "pdp" statement.
type PDPDecl struct {
	Name     string
	Priority int
	Line     int
}

// Document is a parsed policy file.
type Document struct {
	PDPs  []PDPDecl
	Rules []policy.Rule // PDP set, Priority unset (assigned at insert)
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("policy line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a policy document.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	scanner := bufio.NewScanner(r)
	currentPDP := ""
	declared := map[string]bool{}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "pdp":
			decl, err := parsePDP(fields, lineNo)
			if err != nil {
				return nil, err
			}
			if declared[decl.Name] {
				return nil, errf(lineNo, "pdp %q declared twice", decl.Name)
			}
			declared[decl.Name] = true
			doc.PDPs = append(doc.PDPs, decl)
			currentPDP = decl.Name
		case "allow", "deny":
			if currentPDP == "" {
				return nil, errf(lineNo, "%s before any pdp declaration", fields[0])
			}
			rule, err := parseRule(fields, lineNo)
			if err != nil {
				return nil, err
			}
			rule.PDP = currentPDP
			doc.Rules = append(doc.Rules, rule)
		default:
			return nil, errf(lineNo, "unknown statement %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	return doc, nil
}

func parsePDP(fields []string, line int) (PDPDecl, error) {
	// pdp <name> priority <n>
	if len(fields) != 4 || fields[2] != "priority" {
		return PDPDecl{}, errf(line, "want: pdp <name> priority <n>")
	}
	prio, err := strconv.Atoi(fields[3])
	if err != nil {
		return PDPDecl{}, errf(line, "bad priority %q", fields[3])
	}
	return PDPDecl{Name: fields[1], Priority: prio, Line: line}, nil
}

func parseRule(fields []string, line int) (policy.Rule, error) {
	var r policy.Rule
	switch fields[0] {
	case "allow":
		r.Action = policy.ActionAllow
	case "deny":
		r.Action = policy.ActionDeny
	}
	rest := fields[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "proto":
			if len(rest) < 2 {
				return r, errf(line, "proto needs a value")
			}
			props, err := protoProps(rest[1], line)
			if err != nil {
				return r, err
			}
			r.Props = props
			rest = rest[2:]
		case "from":
			spec, n, err := parseEndpoint(rest[1:], line)
			if err != nil {
				return r, err
			}
			r.Src = spec
			rest = rest[1+n:]
		case "to":
			spec, n, err := parseEndpoint(rest[1:], line)
			if err != nil {
				return r, err
			}
			r.Dst = spec
			rest = rest[1+n:]
		default:
			return r, errf(line, "unexpected token %q", rest[0])
		}
	}
	return r, nil
}

func protoProps(name string, line int) (policy.FlowProperties, error) {
	ipv4 := netpkt.EtherTypeIPv4
	arp := netpkt.EtherTypeARP
	switch name {
	case "tcp":
		p := netpkt.ProtoTCP
		return policy.FlowProperties{EtherType: &ipv4, IPProto: &p}, nil
	case "udp":
		p := netpkt.ProtoUDP
		return policy.FlowProperties{EtherType: &ipv4, IPProto: &p}, nil
	case "icmp":
		p := netpkt.ProtoICMP
		return policy.FlowProperties{EtherType: &ipv4, IPProto: &p}, nil
	case "ip":
		return policy.FlowProperties{EtherType: &ipv4}, nil
	case "arp":
		return policy.FlowProperties{EtherType: &arp}, nil
	default:
		return policy.FlowProperties{}, errf(line, "unknown proto %q", name)
	}
}

// endpoint field keywords.
var endpointKeywords = map[string]bool{
	"user": true, "host": true, "ip": true, "port": true,
	"mac": true, "switchport": true, "dpid": true,
}

// parseEndpoint consumes key/value pairs until a non-endpoint token,
// returning the spec and the number of tokens consumed.
func parseEndpoint(tokens []string, line int) (policy.EndpointSpec, int, error) {
	var spec policy.EndpointSpec
	consumed := 0
	seen := map[string]bool{}
	for len(tokens) >= 2 && endpointKeywords[tokens[0]] {
		key, val := tokens[0], tokens[1]
		if seen[key] {
			return spec, 0, errf(line, "duplicate %s in endpoint", key)
		}
		seen[key] = true
		switch key {
		case "user":
			spec.User = val
		case "host":
			spec.Host = val
		case "ip":
			ip, err := netpkt.ParseIPv4(val)
			if err != nil {
				return spec, 0, errf(line, "bad ip %q", val)
			}
			spec.IP = &ip
		case "port":
			p, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return spec, 0, errf(line, "bad port %q", val)
			}
			port := uint16(p)
			spec.Port = &port
		case "mac":
			mac, err := netpkt.ParseMAC(val)
			if err != nil {
				return spec, 0, errf(line, "bad mac %q", val)
			}
			spec.MAC = &mac
		case "switchport":
			p, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return spec, 0, errf(line, "bad switchport %q", val)
			}
			sp := uint32(p)
			spec.SwitchPort = &sp
		case "dpid":
			d, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return spec, 0, errf(line, "bad dpid %q", val)
			}
			spec.DPID = &d
		}
		tokens = tokens[2:]
		consumed += 2
	}
	if consumed == 0 {
		got := "nothing"
		if len(tokens) > 0 {
			got = fmt.Sprintf("%q", tokens[0])
		}
		return spec, 0, errf(line, "expected endpoint fields, got %s", got)
	}
	return spec, consumed, nil
}

// Apply registers the document's PDPs and inserts its rules into pm,
// returning the inserted rule ids.
func Apply(pm *policy.Manager, doc *Document) ([]policy.RuleID, error) {
	for _, decl := range doc.PDPs {
		if err := pm.RegisterPDP(decl.Name, decl.Priority); err != nil {
			return nil, fmt.Errorf("policy line %d: %w", decl.Line, err)
		}
	}
	ids := make([]policy.RuleID, 0, len(doc.Rules))
	for _, r := range doc.Rules {
		id, err := pm.Insert(r)
		if err != nil {
			return ids, fmt.Errorf("policy: insert %s: %w", r.String(), err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Format renders a document back to its textual form (normalized).
func Format(doc *Document) string {
	var b strings.Builder
	byPDP := map[string][]policy.Rule{}
	for _, r := range doc.Rules {
		byPDP[r.PDP] = append(byPDP[r.PDP], r)
	}
	for i, decl := range doc.PDPs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "pdp %s priority %d\n", decl.Name, decl.Priority)
		for _, r := range byPDP[decl.Name] {
			b.WriteString(FormatRule(r))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatRule renders one rule as a policy-file statement.
func FormatRule(r policy.Rule) string {
	var b strings.Builder
	if r.Action == policy.ActionAllow {
		b.WriteString("allow")
	} else {
		b.WriteString("deny")
	}
	if r.Props.EtherType != nil {
		switch {
		case *r.Props.EtherType == netpkt.EtherTypeARP:
			b.WriteString(" proto arp")
		case r.Props.IPProto == nil:
			b.WriteString(" proto ip")
		case *r.Props.IPProto == netpkt.ProtoTCP:
			b.WriteString(" proto tcp")
		case *r.Props.IPProto == netpkt.ProtoUDP:
			b.WriteString(" proto udp")
		case *r.Props.IPProto == netpkt.ProtoICMP:
			b.WriteString(" proto icmp")
		}
	}
	writeEndpoint(&b, " from", r.Src)
	writeEndpoint(&b, " to", r.Dst)
	return b.String()
}

func writeEndpoint(b *strings.Builder, prefix string, e policy.EndpointSpec) {
	var parts []string
	if e.User != "" {
		parts = append(parts, "user "+e.User)
	}
	if e.Host != "" {
		parts = append(parts, "host "+e.Host)
	}
	if e.IP != nil {
		parts = append(parts, "ip "+e.IP.String())
	}
	if e.Port != nil {
		parts = append(parts, fmt.Sprintf("port %d", *e.Port))
	}
	if e.MAC != nil {
		parts = append(parts, "mac "+e.MAC.String())
	}
	if e.SwitchPort != nil {
		parts = append(parts, fmt.Sprintf("switchport %d", *e.SwitchPort))
	}
	if e.DPID != nil {
		parts = append(parts, fmt.Sprintf("dpid %#x", *e.DPID))
	}
	if len(parts) == 0 {
		return
	}
	b.WriteString(prefix + " " + strings.Join(parts, " "))
}
