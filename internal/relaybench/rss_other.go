//go:build !linux

package relaybench

// readRSS has no portable source outside /proc; non-linux points report 0.
func readRSS() int64 { return 0 }

// raiseFDLimit is a no-op where syscall.Setrlimit portability is not
// guaranteed; the default soft limit bounds the reachable scale instead.
func raiseFDLimit(uint64) {}

// fdLimit is unknown off-linux; 0 means "let connect errors decide".
func fdLimit() uint64 { return 0 }
