//go:build linux

package relaybench

import (
	"bufio"
	"bytes"
	"os"
	"strconv"
	"syscall"
)

// readRSS reports the process resident set in bytes from /proc (VmRSS).
func readRSS() int64 {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	sc := bufio.NewScanner(bytes.NewReader(blob))
	for sc.Scan() {
		line := sc.Bytes()
		if !bytes.HasPrefix(line, []byte("VmRSS:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmRSS:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// raiseFDLimit lifts RLIMIT_NOFILE toward want; 10k-connection points
// need ~60k descriptors in one process. With CAP_SYS_RESOURCE (CI
// containers usually run as root) the hard limit is raised too;
// otherwise the soft limit stops at the hard cap.
func raiseFDLimit(want uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= want {
		return
	}
	if lim.Max < want {
		raised := lim
		raised.Cur, raised.Max = want, want
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised) == nil {
			return
		}
	}
	lim.Cur = want
	if lim.Max < want {
		lim.Cur = lim.Max
	}
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}

// fdLimit reports the current soft RLIMIT_NOFILE.
func fdLimit() uint64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0
	}
	return lim.Cur
}
