// Package relaybench measures the DFI proxy relay at connection scale:
// N simulated switches hold live proxied sessions and run closed-loop
// echo round trips through both relay directions while the harness
// samples latency quantiles, resident set size and goroutine count. The
// same harness drives both relay modes (goroutine-per-connection and the
// event-loop worker pool), so a pair of points is a direct cost
// comparison at identical load.
//
// The harness itself runs its clients and the far-end echo controller on
// event-loop engines, so harness goroutines stay O(workers) and the
// process goroutine count isolates the proxy's own per-connection cost —
// the quantity the event-loop refactor changes.
package relaybench

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/proxy"
	"github.com/dfi-sdn/dfi/internal/core/proxy/evloop"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// Modes the bench can drive.
const (
	ModeGoroutine = "goroutine"
	ModeEvloop    = "evloop"
)

// Config selects one measurement point.
type Config struct {
	Mode     string        // ModeGoroutine or ModeEvloop
	Conns    int           // concurrent proxied switch connections
	Workers  int           // proxy event-loop workers (ModeEvloop; 0 = default)
	Duration time.Duration // measurement window (0 = 2s)
	Churn    bool          // flap extra connections during the window
}

// Point is one measurement result, the unit BENCH_relay.json aggregates.
type Point struct {
	Mode        string  `json:"mode"`
	Conns       int     `json:"conns"`
	Workers     int     `json:"workers,omitempty"`
	Fallback    bool    `json:"fallback_pumps,omitempty"`
	Echoes      int64   `json:"echoes"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	RSSBytes    int64   `json:"rss_bytes"`
	Goroutines  int     `json:"goroutines"`
	ChurnCycles int64   `json:"churn_cycles,omitempty"`
	DurationSec float64 `json:"duration_sec"`
}

// sampleRing keeps the most recent RTT observations per connection; at
// 10k connections a bounded ring keeps the merge tractable while every
// connection still contributes to the tail.
const sampleRing = 128

// client is the harness-side switch: a closed echo loop over one proxied
// connection, driven entirely from event-loop callbacks.
type client struct {
	ep      *evloop.Endpoint
	stop    *atomic.Bool
	echoes  *atomic.Int64
	buf     []byte // prebuilt ECHO_REQUEST, payload = 8-byte send nanos
	samples [sampleRing]float64
	n       int
	closed  sync.WaitGroup
}

func (c *client) send() error {
	binary.BigEndian.PutUint64(c.buf[8:], uint64(time.Now().UnixNano()))
	_, err := c.ep.Write(c.buf)
	return err
}

func (c *client) OnFrame(f *openflow.Frame) error {
	if body := f.Body(); len(body) >= 8 {
		rtt := time.Now().UnixNano() - int64(binary.BigEndian.Uint64(body[:8]))
		c.samples[c.n%sampleRing] = float64(rtt) / 1e3
		c.n++
		c.echoes.Add(1)
	}
	if c.stop.Load() {
		return nil
	}
	return c.send()
}

func (c *client) OnIdle() error { return nil }
func (c *client) OnClose(error) { c.closed.Done() }

// echoSide is the far-end "controller": every relayed frame is queued
// straight back, so one client round trip crosses the relay twice.
type echoSide struct {
	out *openflow.Conn
}

func (e *echoSide) OnFrame(f *openflow.Frame) error { return e.out.QueueFrame(f) }
func (e *echoSide) OnIdle() error                   { return e.out.Flush() }
func (e *echoSide) OnClose(error)                   {}

// Run executes one measurement point in this process. Callers that want
// isolated RSS numbers should run each point in a fresh process (the
// dfi-bench -relay driver re-execs itself per point).
func Run(cfg Config) (*Point, error) {
	if cfg.Conns <= 0 {
		return nil, fmt.Errorf("relaybench: conns must be positive")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = proxy.DefaultEventLoopWorkers
	}
	// Each proxied connection consumes 4 socket fds in this process
	// (client pair + controller-leg pair); leave generous headroom.
	raiseFDLimit(uint64(cfg.Conns)*5 + 512)

	// Far-end echo controller.
	harness := evloop.New(evloop.Config{Workers: 4})
	defer harness.Close()
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer echoLn.Close()
	go func() {
		for {
			conn, err := echoLn.Accept()
			if err != nil {
				return
			}
			h := &echoSide{}
			ep, err := harness.Serve(conn, h)
			if err != nil {
				conn.Close()
				continue
			}
			h.out = openflow.NewWriterConn(ep)
			ep.Start()
		}
	}()

	// The proxy under test.
	evWorkers := 0
	if cfg.Mode == ModeEvloop {
		evWorkers = workers
	} else if cfg.Mode != ModeGoroutine {
		return nil, fmt.Errorf("relaybench: unknown mode %q", cfg.Mode)
	}
	p := pcp.New(pcp.Config{Entity: entity.NewManager(), Policy: policy.NewManager()})
	prx, err := proxy.New(proxy.Config{
		PCP:              p,
		EventLoopWorkers: evWorkers,
		DialController: func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", echoLn.Addr().String())
		},
	})
	if err != nil {
		return nil, err
	}
	defer prx.Close()
	prxLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer prxLn.Close()
	var sessions sync.WaitGroup
	go func() {
		for {
			conn, err := prxLn.Accept()
			if err != nil {
				return
			}
			sessions.Add(1)
			if err := prx.HandleSwitch(conn, func(error) { sessions.Done() }); err != nil {
				sessions.Done()
			}
		}
	}()

	// Prebuild the echo template once; each client patches its payload.
	wire, err := openflow.Encode(1, &openflow.EchoRequest{Data: make([]byte, 8)})
	if err != nil {
		return nil, err
	}

	var stop atomic.Bool
	var echoes atomic.Int64
	connect := func() (*client, error) {
		conn, err := net.Dial("tcp", prxLn.Addr().String())
		if err != nil {
			return nil, err
		}
		c := &client{stop: &stop, echoes: &echoes, buf: append([]byte(nil), wire...)}
		c.closed.Add(1)
		ep, err := harness.Serve(conn, c)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.ep = ep
		ep.Start()
		return c, nil
	}

	clients := make([]*client, 0, cfg.Conns)
	for i := 0; i < cfg.Conns; i++ {
		c, err := connect()
		if err != nil {
			return nil, fmt.Errorf("relaybench: conn %d/%d: %w", i, cfg.Conns, err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if err := c.send(); err != nil {
			return nil, err
		}
	}

	// Optional churn: extra connections flap for the whole window without
	// disturbing the steady flock.
	var churnCycles atomic.Int64
	churnDone := make(chan struct{})
	if cfg.Churn {
		go func() {
			defer close(churnDone)
			for !stop.Load() {
				c, err := connect()
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				time.Sleep(2 * time.Millisecond)
				c.ep.Close()
				c.closed.Wait()
				churnCycles.Add(1)
			}
		}()
	} else {
		close(churnDone)
	}

	// Steady state: sample the structural metrics mid-window, when every
	// connection is live and echoing.
	half := cfg.Duration / 2
	time.Sleep(half)
	runtime.GC()
	goroutines := runtime.NumGoroutine()
	rss := readRSS()
	time.Sleep(cfg.Duration - half)
	stop.Store(true)
	<-churnDone

	// Teardown: close every client; each proxied session's done callback
	// must fire (the "holds connections" part of the acceptance bar).
	for _, c := range clients {
		c.ep.Close()
	}
	settled := make(chan struct{})
	go func() {
		for _, c := range clients {
			c.closed.Wait()
		}
		sessions.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("relaybench: %s mode leaked sessions at teardown", cfg.Mode)
	}

	var all []float64
	for _, c := range clients {
		kept := c.n
		if kept > sampleRing {
			kept = sampleRing
		}
		all = append(all, c.samples[:kept]...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("relaybench: no echoes completed in %v", cfg.Duration)
	}
	sort.Float64s(all)

	pt := &Point{
		Mode:        cfg.Mode,
		Conns:       cfg.Conns,
		Fallback:    clients[0].ep.FallbackMode(),
		Echoes:      echoes.Load(),
		P50Micros:   quantile(all, 0.50),
		P99Micros:   quantile(all, 0.99),
		RSSBytes:    rss,
		Goroutines:  goroutines,
		ChurnCycles: churnCycles.Load(),
		DurationSec: cfg.Duration.Seconds(),
	}
	if cfg.Mode == ModeEvloop {
		pt.Workers = workers
	}
	return pt, nil
}

// MaxConns reports the largest connection count one measurement process
// can hold under the file-descriptor limit (after trying to raise it).
// Containers that drop CAP_SYS_RESOURCE cap the sweep here; the driver
// clamps oversized scales instead of failing mid-connect.
func MaxConns() int {
	raiseFDLimit(1 << 19)
	limit := fdLimit()
	if limit == 0 {
		return 1 << 20 // unknown platform: let connect errors decide
	}
	n := (int(limit) - 512) / 5
	if n < 1 {
		n = 1
	}
	return n
}

// quantile reads q from an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
