package pcp

// This file is the proactive table-0 push (the P4Control-style end state:
// enforcement resident in the dataplane). For allow rules whose endpoint
// identifier chains are fully bound — the rule's user/host/IP/MAC
// constraints resolve through the entity manager to concrete (IP, MAC,
// switch location) tuples — the PCP installs exact-match table-0 entries
// ahead of traffic, so the first packet of such a flow forwards in the
// dataplane with zero packet-ins.
//
// Safety invariants:
//
//  1. An entry is pushed only when no rule that could win over it (higher
//     priority, or equal priority with Deny's tie-break) may match any
//     packet in the entry's match space (safeToPush). Identity attributes
//     are evaluated against current bindings.
//  2. Every binding mutation that could change that evaluation flows
//     through OnBindingChange, which deletes and re-derives the entries of
//     every allow rule reachable from the mutated identifiers (the
//     classifier's reverse indexes make that set exact). A rule is only
//     ever concretized through identifiers it is indexed under, so the
//     closure covers all its entries.
//  3. Entries carry the rule's id as their cookie, so revocation's
//     cookie-scoped delete removes them exactly like reactive state; they
//     have no idle timeout and live until revocation or re-derivation.
//
// Entries always pin both IPs (plus in-port and MACs): an entry that left
// the IP space open could mask a higher-priority deny written over an IP
// the safety check never saw. Non-IP traffic of MAC-only rules therefore
// stays reactive.

import (
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/policy/classifier"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// proactiveFlow is one compiled proactive entry and the switch it belongs
// on.
type proactiveFlow struct {
	dpid uint64
	fm   *openflow.FlowMod
}

// concreteEnd is one endpoint of a concretized flow space: the low-level
// identifiers the entry pins plus the high-level identity (from current
// bindings) the safety check evaluates against.
type concreteEnd struct {
	ip    netpkt.IPv4
	mac   netpkt.MAC
	host  string
	users []string
}

// proactiveFlowsFor derives the proactive entries for one rule against
// current bindings, capped at ProactiveMaxFlows. Callers hold deltaMu.
func (p *PCP) proactiveFlowsFor(c *classifier.Compiled, r *policy.Rule) []proactiveFlow {
	if !p.cfg.ProactivePush || r.Action != policy.ActionAllow {
		return nil
	}
	if r.Dst.SwitchPort != nil {
		// The destination's attachment port is not visible in the ingress
		// view the entry stands in for; stay reactive.
		return nil
	}
	if r.Src.DPID != nil && r.Dst.DPID != nil && *r.Src.DPID != *r.Dst.DPID {
		return nil
	}
	srcs := p.concretize(&r.Src)
	if len(srcs) == 0 {
		return nil
	}
	dsts := p.concretize(&r.Dst)
	if len(dsts) == 0 {
		return nil
	}
	var flows []proactiveFlow
	for i := range srcs {
		src := &srcs[i]
		for _, loc := range p.cfg.Entity.LocationsOf(src.mac) {
			if r.Src.DPID != nil && *r.Src.DPID != loc.DPID {
				continue
			}
			if r.Dst.DPID != nil && *r.Dst.DPID != loc.DPID {
				continue
			}
			if r.Src.SwitchPort != nil && *r.Src.SwitchPort != loc.Port {
				continue
			}
			for j := range dsts {
				dst := &dsts[j]
				if !p.safeToPush(c, r, src, dst, loc) {
					continue
				}
				for _, m := range proactiveMatches(r, src, dst, loc.Port) {
					if len(flows) >= p.cfg.ProactiveMaxFlows {
						return flows
					}
					flows = append(flows, proactiveFlow{dpid: loc.DPID, fm: p.proactiveAdd(r, m)})
				}
			}
		}
	}
	return flows
}

// concretize resolves one endpoint spec to the concrete endpoints it
// currently names: rule IP → that IP; host → its IPs; user → the IPs of
// the hosts the user is on; MAC → the IPs leased to it. Each candidate IP
// must carry a MAC lease and satisfy every identity constraint the spec
// states, mirroring how the admission view would evaluate.
func (p *PCP) concretize(spec *policy.EndpointSpec) []concreteEnd {
	erm := p.cfg.Entity
	var ips []netpkt.IPv4
	switch {
	case spec.IP != nil:
		ips = []netpkt.IPv4{*spec.IP}
	case spec.Host != "":
		ips = erm.IPsOf(spec.Host)
	case spec.User != "":
		for _, h := range erm.HostsOf(spec.User) {
			ips = append(ips, erm.IPsOf(h)...)
		}
	case spec.MAC != nil:
		ips = erm.IPsOfMAC(*spec.MAC)
	default:
		// No identifier to concretize from: the endpoint stays reactive.
		return nil
	}
	var ends []concreteEnd
	for _, ip := range ips {
		mac, ok := erm.MACOf(ip)
		if !ok {
			continue
		}
		if spec.MAC != nil && *spec.MAC != mac {
			continue
		}
		host, _ := erm.HostOf(ip)
		if spec.Host != "" && spec.Host != host {
			continue
		}
		users := erm.UsersOn(host)
		if spec.User != "" && !containsStr(users, spec.User) {
			continue
		}
		ends = append(ends, concreteEnd{ip: ip, mac: mac, host: host, users: users})
	}
	return ends
}

// safeToPush reports whether the concretized entry space for r can be
// answered from the switch without consulting policy: no rule that could
// win over r (higher priority, or equal priority with the opposite action
// — Deny wins ties) may match any packet in the space.
func (p *PCP) safeToPush(c *classifier.Compiled, r *policy.Rule, src, dst *concreteEnd, loc entity.Location) bool {
	safe := true
	c.RulesAtOrAbove(r.Priority, func(q *policy.Rule) bool {
		if q.ID == r.ID || q.Action == r.Action {
			return true
		}
		if mayMatchSpace(q, r, src, dst, loc) {
			safe = false
			return false
		}
		return true
	})
	return safe
}

// mayMatchSpace conservatively reports whether rule q could match some
// packet inside the entry space (src/dst concretized, location fixed,
// flow properties bounded by r's constraints). False only when one of q's
// constraints provably excludes the whole space.
func mayMatchSpace(q, r *policy.Rule, src, dst *concreteEnd, loc entity.Location) bool {
	if q.Props.EtherType != nil {
		et := *q.Props.EtherType
		if et != netpkt.EtherTypeIPv4 && !(et == netpkt.EtherTypeARP && ruleCoversARP(r)) {
			return false
		}
	}
	if q.Props.IPProto != nil {
		if r.Props.IPProto != nil && *q.Props.IPProto != *r.Props.IPProto {
			return false
		}
		if r.Props.IPProto == nil && (r.Src.Port != nil || r.Dst.Port != nil) &&
			*q.Props.IPProto != netpkt.ProtoTCP && *q.Props.IPProto != netpkt.ProtoUDP {
			// r's port pins restrict the space to TCP/UDP.
			return false
		}
	}
	return endMayMatch(&q.Src, &r.Src, src, true, loc) &&
		endMayMatch(&q.Dst, &r.Dst, dst, false, loc)
}

// endMayMatch is mayMatchSpace's per-endpoint test. Identity fields are
// evaluated against the endpoint's current bindings (see the file comment
// for why that is sound); dimensions the entry leaves open (L4 ports when
// r does not pin them, the destination's switch port) count as matching.
func endMayMatch(q, r *policy.EndpointSpec, e *concreteEnd, isSrc bool, loc entity.Location) bool {
	if q.User != "" && !containsStr(e.users, q.User) {
		return false
	}
	if q.Host != "" && q.Host != e.host {
		return false
	}
	if q.IP != nil && *q.IP != e.ip {
		return false
	}
	if q.MAC != nil && *q.MAC != e.mac {
		return false
	}
	if q.Port != nil && r.Port != nil && *q.Port != *r.Port {
		return false
	}
	if q.DPID != nil && *q.DPID != loc.DPID {
		return false
	}
	if q.SwitchPort != nil && isSrc && *q.SwitchPort != loc.Port {
		return false
	}
	return true
}

// ruleCoversARP reports whether r can match ARP traffic (the proactive
// entry set then includes an ARP variant so address resolution between
// the endpoints also bypasses admission).
func ruleCoversARP(r *policy.Rule) bool {
	if r.Props.IPProto != nil || r.Src.Port != nil || r.Dst.Port != nil {
		return false
	}
	return r.Props.EtherType == nil || *r.Props.EtherType == netpkt.EtherTypeARP
}

// proactiveMatches builds the match variants of one (src, dst, in-port)
// concretization: an IPv4 variant carrying r's protocol and port pins
// (split into TCP and UDP when ports are pinned but the protocol is not)
// plus an ARP variant when r covers ARP. Every variant pins in-port, both
// MACs and both IPs.
func proactiveMatches(r *policy.Rule, src, dst *concreteEnd, inPort uint32) []*openflow.Match {
	base := openflow.Match{
		InPort: openflow.U32(inPort),
		EthSrc: openflow.MACPtr(src.mac),
		EthDst: openflow.MACPtr(dst.mac),
	}
	var out []*openflow.Match
	et := r.Props.EtherType
	if et == nil || *et == netpkt.EtherTypeIPv4 {
		m := base
		m.EthType = openflow.U16(netpkt.EtherTypeIPv4)
		m.IPv4Src = openflow.IPPtr(src.ip)
		m.IPv4Dst = openflow.IPPtr(dst.ip)
		proto := r.Props.IPProto
		srcPort, dstPort := r.Src.Port, r.Dst.Port
		switch {
		case srcPort == nil && dstPort == nil:
			m.IPProto = proto
			out = append(out, &m)
		case proto != nil && *proto == netpkt.ProtoTCP:
			m.IPProto = proto
			m.TCPSrc, m.TCPDst = srcPort, dstPort
			out = append(out, &m)
		case proto != nil && *proto == netpkt.ProtoUDP:
			m.IPProto = proto
			m.UDPSrc, m.UDPDst = srcPort, dstPort
			out = append(out, &m)
		case proto == nil:
			tcp, udp := m, m
			tcp.IPProto = openflow.U8(netpkt.ProtoTCP)
			tcp.TCPSrc, tcp.TCPDst = srcPort, dstPort
			udp.IPProto = openflow.U8(netpkt.ProtoUDP)
			udp.UDPSrc, udp.UDPDst = srcPort, dstPort
			out = append(out, &tcp, &udp)
			// default: ports pinned on a port-less protocol match nothing.
		}
	}
	if ruleCoversARP(r) {
		m := base
		m.EthType = openflow.U16(netpkt.EtherTypeARP)
		m.ARPSPA = openflow.IPPtr(src.ip)
		m.ARPTPA = openflow.IPPtr(dst.ip)
		out = append(out, &m)
	}
	return out
}

// proactiveAdd compiles the table-0 add for one proactive match: cookie =
// rule id (revocation symmetry with reactive entries), no idle timeout.
func (p *PCP) proactiveAdd(r *policy.Rule, m *openflow.Match) *openflow.FlowMod {
	return &openflow.FlowMod{
		Cookie:       uint64(r.ID),
		TableID:      0,
		Command:      openflow.FlowModAdd,
		Priority:     p.cfg.RulePriority,
		BufferID:     openflow.NoBuffer,
		OutPort:      openflow.PortAny,
		OutGroup:     0xffffffff,
		Match:        m,
		Instructions: gotoTable1,
	}
}

// OnBindingChange is the entity manager's change hook (registered in New
// when proactive push is enabled): it deletes and re-derives the entries
// of every allow rule whose identifier chains the mutation touches. It
// runs after the entity manager released its lock and made the new epoch
// visible, so re-derivation sees the new bindings; a concurrent change
// serializes behind deltaMu and re-derives again, converging on the last
// write.
func (p *PCP) OnBindingChange(ch entity.Change) {
	if !p.cfg.ProactivePush {
		return
	}
	users, hosts, ips, macs := p.bindingClosure(ch)
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	c := p.compiled.Load()
	if c == nil {
		return
	}
	rules := c.AllowRulesFor(users, hosts, ips, macs)
	if len(rules) == 0 {
		return
	}
	var global []*openflow.FlowMod
	perAdd := make(map[uint64][]*openflow.FlowMod)
	for _, r := range rules {
		flows := p.proactiveFlowsFor(c, r)
		if flowsEqual(p.getProactiveFlows(r.ID), flows) {
			// The change did not alter this rule's concretization (e.g. a
			// MAC re-observed at its known location); nothing to rewrite.
			continue
		}
		// The cookie delete also evicts the rule's reactive entries —
		// decisions derived under the old bindings may no longer hold.
		global = append(global, cookieDelete(r.ID))
		for _, pf := range flows {
			perAdd[pf.dpid] = append(perAdd[pf.dpid], pf.fm)
		}
		p.setProactiveFlows(r.ID, flows)
	}
	if len(global) == 0 {
		return
	}
	p.emitDelta(p.cfg.Spans.Child(obs.SpanContext{}), global, nil, perAdd)
}

// bindingClosure expands one binding change into the identifier set whose
// rules need re-derivation: the mutated identifiers themselves, the IPs
// reachable from the named hosts and MACs, and the hosts, MACs and users
// reachable back from those IPs.
func (p *PCP) bindingClosure(ch entity.Change) (users, hosts []string, ips []netpkt.IPv4, macs []netpkt.MAC) {
	erm := p.cfg.Entity
	if ch.User != "" {
		users = append(users, ch.User)
	}
	if ch.Host != "" {
		hosts = append(hosts, ch.Host)
	}
	if ch.PrevHost != "" && ch.PrevHost != ch.Host {
		hosts = append(hosts, ch.PrevHost)
	}
	if ch.HasMAC {
		macs = append(macs, ch.MAC)
	}
	if ch.HasPrevMAC && ch.PrevMAC != ch.MAC {
		macs = append(macs, ch.PrevMAC)
	}
	if ch.HasIP {
		ips = append(ips, ch.IP)
	}
	for _, mac := range macs {
		for _, ip := range erm.IPsOfMAC(mac) {
			ips = appendIP(ips, ip)
		}
	}
	for _, h := range hosts {
		for _, ip := range erm.IPsOf(h) {
			ips = appendIP(ips, ip)
		}
	}
	for _, ip := range ips {
		if mac, ok := erm.MACOf(ip); ok {
			macs = appendMAC(macs, mac)
		}
		if h, ok := erm.HostOf(ip); ok && h != "" {
			hosts = appendStr(hosts, h)
		}
	}
	for _, h := range hosts {
		for _, u := range erm.UsersOn(h) {
			users = appendStr(users, u)
		}
	}
	return users, hosts, ips, macs
}

// populateSwitch installs the proactive entry set scoped to one switch in
// one batch, called from AttachSwitch.
func (p *PCP) populateSwitch(dpid uint64, client SwitchClient) {
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	c := p.compiled.Load()
	if c == nil {
		return
	}
	var fms []*openflow.FlowMod
	for _, r := range c.Snapshot().All() {
		flows := p.proactiveFlowsFor(c, r)
		if len(flows) == 0 {
			continue
		}
		for _, pf := range flows {
			if pf.dpid == dpid {
				fms = append(fms, pf.fm)
			}
		}
		// Refresh the recorded derivation: bindings may have drifted while
		// no mutation touched this rule.
		p.setProactiveFlows(r.ID, flows)
	}
	if len(fms) == 0 {
		return
	}
	p.flushSwitch(p.cfg.Spans.Child(obs.SpanContext{}), dpid, client, fms)
	p.metrics.deltaModAdds.Add(uint64(len(fms)))
}

func containsStr(have []string, want string) bool {
	for _, s := range have {
		if s == want {
			return true
		}
	}
	return false
}

func appendStr(have []string, s string) []string {
	if containsStr(have, s) {
		return have
	}
	return append(have, s)
}

func appendIP(have []netpkt.IPv4, ip netpkt.IPv4) []netpkt.IPv4 {
	for _, h := range have {
		if h == ip {
			return have
		}
	}
	return append(have, ip)
}

func appendMAC(have []netpkt.MAC, mac netpkt.MAC) []netpkt.MAC {
	for _, h := range have {
		if h == mac {
			return have
		}
	}
	return append(have, mac)
}
