package pcp

import (
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

func newWildcardEnv(t *testing.T) (*PCP, *entity.Manager, *policy.Manager, *fakeSwitch) {
	t.Helper()
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := New(Config{Entity: erm, Policy: pm, WildcardCaching: true})
	sw := &fakeSwitch{}
	p.AttachSwitch(7, sw)
	if err := pm.RegisterPDP("lo", 10); err != nil {
		t.Fatal(err)
	}
	if err := pm.RegisterPDP("hi", 100); err != nil {
		t.Fatal(err)
	}
	return p, erm, pm, sw
}

func TestWidenToL2PairWhenPolicyIsMACBased(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	// A MAC-pair rule constrains neither ports nor IPs: widening to an L2
	// pair rule is safe when nothing else overlaps.
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{MAC: &macA},
		Dst: policy.EndpointSpec{MAC: &macB},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	fm := sw.last()
	if fm.Match.TCPSrc != nil || fm.Match.TCPDst != nil {
		t.Fatalf("ports not widened: %v", fm.Match)
	}
	if fm.Match.IPv4Src != nil || fm.Match.IPv4Dst != nil {
		t.Fatalf("IPs not widened: %v", fm.Match)
	}
	if fm.Match.EthSrc == nil || fm.Match.EthDst == nil || fm.Match.InPort == nil {
		t.Fatalf("anchors dropped: %v", fm.Match)
	}
	// The widened rule must cover a second, different flow of the pair.
	key2, err := netpkt.ExtractFlowKey(netpkt.BuildTCP(macA, macB, ipA, ipB,
		&netpkt.TCPSegment{SrcPort: 50123, DstPort: 80}))
	if err != nil {
		t.Fatal(err)
	}
	if !fm.Match.MatchesKey(key2, 3) {
		t.Fatal("widened rule does not cover sibling flows")
	}
}

func TestWinnerIPConstraintKeepsIPs(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{IP: &ipA},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	fm := sw.last()
	if fm.Match.IPv4Src == nil || fm.Match.IPv4Dst == nil {
		t.Fatalf("IPs dropped although the winner constrains an IP: %v", fm.Match)
	}
	if fm.Match.TCPSrc != nil {
		t.Fatalf("ports should still widen: %v", fm.Match)
	}
}

func TestWinnerPortConstraintStaysExact(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	port := uint16(445)
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Dst: policy.EndpointSpec{Port: &port},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	fm := sw.last()
	if fm.Match.TCPDst == nil {
		t.Fatalf("ports dropped although the winner constrains a port: %v", fm.Match)
	}
}

func TestOverlappingOppositeRuleBlocksWidening(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{MAC: &macA},
	}); err != nil {
		t.Fatal(err)
	}
	// A higher-priority deny on one port of the same space: widening the
	// allow would swallow packets this deny must catch.
	port := uint16(22)
	if _, err := pm.Insert(policy.Rule{
		PDP: "hi", Action: policy.ActionDeny,
		Src: policy.EndpointSpec{MAC: &macA},
		Dst: policy.EndpointSpec{Port: &port},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3)) // dst port 445: allowed
	fm := sw.last()
	if fm.Match.TCPDst == nil {
		t.Fatalf("widened despite an overlapping opposite-action port rule: %v", fm.Match)
	}
}

func TestIdentifierRuleBlocksWidening(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{MAC: &macA},
	}); err != nil {
		t.Fatal(err)
	}
	// A deny written over a username: its bindings can change without a
	// policy event, so nothing in its potential space may be widened —
	// even though bob is logged on nowhere right now.
	if _, err := pm.Insert(policy.Rule{
		PDP: "hi", Action: policy.ActionDeny,
		Src: policy.EndpointSpec{User: "bob"},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	fm := sw.last()
	if fm.Match.NumFields() != 9 {
		t.Fatalf("widened despite a user-based opposite rule: %v", fm.Match)
	}
}

func TestSameActionOverlapStillWidens(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{MAC: &macA},
	}); err != nil {
		t.Fatal(err)
	}
	// Another allow overlapping the space changes nothing about the
	// decision: widening stays safe.
	if _, err := pm.Insert(policy.Rule{
		PDP: "hi", Action: policy.ActionAllow,
		Dst: policy.EndpointSpec{MAC: &macB},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	fm := sw.last()
	if fm.Match.TCPSrc != nil || fm.Match.IPv4Src != nil {
		t.Fatalf("same-action overlap blocked widening: %v", fm.Match)
	}
}

func TestDefaultDenyWidensOnlyInEmptySpace(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	// Empty database: a default deny covers the whole pair space safely.
	process(t, p, packetInFor(synFrame(), 3))
	fm := sw.last()
	if fm.Cookie != uint64(policy.DefaultDenyID) {
		t.Fatalf("cookie = %d", fm.Cookie)
	}
	if fm.Match.TCPSrc != nil || fm.Match.IPv4Src != nil {
		t.Fatalf("default deny did not widen in an empty database: %v", fm.Match)
	}

	// With any allow rule around that may overlap, default denies must
	// stay exact.
	if _, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{User: "alice"},
	}); err != nil {
		t.Fatal(err)
	}
	frame2 := netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 9, DstPort: 10})
	process(t, p, packetInFor(frame2, 4))
	fm = sw.last()
	if fm.Command != openflow.FlowModAdd {
		t.Fatalf("unexpected mod %+v", fm)
	}
	if fm.Match.NumFields() != 9 {
		t.Fatalf("default deny widened despite a user allow rule: %v", fm.Match)
	}
}

func TestWideningDisabledByDefault(t *testing.T) {
	p, _, pm, sw := newEnv(t) // WildcardCaching off
	if _, err := pm.Insert(policy.Rule{
		PDP: "t", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{MAC: &macA},
	}); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	if fm := sw.last(); fm.Match.NumFields() != 9 {
		t.Fatalf("rules widened without opt-in: %v", fm.Match)
	}
}

func TestARPNeverWidens(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	if _, err := pm.Insert(policy.Rule{PDP: "lo", Action: policy.ActionAllow}); err != nil {
		t.Fatal(err)
	}
	arp := netpkt.BuildARP(&netpkt.ARP{Op: netpkt.ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB})
	process(t, p, packetInFor(arp, 2))
	fm := sw.last()
	if fm.Match.ARPSPA == nil || fm.Match.ARPTPA == nil {
		t.Fatalf("ARP match widened: %v", fm.Match)
	}
}

func TestWidenedRuleFlushedOnConflict(t *testing.T) {
	p, _, pm, sw := newWildcardEnv(t)
	id, err := pm.Insert(policy.Rule{
		PDP: "lo", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{MAC: &macA},
	})
	if err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	widened := sw.last()
	if widened.Cookie != uint64(id) {
		t.Fatalf("cookie = %d, want %d", widened.Cookie, id)
	}
	// A higher-priority conflicting insert must flush that cookie — the
	// property that keeps widened rules consistent (condition 3).
	before := sw.count()
	if _, err := pm.Insert(policy.Rule{
		PDP: "hi", Action: policy.ActionDeny,
		Src: policy.EndpointSpec{MAC: &macA},
	}); err != nil {
		t.Fatal(err)
	}
	var sawFlush bool
	sw.mu.Lock()
	for _, fm := range sw.mods[before:] {
		if fm.Command == openflow.FlowModDelete && fm.Cookie == uint64(id) {
			sawFlush = true
		}
	}
	sw.mu.Unlock()
	if !sawFlush {
		t.Fatal("conflicting insert did not flush the widened rule's cookie")
	}
}
