package pcp

import (
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// Wildcard rule caching — the CAB-ACME-style extension the paper names as
// an opportunity (§III-B): instead of one exact-match rule per flow, cache
// a wider rule when it is provably safe, cutting control-plane load for
// flow-dense host pairs.
//
// The paper states the key challenge: "avoid caching wildcarded flow rules
// that match packets for which higher-priority policy rules may exist ...
// non-trivial because we expect changes in the policy database over time,
// and these policy rules may contain identifiers that must be mapped
// during rule compilation."
//
// Safety argument implemented here. A widened rule (cookie = winning rule
// id) covers a flow space S. It is safe iff every packet in S gets the
// same decision from the same winning rule:
//
//  1. The winner must match ALL of S: no field the winner constrains may
//     be dropped from the match (so lower-priority rules can never win
//     inside S).
//  2. No other stored rule with a different action may match ANY packet
//     of S. Rules written over users/hostnames are treated as "may match"
//     whenever their concrete fields are compatible — their identifier
//     bindings can change without a policy-database event, so they block
//     widening outright.
//  3. Later policy changes are covered by the existing flush machinery:
//     a higher-priority conflicting insert flushes the winner's cookie
//     (and a new Allow flushes cached default denies), removing the
//     widened rule exactly when an exact rule would have been removed.
//
// Two widening levels are attempted, most aggressive first: drop the
// TCP/UDP ports and the IP addresses (a pure L2 pair rule), or drop only
// the ports. MACs, ingress port and EtherType/IP-protocol stay pinned
// always, as does anything the winner constrains.

// widenDrop describes which packet fields a widening level drops.
type widenDrop struct {
	ports bool
	ips   bool
}

var widenLevels = []widenDrop{
	{ports: true, ips: true},
	{ports: true, ips: false},
}

// compileCachedMatch returns the widest safe match for the decided flow,
// falling back to the exact match.
func (p *PCP) compileCachedMatch(key netpkt.FlowKey, inPort uint32, fv *policy.FlowView, dec Decision) *openflow.Match {
	exact := openflow.ExactMatchFor(key, inPort)
	if !p.cfg.WildcardCaching {
		return exact
	}
	// Nothing to widen for non-IP traffic (ARP and friends are already
	// minimal and identifier-sensitive via their addresses).
	if key.EtherType != netpkt.EtherTypeIPv4 || !key.HasIP {
		return exact
	}

	// One immutable snapshot serves both the winner lookup and the safety
	// walk, so the check is consistent and copies nothing.
	snap := p.cfg.Policy.Snapshot()
	var winner *policy.Rule
	if dec.RuleID != policy.DefaultDenyID {
		if winner = snap.Get(dec.RuleID); winner == nil {
			return exact // revoked mid-flight; stay exact
		}
	}
	action := policy.ActionDeny
	if dec.Allow {
		action = policy.ActionAllow
	}

	rules := snap.All()
	for _, drop := range widenLevels {
		if !winnerAllowsDrop(winner, drop) {
			continue
		}
		if !key.HasL4 && drop.ports && !drop.ips {
			// Port-only widening is meaningless without L4 ports; the
			// exact match already has none.
			continue
		}
		if safeToWiden(rules, winner, action, fv, drop) {
			return widenedMatch(key, inPort, drop)
		}
	}
	return exact
}

// winnerAllowsDrop reports whether the winning rule constrains none of the
// fields the widening level drops (condition 1). The implicit default deny
// (nil winner) constrains nothing.
func winnerAllowsDrop(winner *policy.Rule, drop widenDrop) bool {
	if winner == nil {
		return true
	}
	if drop.ports && (winner.Src.Port != nil || winner.Dst.Port != nil) {
		return false
	}
	if drop.ips {
		// IPs proxy for user/host identity: a winner written over any of
		// them must keep IPs pinned.
		if winner.Src.IP != nil || winner.Dst.IP != nil ||
			winner.Src.User != "" || winner.Dst.User != "" ||
			winner.Src.Host != "" || winner.Dst.Host != "" {
			return false
		}
	}
	return true
}

// safeToWiden checks condition 2 over the whole policy database.
func safeToWiden(rules []*policy.Rule, winner *policy.Rule, action policy.Action, fv *policy.FlowView, drop widenDrop) bool {
	for _, r := range rules {
		if winner != nil && r.ID == winner.ID {
			continue
		}
		if r.Action == action {
			continue // same decision everywhere it could match: harmless
		}
		if ruleMayMatchSpace(r, fv, drop) {
			return false
		}
	}
	return true
}

// ruleMayMatchSpace conservatively reports whether r could match some
// packet in the widened space around fv.
func ruleMayMatchSpace(r *policy.Rule, fv *policy.FlowView, drop widenDrop) bool {
	if r.Props.EtherType != nil && *r.Props.EtherType != fv.EtherType {
		return false
	}
	if r.Props.IPProto != nil && (!fv.HasIPProto || *r.Props.IPProto != fv.IPProto) {
		return false
	}
	return endpointMayMatch(&r.Src, &fv.Src, drop) && endpointMayMatch(&r.Dst, &fv.Dst, drop)
}

// endpointMayMatch is the conservative per-endpoint overlap test: dropped
// or binding-dependent fields are assumed to match.
func endpointMayMatch(e *policy.EndpointSpec, a *policy.EndpointAttrs, drop widenDrop) bool {
	// User/host constraints ride on bindings that can change without a
	// policy event: always assume they may come to match (condition 2).
	if e.IP != nil && !drop.ips && (!a.HasIP || *e.IP != a.IP) {
		return false
	}
	if e.Port != nil && !drop.ports && (!a.HasPort || *e.Port != a.Port) {
		return false
	}
	if e.MAC != nil && *e.MAC != a.MAC {
		return false
	}
	if e.SwitchPort != nil && (!a.HasSwitchPort || *e.SwitchPort != a.SwitchPort) {
		return false
	}
	if e.DPID != nil && (!a.HasDPID || *e.DPID != a.DPID) {
		return false
	}
	return true
}

// widenedMatch builds the match for the widening level: exact minus the
// dropped fields.
func widenedMatch(key netpkt.FlowKey, inPort uint32, drop widenDrop) *openflow.Match {
	m := &openflow.Match{
		InPort:  openflow.U32(inPort),
		EthSrc:  openflow.MACPtr(key.EthSrc),
		EthDst:  openflow.MACPtr(key.EthDst),
		EthType: openflow.U16(key.EtherType),
		IPProto: openflow.U8(key.IPProto),
	}
	if !drop.ips {
		m.IPv4Src = openflow.IPPtr(key.IPSrc)
		m.IPv4Dst = openflow.IPPtr(key.IPDst)
	}
	if !drop.ports && key.HasL4 {
		switch key.IPProto {
		case netpkt.ProtoTCP:
			m.TCPSrc = openflow.U16(key.L4Src)
			m.TCPDst = openflow.U16(key.L4Dst)
		case netpkt.ProtoUDP:
			m.UDPSrc = openflow.U16(key.L4Src)
			m.UDPDst = openflow.U16(key.L4Dst)
		}
	}
	return m
}
