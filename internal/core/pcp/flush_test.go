package pcp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// batchSwitch is a SwitchClient that also implements FlowModBatcher,
// recording how the PCP delivered flow-mods (batched vs one at a time)
// and how many switches were being written concurrently.
type batchSwitch struct {
	mu      sync.Mutex
	batches [][]uint64 // cookies per WriteFlowMods call
	singles int        // WriteFlowMod calls

	delay time.Duration

	// Shared across all switches in a test to observe fan-out overlap.
	inflight    *atomic.Int32
	maxInflight *atomic.Int32
}

func (s *batchSwitch) WriteFlowMod(*openflow.FlowMod) error {
	s.mu.Lock()
	s.singles++
	s.mu.Unlock()
	return nil
}

func (s *batchSwitch) WriteFlowMods(fms []*openflow.FlowMod) error {
	if s.inflight != nil {
		n := s.inflight.Add(1)
		for {
			m := s.maxInflight.Load()
			if n <= m || s.maxInflight.CompareAndSwap(m, n) {
				break
			}
		}
		defer s.inflight.Add(-1)
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	cookies := make([]uint64, len(fms))
	for i, fm := range fms {
		cookies[i] = fm.Cookie
	}
	s.mu.Lock()
	s.batches = append(s.batches, cookies)
	s.mu.Unlock()
	return nil
}

func newFlushEnv(t testing.TB, nSwitches int, fanOut int, delay time.Duration) (*PCP, []*batchSwitch) {
	t.Helper()
	p := New(Config{
		Entity:      entity.NewManager(),
		Policy:      policy.NewManager(),
		FlushFanOut: fanOut,
	})
	var inflight, maxInflight atomic.Int32
	sws := make([]*batchSwitch, nSwitches)
	for i := range sws {
		sws[i] = &batchSwitch{delay: delay, inflight: &inflight, maxInflight: &maxInflight}
		p.AttachSwitch(uint64(i+1), sws[i])
	}
	return p, sws
}

// TestFlushPoliciesUsesBatcher: when a switch client supports batched
// writes, the flush delivers all compiled deletes in one WriteFlowMods call
// and never falls back to per-mod writes.
func TestFlushPoliciesUsesBatcher(t *testing.T) {
	p, sws := newFlushEnv(t, 3, 0, 0)
	p.FlushPolicies(obs.SpanContext{}, []policy.RuleID{5, 9, 11})
	for i, sw := range sws {
		if sw.singles != 0 {
			t.Fatalf("switch %d: %d per-mod writes, want 0 (batcher available)", i, sw.singles)
		}
		if len(sw.batches) != 1 {
			t.Fatalf("switch %d: %d batch writes, want 1", i, len(sw.batches))
		}
		if got := sw.batches[0]; len(got) != 3 || got[0] != 5 || got[1] != 9 || got[2] != 11 {
			t.Fatalf("switch %d: batch cookies = %v", i, got)
		}
	}
}

// TestFlushPoliciesSerialFanOut: FlushFanOut=1 degenerates to the serial
// loop and still reaches every switch.
func TestFlushPoliciesSerialFanOut(t *testing.T) {
	p, sws := newFlushEnv(t, 4, 1, 0)
	p.FlushPolicies(obs.SpanContext{}, []policy.RuleID{1})
	for i, sw := range sws {
		if len(sw.batches) != 1 {
			t.Fatalf("switch %d not flushed: %d batches", i, len(sw.batches))
		}
	}
	if max := sws[0].maxInflight.Load(); max > 1 {
		t.Fatalf("serial flush observed %d concurrent writes", max)
	}
}

// TestFlushPoliciesParallelFanOut: with the default worker bound, a flush
// across many slow switches overlaps their writes while still reaching all
// of them before returning (the flush is synchronous).
func TestFlushPoliciesParallelFanOut(t *testing.T) {
	p, sws := newFlushEnv(t, 32, 8, 2*time.Millisecond)
	p.FlushPolicies(obs.SpanContext{}, []policy.RuleID{5, 9})
	for i, sw := range sws {
		if len(sw.batches) != 1 || len(sw.batches[0]) != 2 {
			t.Fatalf("switch %d: batches = %v", i, sw.batches)
		}
	}
	if max := sws[0].maxInflight.Load(); max < 2 {
		t.Fatalf("parallel flush never overlapped (max inflight %d)", max)
	}
	if max := sws[0].maxInflight.Load(); max > 8 {
		t.Fatalf("fan-out exceeded worker bound: %d", max)
	}
}

// benchmarkFlushFanOut measures one synchronous FlushPolicies across
// nSwitches switches whose batch write costs ~200µs (a realistic TCP
// write+ack RTT), serial (FlushFanOut=1) vs the default bounded fan-out.
// The paper's revocation latency (time-to-enforcement) is dominated by
// this fan-out at scale.
func benchmarkFlushFanOut(b *testing.B, nSwitches int) {
	const perSwitch = 200 * time.Microsecond
	ids := []policy.RuleID{5, 9, 11}
	run := func(b *testing.B, fanOut int) {
		p, _ := newFlushEnv(b, nSwitches, fanOut, perSwitch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.FlushPolicies(obs.SpanContext{}, ids)
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) }) // default bound (8)
}

func BenchmarkFlushFanOut_1Switches(b *testing.B)  { benchmarkFlushFanOut(b, 1) }
func BenchmarkFlushFanOut_8Switches(b *testing.B)  { benchmarkFlushFanOut(b, 8) }
func BenchmarkFlushFanOut_32Switches(b *testing.B) { benchmarkFlushFanOut(b, 32) }
