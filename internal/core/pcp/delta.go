package pcp

// This file is the delta flush: the incremental counterpart of
// FlushPolicies' legacy delete-everything-by-cookie path. Each policy
// mutation notifies the PCP, which recompiles the classifier incrementally
// (classifier.CompileNext), turns the resulting rule delta into a minimal
// flow-mod set — O(changed rules) per mutation, independent of the policy
// size — and fans it out over the batched switch writers.
//
// Revocation correctness: compilation and emission run under deltaMu, so
// for any revoked rule the classifier that no longer contains it is
// published (p.compiled.Store) before its cookie-scoped deletes are
// written. An admission racing the flush either sees the old classifier
// (and may install a soon-deleted entry — the delete is ordered after the
// publish, so it lands afterwards and removes it) or the new one; either
// way no cached or installed allow outlives the flush that revokes it, the
// same guarantee the legacy path provides.
//
// Per-switch write order is deletes before adds: the simulated switch
// breaks priority ties by install order only within the linear (wild)
// partition, while canonical exact entries always win their hash probe —
// so a stale reactive deny pinned at the same priority must be gone before
// a proactive allow covering it is installed.

import (
	"fmt"
	"sync"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/policy/classifier"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// flushDelta advances the compiled classifier to the Policy Manager's
// current epoch and emits the minimal flow-mod delta. Out-of-order flush
// callbacks (the Manager notifies outside its lock) collapse: whichever
// callback runs first compiles to the newest snapshot, and the stragglers
// see an already-current classifier and write nothing.
func (p *PCP) flushDelta(sc obs.SpanContext) {
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()

	span := p.cfg.Spans.Child(sc)
	tStart := p.cfg.Spans.Now()

	snap := p.cfg.Policy.Snapshot()
	prev := p.compiled.Load()
	next, d := classifier.CompileNext(prev, snap)
	if next != prev {
		p.compiled.Store(next)
	}
	if d.Empty() {
		return
	}
	p.metrics.deltaCompiles.Inc()
	p.metrics.deltaAdded.Add(uint64(len(d.Added)))
	p.metrics.deltaRemoved.Add(uint64(len(d.Removed)))
	p.metrics.deltaChanged.Add(uint64(len(d.Changed)))

	global, perDel, perAdd := p.compileDelta(next, &d)
	switches := p.emitDelta(span, global, perDel, perAdd)

	if p.cfg.Spans.Enabled() {
		p.cfg.Spans.Commit(obs.Span{
			Trace:     span.Trace,
			ID:        span.Span,
			Parent:    sc.Span,
			Component: obs.CompPCP,
			Stage:     "delta_compile",
			Start:     tStart,
			Duration:  p.cfg.Spans.Now().Sub(tStart),
			Detail: fmt.Sprintf("epoch %d→%d: +%d -%d ~%d rules, %d global mods, %d switches",
				d.From, d.To, len(d.Added), len(d.Removed), len(d.Changed), len(global), switches),
		})
	}
	if p.cfg.Audit != nil {
		_ = p.cfg.Audit.Append(obs.AuditRecord{
			Kind:        "policy",
			Op:          "flush",
			Trace:       uint64(span.Trace),
			PolicyEpoch: snap.Epoch(),
			Detail: fmt.Sprintf("delta epoch %d→%d: %d added, %d removed, %d changed rules across %d switches",
				d.From, d.To, len(d.Added), len(d.Removed), len(d.Changed), switches),
		})
	}
}

// compileDelta translates a rule delta into flow mods: global mods go to
// every switch, per-switch mods only where a rule's DPID constraints (or a
// proactive entry's location) scope it. Deletes and adds are kept apart so
// emitDelta can order deletes first on every switch.
func (p *PCP) compileDelta(c *classifier.Compiled, d *classifier.Delta) (global []*openflow.FlowMod, perDel, perAdd map[uint64][]*openflow.FlowMod) {
	perDel = make(map[uint64][]*openflow.FlowMod)
	perAdd = make(map[uint64][]*openflow.FlowMod)

	// Removed and changed rules: one cookie-scoped delete evicts every
	// reactive and proactive entry the rule ever produced, on any switch.
	for _, r := range d.Removed {
		global = append(global, cookieDelete(r.ID))
		p.setProactiveFlows(r.ID, nil)
	}
	for _, r := range d.Changed {
		global = append(global, cookieDelete(r.ID))
	}

	// Added and changed rules: match-scoped deletes evict installed entries
	// — whatever cookie they carry — matching traffic the rule now decides,
	// so no pre-existing entry (a reactive allow from a lower-priority
	// rule, a default-deny exact) can mask the new rule; then proactive
	// entries for the rule's concretizable bindings are installed.
	fresh := make([]*policy.Rule, 0, len(d.Changed)+len(d.Added))
	fresh = append(fresh, d.Changed...)
	fresh = append(fresh, d.Added...)
	freshIDs := make(map[policy.RuleID]bool, len(fresh))
	for _, r := range fresh {
		freshIDs[r.ID] = true
		dpid, scoped, matches := p.deleteMatchesFor(r)
		for _, m := range matches {
			fm := matchDelete(m)
			if scoped {
				perDel[dpid] = append(perDel[dpid], fm)
			} else {
				global = append(global, fm)
			}
		}
		flows := p.proactiveFlowsFor(c, r)
		for _, pf := range flows {
			perAdd[pf.dpid] = append(perAdd[pf.dpid], pf.fm)
		}
		p.setProactiveFlows(r.ID, flows)
	}
	if p.cfg.ProactivePush {
		global = p.rederiveDisturbed(c, d, freshIDs, global, perDel, perAdd)
	}
	return global, perDel, perAdd
}

// rederiveDisturbed re-derives the proactive entries of allow rules the
// delta disturbs without changing them, appending the resulting mods and
// returning the extended global list. Two kinds of disturbance exist:
//
//   - Blocking changes. A deny entering the delta can newly block pushed
//     allows (their entries must come out, or a stale allow would mask the
//     deny in the dataplane); a deny leaving it — or any changed rule,
//     whose previous shape is unknown — can unblock allows that were held
//     back. Blocking is priority-bounded, so only allows at or below the
//     highest disturbing priority are candidates; a deny add can only
//     shrink coverage, so unless something may unblock, only rules with
//     entries installed need a look.
//
//   - Collateral eviction. The fresh rules' match-scoped deletes are
//     cookie-agnostic and (for identity-only rules) wide, so they can wipe
//     other rules' installed proactive entries; those must be reinstalled
//     even when their derivation is unchanged.
//
// The scan is O(rules with proactive entries) in the common case and
// O(policy) only when a delta may unblock; either way the emitted flow mods
// stay proportional to the entries that actually change.
func (p *PCP) rederiveDisturbed(c *classifier.Compiled, d *classifier.Delta, freshIDs map[policy.RuleID]bool, global []*openflow.FlowMod, perDel, perAdd map[uint64][]*openflow.FlowMod) []*openflow.FlowMod {
	blockers, unblock := false, false
	maxPrio := 0
	note := func(prio int) {
		blockers = true
		if prio > maxPrio {
			maxPrio = prio
		}
	}
	for _, q := range d.Added {
		if q.Action == policy.ActionDeny {
			note(q.Priority)
		}
	}
	for _, q := range d.Removed {
		if q.Action == policy.ActionDeny {
			note(q.Priority)
			unblock = true
		}
	}
	if len(d.Changed) > 0 {
		// The old side of a changed rule is gone; assume it could have
		// blocked (or unblocked) at any priority.
		blockers, unblock = true, true
		maxPrio = int(^uint(0) >> 1)
	}

	// Installed entries a delete in this delta would evict force a
	// reinstall regardless of derivation equality.
	forced := make(map[policy.RuleID]bool)
	p.proactiveMu.Lock()
	for id, flows := range p.proactiveFlows {
		if freshIDs[id] {
			continue
		}
		for _, pf := range flows {
			if deleteHits(pf, uint64(id), global) || deleteHits(pf, uint64(id), perDel[pf.dpid]) {
				forced[id] = true
				break
			}
		}
	}
	withEntries := make([]policy.RuleID, 0, len(p.proactiveFlows))
	for id := range p.proactiveFlows {
		withEntries = append(withEntries, id)
	}
	p.proactiveMu.Unlock()
	if !blockers && len(forced) == 0 {
		return global
	}

	var candidates []*policy.Rule
	if unblock {
		for _, a := range c.Snapshot().All() {
			if a.Action != policy.ActionAllow || freshIDs[a.ID] {
				continue
			}
			if forced[a.ID] || (blockers && a.Priority <= maxPrio) {
				candidates = append(candidates, a)
			}
		}
	} else {
		for _, id := range withEntries {
			a := c.Snapshot().Get(id)
			if a == nil || a.Action != policy.ActionAllow || freshIDs[id] {
				continue
			}
			if forced[id] || (blockers && a.Priority <= maxPrio) {
				candidates = append(candidates, a)
			}
		}
	}
	for _, a := range candidates {
		flows := p.proactiveFlowsFor(c, a)
		old := p.getProactiveFlows(a.ID)
		if !forced[a.ID] && flowsEqual(old, flows) {
			continue
		}
		if len(old) == 0 && len(flows) == 0 {
			continue
		}
		if len(old) > 0 {
			global = append(global, cookieDelete(a.ID))
		}
		for _, pf := range flows {
			perAdd[pf.dpid] = append(perAdd[pf.dpid], pf.fm)
		}
		p.setProactiveFlows(a.ID, flows)
	}
	return global
}

// deleteHits reports whether any delete in fms would evict the installed
// entry pf (cookie id): a non-strict delete hits when its cookie window
// includes the entry's cookie and its match covers the entry's.
func deleteHits(pf proactiveFlow, cookie uint64, fms []*openflow.FlowMod) bool {
	for _, fm := range fms {
		if fm.Command != openflow.FlowModDelete {
			continue
		}
		if fm.CookieMask != 0 && fm.Cookie&fm.CookieMask != cookie&fm.CookieMask {
			continue
		}
		if fm.Match == nil || fm.Match.Covers(pf.fm.Match) {
			return true
		}
	}
	return false
}

// cookieDelete compiles the delete-everything-derived-from-one-policy-rule
// flow mod (cookies carry the policy rule id).
func cookieDelete(id policy.RuleID) *openflow.FlowMod {
	return &openflow.FlowMod{
		Cookie:     uint64(id),
		CookieMask: ^uint64(0),
		TableID:    0,
		Command:    openflow.FlowModDelete,
		OutPort:    openflow.PortAny,
		OutGroup:   0xffffffff,
		Match:      &openflow.Match{},
	}
}

// matchDelete compiles a cookie-agnostic non-strict delete over one match.
func matchDelete(m *openflow.Match) *openflow.FlowMod {
	return &openflow.FlowMod{
		TableID:  0,
		Command:  openflow.FlowModDelete,
		OutPort:  openflow.PortAny,
		OutGroup: 0xffffffff,
		Match:    m,
	}
}

// deleteMatchesFor derives the match set whose non-strict deletes cover
// every installed table-0 entry that could carry traffic rule r matches.
// scoped reports whether the deletes apply to one switch only (the rule
// constrains a DPID). An empty match set means the rule can match no flow
// the PCP ever compiles state for (nothing to evict).
//
// Covers semantics are subsetting: a delete only reaches entries that pin
// every field it pins, so fields are taken from the rule only when every
// affected entry is guaranteed to pin them. Exact reactive entries pin the
// packet's full identifier set; widened entries (WildcardCaching) pin only
// in-port, MACs, EtherType and IP protocol — so with widening enabled the
// deletes drop IP and L4 fields and evict coarser.
func (p *PCP) deleteMatchesFor(r *policy.Rule) (dpid uint64, scoped bool, matches []*openflow.Match) {
	if r.Src.DPID != nil {
		dpid, scoped = *r.Src.DPID, true
	}
	if r.Dst.DPID != nil {
		if scoped && *r.Dst.DPID != dpid {
			// The admission view gives both endpoints the ingress switch's
			// DPID; conflicting constraints match nothing.
			return 0, false, nil
		}
		dpid, scoped = *r.Dst.DPID, true
	}

	base := openflow.Match{
		InPort: r.Src.SwitchPort,
		EthSrc: r.Src.MAC,
		EthDst: r.Dst.MAC,
	}
	srcIP, dstIP := r.Src.IP, r.Dst.IP
	srcPort, dstPort := r.Src.Port, r.Dst.Port
	hasIP := srcIP != nil || dstIP != nil
	hasL4 := srcPort != nil || dstPort != nil
	if p.cfg.WildcardCaching {
		// Widened entries would not be Covered by IP- or port-pinning
		// deletes; keep the variant structure, drop the values.
		srcIP, dstIP, srcPort, dstPort = nil, nil, nil, nil
	}

	ipv4 := func() []*openflow.Match {
		m := base
		m.EthType = openflow.U16(netpkt.EtherTypeIPv4)
		m.IPv4Src, m.IPv4Dst = srcIP, dstIP
		proto := r.Props.IPProto
		if !hasL4 {
			m.IPProto = proto
			return []*openflow.Match{&m}
		}
		switch {
		case proto != nil && *proto == netpkt.ProtoTCP:
			m.IPProto = proto
			m.TCPSrc, m.TCPDst = srcPort, dstPort
			return []*openflow.Match{&m}
		case proto != nil && *proto == netpkt.ProtoUDP:
			m.IPProto = proto
			m.UDPSrc, m.UDPDst = srcPort, dstPort
			return []*openflow.Match{&m}
		case proto != nil:
			// Port constraints on a port-less protocol match nothing.
			return nil
		default:
			tcp, udp := m, m
			tcp.IPProto = openflow.U8(netpkt.ProtoTCP)
			tcp.TCPSrc, tcp.TCPDst = srcPort, dstPort
			udp.IPProto = openflow.U8(netpkt.ProtoUDP)
			udp.UDPSrc, udp.UDPDst = srcPort, dstPort
			return []*openflow.Match{&tcp, &udp}
		}
	}
	arp := func() []*openflow.Match {
		m := base
		m.EthType = openflow.U16(netpkt.EtherTypeARP)
		m.ARPSPA, m.ARPTPA = srcIP, dstIP
		return []*openflow.Match{&m}
	}

	switch {
	case r.Props.EtherType == nil:
		switch {
		case r.Props.IPProto != nil || hasL4:
			// Only IPv4 traffic carries an IP protocol or L4 ports.
			matches = ipv4()
		case hasIP:
			// IP constraints reach IPv4 and ARP (sender/target) traffic.
			matches = append(ipv4(), arp()...)
		default:
			matches = []*openflow.Match{&base}
		}
	case *r.Props.EtherType == netpkt.EtherTypeIPv4:
		matches = ipv4()
	case *r.Props.EtherType == netpkt.EtherTypeARP:
		if r.Props.IPProto == nil && !hasL4 {
			matches = arp()
		}
	default:
		if r.Props.IPProto == nil && !hasL4 && !hasIP {
			m := base
			m.EthType = openflow.U16(*r.Props.EtherType)
			matches = []*openflow.Match{&m}
		}
	}
	return dpid, scoped, matches
}

// emitDelta writes the delta to every attached switch — global mods plus
// the switch's scoped mods, deletes always before adds — over the same
// bounded fan-out FlushPolicies uses, and returns how many switches were
// written. Switches with nothing to write are skipped.
func (p *PCP) emitDelta(span obs.SpanContext, global []*openflow.FlowMod, perDel, perAdd map[uint64][]*openflow.FlowMod) int {
	p.mu.RLock()
	dpids := make([]uint64, 0, len(p.switches))
	clients := make([]SwitchClient, 0, len(p.switches))
	for dpid, c := range p.switches {
		dpids = append(dpids, dpid)
		clients = append(clients, c)
	}
	p.mu.RUnlock()

	batches := make([][]*openflow.FlowMod, len(clients))
	written := 0
	for i, dpid := range dpids {
		n := len(global) + len(perDel[dpid]) + len(perAdd[dpid])
		if n == 0 {
			continue
		}
		fms := make([]*openflow.FlowMod, 0, n)
		fms = append(fms, global...)
		fms = append(fms, perDel[dpid]...)
		fms = append(fms, perAdd[dpid]...)
		batches[i] = fms
		written++
		for _, fm := range fms {
			if fm.Command == openflow.FlowModAdd {
				p.metrics.deltaModAdds.Inc()
			} else {
				p.metrics.deltaModDeletes.Inc()
			}
		}
	}
	if written == 0 {
		return 0
	}
	if workers := min(p.cfg.FlushFanOut, written); workers <= 1 {
		for i := range clients {
			if batches[i] != nil {
				p.flushSwitch(span, dpids[i], clients[i], batches[i])
			}
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					p.flushSwitch(span, dpids[i], clients[i], batches[i])
				}
			}()
		}
		for i := range clients {
			if batches[i] != nil {
				next <- i
			}
		}
		close(next)
		wg.Wait()
	}
	return written
}

// setProactiveFlows records a rule's current proactive derivation and
// feeds the push/remove counters from the set-size delta.
func (p *PCP) setProactiveFlows(id policy.RuleID, flows []proactiveFlow) {
	p.proactiveMu.Lock()
	old := len(p.proactiveFlows[id])
	if len(flows) == 0 {
		delete(p.proactiveFlows, id)
	} else {
		p.proactiveFlows[id] = flows
	}
	p.proactiveMu.Unlock()
	if n := len(flows); n > old {
		p.metrics.proactivePushed.Add(uint64(n - old))
	} else if old > n {
		p.metrics.proactiveRemoved.Add(uint64(old - n))
	}
}

// getProactiveFlows returns the recorded derivation for one rule. The
// slice is shared read-only: derivations are replaced wholesale, never
// mutated in place.
func (p *PCP) getProactiveFlows(id policy.RuleID) []proactiveFlow {
	p.proactiveMu.Lock()
	defer p.proactiveMu.Unlock()
	return p.proactiveFlows[id]
}

// flowsEqual reports whether two derivations install the same entries.
// Derivation is deterministic in (classifier, bindings), so an elementwise
// compare suffices; priority and cookie are fixed per rule by construction.
func flowsEqual(a, b []proactiveFlow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].dpid != b[i].dpid || !a[i].fm.Match.Equal(b[i].fm.Match) {
			return false
		}
	}
	return true
}
