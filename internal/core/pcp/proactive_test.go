package pcp

import (
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// newProactiveEnv builds a proactive-push PCP over the oracle universe
// with one simulated switch (dpid 1) attached, ports 1-3 (hosts) and 2000
// (an uplink sink) wired, and a table-1 match-all forwarder so admitted
// traffic visibly forwards.
func newProactiveEnv(t testing.TB, mut func(*Config)) (*PCP, *policy.Manager, *entity.Manager, *switchsim.Switch) {
	t.Helper()
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	for _, port := range []uint32{1, 2, 3, 2000} {
		if err := sw.AttachPort(port, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 1, Command: openflow.FlowModAdd, Priority: 1, BufferID: openflow.NoBuffer,
		Match: &openflow.Match{},
		Instructions: []openflow.Instruction{&openflow.InstructionApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2000}}}},
	}); err != nil {
		t.Fatal(err)
	}
	erm := entity.NewManager()
	pm := policy.NewManager()
	cfg := Config{Entity: erm, Policy: pm, ProactivePush: true}
	if mut != nil {
		mut(&cfg)
	}
	p := New(cfg)
	bindOracleUniverse(erm)
	p.AttachSwitch(1, simClient{sw})
	for _, pdp := range []struct {
		name string
		prio int
	}{{"low", 10}, {"high", 20}} {
		if err := pm.RegisterPDP(pdp.name, pdp.prio); err != nil {
			t.Fatal(err)
		}
	}
	return p, pm, erm, sw
}

func allowAliceToH2(t testing.TB, pm *policy.Manager) policy.RuleID {
	t.Helper()
	id, err := pm.Insert(policy.Rule{PDP: "high", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{User: "alice"}, Dst: policy.EndpointSpec{Host: "h2"}})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func aliceToH2TCP() []byte {
	return netpkt.BuildTCP(oracleMACs[0], oracleMACs[1], oracleIPs[0], oracleIPs[1],
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: 445, Flags: netpkt.TCPSyn})
}

// TestProactiveFirstPacketZeroPacketIns is the tentpole's dataplane claim:
// once an allow rule's identifier chain is fully bound, the very first
// packet of a covered flow forwards in the switch without any packet-in
// (CtrlDrops counts packet-in attempts here — no controller is attached).
func TestProactiveFirstPacketZeroPacketIns(t *testing.T) {
	p, pm, _, sw := newProactiveEnv(t, nil)
	defer p.Stop()
	allowAliceToH2(t, pm)
	if n := sw.FlowCount(0); n < 2 {
		t.Fatalf("table 0 holds %d proactive entries, want ≥ 2 (IPv4 + ARP variants)", n)
	}

	sw.Inject(1, aliceToH2TCP())
	c := sw.Counters()
	if c.CtrlDrops != 0 || c.PacketIns != 0 {
		t.Fatalf("first covered packet raised a packet-in (attempts=%d)", c.CtrlDrops+c.PacketIns)
	}
	if c.TxPackets != 1 {
		t.Fatalf("first covered packet did not forward: tx=%d drops=%d", c.TxPackets, c.Drops)
	}

	// Unicast address resolution between the endpoints is covered too
	// (broadcast requests carry the broadcast MAC and stay reactive, like
	// any flow whose identifiers differ from the concretized entry).
	sw.Inject(1, netpkt.BuildARP(&netpkt.ARP{
		Op: netpkt.ARPReply, SenderMAC: oracleMACs[0], SenderIP: oracleIPs[0],
		TargetMAC: oracleMACs[1], TargetIP: oracleIPs[1]}))
	if c := sw.Counters(); c.CtrlDrops != 0 || c.PacketIns != 0 {
		t.Fatal("ARP between covered endpoints raised a packet-in")
	}

	// An uncovered flow (carol → h2, no allow rule) still goes reactive.
	sw.Inject(3, netpkt.BuildTCP(oracleMACs[2], oracleMACs[1], oracleIPs[2], oracleIPs[1],
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: 445, Flags: netpkt.TCPSyn}))
	if c := sw.Counters(); c.CtrlDrops+c.PacketIns != 1 {
		t.Fatalf("uncovered flow raised %d packet-in attempts, want 1", c.CtrlDrops+c.PacketIns)
	}
}

// TestProactiveBindingChangeRederives: the entity change hook retargets a
// rule's entries as its identifier chain rebinds — logout evicts, login on
// another host re-pushes at the new attachment point.
func TestProactiveBindingChangeRederives(t *testing.T) {
	p, pm, erm, sw := newProactiveEnv(t, nil)
	defer p.Stop()
	allowAliceToH2(t, pm)
	if o, tbl := sw.Evaluate(1, aliceToH2TCP()); o != switchsim.OutcomeForward && tbl != 1 {
		t.Fatalf("covered flow not admitted: (%v, table %d)", o, tbl)
	}

	erm.UnbindUserHost("alice", "h1")
	if n := sw.FlowCount(0); n != 0 {
		t.Fatalf("alice logged out but %d entries remain", n)
	}
	if o, tbl := sw.Evaluate(1, aliceToH2TCP()); o != switchsim.OutcomeMiss || tbl != 0 {
		t.Fatalf("stale coverage after logout: (%v, table %d)", o, tbl)
	}

	erm.BindUserHost("alice", "h3")
	if sw.FlowCount(0) == 0 {
		t.Fatal("alice logged in on h3 but no entries were re-pushed")
	}
	h3Frame := netpkt.BuildTCP(oracleMACs[2], oracleMACs[1], oracleIPs[2], oracleIPs[1],
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: 445, Flags: netpkt.TCPSyn})
	if o, tbl := sw.Evaluate(3, h3Frame); !(o == switchsim.OutcomeForward || (o == switchsim.OutcomeMiss && tbl == 1)) {
		t.Fatalf("re-pushed coverage does not admit h3 traffic: (%v, table %d)", o, tbl)
	}
	// The old attachment stays dark.
	if o, tbl := sw.Evaluate(1, aliceToH2TCP()); o != switchsim.OutcomeMiss || tbl != 0 {
		t.Fatalf("h1 entries survived the roam: (%v, table %d)", o, tbl)
	}
}

// TestProactiveRevocationEvicts: revoking the rule removes every derived
// entry; the flow's next packet is a table-0 miss (packet-in, then denied).
func TestProactiveRevocationEvicts(t *testing.T) {
	p, pm, _, sw := newProactiveEnv(t, nil)
	defer p.Stop()
	id := allowAliceToH2(t, pm)
	// Drive one reactive install for the same rule as well: the covered
	// packet arrives as a packet-in (as if raced ahead of the push).
	p.Process(&Request{DPID: 1, PacketIn: packetInFor(aliceToH2TCP(), 1)})
	before := sw.FlowCount(0)
	if before < 3 {
		t.Fatalf("expected proactive + reactive entries, got %d", before)
	}
	if err := pm.Revoke(id); err != nil {
		t.Fatal(err)
	}
	if n := sw.FlowCount(0); n != 0 {
		t.Fatalf("%d entries outlived the revocation", n)
	}
	if o, tbl := sw.Evaluate(1, aliceToH2TCP()); o != switchsim.OutcomeMiss || tbl != 0 {
		t.Fatalf("revoked flow still decided in the dataplane: (%v, table %d)", o, tbl)
	}
	if removed := p.Metrics().ProactivePushed(); removed == 0 {
		t.Fatal("proactive push metric never moved")
	}
}

// TestProactiveAttachPopulates: a switch attaching after the policy was
// loaded receives its scoped entry set before AttachSwitch returns.
func TestProactiveAttachPopulates(t *testing.T) {
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := New(Config{Entity: erm, Policy: pm, ProactivePush: true})
	defer p.Stop()
	bindOracleUniverse(erm)
	if err := pm.RegisterPDP("high", 20); err != nil {
		t.Fatal(err)
	}
	allowAliceToH2(t, pm)

	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	p.AttachSwitch(1, simClient{sw})
	if sw.FlowCount(0) == 0 {
		t.Fatal("attach-time population installed nothing")
	}
	if o, tbl := sw.Evaluate(1, aliceToH2TCP()); o != switchsim.OutcomeMiss || tbl != 1 {
		t.Fatalf("populated switch does not admit the covered flow: (%v, table %d)", o, tbl)
	}
	// A switch the rule has no bindings on stays empty.
	other := switchsim.NewSwitch(switchsim.Config{DPID: 9})
	p.AttachSwitch(9, simClient{other})
	if n := other.FlowCount(0); n != 0 {
		t.Fatalf("unrelated switch received %d entries", n)
	}
}

// TestProactiveMaxFlowsCap: the per-rule expansion cap bounds table usage;
// rules over the cap stay partially reactive instead of flooding table 0.
func TestProactiveMaxFlowsCap(t *testing.T) {
	p, pm, _, sw := newProactiveEnv(t, func(c *Config) { c.ProactiveMaxFlows = 1 })
	defer p.Stop()
	allowAliceToH2(t, pm)
	if n := sw.FlowCount(0); n != 1 {
		t.Fatalf("cap=1 but %d entries installed", n)
	}
}

// TestProactiveMissMetric: a packet-in decided by a rule that has entries
// installed counts as a coverage miss.
func TestProactiveMissMetric(t *testing.T) {
	p, pm, _, _ := newProactiveEnv(t, nil)
	defer p.Stop()
	allowAliceToH2(t, pm)
	p.Process(&Request{DPID: 1, PacketIn: packetInFor(aliceToH2TCP(), 1)})
	if n := p.Metrics().ProactiveMisses(); n != 1 {
		t.Fatalf("proactive misses = %d, want 1", n)
	}
}

// BenchmarkProactiveFirstPacket compares the first-packet cost of a flow
// whose allow rule is proactively resident in table 0 (a dataplane
// Evaluate, no packet-in) against the reactive path (packet-in through the
// full admission pipeline).
func BenchmarkProactiveFirstPacket(b *testing.B) {
	b.Run("proactive", func(b *testing.B) {
		p, pm, _, sw := newProactiveEnv(b, nil)
		defer p.Stop()
		allowAliceToH2(b, pm)
		frame := aliceToH2TCP()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if o, tbl := sw.Evaluate(1, frame); o == switchsim.OutcomeMiss && tbl == 0 {
				b.Fatal("flow not covered")
			}
		}
	})
	b.Run("reactive", func(b *testing.B) {
		erm := entity.NewManager()
		pm := policy.NewManager()
		// No proactive push, no decision cache: every packet is a
		// first packet taking the full enrich-and-query admission path.
		p := New(Config{Entity: erm, Policy: pm, FlowCacheSize: -1})
		defer p.Stop()
		bindOracleUniverse(erm)
		if err := pm.RegisterPDP("high", 20); err != nil {
			b.Fatal(err)
		}
		allowAliceToH2(b, pm)
		sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
		p.AttachSwitch(1, simClient{sw})
		req := &Request{DPID: 1, PacketIn: packetInFor(aliceToH2TCP(), 1)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Process(req)
		}
	})
}
