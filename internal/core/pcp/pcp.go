// Package pcp implements DFI's Policy Compilation Point (paper §III-B): it
// receives new-flow requests (packet-ins) from the DFI Proxy, enriches the
// packet's low-level identifiers via the Entity Resolution Manager, queries
// the Policy Manager for the highest-priority matching rule, compiles an
// exact-match flow rule tagged with the policy id as its cookie, installs
// it in the switch's table 0, and flushes cookie-tagged rules when policy
// changes. It also hosts the MAC↔switch-port identifier-binding sensor.
//
// Requests flow through a bounded queue drained by a worker pool; a full
// queue drops the request (the flow re-enters on retransmission), which is
// the saturation behaviour the paper measures above ~800 flows/sec.
package pcp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/harness"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// SwitchClient writes OpenFlow messages to one switch; the DFI Proxy
// provides one per switch connection.
type SwitchClient interface {
	WriteFlowMod(fm *openflow.FlowMod) error
}

// FlowReader is the optional read side of a SwitchClient: fetching flow
// statistics from the switch (the proxy implements it by issuing its own
// multipart requests and intercepting the replies).
type FlowReader interface {
	ReadFlows(req *openflow.FlowStatsRequest) ([]*openflow.FlowStatsEntry, error)
}

// ErrNoFlowReader reports a switch attachment that cannot serve flow reads.
var ErrNoFlowReader = errors.New("pcp: switch attachment does not support flow reads")

// ErrUnknownSwitch reports an operation on an unattached datapath.
var ErrUnknownSwitch = errors.New("pcp: unknown switch")

// Decision is the outcome of processing one new flow.
type Decision struct {
	// Allow reports whether the flow may proceed (and the packet-in may be
	// forwarded to the controller).
	Allow bool
	// RuleID is the policy rule that decided the flow;
	// policy.DefaultDenyID for the implicit default deny.
	RuleID policy.RuleID
	// Err is set when the packet could not be evaluated (parse failure or
	// inconsistent identifier bindings); such flows are denied.
	Err error
}

// Request is one new-flow admission request.
type Request struct {
	DPID     uint64
	PacketIn *openflow.PacketIn
	// Done, if non-nil, receives the decision once processing completes.
	Done func(Decision)
}

// Config parameterizes a PCP.
type Config struct {
	Entity *entity.Manager
	Policy *policy.Manager
	// Clock and ProcessingLatency simulate the PCP's own compute cost
	// beyond the binding and policy queries (paper Table II "Other PCP
	// Processing"); zero by default.
	Clock             simclock.Clock
	ProcessingLatency store.LatencyModel
	// QueueDepth bounds pending requests (default 512).
	QueueDepth int
	// Workers sets the worker pool size (default 8).
	Workers int
	// RulePriority is the priority of installed DFI rules (default 100).
	RulePriority uint16
	// WildcardCaching enables the CAB-ACME-style extension (paper §III-B):
	// provably-safe widened flow rules instead of exact matches, reducing
	// control-plane load (see wildcard.go for the safety argument).
	WildcardCaching bool
	// AllowIdleTimeoutSec/DenyIdleTimeoutSec bound rule lifetime so
	// tables do not grow without bound; policy changes are handled by
	// cookie-scoped flushes, not timeouts (default 300/30).
	AllowIdleTimeoutSec uint16
	DenyIdleTimeoutSec  uint16
	// FlowCacheSize bounds the flow-decision cache, the LRU that lets a
	// re-admitted flow skip the binding and policy queries while both the
	// policy epoch and the entity (binding) epoch are unchanged (see
	// cache.go for the staleness argument). 0 selects the default (4096
	// entries); negative disables the cache.
	FlowCacheSize int
}

// Metrics exposes the per-stage latency breakdown the paper reports in
// Table II, plus queue statistics.
type Metrics struct {
	BindingQuery *harness.DurationStats
	PolicyQuery  *harness.DurationStats
	OtherPCP     *harness.DurationStats
	Total        *harness.DurationStats

	processed   atomic.Uint64
	dropped     atomic.Uint64
	denied      atomic.Uint64
	allowed     atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

// Processed returns the number of requests fully processed.
func (m *Metrics) Processed() uint64 { return m.processed.Load() }

// Dropped returns the number of requests rejected by a full queue.
func (m *Metrics) Dropped() uint64 { return m.dropped.Load() }

// Denied returns the number of deny decisions.
func (m *Metrics) Denied() uint64 { return m.denied.Load() }

// Allowed returns the number of allow decisions.
func (m *Metrics) Allowed() uint64 { return m.allowed.Load() }

// CacheHits returns the number of admissions served from the
// flow-decision cache (binding and policy queries skipped).
func (m *Metrics) CacheHits() uint64 { return m.cacheHits.Load() }

// CacheMisses returns the number of admissions that took the full
// enrich-and-query path (including when the cache is disabled).
func (m *Metrics) CacheMisses() uint64 { return m.cacheMisses.Load() }

// PCP is the Policy Compilation Point.
type PCP struct {
	cfg     Config
	metrics Metrics
	cache   *decisionCache // nil when disabled

	queue chan *Request
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once

	mu       sync.RWMutex
	switches map[uint64]SwitchClient
	started  bool
}

// ErrNotRunning reports a Submit on a PCP that was not started.
var ErrNotRunning = errors.New("pcp: not running")

// New returns a PCP and registers its flush handler with the Policy
// Manager.
func New(cfg Config) *PCP {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.RulePriority == 0 {
		cfg.RulePriority = 100
	}
	if cfg.AllowIdleTimeoutSec == 0 {
		cfg.AllowIdleTimeoutSec = 300
	}
	if cfg.DenyIdleTimeoutSec == 0 {
		cfg.DenyIdleTimeoutSec = 30
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	p := &PCP{
		cfg:      cfg,
		queue:    make(chan *Request, cfg.QueueDepth),
		stop:     make(chan struct{}),
		switches: make(map[uint64]SwitchClient),
	}
	if cfg.FlowCacheSize >= 0 {
		size := cfg.FlowCacheSize
		if size == 0 {
			size = 4096
		}
		p.cache = newDecisionCache(size)
	}
	p.metrics.BindingQuery = &harness.DurationStats{}
	p.metrics.PolicyQuery = &harness.DurationStats{}
	p.metrics.OtherPCP = &harness.DurationStats{}
	p.metrics.Total = &harness.DurationStats{}
	cfg.Policy.SetFlushFunc(p.FlushPolicies)
	return p
}

// Metrics returns the PCP's metrics collector.
func (p *PCP) Metrics() *Metrics { return &p.metrics }

// Start launches the worker pool.
func (p *PCP) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Stop drains the workers and waits for them to exit.
func (p *PCP) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.mu.Lock()
	p.started = false
	p.mu.Unlock()
}

// AttachSwitch registers the write path for one switch's table 0.
func (p *PCP) AttachSwitch(dpid uint64, client SwitchClient) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.switches[dpid] = client
}

// DetachSwitch removes a switch.
func (p *PCP) DetachSwitch(dpid uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.switches, dpid)
}

func (p *PCP) client(dpid uint64) SwitchClient {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.switches[dpid]
}

// Switches lists the attached datapath ids, sorted.
func (p *PCP) Switches() []uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]uint64, 0, len(p.switches))
	for dpid := range p.switches {
		out = append(out, dpid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadFlows fetches flow statistics from one attached switch, when its
// attachment supports reading (the DFI Proxy's does).
func (p *PCP) ReadFlows(dpid uint64, req *openflow.FlowStatsRequest) ([]*openflow.FlowStatsEntry, error) {
	client := p.client(dpid)
	if client == nil {
		return nil, fmt.Errorf("%w: %#x", ErrUnknownSwitch, dpid)
	}
	reader, ok := client.(FlowReader)
	if !ok {
		return nil, ErrNoFlowReader
	}
	return reader.ReadFlows(req)
}

// Submit enqueues a new-flow request without blocking. It reports false —
// and the request is dropped — when the queue is full (control-plane
// saturation) or the PCP is not running.
func (p *PCP) Submit(req *Request) bool {
	p.mu.RLock()
	started := p.started
	p.mu.RUnlock()
	if !started {
		p.metrics.dropped.Add(1)
		return false
	}
	select {
	case p.queue <- req:
		return true
	default:
		p.metrics.dropped.Add(1)
		return false
	}
}

func (p *PCP) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case req := <-p.queue:
			p.Process(req)
		}
	}
}

// Process handles one request synchronously: parse (once), enrich, decide,
// compile, install, notify. Exported for single-threaded harnesses (the
// worm testbed) that bypass the queue.
//
// The decision step consults the flow-decision cache first: a hit skips
// both the binding query and the policy query, which are the two dominant
// per-flow costs the paper measures (Table II). A hit is only served while
// the policy and entity epochs recorded with the cached decision are still
// current, so a cached decision can never survive a revocation, flush or
// binding change (see cache.go).
func (p *PCP) Process(req *Request) {
	start := p.cfg.Clock.Now()
	key, kerr := netpkt.ExtractFlowKey(req.PacketIn.Data)
	var dec Decision
	var fv *policy.FlowView
	if kerr != nil {
		dec = Decision{Err: kerr}
	} else {
		inPort := req.PacketIn.InPort()
		// MAC↔switch-port sensor (paper §IV-A): the PCP is the
		// authoritative observer of where traffic physically enters the
		// network. Runs before the cache probe so that a moved MAC bumps
		// the entity epoch and invalidates decisions made at the old port.
		p.cfg.Entity.BindMACLocation(key.EthSrc, entity.Location{DPID: req.DPID, Port: inPort})

		ck := cacheKey{dpid: req.DPID, inPort: inPort, key: key}
		hit := false
		if p.cache != nil {
			if d, ok := p.cache.lookup(ck, p.cfg.Policy.Epoch(), p.cfg.Entity.Epoch()); ok {
				dec, hit = d, true
				p.metrics.cacheHits.Add(1)
			}
		}
		if !hit {
			p.metrics.cacheMisses.Add(1)
			var policyEpoch, entityEpoch uint64
			dec, fv, policyEpoch, entityEpoch = p.decide(req, key, inPort)
			if p.cache != nil && dec.Err == nil {
				p.cache.store(ck, dec, policyEpoch, entityEpoch)
			}
		}
	}
	p.install(req, dec, fv, key)
	p.metrics.Total.Add(p.cfg.Clock.Now().Sub(start))
	p.metrics.processed.Add(1)
	if dec.Allow {
		p.metrics.allowed.Add(1)
	} else {
		p.metrics.denied.Add(1)
	}
	if req.Done != nil {
		req.Done(dec)
	}
}

// decide runs the full enrich-and-query path for a parsed flow. It returns
// the epochs its answer was derived under — the entity epoch read before
// resolution and the policy epoch carried by the queried snapshot — so the
// caller can cache the decision; a concurrent policy or binding change
// makes the stored epochs stale and the cache entry self-invalidates.
func (p *PCP) decide(req *Request, key netpkt.FlowKey, inPort uint32) (Decision, *policy.FlowView, uint64, uint64) {
	entityEpoch := p.cfg.Entity.Epoch()

	// Binding query: enrich both endpoints in one round trip.
	tBind := p.cfg.Clock.Now()
	srcObs := entity.Observed{
		MAC:    key.EthSrc,
		HasIP:  key.HasIP,
		IP:     key.IPSrc,
		HasLoc: true,
		Loc:    entity.Location{DPID: req.DPID, Port: inPort},
	}
	dstObs := entity.Observed{MAC: key.EthDst, HasIP: key.HasIP, IP: key.IPDst}
	srcRes, dstRes, err := p.cfg.Entity.ResolveBoth(srcObs, dstObs)
	p.metrics.BindingQuery.Add(p.cfg.Clock.Now().Sub(tBind))
	if err != nil {
		// Inconsistent identifiers: spoofed traffic is denied outright.
		return Decision{Err: err}, nil, 0, 0
	}

	fv := flowView(key, inPort, req.DPID, srcRes, dstRes, p.cfg.Entity)

	tPolicy := p.cfg.Clock.Now()
	pd := p.cfg.Policy.Query(fv)
	p.metrics.PolicyQuery.Add(p.cfg.Clock.Now().Sub(tPolicy))

	var ruleID policy.RuleID = policy.DefaultDenyID
	if pd.Matched {
		ruleID = pd.Rule.ID
	}
	return Decision{Allow: pd.Action == policy.ActionAllow, RuleID: ruleID}, fv, pd.Epoch, entityEpoch
}

// install compiles and installs the flow rule implementing dec for req's
// packet, charging the PCP's remaining processing cost. fv is nil for
// decisions served from the flow-decision cache; those install the exact
// match (wildcard widening needs the enriched view and a policy walk —
// exactly the work the cache exists to skip).
func (p *PCP) install(req *Request, dec Decision, fv *policy.FlowView, key netpkt.FlowKey) {
	tOther := p.cfg.Clock.Now()
	defer func() {
		p.metrics.OtherPCP.Add(p.cfg.Clock.Now().Sub(tOther))
	}()
	store.Charge(p.cfg.Clock, p.cfg.ProcessingLatency)

	if dec.Err != nil {
		// Unevaluable packets are denied without installing a rule: the
		// identifiers are untrustworthy, so a cached rule keyed on them
		// would be wrong.
		return
	}
	client := p.client(req.DPID)
	if client == nil {
		return
	}
	fm := p.CompileFlowMod(key, req.PacketIn.InPort(), dec)
	if fv != nil {
		fm.Match = p.compileCachedMatch(key, req.PacketIn.InPort(), fv, dec)
	}
	_ = client.WriteFlowMod(fm)
}

// CompileFlowMod builds the exact-match table-0 rule implementing dec for
// a flow: every identifier present in the packet is pinned so each new flow
// is checked against current policy (paper §III-B). Allowed flows continue
// to table 1 (the controller's first table); denied flows match a rule with
// no instructions and are dropped.
func (p *PCP) CompileFlowMod(key netpkt.FlowKey, inPort uint32, dec Decision) *openflow.FlowMod {
	fm := &openflow.FlowMod{
		Cookie:      uint64(dec.RuleID),
		TableID:     0,
		Command:     openflow.FlowModAdd,
		Priority:    p.cfg.RulePriority,
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortAny,
		OutGroup:    0xffffffff,
		Match:       openflow.ExactMatchFor(key, inPort),
		IdleTimeout: p.cfg.DenyIdleTimeoutSec,
	}
	if dec.Allow {
		fm.IdleTimeout = p.cfg.AllowIdleTimeoutSec
		fm.Instructions = []openflow.Instruction{&openflow.InstructionGotoTable{TableID: 1}}
	}
	return fm
}

// FlushPolicies removes from every attached switch the table-0 rules
// derived from the given policy ids (cookie-scoped delete). The Policy
// Manager invokes this on rule revocation and conflicting inserts.
func (p *PCP) FlushPolicies(ids []policy.RuleID) {
	p.mu.RLock()
	clients := make([]SwitchClient, 0, len(p.switches))
	for _, c := range p.switches {
		clients = append(clients, c)
	}
	p.mu.RUnlock()
	for _, id := range ids {
		fm := &openflow.FlowMod{
			Cookie:     uint64(id),
			CookieMask: ^uint64(0),
			TableID:    0,
			Command:    openflow.FlowModDelete,
			OutPort:    openflow.PortAny,
			OutGroup:   0xffffffff,
			Match:      &openflow.Match{},
		}
		for _, c := range clients {
			_ = c.WriteFlowMod(fm)
		}
	}
}

// flowView assembles the enriched FlowView for policy evaluation.
func flowView(key netpkt.FlowKey, inPort uint32, dpid uint64, src, dst entity.Resolution, erm *entity.Manager) *policy.FlowView {
	fv := &policy.FlowView{
		EtherType:  key.EtherType,
		HasIPProto: key.HasIP && key.EtherType == netpkt.EtherTypeIPv4,
		IPProto:    key.IPProto,
		Src: policy.EndpointAttrs{
			Users:         src.Users,
			Host:          src.Host,
			HasIP:         key.HasIP,
			IP:            key.IPSrc,
			HasPort:       key.HasL4,
			Port:          key.L4Src,
			MAC:           key.EthSrc,
			HasSwitchPort: true,
			SwitchPort:    inPort,
			HasDPID:       true,
			DPID:          dpid,
		},
		Dst: policy.EndpointAttrs{
			Users:   dst.Users,
			Host:    dst.Host,
			HasIP:   key.HasIP,
			IP:      key.IPDst,
			HasPort: key.HasL4,
			Port:    key.L4Dst,
			MAC:     key.EthDst,
			HasDPID: true,
			DPID:    dpid,
		},
	}
	if port, ok := erm.LocationOf(key.EthDst, dpid); ok {
		fv.Dst.HasSwitchPort = true
		fv.Dst.SwitchPort = port
	}
	return fv
}
