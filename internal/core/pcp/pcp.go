// Package pcp implements DFI's Policy Compilation Point (paper §III-B): it
// receives new-flow requests (packet-ins) from the DFI Proxy, enriches the
// packet's low-level identifiers via the Entity Resolution Manager, queries
// the Policy Manager for the highest-priority matching rule, compiles an
// exact-match flow rule tagged with the policy id as its cookie, installs
// it in the switch's table 0, and flushes cookie-tagged rules when policy
// changes. It also hosts the MAC↔switch-port identifier-binding sensor.
//
// Requests flow through a bounded queue drained by a worker pool; a full
// queue drops the request (the flow re-enters on retransmission), which is
// the saturation behaviour the paper measures above ~800 flows/sec.
package pcp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/policy/classifier"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// SwitchClient writes OpenFlow messages to one switch; the DFI Proxy
// provides one per switch connection.
//
// Implementations must not retain fm (or its Match or Instructions) after
// WriteFlowMod returns: the PCP compiles cache-hit flow mods into pooled
// buffers that are reused for the next admission. Retainers must deep-copy.
type SwitchClient interface {
	WriteFlowMod(fm *openflow.FlowMod) error
}

// FlowReader is the optional read side of a SwitchClient: fetching flow
// statistics from the switch (the proxy implements it by issuing its own
// multipart requests and intercepting the replies).
type FlowReader interface {
	ReadFlows(req *openflow.FlowStatsRequest) ([]*openflow.FlowStatsEntry, error)
}

// FlowModBatcher is the optional batch write side of a SwitchClient:
// installing several flow mods in one coalesced write (the proxy
// implements it over its connection's write buffer). WriteFlowMod's
// no-retain contract applies to every element. FlushPolicies prefers this
// interface so a cookie-scoped flush reaches each switch in one syscall.
type FlowModBatcher interface {
	WriteFlowMods(fms []*openflow.FlowMod) error
}

// ErrNoFlowReader reports a switch attachment that cannot serve flow reads.
var ErrNoFlowReader = errors.New("pcp: switch attachment does not support flow reads")

// ErrUnknownSwitch reports an operation on an unattached datapath.
var ErrUnknownSwitch = errors.New("pcp: unknown switch")

// Decision is the outcome of processing one new flow.
type Decision struct {
	// Allow reports whether the flow may proceed (and the packet-in may be
	// forwarded to the controller).
	Allow bool
	// RuleID is the policy rule that decided the flow;
	// policy.DefaultDenyID for the implicit default deny.
	RuleID policy.RuleID
	// Err is set when the packet could not be evaluated (parse failure or
	// inconsistent identifier bindings); such flows are denied.
	Err error
}

// Request is one new-flow admission request.
type Request struct {
	DPID     uint64
	PacketIn *openflow.PacketIn
	// ProxyOverhead is the proxy-side forwarding cost already spent on this
	// packet-in before it was submitted; it is copied into sampled admission
	// traces as the proxy-forward stage.
	ProxyOverhead time.Duration
	// Done, if non-nil, receives the decision once processing completes.
	Done func(Decision)
}

// Config parameterizes a PCP.
type Config struct {
	Entity *entity.Manager
	Policy *policy.Manager
	// Clock and ProcessingLatency simulate the PCP's own compute cost
	// beyond the binding and policy queries (paper Table II "Other PCP
	// Processing"); zero by default.
	Clock             simclock.Clock
	ProcessingLatency store.LatencyModel
	// QueueDepth bounds pending requests (default 512).
	QueueDepth int
	// Workers sets the worker pool size (default 8).
	Workers int
	// RulePriority is the priority of installed DFI rules (default 100).
	RulePriority uint16
	// WildcardCaching enables the CAB-ACME-style extension (paper §III-B):
	// provably-safe widened flow rules instead of exact matches, reducing
	// control-plane load (see wildcard.go for the safety argument).
	WildcardCaching bool
	// DeltaCompilation enables the incremental policy delta-compiler: the
	// PCP maintains a tuple-space classifier compiled per policy epoch
	// (internal/core/policy/classifier), serves admission queries from it,
	// and turns each epoch-to-epoch rule delta into a minimal set of flow
	// mods — O(changed rules), not O(rules) — instead of the legacy
	// cookie-scoped delete list (see delta.go).
	DeltaCompilation bool
	// ProactivePush additionally pushes exact-match table-0 allow rules at
	// rule-insert and binding-change time for entities whose identifier
	// chains are fully bound, so steady-state traffic on those flows
	// generates zero packet-ins (see proactive.go for the safety
	// invariants). Implies DeltaCompilation.
	ProactivePush bool
	// ProactiveMaxFlows caps how many proactive flow entries one policy
	// rule may expand into across all switches (default 128); rules whose
	// binding fan-out exceeds the cap stay partially reactive.
	ProactiveMaxFlows int
	// AllowIdleTimeoutSec/DenyIdleTimeoutSec bound rule lifetime so
	// tables do not grow without bound; policy changes are handled by
	// cookie-scoped flushes, not timeouts (default 300/30).
	AllowIdleTimeoutSec uint16
	DenyIdleTimeoutSec  uint16
	// FlushFanOut bounds how many switches FlushPolicies writes to
	// concurrently when flushing cookie-scoped rules (default 8). 1
	// serializes the writes (the pre-fan-out behaviour); the flush is
	// synchronous either way — it returns only after every switch was
	// written, so time-to-enforcement spans stay accurate.
	FlushFanOut int
	// FlowCacheSize bounds the flow-decision cache, the LRU that lets a
	// re-admitted flow skip the binding and policy queries while both the
	// policy epoch and the entity (binding) epoch are unchanged (see
	// cache.go for the staleness argument). 0 selects the default (4096
	// entries); negative disables the cache.
	FlowCacheSize int
	// Obs receives the PCP's instruments (counters, gauges, per-stage
	// histograms). Nil selects a private registry, so Metrics accessors are
	// always live; a dfi.System passes its shared registry here. One PCP
	// per registry — the queue-depth gauge reads this PCP's queue.
	Obs *obs.Registry
	// Trace receives sampled admission traces; nil disables tracing, which
	// costs the admission path one nil check and no allocations.
	Trace *obs.TraceRing
	// Spans receives causal spans: per-stage admission spans for sampled
	// admissions (Trace gates sampling; an admission sampled out emits no
	// spans and allocates nothing) and flush-compilation / flow-mod-write
	// spans for policy flushes. Nil disables span emission.
	Spans *obs.SpanStore
	// Audit, when non-nil, receives a kind="decision" record per processed
	// admission and a kind="policy" op="flush" record per flush.
	Audit *obs.AuditLog
}

// Metrics exposes the per-stage latency breakdown the paper reports in
// Table II, plus queue and cache statistics. Every field is an instrument
// in the PCP's obs.Registry, so the experiment harness (through these
// accessors) and a /v1/metrics scrape read the same numbers.
type Metrics struct {
	BindingQuery *obs.Histogram
	PolicyQuery  *obs.Histogram
	OtherPCP     *obs.Histogram
	Total        *obs.Histogram

	processed   *obs.Counter
	dropped     *obs.Counter
	denied      *obs.Counter
	allowed     *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheStale  *obs.Counter
	workersBusy *obs.Gauge

	deltaCompiles    *obs.Counter
	deltaAdded       *obs.Counter
	deltaRemoved     *obs.Counter
	deltaChanged     *obs.Counter
	deltaModAdds     *obs.Counter
	deltaModDeletes  *obs.Counter
	proactivePushed  *obs.Counter
	proactiveRemoved *obs.Counter
	proactiveMisses  *obs.Counter
}

// Processed returns the number of requests fully processed.
func (m *Metrics) Processed() uint64 { return m.processed.Value() }

// Dropped returns the number of requests rejected by a full queue.
func (m *Metrics) Dropped() uint64 { return m.dropped.Value() }

// Denied returns the number of deny decisions.
func (m *Metrics) Denied() uint64 { return m.denied.Value() }

// Allowed returns the number of allow decisions.
func (m *Metrics) Allowed() uint64 { return m.allowed.Value() }

// CacheHits returns the number of admissions served from the
// flow-decision cache (binding and policy queries skipped).
func (m *Metrics) CacheHits() uint64 { return m.cacheHits.Value() }

// CacheMisses returns the number of admissions that took the full
// enrich-and-query path (including when the cache is disabled).
func (m *Metrics) CacheMisses() uint64 { return m.cacheMisses.Value() }

// CacheStale returns the number of cache probes that found an entry
// invalidated by a policy or binding epoch change (a subset of misses).
func (m *Metrics) CacheStale() uint64 { return m.cacheStale.Value() }

// WorkersBusy returns the number of workers currently processing a request.
func (m *Metrics) WorkersBusy() int64 { return m.workersBusy.Value() }

// DeltaCompiles returns how many non-empty epoch deltas were compiled.
func (m *Metrics) DeltaCompiles() uint64 { return m.deltaCompiles.Value() }

// DeltaFlowMods returns the flow mods emitted by delta flushes, split into
// adds (proactive installs) and deletes.
func (m *Metrics) DeltaFlowMods() (adds, deletes uint64) {
	return m.deltaModAdds.Value(), m.deltaModDeletes.Value()
}

// ProactivePushed returns how many proactive table-0 entries were installed.
func (m *Metrics) ProactivePushed() uint64 { return m.proactivePushed.Value() }

// ProactiveMisses returns admissions whose deciding rule had proactive
// entries installed — packet-ins that proactive coverage should have
// absorbed (a miss means the flow fell outside the concretized entries).
func (m *Metrics) ProactiveMisses() uint64 { return m.proactiveMisses.Value() }

// PCP is the Policy Compilation Point.
type PCP struct {
	cfg     Config
	reg     *obs.Registry
	metrics Metrics
	cache   *decisionCache // nil when disabled

	// compilePool recycles flow-mod compilation buffers so the cache-hit
	// fast path allocates nothing (see compileBuf).
	compilePool sync.Pool

	queue chan *Request
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once

	mu       sync.RWMutex
	switches map[uint64]SwitchClient
	started  bool

	// deltaMu serializes delta compilation, proactive recomputation and
	// their flow-mod emission, so the causal order "classifier published →
	// switch writes issued" holds per epoch and reordered flush callbacks
	// collapse into no-ops (see delta.go). Never held while acquiring mu's
	// write side; mu's read side is taken under it.
	deltaMu  sync.Mutex
	compiled atomic.Pointer[classifier.Compiled]

	// proactiveFlows is the authoritative proactive derivation: the entry
	// set each rule currently expands to (switches hold the dpid-scoped
	// subsets). Kept so re-derivation can diff old against new sets — and
	// skip emission when nothing changed — and so attach-time population
	// and the proactive-miss metric know what is meant to be installed.
	proactiveMu    sync.Mutex
	proactiveFlows map[policy.RuleID][]proactiveFlow
}

// ErrNotRunning reports a Submit on a PCP that was not started.
var ErrNotRunning = errors.New("pcp: not running")

// New returns a PCP and registers its flush handler with the Policy
// Manager.
func New(cfg Config) *PCP {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.RulePriority == 0 {
		cfg.RulePriority = 100
	}
	if cfg.AllowIdleTimeoutSec == 0 {
		cfg.AllowIdleTimeoutSec = 300
	}
	if cfg.DenyIdleTimeoutSec == 0 {
		cfg.DenyIdleTimeoutSec = 30
	}
	if cfg.FlushFanOut <= 0 {
		cfg.FlushFanOut = 8
	}
	if cfg.ProactivePush {
		// Proactive entries are keyed and revoked through the compiled
		// classifier's delta stream.
		cfg.DeltaCompilation = true
	}
	if cfg.ProactiveMaxFlows <= 0 {
		cfg.ProactiveMaxFlows = 128
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	reg := cfg.Obs
	if reg == nil {
		// A private registry keeps every instrument live, so a
		// directly-constructed PCP measures exactly like one wired into a
		// dfi.System with metrics enabled.
		reg = obs.NewRegistry()
	}
	p := &PCP{
		cfg:         cfg,
		reg:         reg,
		compilePool: sync.Pool{New: func() any { return new(compileBuf) }},
		queue:       make(chan *Request, cfg.QueueDepth),
		stop:        make(chan struct{}),
		switches:    make(map[uint64]SwitchClient),

		proactiveFlows: make(map[policy.RuleID][]proactiveFlow),
	}
	if cfg.FlowCacheSize >= 0 {
		size := cfg.FlowCacheSize
		if size == 0 {
			size = 4096
		}
		p.cache = newDecisionCache(size)
	}
	stages := reg.HistogramVec("dfi_pcp_stage_seconds",
		"Per-stage admission latency (paper Table II).", "stage", nil)
	p.metrics.BindingQuery = stages.With("binding_query")
	p.metrics.PolicyQuery = stages.With("policy_query")
	p.metrics.OtherPCP = stages.With("other_pcp")
	p.metrics.Total = stages.With("total")
	decisions := reg.CounterVec("dfi_pcp_decisions_total",
		"Admission decisions by outcome.", "outcome")
	p.metrics.allowed = decisions.With("allow")
	p.metrics.denied = decisions.With("deny")
	cacheEvents := reg.CounterVec("dfi_pcp_cache_events_total",
		"Flow-decision cache probes: hit, miss, or stale (an entry evicted because its policy or entity epoch changed; stale probes also count as misses).",
		"event")
	p.metrics.cacheHits = cacheEvents.With("hit")
	p.metrics.cacheMisses = cacheEvents.With("miss")
	p.metrics.cacheStale = cacheEvents.With("stale")
	p.metrics.processed = reg.Counter("dfi_pcp_processed_total",
		"Admission requests fully processed.")
	p.metrics.dropped = reg.Counter("dfi_pcp_queue_drops_total",
		"Admission requests dropped by a full queue (control-plane saturation).")
	p.metrics.workersBusy = reg.Gauge("dfi_pcp_workers_busy",
		"Admission workers currently processing a request.")
	reg.GaugeFunc("dfi_pcp_workers",
		"Size of the admission worker pool.",
		func() float64 { return float64(cfg.Workers) })
	reg.GaugeFunc("dfi_pcp_queue_depth",
		"Admission requests waiting in the bounded queue.",
		func() float64 { return float64(len(p.queue)) })
	p.metrics.deltaCompiles = reg.Counter("dfi_pcp_delta_compiles_total",
		"Non-empty policy epoch deltas compiled (delta-compilation mode).")
	deltaRules := reg.CounterVec("dfi_pcp_delta_rules_total",
		"Rules in compiled epoch deltas, by kind of change.", "kind")
	p.metrics.deltaAdded = deltaRules.With("added")
	p.metrics.deltaRemoved = deltaRules.With("removed")
	p.metrics.deltaChanged = deltaRules.With("changed")
	deltaMods := reg.CounterVec("dfi_pcp_delta_flowmods_total",
		"Flow mods emitted by delta flushes and proactive recomputation, by command.", "kind")
	p.metrics.deltaModAdds = deltaMods.With("add")
	p.metrics.deltaModDeletes = deltaMods.With("delete")
	proactive := reg.CounterVec("dfi_pcp_proactive_rules_total",
		"Proactive table-0 entries installed and removed.", "kind")
	p.metrics.proactivePushed = proactive.With("pushed")
	p.metrics.proactiveRemoved = proactive.With("removed")
	p.metrics.proactiveMisses = reg.Counter("dfi_pcp_proactive_misses_total",
		"Packet-in admissions decided by a rule that has proactive entries installed (coverage misses).")
	if cfg.DeltaCompilation {
		// Prime the classifier at the current epoch so the first mutation
		// diffs against a real baseline instead of reporting every
		// pre-existing rule as added.
		p.compiled.Store(classifier.Compile(cfg.Policy.Snapshot()))
	}
	if cfg.ProactivePush {
		cfg.Entity.SetChangeFunc(p.OnBindingChange)
	}
	cfg.Policy.SetFlushFunc(p.FlushPolicies)
	return p
}

// Metrics returns the PCP's metrics collector.
func (p *PCP) Metrics() *Metrics { return &p.metrics }

// Registry returns the registry holding the PCP's instruments (the one
// passed in Config.Obs, or the private one created in its absence).
func (p *PCP) Registry() *obs.Registry { return p.reg }

// Start launches the worker pool.
func (p *PCP) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Stop drains the workers and waits for them to exit.
func (p *PCP) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.mu.Lock()
	p.started = false
	p.mu.Unlock()
}

// AttachSwitch registers the write path for one switch's table 0. With
// proactive push enabled, the current proactive entry set scoped to the
// switch is installed in one batch before AttachSwitch returns, so an
// attaching (or re-attaching) switch starts with its table-0 allow rules
// resident.
func (p *PCP) AttachSwitch(dpid uint64, client SwitchClient) {
	p.mu.Lock()
	p.switches[dpid] = client
	p.mu.Unlock()
	if p.cfg.ProactivePush {
		p.populateSwitch(dpid, client)
	}
}

// DetachSwitch removes a switch.
func (p *PCP) DetachSwitch(dpid uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.switches, dpid)
}

func (p *PCP) client(dpid uint64) SwitchClient {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.switches[dpid]
}

// Switches lists the attached datapath ids, sorted.
func (p *PCP) Switches() []uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]uint64, 0, len(p.switches))
	for dpid := range p.switches {
		out = append(out, dpid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadFlows fetches flow statistics from one attached switch, when its
// attachment supports reading (the DFI Proxy's does).
func (p *PCP) ReadFlows(dpid uint64, req *openflow.FlowStatsRequest) ([]*openflow.FlowStatsEntry, error) {
	client := p.client(dpid)
	if client == nil {
		return nil, fmt.Errorf("%w: %#x", ErrUnknownSwitch, dpid)
	}
	reader, ok := client.(FlowReader)
	if !ok {
		return nil, ErrNoFlowReader
	}
	return reader.ReadFlows(req)
}

// Submit enqueues a new-flow request without blocking. It reports false —
// and the request is dropped — when the queue is full (control-plane
// saturation) or the PCP is not running.
func (p *PCP) Submit(req *Request) bool {
	p.mu.RLock()
	started := p.started
	p.mu.RUnlock()
	if !started {
		p.dropOverload(req)
		return false
	}
	select {
	case p.queue <- req:
		return true
	default:
		p.dropOverload(req)
		return false
	}
}

// dropOverload records one queue (or not-running) drop, tracing it when
// sampled so control-plane saturation is visible at /v1/trace.
func (p *PCP) dropOverload(req *Request) {
	p.metrics.dropped.Inc()
	if p.cfg.Trace.Sampled() {
		p.cfg.Trace.Commit(obs.AdmissionTrace{
			Start:   p.cfg.Clock.Now(),
			DPID:    req.DPID,
			Outcome: obs.OutcomeOverloadDrop,
			Proxy:   req.ProxyOverhead,
		})
	}
}

func (p *PCP) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case req := <-p.queue:
			p.metrics.workersBusy.Inc()
			p.Process(req)
			p.metrics.workersBusy.Dec()
		}
	}
}

// Process handles one request synchronously: parse (once), enrich, decide,
// compile, install, notify. Exported for single-threaded harnesses (the
// worm testbed) that bypass the queue.
//
// The decision step consults the flow-decision cache first: a hit skips
// both the binding query and the policy query, which are the two dominant
// per-flow costs the paper measures (Table II). A hit is only served while
// the policy and entity epochs recorded with the cached decision are still
// current, so a cached decision can never survive a revocation, flush or
// binding change (see cache.go).
//
// Process, install, compileBuf.fill and decisionCache.lookup are the
// cache-hit admission path the zero-alloc gate measures; decide and
// CompileFlowMod (the miss path) pay the enrichment/compile allocations
// deliberately and are not annotated.
//
//dfi:hotpath
func (p *PCP) Process(req *Request) {
	start := p.cfg.Clock.Now()
	// tr stays on the stack: it is only ever copied by value into the ring,
	// so an admission that is sampled out pays nothing beyond zeroing it.
	var tr obs.AdmissionTrace
	var root obs.SpanContext
	sampled := p.cfg.Trace.Sampled()
	key, kerr := netpkt.ExtractFlowKey(req.PacketIn.Data)
	if sampled {
		// One trace id per sampled admission links the ring entry to its
		// causal spans (zero when no span store is configured).
		root = p.cfg.Spans.NewRoot()
		tr.TraceID = uint64(root.Trace)
		tr.Start = start
		tr.DPID = req.DPID
		tr.Key = key
		tr.Proxy = req.ProxyOverhead
		tr.Parse = p.cfg.Clock.Now().Sub(start)
	}
	var dec Decision
	var fv *policy.FlowView
	hit := false
	if kerr != nil {
		dec = Decision{Err: kerr}
	} else {
		inPort := req.PacketIn.InPort()
		if sampled {
			tr.InPort = inPort
		}
		// MAC↔switch-port sensor (paper §IV-A): the PCP is the
		// authoritative observer of where traffic physically enters the
		// network. Runs before the cache probe so that a moved MAC bumps
		// the entity epoch and invalidates decisions made at the old port.
		p.cfg.Entity.BindMACLocation(key.EthSrc, entity.Location{DPID: req.DPID, Port: inPort})

		ck := cacheKey{dpid: req.DPID, inPort: inPort, key: key}
		if p.cache != nil {
			d, ok, stale := p.cache.lookup(ck, p.cfg.Policy.Epoch(), p.cfg.Entity.Epoch())
			if ok {
				dec, hit = d, true
				p.metrics.cacheHits.Inc()
			} else if stale {
				p.metrics.cacheStale.Inc()
			}
		}
		if !hit {
			p.metrics.cacheMisses.Inc()
			var policyEpoch, entityEpoch uint64
			var bindDur, polDur time.Duration
			dec, fv, policyEpoch, entityEpoch, bindDur, polDur = p.decide(req, key, inPort)
			if sampled {
				tr.Binding, tr.Policy = bindDur, polDur
			}
			if p.cache != nil && dec.Err == nil {
				p.cache.store(ck, dec, policyEpoch, entityEpoch)
			}
		}
	}
	tInstall := start
	if sampled {
		tInstall = p.cfg.Clock.Now()
	}
	p.install(req, dec, fv, key)
	end := p.cfg.Clock.Now()
	p.metrics.Total.Add(end.Sub(start))
	p.metrics.processed.Inc()
	if dec.Allow {
		p.metrics.allowed.Inc()
	} else {
		p.metrics.denied.Inc()
	}
	if sampled {
		tr.Install = end.Sub(tInstall)
		tr.Total = end.Sub(start)
		tr.CacheHit = hit
		tr.RuleID = uint64(dec.RuleID)
		switch {
		case dec.Err != nil:
			tr.Outcome = obs.OutcomeError
			tr.Err = dec.Err.Error()
		case dec.Allow:
			tr.Outcome = obs.OutcomeAllow
		default:
			tr.Outcome = obs.OutcomeDeny
		}
		p.cfg.Trace.Commit(tr)
		if root.Valid() {
			// tr and root travel by value so neither escapes; the helper is
			// off the annotated path and only runs for sampled admissions.
			p.emitAdmissionSpans(root, tr)
		}
	}
	if p.cfg.Audit != nil {
		p.auditDecision(req, key, kerr, dec, fv, hit, root.Trace)
	}
	if req.Done != nil {
		req.Done(dec)
	}
}

// emitAdmissionSpans projects one committed admission trace into the span
// store: a root ("pcp","admission") span plus a child per measured stage
// (and the proxy's forwarding overhead, spent before the PCP clock
// started), so a /v1/trace row pivots into its /v1/spans?trace= causal
// form. Parameters are by value: the caller's stack copies must not
// escape.
func (p *PCP) emitAdmissionSpans(root obs.SpanContext, tr obs.AdmissionTrace) {
	st := p.cfg.Spans
	commitStage := func(component, stage string, start time.Time, d time.Duration) {
		if d <= 0 {
			return
		}
		st.Commit(obs.Span{
			Trace:     root.Trace,
			ID:        st.Child(root).Span,
			Parent:    root.Span,
			Component: component,
			Stage:     stage,
			Start:     start,
			Duration:  d,
		})
	}
	commitStage(obs.CompProxy, "forward", tr.Start.Add(-tr.Proxy), tr.Proxy)
	at := tr.Start
	commitStage(obs.CompPCP, "parse", at, tr.Parse)
	at = at.Add(tr.Parse)
	commitStage(obs.CompPCP, "binding_query", at, tr.Binding)
	at = at.Add(tr.Binding)
	commitStage(obs.CompPCP, "policy_query", at, tr.Policy)
	end := tr.Start.Add(tr.Total)
	commitStage(obs.CompPCP, "install", end.Add(-tr.Install), tr.Install)
	st.Commit(obs.Span{
		Trace:     root.Trace,
		ID:        root.Span,
		Component: obs.CompPCP,
		Stage:     "admission",
		Start:     tr.Start,
		Duration:  tr.Total,
		DPID:      tr.DPID,
		RuleID:    tr.RuleID,
		Detail:    admissionDetail(tr),
		Err:       tr.Err,
	})
}

// admissionDetail summarizes an admission for its root span.
func admissionDetail(tr obs.AdmissionTrace) string {
	if tr.CacheHit {
		return tr.Outcome.String() + " (cache hit)"
	}
	return tr.Outcome.String()
}

// auditDecision appends the kind="decision" record for one processed
// admission: outcome, deciding rule, flow identifiers, the policy and
// entity epochs in effect, and (for fresh decisions) the resolved
// endpoint identities. Callers check p.cfg.Audit != nil first so the
// disabled path costs nothing.
func (p *PCP) auditDecision(req *Request, key netpkt.FlowKey, kerr error, dec Decision, fv *policy.FlowView, hit bool, trace obs.TraceID) {
	rec := obs.AuditRecord{
		Kind:        "decision",
		Trace:       uint64(trace),
		RuleID:      uint64(dec.RuleID),
		DPID:        req.DPID,
		PolicyEpoch: p.cfg.Policy.Epoch(),
		EntityEpoch: p.cfg.Entity.Epoch(),
		CacheHit:    hit,
	}
	switch {
	case dec.Err != nil:
		rec.Op = "error"
		rec.Detail = dec.Err.Error()
	case dec.Allow:
		rec.Op = "allow"
	default:
		rec.Op = "deny"
	}
	if kerr == nil {
		rec.Flow = key.String()
	}
	if fv != nil {
		rec.Detail = fmt.Sprintf("src host=%q users=%v dst host=%q users=%v",
			fv.Src.Host, fv.Src.Users, fv.Dst.Host, fv.Dst.Users)
	}
	_ = p.cfg.Audit.Append(rec)
}

// decide runs the full enrich-and-query path for a parsed flow. It returns
// the epochs its answer was derived under — the entity epoch read before
// resolution and the policy epoch carried by the queried snapshot — so the
// caller can cache the decision; a concurrent policy or binding change
// makes the stored epochs stale and the cache entry self-invalidates. The
// per-stage durations come back as plain return values (rather than decide
// writing into a caller-owned trace) so the caller's trace never escapes
// to the heap.
func (p *PCP) decide(req *Request, key netpkt.FlowKey, inPort uint32) (dec Decision, fv *policy.FlowView, policyEpoch, entityEpoch uint64, bindDur, polDur time.Duration) {
	entityEpoch = p.cfg.Entity.Epoch()

	// Binding query: enrich both endpoints in one round trip.
	tBind := p.cfg.Clock.Now()
	srcObs := entity.Observed{
		MAC:    key.EthSrc,
		HasIP:  key.HasIP,
		IP:     key.IPSrc,
		HasLoc: true,
		Loc:    entity.Location{DPID: req.DPID, Port: inPort},
	}
	dstObs := entity.Observed{MAC: key.EthDst, HasIP: key.HasIP, IP: key.IPDst}
	srcRes, dstRes, err := p.cfg.Entity.ResolveBoth(srcObs, dstObs)
	bindDur = p.cfg.Clock.Now().Sub(tBind)
	p.metrics.BindingQuery.Add(bindDur)
	if err != nil {
		// Inconsistent identifiers: spoofed traffic is denied outright.
		return Decision{Err: err}, nil, 0, 0, bindDur, 0
	}

	fv = flowView(key, inPort, req.DPID, srcRes, dstRes, p.cfg.Entity)

	tPolicy := p.cfg.Clock.Now()
	pd := p.queryPolicy(fv)
	polDur = p.cfg.Clock.Now().Sub(tPolicy)
	p.metrics.PolicyQuery.Add(polDur)

	var ruleID policy.RuleID = policy.DefaultDenyID
	if pd.Matched {
		ruleID = pd.Rule.ID
	}
	dec = Decision{Allow: pd.Action == policy.ActionAllow, RuleID: ruleID}
	if p.cfg.ProactivePush && dec.Allow {
		// A packet-in decided by a rule with proactive entries installed is
		// a coverage miss: the flow fell outside the concretized entries.
		p.proactiveMu.Lock()
		covered := len(p.proactiveFlows[ruleID]) > 0
		p.proactiveMu.Unlock()
		if covered {
			p.metrics.proactiveMisses.Inc()
		}
	}
	return dec, fv, pd.Epoch, entityEpoch, bindDur, polDur
}

// queryPolicy answers the policy query for one enriched flow. With delta
// compilation on and the compiled classifier current, the lookup runs
// against the tuple-space structure — no simulated store round-trip, no
// linear bucket scans; otherwise (classifier trailing inside a flush
// window, or the feature off) it falls back to the Manager's snapshot
// query.
func (p *PCP) queryPolicy(fv *policy.FlowView) policy.Decision {
	if p.cfg.DeltaCompilation {
		if c := p.compiled.Load(); c != nil && c.Epoch() == p.cfg.Policy.Epoch() {
			return c.Lookup(fv)
		}
	}
	return p.cfg.Policy.Query(fv)
}

// install compiles and installs the flow rule implementing dec for req's
// packet, charging the PCP's remaining processing cost. fv is nil for
// decisions served from the flow-decision cache; those install the exact
// match (wildcard widening needs the enriched view and a policy walk —
// exactly the work the cache exists to skip).
//
//dfi:hotpath
func (p *PCP) install(req *Request, dec Decision, fv *policy.FlowView, key netpkt.FlowKey) {
	tOther := p.cfg.Clock.Now()
	// Deferred closures are open-coded and stay on the stack (the
	// TestAdmissionHotPathZeroAlloc gate proves 0 B/op through here).
	defer func() { //dfi:ignore hotpathalloc
		p.metrics.OtherPCP.Add(p.cfg.Clock.Now().Sub(tOther))
	}()
	store.Charge(p.cfg.Clock, p.cfg.ProcessingLatency)

	if dec.Err != nil {
		// Unevaluable packets are denied without installing a rule: the
		// identifiers are untrustworthy, so a cached rule keyed on them
		// would be wrong.
		return
	}
	client := p.client(req.DPID)
	if client == nil {
		return
	}
	if fv != nil {
		// Fresh decision: the enriched view enables wildcard widening, and
		// this path already paid the binding and policy queries, so the
		// compile allocations are noise.
		fm := p.CompileFlowMod(key, req.PacketIn.InPort(), dec)
		fm.Match = p.compileCachedMatch(key, req.PacketIn.InPort(), fv, dec)
		_ = client.WriteFlowMod(fm)
		return
	}
	// Cache-hit fast path: compile the exact match into a pooled buffer so
	// the admission path allocates nothing. Safe because SwitchClient
	// forbids retaining the flow mod past WriteFlowMod.
	cb := p.compilePool.Get().(*compileBuf)
	cb.fill(p, key, req.PacketIn.InPort(), dec)
	_ = client.WriteFlowMod(&cb.fm)
	p.compilePool.Put(cb)
}

// gotoTable1 is the shared allow instruction: every admitted flow continues
// to table 1, the controller's first table. Immutable — the proxy's
// table-space rewrites copy goto-table instructions instead of mutating
// them — so all pooled flow mods share this one slice.
var gotoTable1 = []openflow.Instruction{&openflow.InstructionGotoTable{TableID: 1}}

// compileBuf is a reusable flow-mod compilation buffer for the cache-hit
// fast path. Its Match's pointer fields point at the buffer's own value
// fields, so filling and writing an exact-match rule performs no heap
// allocation; openflow.ExactMatchFor builds the identical match with one
// allocation per pinned field.
type compileBuf struct {
	fm    openflow.FlowMod
	match openflow.Match

	inPort  uint32
	ethSrc  netpkt.MAC
	ethDst  netpkt.MAC
	ethType uint16
	ipProto uint8
	ipSrc   netpkt.IPv4
	ipDst   netpkt.IPv4
	l4Src   uint16
	l4Dst   uint16
}

// fill compiles the exact-match table-0 rule implementing dec into the
// buffer, mirroring CompileFlowMod (which see for the semantics).
//
//dfi:hotpath
func (cb *compileBuf) fill(p *PCP, key netpkt.FlowKey, inPort uint32, dec Decision) {
	cb.inPort = inPort
	cb.ethSrc = key.EthSrc
	cb.ethDst = key.EthDst
	cb.ethType = key.EtherType
	// Rebuild the match wholesale: fields the previous flow pinned but this
	// one does not must come back nil (wildcard).
	cb.match = openflow.Match{
		InPort:  &cb.inPort,
		EthSrc:  &cb.ethSrc,
		EthDst:  &cb.ethDst,
		EthType: &cb.ethType,
	}
	if key.HasIP && key.EtherType == netpkt.EtherTypeIPv4 {
		cb.ipProto = key.IPProto
		cb.ipSrc = key.IPSrc
		cb.ipDst = key.IPDst
		cb.match.IPProto = &cb.ipProto
		cb.match.IPv4Src = &cb.ipSrc
		cb.match.IPv4Dst = &cb.ipDst
		if key.HasL4 {
			cb.l4Src = key.L4Src
			cb.l4Dst = key.L4Dst
			switch key.IPProto {
			case netpkt.ProtoTCP:
				cb.match.TCPSrc = &cb.l4Src
				cb.match.TCPDst = &cb.l4Dst
			case netpkt.ProtoUDP:
				cb.match.UDPSrc = &cb.l4Src
				cb.match.UDPDst = &cb.l4Dst
			}
		}
	}
	if key.HasIP && key.EtherType == netpkt.EtherTypeARP {
		cb.ipSrc = key.IPSrc
		cb.ipDst = key.IPDst
		cb.match.ARPSPA = &cb.ipSrc
		cb.match.ARPTPA = &cb.ipDst
	}
	cb.fm = openflow.FlowMod{
		Cookie:      uint64(dec.RuleID),
		TableID:     0,
		Command:     openflow.FlowModAdd,
		Priority:    p.cfg.RulePriority,
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortAny,
		OutGroup:    0xffffffff,
		Match:       &cb.match,
		IdleTimeout: p.cfg.DenyIdleTimeoutSec,
	}
	if dec.Allow {
		cb.fm.IdleTimeout = p.cfg.AllowIdleTimeoutSec
		cb.fm.Instructions = gotoTable1
	}
}

// CompileFlowMod builds the exact-match table-0 rule implementing dec for
// a flow: every identifier present in the packet is pinned so each new flow
// is checked against current policy (paper §III-B). Allowed flows continue
// to table 1 (the controller's first table); denied flows match a rule with
// no instructions and are dropped.
func (p *PCP) CompileFlowMod(key netpkt.FlowKey, inPort uint32, dec Decision) *openflow.FlowMod {
	fm := &openflow.FlowMod{
		Cookie:      uint64(dec.RuleID),
		TableID:     0,
		Command:     openflow.FlowModAdd,
		Priority:    p.cfg.RulePriority,
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortAny,
		OutGroup:    0xffffffff,
		Match:       openflow.ExactMatchFor(key, inPort),
		IdleTimeout: p.cfg.DenyIdleTimeoutSec,
	}
	if dec.Allow {
		fm.IdleTimeout = p.cfg.AllowIdleTimeoutSec
		fm.Instructions = []openflow.Instruction{&openflow.InstructionGotoTable{TableID: 1}}
	}
	return fm
}

// FlushPolicies removes from every attached switch the table-0 rules
// derived from the given policy ids (cookie-scoped delete). The Policy
// Manager invokes this on every mutation, passing the mutation's span
// context so the compilation and each switch's flow-mod writes land in the
// same causal trace. With delta compilation enabled the ids are ignored:
// the epoch-to-epoch classifier diff derives the (strictly smaller) set of
// flow mods itself (see flushDelta).
func (p *PCP) FlushPolicies(sc obs.SpanContext, ids []policy.RuleID) {
	if p.cfg.DeltaCompilation {
		p.flushDelta(sc)
		return
	}
	if len(ids) == 0 {
		// A mutation that invalidates no derived flow rules (a
		// non-overlapping insert) compiles no deletes and writes nothing.
		return
	}
	span := p.cfg.Spans.Child(sc)
	tStart := p.cfg.Spans.Now()

	p.mu.RLock()
	dpids := make([]uint64, 0, len(p.switches))
	clients := make([]SwitchClient, 0, len(p.switches))
	for dpid, c := range p.switches {
		dpids = append(dpids, dpid)
		clients = append(clients, c)
	}
	p.mu.RUnlock()

	// Compile one cookie-scoped delete per policy id up front; the fan-out
	// workers share the slice read-only, so each switch's writes are
	// attributable to one ("proxy","flow_mod_write") span and the compile
	// cost is paid once instead of per switch.
	fms := make([]*openflow.FlowMod, len(ids))
	for i, id := range ids {
		fms[i] = &openflow.FlowMod{
			Cookie:     uint64(id),
			CookieMask: ^uint64(0),
			TableID:    0,
			Command:    openflow.FlowModDelete,
			OutPort:    openflow.PortAny,
			OutGroup:   0xffffffff,
			Match:      &openflow.Match{},
		}
	}
	// Fan the per-switch writes out on a bounded worker group. The flush
	// stays synchronous — it returns only after every switch was written —
	// so the policy mutation span measuring time-to-enforcement closes at
	// the true enforcement point, and callers (revocation paths, tests)
	// observe a completed flush on return.
	if workers := min(p.cfg.FlushFanOut, len(clients)); workers <= 1 {
		for i := range clients {
			p.flushSwitch(span, dpids[i], clients[i], fms)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					p.flushSwitch(span, dpids[i], clients[i], fms)
				}
			}()
		}
		for i := range clients {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if p.cfg.Spans.Enabled() {
		p.cfg.Spans.Commit(obs.Span{
			Trace:     span.Trace,
			ID:        span.Span,
			Parent:    sc.Span,
			Component: obs.CompPCP,
			Stage:     "flush_compile",
			Start:     tStart,
			Duration:  p.cfg.Spans.Now().Sub(tStart),
			Detail:    fmt.Sprintf("%d policy ids, %d switches", len(ids), len(clients)),
		})
	}
	if p.cfg.Audit != nil {
		_ = p.cfg.Audit.Append(obs.AuditRecord{
			Kind:        "policy",
			Op:          "flush",
			Trace:       uint64(span.Trace),
			PolicyEpoch: p.cfg.Policy.Epoch(),
			Detail:      fmt.Sprintf("flushed derived flow rules for %d policy ids across %d switches", len(ids), len(clients)),
		})
	}
}

// flushSwitch writes the compiled cookie-scoped deletes to one switch —
// in one coalesced write when the client supports batching — under its own
// ("proxy","flow_mod_write") span. Safe to call from concurrent fan-out
// workers: SpanStore commits are synchronized and span ids are atomic.
func (p *PCP) flushSwitch(span obs.SpanContext, dpid uint64, c SwitchClient, fms []*openflow.FlowMod) {
	tSwitch := p.cfg.Spans.Now()
	if b, ok := c.(FlowModBatcher); ok {
		_ = b.WriteFlowMods(fms)
	} else {
		for _, fm := range fms {
			_ = c.WriteFlowMod(fm)
		}
	}
	if p.cfg.Spans.Enabled() {
		p.cfg.Spans.Commit(obs.Span{
			Trace:     span.Trace,
			ID:        p.cfg.Spans.Child(span).Span,
			Parent:    span.Span,
			Component: obs.CompProxy,
			Stage:     "flow_mod_write",
			Start:     tSwitch,
			Duration:  p.cfg.Spans.Now().Sub(tSwitch),
			DPID:      dpid,
			Detail:    fmt.Sprintf("%d flow mods", len(fms)),
		})
	}
}

// flowView assembles the enriched FlowView for policy evaluation.
func flowView(key netpkt.FlowKey, inPort uint32, dpid uint64, src, dst entity.Resolution, erm *entity.Manager) *policy.FlowView {
	fv := &policy.FlowView{
		EtherType:  key.EtherType,
		HasIPProto: key.HasIP && key.EtherType == netpkt.EtherTypeIPv4,
		IPProto:    key.IPProto,
		Src: policy.EndpointAttrs{
			Users:         src.Users,
			Host:          src.Host,
			HasIP:         key.HasIP,
			IP:            key.IPSrc,
			HasPort:       key.HasL4,
			Port:          key.L4Src,
			MAC:           key.EthSrc,
			HasSwitchPort: true,
			SwitchPort:    inPort,
			HasDPID:       true,
			DPID:          dpid,
		},
		Dst: policy.EndpointAttrs{
			Users:   dst.Users,
			Host:    dst.Host,
			HasIP:   key.HasIP,
			IP:      key.IPDst,
			HasPort: key.HasL4,
			Port:    key.L4Dst,
			MAC:     key.EthDst,
			HasDPID: true,
			DPID:    dpid,
		},
	}
	if port, ok := erm.LocationOf(key.EthDst, dpid); ok {
		fv.Dst.HasSwitchPort = true
		fv.Dst.SwitchPort = port
	}
	return fv
}
