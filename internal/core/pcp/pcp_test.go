package pcp

import (
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

var (
	macA = netpkt.MustParseMAC("02:00:00:00:00:0a")
	macB = netpkt.MustParseMAC("02:00:00:00:00:0b")
	ipA  = netpkt.MustParseIPv4("10.0.0.10")
	ipB  = netpkt.MustParseIPv4("10.0.0.11")
)

// fakeSwitch records flow-mods. It deep-copies each one: SwitchClient
// forbids retaining the flow mod past WriteFlowMod (the PCP reuses pooled
// compilation buffers).
type fakeSwitch struct {
	mu   sync.Mutex
	mods []*openflow.FlowMod
}

func (f *fakeSwitch) WriteFlowMod(fm *openflow.FlowMod) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := *fm
	if fm.Match != nil {
		cp.Match = fm.Match.Clone()
	}
	cp.Instructions = append([]openflow.Instruction(nil), fm.Instructions...)
	f.mods = append(f.mods, &cp)
	return nil
}

func (f *fakeSwitch) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.mods)
}

func (f *fakeSwitch) last() *openflow.FlowMod {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.mods) == 0 {
		return nil
	}
	return f.mods[len(f.mods)-1]
}

func newEnv(t *testing.T) (*PCP, *entity.Manager, *policy.Manager, *fakeSwitch) {
	t.Helper()
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := New(Config{Entity: erm, Policy: pm})
	sw := &fakeSwitch{}
	p.AttachSwitch(7, sw)
	if err := pm.RegisterPDP("t", 50); err != nil {
		t.Fatal(err)
	}
	return p, erm, pm, sw
}

func packetInFor(frame []byte, inPort uint32) *openflow.PacketIn {
	return &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		Match:    &openflow.Match{InPort: openflow.U32(inPort)},
		Data:     frame,
	}
}

func synFrame() []byte {
	return netpkt.BuildTCP(macA, macB, ipA, ipB,
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: 445, Flags: netpkt.TCPSyn})
}

func process(t *testing.T, p *PCP, pi *openflow.PacketIn) Decision {
	t.Helper()
	var dec Decision
	p.Process(&Request{DPID: 7, PacketIn: pi, Done: func(d Decision) { dec = d }})
	return dec
}

func TestDefaultDenyInstallsDropRule(t *testing.T) {
	p, _, _, sw := newEnv(t)
	dec := process(t, p, packetInFor(synFrame(), 3))
	if dec.Allow {
		t.Fatal("unmatched flow allowed")
	}
	if dec.RuleID != policy.DefaultDenyID {
		t.Fatalf("rule id = %d, want DefaultDenyID", dec.RuleID)
	}
	fm := sw.last()
	if fm == nil {
		t.Fatal("no rule installed")
	}
	if fm.TableID != 0 || fm.Command != openflow.FlowModAdd {
		t.Fatalf("flow-mod = %+v", fm)
	}
	if len(fm.Instructions) != 0 {
		t.Fatal("deny rule must have no instructions (drop)")
	}
	if fm.Cookie != uint64(policy.DefaultDenyID) {
		t.Fatalf("cookie = %d", fm.Cookie)
	}
}

func TestAllowInstallsGotoTableOne(t *testing.T) {
	p, erm, pm, sw := newEnv(t)
	erm.BindIPMAC(ipA, macA)
	erm.BindHostIP("a", ipA)
	id, err := pm.Insert(policy.Rule{PDP: "t", Action: policy.ActionAllow, Src: policy.EndpointSpec{Host: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	dec := process(t, p, packetInFor(synFrame(), 3))
	if !dec.Allow || dec.RuleID != id {
		t.Fatalf("decision = %+v", dec)
	}
	fm := sw.last()
	if fm.Cookie != uint64(id) {
		t.Fatalf("cookie = %d, want %d", fm.Cookie, id)
	}
	if len(fm.Instructions) != 1 {
		t.Fatalf("instructions = %d, want goto-table", len(fm.Instructions))
	}
	gt, ok := fm.Instructions[0].(*openflow.InstructionGotoTable)
	if !ok || gt.TableID != 1 {
		t.Fatalf("instr = %#v", fm.Instructions[0])
	}
	// The compiled match pins every packet identifier.
	if fm.Match.NumFields() != 9 {
		t.Fatalf("match pins %d fields, want 9: %v", fm.Match.NumFields(), fm.Match)
	}
}

func TestSpoofedPacketDeniedWithoutRule(t *testing.T) {
	p, erm, _, sw := newEnv(t)
	erm.BindIPMAC(ipA, macB) // ipA belongs to macB; the packet uses macA
	dec := process(t, p, packetInFor(synFrame(), 3))
	if dec.Allow || dec.Err == nil {
		t.Fatalf("decision = %+v, want error deny", dec)
	}
	if sw.count() != 0 {
		t.Fatal("a rule was cached for an unevaluable (spoofed) packet")
	}
}

func TestGarbagePacketDenied(t *testing.T) {
	p, _, _, sw := newEnv(t)
	dec := process(t, p, packetInFor([]byte{1, 2, 3}, 3))
	if dec.Allow || dec.Err == nil {
		t.Fatalf("decision = %+v", dec)
	}
	if sw.count() != 0 {
		t.Fatal("rule installed for unparseable packet")
	}
}

func TestMACLocationSensorFeedsERM(t *testing.T) {
	p, erm, _, _ := newEnv(t)
	process(t, p, packetInFor(synFrame(), 3))
	port, ok := erm.LocationOf(macA, 7)
	if !ok || port != 3 {
		t.Fatalf("MAC location = %d, %v, want port 3", port, ok)
	}
}

func TestFlushPoliciesSendsCookieScopedDeletes(t *testing.T) {
	p, _, _, sw := newEnv(t)
	sw2 := &fakeSwitch{}
	p.AttachSwitch(8, sw2)
	p.FlushPolicies(obs.SpanContext{}, []policy.RuleID{5, 9})
	if sw.count() != 2 || sw2.count() != 2 {
		t.Fatalf("flush mods = %d/%d, want 2 per switch", sw.count(), sw2.count())
	}
	fm := sw.last()
	if fm.Command != openflow.FlowModDelete || fm.TableID != 0 {
		t.Fatalf("flush flow-mod = %+v", fm)
	}
	if fm.CookieMask != ^uint64(0) || fm.Cookie != 9 {
		t.Fatalf("cookie scope = %x/%x", fm.Cookie, fm.CookieMask)
	}
}

func TestRevocationTriggersFlushThroughManager(t *testing.T) {
	p, _, pm, sw := newEnv(t)
	id, err := pm.Insert(policy.Rule{PDP: "t", Action: policy.ActionDeny})
	if err != nil {
		t.Fatal(err)
	}
	before := sw.count()
	if err := pm.Revoke(id); err != nil {
		t.Fatal(err)
	}
	if sw.count() != before+1 {
		t.Fatalf("revoke issued %d mods, want 1", sw.count()-before)
	}
	_ = p
}

func TestSubmitQueueOverflowDrops(t *testing.T) {
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := New(Config{Entity: erm, Policy: pm, QueueDepth: 2, Workers: 1})
	// Not started: Submit must refuse and count the drop.
	if p.Submit(&Request{DPID: 7, PacketIn: packetInFor(synFrame(), 1)}) {
		t.Fatal("Submit accepted before Start")
	}
	if p.Metrics().Dropped() != 1 {
		t.Fatalf("dropped = %d", p.Metrics().Dropped())
	}

	// Started but with a slow clock-free worker: fill the queue.
	p.Start()
	defer p.Stop()
	block := make(chan struct{})
	accepted := 0
	for i := 0; i < 10; i++ {
		req := &Request{DPID: 7, PacketIn: packetInFor(synFrame(), 1), Done: func(Decision) {
			<-block
		}}
		if p.Submit(req) {
			accepted++
		}
	}
	close(block)
	if accepted >= 10 {
		t.Fatal("queue never overflowed")
	}
	if p.Metrics().Dropped() < 1 {
		t.Fatal("drops not counted")
	}
}

func TestWorkersProcessConcurrently(t *testing.T) {
	erm := entity.NewManager()
	pm := policy.NewManager()
	clk := simclock.Real{}
	p := New(Config{
		Entity: erm, Policy: pm, Workers: 4, QueueDepth: 64,
		Clock: clk, ProcessingLatency: store.Fixed(20 * time.Millisecond),
	})
	p.Start()
	defer p.Stop()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		ok := p.Submit(&Request{DPID: 7, PacketIn: packetInFor(synFrame(), uint32(i+1)),
			Done: func(Decision) { wg.Done() }})
		if !ok {
			t.Fatal("submit refused")
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 8 × 20ms serial would be ≥160ms; 4 workers should land near 2×20ms.
	if elapsed > 120*time.Millisecond {
		t.Fatalf("8 requests took %v with 4 workers; not concurrent", elapsed)
	}
}

func TestMetricsBreakdownRecorded(t *testing.T) {
	p, _, _, _ := newEnv(t)
	for i := 0; i < 5; i++ {
		process(t, p, packetInFor(synFrame(), uint32(i+1)))
	}
	m := p.Metrics()
	if m.Processed() != 5 || m.Denied() != 5 || m.Allowed() != 0 {
		t.Fatalf("processed/denied/allowed = %d/%d/%d", m.Processed(), m.Denied(), m.Allowed())
	}
	if m.BindingQuery.N() != 5 || m.PolicyQuery.N() != 5 || m.Total.N() != 5 {
		t.Fatal("stage stats not recorded per flow")
	}
}

func TestARPCompilation(t *testing.T) {
	p, _, pm, sw := newEnv(t)
	if _, err := pm.Insert(policy.Rule{PDP: "t", Action: policy.ActionAllow}); err != nil {
		t.Fatal(err)
	}
	arp := netpkt.BuildARP(&netpkt.ARP{
		Op: netpkt.ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	})
	dec := process(t, p, packetInFor(arp, 2))
	if !dec.Allow {
		t.Fatalf("ARP denied: %+v", dec)
	}
	fm := sw.last()
	if fm.Match.ARPSPA == nil || fm.Match.ARPTPA == nil {
		t.Fatalf("ARP match not pinned: %v", fm.Match)
	}
}
