package pcp

import (
	"sync"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// Flow-decision cache: the third layer of the admission fast path. A flow
// that re-enters the control plane (its switch rule idle-timed out, or it
// arrived at another PCP worker) with unchanged policy and unchanged
// identifier bindings must receive the same decision as last time, so the
// binding query and policy query can both be skipped.
//
// Correctness rests on two epochs validated at lookup time:
//
//   - the policy epoch, bumped by the Policy Manager on every insert,
//     revoke and revoke-all — before the corresponding flush notification
//     fires (manager.go), so once FlushPolicies has removed a revoked
//     rule's flow rules from the switches, no cached decision made under
//     that rule can validate again;
//   - the entity epoch, bumped by the Entity Resolution Manager on every
//     effective binding change, so decisions derived from since-changed
//     user/host/IP/MAC/location bindings never validate again.
//
// Entries store the epochs observed *before* their decision's queries ran:
// if a policy or binding change races the in-flight decision, the stored
// epoch is older than the current one and the entry self-invalidates on
// its first lookup. A stale allow therefore cannot outlive a revocation —
// the paper's core consistency property (§III-B) — while a hit costs two
// atomic loads and one shard-local map probe.

// cacheKey identifies one flow at one ingress point.
type cacheKey struct {
	dpid   uint64
	inPort uint32
	key    netpkt.FlowKey
}

// cacheEntry is one cached decision plus its LRU list links.
type cacheEntry struct {
	ck          cacheKey
	ruleID      policy.RuleID
	allow       bool
	policyEpoch uint64
	entityEpoch uint64

	prev, next *cacheEntry
}

const cacheShards = 16

// decisionCache is a sharded LRU of admission decisions. Sharding keeps
// the hot path contention-free across the PCP's worker pool: each probe
// takes only its shard's lock.
type decisionCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*cacheEntry
	// Intrusive LRU list: head is most recent, tail least.
	head, tail *cacheEntry
}

// newDecisionCache returns a cache bounded to size entries in total.
func newDecisionCache(size int) *decisionCache {
	perShard := size / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &decisionCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].entries = make(map[cacheKey]*cacheEntry, perShard)
	}
	return c
}

// shardOf hashes the key (FNV-1a over its fixed-width fields) to a shard.
func (c *decisionCache) shardOf(ck *cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(ck.dpid)
	mix(uint64(ck.inPort))
	k := &ck.key
	mix(uint64(k.EthSrc[0])<<40 | uint64(k.EthSrc[1])<<32 | uint64(k.EthSrc[2])<<24 |
		uint64(k.EthSrc[3])<<16 | uint64(k.EthSrc[4])<<8 | uint64(k.EthSrc[5]))
	mix(uint64(k.EthDst[0])<<40 | uint64(k.EthDst[1])<<32 | uint64(k.EthDst[2])<<24 |
		uint64(k.EthDst[3])<<16 | uint64(k.EthDst[4])<<8 | uint64(k.EthDst[5]))
	mix(uint64(k.EtherType))
	mix(uint64(k.IPSrc.Uint32())<<32 | uint64(k.IPDst.Uint32()))
	mix(uint64(k.IPProto)<<32 | uint64(k.L4Src)<<16 | uint64(k.L4Dst))
	return &c.shards[h%cacheShards]
}

// lookup returns the cached decision for ck when its recorded epochs still
// match the current ones; a stale entry is evicted on the spot, which the
// third return reports so the PCP can count epoch invalidations separately
// from plain misses.
//
//dfi:hotpath
func (c *decisionCache) lookup(ck cacheKey, policyEpoch, entityEpoch uint64) (dec Decision, ok, stale bool) {
	s := c.shardOf(&ck)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[ck]
	if !found {
		return Decision{}, false, false
	}
	if e.policyEpoch != policyEpoch || e.entityEpoch != entityEpoch {
		s.remove(e)
		return Decision{}, false, true
	}
	s.moveToFront(e)
	return Decision{Allow: e.allow, RuleID: e.ruleID}, true, false
}

// store records a decision made under the given epochs, evicting the least
// recently used entry when the shard is full.
func (c *decisionCache) store(ck cacheKey, dec Decision, policyEpoch, entityEpoch uint64) {
	s := c.shardOf(&ck)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[ck]; ok {
		e.ruleID = dec.RuleID
		e.allow = dec.Allow
		e.policyEpoch = policyEpoch
		e.entityEpoch = entityEpoch
		s.moveToFront(e)
		return
	}
	for len(s.entries) >= s.cap && s.tail != nil {
		s.remove(s.tail)
	}
	e := &cacheEntry{
		ck: ck, ruleID: dec.RuleID, allow: dec.Allow,
		policyEpoch: policyEpoch, entityEpoch: entityEpoch,
	}
	s.entries[ck] = e
	s.pushFront(e)
}

// len returns the total number of live entries (for tests).
func (c *decisionCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) remove(e *cacheEntry) {
	s.unlink(e)
	delete(s.entries, e.ck)
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
