package pcp

import (
	"sync"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
)

// allowHostA inserts an Allow rule for src host "a" and binds ipA/macA to
// that host, so synFrame() flows are allowed through the full path.
func allowHostA(t *testing.T, erm *entity.Manager, pm *policy.Manager) policy.RuleID {
	t.Helper()
	erm.BindIPMAC(ipA, macA)
	erm.BindHostIP("a", ipA)
	id, err := pm.Insert(policy.Rule{PDP: "t", Action: policy.ActionAllow, Src: policy.EndpointSpec{Host: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCacheHitSkipsBindingAndPolicyQueries(t *testing.T) {
	p, erm, pm, sw := newEnv(t)
	allowHostA(t, erm, pm)
	base := sw.count() // the insert's conflict flush already sent a delete

	d1 := process(t, p, packetInFor(synFrame(), 3))
	d2 := process(t, p, packetInFor(synFrame(), 3))
	if !d1.Allow || !d2.Allow || d1.RuleID != d2.RuleID {
		t.Fatalf("decisions differ: %+v vs %+v", d1, d2)
	}
	m := p.Metrics()
	if m.CacheHits() != 1 || m.CacheMisses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", m.CacheHits(), m.CacheMisses())
	}
	// Only the miss paid the binding and policy round trips.
	if m.BindingQuery.N() != 1 || m.PolicyQuery.N() != 1 {
		t.Fatalf("binding/policy samples = %d/%d, want 1/1", m.BindingQuery.N(), m.PolicyQuery.N())
	}
	// The hit still (re)installs the switch rule: a cache hit means the
	// flow re-entered the control plane, so its table-0 rule is gone.
	if got := sw.count() - base; got != 2 {
		t.Fatalf("flow-mods = %d, want 2", got)
	}
}

func TestCacheKeyedOnPortAndFlow(t *testing.T) {
	p, erm, pm, _ := newEnv(t)
	allowHostA(t, erm, pm)

	process(t, p, packetInFor(synFrame(), 3))
	process(t, p, packetInFor(synFrame(), 4)) // same flow, different ingress port
	other := netpkt.BuildTCP(macA, macB, ipA, ipB,
		&netpkt.TCPSegment{SrcPort: 40001, DstPort: 445, Flags: netpkt.TCPSyn})
	process(t, p, packetInFor(other, 4)) // different flow
	if hits := p.Metrics().CacheHits(); hits != 0 {
		t.Fatalf("distinct keys produced %d cache hits", hits)
	}
}

// TestRevokeInvalidatesCachedAllow is the paper's core consistency
// property at the cache layer: once Revoke has returned (and the flush has
// run), the next admission of the formerly-allowed flow must re-evaluate
// and deny.
func TestRevokeInvalidatesCachedAllow(t *testing.T) {
	p, erm, pm, _ := newEnv(t)
	id := allowHostA(t, erm, pm)

	if d := process(t, p, packetInFor(synFrame(), 3)); !d.Allow {
		t.Fatalf("primed decision = %+v", d)
	}
	if err := pm.Revoke(id); err != nil {
		t.Fatal(err)
	}
	d := process(t, p, packetInFor(synFrame(), 3))
	if d.Allow {
		t.Fatal("revoked rule's allow served from cache")
	}
	if hits := p.Metrics().CacheHits(); hits != 0 {
		t.Fatalf("post-revoke admission was a cache hit (%d)", hits)
	}
}

// TestInsertInvalidatesCachedDefaultDeny: a cached default deny must not
// outlive a newly inserted Allow that covers the flow (the conflicting-
// insert half of the flush machinery).
func TestInsertInvalidatesCachedDefaultDeny(t *testing.T) {
	p, erm, pm, _ := newEnv(t)
	if d := process(t, p, packetInFor(synFrame(), 3)); d.Allow {
		t.Fatalf("unexpected allow: %+v", d)
	}
	allowHostA(t, erm, pm)
	if d := process(t, p, packetInFor(synFrame(), 3)); !d.Allow {
		t.Fatalf("cached default deny outlived the new Allow rule: %+v", d)
	}
}

// TestBindingChangeInvalidatesCachedDecision: revoking an identifier
// binding (user logoff) must invalidate decisions that depended on it,
// with no policy-database event at all.
func TestBindingChangeInvalidatesCachedDecision(t *testing.T) {
	p, erm, pm, _ := newEnv(t)
	erm.BindIPMAC(ipA, macA)
	erm.BindHostIP("a", ipA)
	erm.BindUserHost("alice", "a")
	if _, err := pm.Insert(policy.Rule{PDP: "t", Action: policy.ActionAllow, Src: policy.EndpointSpec{User: "alice"}}); err != nil {
		t.Fatal(err)
	}
	if d := process(t, p, packetInFor(synFrame(), 3)); !d.Allow {
		t.Fatalf("alice's flow denied: %+v", d)
	}
	erm.UnbindUserHost("alice", "a")
	if d := process(t, p, packetInFor(synFrame(), 3)); d.Allow {
		t.Fatal("cached allow survived the logoff binding change")
	}
}

// TestEpochPublishedBeforeFlush pins the invalidation ordering the safety
// argument rests on: when the flush notification for a mutation runs, the
// new policy epoch is already visible, so no decision cached under the old
// epoch can validate after its switch rules are flushed.
func TestEpochPublishedBeforeFlush(t *testing.T) {
	p, erm, pm, _ := newEnv(t)
	id := allowHostA(t, erm, pm)
	epochAfterInsert := pm.Epoch()
	var observed []uint64
	pm.SetFlushFunc(func(sc obs.SpanContext, ids []policy.RuleID) {
		observed = append(observed, pm.Epoch())
		p.FlushPolicies(sc, ids)
	})
	if err := pm.Revoke(id); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 1 || observed[0] != epochAfterInsert+1 {
		t.Fatalf("flush saw epochs %v, want [%d]", observed, epochAfterInsert+1)
	}
}

// TestStaleStoreNeverValidates drives the cache through the revoke-races-
// in-flight-decision interleaving deterministically: an entry stored with
// pre-mutation epochs (the in-flight Process lost the race) must never be
// served once the current epochs have moved on, and is evicted on first
// lookup.
func TestStaleStoreNeverValidates(t *testing.T) {
	c := newDecisionCache(64)
	ck := cacheKey{dpid: 7, inPort: 3}
	// In-flight decision derived at epochs (1,1); revoke bumps policy to 2
	// before the store lands.
	c.store(ck, Decision{Allow: true, RuleID: 42}, 1, 1)
	if _, ok, stale := c.lookup(ck, 2, 1); ok {
		t.Fatal("stale allow validated after policy epoch bump")
	} else if !stale {
		t.Fatal("epoch-invalidated eviction not reported as stale")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not evicted: len=%d", c.len())
	}
	// A plain miss (no entry at all) must not read as stale.
	if _, ok, stale := c.lookup(ck, 2, 1); ok || stale {
		t.Fatalf("empty lookup: ok=%v stale=%v, want miss", ok, stale)
	}
	// Same for the entity epoch.
	c.store(ck, Decision{Allow: true, RuleID: 42}, 2, 1)
	if _, ok, stale := c.lookup(ck, 2, 2); ok {
		t.Fatal("stale allow validated after entity epoch bump")
	} else if !stale {
		t.Fatal("entity-epoch eviction not reported as stale")
	}
}

// TestRevokeRacingProcessNeverLeavesStaleAllow hammers Process from
// several goroutines while the main goroutine inserts and revokes the
// allow rule; after every Revoke returns, the next admission must deny.
// Run under -race this also exercises the snapshot/cache memory ordering.
func TestRevokeRacingProcessNeverLeavesStaleAllow(t *testing.T) {
	p, erm, pm, _ := newEnv(t)
	erm.BindIPMAC(ipA, macA)
	erm.BindHostIP("a", ipA)

	frame := synFrame()
	for round := 0; round < 30; round++ {
		id, err := pm.Insert(policy.Rule{PDP: "t", Action: policy.ActionAllow, Src: policy.EndpointSpec{Host: "a"}})
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						p.Process(&Request{DPID: 7, PacketIn: packetInFor(frame, 3)})
					}
				}
			}()
		}
		if err := pm.Revoke(id); err != nil {
			t.Fatal(err)
		}
		// Revoke has returned: policy epoch is bumped and the flush has
		// run, so this admission must observe the revocation.
		var dec Decision
		p.Process(&Request{DPID: 7, PacketIn: packetInFor(frame, 3), Done: func(d Decision) { dec = d }})
		if dec.Allow {
			t.Fatalf("round %d: allow served after Revoke returned", round)
		}
		close(stop)
		wg.Wait()
	}
}

func TestCacheDisabled(t *testing.T) {
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := New(Config{Entity: erm, Policy: pm, FlowCacheSize: -1})
	if err := pm.RegisterPDP("t", 50); err != nil {
		t.Fatal(err)
	}
	process(t, p, packetInFor(synFrame(), 3))
	process(t, p, packetInFor(synFrame(), 3))
	m := p.Metrics()
	if m.CacheHits() != 0 || m.CacheMisses() != 2 {
		t.Fatalf("disabled cache recorded hits/misses = %d/%d", m.CacheHits(), m.CacheMisses())
	}
}

func TestCacheLRUBounded(t *testing.T) {
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := New(Config{Entity: erm, Policy: pm, FlowCacheSize: 16})
	if err := pm.RegisterPDP("t", 50); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		frame := netpkt.BuildTCP(macA, macB, ipA, ipB,
			&netpkt.TCPSegment{SrcPort: uint16(30000 + i), DstPort: 80, Flags: netpkt.TCPSyn})
		process(t, p, packetInFor(frame, 3))
	}
	if n := p.cache.len(); n > 16 {
		t.Fatalf("cache grew to %d entries, cap 16", n)
	}
}
