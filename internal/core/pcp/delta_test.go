package pcp

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// newModeEnv is newFlushEnv with the delta-compiler knobs exposed: PDPs
// "low" (priority 10) and "high" (priority 20) are registered, switches
// attach at dpids 1..n.
func newModeEnv(t testing.TB, nSwitches int, mut func(*Config)) (*PCP, *policy.Manager, *entity.Manager, []*batchSwitch) {
	t.Helper()
	erm := entity.NewManager()
	pm := policy.NewManager()
	cfg := Config{Entity: erm, Policy: pm}
	if mut != nil {
		mut(&cfg)
	}
	p := New(cfg)
	sws := make([]*batchSwitch, nSwitches)
	for i := range sws {
		sws[i] = &batchSwitch{}
		p.AttachSwitch(uint64(i+1), sws[i])
	}
	for _, pdp := range []struct {
		name string
		prio int
	}{{"low", 10}, {"high", 20}} {
		if err := pm.RegisterPDP(pdp.name, pdp.prio); err != nil {
			t.Fatal(err)
		}
	}
	return p, pm, erm, sws
}

// modsWritten counts every flow mod delivered to a switch so far, batched
// or not.
func modsWritten(sw *batchSwitch) int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	n := sw.singles
	for _, b := range sw.batches {
		n += len(b)
	}
	return n
}

// TestFlushPoliciesEmptyIdsNoWrites: the Policy Manager notifies the flush
// hook on every mutation — including ones that invalidate nothing — and
// the legacy path must write nothing for an empty id list instead of
// fanning out empty batches.
func TestFlushPoliciesEmptyIdsNoWrites(t *testing.T) {
	p, pm, _, sws := newModeEnv(t, 3, nil)
	p.FlushPolicies(obs.SpanContext{}, nil)
	p.FlushPolicies(obs.SpanContext{}, []policy.RuleID{})
	// A deny insert overlapping nothing flushes an empty id list end to end.
	if _, err := pm.Insert(policy.Rule{PDP: "low", Action: policy.ActionDeny, Src: policy.EndpointSpec{Host: "h9"}}); err != nil {
		t.Fatal(err)
	}
	for i, sw := range sws {
		if n := modsWritten(sw); n != 0 {
			t.Fatalf("switch %d: %d flow mods written for empty flushes, want 0", i, n)
		}
		sw.mu.Lock()
		batches := len(sw.batches)
		sw.mu.Unlock()
		if batches != 0 {
			t.Fatalf("switch %d: %d batch calls for empty flushes, want 0", i, batches)
		}
	}
}

// seedDenyRules inserts n distinct deny rules (one pinned source IP each)
// under the "low" PDP.
func seedDenyRules(t testing.TB, pm *policy.Manager, n int) []policy.RuleID {
	t.Helper()
	ids := make([]policy.RuleID, 0, n)
	for i := 0; i < n; i++ {
		ip := netpkt.IPv4FromUint32(0x0a010000 + uint32(i))
		id, err := pm.Insert(policy.Rule{PDP: "low", Action: policy.ActionDeny, Src: policy.EndpointSpec{IP: &ip}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestDeltaFlushOChangedWrites is the headline O(changed) gate: mutating
// one rule of a 1000-rule policy writes ~1000 flow mods per switch on the
// legacy path and a small constant on the delta path.
func TestDeltaFlushOChangedWrites(t *testing.T) {
	const rules = 1000
	mutate := func(pm *policy.Manager) {
		// A match-all allow under "high" overlaps every deny (and the
		// implicit default deny), the legacy worst case.
		if _, err := pm.Insert(policy.Rule{PDP: "high", Action: policy.ActionAllow}); err != nil {
			t.Fatal(err)
		}
	}

	pLegacy, pmLegacy, _, swsLegacy := newModeEnv(t, 2, nil)
	defer pLegacy.Stop()
	seedDenyRules(t, pmLegacy, rules)
	before := modsWritten(swsLegacy[0])
	mutate(pmLegacy)
	legacyMods := modsWritten(swsLegacy[0]) - before
	if legacyMods < rules {
		t.Fatalf("legacy flush wrote %d mods per switch, expected ≥ %d (delete per overlapped rule)", legacyMods, rules)
	}

	pDelta, pmDelta, _, swsDelta := newModeEnv(t, 2, func(c *Config) { c.DeltaCompilation = true })
	defer pDelta.Stop()
	seedDenyRules(t, pmDelta, rules)
	before = modsWritten(swsDelta[0])
	compiles := pDelta.Metrics().DeltaCompiles()
	mutate(pmDelta)
	deltaMods := modsWritten(swsDelta[0]) - before
	if deltaMods == 0 {
		t.Fatal("delta flush wrote nothing for an overlapping insert")
	}
	if deltaMods > 4 {
		t.Fatalf("delta flush wrote %d mods per switch for a 1-rule mutation, want ≤ 4 (O(changed), not O(rules))", deltaMods)
	}
	if pDelta.Metrics().DeltaCompiles() != compiles+1 {
		t.Fatalf("delta compiles = %d, want %d", pDelta.Metrics().DeltaCompiles(), compiles+1)
	}
	if deltaMods*100 > legacyMods {
		t.Fatalf("delta mutation wrote %d mods vs legacy %d — not the claimed reduction", deltaMods, legacyMods)
	}
}

// TestDeltaRevocationSingleCookieDelete: revoking one rule emits exactly
// one cookie-scoped delete per switch, regardless of policy size.
func TestDeltaRevocationSingleCookieDelete(t *testing.T) {
	p, pm, _, sws := newModeEnv(t, 2, func(c *Config) { c.DeltaCompilation = true })
	defer p.Stop()
	ids := seedDenyRules(t, pm, 50)
	before := modsWritten(sws[0])
	if err := pm.Revoke(ids[17]); err != nil {
		t.Fatal(err)
	}
	for i, sw := range sws {
		if n := modsWritten(sw) - before; n != 1 {
			t.Fatalf("switch %d: revocation wrote %d mods, want 1", i, n)
		}
		sw.mu.Lock()
		last := sw.batches[len(sw.batches)-1]
		sw.mu.Unlock()
		if len(last) != 1 || last[0] != uint64(ids[17]) {
			t.Fatalf("switch %d: revocation batch cookies = %v, want [%d]", i, last, ids[17])
		}
	}
}

// simClient adapts a simulated switch to the PCP's client interfaces.
// ApplyFlowMod clones matches, so the PCP's no-retain contract holds.
type simClient struct{ sw *switchsim.Switch }

func (c simClient) WriteFlowMod(fm *openflow.FlowMod) error { return c.sw.ApplyFlowMod(fm) }

func (c simClient) WriteFlowMods(fms []*openflow.FlowMod) error {
	for _, fm := range fms {
		if err := c.sw.ApplyFlowMod(fm); err != nil {
			return err
		}
	}
	return nil
}

// oracle universe: three hosts on one switch, one user each.
var (
	oracleIPs  = []netpkt.IPv4{netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"), netpkt.MustParseIPv4("10.0.0.3")}
	oracleMACs = []netpkt.MAC{{2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2}, {2, 0, 0, 0, 0, 3}}
	oracleUsrs = []string{"alice", "bob", "carol"}
	oracleHsts = []string{"h1", "h2", "h3"}
)

func bindOracleUniverse(erm *entity.Manager) {
	for i := range oracleIPs {
		erm.BindUserHost(oracleUsrs[i], oracleHsts[i])
		erm.BindHostIP(oracleHsts[i], oracleIPs[i])
		erm.BindIPMAC(oracleIPs[i], oracleMACs[i])
		erm.BindMACLocation(oracleMACs[i], entity.Location{DPID: 1, Port: uint32(i + 1)})
	}
}

// oracleRule builds a random rule over the oracle universe.
func oracleRule(rng *rand.Rand) policy.Rule {
	r := policy.Rule{PDP: []string{"low", "high"}[rng.Intn(2)], Action: policy.ActionAllow}
	if rng.Intn(2) == 0 {
		r.Action = policy.ActionDeny
	}
	spec := func() policy.EndpointSpec {
		var e policy.EndpointSpec
		i := rng.Intn(3)
		switch rng.Intn(4) {
		case 0:
			e.User = oracleUsrs[i]
		case 1:
			e.Host = oracleHsts[i]
		case 2:
			e.IP = &oracleIPs[i]
		case 3:
			e.MAC = &oracleMACs[i]
		}
		if rng.Intn(4) == 0 {
			port := uint16(rng.Intn(3) + 1)
			e.Port = &port
		}
		return e
	}
	r.Src = spec()
	r.Dst = spec()
	if rng.Intn(3) == 0 {
		proto := []uint8{netpkt.ProtoTCP, netpkt.ProtoUDP}[rng.Intn(2)]
		r.Props.IPProto = &proto
	}
	return r
}

// oracleProbes enumerates data-plane probe frames over the universe: TCP
// and UDP on the port grid plus ARP, between every endpoint pair, injected
// at the source's bound port.
type probe struct {
	inPort uint32
	frame  []byte
}

func oracleProbes() []probe {
	var ps []probe
	for i := range oracleIPs {
		for j := range oracleIPs {
			if i == j {
				continue
			}
			in := uint32(i + 1)
			for _, sp := range []uint16{1, 2, 3} {
				for _, dp := range []uint16{1, 2, 3} {
					ps = append(ps, probe{in, netpkt.BuildTCP(oracleMACs[i], oracleMACs[j], oracleIPs[i], oracleIPs[j],
						&netpkt.TCPSegment{SrcPort: sp, DstPort: dp, Flags: netpkt.TCPSyn})})
					ps = append(ps, probe{in, netpkt.BuildUDP(oracleMACs[i], oracleMACs[j], oracleIPs[i], oracleIPs[j],
						&netpkt.UDPDatagram{SrcPort: sp, DstPort: dp})})
				}
			}
			ps = append(ps, probe{in, netpkt.BuildARP(&netpkt.ARP{
				Op: netpkt.ARPRequest, SenderMAC: oracleMACs[i], SenderIP: oracleIPs[i],
				TargetMAC: oracleMACs[j], TargetIP: oracleIPs[j]})})
		}
	}
	return ps
}

// TestDeltaStateEquivalenceOracle: a switch that lived through every
// incremental delta (rule churn and binding churn) ends up in a state
// data-plane-equivalent to a switch populated from scratch at the final
// epoch — the delta stream neither leaks stale entries nor loses current
// ones.
func TestDeltaStateEquivalenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	incr := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	p, pm, erm, _ := newModeEnv(t, 0, func(c *Config) { c.ProactivePush = true })
	defer p.Stop()
	bindOracleUniverse(erm)
	p.AttachSwitch(1, simClient{incr})

	var live []policy.RuleID
	for step := 0; step < 80; step++ {
		switch {
		case len(live) > 0 && rng.Intn(4) == 0:
			i := rng.Intn(len(live))
			if err := pm.Revoke(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		case rng.Intn(6) == 0:
			// Binding churn: a user roams to another host, or a MAC moves.
			i, j := rng.Intn(3), rng.Intn(3)
			if rng.Intn(2) == 0 {
				erm.UnbindUserHost(oracleUsrs[i], oracleHsts[i])
				erm.BindUserHost(oracleUsrs[i], oracleHsts[j])
				// Restore so later steps see the canonical universe.
				erm.UnbindUserHost(oracleUsrs[i], oracleHsts[j])
				erm.BindUserHost(oracleUsrs[i], oracleHsts[i])
			} else {
				erm.BindMACLocation(oracleMACs[i], entity.Location{DPID: 1, Port: uint32(j + 4)})
				erm.BindMACLocation(oracleMACs[i], entity.Location{DPID: 1, Port: uint32(i + 1)})
			}
		default:
			id, err := pm.Insert(oracleRule(rng))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
	}
	// Guarantee the final state carries proactive coverage.
	if _, err := pm.Insert(policy.Rule{PDP: "high", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{User: "alice"}, Dst: policy.EndpointSpec{Host: "h2"}}); err != nil {
		t.Fatal(err)
	}
	if p.Metrics().ProactivePushed() == 0 {
		t.Fatal("mutation sequence never pushed a proactive entry; oracle exercises nothing")
	}

	fresh := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	p.AttachSwitch(1, simClient{fresh})

	if fresh.FlowCount(0) == 0 {
		t.Fatal("fresh switch population installed nothing")
	}
	for n, pr := range oracleProbes() {
		io, it := incr.Evaluate(pr.inPort, pr.frame)
		fo, ft := fresh.Evaluate(pr.inPort, pr.frame)
		if io != fo || it != ft {
			t.Fatalf("probe %d (in-port %d): incremental switch (%v, table %d) != fresh switch (%v, table %d)",
				n, pr.inPort, io, it, fo, ft)
		}
	}
}

// TestDeltaUnblockRepushesAllow: removing the deny that blocked an allow's
// proactive push re-derives and installs the allow's entries — the delta
// stream converges to the same state a fresh compile would produce.
func TestDeltaUnblockRepushesAllow(t *testing.T) {
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	p, pm, erm, _ := newModeEnv(t, 0, func(c *Config) { c.ProactivePush = true })
	defer p.Stop()
	bindOracleUniverse(erm)
	p.AttachSwitch(1, simClient{sw})

	port := uint16(445)
	denyID, err := pm.Insert(policy.Rule{PDP: "high", Action: policy.ActionDeny,
		Src: policy.EndpointSpec{User: "alice"}, Dst: policy.EndpointSpec{Host: "h2", Port: &port}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Insert(policy.Rule{PDP: "low", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{User: "alice"}, Dst: policy.EndpointSpec{Host: "h2"}}); err != nil {
		t.Fatal(err)
	}
	if n := sw.FlowCount(0); n != 0 {
		t.Fatalf("allow pushed %d entries while blocked by a higher-priority deny", n)
	}
	if err := pm.Revoke(denyID); err != nil {
		t.Fatal(err)
	}
	if n := sw.FlowCount(0); n == 0 {
		t.Fatal("revoking the blocking deny did not re-push the allow's entries")
	}
	frame := netpkt.BuildTCP(oracleMACs[0], oracleMACs[1], oracleIPs[0], oracleIPs[1],
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: port, Flags: netpkt.TCPSyn})
	if o, tbl := sw.Evaluate(1, frame); o != switchsim.OutcomeMiss || tbl != 1 {
		t.Fatalf("covered flow evaluated to (%v, table %d), want goto-table-1", o, tbl)
	}
}

// TestDenyAddEvictsPushedAllow: a deny arriving above a pushed allow pulls
// the allow's entries out of the dataplane, even when its match-scoped
// deletes (port-pinned here) could not cover the port-wildcarding entries.
func TestDenyAddEvictsPushedAllow(t *testing.T) {
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	p, pm, erm, _ := newModeEnv(t, 0, func(c *Config) { c.ProactivePush = true })
	defer p.Stop()
	bindOracleUniverse(erm)
	p.AttachSwitch(1, simClient{sw})

	if _, err := pm.Insert(policy.Rule{PDP: "low", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{User: "alice"}, Dst: policy.EndpointSpec{Host: "h2"}}); err != nil {
		t.Fatal(err)
	}
	if sw.FlowCount(0) == 0 {
		t.Fatal("allow rule installed no proactive entries")
	}
	port := uint16(445)
	if _, err := pm.Insert(policy.Rule{PDP: "high", Action: policy.ActionDeny,
		Src: policy.EndpointSpec{User: "alice"}, Dst: policy.EndpointSpec{Host: "h2", Port: &port}}); err != nil {
		t.Fatal(err)
	}
	frame := netpkt.BuildTCP(oracleMACs[0], oracleMACs[1], oracleIPs[0], oracleIPs[1],
		&netpkt.TCPSegment{SrcPort: 40000, DstPort: port, Flags: netpkt.TCPSyn})
	if o, _ := sw.Evaluate(1, frame); o == switchsim.OutcomeForward {
		t.Fatal("stale proactive allow still forwards traffic the new deny covers")
	}
	if o, tbl := sw.Evaluate(1, frame); o == switchsim.OutcomeMiss && tbl == 1 {
		t.Fatal("stale proactive allow still sends port-445 traffic to table 1")
	}
}

// TestConcurrentMutationsNoStaleAllow runs admissions, rule churn and
// binding churn concurrently (meaningful under -race), then checks the
// terminal invariant: after every rule is revoked, no flow forwards.
func TestConcurrentMutationsNoStaleAllow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sw := switchsim.NewSwitch(switchsim.Config{DPID: 1})
	p, pm, erm, _ := newModeEnv(t, 0, func(c *Config) { c.ProactivePush = true })
	defer p.Stop()
	bindOracleUniverse(erm)
	p.AttachSwitch(1, simClient{sw})
	// Table-1 forwarder: anything an allow entry passes through forwards,
	// making a stale allow visible as OutcomeForward.
	if err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 1, Command: openflow.FlowModAdd, Priority: 1, BufferID: openflow.NoBuffer,
		Match: &openflow.Match{},
		Instructions: []openflow.Instruction{&openflow.InstructionApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}},
	}); err != nil {
		t.Fatal(err)
	}

	probes := oracleProbes()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				pr := probes[r.Intn(len(probes))]
				p.Process(&Request{DPID: 1, PacketIn: packetInFor(pr.frame, pr.inPort)})
			}
		}(int64(w))
	}
	var live []policy.RuleID
	for step := 0; step < 60; step++ {
		if len(live) > 4 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := pm.Revoke(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			continue
		}
		id, err := pm.Insert(oracleRule(rng))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	wg.Wait()

	// Quiesced: revoke everything. No installed allow may survive.
	for _, id := range live {
		if err := pm.Revoke(id); err != nil {
			t.Fatal(err)
		}
	}
	for n, pr := range probes {
		if o, _ := sw.Evaluate(pr.inPort, pr.frame); o == switchsim.OutcomeForward {
			t.Fatalf("probe %d still forwards after all rules were revoked (stale allow entry)", n)
		}
	}
}

// benchmarkDeltaFlush measures one policy flush over a 1000-rule policy
// with `changed` mutated rules, legacy (cookie delete per overlapped rule)
// vs delta (mods proportional to the change). The reported mods/op metric
// is the O(changed)-vs-O(rules) claim itself: it counts the flow mods one
// flush puts on the wire across all switches — the cost a hardware switch
// pays per rule-table update — independent of how cheap the in-process
// fake makes each write.
func benchmarkDeltaFlush(b *testing.B, changed int) {
	const rules = 1000
	totalMods := func(sws []*batchSwitch) int {
		n := 0
		for _, sw := range sws {
			n += modsWritten(sw)
		}
		return n
	}
	b.Run("legacy", func(b *testing.B) {
		p, pm, _, sws := newModeEnv(b, 4, nil)
		defer p.Stop()
		ids := seedDenyRules(b, pm, rules)
		pm.SetFlushFunc(nil)
		b.ReportAllocs()
		b.ResetTimer()
		before := totalMods(sws)
		for i := 0; i < b.N; i++ {
			// The legacy cost of a policy change invalidating the table: one
			// delete per rule, every switch.
			p.FlushPolicies(obs.SpanContext{}, ids)
		}
		b.ReportMetric(float64(totalMods(sws)-before)/float64(b.N), "mods/op")
	})
	b.Run("delta", func(b *testing.B) {
		p, pm, _, sws := newModeEnv(b, 4, func(c *Config) { c.DeltaCompilation = true })
		defer p.Stop()
		ids := seedDenyRules(b, pm, rules)
		pm.SetFlushFunc(nil)
		p.FlushPolicies(obs.SpanContext{}, nil) // sync the classifier
		b.ReportAllocs()
		b.ResetTimer()
		before := totalMods(sws)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for k := 0; k < changed; k++ {
				n := (i*changed + k) % len(ids)
				if err := pm.Revoke(ids[n]); err != nil {
					b.Fatal(err)
				}
				ip := netpkt.IPv4FromUint32(0x0a020000 + uint32(i*changed+k))
				id, err := pm.Insert(policy.Rule{PDP: "low", Action: policy.ActionDeny, Src: policy.EndpointSpec{IP: &ip}})
				if err != nil {
					b.Fatal(err)
				}
				ids[n] = id
			}
			b.StartTimer()
			p.FlushPolicies(obs.SpanContext{}, nil)
		}
		b.ReportMetric(float64(totalMods(sws)-before)/float64(b.N), "mods/op")
	})
}

func BenchmarkDeltaFlush_1ChangedOf1k(b *testing.B)   { benchmarkDeltaFlush(b, 1) }
func BenchmarkDeltaFlush_10ChangedOf1k(b *testing.B)  { benchmarkDeltaFlush(b, 10) }
func BenchmarkDeltaFlush_100ChangedOf1k(b *testing.B) { benchmarkDeltaFlush(b, 100) }
