package pcp

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dfi-sdn/dfi/internal/policytext/compile"
)

// langGroupDoc renders a policy document with one n-member group and a
// deny statement over it — the language-level analogue of seedDenyRules.
func langGroupDoc(n int) string {
	var b strings.Builder
	b.WriteString("group quarantined {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  host q%d\n", i)
	}
	b.WriteString("}\n\npdp lang priority 30\ndeny from group quarantined\n")
	return b.String()
}

// TestLanguageMembershipDeltaBounded is the end-to-end O(affected) gate
// for the policy language: one membership change of a 1000-member group
// must flow through Engine → Manager → delta compiler as a single-rule
// delta, bounded flow-mod writes per switch — not a delete-and-repopulate
// of the whole compiled rule set.
func TestLanguageMembershipDeltaBounded(t *testing.T) {
	const members = 1000
	p, pm, _, sws := newModeEnv(t, 2, func(c *Config) { c.DeltaCompilation = true })
	defer p.Stop()
	eng := compile.NewEngine(pm, nil)
	if _, err := eng.SetSource(langGroupDoc(members)); err != nil {
		t.Fatal(err)
	}
	if pm.Len() != members {
		t.Fatalf("compiled policy has %d rules, want %d", pm.Len(), members)
	}

	// Adding one member must lower exactly one new rule and write a small
	// constant number of flow mods per switch.
	before := modsWritten(sws[0])
	d, err := eng.AddMember("quarantined", "host fresh")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 1 || len(d.Revoke) != 0 {
		t.Fatalf("add delta = +%d/-%d, want +1/-0 (O(affected) recompile)", len(d.Insert), len(d.Revoke))
	}
	if pm.Len() != members+1 {
		t.Fatalf("manager has %d rules after add", pm.Len())
	}
	addMods := modsWritten(sws[0]) - before
	if addMods > 4 {
		t.Fatalf("membership add wrote %d flow mods per switch, want ≤ 4 (O(affected), not O(rules))", addMods)
	}

	// Removing one member revokes exactly its rule; the revocation is
	// visible on the wire as a single cookie-scoped delete per switch.
	before = modsWritten(sws[0])
	d, err = eng.RemoveMember("quarantined", "host q17")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 0 || len(d.Revoke) != 1 {
		t.Fatalf("remove delta = +%d/-%d, want +0/-1", len(d.Insert), len(d.Revoke))
	}
	for i, sw := range sws {
		if n := modsWritten(sw) - before; n != 1 {
			t.Fatalf("switch %d: membership remove wrote %d flow mods, want exactly 1 cookie delete", i, n)
		}
	}
	if pm.Len() != members {
		t.Fatalf("manager has %d rules after remove", pm.Len())
	}
}
