package entity

import (
	"errors"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

var (
	macA = netpkt.MustParseMAC("02:00:00:00:00:0a")
	macB = netpkt.MustParseMAC("02:00:00:00:00:0b")
	ipA  = netpkt.MustParseIPv4("10.0.0.10")
	ipB  = netpkt.MustParseIPv4("10.0.0.11")
)

func TestResolveFullChain(t *testing.T) {
	m := NewManager()
	m.BindIPMAC(ipA, macA)
	m.BindHostIP("alice-laptop", ipA)
	m.BindUserHost("alice", "alice-laptop")
	m.BindMACLocation(macA, Location{DPID: 1, Port: 3})

	res, err := m.Resolve(Observed{
		MAC: macA, HasIP: true, IP: ipA,
		HasLoc: true, Loc: Location{DPID: 1, Port: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Host != "alice-laptop" {
		t.Fatalf("Host = %q", res.Host)
	}
	if len(res.Users) != 1 || res.Users[0] != "alice" {
		t.Fatalf("Users = %v", res.Users)
	}
}

func TestResolveUnknownIsEmptyNotError(t *testing.T) {
	m := NewManager()
	res, err := m.Resolve(Observed{MAC: macA, HasIP: true, IP: ipA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Host != "" || len(res.Users) != 0 {
		t.Fatalf("res = %+v, want empty", res)
	}
}

func TestResolveSpoofedIPMAC(t *testing.T) {
	m := NewManager()
	m.BindIPMAC(ipA, macA)
	// Packet claims ipA but is sent from macB: spoofed.
	_, err := m.Resolve(Observed{MAC: macB, HasIP: true, IP: ipA})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestResolveSpoofedLocation(t *testing.T) {
	m := NewManager()
	m.BindMACLocation(macA, Location{DPID: 1, Port: 3})
	_, err := m.Resolve(Observed{MAC: macA, HasLoc: true, Loc: Location{DPID: 1, Port: 9}})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
	// Same MAC appearing on a *different switch* is fine (multi-switch
	// paths), as long as the per-switch port is consistent.
	if _, err := m.Resolve(Observed{MAC: macA, HasLoc: true, Loc: Location{DPID: 2, Port: 1}}); err != nil {
		t.Fatalf("different switch: %v", err)
	}
}

func TestMultipleUsersPerHost(t *testing.T) {
	m := NewManager()
	m.BindUserHost("alice", "h1")
	m.BindUserHost("bob", "h1")
	if got := m.UsersOn("h1"); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("UsersOn = %v", got)
	}
	m.UnbindUserHost("alice", "h1")
	if got := m.UsersOn("h1"); len(got) != 1 || got[0] != "bob" {
		t.Fatalf("UsersOn after unbind = %v", got)
	}
}

func TestUserOnMultipleHosts(t *testing.T) {
	m := NewManager()
	m.BindUserHost("alice", "h1")
	m.BindUserHost("alice", "h2")
	if got := m.HostsOf("alice"); len(got) != 2 {
		t.Fatalf("HostsOf = %v", got)
	}
	m.UnbindUserHost("alice", "h1")
	if got := m.HostsOf("alice"); len(got) != 1 || got[0] != "h2" {
		t.Fatalf("HostsOf after unbind = %v", got)
	}
}

func TestDHCPLeaseReassignment(t *testing.T) {
	m := NewManager()
	m.BindIPMAC(ipA, macA)
	// The lease moves to another machine.
	m.BindIPMAC(ipA, macB)
	if mac, _ := m.MACOf(ipA); mac != macB {
		t.Fatalf("MACOf = %v, want %v", mac, macB)
	}
	// Old owner must now be inconsistent.
	if _, err := m.Resolve(Observed{MAC: macA, HasIP: true, IP: ipA}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
	// New owner resolves cleanly.
	if _, err := m.Resolve(Observed{MAC: macB, HasIP: true, IP: ipA}); err != nil {
		t.Fatal(err)
	}
}

func TestDNSRebindMovesHost(t *testing.T) {
	m := NewManager()
	m.BindHostIP("h1", ipA)
	m.BindHostIP("h2", ipA) // dynamic DNS: ipA now points at h2
	if h, _ := m.HostOf(ipA); h != "h2" {
		t.Fatalf("HostOf = %q, want h2", h)
	}
	if ips := m.IPsOf("h1"); len(ips) != 0 {
		t.Fatalf("IPsOf(h1) = %v, want empty", ips)
	}
}

func TestHostWithMultipleIPs(t *testing.T) {
	m := NewManager()
	m.BindHostIP("h1", ipA)
	m.BindHostIP("h1", ipB)
	if ips := m.IPsOf("h1"); len(ips) != 2 {
		t.Fatalf("IPsOf = %v", ips)
	}
	m.UnbindHostIP("h1", ipA)
	if ips := m.IPsOf("h1"); len(ips) != 1 || ips[0] != ipB {
		t.Fatalf("IPsOf after unbind = %v", ips)
	}
}

func TestMACLocationReplacedPerSwitch(t *testing.T) {
	m := NewManager()
	m.BindMACLocation(macA, Location{DPID: 1, Port: 3})
	// Host moves to another port on the same switch.
	m.BindMACLocation(macA, Location{DPID: 1, Port: 5})
	if port, ok := m.LocationOf(macA, 1); !ok || port != 5 {
		t.Fatalf("LocationOf = %d, %v", port, ok)
	}
	m.UnbindMACLocation(macA, 1)
	if _, ok := m.LocationOf(macA, 1); ok {
		t.Fatal("location survived unbind")
	}
}

func TestResolveBothChargesOnce(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	m := NewManager(WithQueryLatency(clk, store.Fixed(2*time.Millisecond)))
	m.BindIPMAC(ipA, macA)
	m.BindIPMAC(ipB, macB)
	clk.Go(func() {
		if _, _, err := m.ResolveBoth(
			Observed{MAC: macA, HasIP: true, IP: ipA},
			Observed{MAC: macB, HasIP: true, IP: ipB},
		); err != nil {
			t.Error(err)
		}
	})
	end := clk.Run()
	if want := epoch.Add(2 * time.Millisecond); !end.Equal(want) {
		t.Fatalf("clock = %v, want exactly one 2ms charge, got %v", end, end.Sub(epoch))
	}
}

func TestResolveBothSpoofedSource(t *testing.T) {
	m := NewManager()
	m.BindIPMAC(ipA, macA)
	_, _, err := m.ResolveBoth(
		Observed{MAC: macB, HasIP: true, IP: ipA}, // spoofed
		Observed{MAC: macB, HasIP: true, IP: ipB},
	)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v", err)
	}
}

func TestLogoffRemovesUserFromResolution(t *testing.T) {
	m := NewManager()
	m.BindIPMAC(ipA, macA)
	m.BindHostIP("h1", ipA)
	m.BindUserHost("alice", "h1")

	res, err := m.Resolve(Observed{MAC: macA, HasIP: true, IP: ipA})
	if err != nil || len(res.Users) != 1 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	m.UnbindUserHost("alice", "h1")
	res, err = m.Resolve(Observed{MAC: macA, HasIP: true, IP: ipA})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 0 {
		t.Fatalf("Users after logoff = %v", res.Users)
	}
	if res.Host != "h1" {
		t.Fatalf("Host = %q (machine binding should survive logoff)", res.Host)
	}
}

// TestEpochBumpsOnlyOnEffectiveChange: every kind of binding mutation
// bumps the epoch exactly when it changes state, and re-binding identical
// state never does — the PCP re-observes every flow's MAC location, so a
// no-op bump would invalidate the flow-decision cache on every packet.
func TestEpochBumpsOnlyOnEffectiveChange(t *testing.T) {
	m := NewManager()
	e := m.Epoch()
	step := func(name string, wantBump bool, f func()) {
		t.Helper()
		f()
		now := m.Epoch()
		if wantBump && now == e {
			t.Fatalf("%s: epoch did not bump", name)
		}
		if !wantBump && now != e {
			t.Fatalf("%s: no-op bumped epoch %d -> %d", name, e, now)
		}
		e = now
	}

	step("bind user", true, func() { m.BindUserHost("alice", "h1") })
	step("rebind same user", false, func() { m.BindUserHost("alice", "h1") })
	step("unbind user", true, func() { m.UnbindUserHost("alice", "h1") })
	step("unbind absent user", false, func() { m.UnbindUserHost("alice", "h1") })

	step("bind host ip", true, func() { m.BindHostIP("h1", ipA) })
	step("rebind same host ip", false, func() { m.BindHostIP("h1", ipA) })
	step("rebind ip to new host", true, func() { m.BindHostIP("h2", ipA) })
	step("unbind host ip", true, func() { m.UnbindHostIP("h2", ipA) })
	step("unbind absent host ip", false, func() { m.UnbindHostIP("h2", ipA) })

	step("bind ip mac", true, func() { m.BindIPMAC(ipA, macA) })
	step("rebind same lease", false, func() { m.BindIPMAC(ipA, macA) })
	step("lease reassignment", true, func() { m.BindIPMAC(ipA, macB) })
	step("unbind lease", true, func() { m.UnbindIPMAC(ipA, macB) })
	step("unbind absent lease", false, func() { m.UnbindIPMAC(ipA, macB) })

	step("bind mac location", true, func() { m.BindMACLocation(macA, Location{DPID: 1, Port: 3}) })
	step("re-observe same location", false, func() { m.BindMACLocation(macA, Location{DPID: 1, Port: 3}) })
	step("mac moves port", true, func() { m.BindMACLocation(macA, Location{DPID: 1, Port: 4}) })
	step("same mac on second switch", true, func() { m.BindMACLocation(macA, Location{DPID: 2, Port: 1}) })
	step("unbind location", true, func() { m.UnbindMACLocation(macA, 1) })
	step("unbind absent location", false, func() { m.UnbindMACLocation(macA, 1) })
}

// TestChangeFuncObservesEffectiveMutations: every effective Bind*/Unbind*
// emits exactly one Change (after the lock is released, with the new epoch
// visible), no-op re-binds emit nothing, and displacement binds carry the
// previous holder.
func TestChangeFuncObservesEffectiveMutations(t *testing.T) {
	m := NewManager()
	var changes []Change
	m.SetChangeFunc(func(ch Change) {
		// The hook may read accessors freely: the write lock is released.
		m.IPsOf("irrelevant")
		changes = append(changes, ch)
	})

	m.BindUserHost("alice", "h1")
	m.BindUserHost("alice", "h1") // no-op: no change
	m.BindHostIP("h1", ipA)
	m.BindIPMAC(ipA, macA)
	m.BindIPMAC(ipA, macA) // no-op
	m.BindMACLocation(macA, Location{DPID: 1, Port: 3})
	m.BindMACLocation(macA, Location{DPID: 1, Port: 3}) // no-op
	if len(changes) != 4 {
		t.Fatalf("%d changes for 4 effective mutations: %+v", len(changes), changes)
	}
	want := []struct {
		kind ChangeKind
		bind bool
	}{
		{ChangeUserHost, true}, {ChangeHostIP, true}, {ChangeIPMAC, true}, {ChangeMACLocation, true},
	}
	for i, w := range want {
		if changes[i].Kind != w.kind || changes[i].Bind != w.bind {
			t.Fatalf("change %d = %+v, want kind %d bind %v", i, changes[i], w.kind, w.bind)
		}
	}

	// A DHCP lease reassignment names the displaced MAC.
	changes = nil
	m.BindIPMAC(ipA, macB)
	if len(changes) != 1 {
		t.Fatalf("%d changes for a lease reassignment", len(changes))
	}
	if ch := changes[0]; !ch.HasPrevMAC || ch.PrevMAC != macA || ch.MAC != macB {
		t.Fatalf("reassignment change = %+v, want PrevMAC %v", ch, macA)
	}

	// Unbinds notify with Bind=false.
	changes = nil
	m.UnbindUserHost("alice", "h1")
	m.UnbindUserHost("alice", "h1") // no-op
	if len(changes) != 1 || changes[0].Bind || changes[0].Kind != ChangeUserHost {
		t.Fatalf("unbind changes = %+v", changes)
	}
}

// TestLocationsOfAndIPsOfMAC: the reverse accessors the proactive push
// concretizes through, sorted for deterministic derivations.
func TestLocationsOfAndIPsOfMAC(t *testing.T) {
	m := NewManager()
	if got := m.LocationsOf(macA); len(got) != 0 {
		t.Fatalf("LocationsOf(unbound) = %v", got)
	}
	m.BindMACLocation(macA, Location{DPID: 2, Port: 9})
	m.BindMACLocation(macA, Location{DPID: 1, Port: 4})
	got := m.LocationsOf(macA)
	if len(got) != 2 || got[0] != (Location{DPID: 1, Port: 4}) || got[1] != (Location{DPID: 2, Port: 9}) {
		t.Fatalf("LocationsOf = %v, want sorted by DPID", got)
	}

	m.BindIPMAC(ipB, macA)
	m.BindIPMAC(ipA, macA)
	ips := m.IPsOfMAC(macA)
	if len(ips) != 2 || ips[0] != ipA || ips[1] != ipB {
		t.Fatalf("IPsOfMAC = %v, want sorted [%v %v]", ips, ipA, ipB)
	}
	m.UnbindIPMAC(ipA, macA)
	if ips := m.IPsOfMAC(macA); len(ips) != 1 || ips[0] != ipB {
		t.Fatalf("IPsOfMAC after unbind = %v", ips)
	}
}
