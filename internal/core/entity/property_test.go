package entity

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// TestPropertyBindingGraphInvariants drives the manager with random
// bind/unbind sequences and checks the forward/reverse maps stay mutually
// consistent after every operation.
func TestPropertyBindingGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewManager()

	users := []string{"u1", "u2", "u3", "u4"}
	hosts := []string{"h1", "h2", "h3", "h4"}
	ips := make([]netpkt.IPv4, 6)
	macs := make([]netpkt.MAC, 6)
	for i := range ips {
		ips[i] = netpkt.IPv4FromUint32(0x0a000000 | uint32(i))
		macs[i] = netpkt.MAC{2, 0, 0, 0, 0, byte(i + 1)}
	}

	for step := 0; step < 5000; step++ {
		switch rng.Intn(8) {
		case 0:
			m.BindUserHost(users[rng.Intn(len(users))], hosts[rng.Intn(len(hosts))])
		case 1:
			m.UnbindUserHost(users[rng.Intn(len(users))], hosts[rng.Intn(len(hosts))])
		case 2:
			m.BindHostIP(hosts[rng.Intn(len(hosts))], ips[rng.Intn(len(ips))])
		case 3:
			m.UnbindHostIP(hosts[rng.Intn(len(hosts))], ips[rng.Intn(len(ips))])
		case 4:
			m.BindIPMAC(ips[rng.Intn(len(ips))], macs[rng.Intn(len(macs))])
		case 5:
			m.UnbindIPMAC(ips[rng.Intn(len(ips))], macs[rng.Intn(len(macs))])
		case 6:
			m.BindMACLocation(macs[rng.Intn(len(macs))], Location{
				DPID: uint64(rng.Intn(3) + 1), Port: uint32(rng.Intn(4) + 1),
			})
		case 7:
			m.UnbindMACLocation(macs[rng.Intn(len(macs))], uint64(rng.Intn(3)+1))
		}
		if err := checkInvariants(m, users, hosts, ips); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// checkInvariants verifies the forward/reverse views agree through the
// public API.
func checkInvariants(m *Manager, users, hosts []string, ips []netpkt.IPv4) error {
	// user↔host symmetry.
	for _, u := range users {
		for _, h := range m.HostsOf(u) {
			if !contains(m.UsersOn(h), u) {
				return fmt.Errorf("user %s on host %s but reverse lookup disagrees", u, h)
			}
		}
	}
	for _, h := range hosts {
		for _, u := range m.UsersOn(h) {
			if !contains(m.HostsOf(u), h) {
				return fmt.Errorf("host %s has user %s but forward lookup disagrees", h, u)
			}
		}
	}
	// host↔IP: every IP of a host must PTR back to that host.
	for _, h := range hosts {
		for _, ip := range m.IPsOf(h) {
			got, ok := m.HostOf(ip)
			if !ok || got != h {
				return fmt.Errorf("host %s holds %s but HostOf says %q (%v)", h, ip, got, ok)
			}
		}
	}
	// Each IP has at most one host and one MAC; resolving the bound pair
	// never reports inconsistency.
	for _, ip := range ips {
		if mac, ok := m.MACOf(ip); ok {
			if _, err := m.Resolve(Observed{MAC: mac, HasIP: true, IP: ip}); err != nil {
				return fmt.Errorf("bound pair (%s, %s) resolves inconsistent: %v", ip, mac, err)
			}
		}
	}
	return nil
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
