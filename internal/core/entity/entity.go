// Package entity implements DFI's Entity Resolution Manager (paper §III-B):
// it maintains the current, possibly many-to-many bindings along the chain
//
//	username ↔ hostname ↔ IP address ↔ MAC address ↔ (switch, port)
//
// fed by identifier-binding sensors attached to authoritative sources (SIEM
// logs, DNS, DHCP, and the PCP's MAC-location sensor), and resolves the
// low-level identifiers observed in packets up to high-level identifiers at
// access-control decision time. It also detects spoofed traffic whose
// identifiers are inconsistent with the expected bindings.
package entity

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// ErrInconsistent reports that a packet's identifiers contradict the
// current authoritative bindings (e.g. a source IP bound to a different
// MAC), indicating spoofing; such traffic must not match identity policy.
var ErrInconsistent = errors.New("entity: identifiers inconsistent with bindings")

// Location is a switch attachment point.
type Location struct {
	DPID uint64
	Port uint32
}

// ChangeKind identifies which link of the identifier chain a binding
// mutation touched.
type ChangeKind uint8

// Binding change kinds, one per chain link.
const (
	ChangeUserHost ChangeKind = iota + 1
	ChangeHostIP
	ChangeIPMAC
	ChangeMACLocation
)

// Change describes one effective binding mutation, carrying the
// identifiers the mutation named — including the previous holder when a
// bind displaced one (a DHCP lease reassignment, a DNS repoint) — so a
// consumer can re-derive any state keyed on them. No-op re-binds emit no
// Change, mirroring the epoch rules.
type Change struct {
	Kind ChangeKind
	// Bind is true for a bind, false for an unbind.
	Bind bool

	User     string
	Host     string
	PrevHost string // ChangeHostIP: host the IP previously resolved to
	HasIP    bool
	IP       netpkt.IPv4
	HasMAC   bool
	MAC      netpkt.MAC
	// PrevMAC is the MAC a rebound IP previously leased to (ChangeIPMAC).
	HasPrevMAC bool
	PrevMAC    netpkt.MAC
	// DPID is the switch of a ChangeMACLocation mutation.
	DPID uint64
}

// ChangeFunc observes effective binding mutations. It is invoked after the
// manager's write lock is released (so it may call accessors freely) and
// after the epoch bump is visible; the bindings it reads are therefore at
// least as new as the change it was notified of.
type ChangeFunc func(Change)

// Manager is the Entity Resolution Manager.
type Manager struct {
	clock   simclock.Clock
	latency store.LatencyModel

	// spoofRejections counts resolutions refused with ErrInconsistent.
	// Nil (a no-op) unless WithObserver installed a registry.
	spoofRejections *obs.Counter

	// audit (WithAuditLog) appends a kind="binding" record per effective
	// binding mutation; nil-safe when unconfigured.
	audit *obs.AuditLog

	// epoch counts effective binding mutations: it is bumped only when a
	// Bind*/Unbind* call actually changes the stored bindings, never on
	// no-op re-binds (the PCP re-observes every flow's MAC location, so a
	// no-op bump would defeat any epoch-validated decision cache). A
	// resolution performed at epoch E stays valid while the epoch is E.
	epoch atomic.Uint64

	mu sync.RWMutex
	// onChange, when set, observes effective binding mutations (invoked
	// after mu is released, like auditf).
	onChange ChangeFunc
	// username <-> hostname (SIEM log-on sensor).
	userToHosts map[string]map[string]struct{}
	hostToUsers map[string]map[string]struct{}
	// hostname <-> IP (DNS sensor).
	hostToIPs map[string]map[netpkt.IPv4]struct{}
	ipToHost  map[netpkt.IPv4]string
	// IP <-> MAC (DHCP sensor). One MAC per IP at a time.
	ipToMAC  map[netpkt.IPv4]netpkt.MAC
	macToIPs map[netpkt.MAC]map[netpkt.IPv4]struct{}
	// MAC <-> (switch, port) (PCP sensor). At most one port per switch.
	macToLoc map[netpkt.MAC]map[uint64]uint32
}

// Option configures a Manager.
type Option func(*Manager)

// WithQueryLatency injects a simulated per-resolution cost (the paper's
// measured RPC+MySQL binding-query latency) charged on the given clock.
func WithQueryLatency(clock simclock.Clock, m store.LatencyModel) Option {
	return func(em *Manager) {
		em.clock = clock
		em.latency = m
	}
}

// WithObserver registers the Entity Resolution Manager's instruments —
// binding count, binding epoch, spoof rejections — with reg. Binding-query
// latency is not re-measured here: the PCP times the full query from outside
// as dfi_pcp_stage_seconds{stage="binding_query"}.
func WithObserver(reg *obs.Registry) Option {
	return func(em *Manager) {
		em.spoofRejections = reg.Counter("dfi_entity_spoof_rejections_total",
			"Resolutions refused because packet identifiers contradicted the bindings.")
		reg.GaugeFunc("dfi_entity_epoch",
			"Current binding epoch (bumps only on effective binding changes).",
			func() float64 { return float64(em.Epoch()) })
		reg.GaugeFunc("dfi_entity_bindings",
			"Stored binding edges across all levels of the identifier chain.",
			func() float64 { return float64(em.bindingCount()) })
	}
}

// WithAuditLog attaches the tamper-evident audit log: every effective
// binding mutation (no-op re-binds excluded, mirroring the epoch rules)
// appends a kind="binding" record.
func WithAuditLog(a *obs.AuditLog) Option {
	return func(em *Manager) { em.audit = a }
}

// NewManager returns an empty Entity Resolution Manager.
func NewManager(opts ...Option) *Manager {
	m := &Manager{
		userToHosts: make(map[string]map[string]struct{}),
		hostToUsers: make(map[string]map[string]struct{}),
		hostToIPs:   make(map[string]map[netpkt.IPv4]struct{}),
		ipToHost:    make(map[netpkt.IPv4]string),
		ipToMAC:     make(map[netpkt.IPv4]netpkt.MAC),
		macToIPs:    make(map[netpkt.MAC]map[netpkt.IPv4]struct{}),
		macToLoc:    make(map[netpkt.MAC]map[uint64]uint32),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Epoch returns the current binding epoch (see the epoch field): it
// increases exactly when the stored bindings change, so a decision derived
// from resolutions at epoch E is stale iff Epoch() != E.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// bump records an effective binding mutation. Called with m.mu held for
// writing, so the new epoch is visible before the mutation's lock release.
func (m *Manager) bump(changed bool) {
	if changed {
		m.epoch.Add(1)
	}
}

// SetChangeFunc registers the single consumer of effective binding
// mutations (the PCP's proactive-push maintenance). Set it before sensors
// start mutating bindings.
func (m *Manager) SetChangeFunc(fn ChangeFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onChange = fn
}

// notify invokes the change hook outside the write lock; fn was read under
// it. A nil fn (the common case) costs one branch.
func notify(fn ChangeFunc, ch Change) {
	if fn != nil {
		fn(ch)
	}
}

// BindUserHost records that user is logged onto host.
func (m *Manager) BindUserHost(user, host string) {
	m.mu.Lock()
	changed := addTo(m.userToHosts, user, host)
	addTo(m.hostToUsers, host, user)
	m.bump(changed)
	fn := m.onChange
	m.mu.Unlock()
	if changed {
		m.auditf("bind", "user-host %s@%s", user, host)
		notify(fn, Change{Kind: ChangeUserHost, Bind: true, User: user, Host: host})
	}
}

// UnbindUserHost records that user logged off host.
func (m *Manager) UnbindUserHost(user, host string) {
	m.mu.Lock()
	changed := removeFrom(m.userToHosts, user, host)
	removeFrom(m.hostToUsers, host, user)
	m.bump(changed)
	fn := m.onChange
	m.mu.Unlock()
	if changed {
		m.auditf("unbind", "user-host %s@%s", user, host)
		notify(fn, Change{Kind: ChangeUserHost, User: user, Host: host})
	}
}

// BindHostIP records a DNS binding between host and ip. An IP maps to one
// hostname at a time (authoritative DNS A/PTR view); a host may hold many
// IPs (multiple interfaces).
func (m *Manager) BindHostIP(host string, ip netpkt.IPv4) {
	m.mu.Lock()
	prev, had := m.ipToHost[ip]
	if had && prev == host {
		m.mu.Unlock()
		return
	}
	if had {
		removeFromKey(m.hostToIPs, prev, ip)
	}
	m.ipToHost[ip] = host
	addToKey(m.hostToIPs, host, ip)
	m.bump(true)
	fn := m.onChange
	m.mu.Unlock()
	m.auditf("bind", "host-ip %s=%s", host, ip)
	ch := Change{Kind: ChangeHostIP, Bind: true, Host: host, HasIP: true, IP: ip}
	if had {
		ch.PrevHost = prev
	}
	notify(fn, ch)
}

// UnbindHostIP removes a DNS binding.
func (m *Manager) UnbindHostIP(host string, ip netpkt.IPv4) {
	m.mu.Lock()
	changed := false
	if m.ipToHost[ip] == host {
		delete(m.ipToHost, ip)
		changed = true
	}
	if removeFromKey(m.hostToIPs, host, ip) {
		changed = true
	}
	m.bump(changed)
	fn := m.onChange
	m.mu.Unlock()
	if changed {
		m.auditf("unbind", "host-ip %s=%s", host, ip)
		notify(fn, Change{Kind: ChangeHostIP, Host: host, HasIP: true, IP: ip})
	}
}

// BindIPMAC records a DHCP lease binding ip to mac, replacing any previous
// MAC for that IP (a lease reassignment).
func (m *Manager) BindIPMAC(ip netpkt.IPv4, mac netpkt.MAC) {
	m.mu.Lock()
	prev, had := m.ipToMAC[ip]
	if had && prev == mac {
		m.mu.Unlock()
		return
	}
	if had {
		removeIPFrom(m.macToIPs, prev, ip)
	}
	m.ipToMAC[ip] = mac
	if m.macToIPs[mac] == nil {
		m.macToIPs[mac] = make(map[netpkt.IPv4]struct{})
	}
	m.macToIPs[mac][ip] = struct{}{}
	m.bump(true)
	fn := m.onChange
	m.mu.Unlock()
	m.auditf("bind", "ip-mac %s=%s", ip, mac)
	ch := Change{Kind: ChangeIPMAC, Bind: true, HasIP: true, IP: ip, HasMAC: true, MAC: mac}
	if had {
		ch.HasPrevMAC, ch.PrevMAC = true, prev
	}
	notify(fn, ch)
}

// UnbindIPMAC removes a DHCP lease binding (lease expiry/release).
func (m *Manager) UnbindIPMAC(ip netpkt.IPv4, mac netpkt.MAC) {
	m.mu.Lock()
	changed := false
	if m.ipToMAC[ip] == mac {
		delete(m.ipToMAC, ip)
		changed = true
	}
	if removeIPFrom(m.macToIPs, mac, ip) {
		changed = true
	}
	m.bump(changed)
	fn := m.onChange
	m.mu.Unlock()
	if changed {
		m.auditf("unbind", "ip-mac %s=%s", ip, mac)
		notify(fn, Change{Kind: ChangeIPMAC, HasIP: true, IP: ip, HasMAC: true, MAC: mac})
	}
}

// BindMACLocation records that mac was observed attached to port on switch
// dpid. Each MAC has at most one port per switch (paper §IV-A); a new port
// replaces the old one. Re-observing an unchanged location — the common
// case, since the PCP reports it for every admitted flow — leaves the
// binding epoch untouched.
func (m *Manager) BindMACLocation(mac netpkt.MAC, loc Location) {
	m.mu.Lock()
	if port, ok := m.macToLoc[mac][loc.DPID]; ok && port == loc.Port {
		m.mu.Unlock()
		return
	}
	if m.macToLoc[mac] == nil {
		m.macToLoc[mac] = make(map[uint64]uint32)
	}
	m.macToLoc[mac][loc.DPID] = loc.Port
	m.bump(true)
	fn := m.onChange
	m.mu.Unlock()
	m.auditf("bind", "mac-location %s@%#x:%d", mac, loc.DPID, loc.Port)
	notify(fn, Change{Kind: ChangeMACLocation, Bind: true, HasMAC: true, MAC: mac, DPID: loc.DPID})
}

// UnbindMACLocation removes a MAC's attachment on one switch.
func (m *Manager) UnbindMACLocation(mac netpkt.MAC, dpid uint64) {
	m.mu.Lock()
	changed := false
	if ports, ok := m.macToLoc[mac]; ok {
		if _, had := ports[dpid]; had {
			delete(ports, dpid)
			if len(ports) == 0 {
				delete(m.macToLoc, mac)
			}
			m.bump(true)
			changed = true
		}
	}
	fn := m.onChange
	m.mu.Unlock()
	if changed {
		m.auditf("unbind", "mac-location %s@%#x", mac, dpid)
		notify(fn, Change{Kind: ChangeMACLocation, HasMAC: true, MAC: mac, DPID: dpid})
	}
}

// auditf appends one kind="binding" record for an effective mutation; a
// no-op without WithAuditLog. Always called after the write lock is
// released, so audit-log I/O never stalls admission-time resolutions
// waiting on the read lock.
func (m *Manager) auditf(op, format string, args ...any) {
	if m.audit == nil {
		return
	}
	m.audit.Append(obs.AuditRecord{
		Kind:        "binding",
		Op:          op,
		EntityEpoch: m.Epoch(),
		Detail:      fmt.Sprintf(format, args...),
	})
}

// Observed is the set of low-level identifiers harvested from one end of a
// packet, as supplied by the PCP from a packet-in.
type Observed struct {
	MAC   netpkt.MAC
	HasIP bool
	IP    netpkt.IPv4
	// HasLoc is set for the source endpoint (the packet's ingress).
	HasLoc bool
	Loc    Location
}

// Resolution is the enriched identity for one endpoint.
type Resolution struct {
	Host  string
	Users []string
}

// Resolve maps the observed low-level identifiers of one endpoint up to its
// hostname and logged-on users, verifying that identifiers at all levels
// match the expected bindings; inconsistent identifiers return
// ErrInconsistent (spoof prevention, paper §III-B). Resolution happens at
// access-control decision time, never at policy-insert time, so bindings
// are always current.
func (m *Manager) Resolve(o Observed) (Resolution, error) {
	store.Charge(m.clock, m.latency)
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.resolveLocked(o)
}

// ResolveBoth resolves the two endpoints of one flow in a single query
// round trip (one latency charge), as the PCP's per-flow binding query
// (paper Table II).
func (m *Manager) ResolveBoth(src, dst Observed) (Resolution, Resolution, error) {
	store.Charge(m.clock, m.latency)
	m.mu.RLock()
	defer m.mu.RUnlock()
	srcRes, err := m.resolveLocked(src)
	if err != nil {
		return srcRes, Resolution{}, err
	}
	dstRes, err := m.resolveLocked(dst)
	return srcRes, dstRes, err
}

func (m *Manager) resolveLocked(o Observed) (Resolution, error) {
	var res Resolution
	if o.HasIP && !o.IP.IsZero() {
		if boundMAC, ok := m.ipToMAC[o.IP]; ok && boundMAC != o.MAC {
			m.spoofRejections.Inc()
			return res, fmt.Errorf("%w: IP %s bound to MAC %s, packet uses %s",
				ErrInconsistent, o.IP, boundMAC, o.MAC)
		}
		res.Host = m.ipToHost[o.IP]
	}
	if o.HasLoc {
		if ports, ok := m.macToLoc[o.MAC]; ok {
			if port, ok := ports[o.Loc.DPID]; ok && port != o.Loc.Port {
				m.spoofRejections.Inc()
				return res, fmt.Errorf("%w: MAC %s expected on port %d of switch %#x, seen on %d",
					ErrInconsistent, o.MAC, port, o.Loc.DPID, o.Loc.Port)
			}
		}
	}
	if res.Host != "" {
		for u := range m.hostToUsers[res.Host] {
			res.Users = append(res.Users, u)
		}
		sort.Strings(res.Users)
	}
	return res, nil
}

// bindingCount totals the stored binding edges: user↔host pairs, IP→host
// DNS entries, IP→MAC leases, and MAC→(switch,port) attachments.
func (m *Manager) bindingCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.ipToHost) + len(m.ipToMAC)
	for _, hosts := range m.userToHosts {
		n += len(hosts)
	}
	for _, ports := range m.macToLoc {
		n += len(ports)
	}
	return n
}

// UsersOn returns the users currently bound to host.
func (m *Manager) UsersOn(host string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	users := make([]string, 0, len(m.hostToUsers[host]))
	for u := range m.hostToUsers[host] {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// HostsOf returns the hosts user is currently logged onto.
func (m *Manager) HostsOf(user string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hosts := make([]string, 0, len(m.userToHosts[user]))
	for h := range m.userToHosts[user] {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// IPsOf returns the IPs currently bound to host.
func (m *Manager) IPsOf(host string) []netpkt.IPv4 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ips := make([]netpkt.IPv4, 0, len(m.hostToIPs[host]))
	for ip := range m.hostToIPs[host] {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i].Uint32() < ips[j].Uint32() })
	return ips
}

// HostOf returns the hostname bound to ip, if any.
func (m *Manager) HostOf(ip netpkt.IPv4) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.ipToHost[ip]
	return h, ok
}

// MACOf returns the MAC bound to ip, if any.
func (m *Manager) MACOf(ip netpkt.IPv4) (netpkt.MAC, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	mac, ok := m.ipToMAC[ip]
	return mac, ok
}

// LocationOf returns mac's attachment port on switch dpid, if known.
func (m *Manager) LocationOf(mac netpkt.MAC, dpid uint64) (uint32, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	port, ok := m.macToLoc[mac][dpid]
	return port, ok
}

// LocationsOf returns every switch attachment currently known for mac,
// ordered by (DPID, Port).
func (m *Manager) LocationsOf(mac netpkt.MAC) []Location {
	m.mu.RLock()
	defer m.mu.RUnlock()
	locs := make([]Location, 0, len(m.macToLoc[mac]))
	for dpid, port := range m.macToLoc[mac] {
		locs = append(locs, Location{DPID: dpid, Port: port})
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].DPID != locs[j].DPID {
			return locs[i].DPID < locs[j].DPID
		}
		return locs[i].Port < locs[j].Port
	})
	return locs
}

// IPsOfMAC returns the IPs whose current lease points at mac, sorted. The
// ip→MAC map has no reverse index (leases are queried by IP on the hot
// path), so this scans; callers are control-plane binding-change hooks.
func (m *Manager) IPsOfMAC(mac netpkt.MAC) []netpkt.IPv4 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var ips []netpkt.IPv4
	for ip, have := range m.ipToMAC {
		if have == mac {
			ips = append(ips, ip)
		}
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i].Uint32() < ips[j].Uint32() })
	return ips
}

func addTo(m map[string]map[string]struct{}, k, v string) bool {
	if m[k] == nil {
		m[k] = make(map[string]struct{})
	}
	if _, had := m[k][v]; had {
		return false
	}
	m[k][v] = struct{}{}
	return true
}

func removeFrom(m map[string]map[string]struct{}, k, v string) bool {
	set, ok := m[k]
	if !ok {
		return false
	}
	if _, had := set[v]; !had {
		return false
	}
	delete(set, v)
	if len(set) == 0 {
		delete(m, k)
	}
	return true
}

func addToKey(m map[string]map[netpkt.IPv4]struct{}, k string, ip netpkt.IPv4) {
	if m[k] == nil {
		m[k] = make(map[netpkt.IPv4]struct{})
	}
	m[k][ip] = struct{}{}
}

func removeFromKey(m map[string]map[netpkt.IPv4]struct{}, k string, ip netpkt.IPv4) bool {
	set, ok := m[k]
	if !ok {
		return false
	}
	if _, had := set[ip]; !had {
		return false
	}
	delete(set, ip)
	if len(set) == 0 {
		delete(m, k)
	}
	return true
}

func removeIPFrom(m map[netpkt.MAC]map[netpkt.IPv4]struct{}, mac netpkt.MAC, ip netpkt.IPv4) bool {
	set, ok := m[mac]
	if !ok {
		return false
	}
	if _, had := set[ip]; !had {
		return false
	}
	delete(set, ip)
	if len(set) == 0 {
		delete(m, mac)
	}
	return true
}
