// Package proxy implements the DFI Proxy (paper §III-B, §IV-B): a
// transparent interposition layer between each OpenFlow switch and the SDN
// controller. It reserves flow table 0 of every switch for DFI's access
// control rules by shifting all table references by one as messages cross
// it, and it routes packet-ins to the Policy Compilation Point before the
// controller — denied packets never reach the controller at all, so a
// malicious or faulty controller (or its applications) cannot bypass or
// poison DFI's access control.
//
// The proxy keeps only per-connection state, is restartable, and any number
// of proxies may run in parallel.
package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/proxy/evloop"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// Config parameterizes a Proxy.
type Config struct {
	// PCP receives new-flow requests before the controller sees them.
	PCP *pcp.PCP
	// DialController opens a fresh connection to the controller for each
	// switch connection (the proxy is one-connection-per-switch on both
	// sides, like the paper's implementation).
	DialController func() (io.ReadWriteCloser, error)
	// Clock and Latency simulate the proxy's forwarding overhead (paper
	// Table II "Proxy": 0.16 ms); zero by default.
	Clock   simclock.Clock
	Latency store.LatencyModel
	// Obs receives the proxy's instruments. Nil selects the PCP's registry,
	// so a directly-constructed proxy exposes its counters alongside the
	// PCP's in one place.
	Obs *obs.Registry
	// FlowStatsTimeout bounds how long a DFI-originated flow-stats read
	// (switchWriter.ReadFlows) waits for the switch's multipart reply
	// before giving up (default 10s).
	FlowStatsTimeout time.Duration
	// EventLoopWorkers > 0 relays connections on a pool of that many
	// event-loop workers instead of two blocking goroutines per switch
	// (ROADMAP item 3). Zero keeps the goroutine-per-connection relay.
	EventLoopWorkers int
}

// DefaultEventLoopWorkers is the event-loop pool size selected when the
// relay is enabled without an explicit worker count.
const DefaultEventLoopWorkers = evloop.DefaultWorkers

// Stats is a point-in-time snapshot of the proxy's counters, assembled from
// the obs registry (the registry is the source of truth; this struct is a
// convenience view for harness code and /v1/stats).
type Stats struct {
	PacketIns       uint64
	Denied          uint64
	DroppedOverload uint64
	Forwarded       uint64
}

// Proxy interposes between switches and the controller.
type Proxy struct {
	cfg      Config
	overhead *obs.Histogram
	engine   *evloop.Engine // nil unless EventLoopWorkers > 0

	packetIns *obs.Counter
	denied    *obs.Counter
	dropped   *obs.Counter
	forwarded *obs.Counter
	conns     *obs.Gauge

	relayErrSwitch     *obs.Counter
	relayErrController *obs.Counter
}

// New returns a Proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.PCP == nil {
		return nil, errors.New("proxy: nil PCP")
	}
	if cfg.DialController == nil {
		return nil, errors.New("proxy: nil DialController")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.FlowStatsTimeout <= 0 {
		cfg.FlowStatsTimeout = 10 * time.Second
	}
	reg := cfg.Obs
	if reg == nil {
		reg = cfg.PCP.Registry()
	}
	relayErrs := reg.CounterVec("dfi_proxy_relay_errors_total",
		"Relay legs that ended with a real failure (orderly closes excluded), by side.",
		"side")
	p := &Proxy{
		cfg: cfg,
		packetIns: reg.Counter("dfi_proxy_packet_ins_total",
			"Packet-ins intercepted from switches."),
		denied: reg.Counter("dfi_proxy_denied_total",
			"Packet-ins denied by the PCP and withheld from the controller."),
		dropped: reg.Counter("dfi_proxy_overload_drops_total",
			"Packet-ins dropped before a decision (PCP queue full or unidentified switch)."),
		forwarded: reg.Counter("dfi_proxy_forwarded_total",
			"Packet-ins forwarded to the controller."),
		overhead: reg.Histogram("dfi_proxy_forward_seconds",
			"Proxy-side forwarding overhead per admission-checked packet-in (paper Table II \"Proxy\").", nil),
		conns: reg.Gauge("dfi_proxy_connections",
			"Switch connections currently relayed by the proxy."),
		relayErrSwitch:     relayErrs.With("switch"),
		relayErrController: relayErrs.With("controller"),
	}
	if cfg.EventLoopWorkers > 0 {
		p.engine = evloop.New(evloop.Config{Workers: cfg.EventLoopWorkers, Obs: reg})
	}
	return p, nil
}

// Close releases the proxy's event-loop engine (if any), tearing down
// every relayed connection. A proxy without an engine has nothing to
// release.
func (p *Proxy) Close() {
	if p.engine != nil {
		p.engine.Close()
	}
}

// orderlyClose reports whether a relay leg's terminal error is an orderly
// shutdown rather than a real failure: EOF from the peer, our own side
// closing the stream (pipe or net.Conn), or the pre-Go-1.16 textual form
// of net.ErrClosed that some wrapped streams still surface.
func orderlyClose(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	return strings.Contains(err.Error(), "use of closed network connection")
}

// Stats returns a snapshot of aggregate statistics.
func (p *Proxy) Stats() Stats {
	return Stats{
		PacketIns:       p.packetIns.Value(),
		Denied:          p.denied.Value(),
		DroppedOverload: p.dropped.Value(),
		Forwarded:       p.forwarded.Value(),
	}
}

// Overhead returns the proxy's measured per-packet-in forwarding cost.
func (p *Proxy) Overhead() *obs.Histogram { return p.overhead }

// switchWriter adapts the switch-side connection as the PCP's write and
// read paths.
type switchWriter struct {
	sess *session
}

var (
	_ pcp.SwitchClient = (*switchWriter)(nil)
	_ pcp.FlowReader   = (*switchWriter)(nil)
)

func (w *switchWriter) WriteFlowMod(fm *openflow.FlowMod) error {
	_, err := w.sess.sw.Send(fm)
	return err
}

// WriteFlowMods implements pcp.FlowModBatcher: every flow mod is encoded
// into the switch connection's coalescing buffer and the batch reaches the
// stream in one write, instead of one syscall per message.
func (w *switchWriter) WriteFlowMods(fms []*openflow.FlowMod) error {
	var firstErr error
	for _, fm := range fms {
		if _, err := w.sess.sw.Queue(fm); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := w.sess.sw.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// statsTimerPool recycles ReadFlows timeout timers, replacing the per-call
// time.After allocation (whose timer lingers until it fires even after the
// reply arrives). Timers are returned stopped and drained.
var statsTimerPool = sync.Pool{
	New: func() any {
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		return t
	},
}

// ReadFlows issues a DFI-originated flow-stats request to the switch and
// waits for the reply, which the relay routes back here instead of to the
// controller. The wait is bounded by Config.FlowStatsTimeout.
func (w *switchWriter) ReadFlows(req *openflow.FlowStatsRequest) ([]*openflow.FlowStatsEntry, error) {
	xid, ch := w.sess.registerPending()
	defer w.sess.unregisterPending(xid)
	err := w.sess.sw.SendXID(xid, &openflow.MultipartRequest{
		PartType: openflow.MultipartFlow,
		Flow:     req,
	})
	if err != nil {
		return nil, err
	}
	t := statsTimerPool.Get().(*time.Timer)
	t.Reset(w.sess.proxy.cfg.FlowStatsTimeout)
	defer func() {
		if !t.Stop() {
			select { // drain a fired timer before pooling it
			case <-t.C:
			default:
			}
		}
		statsTimerPool.Put(t)
	}()
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, errSessionClosed
		}
		return rep.Flows, nil
	case <-t.C:
		return nil, errStatsTimeout
	}
}

var (
	errSessionClosed = errors.New("proxy: session closed")
	errStatsTimeout  = errors.New("proxy: flow-stats timeout")
)

// ServeSwitch handles one switch connection: it dials the controller,
// relays messages in both directions applying DFI's rewrites, and blocks
// until either side closes. With the event-loop engine enabled it is a
// thin registration shim over HandleSwitch — the calling goroutine parks
// on a channel instead of running a relay loop.
func (p *Proxy) ServeSwitch(swStream io.ReadWriteCloser) error {
	if p.engine == nil {
		return p.serveSwitchBlocking(swStream)
	}
	done := make(chan error, 1)
	if err := p.handleSwitchEvloop(swStream, func(err error) { done <- err }); err != nil {
		return err
	}
	return <-done
}

// HandleSwitch serves one switch connection without blocking the caller:
// it returns once the connection is registered (or the controller dial
// fails) and invokes done exactly once when the session ends (nil for an
// orderly close). In event-loop mode the connection's lifetime holds no
// goroutines; in goroutine mode it holds the two relay legs.
func (p *Proxy) HandleSwitch(swStream io.ReadWriteCloser, done func(error)) error {
	if done == nil {
		done = func(error) {}
	}
	if p.engine != nil {
		return p.handleSwitchEvloop(swStream, done)
	}
	go func() { done(p.serveSwitchBlocking(swStream)) }()
	return nil
}

// relayResult tags a relay leg's terminal error with its side for the
// failure counter.
type relayResult struct {
	side *obs.Counter
	err  error
}

// serveSwitchBlocking is the goroutine-per-connection relay: two blocking
// loops, one per direction, torn down together when either ends.
func (p *Proxy) serveSwitchBlocking(swStream io.ReadWriteCloser) error {
	ctlStream, err := p.cfg.DialController()
	if err != nil {
		swStream.Close()
		return fmt.Errorf("proxy: dial controller: %w", err)
	}
	sw := openflow.NewConn(swStream)
	ctl := openflow.NewConn(ctlStream)

	sess := &session{
		proxy: p,
		sw:    sw,
		ctl:   ctl,
	}
	p.conns.Inc()
	defer func() {
		swStream.Close()
		ctlStream.Close()
		if dpid, ok := sess.dpid.Load().(uint64); ok {
			p.cfg.PCP.DetachSwitch(dpid)
		}
		sess.wg.Wait()
		p.conns.Dec()
	}()

	errc := make(chan relayResult, 2)
	var relayWG sync.WaitGroup
	relayWG.Add(2)
	go func() {
		defer relayWG.Done()
		errc <- relayResult{p.relayErrSwitch, sess.relaySwitchToController()}
	}()
	go func() {
		defer relayWG.Done()
		errc <- relayResult{p.relayErrController, sess.relayControllerToSwitch()}
	}()
	first := <-errc
	// Unblock the other relay.
	swStream.Close()
	ctlStream.Close()
	relayWG.Wait()
	second := <-errc
	for _, r := range [2]relayResult{first, second} {
		if !orderlyClose(r.err) {
			r.side.Inc()
		}
	}
	if orderlyClose(first.err) {
		return nil
	}
	return first.err
}

// session is the per-switch-connection relay state.
type session struct {
	proxy *Proxy
	sw    *openflow.Conn
	ctl   *openflow.Conn
	dpid  atomic.Value // uint64, set from the features reply
	wg    sync.WaitGroup

	// pending maps DFI-originated multipart xids to reply channels. DFI
	// xids carry the top bit to stay clear of controller transaction ids.
	pendingMu sync.Mutex
	pending   map[uint32]chan *openflow.MultipartReply
	nextXID   uint32
}

func (s *session) registerPending() (uint32, chan *openflow.MultipartReply) {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	if s.pending == nil {
		s.pending = make(map[uint32]chan *openflow.MultipartReply)
	}
	s.nextXID++
	xid := 0x80000000 | s.nextXID
	ch := make(chan *openflow.MultipartReply, 1)
	s.pending[xid] = ch
	return xid, ch
}

func (s *session) unregisterPending(xid uint32) {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	delete(s.pending, xid)
}

// takePending routes a reply to a waiting DFI read, reporting whether it
// was consumed.
func (s *session) takePending(xid uint32, rep *openflow.MultipartReply) bool {
	s.pendingMu.Lock()
	ch, ok := s.pending[xid]
	if ok {
		delete(s.pending, xid)
	}
	s.pendingMu.Unlock()
	if !ok {
		return false
	}
	ch <- rep
	return true
}

// The relay loops operate on raw frames: the hot message types are
// rewritten in place and forwarded without a decode/encode round trip, and
// forwards coalesce in the peer connection's write buffer, flushed when
// this side's input runs dry (no already-buffered bytes left, i.e. the
// next read would block). A burst of N messages thus crosses the proxy in
// one write instead of N.

func (s *session) relaySwitchToController() error {
	var f openflow.Frame
	for {
		if err := s.sw.RecvFrame(&f); err != nil {
			return err
		}
		if err := s.handleFrameFromSwitch(&f); err != nil {
			return err
		}
		if s.sw.InputBuffered() == 0 {
			if err := s.ctl.Flush(); err != nil {
				return err
			}
		}
	}
}

// handleFrameFromSwitch applies the switch→controller rewrites on the raw
// frame when possible, falling back to the decoded handler for message
// types that need structural interpretation (features, multipart) or a
// policy decision (table-0 packet-ins).
//
//dfi:hotpath
func (s *session) handleFrameFromSwitch(f *openflow.Frame) error {
	p := s.proxy
	switch f.Type() {
	case openflow.TypePacketIn:
		if tid, ok := f.PacketInTableID(); ok && tid > 0 {
			// A miss in table 1+ was already admitted by DFI's table-0
			// rules: shift the table id in place and forward the bytes
			// without decoding.
			p.packetIns.Inc()
			f.ShiftPacketInTable(-1)
			if err := s.ctl.QueueFrame(f); err != nil {
				return err
			}
			p.forwarded.Inc()
			return nil
		}
		// Table-0 packet-ins carry a new flow: decode and run admission.

	case openflow.TypeFlowRemoved:
		if tid, ok := f.FlowRemovedTableID(); ok {
			if tid == 0 {
				return nil // DFI's own rule: consumed, never shown
			}
			f.ShiftFlowRemovedTable(-1)
			return s.ctl.QueueFrame(f)
		}

	case openflow.TypeFeaturesReply, openflow.TypeMultipartReply:
		// Table hiding, reply filtering and DFI-read routing need the
		// decoded form.

	default:
		// Transparent passthrough, byte for byte.
		return s.ctl.QueueFrame(f)
	}
	xid, msg, err := f.Decode()
	if err != nil {
		return err
	}
	return s.handleFromSwitch(xid, msg)
}

func (s *session) handleFromSwitch(xid uint32, msg openflow.Message) error {
	p := s.proxy
	switch m := msg.(type) {
	case *openflow.FeaturesReply:
		// Learn the datapath id and register the DFI write path for it.
		s.dpid.Store(m.DatapathID)
		p.cfg.PCP.AttachSwitch(m.DatapathID, &switchWriter{sess: s})
		// Hide table 0 from the controller.
		out := *m
		if out.NumTables > 1 {
			out.NumTables--
		}
		return s.ctl.SendXID(xid, &out)

	case *openflow.PacketIn:
		return s.handlePacketIn(xid, m)

	case *openflow.FlowRemoved:
		if m.TableID == 0 {
			// DFI's own rules: consumed, never shown to the controller.
			return nil
		}
		out := *m
		out.TableID--
		return s.ctl.SendXID(xid, &out)

	case *openflow.MultipartReply:
		if s.takePending(xid, m) {
			return nil // a DFI-originated read, not the controller's
		}
		if m.PartType == openflow.MultipartTable {
			// Hide table 0's row and renumber the rest for the
			// controller's table space.
			out := &openflow.MultipartReply{PartType: m.PartType, Flags: m.Flags}
			for _, ts := range m.Tables {
				if ts.TableID == 0 {
					continue
				}
				cp := *ts
				cp.TableID--
				out.Tables = append(out.Tables, &cp)
			}
			return s.ctl.SendXID(xid, out)
		}
		if m.PartType != openflow.MultipartFlow {
			return s.ctl.SendXID(xid, m)
		}
		out := &openflow.MultipartReply{PartType: m.PartType, Flags: m.Flags}
		for _, fs := range m.Flows {
			if fs.TableID == 0 {
				continue // DFI's rules are invisible to the controller
			}
			cp := *fs
			cp.TableID--
			cp.Instructions = shiftInstructions(cp.Instructions, -1)
			out.Flows = append(out.Flows, &cp)
		}
		return s.ctl.SendXID(xid, out)

	default:
		return s.ctl.SendXID(xid, msg)
	}
}

func (s *session) handlePacketIn(xid uint32, pi *openflow.PacketIn) error {
	p := s.proxy
	p.packetIns.Inc()

	// A miss in table 1 or higher can only be reached through DFI's
	// table-0 rules (goto-table): the flow was already admitted. Those
	// packet-ins belong to the controller's forwarding logic; relay them
	// with the table id shifted, without re-evaluating policy.
	if pi.TableID > 0 {
		out := *pi
		out.TableID--
		if err := s.ctl.SendXID(xid, &out); err != nil {
			return err
		}
		p.forwarded.Inc()
		return nil
	}

	t0 := p.cfg.Clock.Now()
	store.Charge(p.cfg.Clock, p.cfg.Latency)

	dpid, ok := s.dpid.Load().(uint64)
	if !ok {
		// Packet-in before the features exchange: indistinguishable
		// switches cannot be policy-checked; drop.
		p.dropped.Inc()
		return nil
	}

	req := &pcp.Request{
		DPID:     dpid,
		PacketIn: pi,
		Done: func(dec pcp.Decision) {
			defer s.wg.Done()
			if !dec.Allow {
				// Denied (or unevaluable) packets never reach the
				// controller, so it cannot be poisoned by them.
				p.denied.Inc()
				return
			}
			out := *pi
			if out.TableID > 0 {
				out.TableID--
			}
			if err := s.ctl.SendXID(xid, &out); err == nil {
				p.forwarded.Inc()
			}
		},
	}
	s.wg.Add(1)
	req.ProxyOverhead = p.cfg.Clock.Now().Sub(t0)
	if !p.cfg.PCP.Submit(req) {
		s.wg.Done()
		p.dropped.Inc()
	}
	p.overhead.Add(p.cfg.Clock.Now().Sub(t0))
	return nil
}

func (s *session) relayControllerToSwitch() error {
	var f openflow.Frame
	for {
		if err := s.ctl.RecvFrame(&f); err != nil {
			return err
		}
		if err := s.handleFrameFromController(&f); err != nil {
			return err
		}
		if s.ctl.InputBuffered() == 0 {
			if err := s.sw.Flush(); err != nil {
				return err
			}
		}
	}
}

// handleFrameFromController applies the controller→switch table-space
// rewrites in place on the raw frame when possible; flow-stats requests
// (and frames the in-place rewriter rejects as malformed) take the decoded
// path.
//
//dfi:hotpath
func (s *session) handleFrameFromController(f *openflow.Frame) error {
	switch f.Type() {
	case openflow.TypeFlowMod:
		if f.ShiftFlowModTables(+1) {
			return s.sw.QueueFrame(f)
		}
	case openflow.TypeTableMod:
		if f.ShiftTableModTable(+1) {
			return s.sw.QueueFrame(f)
		}
	case openflow.TypeMultipartReq:
		// Flow/aggregate stats requests rewrite an inner table id the
		// frame walker does not model.
	default:
		return s.sw.QueueFrame(f)
	}
	xid, msg, err := f.Decode()
	if err != nil {
		return err
	}
	return s.handleFromController(xid, msg)
}

func (s *session) handleFromController(xid uint32, msg openflow.Message) error {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		out := *m
		if out.TableID != openflow.AllTables {
			out.TableID++
		}
		out.Instructions = shiftInstructions(out.Instructions, +1)
		return s.sw.SendXID(xid, &out)

	case *openflow.MultipartRequest:
		if (m.PartType != openflow.MultipartFlow && m.PartType != openflow.MultipartAggregate) || m.Flow == nil {
			return s.sw.SendXID(xid, m)
		}
		out := *m
		flow := *m.Flow
		if flow.TableID != openflow.AllTables {
			flow.TableID++
		} else {
			// ALL from the controller means "all controller tables":
			// tables 1 and up. The switch cannot express that in one
			// request, so ask for ALL and rely on the reply filter to
			// hide table 0.
		}
		out.Flow = &flow
		return s.sw.SendXID(xid, &out)

	case *openflow.TableMod:
		out := *m
		if out.TableID != openflow.AllTables {
			out.TableID++
		}
		return s.sw.SendXID(xid, &out)

	default:
		return s.sw.SendXID(xid, msg)
	}
}

// shiftInstructions returns a copy of instrs with goto-table targets
// shifted by delta; other instructions are shared as-is.
func shiftInstructions(instrs []openflow.Instruction, delta int) []openflow.Instruction {
	if len(instrs) == 0 {
		return instrs
	}
	out := make([]openflow.Instruction, len(instrs))
	for i, in := range instrs {
		if gt, ok := in.(*openflow.InstructionGotoTable); ok {
			shifted := int(gt.TableID) + delta
			if shifted < 0 {
				shifted = 0
			}
			out[i] = &openflow.InstructionGotoTable{TableID: uint8(shifted)}
		} else {
			out[i] = in
		}
	}
	return out
}
