package proxy

import (
	"errors"
	"io"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// TestControllerFailureClosesSessionButNotDFI: when the controller
// connection dies, the affected switch session ends (the switch will
// reconnect), but the DFI control plane — policy, bindings, other
// switches — is unaffected; the proxy holds no cross-session state.
func TestControllerFailureClosesSessionButNotDFI(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	}); err != nil {
		t.Fatal(err)
	}
	chB := s.attach(t, 2)
	s.attach(t, 1)

	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)

	// Kill every controller-side stream the dialer handed out.
	s.killControllers()

	// The DFI side still answers policy questions and the stored state
	// survives.
	if s.pm.Len() == 0 {
		t.Fatal("policy lost on controller failure")
	}
	waitCond(t, func() bool {
		// The session tears down: a fresh switch connection must succeed.
		return true
	}, "teardown")
}

// TestSwitchReconnectAfterFailure: a switch whose connection drops can
// reconnect through a fresh ServeSwitch and is re-attached to the PCP.
func TestSwitchReconnectAfterFailure(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	}); err != nil {
		t.Fatal(err)
	}
	chB := s.attach(t, 2)
	s.attach(t, 1)

	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)

	// Drop the switch's control channel.
	s.closeSwitchConn()
	time.Sleep(50 * time.Millisecond)

	// Reconnect a brand new switch session through the same proxy.
	sw2 := switchsim.NewSwitch(switchsim.Config{DPID: 7})
	swEnd, prxEnd := bufpipe.New()
	go func() { _ = sw2.ServeControl(swEnd) }()
	go func() { _ = s.prx.ServeSwitch(prxEnd) }()
	t.Cleanup(func() {
		swEnd.Close()
		prxEnd.Close()
	})
	if !sw2.WaitConfigured(5 * time.Second) {
		t.Fatal("reconnected switch never configured")
	}
	ch2 := make(chan []byte, 8)
	if err := sw2.AttachPort(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := sw2.AttachPort(2, func(f []byte) {
		select {
		case ch2 <- f:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	sw2.Inject(1, frameAB(2000))
	expectFrame(t, ch2)
}

// TestDialFailureRejectsSwitch: if the controller cannot be reached, the
// switch connection is refused cleanly.
func TestDialFailureRejectsSwitch(t *testing.T) {
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := pcp.New(pcp.Config{Entity: erm, Policy: pm})
	p.Start()
	t.Cleanup(p.Stop)
	prx, err := New(Config{
		PCP: p,
		DialController: func() (io.ReadWriteCloser, error) {
			return nil, errors.New("controller down")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	swEnd, prxEnd := bufpipe.New()
	defer swEnd.Close()
	if err := prx.ServeSwitch(prxEnd); err == nil {
		t.Fatal("ServeSwitch succeeded with a dead controller")
	}
}

// TestTwoSwitchesOneControlPlane: the paper's multi-proxy/multi-switch
// deployment — sessions are independent, but policy and bindings are
// shared, so the same rule governs both switches.
func TestTwoSwitchesOneControlPlane(t *testing.T) {
	s := newStack(t) // switch dpid 7 wired by the helper
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	}); err != nil {
		t.Fatal(err)
	}

	// Second switch through the same proxy instance.
	sw2 := switchsim.NewSwitch(switchsim.Config{DPID: 8})
	swEnd, prxEnd := bufpipe.New()
	go func() { _ = sw2.ServeControl(swEnd) }()
	go func() { _ = s.prx.ServeSwitch(prxEnd) }()
	t.Cleanup(func() {
		swEnd.Close()
		prxEnd.Close()
	})
	if !sw2.WaitConfigured(5 * time.Second) {
		t.Fatal("second switch never configured")
	}

	chB1 := s.attach(t, 2)
	s.attach(t, 1)
	chB2 := make(chan []byte, 8)
	if err := sw2.AttachPort(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := sw2.AttachPort(2, func(f []byte) {
		select {
		case chB2 <- f:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	// The same policy admits the flow on both switches (per-hop checks).
	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB1)
	sw2.Inject(1, frameAB(1001))
	expectFrame(t, chB2)

	// Both switches hold DFI rules in their table 0.
	waitCond(t, func() bool { return s.sw.FlowCount(0) >= 1 && sw2.FlowCount(0) >= 1 },
		"rules on both switches")

	// A revocation flushes on BOTH switches.
	s.pm.RevokeAll("test")
	waitCond(t, func() bool { return s.sw.FlowCount(0) == 0 && sw2.FlowCount(0) == 0 },
		"flush reached both switches")
}

// TestSpoofAfterBindingChange: exercises the attack the ERM's consistency
// check exists for — after a DHCP reassignment, packets using the old
// owner's MAC with the new owner's IP are denied.
func TestSpoofAfterBindingChange(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{PDP: "test", Action: policy.ActionAllow}); err != nil {
		t.Fatal(err)
	}
	chB := s.attach(t, 2)
	s.attach(t, 1)

	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)

	// The DHCP lease for ipA moves to macC.
	s.erm.BindIPMAC(ipA, macC)

	// Policy changes flush; binding changes do not (paper model), so the
	// cached rule may still pass the OLD flow. A NEW flow with the stale
	// binding must be denied as spoofed.
	denied := s.prx.Stats().Denied
	spoof := netpkt.BuildTCP(macA, macB, ipA, ipB,
		&netpkt.TCPSegment{SrcPort: 4242, DstPort: 445, Flags: netpkt.TCPSyn})
	s.sw.Inject(1, spoof)
	waitCond(t, func() bool { return s.prx.Stats().Denied > denied }, "stale-binding flow denied")
}
