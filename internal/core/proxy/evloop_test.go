package proxy

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// tcpPair returns two connected TCP endpoints on the loopback interface,
// so event-loop tests exercise real fd-backed poller endpoints.
func tcpPair(t testing.TB) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	dialed, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		dialed.Close()
		t.Fatal(a.err)
	}
	t.Cleanup(func() {
		dialed.Close()
		a.c.Close()
	})
	return dialed, a.c
}

// drainUntilIdle reads from r until no bytes arrive for the idle window,
// returning everything collected. The reader goroutine unblocks when the
// stream closes at test cleanup.
func drainUntilIdle(r io.Reader, idle time.Duration) []byte {
	chunks := make(chan []byte)
	go func() {
		defer close(chunks)
		for {
			buf := make([]byte, 32<<10)
			n, err := r.Read(buf)
			if n > 0 {
				chunks <- buf[:n]
			}
			if err != nil {
				return
			}
		}
	}()
	var out []byte
	timer := time.NewTimer(idle)
	defer timer.Stop()
	for {
		select {
		case c, ok := <-chunks:
			if !ok {
				return out
			}
			out = append(out, c...)
			timer.Reset(idle)
		case <-timer.C:
			return out
		}
	}
}

// parityCorpusFromSwitch builds the switch→controller wire stream: every
// rewrite class except table-0 packet-ins (whose admission outcome depends
// on async PCP scheduling, not relay mechanics).
func parityCorpusFromSwitch(t *testing.T) []byte {
	t.Helper()
	msgs := []struct {
		xid uint32
		m   openflow.Message
	}{
		{1, &openflow.Hello{}},
		{2, &openflow.FeaturesReply{DatapathID: 0x77, NumTables: 8, NumBuffers: 256}},
		{3, &openflow.EchoRequest{Data: []byte("ping")}},
		{4, &openflow.PacketIn{
			BufferID: openflow.NoBuffer,
			Reason:   openflow.PacketInReasonNoMatch,
			TableID:  2,
			Match:    &openflow.Match{InPort: openflow.U32(1)},
			Data:     bytes.Repeat([]byte{0xaa}, 120),
		}},
		{5, &openflow.FlowRemoved{Cookie: 1, TableID: 0, Match: &openflow.Match{}}},
		{6, &openflow.FlowRemoved{Cookie: 2, TableID: 3, Match: &openflow.Match{}}},
		{7, &openflow.EchoReply{}},
	}
	var out []byte
	for _, e := range msgs {
		b, err := openflow.Encode(e.xid, e.m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return out
}

// parityCorpusFromController builds the controller→switch wire stream.
func parityCorpusFromController(t *testing.T) []byte {
	t.Helper()
	msgs := []struct {
		xid uint32
		m   openflow.Message
	}{
		{11, &openflow.Hello{}},
		{12, relayFlowMod()},
		{13, &openflow.TableMod{TableID: 1}},
		{14, &openflow.MultipartRequest{
			PartType: openflow.MultipartFlow,
			Flow:     &openflow.FlowStatsRequest{TableID: 2},
		}},
		{15, &openflow.EchoReply{Data: []byte("pong")}},
	}
	var out []byte
	for _, e := range msgs {
		b, err := openflow.Encode(e.xid, e.m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return out
}

// runRelayCorpus pushes both corpora through one proxied connection in
// the given relay mode and returns the bytes that reached each far end.
func runRelayCorpus(t *testing.T, evloopWorkers int, tcp bool) (ctlOut, swOut []byte) {
	t.Helper()
	p := pcp.New(pcp.Config{Entity: entity.NewManager(), Policy: policy.NewManager()})

	// In goroutine mode HandleSwitch dials asynchronously, so the far end
	// of the controller leg arrives over a channel.
	ctlFarCh := make(chan io.ReadWriteCloser, 1)
	prx, err := New(Config{
		PCP:              p,
		EventLoopWorkers: evloopWorkers,
		DialController: func() (io.ReadWriteCloser, error) {
			var a, b io.ReadWriteCloser
			if tcp {
				a, b = tcpPair(t)
			} else {
				a, b = bufpipe.New()
			}
			ctlFarCh <- b
			return a, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prx.Close)

	var swNear, swFar io.ReadWriteCloser
	if tcp {
		swNear, swFar = tcpPair(t)
	} else {
		swNear, swFar = bufpipe.New()
	}
	done := make(chan error, 1)
	if err := prx.HandleSwitch(swNear, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	var ctlFar io.ReadWriteCloser
	select {
	case ctlFar = <-ctlFarCh:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy never dialed the controller")
	}

	if _, err := swFar.Write(parityCorpusFromSwitch(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctlFar.Write(parityCorpusFromController(t)); err != nil {
		t.Fatal(err)
	}
	ctlOut = drainUntilIdle(ctlFar, 250*time.Millisecond)
	swOut = drainUntilIdle(swFar, 250*time.Millisecond)

	swFar.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("session ended with %v, want orderly close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session done callback never fired")
	}
	return ctlOut, swOut
}

// TestEvloopRelayParity pins the event-loop relay's output to the
// goroutine relay's, byte for byte, in both endpoint modes: fallback
// pumps (bufpipe streams) and — on platforms with a poller — fd-backed
// epoll endpoints (TCP streams).
func TestEvloopRelayParity(t *testing.T) {
	wantCtl, wantSw := runRelayCorpus(t, 0, false)
	if len(wantCtl) == 0 || len(wantSw) == 0 {
		t.Fatal("goroutine relay produced no output; corpus broken")
	}

	for _, tc := range []struct {
		name string
		tcp  bool
	}{
		{"fallback-pumps", false},
		{"poller-tcp", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gotCtl, gotSw := runRelayCorpus(t, 2, tc.tcp)
			if !bytes.Equal(gotCtl, wantCtl) {
				t.Errorf("controller-side bytes diverge:\n evloop %x\n  goroutine %x", gotCtl, wantCtl)
			}
			if !bytes.Equal(gotSw, wantSw) {
				t.Errorf("switch-side bytes diverge:\n evloop %x\n  goroutine %x", gotSw, wantSw)
			}
		})
	}
}

// TestEvloopMalformedFrameFailsConnection: a garbage header from the
// switch must tear the session down with a real (non-orderly) error and
// count it on the switch side of dfi_proxy_relay_errors_total.
func TestEvloopMalformedFrameFailsConnection(t *testing.T) {
	p := pcp.New(pcp.Config{Entity: entity.NewManager(), Policy: policy.NewManager()})
	prx, err := New(Config{
		PCP:              p,
		EventLoopWorkers: 1,
		DialController: func() (io.ReadWriteCloser, error) {
			a, _ := bufpipe.New()
			return a, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prx.Close)

	swNear, swFar := tcpPair(t)
	done := make(chan error, 1)
	if err := prx.HandleSwitch(swNear, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if _, err := swFar.Write([]byte{0x99, 0, 0, 8, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("malformed frame reported as orderly close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session never failed on malformed frame")
	}
	if got := prx.relayErrSwitch.Value(); got != 1 {
		t.Fatalf("dfi_proxy_relay_errors_total{side=switch} = %d, want 1", got)
	}
	if prx.conns.Value() != 0 {
		t.Fatalf("dfi_proxy_connections = %d after teardown, want 0", prx.conns.Value())
	}
}

// TestOrderlyCloseClassification pins the shutdown error classifier: EOF,
// closed pipes and net.ErrClosed (in both value and textual form) are
// orderly; anything else is a real failure.
func TestOrderlyCloseClassification(t *testing.T) {
	for _, err := range []error{
		nil,
		io.EOF,
		io.ErrClosedPipe,
		net.ErrClosed,
		fmt.Errorf("read tcp 127.0.0.1:1->127.0.0.1:2: %w", net.ErrClosed),
		errors.New("accept tcp [::]:6653: use of closed network connection"),
	} {
		if !orderlyClose(err) {
			t.Errorf("orderlyClose(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		errors.New("connection reset by peer"),
		io.ErrUnexpectedEOF,
		errors.New("openflow: bad message length 4"),
	} {
		if orderlyClose(err) {
			t.Errorf("orderlyClose(%v) = true, want false", err)
		}
	}
}

// TestEvloopChurnUnderPolicyMutations is the accept/close churn hammer:
// switch connections flap (TCP switch legs on poller workers, bufpipe
// controller legs on fallback pumps — the mixed-pair teardown path) while
// policy mutations continuously flush rules to whatever switches are
// attached. Run under -race this is the engine's lifecycle soak; the
// structural assertions are that every session's done callback fires, the
// connection gauge returns to zero and the goroutine count returns to
// O(workers), not O(connections served).
func TestEvloopChurnUnderPolicyMutations(t *testing.T) {
	pm := policy.NewManager()
	erm := entity.NewManager()
	p := pcp.New(pcp.Config{Entity: erm, Policy: pm, Workers: 2})
	p.Start()
	t.Cleanup(p.Stop)
	if err := pm.RegisterPDP("churn", 50); err != nil {
		t.Fatal(err)
	}

	ctl := controller.New(controller.Config{})
	prx, err := New(Config{
		PCP:              p,
		EventLoopWorkers: 2,
		DialController: func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			go func() { _ = ctl.Serve(b) }()
			return a, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rounds, flock := 8, 16
	if testing.Short() {
		rounds, flock = 3, 8
	}
	if raceEnabled {
		rounds = 4
	}

	baseline := runtime.NumGoroutine()

	// Policy mutation storm: insert/revoke continuously so cookie-scoped
	// flushes hit attached switches while their connections flap.
	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopMut:
				return
			default:
			}
			id, err := pm.Insert(policy.Rule{PDP: "churn", Action: policy.ActionAllow})
			if err == nil {
				_ = pm.Revoke(id)
			}
		}
	}()

	var sessions sync.WaitGroup
	var served atomic.Int64
	for r := 0; r < rounds; r++ {
		var round sync.WaitGroup
		for i := 0; i < flock; i++ {
			dpid := uint64(r*flock + i + 1)
			swConn, prxConn := tcpPair(t)
			sw := switchsim.NewSwitch(switchsim.Config{DPID: dpid})
			round.Add(1)
			go func() {
				defer round.Done()
				_ = sw.ServeControl(swConn)
			}()
			sessions.Add(1)
			if err := prx.HandleSwitch(prxConn, func(error) {
				served.Add(1)
				sessions.Done()
			}); err != nil {
				t.Error(err)
				sessions.Done()
			}
			go func() {
				// Let the handshake make progress, then flap.
				if !sw.WaitConfigured(2 * time.Second) {
					t.Log("switch", dpid, "never configured before flap")
				}
				swConn.Close()
			}()
		}
		round.Wait()
	}

	waitDone := make(chan struct{})
	go func() {
		sessions.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("only %d sessions completed", served.Load())
	}
	close(stopMut)
	mutWG.Wait()

	if got, want := served.Load(), int64(rounds*flock); got != want {
		t.Fatalf("done callbacks fired %d times, want %d", got, want)
	}
	if prx.conns.Value() != 0 {
		t.Fatalf("dfi_proxy_connections = %d after churn, want 0", prx.conns.Value())
	}

	prx.Close()
	// Goroutine count must return to O(workers + harness), not O(sessions).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+20 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after churn: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEvloopFramePathZeroAlloc gates the event-loop relay's steady-state
// forward path: accumulator feed → in-place rewrite → coalesced queue →
// flush, through the real evSide handlers, must not allocate.
func TestEvloopFramePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	p := pcp.New(pcp.Config{Entity: entity.NewManager(), Policy: policy.NewManager()})
	prx, err := New(Config{PCP: p, DialController: func() (io.ReadWriteCloser, error) {
		a, _ := bufpipe.New()
		return a, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	es := &evSession{p: prx}
	es.sess = &session{
		proxy: prx,
		sw:    openflow.NewWriterConn(nopWriter{}),
		ctl:   openflow.NewWriterConn(nopWriter{}),
	}
	h := &evSide{es: es, fromSwitch: false}
	var acc openflow.Accumulator
	emit := func(f *openflow.Frame) error { return h.OnFrame(f) }

	wire, err := openflow.Encode(9, relayFlowMod())
	if err != nil {
		t.Fatal(err)
	}
	forward := func() {
		if err := acc.Feed(wire, emit); err != nil {
			t.Fatal(err)
		}
		if err := h.OnIdle(); err != nil {
			t.Fatal(err)
		}
	}
	forward() // prime the write buffer
	if allocs := testing.AllocsPerRun(200, forward); allocs != 0 {
		t.Fatalf("evloop frame path allocates %.1f objects/op, want 0", allocs)
	}
}

// nopWriter swallows writes (alloc-gate and parity sink).
type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
