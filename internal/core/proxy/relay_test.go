package proxy

import (
	"io"
	"reflect"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

func relayFlowMod() *openflow.FlowMod {
	return &openflow.FlowMod{
		Cookie:   0xc0de,
		TableID:  0,
		Command:  openflow.FlowModAdd,
		Priority: 300,
		BufferID: openflow.NoBuffer,
		Match:    &openflow.Match{InPort: openflow.U32(4), EthType: openflow.U16(0x0800)},
		Instructions: []openflow.Instruction{
			&openflow.InstructionApplyActions{Actions: []openflow.Action{
				&openflow.ActionOutput{Port: 2, MaxLen: openflow.ControllerMaxLen},
			}},
			&openflow.InstructionGotoTable{TableID: 1},
		},
	}
}

// TestFrameRelayMatchesDecodedRewrite pins the in-place frame rewrite to
// the decoded handler it replaced: a controller flow-mod relayed through
// handleFrameFromController must reach the switch byte-equivalent to one
// relayed through the decode→rewrite→re-encode path.
func TestFrameRelayMatchesDecodedRewrite(t *testing.T) {
	fm := relayFlowMod()

	// Frame path.
	sessA, _, swFarA := newRewriteHarnessBoth(t)
	var f openflow.Frame
	if err := f.AppendMessageTo(11, fm); err != nil {
		t.Fatal(err)
	}
	if err := sessA.handleFrameFromController(&f); err != nil {
		t.Fatal(err)
	}
	if err := sessA.sw.Flush(); err != nil {
		t.Fatal(err)
	}
	xidA, gotA, err := swFarA.Recv()
	if err != nil {
		t.Fatal(err)
	}

	// Decoded path.
	sessB, _, swFarB := newRewriteHarnessBoth(t)
	if err := sessB.handleFromController(11, relayFlowMod()); err != nil {
		t.Fatal(err)
	}
	if err := sessB.sw.Flush(); err != nil {
		t.Fatal(err)
	}
	xidB, gotB, err := swFarB.Recv()
	if err != nil {
		t.Fatal(err)
	}

	if xidA != xidB {
		t.Fatalf("xid: frame path %d, decoded path %d", xidA, xidB)
	}
	if !reflect.DeepEqual(gotA, gotB) {
		t.Fatalf("frame path delivered %+v\ndecoded path delivered %+v", gotA, gotB)
	}
	shifted := gotA.(*openflow.FlowMod)
	if shifted.TableID != 1 {
		t.Fatalf("table id at switch = %d, want 1", shifted.TableID)
	}
	gt := shifted.Instructions[1].(*openflow.InstructionGotoTable)
	if gt.TableID != 2 {
		t.Fatalf("goto-table at switch = %d, want 2", gt.TableID)
	}
}

// TestFrameRelaySwitchToController covers the switch→controller frame
// rewrites: table-1+ packet-ins and flow-removed shift down one table,
// table-0 flow-removed (DFI's own rules) are consumed, and unmodeled
// types pass through byte for byte.
func TestFrameRelaySwitchToController(t *testing.T) {
	sess, ctlFar, _ := newRewriteHarnessBoth(t)
	send := func(m openflow.Message) {
		t.Helper()
		var f openflow.Frame
		if err := f.AppendMessageTo(3, m); err != nil {
			t.Fatal(err)
		}
		if err := sess.handleFrameFromSwitch(&f); err != nil {
			t.Fatal(err)
		}
		if err := sess.ctl.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	send(&openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Reason:   openflow.PacketInReasonNoMatch,
		TableID:  2,
		Match:    &openflow.Match{InPort: openflow.U32(1)},
		Data:     []byte{0xde, 0xad},
	})
	if _, m, err := ctlFar.Recv(); err != nil {
		t.Fatal(err)
	} else if pi := m.(*openflow.PacketIn); pi.TableID != 1 {
		t.Fatalf("packet-in table at controller = %d, want 1", pi.TableID)
	}

	// Table-0 flow-removed: DFI's rule, consumed silently.
	send(&openflow.FlowRemoved{Cookie: 7, TableID: 0, Match: &openflow.Match{}})
	// Table-2 flow-removed: shifted and forwarded.
	send(&openflow.FlowRemoved{Cookie: 8, TableID: 2, Match: &openflow.Match{}})
	if _, m, err := ctlFar.Recv(); err != nil {
		t.Fatal(err)
	} else if fr := m.(*openflow.FlowRemoved); fr.Cookie != 8 || fr.TableID != 1 {
		t.Fatalf("flow-removed at controller = %+v (the table-0 one must be consumed)", fr)
	}

	// Unmodeled type: transparent passthrough.
	send(&openflow.EchoRequest{Data: []byte("keepalive")})
	if _, m, err := ctlFar.Recv(); err != nil {
		t.Fatal(err)
	} else if e := m.(*openflow.EchoRequest); string(e.Data) != "keepalive" {
		t.Fatalf("passthrough = %+v", m)
	}
}

// TestRelayCoalescesBurst: a burst of messages written to the controller
// side before the relay wakes must cross the proxy and appear on the
// switch side intact and in order (the relay queues them all and flushes
// once when its input runs dry).
func TestRelayCoalescesBurst(t *testing.T) {
	sess, ctlFar, swFar := newRewriteHarnessBoth(t)
	go func() { _ = sess.relayControllerToSwitch() }()

	const n = 16
	for i := 0; i < n; i++ {
		fm := relayFlowMod()
		fm.Cookie = uint64(i)
		if err := ctlFar.SendXID(uint32(i+1), fm); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		xid, m, err := swFar.Recv()
		if err != nil {
			t.Fatal(err)
		}
		fm, ok := m.(*openflow.FlowMod)
		if !ok || xid != uint32(i+1) || fm.Cookie != uint64(i) {
			t.Fatalf("message %d: xid=%d %+v", i, xid, m)
		}
		if fm.TableID != 1 {
			t.Fatalf("message %d not shifted: table %d", i, fm.TableID)
		}
	}
}

// newRelayBenchSession builds a bare session with raw pipe far ends, so
// the benchmark can write wire bytes and drain them without the framing
// cost landing inside the measured region.
func newRelayBenchSession(b *testing.B) (*session, *bufpipe.Conn, *bufpipe.Conn) {
	b.Helper()
	p := pcp.New(pcp.Config{Entity: entity.NewManager(), Policy: policy.NewManager()})
	prx, err := New(Config{PCP: p, DialController: func() (io.ReadWriteCloser, error) {
		a, _ := bufpipe.New()
		return a, nil
	}})
	if err != nil {
		b.Fatal(err)
	}
	swNear, swFar := bufpipe.New()
	ctlNear, ctlFar := bufpipe.New()
	b.Cleanup(func() {
		swNear.Close()
		ctlNear.Close()
	})
	sess := &session{
		proxy: prx,
		sw:    openflow.NewConn(swNear),
		ctl:   openflow.NewConn(ctlNear),
	}
	return sess, ctlFar, swFar
}

// BenchmarkRelayThroughput pushes controller flow-mods through the live
// relay loop (frame read → in-place table shift → coalesced write) and
// measures sustained per-message cost; ns/op is one message end to end
// across the proxy.
func BenchmarkRelayThroughput(b *testing.B) {
	sess, ctlFar, swFar := newRelayBenchSession(b)
	go func() { _ = sess.relayControllerToSwitch() }()

	wire, err := openflow.Encode(1, relayFlowMod())
	if err != nil {
		b.Fatal(err)
	}
	expect := int64(len(wire)) * int64(b.N)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64<<10)
		var total int64
		for total < expect {
			n, err := swFar.Read(buf)
			if err != nil {
				return
			}
			total += int64(n)
		}
	}()

	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctlFar.Write(wire); err != nil {
			b.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		b.Fatal("relay stalled")
	}
}
