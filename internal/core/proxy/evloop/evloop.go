// Package evloop multiplexes many relay connections onto a small pool of
// event-loop workers, replacing the proxy's two-blocking-goroutines-per-
// switch relay model (ROADMAP item 3). Each worker owns an epoll instance
// (internal/netpoll) and drives per-connection state machines: non-blocking
// reads feed a partial-frame accumulator (openflow.Accumulator), complete
// frames invoke the caller's Handler (the proxy's in-place rewrite path),
// and writes queue on a per-connection pending buffer flushed on write
// readiness — so neither a slow peer nor a burst ever blocks a worker.
//
// Backpressure is per connection: when an endpoint's pending-write buffer
// crosses the high-water mark, read interest on its peer (the producer) is
// dropped until the buffer drains below the low-water mark. The kernel's
// receive window then pushes back on the far sender, exactly as the old
// blocking relay did implicitly — but without a goroutine parked per
// direction.
//
// Streams that are not fd-backed (in-memory pipes, TLS wrappers) and every
// stream on non-linux platforms take the portable fallback: one pump
// goroutine per connection performing blocking reads through the same
// accumulator and handler. One goroutine per connection instead of two,
// and the frame path is byte-identical to the poller mode.
package evloop

import (
	"errors"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/dfi-sdn/dfi/internal/netpoll"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

const (
	// DefaultWorkers is the event-loop pool size when Config.Workers <= 0.
	DefaultWorkers = 4
	// highWater pauses the producing peer when an endpoint's pending-write
	// buffer grows past this many bytes.
	highWater = 1 << 20
	// lowWater resumes the producing peer once the pending-write buffer
	// drains below this level.
	lowWater = 64 << 10
	// maxPending fails a connection whose consumer is so slow that pending
	// writes (which PCP flushes can grow even with the peer paused) exceed
	// this bound.
	maxPending = 64 << 20
	// readChunk is each worker's shared read scratch size.
	readChunk = 64 << 10
)

// errSlowConsumer fails a connection whose pending writes exceeded
// maxPending.
var errSlowConsumer = errors.New("evloop: pending writes exceeded limit (slow consumer)")

// errEngineClosed rejects registrations after Close.
var errEngineClosed = errors.New("evloop: engine closed")

// Handler consumes one connection's relay events. Methods are invoked from
// the connection's worker (poller mode) or pump goroutine (fallback mode),
// never concurrently for one endpoint.
type Handler interface {
	// OnFrame receives each complete frame, in stream order. The frame
	// aliases loop-owned memory: valid only for the duration of the call.
	OnFrame(f *openflow.Frame) error
	// OnIdle fires when a read burst is exhausted (the next read would
	// block): the relay's flush point for coalesced peer writes.
	OnIdle() error
	// OnClose fires exactly once when the connection tears down; err is
	// the cause (io.EOF for an orderly peer close).
	OnClose(err error)
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the event-loop pool size (default DefaultWorkers).
	Workers int
	// Obs receives the engine's instruments (nil disables).
	Obs *obs.Registry
}

// Engine is a pool of event-loop workers.
type Engine struct {
	workers []*worker
	next    atomic.Uint32
	closed  atomic.Bool

	startOnce sync.Once
	cfg       Config

	readyEvents *obs.Counter
	frames      *obs.Counter
	workersG    *obs.Gauge
	busyVec     *obs.CounterVec
}

// New builds an engine; workers start lazily on the first registration, so
// an unused engine costs nothing.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	e := &Engine{cfg: cfg}
	if reg := cfg.Obs; reg != nil {
		e.workersG = reg.Gauge("dfi_proxy_evloop_workers",
			"Event-loop relay workers serving multiplexed switch connections.")
		e.readyEvents = reg.Counter("dfi_proxy_evloop_ready_events_total",
			"Readiness events dispatched to event-loop relay workers.")
		e.frames = reg.Counter("dfi_proxy_evloop_frames_total",
			"OpenFlow frames assembled by the event-loop relay (both modes).")
		e.busyVec = reg.CounterVec("dfi_proxy_evloop_worker_busy_nanos_total",
			"Nanoseconds each event-loop worker spent processing readiness batches (saturation = rate/1e9).",
			"worker")
	}
	return e
}

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// start brings the worker pool up on first use. When the platform has no
// poller (netpoll.ErrUnsupported) the pool stays empty and every endpoint
// takes the pump fallback.
func (e *Engine) start() {
	e.startOnce.Do(func() {
		workers := make([]*worker, 0, e.cfg.Workers)
		for i := 0; i < e.cfg.Workers; i++ {
			p, err := netpoll.New()
			if err != nil {
				for _, w := range workers {
					w.poller.Close()
				}
				return
			}
			workers = append(workers, &worker{
				eng:     e,
				id:      i,
				poller:  p,
				conns:   make(map[uint32]*Endpoint),
				rbuf:    make([]byte, readChunk),
				events:  make([]netpoll.Event, 128),
				stopped: make(chan struct{}),
				busy:    e.busyVec.With(strconv.Itoa(i)),
			})
		}
		e.workers = workers
		for _, w := range e.workers {
			go w.loop()
		}
		e.workersG.Set(int64(len(e.workers)))
	})
}

// Pair registers a relay connection pair on one worker, linking the two
// endpoints for backpressure: when a's pending writes back up, reads on b
// pause, and vice versa. Handlers run on the shared worker (or pump
// goroutines in fallback mode). No events are delivered until the caller
// invokes Start on each endpoint, so handler state referencing the
// endpoints can be wired up in between. Closing either endpoint leaves the
// other registered; callers tear both down from their OnClose hooks.
func (e *Engine) Pair(a, b io.ReadWriteCloser, ha, hb Handler) (*Endpoint, *Endpoint, error) {
	if e.closed.Load() {
		return nil, nil, errEngineClosed
	}
	e.start()
	w := e.pickWorker()
	epA := e.register(w, a, ha)
	epB := e.register(w, b, hb)
	epA.peer.Store(epB)
	epB.peer.Store(epA)
	return epA, epB, nil
}

// Serve registers a single connection with no backpressure peer (harness
// sinks, tests). The caller must Start the endpoint.
func (e *Engine) Serve(conn io.ReadWriteCloser, h Handler) (*Endpoint, error) {
	if e.closed.Load() {
		return nil, errEngineClosed
	}
	e.start()
	return e.register(e.pickWorker(), conn, h), nil
}

func (e *Engine) pickWorker() *worker {
	if len(e.workers) == 0 {
		return nil
	}
	return e.workers[int(e.next.Add(1))%len(e.workers)]
}

// register builds an endpoint, choosing poller mode when the stream is
// fd-backed and a poller exists, pump fallback otherwise. No events are
// delivered and no pump runs until Start, so Pair can link peers first.
func (e *Engine) register(w *worker, conn io.ReadWriteCloser, h Handler) *Endpoint {
	ep := &Endpoint{eng: e, conn: conn, h: h, fd: -1}
	ep.emitFn = func(f *openflow.Frame) error {
		e.frames.Inc()
		return h.OnFrame(f)
	}
	if w == nil {
		return ep
	}
	fd, ok := netpoll.FD(conn)
	if !ok {
		return ep
	}
	_ = syscall.SetNonblock(fd, true)
	ep.fd = fd
	ep.w = w
	w.mu.Lock()
	w.nextTok++
	ep.token = w.nextTok
	w.conns[ep.token] = ep
	w.mu.Unlock()
	return ep
}

// Close stops every worker, tears down every registered endpoint and
// releases the pollers. Idempotent.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	e.startOnce.Do(func() {}) // block late starts
	for _, w := range e.workers {
		w.stop.Store(true)
		w.poller.Wake()
	}
	for _, w := range e.workers {
		<-w.stopped
	}
	for _, w := range e.workers {
		w.mu.Lock()
		eps := make([]*Endpoint, 0, len(w.conns))
		for _, ep := range w.conns {
			eps = append(eps, ep)
		}
		w.mu.Unlock()
		for _, ep := range eps {
			ep.teardown(net.ErrClosed)
		}
		w.poller.Close()
	}
}

// worker is one event loop: an epoll poller plus the connections assigned
// to it. Endpoint teardown for poller-mode connections always executes on
// the worker goroutine (or after it stops), so raw-fd closes never race
// the worker's reads.
type worker struct {
	eng    *Engine
	id     int
	poller *netpoll.Poller

	mu      sync.Mutex
	conns   map[uint32]*Endpoint
	nextTok uint32
	closing []*Endpoint // teardowns requested from other goroutines

	rbuf    []byte
	events  []netpoll.Event
	busy    *obs.Counter
	stop    atomic.Bool
	stopped chan struct{}
}

func (w *worker) loop() {
	defer close(w.stopped)
	for {
		n, err := w.poller.Wait(w.events)
		if w.stop.Load() || err != nil {
			return
		}
		t0 := time.Now()
		w.drainClosing()
		for i := 0; i < n; i++ {
			ev := w.events[i]
			w.mu.Lock()
			ep := w.conns[ev.Token]
			w.mu.Unlock()
			if ep == nil {
				continue
			}
			w.eng.readyEvents.Inc()
			if ev.Writable {
				if werr := ep.flushPending(); werr != nil {
					ep.teardown(werr)
					continue
				}
			}
			if ev.Readable || ev.Hangup {
				w.readable(ep, ev.Hangup)
			}
		}
		w.busy.Add(uint64(time.Since(t0)))
	}
}

// drainClosing executes teardowns requested from other goroutines, so
// raw-fd closes always run on the owning loop (no close/read races).
func (w *worker) drainClosing() {
	w.mu.Lock()
	closing := w.closing
	w.closing = nil
	w.mu.Unlock()
	for _, ep := range closing {
		ep.teardown(net.ErrClosed)
	}
}

// readable drains the endpoint's socket: every chunk feeds the frame
// accumulator, and when the socket runs dry the handler's OnIdle flushes
// coalesced output. hangup forces teardown even if reads are paused for
// backpressure, since the connection is going away regardless.
func (w *worker) readable(ep *Endpoint, hangup bool) {
	for !ep.readPaused.Load() {
		n, err := syscall.Read(ep.fd, w.rbuf)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		if err != nil {
			ep.teardown(err)
			return
		}
		if n == 0 {
			ep.teardown(io.EOF)
			return
		}
		if ferr := ep.acc.Feed(w.rbuf[:n], ep.emitFn); ferr != nil {
			ep.teardown(ferr)
			return
		}
		if n < len(w.rbuf) {
			break // socket likely drained; level-trigger re-fires otherwise
		}
	}
	if err := ep.h.OnIdle(); err != nil {
		ep.teardown(err)
		return
	}
	if hangup && ep.readPaused.Load() {
		ep.teardown(io.EOF)
	}
}

// Endpoint is one registered connection.
type Endpoint struct {
	eng   *Engine
	w     *worker // nil in fallback mode
	conn  io.ReadWriteCloser
	fd    int // -1 in fallback mode
	token uint32
	h     Handler
	peer  atomic.Pointer[Endpoint]
	acc   openflow.Accumulator

	emitFn func(*openflow.Frame) error

	readPaused atomic.Bool
	wArmed     atomic.Bool
	detached   atomic.Bool

	// imu serializes interest-mask updates so the last Mod always reflects
	// the latest readPaused/wArmed values (each caller stores its flag
	// before entering the critical section, so the final Mod in lock order
	// observes every prior store).
	imu sync.Mutex

	wmu       sync.Mutex
	wbuf      []byte // pending writes; wbuf[whead:] is still unwritten
	whead     int
	closed    bool
	closeOnce sync.Once

	startOnce sync.Once
}

// Start begins event delivery: read-interest registration for poller
// endpoints, the pump launch for fallback endpoints. Anything the caller
// wrote before Start is visible to the handler (the pump's go statement
// and the worker mutex around registration both publish it).
func (ep *Endpoint) Start() {
	ep.startOnce.Do(func() {
		if ep.fd < 0 {
			go ep.pump()
			return
		}
		w := ep.w
		w.mu.Lock()
		err := w.poller.Add(ep.fd, ep.token, true, false)
		w.mu.Unlock()
		if err != nil {
			ep.Close()
		}
	})
}

// FallbackMode reports whether the endpoint runs on a pump goroutine
// instead of a poller worker.
func (ep *Endpoint) FallbackMode() bool { return ep.fd < 0 }

// pump is the portable fallback loop: blocking reads through the same
// accumulator and handler the poller mode uses. One goroutine per
// connection (writes happen inline), half the old relay's cost.
func (ep *Endpoint) pump() {
	buf := make([]byte, 32<<10)
	for {
		n, err := ep.conn.Read(buf)
		if n > 0 {
			if ferr := ep.acc.Feed(buf[:n], ep.emitFn); ferr != nil {
				ep.teardown(ferr)
				return
			}
			if ferr := ep.h.OnIdle(); ferr != nil {
				ep.teardown(ferr)
				return
			}
		}
		if err != nil {
			ep.teardown(err)
			return
		}
	}
}

// Write implements io.Writer without ever blocking a worker: bytes go
// straight to the socket while it accepts them and queue on the pending
// buffer otherwise, with write readiness armed to drain the rest. Safe for
// concurrent use (the relay worker and PCP flush writers share it).
// Fallback endpoints write through to the underlying stream.
//
//dfi:hotpath
func (ep *Endpoint) Write(p []byte) (int, error) {
	if ep.fd < 0 {
		return ep.conn.Write(p)
	}
	ep.wmu.Lock()
	defer ep.wmu.Unlock()
	if ep.closed {
		return 0, net.ErrClosed
	}
	total := len(p)
	if ep.whead == len(ep.wbuf) {
		// Nothing pending: write through.
		ep.wbuf = ep.wbuf[:0]
		ep.whead = 0
		for len(p) > 0 {
			n, err := syscall.Write(ep.fd, p)
			if n > 0 {
				p = p[n:]
				continue
			}
			if err == syscall.EINTR {
				continue
			}
			if err == syscall.EAGAIN {
				break
			}
			if err != nil {
				return total - len(p), err
			}
		}
		if len(p) == 0 {
			return total, nil
		}
	}
	if len(ep.wbuf)-ep.whead+len(p) > maxPending {
		return 0, errSlowConsumer
	}
	// Spill path: only reached when the socket returned EAGAIN, so the
	// amortized growth here is backpressure handling, not steady state.
	ep.wbuf = append(ep.wbuf, p...) //dfi:ignore hotpathalloc
	if !ep.wArmed.Load() {
		ep.wArmed.Store(true)
		ep.updateInterest()
	}
	if peer := ep.peer.Load(); peer != nil && peer.fd >= 0 &&
		len(ep.wbuf)-ep.whead >= highWater && !peer.readPaused.Load() {
		peer.readPaused.Store(true)
		peer.updateInterest()
	}
	return total, nil
}

// Pending returns the bytes queued for write but not yet on the wire.
func (ep *Endpoint) Pending() int {
	if ep.fd < 0 {
		return 0
	}
	ep.wmu.Lock()
	defer ep.wmu.Unlock()
	return len(ep.wbuf) - ep.whead
}

// flushPending drains queued bytes on write readiness (runs on the
// worker). When the buffer empties, write interest disarms and a paused
// peer resumes.
func (ep *Endpoint) flushPending() error {
	ep.wmu.Lock()
	defer ep.wmu.Unlock()
	if ep.closed {
		return nil
	}
	for ep.whead < len(ep.wbuf) {
		n, err := syscall.Write(ep.fd, ep.wbuf[ep.whead:])
		if n > 0 {
			ep.whead += n
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		if err != nil {
			return err
		}
	}
	pending := len(ep.wbuf) - ep.whead
	if pending == 0 {
		ep.wbuf = ep.wbuf[:0]
		ep.whead = 0
		ep.wArmed.Store(false)
		ep.updateInterest()
	}
	if peer := ep.peer.Load(); peer != nil && pending < lowWater && peer.readPaused.Load() {
		peer.readPaused.Store(false)
		peer.updateInterest()
	}
	return nil
}

// updateInterest pushes the endpoint's current interest mask to the
// poller. Serialized by imu so the last Mod reflects the latest flags.
func (ep *Endpoint) updateInterest() {
	if ep.fd < 0 || ep.detached.Load() {
		return
	}
	ep.imu.Lock()
	defer ep.imu.Unlock()
	if ep.detached.Load() {
		return
	}
	_ = ep.w.poller.Mod(ep.fd, ep.token, !ep.readPaused.Load(), ep.wArmed.Load())
}

// Close tears the endpoint down with net.ErrClosed. Poller endpoints
// defer the raw-fd close to their worker (avoiding close/read races);
// fallback endpoints close inline. Idempotent, safe from any goroutine.
func (ep *Endpoint) Close() error {
	if ep.fd < 0 {
		ep.teardown(net.ErrClosed)
		return nil
	}
	w := ep.w
	w.mu.Lock()
	if w.stop.Load() {
		// Worker already stopped (engine closing): safe to tear down here.
		w.mu.Unlock()
		ep.teardown(net.ErrClosed)
		return nil
	}
	w.closing = append(w.closing, ep)
	w.mu.Unlock()
	w.poller.Wake()
	return nil
}

// teardown finishes the endpoint exactly once: unregister from the
// poller, close the stream, deliver OnClose. For poller endpoints it must
// run on the worker (or after the worker stopped).
func (ep *Endpoint) teardown(err error) {
	ep.closeOnce.Do(func() {
		ep.detached.Store(true)
		if ep.fd >= 0 {
			w := ep.w
			_ = w.poller.Del(ep.fd)
			w.mu.Lock()
			delete(w.conns, ep.token)
			w.mu.Unlock()
		}
		ep.wmu.Lock()
		ep.closed = true
		ep.wbuf = nil
		ep.whead = 0
		ep.wmu.Unlock()
		// A paused peer must not stay paused forever because its
		// backpressure source died.
		if peer := ep.peer.Load(); peer != nil && peer.readPaused.Load() {
			peer.readPaused.Store(false)
			peer.updateInterest()
		}
		_ = ep.conn.Close()
		ep.h.OnClose(err)
	})
}
