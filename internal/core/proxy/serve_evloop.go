package proxy

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/dfi-sdn/dfi/internal/core/proxy/evloop"
	"github.com/dfi-sdn/dfi/internal/openflow"
)

// handleSwitchEvloop serves one switch connection on the event-loop
// engine: both legs register as endpoints on one worker, the session's
// frame handlers run as state-machine callbacks, and no goroutines are
// held for the connection's lifetime (poller mode). Returns after
// registration; done fires when the session ends.
func (p *Proxy) handleSwitchEvloop(swStream io.ReadWriteCloser, done func(error)) error {
	ctlStream, err := p.cfg.DialController()
	if err != nil {
		swStream.Close()
		return fmt.Errorf("proxy: dial controller: %w", err)
	}
	es := &evSession{p: p, done: done}
	es.sess = &session{proxy: p}
	swEp, ctlEp, err := p.engine.Pair(swStream, ctlStream,
		&evSide{es: es, fromSwitch: true},
		&evSide{es: es, fromSwitch: false})
	if err != nil {
		swStream.Close()
		ctlStream.Close()
		return err
	}
	es.swEp, es.ctlEp = swEp, ctlEp
	// The session writes through the endpoints' non-blocking writers; no
	// read buffers are allocated (reads happen in the workers' shared
	// accumulators).
	es.sess.sw = openflow.NewWriterConn(swEp)
	es.sess.ctl = openflow.NewWriterConn(ctlEp)
	p.conns.Inc()
	swEp.Start()
	ctlEp.Start()
	return nil
}

// evSession is the event-loop counterpart of ServeSwitch's stack frame:
// the state shared by a relay pair's two handlers.
type evSession struct {
	p     *Proxy
	sess  *session
	swEp  *evloop.Endpoint
	ctlEp *evloop.Endpoint
	done  func(error)
	// ended is CAS-guarded rather than a sync.Once: closing the peer leg
	// can deliver its OnClose inline (fallback endpoints tear down on the
	// caller), re-entering finish on the same goroutine.
	ended atomic.Bool
}

// evSide adapts one relay direction to the evloop Handler interface.
type evSide struct {
	es         *evSession
	fromSwitch bool
}

// OnFrame routes a complete frame through the same in-place rewrite path
// the blocking relay uses, so both modes produce byte-identical output.
//
//dfi:hotpath
func (h *evSide) OnFrame(f *openflow.Frame) error {
	if h.fromSwitch {
		return h.es.sess.handleFrameFromSwitch(f)
	}
	return h.es.sess.handleFrameFromController(f)
}

// OnIdle mirrors the blocking relay's InputBuffered()==0 flush: the read
// burst is over, push the coalesced output to the peer in one write.
//
//dfi:hotpath
func (h *evSide) OnIdle() error {
	if h.fromSwitch {
		return h.es.sess.ctl.Flush()
	}
	return h.es.sess.sw.Flush()
}

// OnClose tears the session down when either leg ends: the first close
// wins, classifies its error, and closes the other leg.
func (h *evSide) OnClose(err error) {
	h.es.finish(h.fromSwitch, err)
}

func (es *evSession) finish(fromSwitch bool, err error) {
	if !es.ended.CompareAndSwap(false, true) {
		return
	}
	p := es.p
	if !orderlyClose(err) {
		if fromSwitch {
			p.relayErrSwitch.Inc()
		} else {
			p.relayErrController.Inc()
		}
	}
	if fromSwitch {
		es.ctlEp.Close()
	} else {
		es.swEp.Close()
	}
	if dpid, ok := es.sess.dpid.Load().(uint64); ok {
		p.cfg.PCP.DetachSwitch(dpid)
	}
	// In-flight admission decisions may still write to the switch; wait
	// for them off the worker (sess.wg.Wait blocks) before reporting
	// the session done.
	go func() {
		es.sess.wg.Wait()
		p.conns.Dec()
		if orderlyClose(err) {
			err = nil
		}
		es.done(err)
	}()
}
