//go:build !race

package proxy

// raceEnabled mirrors the race build tag for tests whose assertions (e.g.
// allocation counts) only hold without race instrumentation.
const raceEnabled = false
