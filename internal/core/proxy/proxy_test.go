package proxy

import (
	"io"
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/controller"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/openflow"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

var (
	macA = netpkt.MustParseMAC("02:00:00:00:00:0a")
	macB = netpkt.MustParseMAC("02:00:00:00:00:0b")
	macC = netpkt.MustParseMAC("02:00:00:00:00:0c")
	ipA  = netpkt.MustParseIPv4("10.0.0.10")
	ipB  = netpkt.MustParseIPv4("10.0.0.11")
	ipC  = netpkt.MustParseIPv4("10.0.0.12")
)

// stack is a fully wired single-switch DFI deployment.
type stack struct {
	pm   *policy.Manager
	erm  *entity.Manager
	pcp  *pcp.PCP
	ctl  *controller.Controller
	prx  *Proxy
	sw   *switchsim.Switch
	rx   map[uint32]chan []byte
	rxMu sync.Mutex

	connMu     sync.Mutex
	ctlStreams []*bufpipe.Conn
	swEnd      *bufpipe.Conn
	prxEnd     *bufpipe.Conn
}

// killControllers closes every controller-side stream handed to the proxy.
func (s *stack) killControllers() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for _, c := range s.ctlStreams {
		c.Close()
	}
}

// closeSwitchConn drops the switch's control channel.
func (s *stack) closeSwitchConn() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.swEnd.Close()
	s.prxEnd.Close()
}

func newStack(t *testing.T) *stack {
	return newStackCfg(t, nil)
}

// newStackCfg wires a stack with an optional PCP config mutation, so tests
// can flip knobs like ProactivePush before the switch handshakes.
func newStackCfg(t *testing.T, mut func(*pcp.Config)) *stack {
	t.Helper()
	s := &stack{
		pm:  policy.NewManager(),
		erm: entity.NewManager(),
		ctl: controller.New(controller.Config{}),
		rx:  make(map[uint32]chan []byte),
	}
	cfg := pcp.Config{Entity: s.erm, Policy: s.pm, Workers: 2}
	if mut != nil {
		mut(&cfg)
	}
	s.pcp = pcp.New(cfg)
	s.pcp.Start()
	t.Cleanup(s.pcp.Stop)

	var err error
	s.prx, err = New(Config{
		PCP: s.pcp,
		DialController: func() (io.ReadWriteCloser, error) {
			a, b := bufpipe.New()
			s.connMu.Lock()
			s.ctlStreams = append(s.ctlStreams, a, b)
			s.connMu.Unlock()
			go func() { _ = s.ctl.Serve(b) }()
			return a, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	s.sw = switchsim.NewSwitch(switchsim.Config{DPID: 7})
	swEnd, prxEnd := bufpipe.New()
	s.swEnd, s.prxEnd = swEnd, prxEnd
	go func() { _ = s.sw.ServeControl(swEnd) }()
	go func() { _ = s.prx.ServeSwitch(prxEnd) }()
	t.Cleanup(func() {
		swEnd.Close()
		prxEnd.Close()
	})
	if !s.sw.WaitConfigured(5 * time.Second) {
		t.Fatal("switch never configured through the proxy")
	}
	return s
}

func (s *stack) attach(t *testing.T, port uint32) chan []byte {
	t.Helper()
	ch := make(chan []byte, 64)
	s.rxMu.Lock()
	s.rx[port] = ch
	s.rxMu.Unlock()
	if err := s.sw.AttachPort(port, func(f []byte) {
		select {
		case ch <- f:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	return ch
}

func expectFrame(t *testing.T, ch chan []byte) []byte {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(3 * time.Second):
		t.Fatal("timeout waiting for frame")
		return nil
	}
}

func expectSilence(t *testing.T, ch chan []byte, within time.Duration) {
	t.Helper()
	select {
	case <-ch:
		t.Fatal("unexpected frame delivered")
	case <-time.After(within):
	}
}

func frameAB(sport uint16) []byte {
	return netpkt.BuildTCP(macA, macB, ipA, ipB, &netpkt.TCPSegment{SrcPort: sport, DstPort: 445, Flags: netpkt.TCPSyn})
}

func registerHosts(t *testing.T, s *stack) {
	t.Helper()
	s.erm.BindIPMAC(ipA, macA)
	s.erm.BindIPMAC(ipB, macB)
	s.erm.BindHostIP("host-a", ipA)
	s.erm.BindHostIP("host-b", ipB)
}

func waitCond(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func TestDefaultDenyBlocksAndHidesFromController(t *testing.T) {
	s := newStack(t)
	s.attach(t, 1)
	chB := s.attach(t, 2)

	s.sw.Inject(1, frameAB(1000))
	expectSilence(t, chB, 100*time.Millisecond)

	waitCond(t, func() bool { return s.prx.Stats().Denied == 1 }, "deny recorded")
	if got := s.ctl.Stats().PacketIns; got != 0 {
		t.Fatalf("controller saw %d packet-ins for a denied flow, want 0", got)
	}
	// The deny was cached in table 0 with the default-deny cookie.
	waitCond(t, func() bool { return s.sw.FlowCount(0) == 1 }, "deny rule installed")

	// A second packet of the same flow is dropped in the data plane
	// without another packet-in.
	before := s.prx.Stats().PacketIns
	s.sw.Inject(1, frameAB(1000))
	expectSilence(t, chB, 100*time.Millisecond)
	if got := s.prx.Stats().PacketIns; got != before {
		t.Fatalf("cached deny still caused packet-in (%d→%d)", before, got)
	}
}

func TestAllowedFlowEndToEnd(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-b"},
		Dst: policy.EndpointSpec{Host: "host-a"},
	}); err != nil {
		t.Fatal(err)
	}

	chA := s.attach(t, 1)
	chB := s.attach(t, 2)

	// A→B: allowed by DFI, flooded by the learning controller.
	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)

	// DFI's allow rule is in table 0 and continues to table 1.
	waitCond(t, func() bool { return s.sw.FlowCount(0) >= 1 }, "DFI rule in table 0")
	// The controller saw the packet-in after DFI allowed it.
	waitCond(t, func() bool { return s.ctl.Stats().PacketIns >= 1 }, "controller packet-in")

	// B→A reply: DFI allows, controller has learned A and installs its
	// forwarding rule — which must land in table 1, not table 0.
	reply := netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 445, DstPort: 1000, Flags: netpkt.TCPSyn | netpkt.TCPAck})
	s.sw.Inject(2, reply)
	expectFrame(t, chA)
	waitCond(t, func() bool { return s.sw.FlowCount(1) >= 1 }, "controller rule in table 1")
}

func TestRevocationFlushesCachedRules(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	id, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	chB := s.attach(t, 2)
	s.attach(t, 1)

	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)
	waitCond(t, func() bool { return s.sw.FlowCount(0) >= 1 }, "allow rule cached")

	// Revoke: the PCP must flush the cookie-tagged rule from table 0.
	if err := s.pm.Revoke(id); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return s.sw.FlowCount(0) == 0 }, "allow rule flushed")

	// The same flow is now re-evaluated and denied.
	s.sw.Inject(1, frameAB(1000))
	expectSilence(t, chB, 100*time.Millisecond)
	waitCond(t, func() bool { return s.prx.Stats().Denied >= 1 }, "re-evaluated deny")
}

func TestNewAllowFlushesCachedDefaultDeny(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	chB := s.attach(t, 2)
	s.attach(t, 1)

	// First: denied and cached.
	s.sw.Inject(1, frameAB(1000))
	expectSilence(t, chB, 100*time.Millisecond)
	waitCond(t, func() bool { return s.sw.FlowCount(0) == 1 }, "default-deny cached")

	// Insert an Allow covering the flow: the cached default-deny rules
	// must be flushed so the flow can be re-admitted immediately.
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return s.sw.FlowCount(0) == 0 }, "default-deny flushed")

	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)
}

func TestSpoofedSourceDenied(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	// Policy would allow host-a → host-b...
	if _, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	}); err != nil {
		t.Fatal(err)
	}
	chB := s.attach(t, 2)
	s.attach(t, 3)

	// ...but macC claims ipA: the identifiers are inconsistent with the
	// DHCP binding, so the packet must be denied, not enriched to host-a.
	spoofed := netpkt.BuildTCP(macC, macB, ipA, ipB, &netpkt.TCPSegment{SrcPort: 6666, DstPort: 445, Flags: netpkt.TCPSyn})
	s.sw.Inject(3, spoofed)
	expectSilence(t, chB, 100*time.Millisecond)
	waitCond(t, func() bool { return s.prx.Stats().Denied == 1 }, "spoof denied")
	if got := s.ctl.Stats().PacketIns; got != 0 {
		t.Fatalf("controller saw %d packet-ins for spoofed flow", got)
	}
	_ = ipC
}

func TestControllerFlowModsShiftedOutOfTableZero(t *testing.T) {
	s := newStack(t)
	registerHosts(t, s)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	// Allow everything so the controller processes traffic.
	if _, err := s.pm.Insert(policy.Rule{PDP: "test", Action: policy.ActionAllow}); err != nil {
		t.Fatal(err)
	}
	chA := s.attach(t, 1)
	s.attach(t, 2)

	s.sw.Inject(1, frameAB(1000))
	reply := netpkt.BuildTCP(macB, macA, ipB, ipA, &netpkt.TCPSegment{SrcPort: 445, DstPort: 1000})
	s.sw.Inject(2, reply)
	expectFrame(t, chA)
	waitCond(t, func() bool { return s.ctl.Stats().FlowMods >= 1 }, "controller installed a rule")

	// Every table-0 entry must be DFI's (goto-table or drop); the
	// controller's output rules live in table 1+.
	waitCond(t, func() bool { return s.sw.FlowCount(1) >= 1 }, "controller rule shifted to table 1")
}

func TestParallelFlowsManyClients(t *testing.T) {
	s := newStack(t)
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.pm.Insert(policy.Rule{PDP: "test", Action: policy.ActionAllow}); err != nil {
		t.Fatal(err)
	}
	for port := uint32(1); port <= 8; port++ {
		s.attach(t, port)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				src := netpkt.MAC{0x02, 0, 0, 0, byte(i), byte(j)}
				frame := netpkt.BuildTCP(src, macB, netpkt.IPv4{10, 1, byte(i), byte(j)}, ipB,
					&netpkt.TCPSegment{SrcPort: uint16(1000 + j), DstPort: 80, Flags: netpkt.TCPSyn})
				s.sw.Inject(uint32(i%8)+1, frame)
			}
		}(i)
	}
	wg.Wait()
	waitCond(t, func() bool {
		return s.pcp.Metrics().Processed()+s.pcp.Metrics().Dropped() >= 160
	}, "all flows processed or accounted dropped")
}

// TestTableStatsHideDFITable: table statistics crossing the proxy must not
// reveal table 0's existence to the controller.
func TestTableStatsHideDFITable(t *testing.T) {
	// Raw session-level test: feed a switch-side table-stats reply through
	// the rewrite logic via a stubbed session.
	sess, ctlConn := newRewriteHarness(t)
	reply := &openflow.MultipartReply{
		PartType: openflow.MultipartTable,
		Tables: []*openflow.TableStatsEntry{
			{TableID: 0, ActiveCount: 7},
			{TableID: 1, ActiveCount: 3},
			{TableID: 2, ActiveCount: 1},
		},
	}
	if err := sess.handleFromSwitch(5, reply); err != nil {
		t.Fatal(err)
	}
	_, msg, err := ctlConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*openflow.MultipartReply)
	if !ok || got.PartType != openflow.MultipartTable {
		t.Fatalf("got %#v", msg)
	}
	if len(got.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (table 0 hidden)", len(got.Tables))
	}
	if got.Tables[0].TableID != 0 || got.Tables[0].ActiveCount != 3 {
		t.Fatalf("first visible table = %+v, want renumbered table 1", got.Tables[0])
	}
}

// TestAggregateRequestShifted: the controller's aggregate request for its
// table 0 must land on the switch's table 1.
func TestAggregateRequestShifted(t *testing.T) {
	sess, _, swConn := newRewriteHarnessBoth(t)
	req := &openflow.MultipartRequest{
		PartType: openflow.MultipartAggregate,
		Flow:     &openflow.FlowStatsRequest{TableID: 0, Match: &openflow.Match{}},
	}
	if err := sess.handleFromController(6, req); err != nil {
		t.Fatal(err)
	}
	_, msg, err := swConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*openflow.MultipartRequest)
	if !ok || got.Flow == nil {
		t.Fatalf("got %#v", msg)
	}
	if got.Flow.TableID != 1 {
		t.Fatalf("table id = %d, want shifted to 1", got.Flow.TableID)
	}
}

// newRewriteHarness builds a session whose controller side is readable.
func newRewriteHarness(t *testing.T) (*session, *openflow.Conn) {
	t.Helper()
	sess, ctl, _ := newRewriteHarnessBoth(t)
	return sess, ctl
}

// newRewriteHarnessBoth builds a bare session with readable ends on both
// sides, for unit-testing the rewrite logic without a full stack.
func newRewriteHarnessBoth(t *testing.T) (*session, *openflow.Conn, *openflow.Conn) {
	t.Helper()
	erm := entity.NewManager()
	pm := policy.NewManager()
	p := pcp.New(pcp.Config{Entity: erm, Policy: pm})
	prx, err := New(Config{PCP: p, DialController: func() (io.ReadWriteCloser, error) {
		a, _ := bufpipe.New()
		return a, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	swNear, swFar := bufpipe.New()
	ctlNear, ctlFar := bufpipe.New()
	t.Cleanup(func() {
		swNear.Close()
		ctlNear.Close()
	})
	sess := &session{
		proxy: prx,
		sw:    openflow.NewConn(swNear),
		ctl:   openflow.NewConn(ctlNear),
	}
	return sess, openflow.NewConn(ctlFar), openflow.NewConn(swFar)
}

func TestRewriteRulesUnit(t *testing.T) {
	sess, ctlConn, swConn := newRewriteHarnessBoth(t)

	// Features reply: controller sees one table fewer; DPID learned.
	if err := sess.handleFromSwitch(1, &openflow.FeaturesReply{DatapathID: 0x33, NumTables: 4}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := ctlConn.Recv(); err != nil {
		t.Fatal(err)
	} else if fr := msg.(*openflow.FeaturesReply); fr.NumTables != 3 {
		t.Fatalf("NumTables = %d, want 3", fr.NumTables)
	}
	if dpid, ok := sess.dpid.Load().(uint64); !ok || dpid != 0x33 {
		t.Fatal("dpid not learned")
	}

	// Flow-removed from table 0 is consumed; table 2 is shifted to 1.
	if err := sess.handleFromSwitch(2, &openflow.FlowRemoved{TableID: 0, Match: &openflow.Match{}}); err != nil {
		t.Fatal(err)
	}
	if err := sess.handleFromSwitch(3, &openflow.FlowRemoved{TableID: 2, Match: &openflow.Match{}}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := ctlConn.Recv(); err != nil {
		t.Fatal(err)
	} else if fr := msg.(*openflow.FlowRemoved); fr.TableID != 1 {
		t.Fatalf("flow-removed table = %d, want 1 (and table-0 removal consumed)", fr.TableID)
	}

	// Controller flow-mod: table and goto-table references shift up.
	fm := &openflow.FlowMod{
		TableID: 0, Command: openflow.FlowModAdd, BufferID: openflow.NoBuffer,
		Match: &openflow.Match{},
		Instructions: []openflow.Instruction{
			&openflow.InstructionGotoTable{TableID: 1},
		},
	}
	if err := sess.handleFromController(4, fm); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := swConn.Recv(); err != nil {
		t.Fatal(err)
	} else {
		got := msg.(*openflow.FlowMod)
		if got.TableID != 1 {
			t.Fatalf("flow-mod table = %d, want 1", got.TableID)
		}
		gt := got.Instructions[0].(*openflow.InstructionGotoTable)
		if gt.TableID != 2 {
			t.Fatalf("goto table = %d, want 2", gt.TableID)
		}
	}

	// Table-mod shifts; ALL stays ALL.
	if err := sess.handleFromController(5, &openflow.TableMod{TableID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := swConn.Recv(); err != nil {
		t.Fatal(err)
	} else if tm := msg.(*openflow.TableMod); tm.TableID != 2 {
		t.Fatalf("table-mod = %d, want 2", tm.TableID)
	}
	if err := sess.handleFromController(6, &openflow.TableMod{TableID: openflow.AllTables}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := swConn.Recv(); err != nil {
		t.Fatal(err)
	} else if tm := msg.(*openflow.TableMod); tm.TableID != openflow.AllTables {
		t.Fatalf("table-mod ALL rewritten to %d", tm.TableID)
	}

	// Echo and other unmodeled messages pass through untouched, both ways.
	if err := sess.handleFromSwitch(7, &openflow.EchoRequest{Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := ctlConn.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*openflow.EchoRequest); !ok {
		t.Fatalf("echo became %T", msg)
	}
	if err := sess.handleFromController(8, &openflow.EchoReply{Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := swConn.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*openflow.EchoReply); !ok {
		t.Fatalf("echo reply became %T", msg)
	}

	// Flow-stats reply: table-0 rows hidden, others shifted, goto
	// instructions shifted down.
	rep := &openflow.MultipartReply{
		PartType: openflow.MultipartFlow,
		Flows: []*openflow.FlowStatsEntry{
			{TableID: 0, Match: &openflow.Match{}},
			{TableID: 1, Match: &openflow.Match{},
				Instructions: []openflow.Instruction{&openflow.InstructionGotoTable{TableID: 2}}},
		},
	}
	if err := sess.handleFromSwitch(9, rep); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := ctlConn.Recv(); err != nil {
		t.Fatal(err)
	} else {
		got := msg.(*openflow.MultipartReply)
		if len(got.Flows) != 1 || got.Flows[0].TableID != 0 {
			t.Fatalf("flow stats = %+v", got.Flows)
		}
		gt := got.Flows[0].Instructions[0].(*openflow.InstructionGotoTable)
		if gt.TableID != 1 {
			t.Fatalf("stats goto = %d, want 1", gt.TableID)
		}
	}
}

func TestPacketInBeforeFeaturesDropped(t *testing.T) {
	sess, _, _ := newRewriteHarnessBoth(t)
	pi := &openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		Match:    &openflow.Match{InPort: openflow.U32(1)},
		Data:     frameAB(1),
	}
	if err := sess.handleFromSwitch(1, pi); err != nil {
		t.Fatal(err)
	}
	if sess.proxy.Stats().DroppedOverload != 1 {
		t.Fatalf("stats = %+v, want 1 drop", sess.proxy.Stats())
	}
}
