package proxy

import (
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bufpipe"
	"github.com/dfi-sdn/dfi/internal/core/entity"
	"github.com/dfi-sdn/dfi/internal/core/pcp"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/switchsim"
)

// TestProactivePushThroughProxy: with ProactivePush enabled, inserting an
// allow rule installs exact-match table-0 entries through the proxy's switch
// session — before any packet is seen — so the first covered packet is
// forwarded by goto-table without a DFI admission. A reconnecting switch is
// repopulated at handshake, and revocation evicts the pushed entries.
func TestProactivePushThroughProxy(t *testing.T) {
	s := newStackCfg(t, func(c *pcp.Config) { c.ProactivePush = true })
	registerHosts(t, s)
	s.erm.BindMACLocation(macA, entity.Location{DPID: 7, Port: 1})
	s.erm.BindMACLocation(macB, entity.Location{DPID: 7, Port: 2})
	if err := s.pm.RegisterPDP("test", 50); err != nil {
		t.Fatal(err)
	}
	id, err := s.pm.Insert(policy.Rule{
		PDP: "test", Action: policy.ActionAllow,
		Src: policy.EndpointSpec{Host: "host-a"},
		Dst: policy.EndpointSpec{Host: "host-b"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The insert alone pushed table-0 entries via the proxy-attached writer.
	waitCond(t, func() bool {
		return s.pcp.Metrics().ProactivePushed() >= 1 && s.sw.FlowCount(0) >= 1
	}, "proactive entries installed through the proxy")

	chB := s.attach(t, 2)
	s.attach(t, 1)
	s.sw.Inject(1, frameAB(1000))
	expectFrame(t, chB)
	// The covered first packet rode the proactive goto-table rule: the miss
	// happened in the controller's table, not DFI's, so no admission ran.
	if got := s.pcp.Metrics().Processed(); got != 0 {
		t.Fatalf("covered flow caused %d DFI admissions, want 0", got)
	}

	// A reconnecting switch is repopulated during the handshake, with no
	// traffic needed.
	s.closeSwitchConn()
	time.Sleep(50 * time.Millisecond)
	sw2 := switchsim.NewSwitch(switchsim.Config{DPID: 7})
	swEnd, prxEnd := bufpipe.New()
	go func() { _ = sw2.ServeControl(swEnd) }()
	go func() { _ = s.prx.ServeSwitch(prxEnd) }()
	t.Cleanup(func() {
		swEnd.Close()
		prxEnd.Close()
	})
	if !sw2.WaitConfigured(5 * time.Second) {
		t.Fatal("reconnected switch never configured")
	}
	waitCond(t, func() bool { return sw2.FlowCount(0) >= 1 }, "reconnected switch repopulated at attach")

	// Revocation evicts every pushed entry.
	if err := s.pm.Revoke(id); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return sw2.FlowCount(0) == 0 }, "revocation evicted proactive entries")
}
