// Package pdp implements DFI's Policy Decision Points (paper §III-B): the
// components that evaluate event-driven conditions and emit or revoke
// policy rules in the Policy Manager. Each PDP provides one kind of policy
// and owns a unique administrator-assigned priority:
//
//   - AllowAll — the evaluation's no-access-control baseline.
//   - SRBAC — static role-based access control: enclave peers and servers
//     are reachable indefinitely.
//   - ATRBAC — authentication-triggered RBAC, the policy uniquely enabled
//     by DFI: role-based reachability exists only while users are logged
//     on, and is revoked at log-off.
//   - Quarantine — an extension PDP that isolates hosts flagged as
//     compromised with high-priority deny rules.
package pdp

import (
	"fmt"
	"sort"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/obs"
)

// Conventional priorities for the provided PDPs; higher wins.
const (
	PriorityAllowAll   = 10
	PriorityStaticRBAC = 100
	PriorityATRBAC     = 110
	PriorityQuarantine = 1000
)

// ServiceEndpoint names one core authentication service: the host serving
// it and the protocol/port it listens on. Restricting the always-on
// baseline to these ports is what keeps a no-user host from reaching the
// same machines over other services (e.g. SMB).
type ServiceEndpoint struct {
	Host  string
	Proto uint8
	Port  uint16
}

// Roster describes the role structure RBAC PDPs enforce: which enclave
// (department) each host belongs to, which hosts are globally-reachable
// servers, and the core authentication service endpoints (DHCP, DNS, AD)
// that must stay reachable even with no user logged on.
type Roster struct {
	EnclaveOf    map[string]string
	Servers      []string
	CoreServices []ServiceEndpoint
}

// Peers returns the other hosts in host's enclave, sorted.
func (r *Roster) Peers(host string) []string {
	enclave, ok := r.EnclaveOf[host]
	if !ok {
		return nil
	}
	var peers []string
	for h, e := range r.EnclaveOf {
		if e == enclave && h != host {
			peers = append(peers, h)
		}
	}
	sort.Strings(peers)
	return peers
}

// Hosts returns every host in the roster, sorted.
func (r *Roster) Hosts() []string {
	hosts := make([]string, 0, len(r.EnclaveOf))
	for h := range r.EnclaveOf {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// IsServer reports whether host is in the server set.
func (r *Roster) IsServer(host string) bool {
	for _, s := range r.Servers {
		if s == host {
			return true
		}
	}
	return false
}

// allowHosts builds the host-to-host allow rule the RBAC PDPs emit.
func allowHosts(pdpName, src, dst string) policy.Rule {
	return policy.Rule{
		PDP:    pdpName,
		Action: policy.ActionAllow,
		Src:    policy.EndpointSpec{Host: src},
		Dst:    policy.EndpointSpec{Host: dst},
	}
}

// insertAll inserts rules, returning their ids; on failure, already
// inserted rules are revoked.
func insertAll(pm *policy.Manager, rules []policy.Rule) ([]policy.RuleID, error) {
	return insertAllCtx(pm, obs.SpanContext{}, rules)
}

// insertAllCtx is insertAll threading a causal span context into each
// insert (and any rollback revokes).
func insertAllCtx(pm *policy.Manager, sc obs.SpanContext, rules []policy.Rule) ([]policy.RuleID, error) {
	ids := make([]policy.RuleID, 0, len(rules))
	for _, r := range rules {
		id, err := pm.InsertCtx(sc, r)
		if err != nil {
			for _, prev := range ids {
				_ = pm.RevokeCtx(sc, prev)
			}
			return nil, fmt.Errorf("insert %s: %w", r.String(), err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
