package pdp

import (
	"fmt"

	"github.com/dfi-sdn/dfi/internal/core/policy"
)

// AllowAll is the fully-open baseline PDP: one wildcard Allow rule, making
// the SDN behave like a traditional flat network (the paper's "no access
// control" condition).
type AllowAll struct {
	pm   *policy.Manager
	name string
	id   policy.RuleID
	on   bool
}

// NewAllowAll registers the PDP with the Policy Manager at
// PriorityAllowAll.
func NewAllowAll(pm *policy.Manager) (*AllowAll, error) {
	a := &AllowAll{pm: pm, name: "allow-all"}
	if err := pm.RegisterPDP(a.name, PriorityAllowAll); err != nil {
		return nil, fmt.Errorf("allow-all: %w", err)
	}
	return a, nil
}

// Name returns the PDP's registered name.
func (a *AllowAll) Name() string { return a.name }

// Enable inserts the wildcard allow rule.
func (a *AllowAll) Enable() error {
	if a.on {
		return nil
	}
	id, err := a.pm.Insert(policy.Rule{PDP: a.name, Action: policy.ActionAllow})
	if err != nil {
		return fmt.Errorf("allow-all: %w", err)
	}
	a.id = id
	a.on = true
	return nil
}

// Disable revokes the wildcard allow rule.
func (a *AllowAll) Disable() error {
	if !a.on {
		return nil
	}
	a.on = false
	if err := a.pm.Revoke(a.id); err != nil {
		return fmt.Errorf("allow-all: %w", err)
	}
	return nil
}
