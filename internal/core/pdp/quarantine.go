package pdp

import (
	"fmt"
	"sync"

	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/sensors"
)

// Quarantine is a quarantine-upon-compromise PDP (one of the paper's
// motivating policy types, §III-B): when a sensor flags an endpoint as
// compromised, the PDP emits top-priority Deny rules that isolate it in
// both directions — overriding every allow rule from lower-priority PDPs —
// and flushes its cached flow rules, cutting flows already in progress.
type Quarantine struct {
	pm   *policy.Manager
	name string

	mu     sync.Mutex
	byHost map[string][]policy.RuleID
	sub    *bus.Subscription
}

// NewQuarantine registers the PDP with the Policy Manager at
// PriorityQuarantine.
func NewQuarantine(pm *policy.Manager) (*Quarantine, error) {
	q := &Quarantine{pm: pm, name: "quarantine", byHost: make(map[string][]policy.RuleID)}
	if err := pm.RegisterPDP(q.name, PriorityQuarantine); err != nil {
		return nil, fmt.Errorf("quarantine: %w", err)
	}
	return q, nil
}

// Name returns the PDP's registered name.
func (q *Quarantine) Name() string { return q.name }

// Start subscribes to compromise events on b. Pass a nil bus to drive the
// PDP directly via Isolate/Release.
func (q *Quarantine) Start(b *bus.Bus) error {
	if b == nil {
		return nil
	}
	sub, err := b.Subscribe(sensors.TopicCompromise, func(ev bus.Event) {
		ce, ok := ev.Payload.(sensors.CompromiseEvent)
		if !ok {
			return
		}
		if ce.Cleared {
			_ = q.ReleaseCtx(ev.Trace, ce.Host)
		} else {
			_ = q.IsolateCtx(ev.Trace, ce.Host)
		}
	})
	if err != nil {
		return fmt.Errorf("quarantine subscribe: %w", err)
	}
	q.mu.Lock()
	q.sub = sub
	q.mu.Unlock()
	return nil
}

// Stop cancels the subscription; existing quarantines remain in force.
func (q *Quarantine) Stop() {
	q.mu.Lock()
	sub := q.sub
	q.sub = nil
	q.mu.Unlock()
	if sub != nil {
		sub.Cancel()
	}
}

// Isolate denies all flows to and from host.
func (q *Quarantine) Isolate(host string) error {
	return q.IsolateCtx(obs.SpanContext{}, host)
}

// IsolateCtx is Isolate carrying a causal span context (the compromise
// event's publish span, when driven off the bus), so the emitted deny
// rules' policy spans and flushes join the event's trace.
func (q *Quarantine) IsolateCtx(sc obs.SpanContext, host string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, already := q.byHost[host]; already {
		return nil
	}
	rules := []policy.Rule{
		{PDP: q.name, Action: policy.ActionDeny, Src: policy.EndpointSpec{Host: host}},
		{PDP: q.name, Action: policy.ActionDeny, Dst: policy.EndpointSpec{Host: host}},
	}
	ids, err := insertAllCtx(q.pm, sc, rules)
	if err != nil {
		return fmt.Errorf("quarantine %q: %w", host, err)
	}
	q.byHost[host] = ids
	return nil
}

// Release lifts a quarantine.
func (q *Quarantine) Release(host string) error {
	return q.ReleaseCtx(obs.SpanContext{}, host)
}

// ReleaseCtx is Release carrying a causal span context (see IsolateCtx).
func (q *Quarantine) ReleaseCtx(sc obs.SpanContext, host string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids, ok := q.byHost[host]
	if !ok {
		return nil
	}
	delete(q.byHost, host)
	for _, id := range ids {
		if err := q.pm.RevokeCtx(sc, id); err != nil {
			return fmt.Errorf("release %q: %w", host, err)
		}
	}
	return nil
}

// Quarantined reports whether host is currently isolated.
func (q *Quarantine) Quarantined(host string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.byHost[host]
	return ok
}
