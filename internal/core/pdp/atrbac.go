package pdp

import (
	"fmt"
	"sync"

	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/sensors"
)

// ATRBAC implements authentication-triggered role-based access control,
// the event-driven policy uniquely enabled by DFI (paper §V-B): role-based
// reachability for a host exists only while a user is logged onto it, and
// is revoked — including flushing cached flow rules — at log-off.
//
// Reachability semantics: a flow between two department hosts is allowed
// only while BOTH have logged-on users; host↔server flows require only the
// host's user. With no user, a host may reach only the core authentication
// services (DHCP, DNS, AD), which stay reachable via static baseline rules,
// as do server↔server flows (operational need; servers have no users).
type ATRBAC struct {
	pm     *policy.Manager
	name   string
	roster Roster

	mu sync.Mutex
	// users tracks logged-on users per host.
	users map[string]map[string]struct{}
	// pairRules maps an active host pair/server grant to its rule id.
	pairRules map[pairKey]policy.RuleID
	baseline  []policy.RuleID
	sub       *bus.Subscription
	started   bool
}

type pairKey struct {
	src string
	dst string
}

// NewATRBAC registers the PDP with the Policy Manager at PriorityATRBAC.
func NewATRBAC(pm *policy.Manager, roster Roster) (*ATRBAC, error) {
	a := &ATRBAC{
		pm:        pm,
		name:      "at-rbac",
		roster:    roster,
		users:     make(map[string]map[string]struct{}),
		pairRules: make(map[pairKey]policy.RuleID),
	}
	if err := pm.RegisterPDP(a.name, PriorityATRBAC); err != nil {
		return nil, fmt.Errorf("at-rbac: %w", err)
	}
	return a, nil
}

// Name returns the PDP's registered name.
func (a *ATRBAC) Name() string { return a.name }

// Start installs the static baseline (core services and server↔server) and
// subscribes to authentication events on b. Pass a nil bus to drive the
// PDP directly via HandleAuth (as the simulated testbed does).
func (a *ATRBAC) Start(b *bus.Bus) error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return nil
	}
	a.started = true
	a.mu.Unlock()

	var rules []policy.Rule
	// Core authentication services stay reachable for everyone — a host
	// with no user must still be able to authenticate one — but only on
	// the services' own protocol and port, so the same machines cannot be
	// reached over anything else (e.g. SMB) from a no-user host.
	for _, core := range a.roster.CoreServices {
		ethType := netpkt.EtherTypeIPv4
		proto := core.Proto
		port := core.Port
		rules = append(rules,
			policy.Rule{
				PDP: a.name, Action: policy.ActionAllow,
				Props: policy.FlowProperties{EtherType: &ethType, IPProto: &proto},
				Dst:   policy.EndpointSpec{Host: core.Host, Port: &port},
			},
			policy.Rule{
				PDP: a.name, Action: policy.ActionAllow,
				Props: policy.FlowProperties{EtherType: &ethType, IPProto: &proto},
				Src:   policy.EndpointSpec{Host: core.Host, Port: &port},
			},
		)
	}
	// Servers have no interactive users; inter-server flows are static.
	for _, s1 := range a.roster.Servers {
		for _, s2 := range a.roster.Servers {
			if s1 != s2 {
				rules = append(rules, allowHosts(a.name, s1, s2))
			}
		}
	}
	ids, err := insertAll(a.pm, rules)
	if err != nil {
		return fmt.Errorf("at-rbac baseline: %w", err)
	}
	a.mu.Lock()
	a.baseline = ids
	a.mu.Unlock()

	if b == nil {
		return nil
	}
	sub, err := b.Subscribe(sensors.TopicAuth, func(ev bus.Event) {
		ae, ok := ev.Payload.(sensors.AuthEvent)
		if !ok {
			return
		}
		a.HandleAuth(ae)
	})
	if err != nil {
		return fmt.Errorf("at-rbac subscribe: %w", err)
	}
	a.mu.Lock()
	a.sub = sub
	a.mu.Unlock()
	return nil
}

// Stop cancels the subscription and revokes all emitted rules.
func (a *ATRBAC) Stop() {
	a.mu.Lock()
	sub := a.sub
	a.sub = nil
	a.started = false
	a.mu.Unlock()
	if sub != nil {
		sub.Cancel()
	}
	a.pm.RevokeAll(a.name)
	a.mu.Lock()
	a.pairRules = make(map[pairKey]policy.RuleID)
	a.baseline = nil
	a.users = make(map[string]map[string]struct{})
	a.mu.Unlock()
}

// HandleAuth applies one log-on/log-off event, emitting or revoking the
// affected host's role-based reachability.
func (a *ATRBAC) HandleAuth(ev sensors.AuthEvent) {
	if _, known := a.roster.EnclaveOf[ev.Host]; !known {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ev.LoggedOn {
		set := a.users[ev.Host]
		if set == nil {
			set = make(map[string]struct{})
			a.users[ev.Host] = set
		}
		first := len(set) == 0
		set[ev.User] = struct{}{}
		if first {
			a.grantLocked(ev.Host)
		}
		return
	}
	set := a.users[ev.Host]
	if set == nil {
		return
	}
	delete(set, ev.User)
	if len(set) == 0 {
		delete(a.users, ev.Host)
		a.revokeLocked(ev.Host)
	}
}

// ActiveRules reports the number of dynamic pair rules currently emitted.
func (a *ATRBAC) ActiveRules() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pairRules)
}

// LoggedOnHosts reports how many hosts currently have at least one user.
func (a *ATRBAC) LoggedOnHosts() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.users)
}

// grantLocked emits host's role set: pairwise reachability with every
// *also-logged-on* enclave peer (both directions) and with every server.
func (a *ATRBAC) grantLocked(host string) {
	for _, peer := range a.roster.Peers(host) {
		if _, on := a.users[peer]; !on {
			continue
		}
		a.insertPairLocked(host, peer)
		a.insertPairLocked(peer, host)
	}
	for _, srv := range a.roster.Servers {
		if srv == host {
			continue
		}
		a.insertPairLocked(host, srv)
		a.insertPairLocked(srv, host)
	}
}

// revokeLocked withdraws every pair rule mentioning host; the Policy
// Manager's flush notifications remove any cached flow rules, cutting even
// in-progress flows.
func (a *ATRBAC) revokeLocked(host string) {
	for key, id := range a.pairRules {
		if key.src == host || key.dst == host {
			_ = a.pm.Revoke(id)
			delete(a.pairRules, key)
		}
	}
}

func (a *ATRBAC) insertPairLocked(src, dst string) {
	key := pairKey{src: src, dst: dst}
	if _, exists := a.pairRules[key]; exists {
		return
	}
	id, err := a.pm.Insert(allowHosts(a.name, src, dst))
	if err != nil {
		return
	}
	a.pairRules[key] = id
}
