package pdp

import (
	"fmt"

	"github.com/dfi-sdn/dfi/internal/core/policy"
)

// SRBAC implements the paper's static role-based access control condition
// (§V-B): each host may exchange flows with 1) every host in its own
// enclave and 2) every server, configured once and never changing. It
// demonstrates the class of policy conventional systems can already
// express, against which AT-RBAC is compared.
type SRBAC struct {
	pm     *policy.Manager
	name   string
	roster Roster
	ids    []policy.RuleID
}

// NewSRBAC registers the PDP with the Policy Manager at
// PriorityStaticRBAC.
func NewSRBAC(pm *policy.Manager, roster Roster) (*SRBAC, error) {
	s := &SRBAC{pm: pm, name: "s-rbac", roster: roster}
	if err := pm.RegisterPDP(s.name, PriorityStaticRBAC); err != nil {
		return nil, fmt.Errorf("s-rbac: %w", err)
	}
	return s, nil
}

// Name returns the PDP's registered name.
func (s *SRBAC) Name() string { return s.name }

// Install emits the full static policy. It returns the number of rules
// inserted.
func (s *SRBAC) Install() (int, error) {
	rules := s.compile()
	ids, err := insertAll(s.pm, rules)
	if err != nil {
		return 0, fmt.Errorf("s-rbac: %w", err)
	}
	s.ids = ids
	return len(ids), nil
}

// Uninstall revokes the static policy.
func (s *SRBAC) Uninstall() {
	for _, id := range s.ids {
		_ = s.pm.Revoke(id)
	}
	s.ids = nil
}

// compile expands the roster into ordered host-pair allow rules, exactly
// once per pair.
func (s *SRBAC) compile() []policy.Rule {
	type pair struct{ src, dst string }
	seen := make(map[pair]struct{})
	var rules []policy.Rule
	emit := func(src, dst string) {
		if src == dst {
			return
		}
		p := pair{src: src, dst: dst}
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		rules = append(rules, allowHosts(s.name, src, dst))
	}
	for _, h := range s.roster.Hosts() {
		for _, peer := range s.roster.Peers(h) {
			emit(h, peer)
		}
		for _, srv := range s.roster.Servers {
			emit(h, srv)
			emit(srv, h)
		}
	}
	return rules
}
