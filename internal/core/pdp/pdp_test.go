package pdp

import (
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/bus"
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/sensors"
)

func testRoster() Roster {
	return Roster{
		EnclaveOf: map[string]string{
			"a1": "alpha", "a2": "alpha", "a3": "alpha",
			"b1": "beta", "b2": "beta",
			"srv-ad": "servers", "srv-file": "servers",
		},
		Servers: []string{"srv-ad", "srv-file"},
		CoreServices: []ServiceEndpoint{
			{Host: "srv-ad", Proto: netpkt.ProtoUDP, Port: 53},
		},
	}
}

func hostFlow(src, dst string) *policy.FlowView {
	return &policy.FlowView{
		EtherType:  netpkt.EtherTypeIPv4,
		HasIPProto: true,
		IPProto:    netpkt.ProtoTCP,
		Src:        policy.EndpointAttrs{Host: src},
		Dst:        policy.EndpointAttrs{Host: dst},
	}
}

func TestRosterPeers(t *testing.T) {
	r := testRoster()
	peers := r.Peers("a1")
	if len(peers) != 2 || peers[0] != "a2" || peers[1] != "a3" {
		t.Fatalf("Peers(a1) = %v", peers)
	}
	if got := r.Peers("unknown"); got != nil {
		t.Fatalf("Peers(unknown) = %v", got)
	}
	if !r.IsServer("srv-ad") || r.IsServer("a1") {
		t.Fatal("IsServer wrong")
	}
	if got := len(r.Hosts()); got != 7 {
		t.Fatalf("Hosts = %d", got)
	}
}

func TestAllowAllEnableDisable(t *testing.T) {
	pm := policy.NewManager()
	a, err := NewAllowAll(pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Enable(); err != nil {
		t.Fatal(err)
	}
	if err := a.Enable(); err != nil { // idempotent
		t.Fatal(err)
	}
	if d := pm.Query(hostFlow("x", "y")); !d.Matched || d.Action != policy.ActionAllow {
		t.Fatalf("decision = %+v", d)
	}
	if err := a.Disable(); err != nil {
		t.Fatal(err)
	}
	if d := pm.Query(hostFlow("x", "y")); d.Matched {
		t.Fatalf("still matched after disable: %+v", d)
	}
}

func TestSRBACReachability(t *testing.T) {
	pm := policy.NewManager()
	s, err := NewSRBAC(pm, testRoster())
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Install()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rules installed")
	}
	tests := []struct {
		src, dst string
		allow    bool
	}{
		{src: "a1", dst: "a2", allow: true},  // same enclave
		{src: "a1", dst: "b1", allow: false}, // cross enclave
		{src: "a1", dst: "srv-ad", allow: true},
		{src: "srv-ad", dst: "b2", allow: true},
		{src: "srv-ad", dst: "srv-file", allow: true},
		{src: "b1", dst: "b2", allow: true},
	}
	for _, tt := range tests {
		d := pm.Query(hostFlow(tt.src, tt.dst))
		if got := d.Matched && d.Action == policy.ActionAllow; got != tt.allow {
			t.Errorf("%s->%s allowed=%v, want %v", tt.src, tt.dst, got, tt.allow)
		}
	}
	// Rules never change once installed: that is the point of S-RBAC.
	before := pm.Len()
	s.Uninstall()
	if pm.Len() != 0 {
		t.Fatalf("uninstall left %d rules of %d", pm.Len(), before)
	}
}

func TestSRBACNoDuplicateRules(t *testing.T) {
	pm := policy.NewManager()
	s, err := NewSRBAC(pm, testRoster())
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Install()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range pm.Rules() {
		key := r.Src.Host + "->" + r.Dst.Host
		if seen[key] {
			t.Fatalf("duplicate rule for %s", key)
		}
		seen[key] = true
	}
	if len(seen) != n {
		t.Fatalf("rule count mismatch: %d vs %d", len(seen), n)
	}
}

func atRBACEnv(t *testing.T) (*policy.Manager, *ATRBAC) {
	t.Helper()
	pm := policy.NewManager()
	a, err := NewATRBAC(pm, testRoster())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(nil); err != nil {
		t.Fatal(err)
	}
	return pm, a
}

func TestATRBACPairwiseGating(t *testing.T) {
	pm, a := atRBACEnv(t)

	// No users: department flows denied; servers unreachable over SMB.
	if d := pm.Query(hostFlow("a1", "a2")); d.Matched && d.Action == policy.ActionAllow {
		t.Fatal("peer flow allowed with no users")
	}
	if d := pm.Query(hostFlow("a1", "srv-file")); d.Matched && d.Action == policy.ActionAllow {
		t.Fatal("server flow allowed with no users")
	}

	// a1's user logs on: servers open for a1, but a2 still needs its own.
	a.HandleAuth(sensors.AuthEvent{User: "u1", Host: "a1", LoggedOn: true})
	if d := pm.Query(hostFlow("a1", "srv-file")); !d.Matched || d.Action != policy.ActionAllow {
		t.Fatal("logged-on host cannot reach server")
	}
	if d := pm.Query(hostFlow("a1", "a2")); d.Matched && d.Action == policy.ActionAllow {
		t.Fatal("peer flow allowed while peer has no user")
	}

	// a2 logs on: both directions open.
	a.HandleAuth(sensors.AuthEvent{User: "u2", Host: "a2", LoggedOn: true})
	for _, pair := range [][2]string{{"a1", "a2"}, {"a2", "a1"}} {
		if d := pm.Query(hostFlow(pair[0], pair[1])); !d.Matched || d.Action != policy.ActionAllow {
			t.Fatalf("%s->%s denied with both logged on", pair[0], pair[1])
		}
	}

	// a2 logs off: both directions close again.
	a.HandleAuth(sensors.AuthEvent{User: "u2", Host: "a2", LoggedOn: false})
	if d := pm.Query(hostFlow("a1", "a2")); d.Matched && d.Action == policy.ActionAllow {
		t.Fatal("flow still allowed after peer logoff")
	}
	if d := pm.Query(hostFlow("a1", "srv-file")); !d.Matched || d.Action != policy.ActionAllow {
		t.Fatal("a1's own grants lost on a2's logoff")
	}
}

func TestATRBACMultipleUsersPerHost(t *testing.T) {
	pm, a := atRBACEnv(t)
	a.HandleAuth(sensors.AuthEvent{User: "u1", Host: "a1", LoggedOn: true})
	a.HandleAuth(sensors.AuthEvent{User: "u9", Host: "a1", LoggedOn: true})
	a.HandleAuth(sensors.AuthEvent{User: "u1", Host: "a1", LoggedOn: false})
	// u9 is still on: grants must survive.
	if d := pm.Query(hostFlow("a1", "srv-file")); !d.Matched || d.Action != policy.ActionAllow {
		t.Fatal("grants revoked while another user is still logged on")
	}
	a.HandleAuth(sensors.AuthEvent{User: "u9", Host: "a1", LoggedOn: false})
	if d := pm.Query(hostFlow("a1", "srv-file")); d.Matched && d.Action == policy.ActionAllow {
		t.Fatal("grants survive after last logoff")
	}
	if a.LoggedOnHosts() != 0 || a.ActiveRules() != 0 {
		t.Fatalf("state leak: hosts=%d rules=%d", a.LoggedOnHosts(), a.ActiveRules())
	}
}

func TestATRBACCoreServicesPortScoped(t *testing.T) {
	pm, _ := atRBACEnv(t)
	// DNS (UDP 53) to srv-ad allowed with nobody logged on.
	port := uint16(53)
	dns := &policy.FlowView{
		EtherType:  netpkt.EtherTypeIPv4,
		HasIPProto: true,
		IPProto:    netpkt.ProtoUDP,
		Src:        policy.EndpointAttrs{Host: "a1"},
		Dst:        policy.EndpointAttrs{Host: "srv-ad", HasPort: true, Port: port},
	}
	if d := pm.Query(dns); !d.Matched || d.Action != policy.ActionAllow {
		t.Fatal("DNS to core service denied")
	}
	// SMB (TCP 445) to the same host is not covered.
	smb := hostFlow("a1", "srv-ad")
	smb.Dst.HasPort = true
	smb.Dst.Port = 445
	if d := pm.Query(smb); d.Matched && d.Action == policy.ActionAllow {
		t.Fatal("SMB to core-service host allowed with no user")
	}
}

func TestATRBACServersStaticallyConnected(t *testing.T) {
	pm, _ := atRBACEnv(t)
	if d := pm.Query(hostFlow("srv-ad", "srv-file")); !d.Matched || d.Action != policy.ActionAllow {
		t.Fatal("server↔server flow denied")
	}
}

func TestATRBACUnknownHostIgnored(t *testing.T) {
	_, a := atRBACEnv(t)
	a.HandleAuth(sensors.AuthEvent{User: "ghost", Host: "not-in-roster", LoggedOn: true})
	if a.LoggedOnHosts() != 0 {
		t.Fatal("unknown host tracked")
	}
}

func TestATRBACViaBus(t *testing.T) {
	pm := policy.NewManager()
	a, err := NewATRBAC(pm, testRoster())
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	defer b.Close()
	if err := a.Start(b); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	if err := b.Publish(bus.Event{Topic: sensors.TopicAuth,
		Payload: sensors.AuthEvent{User: "u1", Host: "a1", LoggedOn: true}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.LoggedOnHosts() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.LoggedOnHosts() != 1 {
		t.Fatal("bus-delivered auth event not applied")
	}
}

func TestQuarantineOverridesEverything(t *testing.T) {
	pm := policy.NewManager()
	allowAll, err := NewAllowAll(pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := allowAll.Enable(); err != nil {
		t.Fatal(err)
	}
	q, err := NewQuarantine(pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Isolate("a1"); err != nil {
		t.Fatal(err)
	}
	if !q.Quarantined("a1") {
		t.Fatal("not quarantined")
	}
	// Both directions denied despite allow-all.
	for _, f := range []*policy.FlowView{hostFlow("a1", "b1"), hostFlow("b1", "a1")} {
		if d := pm.Query(f); d.Action != policy.ActionDeny {
			t.Fatalf("quarantined flow decision = %+v", d)
		}
	}
	// Unrelated hosts are untouched.
	if d := pm.Query(hostFlow("b1", "b2")); d.Action != policy.ActionAllow {
		t.Fatalf("unrelated flow = %+v", d)
	}
	if err := q.Release("a1"); err != nil {
		t.Fatal(err)
	}
	if d := pm.Query(hostFlow("a1", "b1")); d.Action != policy.ActionAllow {
		t.Fatalf("post-release flow = %+v", d)
	}
	// Idempotency.
	if err := q.Release("a1"); err != nil {
		t.Fatal(err)
	}
	if err := q.Isolate("a1"); err != nil {
		t.Fatal(err)
	}
	if err := q.Isolate("a1"); err != nil {
		t.Fatal(err)
	}
}

func TestATRBACStopRevokesEverything(t *testing.T) {
	pm := policy.NewManager()
	a, err := NewATRBAC(pm, testRoster())
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	defer b.Close()
	if err := a.Start(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(b); err != nil { // idempotent
		t.Fatal(err)
	}
	a.HandleAuth(sensors.AuthEvent{User: "u1", Host: "a1", LoggedOn: true})
	if pm.Len() == 0 {
		t.Fatal("no rules before stop")
	}
	a.Stop()
	if pm.Len() != 0 {
		t.Fatalf("%d rules survived Stop", pm.Len())
	}
	// Events after Stop are ignored (no subscription, no panic).
	a.HandleAuth(sensors.AuthEvent{User: "u1", Host: "a1", LoggedOn: false})
}

func TestQuarantineStopLeavesIsolationsInForce(t *testing.T) {
	pm := policy.NewManager()
	q, err := NewQuarantine(pm)
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	defer b.Close()
	if err := q.Start(b); err != nil {
		t.Fatal(err)
	}
	if err := q.Isolate("h1"); err != nil {
		t.Fatal(err)
	}
	q.Stop()
	if !q.Quarantined("h1") {
		t.Fatal("Stop lifted the quarantine")
	}
	if d := pm.Query(hostFlow("h1", "x")); d.Action != policy.ActionDeny {
		t.Fatal("deny rules lost on Stop")
	}
}

func TestQuarantineNilBusStart(t *testing.T) {
	pm := policy.NewManager()
	q, err := NewQuarantine(pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Start(nil); err != nil {
		t.Fatal(err)
	}
	q.Stop()
}

func TestDuplicatePDPRegistrationFails(t *testing.T) {
	pm := policy.NewManager()
	if _, err := NewAllowAll(pm); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAllowAll(pm); err == nil {
		t.Fatal("second allow-all registration accepted")
	}
	if a, err := NewATRBAC(pm, testRoster()); err != nil || a.Name() != "at-rbac" {
		t.Fatalf("atrbac: %v", err)
	}
	if s, err := NewSRBAC(pm, testRoster()); err != nil || s.Name() != "s-rbac" {
		t.Fatalf("srbac: %v", err)
	}
	if q, err := NewQuarantine(pm); err != nil || q.Name() != "quarantine" {
		t.Fatalf("quarantine: %v", err)
	}
}

func TestQuarantineViaBusEvents(t *testing.T) {
	pm := policy.NewManager()
	q, err := NewQuarantine(pm)
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	defer b.Close()
	if err := q.Start(b); err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	if err := b.Publish(bus.Event{Topic: sensors.TopicCompromise,
		Payload: sensors.CompromiseEvent{Host: "h9"}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !q.Quarantined("h9") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !q.Quarantined("h9") {
		t.Fatal("compromise event not applied")
	}
	if err := b.Publish(bus.Event{Topic: sensors.TopicCompromise,
		Payload: sensors.CompromiseEvent{Host: "h9", Cleared: true}}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for q.Quarantined("h9") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q.Quarantined("h9") {
		t.Fatal("clear event not applied")
	}
}
