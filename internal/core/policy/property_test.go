package policy

import (
	"math/rand"
	"testing"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// randomSpec builds an endpoint spec with a random subset of fields.
func randomSpec(rng *rand.Rand) EndpointSpec {
	var e EndpointSpec
	users := []string{"alice", "bob", "carol"}
	hosts := []string{"h1", "h2", "h3"}
	if rng.Intn(3) == 0 {
		e.User = users[rng.Intn(len(users))]
	}
	if rng.Intn(3) == 0 {
		e.Host = hosts[rng.Intn(len(hosts))]
	}
	if rng.Intn(3) == 0 {
		ip := netpkt.IPv4FromUint32(0x0a000000 | uint32(rng.Intn(4)))
		e.IP = &ip
	}
	if rng.Intn(3) == 0 {
		port := uint16(rng.Intn(3) + 1)
		e.Port = &port
	}
	if rng.Intn(3) == 0 {
		mac := netpkt.MAC{2, 0, 0, 0, 0, byte(rng.Intn(3) + 1)}
		e.MAC = &mac
	}
	if rng.Intn(4) == 0 {
		sp := uint32(rng.Intn(3) + 1)
		e.SwitchPort = &sp
	}
	if rng.Intn(4) == 0 {
		d := uint64(rng.Intn(3) + 1)
		e.DPID = &d
	}
	return e
}

func randomRule(rng *rand.Rand) Rule {
	r := Rule{Action: ActionAllow}
	if rng.Intn(2) == 0 {
		r.Action = ActionDeny
	}
	if rng.Intn(3) == 0 {
		et := netpkt.EtherTypeIPv4
		r.Props.EtherType = &et
		if rng.Intn(2) == 0 {
			p := []uint8{netpkt.ProtoTCP, netpkt.ProtoUDP}[rng.Intn(2)]
			r.Props.IPProto = &p
		}
	}
	r.Src = randomSpec(rng)
	r.Dst = randomSpec(rng)
	return r
}

// randomFlow builds a flow drawn from the same small value universe, so
// matches are reasonably likely.
func randomFlow(rng *rand.Rand) *FlowView {
	users := [][]string{nil, {"alice"}, {"bob"}, {"alice", "carol"}}
	hosts := []string{"", "h1", "h2", "h3"}
	f := &FlowView{
		EtherType:  netpkt.EtherTypeIPv4,
		HasIPProto: true,
		IPProto:    []uint8{netpkt.ProtoTCP, netpkt.ProtoUDP}[rng.Intn(2)],
	}
	mk := func() EndpointAttrs {
		return EndpointAttrs{
			Users:         users[rng.Intn(len(users))],
			Host:          hosts[rng.Intn(len(hosts))],
			HasIP:         true,
			IP:            netpkt.IPv4FromUint32(0x0a000000 | uint32(rng.Intn(4))),
			HasPort:       true,
			Port:          uint16(rng.Intn(3) + 1),
			MAC:           netpkt.MAC{2, 0, 0, 0, 0, byte(rng.Intn(3) + 1)},
			HasSwitchPort: true,
			SwitchPort:    uint32(rng.Intn(3) + 1),
			HasDPID:       true,
			DPID:          uint64(rng.Intn(3) + 1),
		}
	}
	f.Src = mk()
	f.Dst = mk()
	return f
}

func TestPropertyOverlapsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := randomRule(rng), randomRule(rng)
		if a.Overlaps(&b) != b.Overlaps(&a) {
			t.Fatalf("Overlaps not symmetric:\n%s\n%s", a.String(), b.String())
		}
		if !a.Overlaps(&a) {
			t.Fatalf("Overlaps not reflexive: %s", a.String())
		}
	}
}

// TestPropertyCommonMatchImpliesOverlap: if both rules match the same flow,
// they must overlap — the soundness property the Policy Manager's conflict
// detection depends on.
func TestPropertyCommonMatchImpliesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	found := 0
	for i := 0; i < 50000 && found < 1000; i++ {
		a, b := randomRule(rng), randomRule(rng)
		f := randomFlow(rng)
		if !a.Matches(f) || !b.Matches(f) {
			continue
		}
		found++
		if !a.Overlaps(&b) {
			t.Fatalf("rules both match a flow but do not overlap:\na=%s\nb=%s", a.String(), b.String())
		}
	}
	if found == 0 {
		t.Fatal("no common-match pairs generated")
	}
}

// TestPropertyWildcardRuleMatchesEverything: the empty rule matches any
// flow (the baseline PDP relies on it).
func TestPropertyWildcardRuleMatchesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wildcard := Rule{Action: ActionAllow}
	for i := 0; i < 2000; i++ {
		f := randomFlow(rng)
		if !wildcard.Matches(f) {
			t.Fatalf("wildcard rule missed flow %+v", f)
		}
	}
}

// TestPropertyQueryDeterministic: repeated queries of an unchanged database
// return identical decisions even though map iteration order varies.
func TestPropertyQueryDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewManager()
	if err := m.RegisterPDP("p1", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterPDP("p2", 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r := randomRule(rng)
		r.PDP = []string{"p1", "p2"}[rng.Intn(2)]
		if _, err := m.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		f := randomFlow(rng)
		first := m.Query(f)
		for j := 0; j < 5; j++ {
			again := m.Query(f)
			if again.Action != first.Action || again.Matched != first.Matched {
				t.Fatalf("non-deterministic decision for %+v: %+v vs %+v", f, first, again)
			}
			if first.Matched && again.Rule.Priority != first.Rule.Priority {
				t.Fatalf("non-deterministic priority: %+v vs %+v", first.Rule, again.Rule)
			}
		}
		// The winner must actually match and be maximal.
		if first.Matched {
			for _, r := range m.Rules() {
				if r.Matches(f) && r.Priority > first.Rule.Priority {
					t.Fatalf("query returned non-maximal rule %s over %s", first.Rule.String(), r.String())
				}
			}
		}
	}
}
