// Package policy implements DFI's policy model and Policy Manager
// (paper §III-B): rules of the form (Action, Flow Properties, Source,
// Destination) written over high-level identifiers with wildcards, emitted
// and revoked by Policy Decision Points, stored with per-PDP priorities,
// checked for conflicts, and queried per flow with a default-deny fallback.
package policy

import (
	"fmt"
	"strings"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// Action is a policy rule's disposition for matching flows.
type Action uint8

// Policy actions.
const (
	ActionAllow Action = iota + 1
	ActionDeny
)

// String renders the action for logs and policy listings.
func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "Allow"
	case ActionDeny:
		return "Deny"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// RuleID uniquely identifies an inserted policy rule; PDPs use it to revoke
// the rule later, and the PCP tags derived flow rules with it (as the
// OpenFlow cookie) so they can be flushed when the rule changes.
type RuleID uint64

// DefaultDenyID is the reserved id of the implicit default-deny catch-all:
// flow rules installed for flows that matched no policy carry this id as
// their cookie, and it appears in flush notifications when a new Allow rule
// could supersede previously-denied flows.
const DefaultDenyID RuleID = 0

// FlowProperties constrains the traffic a rule applies to. Nil fields are
// wildcards (the paper's (∗, ∗)).
type FlowProperties struct {
	EtherType *uint16
	IPProto   *uint8
}

// String renders the properties for policy listings.
func (p FlowProperties) String() string {
	et, ip := "*", "*"
	if p.EtherType != nil {
		et = fmt.Sprintf("0x%04x", *p.EtherType)
	}
	if p.IPProto != nil {
		ip = fmt.Sprintf("%d", *p.IPProto)
	}
	return "(" + et + ", " + ip + ")"
}

// EndpointSpec describes one end of the flows a rule matches, over the
// paper's identifier tuple: username, hostname, IP address, TCP/UDP port,
// MAC address, switch port and switch DPID. Zero/nil fields are wildcards.
type EndpointSpec struct {
	User       string
	Host       string
	IP         *netpkt.IPv4
	Port       *uint16
	MAC        *netpkt.MAC
	SwitchPort *uint32
	DPID       *uint64
}

// String renders the spec in the paper's tuple notation.
func (e EndpointSpec) String() string {
	fields := make([]string, 0, 7)
	str := func(s string) string {
		if s == "" {
			return "*"
		}
		return s
	}
	fields = append(fields, str(e.User), str(e.Host))
	if e.IP != nil {
		fields = append(fields, e.IP.String())
	} else {
		fields = append(fields, "*")
	}
	if e.Port != nil {
		fields = append(fields, fmt.Sprintf("%d", *e.Port))
	} else {
		fields = append(fields, "*")
	}
	if e.MAC != nil {
		fields = append(fields, e.MAC.String())
	} else {
		fields = append(fields, "*")
	}
	if e.SwitchPort != nil {
		fields = append(fields, fmt.Sprintf("%d", *e.SwitchPort))
	} else {
		fields = append(fields, "*")
	}
	if e.DPID != nil {
		fields = append(fields, fmt.Sprintf("%#x", *e.DPID))
	} else {
		fields = append(fields, "*")
	}
	return "(" + strings.Join(fields, ", ") + ")"
}

// Rule is one policy rule emitted by a PDP.
type Rule struct {
	// ID is assigned by the Policy Manager at insert. Compiled policy
	// sources keep ids stable across recompiles: a lowered rule whose
	// definition is unchanged is left in place rather than revoked and
	// re-inserted, so its derived flow rules (cookie-tagged with the id)
	// survive the recompile untouched.
	ID RuleID
	// PDP names the emitting Policy Decision Point; the rule inherits
	// that PDP's priority.
	PDP      string
	Priority int
	Action   Action
	Props    FlowProperties
	Src      EndpointSpec
	Dst      EndpointSpec
	// Origin is an optional provenance tag set by whoever emitted the
	// rule — the policy-language compiler records the source line and the
	// group member or template instance that produced the rule. It is
	// metadata only: matching, overlap checks and the delta compiler's
	// rule identity ignore it.
	Origin string
}

// String renders the rule in the paper's tuple notation.
func (r *Rule) String() string {
	return fmt.Sprintf("#%d[%s p%d] (%s, %s, %s, %s)",
		r.ID, r.PDP, r.Priority, r.Action, r.Props, r.Src, r.Dst)
}

// EndpointAttrs is the enriched identity of one end of an observed flow:
// the low-level identifiers seen in the packet plus the high-level
// identifiers the Entity Resolution Manager associated with them.
type EndpointAttrs struct {
	// Users holds every user currently bound to the endpoint's host
	// (hosts can have multiple logged-on users).
	Users []string
	Host  string
	HasIP bool
	IP    netpkt.IPv4
	// HasPort is set for TCP/UDP flows.
	HasPort bool
	Port    uint16
	MAC     netpkt.MAC
	// SwitchPort/DPID locate the endpoint's attachment when known (always
	// known for the source of a packet-in; for the destination only after
	// the MAC has been learned).
	HasSwitchPort bool
	SwitchPort    uint32
	HasDPID       bool
	DPID          uint64
}

// FlowView is the fully enriched description of one observed flow that the
// PCP queries policy with.
type FlowView struct {
	EtherType  uint16
	HasIPProto bool
	IPProto    uint8
	Src        EndpointAttrs
	Dst        EndpointAttrs
}

// Matches reports whether the rule applies to the flow: flow properties and
// both endpoint specs must be satisfied.
func (r *Rule) Matches(f *FlowView) bool {
	if r.Props.EtherType != nil && *r.Props.EtherType != f.EtherType {
		return false
	}
	if r.Props.IPProto != nil && (!f.HasIPProto || *r.Props.IPProto != f.IPProto) {
		return false
	}
	return r.Src.matches(&f.Src) && r.Dst.matches(&f.Dst)
}

func (e *EndpointSpec) matches(a *EndpointAttrs) bool {
	if e.User != "" {
		found := false
		for _, u := range a.Users {
			if u == e.User {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if e.Host != "" && e.Host != a.Host {
		return false
	}
	if e.IP != nil && (!a.HasIP || *e.IP != a.IP) {
		return false
	}
	if e.Port != nil && (!a.HasPort || *e.Port != a.Port) {
		return false
	}
	if e.MAC != nil && *e.MAC != a.MAC {
		return false
	}
	if e.SwitchPort != nil && (!a.HasSwitchPort || *e.SwitchPort != a.SwitchPort) {
		return false
	}
	if e.DPID != nil && (!a.HasDPID || *e.DPID != a.DPID) {
		return false
	}
	return true
}

// overlaps reports whether two specs can match a common flow endpoint:
// every field pair is compatible when either side is a wildcard or the
// values are equal. Used for conflict detection (paper §III-B).
//
// User constraints are always treated as compatible, even with different
// names: a host can have several logged-on users simultaneously, so rules
// over two different users can both match one flow endpoint. Every other
// field is single-valued per packet.
func (e *EndpointSpec) overlaps(o *EndpointSpec) bool {
	if e.Host != "" && o.Host != "" && e.Host != o.Host {
		return false
	}
	if e.IP != nil && o.IP != nil && *e.IP != *o.IP {
		return false
	}
	if e.Port != nil && o.Port != nil && *e.Port != *o.Port {
		return false
	}
	if e.MAC != nil && o.MAC != nil && *e.MAC != *o.MAC {
		return false
	}
	if e.SwitchPort != nil && o.SwitchPort != nil && *e.SwitchPort != *o.SwitchPort {
		return false
	}
	if e.DPID != nil && o.DPID != nil && *e.DPID != *o.DPID {
		return false
	}
	return true
}

// Overlaps reports whether two rules can both match some flow.
func (r *Rule) Overlaps(o *Rule) bool {
	if r.Props.EtherType != nil && o.Props.EtherType != nil && *r.Props.EtherType != *o.Props.EtherType {
		return false
	}
	if r.Props.IPProto != nil && o.Props.IPProto != nil && *r.Props.IPProto != *o.Props.IPProto {
		return false
	}
	return r.Src.overlaps(&o.Src) && r.Dst.overlaps(&o.Dst)
}
