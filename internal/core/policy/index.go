package policy

import "github.com/dfi-sdn/dfi/internal/netpkt"

// Indexed matching inside a snapshot. Each priority level is one bucket;
// inside a bucket every rule lives in exactly one candidate list, chosen by
// the first exact-valued field it constrains (in a fixed selectivity
// order), with rules constraining none of the indexed fields in a small
// residual list. A query probes each index with the flow's concrete values
// and runs the full Matches check only on the candidates, so the cost is
// O(candidates that share a concrete identifier with the flow), not
// O(rules) — the difference between a 10k-rule linear scan and a handful
// of hash probes per priority level.
//
// The indexed fields are the cheap, high-cardinality discriminators: the
// endpoint IPs, MACs, users and hostnames, plus EtherType for the
// L2-protocol rules. Ports, switch ports, DPIDs and IP protocol stay in
// the residual list — they are either low-cardinality or rare as a rule's
// only constraint, and the residual list keeps correctness for them.
type bucket struct {
	priority int

	bySrcIP   map[netpkt.IPv4][]*Rule
	byDstIP   map[netpkt.IPv4][]*Rule
	bySrcMAC  map[netpkt.MAC][]*Rule
	byDstMAC  map[netpkt.MAC][]*Rule
	bySrcUser map[string][]*Rule
	byDstUser map[string][]*Rule
	bySrcHost map[string][]*Rule
	byDstHost map[string][]*Rule
	byEther   map[uint16][]*Rule

	residual []*Rule
}

// buildBucket indexes one priority level's rules.
func buildBucket(priority int, rules []*Rule) bucket {
	b := bucket{
		priority:  priority,
		bySrcIP:   map[netpkt.IPv4][]*Rule{},
		byDstIP:   map[netpkt.IPv4][]*Rule{},
		bySrcMAC:  map[netpkt.MAC][]*Rule{},
		byDstMAC:  map[netpkt.MAC][]*Rule{},
		bySrcUser: map[string][]*Rule{},
		byDstUser: map[string][]*Rule{},
		bySrcHost: map[string][]*Rule{},
		byDstHost: map[string][]*Rule{},
		byEther:   map[uint16][]*Rule{},
	}
	for _, r := range rules {
		switch {
		case r.Src.IP != nil:
			b.bySrcIP[*r.Src.IP] = append(b.bySrcIP[*r.Src.IP], r)
		case r.Dst.IP != nil:
			b.byDstIP[*r.Dst.IP] = append(b.byDstIP[*r.Dst.IP], r)
		case r.Src.MAC != nil:
			b.bySrcMAC[*r.Src.MAC] = append(b.bySrcMAC[*r.Src.MAC], r)
		case r.Dst.MAC != nil:
			b.byDstMAC[*r.Dst.MAC] = append(b.byDstMAC[*r.Dst.MAC], r)
		case r.Src.User != "":
			b.bySrcUser[r.Src.User] = append(b.bySrcUser[r.Src.User], r)
		case r.Dst.User != "":
			b.byDstUser[r.Dst.User] = append(b.byDstUser[r.Dst.User], r)
		case r.Src.Host != "":
			b.bySrcHost[r.Src.Host] = append(b.bySrcHost[r.Src.Host], r)
		case r.Dst.Host != "":
			b.byDstHost[r.Dst.Host] = append(b.byDstHost[r.Dst.Host], r)
		case r.Props.EtherType != nil:
			b.byEther[*r.Props.EtherType] = append(b.byEther[*r.Props.EtherType], r)
		default:
			b.residual = append(b.residual, r)
		}
	}
	return b
}

// match returns the bucket's winning rule for the flow, or nil. All
// candidates share the bucket's priority, so the only tie-break is
// Deny-wins; a matching Deny short-circuits the remaining probes.
//
//dfi:hotpath
func (b *bucket) match(f *FlowView) *Rule {
	var best *Rule
	// The closure never escapes match, so it stays on the stack (the
	// BenchmarkPolicyQuery 0 B/op results prove it).
	scan := func(candidates []*Rule) bool { //dfi:ignore hotpathalloc
		for _, r := range candidates {
			if !r.Matches(f) {
				continue
			}
			if r.Action == ActionDeny {
				best = r
				return true
			}
			if best == nil {
				best = r
			}
		}
		return false
	}
	// A rule indexed under a concrete value can only match flows carrying
	// that value, so probing with the flow's own identifiers reaches every
	// possible candidate; absent identifiers (no IP, no users) can only be
	// matched by rules that don't constrain them, which live elsewhere.
	if f.Src.HasIP {
		if scan(b.bySrcIP[f.Src.IP]) {
			return best
		}
	}
	if f.Dst.HasIP {
		if scan(b.byDstIP[f.Dst.IP]) {
			return best
		}
	}
	if scan(b.bySrcMAC[f.Src.MAC]) {
		return best
	}
	if scan(b.byDstMAC[f.Dst.MAC]) {
		return best
	}
	for _, u := range f.Src.Users {
		if scan(b.bySrcUser[u]) {
			return best
		}
	}
	for _, u := range f.Dst.Users {
		if scan(b.byDstUser[u]) {
			return best
		}
	}
	if f.Src.Host != "" {
		if scan(b.bySrcHost[f.Src.Host]) {
			return best
		}
	}
	if f.Dst.Host != "" {
		if scan(b.byDstHost[f.Dst.Host]) {
			return best
		}
	}
	if scan(b.byEther[f.EtherType]) {
		return best
	}
	scan(b.residual)
	return best
}
