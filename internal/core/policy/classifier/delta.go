package classifier

import (
	"sort"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// Delta is the rule-level difference between two compiled epochs. Changed
// holds the new version of rules whose id survived but whose definition
// (priority, action, properties or endpoints) differs; the old versions are
// reachable through the previous epoch's snapshot. Slices are ordered by
// rule id.
type Delta struct {
	// From is the previous compiled epoch (0 when compiling from nothing).
	From uint64
	// To is the epoch compiled to.
	To uint64

	Added   []*policy.Rule
	Removed []*policy.Rule
	Changed []*policy.Rule
}

// Empty reports a delta with no rule changes.
func (d *Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// Size returns the number of rules the delta touches.
func (d *Delta) Size() int { return len(d.Added) + len(d.Removed) + len(d.Changed) }

// incrementalDivisor bounds how large a delta (relative to the rule count)
// is still applied copy-on-write: deltas touching at least 1/4 of the rules
// rebuild from scratch, which is cheaper than copying most of the structure
// piecemeal.
const incrementalDivisor = 4

// CompileNext compiles the structure for snap, reusing prev where possible,
// and returns the rule-level delta between the two epochs. A nil prev
// compiles from scratch and reports every rule as Added. When prev is
// already at (or past) snap's epoch the delta is empty and prev is returned
// unchanged — callers serialize CompileNext per consumer, so out-of-order
// flush notifications collapse into no-ops.
//
// The diff is cheap by construction: snapshots share *Rule pointers for
// rules untouched by a mutation, so pointer equality settles the common
// case and deep comparison runs only for re-inserted ids.
func CompileNext(prev *Compiled, snap *policy.Snapshot) (*Compiled, Delta) {
	if prev == nil {
		all := snap.All()
		d := Delta{To: snap.Epoch(), Added: make([]*policy.Rule, len(all))}
		copy(d.Added, all)
		return Compile(snap), d
	}
	d := Delta{From: prev.snap.Epoch(), To: snap.Epoch()}
	if prev.snap.Epoch() >= snap.Epoch() {
		d.To = prev.snap.Epoch()
		return prev, d
	}
	for _, r := range snap.All() {
		old := prev.snap.Get(r.ID)
		switch {
		case old == nil:
			d.Added = append(d.Added, r)
		case old == r:
			// Shared pointer: unchanged.
		case !ruleEqual(old, r):
			d.Changed = append(d.Changed, r)
		}
	}
	for _, old := range prev.snap.All() {
		if snap.Get(old.ID) == nil {
			d.Removed = append(d.Removed, old)
		}
	}
	if d.Empty() {
		// Epoch advanced without a rule change (cannot happen through the
		// Manager today); republish the same structure at the new snapshot.
		next := *prev
		next.snap = snap
		return &next, d
	}
	if d.Size()*incrementalDivisor >= snap.Len() {
		return Compile(snap), d
	}
	return applyDelta(prev, snap, &d), d
}

// ruleEqual compares the rule definition fields a compiled structure (or a
// switch's derived state) depends on.
func ruleEqual(a, b *policy.Rule) bool {
	if a.Priority != b.Priority || a.Action != b.Action || a.PDP != b.PDP {
		return false
	}
	if !ptrEq(a.Props.EtherType, b.Props.EtherType) || !ptrEq(a.Props.IPProto, b.Props.IPProto) {
		return false
	}
	return specEqual(&a.Src, &b.Src) && specEqual(&a.Dst, &b.Dst)
}

func specEqual(a, b *policy.EndpointSpec) bool {
	return a.User == b.User && a.Host == b.Host &&
		ptrEq(a.IP, b.IP) && ptrEq(a.Port, b.Port) && ptrEq(a.MAC, b.MAC) &&
		ptrEq(a.SwitchPort, b.SwitchPort) && ptrEq(a.DPID, b.DPID)
}

func ptrEq[T comparable](a, b *T) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// applyDelta builds the structure for snap by copy-on-write over prev:
// only the levels, tuples, key slots and index entries the delta touches
// are copied; everything else is shared. prev stays valid for concurrent
// readers throughout.
func applyDelta(prev *Compiled, snap *policy.Snapshot, d *Delta) *Compiled {
	next := &Compiled{
		snap:        snap,
		levels:      make([]*level, len(prev.levels)),
		allowByUser: cloneIndex(prev.allowByUser),
		allowByHost: cloneIndex(prev.allowByHost),
		allowByIP:   cloneIndex(prev.allowByIP),
		allowByMAC:  cloneIndex(prev.allowByMAC),
	}
	copy(next.levels, prev.levels)
	owned := ownedSet{levels: map[*level]bool{}, tuples: map[*tuple]bool{}}

	for _, r := range d.Removed {
		next.remove(&owned, r)
	}
	for _, r := range d.Changed {
		next.remove(&owned, prev.snap.Get(r.ID))
	}
	for _, r := range d.Changed {
		next.add(&owned, r)
	}
	for _, r := range d.Added {
		next.add(&owned, r)
	}
	return next
}

func cloneIndex[K comparable](m map[K][]*policy.Rule) map[K][]*policy.Rule {
	out := make(map[K][]*policy.Rule, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ownedSet tracks which containers the new epoch already owns (freshly
// copied or created), so repeated touches mutate in place.
type ownedSet struct {
	levels map[*level]bool
	tuples map[*tuple]bool
}

// ownLevel returns an owned level for the priority, copying the shared one
// on first touch, creating one if absent (keeping priority-descending
// order), or nil if absent and !create.
func (c *Compiled) ownLevel(o *ownedSet, priority int, create bool) *level {
	for i, lv := range c.levels {
		if lv.priority != priority {
			continue
		}
		if o.levels[lv] {
			return lv
		}
		cp := &level{priority: priority, tuples: make([]*tuple, len(lv.tuples))}
		copy(cp.tuples, lv.tuples)
		c.levels[i] = cp
		o.levels[cp] = true
		return cp
	}
	if !create {
		return nil
	}
	lv := &level{priority: priority}
	o.levels[lv] = true
	i := sort.Search(len(c.levels), func(i int) bool { return c.levels[i].priority < priority })
	c.levels = append(c.levels, nil)
	copy(c.levels[i+1:], c.levels[i:])
	c.levels[i] = lv
	return lv
}

// ownTuple is ownLevel's per-tuple counterpart within an owned level.
func ownTuple(o *ownedSet, lv *level, mask fieldMask, create bool) *tuple {
	for i, tp := range lv.tuples {
		if tp.mask != mask {
			continue
		}
		if o.tuples[tp] {
			return tp
		}
		cp := &tuple{mask: mask, rules: make(map[tupleKey][]*policy.Rule, len(tp.rules))}
		for k, v := range tp.rules {
			cp.rules[k] = v
		}
		lv.tuples[i] = cp
		o.tuples[cp] = true
		return cp
	}
	if !create {
		return nil
	}
	tp := &tuple{mask: mask, rules: make(map[tupleKey][]*policy.Rule)}
	o.tuples[tp] = true
	lv.tuples = append(lv.tuples, tp)
	return tp
}

// remove deletes one rule version from the structure, pruning emptied key
// slots, tuples and levels.
func (c *Compiled) remove(o *ownedSet, r *policy.Rule) {
	if r == nil {
		return
	}
	lv := c.ownLevel(o, r.Priority, false)
	if lv != nil {
		mask, key := ruleKey(r)
		if tp := ownTuple(o, lv, mask, false); tp != nil {
			if slot := withoutRule(tp.rules[key], r.ID); len(slot) > 0 {
				tp.rules[key] = slot
			} else {
				delete(tp.rules, key)
			}
			if len(tp.rules) == 0 {
				lv.removeTuple(tp)
			}
		}
		if len(lv.tuples) == 0 {
			c.removeLevel(lv)
		}
	}
	c.unindexRule(r)
}

// add inserts one rule version copy-on-write.
func (c *Compiled) add(o *ownedSet, r *policy.Rule) {
	lv := c.ownLevel(o, r.Priority, true)
	mask, key := ruleKey(r)
	tp := ownTuple(o, lv, mask, true)
	tp.rules[key] = appendRule(tp.rules[key], r)
	c.indexRule(r)
}

func (lv *level) removeTuple(tp *tuple) {
	for i, have := range lv.tuples {
		if have == tp {
			lv.tuples = append(lv.tuples[:i], lv.tuples[i+1:]...)
			return
		}
	}
}

func (c *Compiled) removeLevel(lv *level) {
	for i, have := range c.levels {
		if have == lv {
			c.levels = append(c.levels[:i], c.levels[i+1:]...)
			return
		}
	}
}

// unindexRule removes an Allow rule from the identifier reverse indexes.
// The index maps are already this epoch's own (cloned wholesale in
// applyDelta); the slices are copied per entry by withoutRule.
func (c *Compiled) unindexRule(r *policy.Rule) {
	if r.Action != policy.ActionAllow {
		return
	}
	for _, u := range [2]string{r.Src.User, r.Dst.User} {
		if u != "" {
			dropIndexed(c.allowByUser, u, r.ID)
		}
	}
	for _, h := range [2]string{r.Src.Host, r.Dst.Host} {
		if h != "" {
			dropIndexed(c.allowByHost, h, r.ID)
		}
	}
	for _, ip := range [2]*netpkt.IPv4{r.Src.IP, r.Dst.IP} {
		if ip != nil {
			dropIndexed(c.allowByIP, *ip, r.ID)
		}
	}
	for _, mac := range [2]*netpkt.MAC{r.Src.MAC, r.Dst.MAC} {
		if mac != nil {
			dropIndexed(c.allowByMAC, *mac, r.ID)
		}
	}
}

func dropIndexed[K comparable](m map[K][]*policy.Rule, k K, id policy.RuleID) {
	if slot := withoutRule(m[k], id); len(slot) > 0 {
		m[k] = slot
	} else {
		delete(m, k)
	}
}
