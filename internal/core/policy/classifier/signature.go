package classifier

import (
	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// Mask is the exported name of a rule's tuple: the set of fields it
// constrains. The policy verifier uses masks to reason about match-set
// containment — with exact-value fields only, rule A's match set contains
// rule B's iff A constrains a subset of B's fields (Mask.SubsetOf) and B's
// values projected onto A's fields (Project) equal A's probe key.
type Mask = fieldMask

// Key is the exported name of a tuple probe key: one exact value per
// constrained field, zero elsewhere.
type Key = tupleKey

// Signature returns the tuple a rule belongs to and its probe key — the
// rule's complete match identity under the exact-value field model.
func Signature(r *policy.Rule) (Mask, Key) {
	return ruleKey(r)
}

// SubsetOf reports whether every field in m is also in o.
func (m fieldMask) SubsetOf(o fieldMask) bool {
	return m&^o == 0
}

// Project returns r's values restricted to the fields in onto, reporting
// false when r does not constrain every field of onto. A true result with
// key equal to another rule's probe key over the same mask means that rule
// matches every flow r matches (field-wise containment).
func Project(r *policy.Rule, onto Mask) (Key, bool) {
	m, k := ruleKey(r)
	if !onto.SubsetOf(m) {
		return Key{}, false
	}
	// Zero the slots r constrains beyond onto so the projected key compares
	// equal to keys built from rules constraining exactly the onto fields.
	if m&maskEtherType != 0 && onto&maskEtherType == 0 {
		k.etherType = 0
	}
	if m&maskIPProto != 0 && onto&maskIPProto == 0 {
		k.ipProto = 0
	}
	if m&maskSrcUser != 0 && onto&maskSrcUser == 0 {
		k.srcUser = ""
	}
	if m&maskSrcHost != 0 && onto&maskSrcHost == 0 {
		k.srcHost = ""
	}
	if m&maskSrcIP != 0 && onto&maskSrcIP == 0 {
		k.srcIP = netpkt.IPv4{}
	}
	if m&maskSrcPort != 0 && onto&maskSrcPort == 0 {
		k.srcPort = 0
	}
	if m&maskSrcMAC != 0 && onto&maskSrcMAC == 0 {
		k.srcMAC = netpkt.MAC{}
	}
	if m&maskSrcSwitchPort != 0 && onto&maskSrcSwitchPort == 0 {
		k.srcSwitchPort = 0
	}
	if m&maskSrcDPID != 0 && onto&maskSrcDPID == 0 {
		k.srcDPID = 0
	}
	if m&maskDstUser != 0 && onto&maskDstUser == 0 {
		k.dstUser = ""
	}
	if m&maskDstHost != 0 && onto&maskDstHost == 0 {
		k.dstHost = ""
	}
	if m&maskDstIP != 0 && onto&maskDstIP == 0 {
		k.dstIP = netpkt.IPv4{}
	}
	if m&maskDstPort != 0 && onto&maskDstPort == 0 {
		k.dstPort = 0
	}
	if m&maskDstMAC != 0 && onto&maskDstMAC == 0 {
		k.dstMAC = netpkt.MAC{}
	}
	if m&maskDstSwitchPort != 0 && onto&maskDstSwitchPort == 0 {
		k.dstSwitchPort = 0
	}
	if m&maskDstDPID != 0 && onto&maskDstDPID == 0 {
		k.dstDPID = 0
	}
	return k, true
}
