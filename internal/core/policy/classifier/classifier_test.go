package classifier_test

import (
	"math/rand"
	"testing"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/core/policy/classifier"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// The generators mirror the policy package's property tests: a small value
// universe so rules collide, overlap and tie often.

func randomSpec(rng *rand.Rand) policy.EndpointSpec {
	var e policy.EndpointSpec
	users := []string{"alice", "bob", "carol"}
	hosts := []string{"h1", "h2", "h3"}
	if rng.Intn(3) == 0 {
		e.User = users[rng.Intn(len(users))]
	}
	if rng.Intn(3) == 0 {
		e.Host = hosts[rng.Intn(len(hosts))]
	}
	if rng.Intn(3) == 0 {
		ip := netpkt.IPv4FromUint32(0x0a000000 | uint32(rng.Intn(4)))
		e.IP = &ip
	}
	if rng.Intn(3) == 0 {
		port := uint16(rng.Intn(3) + 1)
		e.Port = &port
	}
	if rng.Intn(3) == 0 {
		mac := netpkt.MAC{2, 0, 0, 0, 0, byte(rng.Intn(3) + 1)}
		e.MAC = &mac
	}
	if rng.Intn(4) == 0 {
		sp := uint32(rng.Intn(3) + 1)
		e.SwitchPort = &sp
	}
	if rng.Intn(4) == 0 {
		d := uint64(rng.Intn(3) + 1)
		e.DPID = &d
	}
	return e
}

func randomRule(rng *rand.Rand) policy.Rule {
	r := policy.Rule{Action: policy.ActionAllow}
	if rng.Intn(2) == 0 {
		r.Action = policy.ActionDeny
	}
	if rng.Intn(3) == 0 {
		et := netpkt.EtherTypeIPv4
		r.Props.EtherType = &et
		if rng.Intn(2) == 0 {
			p := []uint8{netpkt.ProtoTCP, netpkt.ProtoUDP}[rng.Intn(2)]
			r.Props.IPProto = &p
		}
	}
	r.Src = randomSpec(rng)
	r.Dst = randomSpec(rng)
	return r
}

func randomFlow(rng *rand.Rand) *policy.FlowView {
	users := [][]string{nil, {"alice"}, {"bob"}, {"alice", "carol"}}
	hosts := []string{"", "h1", "h2", "h3"}
	f := &policy.FlowView{
		EtherType:  netpkt.EtherTypeIPv4,
		HasIPProto: true,
		IPProto:    []uint8{netpkt.ProtoTCP, netpkt.ProtoUDP}[rng.Intn(2)],
	}
	mk := func() policy.EndpointAttrs {
		return policy.EndpointAttrs{
			Users:         users[rng.Intn(len(users))],
			Host:          hosts[rng.Intn(len(hosts))],
			HasIP:         true,
			IP:            netpkt.IPv4FromUint32(0x0a000000 | uint32(rng.Intn(4))),
			HasPort:       true,
			Port:          uint16(rng.Intn(3) + 1),
			MAC:           netpkt.MAC{2, 0, 0, 0, 0, byte(rng.Intn(3) + 1)},
			HasSwitchPort: true,
			SwitchPort:    uint32(rng.Intn(3) + 1),
			HasDPID:       true,
			DPID:          uint64(rng.Intn(3) + 1),
		}
	}
	f.Src = mk()
	f.Dst = mk()
	return f
}

func newManager(t testing.TB) *policy.Manager {
	t.Helper()
	m := policy.NewManager()
	if err := m.RegisterPDP("p1", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterPDP("p2", 20); err != nil {
		t.Fatal(err)
	}
	return m
}

// agree fails the test when compiled lookup and snapshot query diverge on a
// flow. Rule identity may differ on equal-priority same-action ties (the
// snapshot's probe order is unspecified), so agreement is on action,
// matchedness and winning priority.
func agree(t *testing.T, c *classifier.Compiled, snap *policy.Snapshot, f *policy.FlowView) {
	t.Helper()
	got := c.Lookup(f)
	want := snap.Query(f)
	if got.Action != want.Action || got.Matched != want.Matched {
		t.Fatalf("lookup (%v, matched=%v) != query (%v, matched=%v) for %+v",
			got.Action, got.Matched, want.Action, want.Matched, f)
	}
	if got.Matched && got.Rule.Priority != want.Rule.Priority {
		t.Fatalf("lookup won at priority %d, query at %d, for %+v",
			got.Rule.Priority, want.Rule.Priority, f)
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("lookup epoch %d != query epoch %d", got.Epoch, want.Epoch)
	}
}

// TestPropertyLookupAgreesWithQuery: the compiled structure and the linear
// snapshot scan are decision-equivalent over randomized rule sets.
func TestPropertyLookupAgreesWithQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := newManager(t)
	for i := 0; i < 60; i++ {
		r := randomRule(rng)
		r.PDP = []string{"p1", "p2"}[rng.Intn(2)]
		if _, err := m.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	c := classifier.Compile(snap)
	if c.Epoch() != snap.Epoch() || c.Len() != snap.Len() {
		t.Fatalf("compiled (epoch %d, len %d) != snapshot (epoch %d, len %d)",
			c.Epoch(), c.Len(), snap.Epoch(), snap.Len())
	}
	matched := 0
	for i := 0; i < 3000; i++ {
		f := randomFlow(rng)
		agree(t, c, snap, f)
		if snap.Query(f).Matched {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no generated flow matched any rule; universe too sparse")
	}
}

// TestPropertyCompileNextEquivalence: maintaining the structure through
// CompileNext across a random insert/revoke sequence yields, at every
// epoch, a structure decision-equivalent to compiling the snapshot from
// scratch — and deltas applied to a rule-id set track the snapshot's.
func TestPropertyCompileNextEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := newManager(t)
	var cur *classifier.Compiled
	present := make(map[policy.RuleID]bool)
	var live []policy.RuleID

	for step := 0; step < 150; step++ {
		if len(live) == 0 || rng.Intn(5) < 3 {
			r := randomRule(rng)
			r.PDP = []string{"p1", "p2"}[rng.Intn(2)]
			id, err := m.Insert(r)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			if err := m.Revoke(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		snap := m.Snapshot()
		next, d := classifier.CompileNext(cur, snap)
		cur = next
		if cur.Epoch() != snap.Epoch() {
			t.Fatalf("step %d: compiled epoch %d, want %d", step, cur.Epoch(), snap.Epoch())
		}
		for _, r := range d.Removed {
			delete(present, r.ID)
		}
		for _, r := range d.Added {
			present[r.ID] = true
		}
		for _, r := range d.Changed {
			if !present[r.ID] {
				t.Fatalf("step %d: delta changed rule %d not present", step, r.ID)
			}
		}
		if len(present) != snap.Len() {
			t.Fatalf("step %d: delta-tracked %d rules, snapshot has %d", step, len(present), snap.Len())
		}
		for id := range present {
			if snap.Get(id) == nil {
				t.Fatalf("step %d: delta-tracked rule %d missing from snapshot", step, id)
			}
		}
		for i := 0; i < 50; i++ {
			agree(t, cur, snap, randomFlow(rng))
		}
		// And against a from-scratch compile of the same snapshot.
		if step%10 == 0 {
			fresh := classifier.Compile(snap)
			for i := 0; i < 100; i++ {
				f := randomFlow(rng)
				a, b := cur.Lookup(f), fresh.Lookup(f)
				if a.Action != b.Action || a.Matched != b.Matched {
					t.Fatalf("step %d: incremental and fresh compile diverge on %+v", step, f)
				}
			}
		}
	}
}

// TestCompileNextOutOfOrder: a CompileNext against an older (or identical)
// snapshot returns the existing structure unchanged with an empty delta,
// so reordered flush notifications collapse into no-ops.
func TestCompileNextOutOfOrder(t *testing.T) {
	m := newManager(t)
	if _, err := m.Insert(policy.Rule{PDP: "p1", Action: policy.ActionAllow, Src: policy.EndpointSpec{Host: "h1"}}); err != nil {
		t.Fatal(err)
	}
	old := m.Snapshot()
	if _, err := m.Insert(policy.Rule{PDP: "p2", Action: policy.ActionDeny, Src: policy.EndpointSpec{Host: "h2"}}); err != nil {
		t.Fatal(err)
	}
	cur, d := classifier.CompileNext(nil, m.Snapshot())
	if len(d.Added) != 2 {
		t.Fatalf("initial compile reported %d added rules, want 2", len(d.Added))
	}
	next, d := classifier.CompileNext(cur, old)
	if next != cur {
		t.Fatal("out-of-order CompileNext rebuilt the structure")
	}
	if !d.Empty() {
		t.Fatalf("out-of-order CompileNext produced a non-empty delta: %+v", d)
	}
	next, d = classifier.CompileNext(cur, m.Snapshot())
	if next != cur || !d.Empty() {
		t.Fatal("same-epoch CompileNext was not a no-op")
	}
}

// TestAllowRulesFor: the reverse indexes resolve identifiers to exactly
// the Allow rules written over them, across epochs.
func TestAllowRulesFor(t *testing.T) {
	m := newManager(t)
	ip := netpkt.IPv4FromUint32(0x0a000001)
	mac := netpkt.MAC{2, 0, 0, 0, 0, 1}
	idHost, err := m.Insert(policy.Rule{PDP: "p1", Action: policy.ActionAllow, Src: policy.EndpointSpec{Host: "h1"}})
	if err != nil {
		t.Fatal(err)
	}
	idUser, err := m.Insert(policy.Rule{PDP: "p1", Action: policy.ActionAllow, Dst: policy.EndpointSpec{User: "alice"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(policy.Rule{PDP: "p2", Action: policy.ActionDeny, Src: policy.EndpointSpec{IP: &ip}}); err != nil {
		t.Fatal(err) // Deny rules are never indexed.
	}
	idMAC, err := m.Insert(policy.Rule{PDP: "p2", Action: policy.ActionAllow, Src: policy.EndpointSpec{MAC: &mac}, Dst: policy.EndpointSpec{IP: &ip}})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := classifier.CompileNext(nil, m.Snapshot())

	got := c.AllowRulesFor([]string{"alice"}, []string{"h1"}, nil, nil)
	if len(got) != 2 || got[0].ID != idHost || got[1].ID != idUser {
		t.Fatalf("AllowRulesFor(alice,h1) = %v", got)
	}
	got = c.AllowRulesFor(nil, nil, []netpkt.IPv4{ip}, []netpkt.MAC{mac})
	if len(got) != 1 || got[0].ID != idMAC {
		t.Fatalf("AllowRulesFor(ip,mac) = %v", got)
	}
	if err := m.Revoke(idHost); err != nil {
		t.Fatal(err)
	}
	c, _ = classifier.CompileNext(c, m.Snapshot())
	got = c.AllowRulesFor(nil, []string{"h1"}, nil, nil)
	if len(got) != 0 {
		t.Fatalf("revoked rule still indexed: %v", got)
	}
}

// TestRulesAtOrAbove: visits exactly the rules that can win over (or tie
// with) the given priority, highest level first.
func TestRulesAtOrAbove(t *testing.T) {
	m := newManager(t)
	if _, err := m.Insert(policy.Rule{PDP: "p1", Action: policy.ActionAllow, Src: policy.EndpointSpec{Host: "h1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(policy.Rule{PDP: "p2", Action: policy.ActionDeny, Src: policy.EndpointSpec{Host: "h2"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(policy.Rule{PDP: "p2", Action: policy.ActionDeny, Src: policy.EndpointSpec{Host: "h3"}}); err != nil {
		t.Fatal(err)
	}
	c := classifier.Compile(m.Snapshot())
	var prios []int
	c.RulesAtOrAbove(20, func(r *policy.Rule) bool {
		prios = append(prios, r.Priority)
		return true
	})
	if len(prios) != 2 || prios[0] != 20 || prios[1] != 20 {
		t.Fatalf("RulesAtOrAbove(20) visited priorities %v, want [20 20]", prios)
	}
	n := 0
	c.RulesAtOrAbove(10, func(*policy.Rule) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d rules, want 2", n)
	}
}
