// Package classifier compiles an epoch-versioned policy snapshot into a
// compact classification structure and diffs successive compiled epochs.
//
// The structure is a priority-ordered tuple space (Srinivasan et al.'s
// tuple-space search, the same organisation yanet2's ACL module compiles
// rule sets into): every rule belongs to exactly one tuple — the set of
// fields it constrains — and within a tuple all rules are exact values over
// those fields, so one map probe per tuple replaces a linear scan. Levels
// mirror the snapshot's priority buckets (highest first) and tuples reuse
// the exact-match-map idea of the policy package's per-bucket index, taken
// to its fixed point: the probe key is the rule's entire constrained field
// set, so a probe hit IS a full match and needs no residual verification.
//
// Compilation is incremental: CompileNext diffs the previous compiled
// epoch's snapshot against the new one (cheap — unchanged rules share
// *Rule pointers across snapshots) and, for small deltas, builds the next
// structure by copy-on-write of only the touched levels, tuples and index
// entries, leaving everything else shared with the previous epoch. The
// returned Delta is what the PCP turns into minimal flow-mod deltas.
package classifier

import (
	"sort"

	"github.com/dfi-sdn/dfi/internal/core/policy"
	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// fieldMask identifies which fields a rule constrains (its tuple).
type fieldMask uint32

const (
	maskEtherType fieldMask = 1 << iota
	maskIPProto
	maskSrcUser
	maskSrcHost
	maskSrcIP
	maskSrcPort
	maskSrcMAC
	maskSrcSwitchPort
	maskSrcDPID
	maskDstUser
	maskDstHost
	maskDstIP
	maskDstPort
	maskDstMAC
	maskDstSwitchPort
	maskDstDPID
)

// tupleKey holds one exact value per constrainable field; slots outside a
// tuple's mask stay zero, so two rules constraining the same fields to the
// same values collide in one map slot (and are disambiguated by scan).
type tupleKey struct {
	etherType     uint16
	ipProto       uint8
	srcUser       string
	srcHost       string
	srcIP         netpkt.IPv4
	srcPort       uint16
	srcMAC        netpkt.MAC
	srcSwitchPort uint32
	srcDPID       uint64
	dstUser       string
	dstHost       string
	dstIP         netpkt.IPv4
	dstPort       uint16
	dstMAC        netpkt.MAC
	dstSwitchPort uint32
	dstDPID       uint64
}

// ruleKey computes the tuple a rule belongs to and its probe key.
func ruleKey(r *policy.Rule) (fieldMask, tupleKey) {
	var m fieldMask
	var k tupleKey
	if r.Props.EtherType != nil {
		m |= maskEtherType
		k.etherType = *r.Props.EtherType
	}
	if r.Props.IPProto != nil {
		m |= maskIPProto
		k.ipProto = *r.Props.IPProto
	}
	if r.Src.User != "" {
		m |= maskSrcUser
		k.srcUser = r.Src.User
	}
	if r.Src.Host != "" {
		m |= maskSrcHost
		k.srcHost = r.Src.Host
	}
	if r.Src.IP != nil {
		m |= maskSrcIP
		k.srcIP = *r.Src.IP
	}
	if r.Src.Port != nil {
		m |= maskSrcPort
		k.srcPort = *r.Src.Port
	}
	if r.Src.MAC != nil {
		m |= maskSrcMAC
		k.srcMAC = *r.Src.MAC
	}
	if r.Src.SwitchPort != nil {
		m |= maskSrcSwitchPort
		k.srcSwitchPort = *r.Src.SwitchPort
	}
	if r.Src.DPID != nil {
		m |= maskSrcDPID
		k.srcDPID = *r.Src.DPID
	}
	if r.Dst.User != "" {
		m |= maskDstUser
		k.dstUser = r.Dst.User
	}
	if r.Dst.Host != "" {
		m |= maskDstHost
		k.dstHost = r.Dst.Host
	}
	if r.Dst.IP != nil {
		m |= maskDstIP
		k.dstIP = *r.Dst.IP
	}
	if r.Dst.Port != nil {
		m |= maskDstPort
		k.dstPort = *r.Dst.Port
	}
	if r.Dst.MAC != nil {
		m |= maskDstMAC
		k.dstMAC = *r.Dst.MAC
	}
	if r.Dst.SwitchPort != nil {
		m |= maskDstSwitchPort
		k.dstSwitchPort = *r.Dst.SwitchPort
	}
	if r.Dst.DPID != nil {
		m |= maskDstDPID
		k.dstDPID = *r.Dst.DPID
	}
	return m, k
}

// tuple holds every rule of one level constraining exactly the fields in
// mask, keyed by their constrained values.
type tuple struct {
	mask  fieldMask
	rules map[tupleKey][]*policy.Rule
}

// level groups the tuples of one priority.
type level struct {
	priority int
	tuples   []*tuple
}

// Compiled is one policy snapshot compiled for tuple-space lookup, plus
// reverse indexes from high-level identifiers to the Allow rules written
// over them (what a binding change or a switch attachment must re-derive).
// A Compiled is immutable once returned: successive epochs share untouched
// levels, tuples and index slices with their predecessor.
type Compiled struct {
	snap   *policy.Snapshot
	levels []*level // priority descending

	// Allow rules by the identifier they name (either endpoint).
	allowByUser map[string][]*policy.Rule
	allowByHost map[string][]*policy.Rule
	allowByIP   map[netpkt.IPv4][]*policy.Rule
	allowByMAC  map[netpkt.MAC][]*policy.Rule
}

// Epoch returns the policy epoch this structure was compiled from.
func (c *Compiled) Epoch() uint64 { return c.snap.Epoch() }

// Snapshot returns the snapshot this structure was compiled from.
func (c *Compiled) Snapshot() *policy.Snapshot { return c.snap }

// Len returns the number of compiled rules.
func (c *Compiled) Len() int { return c.snap.Len() }

// Compile builds the classification structure for a snapshot from scratch.
func Compile(snap *policy.Snapshot) *Compiled {
	c := &Compiled{
		snap:        snap,
		allowByUser: make(map[string][]*policy.Rule),
		allowByHost: make(map[string][]*policy.Rule),
		allowByIP:   make(map[netpkt.IPv4][]*policy.Rule),
		allowByMAC:  make(map[netpkt.MAC][]*policy.Rule),
	}
	for _, r := range snap.All() {
		c.insert(r)
	}
	sort.Slice(c.levels, func(i, j int) bool { return c.levels[i].priority > c.levels[j].priority })
	return c
}

// insert adds a rule to a Compiled under construction (every container
// owned, no copy-on-write). Level order is restored by the caller.
func (c *Compiled) insert(r *policy.Rule) {
	lv := c.findLevel(r.Priority)
	if lv == nil {
		lv = &level{priority: r.Priority}
		c.levels = append(c.levels, lv)
	}
	mask, key := ruleKey(r)
	tp := lv.findTuple(mask)
	if tp == nil {
		tp = &tuple{mask: mask, rules: make(map[tupleKey][]*policy.Rule)}
		lv.tuples = append(lv.tuples, tp)
	}
	tp.rules[key] = append(tp.rules[key], r)
	c.indexRule(r)
}

func (c *Compiled) findLevel(priority int) *level {
	for _, lv := range c.levels {
		if lv.priority == priority {
			return lv
		}
	}
	return nil
}

func (lv *level) findTuple(mask fieldMask) *tuple {
	for _, tp := range lv.tuples {
		if tp.mask == mask {
			return tp
		}
	}
	return nil
}

// indexRule adds an Allow rule to the identifier reverse indexes.
func (c *Compiled) indexRule(r *policy.Rule) {
	if r.Action != policy.ActionAllow {
		return
	}
	for _, u := range [2]string{r.Src.User, r.Dst.User} {
		if u != "" {
			c.allowByUser[u] = appendRule(c.allowByUser[u], r)
		}
	}
	for _, h := range [2]string{r.Src.Host, r.Dst.Host} {
		if h != "" {
			c.allowByHost[h] = appendRule(c.allowByHost[h], r)
		}
	}
	for _, ip := range [2]*netpkt.IPv4{r.Src.IP, r.Dst.IP} {
		if ip != nil {
			c.allowByIP[*ip] = appendRule(c.allowByIP[*ip], r)
		}
	}
	for _, mac := range [2]*netpkt.MAC{r.Src.MAC, r.Dst.MAC} {
		if mac != nil {
			c.allowByMAC[*mac] = appendRule(c.allowByMAC[*mac], r)
		}
	}
}

// appendRule appends r to a fresh copy of rules (never mutating a slice a
// previous epoch may share) unless it is already present.
func appendRule(rules []*policy.Rule, r *policy.Rule) []*policy.Rule {
	for _, have := range rules {
		if have.ID == r.ID {
			return rules
		}
	}
	out := make([]*policy.Rule, len(rules), len(rules)+1)
	copy(out, rules)
	return append(out, r)
}

// withoutRule returns rules minus the rule with the given id, copying only
// when the rule is present.
func withoutRule(rules []*policy.Rule, id policy.RuleID) []*policy.Rule {
	for i, have := range rules {
		if have.ID == id {
			out := make([]*policy.Rule, 0, len(rules)-1)
			out = append(out, rules[:i]...)
			return append(out, rules[i+1:]...)
		}
	}
	return rules
}

// AllowRulesFor returns, ordered by id, every Allow rule written over any
// of the given identifiers — the rules whose derived switch state a binding
// change over those identifiers invalidates.
func (c *Compiled) AllowRulesFor(users, hosts []string, ips []netpkt.IPv4, macs []netpkt.MAC) []*policy.Rule {
	seen := make(map[policy.RuleID]*policy.Rule)
	for _, u := range users {
		for _, r := range c.allowByUser[u] {
			seen[r.ID] = r
		}
	}
	for _, h := range hosts {
		for _, r := range c.allowByHost[h] {
			seen[r.ID] = r
		}
	}
	for _, ip := range ips {
		for _, r := range c.allowByIP[ip] {
			seen[r.ID] = r
		}
	}
	for _, mac := range macs {
		for _, r := range c.allowByMAC[mac] {
			seen[r.ID] = r
		}
	}
	out := make([]*policy.Rule, 0, len(seen))
	for _, r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RulesAtOrAbove visits every compiled rule whose priority is at least the
// given one — the rules that can win over, or tie with, a rule at that
// priority — stopping early when visit returns false. Visit order is
// priority-descending; order within a level is unspecified.
func (c *Compiled) RulesAtOrAbove(priority int, visit func(*policy.Rule) bool) {
	for _, lv := range c.levels {
		if lv.priority < priority {
			return
		}
		for _, tp := range lv.tuples {
			for _, rules := range tp.rules {
				for _, r := range rules {
					if !visit(r) {
						return
					}
				}
			}
		}
	}
}

// Lookup returns the decision for a flow against the compiled policy,
// agreeing with Snapshot.Query on action, match and winning priority: the
// highest-priority matching rule wins, Deny wins priority ties, no match is
// the default Deny. It performs no locking and no allocation (the
// TestCompiledLookupZeroAlloc gate).
//
//dfi:hotpath
func (c *Compiled) Lookup(f *policy.FlowView) policy.Decision {
	for _, lv := range c.levels {
		if r := lv.match(f); r != nil {
			return policy.Decision{Action: r.Action, Rule: r, Matched: true, Epoch: c.snap.Epoch()}
		}
	}
	return policy.Decision{Action: policy.ActionDeny, Epoch: c.snap.Epoch()}
}

// match returns the level's winning rule for the flow: any matching Deny
// wins immediately; among Allows the lowest id wins (deterministic, and
// action-equivalent to the snapshot's probe order).
//
//dfi:hotpath
func (lv *level) match(f *policy.FlowView) *policy.Rule {
	var best *policy.Rule
	for _, tp := range lv.tuples {
		r := tp.match(f)
		if r == nil {
			continue
		}
		if r.Action == policy.ActionDeny {
			return r
		}
		if best == nil || r.ID < best.ID {
			best = r
		}
	}
	return best
}

// match probes one tuple with the flow's values for the tuple's fields. A
// probe hit is a full rule match by construction: the key equality covers
// every field the rules in this tuple constrain. User-constrained tuples
// probe once per user bound to the endpoint (membership semantics).
//
//dfi:hotpath
func (tp *tuple) match(f *policy.FlowView) *policy.Rule {
	k, ok := tp.keyFor(f)
	if !ok {
		return nil
	}
	srcUsers := tp.mask&maskSrcUser != 0
	dstUsers := tp.mask&maskDstUser != 0
	switch {
	case !srcUsers && !dstUsers:
		return tp.probe(k)
	case srcUsers && !dstUsers:
		var best *policy.Rule
		for _, u := range f.Src.Users {
			k.srcUser = u
			r := tp.probe(k)
			if r == nil {
				continue
			}
			if r.Action == policy.ActionDeny {
				return r
			}
			if best == nil || r.ID < best.ID {
				best = r
			}
		}
		return best
	case !srcUsers && dstUsers:
		var best *policy.Rule
		for _, u := range f.Dst.Users {
			k.dstUser = u
			r := tp.probe(k)
			if r == nil {
				continue
			}
			if r.Action == policy.ActionDeny {
				return r
			}
			if best == nil || r.ID < best.ID {
				best = r
			}
		}
		return best
	default:
		var best *policy.Rule
		for _, su := range f.Src.Users {
			k.srcUser = su
			for _, du := range f.Dst.Users {
				k.dstUser = du
				r := tp.probe(k)
				if r == nil {
					continue
				}
				if r.Action == policy.ActionDeny {
					return r
				}
				if best == nil || r.ID < best.ID {
					best = r
				}
			}
		}
		return best
	}
}

// probe scans one key slot: Deny wins, then lowest id.
//
//dfi:hotpath
func (tp *tuple) probe(k tupleKey) *policy.Rule {
	var best *policy.Rule
	for _, r := range tp.rules[k] {
		if r.Action == policy.ActionDeny {
			return r
		}
		if best == nil || r.ID < best.ID {
			best = r
		}
	}
	return best
}

// keyFor builds the probe key holding the flow's values for the tuple's
// non-user fields. It reports false when the flow lacks a field the tuple
// constrains (such a flow cannot match any rule in the tuple).
//
//dfi:hotpath
func (tp *tuple) keyFor(f *policy.FlowView) (tupleKey, bool) {
	var k tupleKey
	m := tp.mask
	if m&maskEtherType != 0 {
		k.etherType = f.EtherType
	}
	if m&maskIPProto != 0 {
		if !f.HasIPProto {
			return k, false
		}
		k.ipProto = f.IPProto
	}
	if m&maskSrcHost != 0 {
		if f.Src.Host == "" {
			return k, false
		}
		k.srcHost = f.Src.Host
	}
	if m&maskSrcIP != 0 {
		if !f.Src.HasIP {
			return k, false
		}
		k.srcIP = f.Src.IP
	}
	if m&maskSrcPort != 0 {
		if !f.Src.HasPort {
			return k, false
		}
		k.srcPort = f.Src.Port
	}
	if m&maskSrcMAC != 0 {
		k.srcMAC = f.Src.MAC
	}
	if m&maskSrcSwitchPort != 0 {
		if !f.Src.HasSwitchPort {
			return k, false
		}
		k.srcSwitchPort = f.Src.SwitchPort
	}
	if m&maskSrcDPID != 0 {
		if !f.Src.HasDPID {
			return k, false
		}
		k.srcDPID = f.Src.DPID
	}
	if m&maskDstHost != 0 {
		if f.Dst.Host == "" {
			return k, false
		}
		k.dstHost = f.Dst.Host
	}
	if m&maskDstIP != 0 {
		if !f.Dst.HasIP {
			return k, false
		}
		k.dstIP = f.Dst.IP
	}
	if m&maskDstPort != 0 {
		if !f.Dst.HasPort {
			return k, false
		}
		k.dstPort = f.Dst.Port
	}
	if m&maskDstMAC != 0 {
		k.dstMAC = f.Dst.MAC
	}
	if m&maskDstSwitchPort != 0 {
		if !f.Dst.HasSwitchPort {
			return k, false
		}
		k.dstSwitchPort = f.Dst.SwitchPort
	}
	if m&maskDstDPID != 0 {
		if !f.Dst.HasDPID {
			return k, false
		}
		k.dstDPID = f.Dst.DPID
	}
	if m&(maskSrcUser|maskDstUser) != 0 {
		// User slots are filled by the caller's per-user probes; a flow
		// with no bound users yields no probes and therefore no match.
		if m&maskSrcUser != 0 && len(f.Src.Users) == 0 {
			return k, false
		}
		if m&maskDstUser != 0 && len(f.Dst.Users) == 0 {
			return k, false
		}
	}
	return k, true
}
