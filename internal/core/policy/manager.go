package policy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

// Decision is the Policy Manager's answer for one queried flow.
type Decision struct {
	Action Action
	// Rule is the winning rule, nil when no rule matched (default deny).
	// It points into the immutable policy snapshot that produced the
	// decision: callers must not modify it, and may retain it safely (a
	// later policy change builds a new snapshot rather than mutating
	// this one).
	Rule *Rule
	// Matched reports whether any rule matched.
	Matched bool
	// Epoch is the policy epoch of the snapshot that produced this
	// decision (see Manager.Epoch); the PCP's flow-decision cache uses it
	// to detect staleness.
	Epoch uint64
}

// FlushFunc is notified after every policy mutation with the ids of policy
// rules whose derived flow rules must be removed from the switches (paper
// §III-B: on conflicting insert and on revocation). The ids slice may be
// empty — an insert that conflicts with nothing still advances the epoch,
// and delta-compiling consumers need to observe every epoch. The PCP
// registers one of these. sc is the span context of the mutation that
// triggered the flush (zero when the mutation was untraced), so flush
// compilation and the resulting flow-mod writes join the mutation's causal
// trace.
type FlushFunc func(sc obs.SpanContext, ids []RuleID)

// Errors callers can match.
var (
	// ErrUnknownPDP reports a rule from an unregistered PDP.
	ErrUnknownPDP = errors.New("policy: unknown PDP")
	// ErrUnknownRule reports a revocation for an id that does not exist.
	ErrUnknownRule = errors.New("policy: unknown rule")
	// ErrDuplicatePriority reports a PDP registration reusing a priority.
	ErrDuplicatePriority = errors.New("policy: priority already in use")
	// ErrDuplicatePDP reports a PDP registered twice.
	ErrDuplicatePDP = errors.New("policy: PDP already registered")
)

// Manager is DFI's Policy Manager: it receives policy rules and revocations
// from PDPs, performs consistency checks, stores the current global policy,
// and answers per-flow queries from the PCP.
//
// Reads and writes are decoupled copy-on-write: mutations build a fresh
// immutable Snapshot under the write lock and publish it atomically, so
// Query (the admission hot path) runs lock-free against whichever snapshot
// is current. Every published snapshot carries a strictly increasing epoch;
// crucially, the new epoch is visible to readers before the flush
// notification for the mutation fires, so by the time derived flow rules
// are being removed from switches no cache keyed on the old epoch can
// still validate.
type Manager struct {
	clock   simclock.Clock
	latency store.LatencyModel

	// Observability instruments; nil (and therefore no-ops) unless
	// WithObserver installed a registry. Query latency is not re-measured
	// here — the PCP already times it from outside as
	// dfi_pcp_stage_seconds{stage="policy_query"}.
	snapshotRebuilds *obs.Counter
	queries          *obs.Counter
	// tte records wall-clock time-to-enforcement per mutation (mutation
	// entry through the synchronous flush). It deliberately uses the wall
	// clock rather than m.clock: under a simulated clock the span duration
	// collapses to zero, while the physical cost of rebuilding the snapshot
	// and flushing switches is exactly what the SLO engine gates on.
	tte *obs.Histogram

	// spans (WithTracing) emits a ("policy", op) span per mutation; audit
	// (WithAuditLog) appends a chained record per mutation. Both are
	// nil-safe when unconfigured.
	spans *obs.SpanStore
	audit *obs.AuditLog

	snap atomic.Pointer[Snapshot]

	mu         sync.Mutex
	rules      map[RuleID]*Rule
	pdps       map[string]int // name -> priority
	priorities map[int]string // priority -> name
	nextID     RuleID
	epoch      uint64
	onFlush    FlushFunc
}

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithQueryLatency injects a simulated per-query cost (the paper's measured
// RPC+MySQL policy-query latency) charged on the given clock.
func WithQueryLatency(clock simclock.Clock, m store.LatencyModel) ManagerOption {
	return func(pm *Manager) {
		pm.clock = clock
		pm.latency = m
	}
}

// WithObserver registers the Policy Manager's instruments — rule count,
// epoch, snapshot rebuilds, queries served — with reg.
func WithObserver(reg *obs.Registry) ManagerOption {
	return func(pm *Manager) {
		pm.snapshotRebuilds = reg.Counter("dfi_policy_snapshot_rebuilds_total",
			"Copy-on-write policy snapshot publications (one per insert/revoke batch).")
		pm.queries = reg.Counter("dfi_policy_queries_total",
			"Per-flow policy queries served.")
		pm.tte = reg.Histogram("dfi_policy_mutation_tte_seconds",
			"Wall-clock time-to-enforcement per policy mutation: entry through snapshot publication and synchronous switch flush.",
			nil)
		reg.GaugeFunc("dfi_policy_rules",
			"Rules in the current policy snapshot.",
			func() float64 { return float64(pm.Len()) })
		reg.GaugeFunc("dfi_policy_epoch",
			"Current policy epoch (bumps on every insert, revoke and revoke-all).",
			func() float64 { return float64(pm.Epoch()) })
	}
}

// WithTracing attaches a span store: every insert/revoke/revoke-all
// commits a ("policy", op) span, parented on the caller's span context
// when one is threaded through the Ctx mutation variants.
func WithTracing(ts *obs.SpanStore) ManagerOption {
	return func(pm *Manager) { pm.spans = ts }
}

// WithAuditLog attaches the tamper-evident audit log: every mutation
// appends a kind="policy" record (op insert/revoke/revoke_all) with the
// rule id, PDP and rule text.
func WithAuditLog(a *obs.AuditLog) ManagerOption {
	return func(pm *Manager) { pm.audit = a }
}

// NewManager returns an empty Policy Manager.
func NewManager(opts ...ManagerOption) *Manager {
	m := &Manager{
		rules:      make(map[RuleID]*Rule),
		pdps:       make(map[string]int),
		priorities: make(map[int]string),
		nextID:     1,
	}
	m.snap.Store(emptySnapshot())
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// publishLocked builds and publishes the snapshot for the current rule set,
// bumping the epoch. Callers hold m.mu and must invoke it before releasing
// the lock (and therefore before any flush notification).
func (m *Manager) publishLocked() {
	m.epoch++
	m.snap.Store(buildSnapshot(m.epoch, m.rules))
	m.snapshotRebuilds.Inc()
}

// SetFlushFunc registers the callback invoked when derived flow rules must
// be flushed from switches. It must be set before PDPs start emitting rules.
func (m *Manager) SetFlushFunc(fn FlushFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onFlush = fn
}

// RegisterPDP registers a Policy Decision Point with its network-
// administrator-assigned priority. Higher priorities take precedence and
// must be unique across PDPs (paper §III-B).
func (m *Manager) RegisterPDP(name string, priority int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pdps[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicatePDP, name)
	}
	if holder, ok := m.priorities[priority]; ok {
		return fmt.Errorf("%w: %d (held by %q)", ErrDuplicatePriority, priority, holder)
	}
	m.pdps[name] = priority
	m.priorities[priority] = name
	return nil
}

// Insert stores a new policy rule from a PDP, assigning its id and
// priority. Existing lower-priority rules that overlap the new rule with a
// different action may have produced now-stale flow rules; their derived
// rules are flushed (the conflicting policies themselves remain stored).
func (m *Manager) Insert(r Rule) (RuleID, error) {
	return m.InsertCtx(obs.SpanContext{}, r)
}

// InsertCtx is Insert carrying a causal span context: the mutation's
// ("policy","insert") span parents under sc (a sensor event's publish
// span, typically) and any triggered flush runs inside the same trace.
func (m *Manager) InsertCtx(sc obs.SpanContext, r Rule) (RuleID, error) {
	span := m.spans.Child(sc)
	start := m.spans.Now()
	wall := time.Now()

	m.mu.Lock()
	prio, ok := m.pdps[r.PDP]
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownPDP, r.PDP)
	}
	r.Priority = prio
	r.ID = m.nextID
	m.nextID++

	var flush []RuleID
	for _, existing := range m.rules {
		if existing.Priority < r.Priority && existing.Action != r.Action && existing.Overlaps(&r) {
			flush = append(flush, existing.ID)
		}
	}
	// The implicit default-deny catch-all behaves as the lowest-priority
	// Deny rule (id 0): a new Allow rule conflicts with it, so flow rules
	// derived from default denies must be flushed too.
	if r.Action == ActionAllow {
		flush = append(flush, DefaultDenyID)
	}
	stored := r
	m.rules[stored.ID] = &stored
	m.publishLocked()
	fn := m.onFlush
	m.mu.Unlock()

	if fn != nil {
		sort.Slice(flush, func(i, j int) bool { return flush[i] < flush[j] })
		fn(span, flush)
	}
	m.tte.Observe(time.Since(wall))
	m.commitSpan(sc, span, start, "insert", uint64(stored.ID), stored.String())
	m.auditMutation(span, "insert", uint64(stored.ID), stored.PDP, stored.String())
	return stored.ID, nil
}

// Revoke removes a policy rule and flushes its derived flow rules from the
// switches. Revocation is distinct from inserting an opposite rule: after
// revocation, flows match whatever other policy remains (paper §III-B).
func (m *Manager) Revoke(id RuleID) error {
	return m.RevokeCtx(obs.SpanContext{}, id)
}

// RevokeCtx is Revoke carrying a causal span context (see InsertCtx).
func (m *Manager) RevokeCtx(sc obs.SpanContext, id RuleID) error {
	span := m.spans.Child(sc)
	start := m.spans.Now()
	wall := time.Now()

	m.mu.Lock()
	r, ok := m.rules[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownRule, id)
	}
	delete(m.rules, id)
	m.publishLocked()
	fn := m.onFlush
	m.mu.Unlock()

	if fn != nil {
		fn(span, []RuleID{id})
	}
	m.tte.Observe(time.Since(wall))
	m.commitSpan(sc, span, start, "revoke", uint64(id), r.String())
	m.auditMutation(span, "revoke", uint64(id), r.PDP, r.String())
	return nil
}

// RevokeAll revokes every rule owned by the named PDP, returning how many
// were removed.
func (m *Manager) RevokeAll(pdp string) int {
	return m.RevokeAllCtx(obs.SpanContext{}, pdp)
}

// RevokeAllCtx is RevokeAll carrying a causal span context (see InsertCtx).
func (m *Manager) RevokeAllCtx(sc obs.SpanContext, pdp string) int {
	span := m.spans.Child(sc)
	start := m.spans.Now()
	wall := time.Now()

	m.mu.Lock()
	var ids []RuleID
	for id, r := range m.rules {
		if r.PDP == pdp {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		delete(m.rules, id)
	}
	if len(ids) > 0 {
		m.publishLocked()
	}
	fn := m.onFlush
	m.mu.Unlock()

	if len(ids) == 0 {
		return 0
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if fn != nil {
		fn(span, ids)
	}
	m.tte.Observe(time.Since(wall))
	m.commitSpan(sc, span, start, "revoke_all", 0, fmt.Sprintf("pdp=%s revoked=%d", pdp, len(ids)))
	m.auditMutation(span, "revoke_all", 0, pdp, fmt.Sprintf("revoked %d rules", len(ids)))
	return len(ids)
}

// commitSpan records one mutation span; a no-op without WithTracing.
// Duration includes the synchronous flush the mutation triggered, so the
// span measures time-to-enforcement, the paper's Fig. 5/6 quantity.
func (m *Manager) commitSpan(parent, span obs.SpanContext, start time.Time, op string, ruleID uint64, detail string) {
	if !m.spans.Enabled() {
		return
	}
	m.spans.Commit(obs.Span{
		Trace:     span.Trace,
		ID:        span.Span,
		Parent:    parent.Span,
		Component: obs.CompPolicy,
		Stage:     op,
		Start:     start,
		Duration:  m.spans.Now().Sub(start),
		RuleID:    ruleID,
		Detail:    detail,
	})
}

// auditMutation appends one kind="policy" record; a no-op without
// WithAuditLog.
func (m *Manager) auditMutation(span obs.SpanContext, op string, ruleID uint64, pdp, detail string) {
	m.audit.Append(obs.AuditRecord{
		Kind:        "policy",
		Op:          op,
		Trace:       uint64(span.Trace),
		RuleID:      ruleID,
		PDP:         pdp,
		PolicyEpoch: m.Epoch(),
		Detail:      detail,
	})
}

// PDPPriority returns the registered priority of a PDP, reporting whether
// the PDP exists. The policy-language engine uses it to make document
// re-application idempotent: a pdp declaration matching an existing
// registration is a no-op, a mismatching one is a compile error.
func (m *Manager) PDPPriority(name string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prio, ok := m.pdps[name]
	return prio, ok
}

// Query returns the decision for a flow: the highest-priority matching rule
// wins; among equal-priority matches with conflicting actions, Deny wins
// (erring on the side of stopping unauthorized flows); with no match the
// decision is the default Deny.
//
// Query is lock-free and allocation-free: it reads the current immutable
// snapshot and returns a pointer to the winning rule inside it (see
// Decision.Rule for the immutability contract).
//
//dfi:hotpath
func (m *Manager) Query(f *FlowView) Decision {
	m.queries.Inc()
	store.Charge(m.clock, m.latency)
	return m.snap.Load().Query(f)
}

// Snapshot returns the current immutable policy snapshot, for callers that
// need a consistent multi-rule view of the policy (e.g. the PCP's wildcard
// widening safety check) without copying the rule set.
func (m *Manager) Snapshot() *Snapshot {
	return m.snap.Load()
}

// Epoch returns the current policy epoch: a counter that increases on
// every insert, revoke and revoke-all. A Decision carrying an older epoch
// was made against a policy that has since changed.
func (m *Manager) Epoch() uint64 {
	return m.snap.Load().epoch
}

// Rules returns a copy of the stored policy, ordered by id.
func (m *Manager) Rules() []Rule {
	all := m.snap.Load().all
	out := make([]Rule, len(all))
	for i, r := range all {
		out[i] = *r
	}
	return out
}

// Len returns the number of stored rules.
func (m *Manager) Len() int {
	return m.snap.Load().Len()
}

// Get returns the rule with the given id.
func (m *Manager) Get(id RuleID) (Rule, bool) {
	r := m.snap.Load().Get(id)
	if r == nil {
		return Rule{}, false
	}
	return *r, true
}
