package policy

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dfi-sdn/dfi/internal/netpkt"
	"github.com/dfi-sdn/dfi/internal/obs"
	"github.com/dfi-sdn/dfi/internal/simclock"
	"github.com/dfi-sdn/dfi/internal/store"
)

func newManagerWithPDPs(t *testing.T) *Manager {
	t.Helper()
	m := NewManager()
	if err := m.RegisterPDP("low", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterPDP("high", 100); err != nil {
		t.Fatal(err)
	}
	return m
}

func flowBetween(srcHost, dstHost string, srcUsers ...string) *FlowView {
	return &FlowView{
		EtherType:  netpkt.EtherTypeIPv4,
		HasIPProto: true,
		IPProto:    netpkt.ProtoTCP,
		Src:        EndpointAttrs{Host: srcHost, Users: srcUsers},
		Dst:        EndpointAttrs{Host: dstHost},
	}
}

func TestActionString(t *testing.T) {
	if ActionAllow.String() != "Allow" || ActionDeny.String() != "Deny" {
		t.Fatal("action strings wrong")
	}
	if Action(9).String() != "Action(9)" {
		t.Fatal("unknown action string wrong")
	}
}

func TestDefaultDeny(t *testing.T) {
	m := newManagerWithPDPs(t)
	d := m.Query(flowBetween("a", "b"))
	if d.Matched || d.Action != ActionDeny {
		t.Fatalf("empty policy decision = %+v, want default deny", d)
	}
}

func TestRegisterPDPUniqueness(t *testing.T) {
	m := NewManager()
	if err := m.RegisterPDP("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterPDP("a", 2); !errors.Is(err, ErrDuplicatePDP) {
		t.Fatalf("duplicate name error = %v", err)
	}
	if err := m.RegisterPDP("b", 1); !errors.Is(err, ErrDuplicatePriority) {
		t.Fatalf("duplicate priority error = %v", err)
	}
}

func TestInsertUnknownPDP(t *testing.T) {
	m := NewManager()
	if _, err := m.Insert(Rule{PDP: "ghost", Action: ActionAllow}); !errors.Is(err, ErrUnknownPDP) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertQueryRevoke(t *testing.T) {
	m := newManagerWithPDPs(t)
	id, err := m.Insert(Rule{
		PDP:    "low",
		Action: ActionAllow,
		Src:    EndpointSpec{Host: "a"},
		Dst:    EndpointSpec{Host: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Query(flowBetween("a", "b"))
	if !d.Matched || d.Action != ActionAllow || d.Rule.ID != id {
		t.Fatalf("decision = %+v", d)
	}
	// Non-matching flow still denied.
	if d := m.Query(flowBetween("a", "c")); d.Matched {
		t.Fatalf("unexpected match: %+v", d)
	}
	if err := m.Revoke(id); err != nil {
		t.Fatal(err)
	}
	if d := m.Query(flowBetween("a", "b")); d.Matched {
		t.Fatalf("matched after revoke: %+v", d)
	}
	if err := m.Revoke(id); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("double revoke err = %v", err)
	}
}

func TestHigherPriorityWins(t *testing.T) {
	m := newManagerWithPDPs(t)
	if _, err := m.Insert(Rule{PDP: "low", Action: ActionAllow, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(Rule{PDP: "high", Action: ActionDeny, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	d := m.Query(flowBetween("a", "b"))
	if d.Action != ActionDeny || d.Rule.PDP != "high" {
		t.Fatalf("decision = %+v, want high-priority deny", d)
	}
}

func TestEqualPriorityDenyWins(t *testing.T) {
	m := newManagerWithPDPs(t)
	if _, err := m.Insert(Rule{PDP: "low", Action: ActionAllow, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(Rule{PDP: "low", Action: ActionDeny, Dst: EndpointSpec{Host: "b"}}); err != nil {
		t.Fatal(err)
	}
	d := m.Query(flowBetween("a", "b"))
	if d.Action != ActionDeny {
		t.Fatalf("decision = %+v, want deny on same-priority conflict", d)
	}
}

func TestUserMatching(t *testing.T) {
	m := newManagerWithPDPs(t)
	// The paper's example: any machine Alice is using may talk to any
	// machine Bob is using.
	if _, err := m.Insert(Rule{
		PDP:    "low",
		Action: ActionAllow,
		Src:    EndpointSpec{User: "alice"},
		Dst:    EndpointSpec{User: "bob"},
	}); err != nil {
		t.Fatal(err)
	}
	f := &FlowView{
		EtherType: netpkt.EtherTypeIPv4,
		Src:       EndpointAttrs{Host: "pc1", Users: []string{"alice", "carol"}},
		Dst:       EndpointAttrs{Host: "pc2", Users: []string{"bob"}},
	}
	if d := m.Query(f); !d.Matched || d.Action != ActionAllow {
		t.Fatalf("decision = %+v", d)
	}
	// Bob logs off pc2: the same rule no longer matches.
	f.Dst.Users = nil
	if d := m.Query(f); d.Matched {
		t.Fatalf("matched with bob logged off: %+v", d)
	}
}

func TestFlowPropertiesMatching(t *testing.T) {
	m := newManagerWithPDPs(t)
	if _, err := m.Insert(Rule{
		PDP:    "low",
		Action: ActionAllow,
		Props:  FlowProperties{EtherType: propU16(netpkt.EtherTypeIPv4), IPProto: propU8(netpkt.ProtoUDP)},
	}); err != nil {
		t.Fatal(err)
	}
	tcp := flowBetween("a", "b") // TCP
	if d := m.Query(tcp); d.Matched {
		t.Fatalf("TCP matched UDP-only rule: %+v", d)
	}
	udp := flowBetween("a", "b")
	udp.IPProto = netpkt.ProtoUDP
	if d := m.Query(udp); !d.Matched {
		t.Fatal("UDP flow did not match")
	}
	arp := &FlowView{EtherType: netpkt.EtherTypeARP}
	if d := m.Query(arp); d.Matched {
		t.Fatalf("ARP matched IPv4-only rule: %+v", d)
	}
}

func TestPortAndAddressMatching(t *testing.T) {
	m := newManagerWithPDPs(t)
	ip := netpkt.MustParseIPv4("10.0.0.2")
	port := uint16(22)
	if _, err := m.Insert(Rule{
		PDP:    "low",
		Action: ActionDeny,
		Src:    EndpointSpec{Host: "h1"},
		Dst:    EndpointSpec{IP: &ip, Port: &port},
	}); err != nil {
		t.Fatal(err)
	}
	f := flowBetween("h1", "h2")
	f.Dst.HasIP = true
	f.Dst.IP = ip
	f.Dst.HasPort = true
	f.Dst.Port = 22
	if d := m.Query(f); !d.Matched || d.Action != ActionDeny {
		t.Fatalf("decision = %+v", d)
	}
	f.Dst.Port = 443
	if d := m.Query(f); d.Matched {
		t.Fatalf("port 443 matched port-22 rule: %+v", d)
	}
}

func TestInsertConflictFlushesLowerPriority(t *testing.T) {
	m := newManagerWithPDPs(t)
	var mu sync.Mutex
	var flushed [][]RuleID
	m.SetFlushFunc(func(_ obs.SpanContext, ids []RuleID) {
		mu.Lock()
		defer mu.Unlock()
		flushed = append(flushed, ids)
	})
	lowID, err := m.Insert(Rule{PDP: "low", Action: ActionAllow, Src: EndpointSpec{Host: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	flushed = nil // ignore the insert's own default-deny flush
	mu.Unlock()

	// A higher-priority Deny overlapping the Allow must flush the Allow's
	// derived flow rules.
	if _, err := m.Insert(Rule{PDP: "high", Action: ActionDeny, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushed) != 1 || len(flushed[0]) != 1 || flushed[0][0] != lowID {
		t.Fatalf("flushed = %v, want [[%d]]", flushed, lowID)
	}
	// The conflicting policy must remain stored.
	if _, ok := m.Get(lowID); !ok {
		t.Fatal("conflicting policy was removed from the database")
	}
}

func TestInsertAllowFlushesDefaultDeny(t *testing.T) {
	m := newManagerWithPDPs(t)
	var mu sync.Mutex
	var got []RuleID
	m.SetFlushFunc(func(_ obs.SpanContext, ids []RuleID) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, ids...)
	})
	if _, err := m.Insert(Rule{PDP: "low", Action: ActionAllow, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, id := range got {
		if id == DefaultDenyID {
			found = true
		}
	}
	if !found {
		t.Fatalf("flush ids %v missing DefaultDenyID", got)
	}
}

func TestInsertDenyDoesNotFlushDefaultDeny(t *testing.T) {
	m := newManagerWithPDPs(t)
	var mu sync.Mutex
	var got []RuleID
	m.SetFlushFunc(func(_ obs.SpanContext, ids []RuleID) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, ids...)
	})
	if _, err := m.Insert(Rule{PDP: "low", Action: ActionDeny, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range got {
		if id == DefaultDenyID {
			t.Fatal("deny insert flushed default-deny rules")
		}
	}
}

func TestNonOverlappingInsertNoFlush(t *testing.T) {
	m := newManagerWithPDPs(t)
	if _, err := m.Insert(Rule{PDP: "low", Action: ActionAllow, Src: EndpointSpec{Host: "a"}}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var notified [][]RuleID
	m.SetFlushFunc(func(_ obs.SpanContext, ids []RuleID) {
		mu.Lock()
		defer mu.Unlock()
		notified = append(notified, append([]RuleID(nil), ids...))
	})
	// Different host: no overlap with the Allow; Deny does not flush
	// default-deny either. Every insert still notifies (epoch observers
	// depend on it), but with zero rule ids — no flush work.
	if _, err := m.Insert(Rule{PDP: "high", Action: ActionDeny, Src: EndpointSpec{Host: "zzz"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 1 {
		t.Fatalf("notifications = %d, want 1", len(notified))
	}
	if len(notified[0]) != 0 {
		t.Fatalf("flush ids = %v, want none", notified[0])
	}
}

func TestRevokeAll(t *testing.T) {
	m := newManagerWithPDPs(t)
	for i := 0; i < 5; i++ {
		if _, err := m.Insert(Rule{PDP: "low", Action: ActionDeny}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Insert(Rule{PDP: "high", Action: ActionDeny}); err != nil {
		t.Fatal(err)
	}
	if n := m.RevokeAll("low"); n != 5 {
		t.Fatalf("RevokeAll = %d, want 5", n)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestRulesSnapshotOrdered(t *testing.T) {
	m := newManagerWithPDPs(t)
	for i := 0; i < 10; i++ {
		if _, err := m.Insert(Rule{PDP: "low", Action: ActionDeny}); err != nil {
			t.Fatal(err)
		}
	}
	rules := m.Rules()
	if len(rules) != 10 {
		t.Fatalf("len = %d", len(rules))
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].ID <= rules[i-1].ID {
			t.Fatal("rules not ordered by id")
		}
	}
}

func TestQueryChargesLatency(t *testing.T) {
	epoch := time.Date(2019, 3, 1, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewSimulated(epoch)
	m := NewManager(WithQueryLatency(clk, store.Fixed(2520*time.Microsecond)))
	if err := m.RegisterPDP("p", 1); err != nil {
		t.Fatal(err)
	}
	clk.Go(func() {
		m.Query(flowBetween("a", "b"))
	})
	end := clk.Run()
	if want := epoch.Add(2520 * time.Microsecond); !end.Equal(want) {
		t.Fatalf("clock = %v, want %v", end, want)
	}
}

func TestOverlapsWildcardAndValues(t *testing.T) {
	a := Rule{Action: ActionAllow, Src: EndpointSpec{Host: "h1"}}
	b := Rule{Action: ActionDeny, Src: EndpointSpec{Host: "h1"}, Dst: EndpointSpec{Host: "h2"}}
	c := Rule{Action: ActionDeny, Src: EndpointSpec{Host: "other"}}
	if !a.Overlaps(&b) || !b.Overlaps(&a) {
		t.Fatal("a and b should overlap")
	}
	if a.Overlaps(&c) {
		t.Fatal("a and c should not overlap")
	}
	d := Rule{Props: FlowProperties{IPProto: propU8(netpkt.ProtoTCP)}}
	e := Rule{Props: FlowProperties{IPProto: propU8(netpkt.ProtoUDP)}}
	if d.Overlaps(&e) {
		t.Fatal("TCP and UDP rules should not overlap")
	}
}

func TestRuleString(t *testing.T) {
	ip := netpkt.MustParseIPv4("10.0.0.1")
	r := Rule{ID: 3, PDP: "p", Priority: 7, Action: ActionAllow,
		Src: EndpointSpec{User: "alice", IP: &ip}, Dst: EndpointSpec{Host: "mail"}}
	s := r.String()
	for _, want := range []string{"alice", "10.0.0.1", "mail", "Allow", "#3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func propU16(v uint16) *uint16 { return &v }

func propU8(v uint8) *uint8 { return &v }
