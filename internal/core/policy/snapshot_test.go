package policy

import (
	"math/rand"
	"testing"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

// referenceQuery is the seed's O(rules) linear scan, kept as the oracle the
// indexed snapshot must agree with: highest priority wins, Deny beats Allow
// at equal priority, no match means default deny.
func referenceQuery(rules []Rule, f *FlowView) (Action, int, bool) {
	var best *Rule
	for i := range rules {
		r := &rules[i]
		if !r.Matches(f) {
			continue
		}
		switch {
		case best == nil,
			r.Priority > best.Priority,
			r.Priority == best.Priority && r.Action == ActionDeny && best.Action == ActionAllow:
			best = r
		}
	}
	if best == nil {
		return ActionDeny, 0, false
	}
	return best.Action, best.Priority, true
}

// TestSnapshotEquivalence drives random policies and flows through both the
// indexed snapshot and the reference linear scan; any divergence in action,
// winning priority or matched-ness is an indexing bug.
func TestSnapshotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := NewManager()
		for _, pdp := range []struct {
			name string
			prio int
		}{{"p1", 10}, {"p2", 20}, {"p3", 30}} {
			if err := m.RegisterPDP(pdp.name, pdp.prio); err != nil {
				t.Fatal(err)
			}
		}
		n := rng.Intn(80)
		for i := 0; i < n; i++ {
			r := randomRule(rng)
			r.PDP = []string{"p1", "p2", "p3"}[rng.Intn(3)]
			if _, err := m.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		rules := m.Rules()
		for i := 0; i < 200; i++ {
			f := randomFlow(rng)
			got := m.Query(f)
			wantAction, wantPrio, wantMatched := referenceQuery(rules, f)
			if got.Matched != wantMatched || got.Action != wantAction {
				t.Fatalf("trial %d: snapshot disagrees with linear scan for %+v:\ngot %v matched=%v, want %v matched=%v",
					trial, f, got.Action, got.Matched, wantAction, wantMatched)
			}
			if got.Matched && got.Rule.Priority != wantPrio {
				t.Fatalf("trial %d: snapshot won at priority %d, linear scan at %d",
					trial, got.Rule.Priority, wantPrio)
			}
		}
	}
}

// TestSnapshotEquivalenceUnderChurn interleaves inserts and revokes with
// queries, re-checking equivalence after every mutation.
func TestSnapshotEquivalenceUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewManager()
	if err := m.RegisterPDP("p1", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterPDP("p2", 20); err != nil {
		t.Fatal(err)
	}
	var live []RuleID
	for step := 0; step < 400; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			r := randomRule(rng)
			r.PDP = []string{"p1", "p2"}[rng.Intn(2)]
			id, err := m.Insert(r)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			if err := m.Revoke(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		rules := m.Rules()
		for i := 0; i < 10; i++ {
			f := randomFlow(rng)
			got := m.Query(f)
			wantAction, _, wantMatched := referenceQuery(rules, f)
			if got.Matched != wantMatched || got.Action != wantAction {
				t.Fatalf("step %d: divergence after churn: got %v/%v want %v/%v",
					step, got.Action, got.Matched, wantAction, wantMatched)
			}
		}
	}
}

// TestQueryZeroAlloc pins the hot-path guarantee: a query — hit or miss —
// allocates nothing.
func TestQueryZeroAlloc(t *testing.T) {
	m := NewManager()
	if err := m.RegisterPDP("p", 10); err != nil {
		t.Fatal(err)
	}
	ip := netpkt.MustParseIPv4("10.0.0.1")
	if _, err := m.Insert(Rule{PDP: "p", Action: ActionAllow, Src: EndpointSpec{IP: &ip}}); err != nil {
		t.Fatal(err)
	}
	port := uint16(445)
	if _, err := m.Insert(Rule{PDP: "p", Action: ActionDeny, Dst: EndpointSpec{Port: &port}}); err != nil {
		t.Fatal(err)
	}
	hit := &FlowView{
		EtherType: netpkt.EtherTypeIPv4,
		Src:       EndpointAttrs{HasIP: true, IP: ip, MAC: netpkt.MAC{2, 0, 0, 0, 0, 1}},
		Dst:       EndpointAttrs{MAC: netpkt.MAC{2, 0, 0, 0, 0, 2}},
	}
	miss := &FlowView{
		EtherType: netpkt.EtherTypeIPv4,
		Src:       EndpointAttrs{HasIP: true, IP: netpkt.MustParseIPv4("10.9.9.9"), MAC: netpkt.MAC{2, 0, 0, 0, 0, 3}},
		Dst:       EndpointAttrs{MAC: netpkt.MAC{2, 0, 0, 0, 0, 4}},
	}
	for name, f := range map[string]*FlowView{"hit": hit, "miss": miss} {
		if allocs := testing.AllocsPerRun(100, func() { m.Query(f) }); allocs != 0 {
			t.Errorf("Query(%s) allocates %.1f times per run, want 0", name, allocs)
		}
	}
}

// TestQueryReturnsSnapshotPointer documents the no-copy contract: repeated
// queries of an unchanged policy return the same *Rule, and that pointer
// stays valid (and unchanged) after unrelated mutations build new
// snapshots.
func TestQueryReturnsSnapshotPointer(t *testing.T) {
	m := NewManager()
	if err := m.RegisterPDP("p", 10); err != nil {
		t.Fatal(err)
	}
	ip := netpkt.MustParseIPv4("10.0.0.1")
	id, err := m.Insert(Rule{PDP: "p", Action: ActionAllow, Src: EndpointSpec{IP: &ip}})
	if err != nil {
		t.Fatal(err)
	}
	f := &FlowView{
		EtherType: netpkt.EtherTypeIPv4,
		Src:       EndpointAttrs{HasIP: true, IP: ip},
	}
	d1 := m.Query(f)
	d2 := m.Query(f)
	if !d1.Matched || d1.Rule != d2.Rule {
		t.Fatalf("queries of an unchanged policy returned different rule pointers: %p vs %p", d1.Rule, d2.Rule)
	}
	// An unrelated mutation must not disturb the retained decision.
	other, err := m.Insert(Rule{PDP: "p", Action: ActionDeny, Src: EndpointSpec{User: "mallory"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(other); err != nil {
		t.Fatal(err)
	}
	if d1.Rule.ID != id || d1.Rule.Action != ActionAllow || *d1.Rule.Src.IP != ip {
		t.Fatalf("retained snapshot rule mutated: %+v", d1.Rule)
	}
}

// TestEpochSemantics: the epoch bumps exactly once per effective mutation,
// never on failed or read-only operations, and every decision carries the
// epoch of the snapshot that produced it.
func TestEpochSemantics(t *testing.T) {
	m := NewManager()
	if e := m.Epoch(); e != 0 {
		t.Fatalf("fresh manager epoch = %d, want 0", e)
	}
	if err := m.RegisterPDP("p", 10); err != nil {
		t.Fatal(err)
	}
	if e := m.Epoch(); e != 0 {
		t.Fatalf("RegisterPDP bumped the epoch to %d", e)
	}
	if _, err := m.Insert(Rule{PDP: "nope"}); err == nil {
		t.Fatal("insert from unknown PDP succeeded")
	}
	if e := m.Epoch(); e != 0 {
		t.Fatalf("failed insert bumped the epoch to %d", e)
	}
	id, err := m.Insert(Rule{PDP: "p", Action: ActionAllow})
	if err != nil {
		t.Fatal(err)
	}
	if e := m.Epoch(); e != 1 {
		t.Fatalf("epoch after insert = %d, want 1", e)
	}
	d := m.Query(&FlowView{EtherType: netpkt.EtherTypeIPv4})
	if d.Epoch != 1 {
		t.Fatalf("decision epoch = %d, want 1", d.Epoch)
	}
	if err := m.Revoke(id); err != nil {
		t.Fatal(err)
	}
	if e := m.Epoch(); e != 2 {
		t.Fatalf("epoch after revoke = %d, want 2", e)
	}
	if err := m.Revoke(id); err == nil {
		t.Fatal("double revoke succeeded")
	}
	if e := m.Epoch(); e != 2 {
		t.Fatalf("failed revoke bumped the epoch to %d", e)
	}
	if n := m.RevokeAll("p"); n != 0 {
		t.Fatalf("RevokeAll removed %d rules from an empty policy", n)
	}
	if e := m.Epoch(); e != 2 {
		t.Fatalf("no-op RevokeAll bumped the epoch to %d", e)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Insert(Rule{PDP: "p", Action: ActionDeny}); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.RevokeAll("p"); n != 3 {
		t.Fatalf("RevokeAll removed %d rules, want 3", n)
	}
	if e := m.Epoch(); e != 6 {
		t.Fatalf("epoch after 3 inserts + RevokeAll = %d, want 6", e)
	}
}

// TestIndexClassCoverage places one rule in every index class (and the
// residual list) and verifies each is reachable, plus that absent flow
// identifiers cannot reach rules constraining them.
func TestIndexClassCoverage(t *testing.T) {
	m := NewManager()
	if err := m.RegisterPDP("p", 10); err != nil {
		t.Fatal(err)
	}
	srcIP := netpkt.MustParseIPv4("10.1.0.1")
	dstIP := netpkt.MustParseIPv4("10.2.0.1")
	srcMAC := netpkt.MAC{2, 0, 0, 0, 1, 1}
	dstMAC := netpkt.MAC{2, 0, 0, 0, 2, 2}
	arp := uint16(netpkt.EtherTypeARP)
	port := uint16(8080)
	specs := []struct {
		name string
		rule Rule
		flow FlowView
	}{
		{"srcIP", Rule{Src: EndpointSpec{IP: &srcIP}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Src: EndpointAttrs{HasIP: true, IP: srcIP}}},
		{"dstIP", Rule{Dst: EndpointSpec{IP: &dstIP}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Dst: EndpointAttrs{HasIP: true, IP: dstIP}}},
		{"srcMAC", Rule{Src: EndpointSpec{MAC: &srcMAC}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Src: EndpointAttrs{MAC: srcMAC}}},
		{"dstMAC", Rule{Dst: EndpointSpec{MAC: &dstMAC}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Dst: EndpointAttrs{MAC: dstMAC}}},
		{"srcUser", Rule{Src: EndpointSpec{User: "u-src"}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Src: EndpointAttrs{Users: []string{"other", "u-src"}}}},
		{"dstUser", Rule{Dst: EndpointSpec{User: "u-dst"}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Dst: EndpointAttrs{Users: []string{"u-dst"}}}},
		{"srcHost", Rule{Src: EndpointSpec{Host: "h-src"}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Src: EndpointAttrs{Host: "h-src"}}},
		{"dstHost", Rule{Dst: EndpointSpec{Host: "h-dst"}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Dst: EndpointAttrs{Host: "h-dst"}}},
		{"etherType", Rule{Props: FlowProperties{EtherType: &arp}},
			FlowView{EtherType: netpkt.EtherTypeARP}},
		{"residual", Rule{Src: EndpointSpec{Port: &port}},
			FlowView{EtherType: netpkt.EtherTypeIPv4, Src: EndpointAttrs{HasPort: true, Port: port}}},
	}
	for _, s := range specs {
		r := s.rule
		r.PDP = "p"
		r.Action = ActionAllow
		if _, err := m.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range specs {
		f := s.flow
		d := m.Query(&f)
		if !d.Matched || d.Action != ActionAllow {
			t.Errorf("%s: rule unreachable through its index: %+v", s.name, d)
		}
	}
	// A flow with no IP and no users must not reach IP- or user-indexed
	// rules, but still falls through to the residual scan.
	noID := &FlowView{EtherType: netpkt.EtherTypeIPv4, Src: EndpointAttrs{MAC: netpkt.MAC{2, 9, 9, 9, 9, 9}}}
	if d := m.Query(noID); d.Matched {
		t.Errorf("identifier-free flow matched %s", d.Rule)
	}
}

// TestDenyWinsInsideBucket: with an Allow and a Deny at the same priority
// both matching (via different index classes), Deny must win regardless of
// probe order.
func TestDenyWinsInsideBucket(t *testing.T) {
	m := NewManager()
	if err := m.RegisterPDP("p", 10); err != nil {
		t.Fatal(err)
	}
	ip := netpkt.MustParseIPv4("10.0.0.5")
	if _, err := m.Insert(Rule{PDP: "p", Action: ActionAllow, Src: EndpointSpec{IP: &ip}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(Rule{PDP: "p", Action: ActionDeny, Src: EndpointSpec{User: "eve"}}); err != nil {
		t.Fatal(err)
	}
	f := &FlowView{
		EtherType: netpkt.EtherTypeIPv4,
		Src:       EndpointAttrs{HasIP: true, IP: ip, Users: []string{"eve"}},
	}
	if d := m.Query(f); d.Action != ActionDeny {
		t.Fatalf("Deny did not win inside the bucket: %+v", d)
	}
}
