package policy

import "sort"

// Snapshot is an immutable, epoch-versioned view of the stored policy. The
// Manager publishes a fresh Snapshot on every mutation (insert, revoke,
// revoke-all) and readers load it through one atomic pointer, so the
// admission hot path queries policy with zero locking and zero allocation
// while writers build the next version on the side (copy-on-write).
//
// Everything reachable from a Snapshot — including every *Rule — is frozen:
// callers must treat returned rules as read-only. The epoch increases by
// exactly one per mutation, which is what lets the PCP's flow-decision
// cache detect staleness: a cached decision tagged with epoch E is valid
// only while the current epoch is still E.
type Snapshot struct {
	epoch uint64
	// buckets holds the rules grouped by priority, highest first, each
	// bucket indexed on its cheap discriminating fields (see index.go).
	buckets []bucket
	// all holds every rule ordered by id, for iteration without copying.
	all  []*Rule
	byID map[RuleID]*Rule
}

// emptySnapshot is the epoch-0 snapshot a fresh Manager starts from.
func emptySnapshot() *Snapshot {
	return &Snapshot{byID: map[RuleID]*Rule{}}
}

// buildSnapshot freezes the given rule set at the given epoch.
func buildSnapshot(epoch uint64, rules map[RuleID]*Rule) *Snapshot {
	s := &Snapshot{
		epoch: epoch,
		all:   make([]*Rule, 0, len(rules)),
		byID:  make(map[RuleID]*Rule, len(rules)),
	}
	for id, r := range rules {
		s.all = append(s.all, r)
		s.byID[id] = r
	}
	sort.Slice(s.all, func(i, j int) bool { return s.all[i].ID < s.all[j].ID })

	// Group by priority, highest first, preserving id order inside each
	// group so equal-priority iteration stays deterministic.
	byPrio := make(map[int][]*Rule)
	prios := make([]int, 0, 8)
	for _, r := range s.all {
		if _, ok := byPrio[r.Priority]; !ok {
			prios = append(prios, r.Priority)
		}
		byPrio[r.Priority] = append(byPrio[r.Priority], r)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))
	s.buckets = make([]bucket, len(prios))
	for i, p := range prios {
		s.buckets[i] = buildBucket(p, byPrio[p])
	}
	return s
}

// Epoch returns the snapshot's version number.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Len returns the number of rules in the snapshot.
func (s *Snapshot) Len() int { return len(s.all) }

// All returns every rule in the snapshot ordered by id. The returned slice
// and the rules it points to are immutable: callers must not modify them.
func (s *Snapshot) All() []*Rule { return s.all }

// Get returns the rule with the given id, or nil. The rule is immutable.
func (s *Snapshot) Get(id RuleID) *Rule { return s.byID[id] }

// Query returns the decision for a flow against this frozen policy: the
// highest-priority matching rule wins; among equal-priority matches with
// conflicting actions, Deny wins; with no match the decision is the
// default Deny. It performs no locking and no allocation.
//
//dfi:hotpath
func (s *Snapshot) Query(f *FlowView) Decision {
	for i := range s.buckets {
		if r := s.buckets[i].match(f); r != nil {
			return Decision{Action: r.Action, Rule: r, Matched: true, Epoch: s.epoch}
		}
	}
	return Decision{Action: ActionDeny, Epoch: s.epoch}
}
