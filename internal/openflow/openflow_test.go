package openflow

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"

	"github.com/dfi-sdn/dfi/internal/netpkt"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b, err := Encode(7, m)
	if err != nil {
		t.Fatalf("encode %v: %v", m.Type(), err)
	}
	xid, got, err := ReadMessage(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type(), err)
	}
	if xid != 7 {
		t.Fatalf("xid = %d, want 7", xid)
	}
	if got.Type() != m.Type() {
		t.Fatalf("type = %v, want %v", got.Type(), m.Type())
	}
	return got
}

func TestHeaderLayout(t *testing.T) {
	b, err := Encode(0xdeadbeef, &Hello{})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x04, 0x00, 0x00, 0x08, 0xde, 0xad, 0xbe, 0xef}
	if !bytes.Equal(b, want) {
		t.Fatalf("hello bytes = % x, want % x", b, want)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	got := roundTrip(t, &Hello{Elements: []byte{0, 1, 0, 8, 0, 0, 0, 0x10}})
	if h := got.(*Hello); len(h.Elements) != 8 {
		t.Fatalf("elements = %v", h.Elements)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	got := roundTrip(t, &EchoRequest{Data: []byte("ping")})
	if e := got.(*EchoRequest); string(e.Data) != "ping" {
		t.Fatalf("data = %q", e.Data)
	}
	got = roundTrip(t, &EchoReply{Data: []byte("pong")})
	if e := got.(*EchoReply); string(e.Data) != "pong" {
		t.Fatalf("data = %q", e.Data)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	got := roundTrip(t, &Error{ErrType: 5, Code: 9, Data: []byte{1, 2}})
	e := got.(*Error)
	if e.ErrType != 5 || e.Code != 9 || !bytes.Equal(e.Data, []byte{1, 2}) {
		t.Fatalf("got %+v", e)
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	fr := &FeaturesReply{
		DatapathID:   0x00000000000000ab,
		NumBuffers:   256,
		NumTables:    254,
		Capabilities: 0x47,
	}
	got := roundTrip(t, fr).(*FeaturesReply)
	if *got != *fr {
		t.Fatalf("got %+v, want %+v", got, fr)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	sc := &SetConfig{Flags: 0, MissSendLen: 0xffff}
	got := roundTrip(t, sc).(*SetConfig)
	if *got != *sc {
		t.Fatalf("got %+v, want %+v", got, sc)
	}
	gr := &GetConfigReply{MissSendLen: 128}
	got2 := roundTrip(t, gr).(*GetConfigReply)
	if *got2 != *gr {
		t.Fatalf("got %+v, want %+v", got2, gr)
	}
}

func sampleMatch() *Match {
	return &Match{
		InPort:  U32(3),
		EthSrc:  MACPtr(netpkt.MustParseMAC("02:00:00:00:00:01")),
		EthDst:  MACPtr(netpkt.MustParseMAC("02:00:00:00:00:02")),
		EthType: U16(netpkt.EtherTypeIPv4),
		IPProto: U8(netpkt.ProtoTCP),
		IPv4Src: IPPtr(netpkt.MustParseIPv4("10.0.0.1")),
		IPv4Dst: IPPtr(netpkt.MustParseIPv4("10.0.0.2")),
		TCPSrc:  U16(49152),
		TCPDst:  U16(445),
	}
}

func TestMatchRoundTrip(t *testing.T) {
	m := sampleMatch()
	b := m.Marshal()
	if len(b)%8 != 0 {
		t.Fatalf("match length %d not 8-aligned", len(b))
	}
	got, n, err := unmarshalMatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d, want %d", n, len(b))
	}
	if !got.Equal(m) {
		t.Fatalf("got %v, want %v", got, m)
	}
}

func TestEmptyMatchRoundTrip(t *testing.T) {
	m := &Match{}
	b := m.Marshal()
	if len(b) != 8 {
		t.Fatalf("empty match is %d bytes, want 8", len(b))
	}
	got, _, err := unmarshalMatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFields() != 0 {
		t.Fatalf("empty match decoded with %d fields", got.NumFields())
	}
}

func TestMatchUDPAndARPRoundTrip(t *testing.T) {
	m := &Match{
		EthType: U16(netpkt.EtherTypeIPv4),
		IPProto: U8(netpkt.ProtoUDP),
		UDPSrc:  U16(53),
		UDPDst:  U16(5353),
	}
	got, _, err := unmarshalMatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("got %v, want %v", got, m)
	}
	a := &Match{
		EthType: U16(netpkt.EtherTypeARP),
		ARPSPA:  IPPtr(netpkt.MustParseIPv4("10.0.0.1")),
		ARPTPA:  IPPtr(netpkt.MustParseIPv4("10.0.0.2")),
	}
	got, _, err = unmarshalMatch(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatalf("got %v, want %v", got, a)
	}
}

func TestMatchClone(t *testing.T) {
	m := sampleMatch()
	c := m.Clone()
	if !c.Equal(m) {
		t.Fatalf("clone %v != original %v", c, m)
	}
	*c.InPort = 99
	if *m.InPort == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestMatchesKey(t *testing.T) {
	frame := netpkt.BuildTCP(
		netpkt.MustParseMAC("02:00:00:00:00:01"), netpkt.MustParseMAC("02:00:00:00:00:02"),
		netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"),
		&netpkt.TCPSegment{SrcPort: 49152, DstPort: 445, Flags: netpkt.TCPSyn},
	)
	k, err := netpkt.ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMatch()
	if !m.MatchesKey(k, 3) {
		t.Fatal("exact match should match its own packet")
	}
	if m.MatchesKey(k, 4) {
		t.Fatal("wrong in-port should not match")
	}
	wildcard := &Match{}
	if !wildcard.MatchesKey(k, 1) {
		t.Fatal("wildcard match should match everything")
	}
	udpOnly := &Match{IPProto: U8(netpkt.ProtoUDP)}
	if udpOnly.MatchesKey(k, 3) {
		t.Fatal("UDP match should not match TCP packet")
	}
}

func TestExactMatchForPinsAllFields(t *testing.T) {
	frame := netpkt.BuildTCP(
		netpkt.MustParseMAC("02:00:00:00:00:01"), netpkt.MustParseMAC("02:00:00:00:00:02"),
		netpkt.MustParseIPv4("10.0.0.1"), netpkt.MustParseIPv4("10.0.0.2"),
		&netpkt.TCPSegment{SrcPort: 49152, DstPort: 445},
	)
	k, err := netpkt.ExtractFlowKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	m := ExactMatchFor(k, 7)
	if m.NumFields() != 9 {
		t.Fatalf("exact TCP match pins %d fields, want 9: %v", m.NumFields(), m)
	}
	if !m.MatchesKey(k, 7) {
		t.Fatal("exact match must match the packet it was built from")
	}
	// A different source port must not match.
	k2 := k
	k2.L4Src = 50000
	if m.MatchesKey(k2, 7) {
		t.Fatal("exact match matched a different flow")
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	p := &PacketIn{
		BufferID: NoBuffer,
		Reason:   PacketInReasonNoMatch,
		TableID:  0,
		Cookie:   0xfeed,
		Match:    &Match{InPort: U32(12)},
		Data:     []byte{0xde, 0xad},
	}
	got := roundTrip(t, p).(*PacketIn)
	if got.BufferID != p.BufferID || got.Reason != p.Reason || got.Cookie != p.Cookie {
		t.Fatalf("got %+v", got)
	}
	if got.InPort() != 12 {
		t.Fatalf("InPort = %d, want 12", got.InPort())
	}
	if !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("data = %v", got.Data)
	}
	if got.TotalLen != 2 {
		t.Fatalf("TotalLen = %d, want 2 (defaulted)", got.TotalLen)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	p := &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortController,
		Actions:  []Action{&ActionOutput{Port: 4, MaxLen: ControllerMaxLen}},
		Data:     []byte{1, 2, 3},
	}
	got := roundTrip(t, p).(*PacketOut)
	if got.InPort != p.InPort || len(got.Actions) != 1 {
		t.Fatalf("got %+v", got)
	}
	out, ok := got.Actions[0].(*ActionOutput)
	if !ok || out.Port != 4 || out.MaxLen != ControllerMaxLen {
		t.Fatalf("action = %#v", got.Actions[0])
	}
	if !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("data = %v", got.Data)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	fm := &FlowMod{
		Cookie:      0xabcdef,
		CookieMask:  0xffffffff,
		TableID:     1,
		Command:     FlowModAdd,
		IdleTimeout: 30,
		HardTimeout: 0,
		Priority:    100,
		BufferID:    NoBuffer,
		OutPort:     PortAny,
		OutGroup:    0xffffffff,
		Flags:       FlowFlagSendFlowRem,
		Match:       sampleMatch(),
		Instructions: []Instruction{
			&InstructionApplyActions{Actions: []Action{&ActionOutput{Port: 2, MaxLen: 0}}},
			&InstructionGotoTable{TableID: 2},
		},
	}
	got := roundTrip(t, fm).(*FlowMod)
	if got.Cookie != fm.Cookie || got.TableID != 1 || got.Command != FlowModAdd ||
		got.Priority != 100 || got.IdleTimeout != 30 || got.Flags != FlowFlagSendFlowRem {
		t.Fatalf("got %+v", got)
	}
	if !got.Match.Equal(fm.Match) {
		t.Fatalf("match = %v, want %v", got.Match, fm.Match)
	}
	if len(got.Instructions) != 2 {
		t.Fatalf("instructions = %d, want 2", len(got.Instructions))
	}
	apply, ok := got.Instructions[0].(*InstructionApplyActions)
	if !ok || len(apply.Actions) != 1 {
		t.Fatalf("instr[0] = %#v", got.Instructions[0])
	}
	gt, ok := got.Instructions[1].(*InstructionGotoTable)
	if !ok || gt.TableID != 2 {
		t.Fatalf("instr[1] = %#v", got.Instructions[1])
	}
}

func TestFlowModReMarshalIsStable(t *testing.T) {
	fm := &FlowMod{
		Cookie: 1, TableID: 0, Command: FlowModDelete,
		BufferID: NoBuffer, OutPort: PortAny, OutGroup: 0xffffffff,
		Match: sampleMatch(),
	}
	b1, err := Encode(9, fm)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := ReadMessage(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(9, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-marshal differs:\n% x\n% x", b1, b2)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	fr := &FlowRemoved{
		Cookie:      42,
		Priority:    10,
		Reason:      FlowRemovedDelete,
		TableID:     0,
		DurationSec: 5,
		PacketCount: 100,
		ByteCount:   6400,
		Match:       sampleMatch(),
	}
	got := roundTrip(t, fr).(*FlowRemoved)
	if got.Cookie != 42 || got.Reason != FlowRemovedDelete || got.PacketCount != 100 {
		t.Fatalf("got %+v", got)
	}
	if !got.Match.Equal(fr.Match) {
		t.Fatalf("match = %v", got.Match)
	}
}

func TestMultipartFlowStatsRoundTrip(t *testing.T) {
	req := &MultipartRequest{
		PartType: MultipartFlow,
		Flow: &FlowStatsRequest{
			TableID:    AllTables,
			OutPort:    PortAny,
			OutGroup:   0xffffffff,
			Cookie:     0xf0,
			CookieMask: 0xff,
			Match:      &Match{EthType: U16(netpkt.EtherTypeIPv4)},
		},
	}
	gotReq := roundTrip(t, req).(*MultipartRequest)
	if gotReq.Flow == nil || gotReq.Flow.TableID != AllTables || gotReq.Flow.Cookie != 0xf0 {
		t.Fatalf("got %+v", gotReq.Flow)
	}

	rep := &MultipartReply{
		PartType: MultipartFlow,
		Flows: []*FlowStatsEntry{
			{
				TableID: 0, Priority: 5, Cookie: 1, PacketCount: 7, ByteCount: 900,
				Match:        sampleMatch(),
				Instructions: []Instruction{&InstructionGotoTable{TableID: 1}},
			},
			{
				TableID: 1, Priority: 1, Cookie: 2,
				Match:        &Match{},
				Instructions: []Instruction{&InstructionApplyActions{Actions: []Action{&ActionOutput{Port: 1}}}},
			},
		},
	}
	gotRep := roundTrip(t, rep).(*MultipartReply)
	if len(gotRep.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(gotRep.Flows))
	}
	if gotRep.Flows[0].PacketCount != 7 || gotRep.Flows[0].TableID != 0 {
		t.Fatalf("flow[0] = %+v", gotRep.Flows[0])
	}
	if gotRep.Flows[1].TableID != 1 {
		t.Fatalf("flow[1] = %+v", gotRep.Flows[1])
	}
}

func TestMultipartNonFlowPassthrough(t *testing.T) {
	req := &MultipartRequest{PartType: MultipartDesc, RawBody: []byte{1, 2, 3}}
	got := roundTrip(t, req).(*MultipartRequest)
	if !bytes.Equal(got.RawBody, req.RawBody) {
		t.Fatalf("raw body = %v", got.RawBody)
	}
}

func TestRawPassthroughPreservesUnknownTypes(t *testing.T) {
	r := &Raw{RawType: TypeGroupMod, Body: []byte{9, 9, 9, 9}}
	b1, err := Encode(3, r)
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := ReadMessage(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := m.(*Raw)
	if !ok {
		t.Fatalf("decoded %T, want *Raw", m)
	}
	if raw.Type() != TypeGroupMod {
		t.Fatalf("type = %v", raw.Type())
	}
	b2, err := Encode(3, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("raw passthrough not byte-identical")
	}
}

func TestReadMessageRejectsBadVersion(t *testing.T) {
	b := []byte{0x01, 0x00, 0x00, 0x08, 0, 0, 0, 1}
	if _, _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Fatal("want error for OF 1.0 version byte")
	}
}

func TestReadMessageRejectsBadLength(t *testing.T) {
	b := []byte{0x04, 0x00, 0x00, 0x04, 0, 0, 0, 1} // length 4 < header
	if _, _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Fatal("want error for undersized length")
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	b := []byte{0x04, 0x02, 0x00, 0x10, 0, 0, 0, 1, 0xaa} // claims 16 bytes, has 9
	if _, _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Fatal("want error for truncated body")
	}
}

func TestConnSendRecv(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		xid, m, err := cb.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- cb.SendXID(xid, &EchoReply{Data: m.(*EchoRequest).Data})
	}()
	xid, err := ca.Send(&EchoRequest{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	gotXID, m, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gotXID != xid {
		t.Fatalf("reply xid = %d, want %d", gotXID, xid)
	}
	if rep, ok := m.(*EchoReply); !ok || string(rep.Data) != "x" {
		t.Fatalf("reply = %#v", m)
	}
}

func TestConnHandshake(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ctrl, sw := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		// Switch side: answer the peer HELLO then FEATURES_REQUEST.
		// net.Pipe has no buffering, so read first to avoid a mutual
		// HELLO write deadlock (TCP sockets would buffer these).
		for {
			xid, m, err := sw.Recv()
			if err != nil {
				done <- err
				return
			}
			switch m.(type) {
			case *Hello:
				if _, err := sw.Send(&Hello{}); err != nil {
					done <- err
					return
				}
			case *FeaturesRequest:
				done <- sw.SendXID(xid, &FeaturesReply{DatapathID: 0x99, NumTables: 8})
				return
			default:
				done <- io.ErrUnexpectedEOF
				return
			}
		}
	}()
	fr, err := ctrl.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if fr.DatapathID != 0x99 || fr.NumTables != 8 {
		t.Fatalf("features = %+v", fr)
	}
}

func TestMessageTypeString(t *testing.T) {
	if got := TypePacketIn.String(); got != "PACKET_IN" {
		t.Fatalf("String() = %q", got)
	}
	if got := MessageType(99).String(); got != "OFPT(99)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAllModeledTypesDispatch(t *testing.T) {
	types := []MessageType{
		TypeHello, TypeError, TypeEchoRequest, TypeEchoReply,
		TypeFeaturesRequest, TypeFeaturesReply, TypeGetConfigReq,
		TypeGetConfigReply, TypeSetConfig, TypePacketIn, TypeFlowRemoved,
		TypePortStatus, TypePacketOut, TypeFlowMod, TypeTableMod,
		TypeMultipartReq, TypeMultipartReply,
		TypeBarrierRequest, TypeBarrierReply,
	}
	for _, tt := range types {
		m := newMessage(tt)
		if _, isRaw := m.(*Raw); isRaw {
			t.Errorf("type %v dispatched to Raw", tt)
		}
		if m.Type() != tt {
			t.Errorf("newMessage(%v).Type() = %v", tt, m.Type())
		}
	}
	if _, isRaw := newMessage(TypePortStatus).(*Raw); isRaw {
		t.Error("PORT_STATUS should decode as a typed message")
	}
	if reflect.TypeOf(newMessage(TypeGroupMod)) != reflect.TypeOf(&Raw{}) {
		t.Error("GROUP_MOD should decode as Raw passthrough")
	}
}
