package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var errTooShort = errors.New("buffer too short")

// Action is an OpenFlow action.
type Action interface {
	// Marshal serializes the action including its common header.
	Marshal() []byte
}

// Action type codes.
const (
	actionTypeOutput uint16 = 0
)

// ActionOutput forwards a packet out a port (ofp_action_output).
type ActionOutput struct {
	Port   uint32
	MaxLen uint16
}

var _ Action = (*ActionOutput)(nil)

// ControllerMaxLen asks the switch to send the full packet to the
// controller (OFPCML_NO_BUFFER).
const ControllerMaxLen uint16 = 0xffff

// Marshal implements Action.
func (a *ActionOutput) Marshal() []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint16(b[0:2], actionTypeOutput)
	binary.BigEndian.PutUint16(b[2:4], 16)
	binary.BigEndian.PutUint32(b[4:8], a.Port)
	binary.BigEndian.PutUint16(b[8:10], a.MaxLen)
	return b
}

// ActionRaw preserves an unmodeled action byte-for-byte for passthrough.
type ActionRaw struct {
	Bytes []byte
}

var _ Action = (*ActionRaw)(nil)

// Marshal implements Action.
func (a *ActionRaw) Marshal() []byte { return a.Bytes }

func marshalActions(actions []Action) []byte {
	var b []byte
	for _, a := range actions {
		b = append(b, a.Marshal()...)
	}
	return b
}

// appendAction append-encodes one action onto dst. Known concrete types
// encode in place without the Marshal allocation; unknown implementations
// fall back to Marshal.
func appendAction(dst []byte, a Action) []byte {
	switch a := a.(type) {
	case *ActionOutput:
		n := len(dst)
		dst = grow(dst, 16)
		binary.BigEndian.PutUint16(dst[n:n+2], actionTypeOutput)
		binary.BigEndian.PutUint16(dst[n+2:n+4], 16)
		binary.BigEndian.PutUint32(dst[n+4:n+8], a.Port)
		binary.BigEndian.PutUint16(dst[n+8:n+10], a.MaxLen)
		return dst
	case *ActionRaw:
		return appendBytes(dst, a.Bytes)
	default:
		return append(dst, a.Marshal()...)
	}
}

func appendActions(dst []byte, actions []Action) []byte {
	for _, a := range actions {
		dst = appendAction(dst, a)
	}
	return dst
}

// unmarshalActions parses a list of actions occupying exactly b.
func unmarshalActions(b []byte) ([]Action, error) {
	var actions []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("action header: %w", errTooShort)
		}
		atype := binary.BigEndian.Uint16(b[0:2])
		alen := int(binary.BigEndian.Uint16(b[2:4]))
		if alen < 8 || alen%8 != 0 || alen > len(b) {
			return nil, fmt.Errorf("action: bad length %d", alen)
		}
		switch atype {
		case actionTypeOutput:
			if alen != 16 {
				return nil, fmt.Errorf("output action: bad length %d", alen)
			}
			actions = append(actions, &ActionOutput{
				Port:   binary.BigEndian.Uint32(b[4:8]),
				MaxLen: binary.BigEndian.Uint16(b[8:10]),
			})
		default:
			actions = append(actions, &ActionRaw{Bytes: append([]byte(nil), b[:alen]...)})
		}
		b = b[alen:]
	}
	return actions, nil
}

// Instruction is an OpenFlow 1.3 flow instruction.
type Instruction interface {
	// Marshal serializes the instruction including its common header.
	Marshal() []byte
}

// Instruction type codes.
const (
	instrTypeGotoTable    uint16 = 1
	instrTypeWriteActions uint16 = 3
	instrTypeApplyActions uint16 = 4
	instrTypeClearActions uint16 = 5
)

// InstructionGotoTable continues pipeline processing at another table. The
// DFI Proxy rewrites TableID in these when crossing between the controller's
// table space and the switch's (paper §IV-B).
type InstructionGotoTable struct {
	TableID uint8
}

var _ Instruction = (*InstructionGotoTable)(nil)

// Marshal implements Instruction.
func (i *InstructionGotoTable) Marshal() []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint16(b[0:2], instrTypeGotoTable)
	binary.BigEndian.PutUint16(b[2:4], 8)
	b[4] = i.TableID
	return b
}

// InstructionApplyActions applies actions immediately.
type InstructionApplyActions struct {
	Actions []Action
}

var _ Instruction = (*InstructionApplyActions)(nil)

// Marshal implements Instruction.
func (i *InstructionApplyActions) Marshal() []byte {
	acts := marshalActions(i.Actions)
	b := make([]byte, 8+len(acts))
	binary.BigEndian.PutUint16(b[0:2], instrTypeApplyActions)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	copy(b[8:], acts)
	return b
}

// InstructionWriteActions writes actions into the action set.
type InstructionWriteActions struct {
	Actions []Action
}

var _ Instruction = (*InstructionWriteActions)(nil)

// Marshal implements Instruction.
func (i *InstructionWriteActions) Marshal() []byte {
	acts := marshalActions(i.Actions)
	b := make([]byte, 8+len(acts))
	binary.BigEndian.PutUint16(b[0:2], instrTypeWriteActions)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	copy(b[8:], acts)
	return b
}

// InstructionClearActions clears the action set.
type InstructionClearActions struct{}

var _ Instruction = (*InstructionClearActions)(nil)

// Marshal implements Instruction.
func (i *InstructionClearActions) Marshal() []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint16(b[0:2], instrTypeClearActions)
	binary.BigEndian.PutUint16(b[2:4], 8)
	return b
}

// InstructionRaw preserves an unmodeled instruction for passthrough.
type InstructionRaw struct {
	Bytes []byte
}

var _ Instruction = (*InstructionRaw)(nil)

// Marshal implements Instruction.
func (i *InstructionRaw) Marshal() []byte { return i.Bytes }

func marshalInstructions(instrs []Instruction) []byte {
	var b []byte
	for _, in := range instrs {
		b = append(b, in.Marshal()...)
	}
	return b
}

// appendInstruction append-encodes one instruction onto dst; known concrete
// types encode in place, unknown implementations fall back to Marshal.
func appendInstruction(dst []byte, in Instruction) []byte {
	switch in := in.(type) {
	case *InstructionGotoTable:
		n := len(dst)
		dst = grow(dst, 8)
		binary.BigEndian.PutUint16(dst[n:n+2], instrTypeGotoTable)
		binary.BigEndian.PutUint16(dst[n+2:n+4], 8)
		dst[n+4] = in.TableID
		return dst
	case *InstructionApplyActions:
		return appendActionInstr(dst, instrTypeApplyActions, in.Actions)
	case *InstructionWriteActions:
		return appendActionInstr(dst, instrTypeWriteActions, in.Actions)
	case *InstructionClearActions:
		n := len(dst)
		dst = grow(dst, 8)
		binary.BigEndian.PutUint16(dst[n:n+2], instrTypeClearActions)
		binary.BigEndian.PutUint16(dst[n+2:n+4], 8)
		return dst
	case *InstructionRaw:
		return appendBytes(dst, in.Bytes)
	default:
		return append(dst, in.Marshal()...)
	}
}

// appendActionInstr encodes an action-list instruction (apply/write),
// patching the instruction length after the actions are appended.
func appendActionInstr(dst []byte, itype uint16, actions []Action) []byte {
	start := len(dst)
	dst = grow(dst, 8) // header + 4 pad bytes, zeroed by grow
	dst = appendActions(dst, actions)
	binary.BigEndian.PutUint16(dst[start:start+2], itype)
	binary.BigEndian.PutUint16(dst[start+2:start+4], uint16(len(dst)-start))
	return dst
}

func appendInstructions(dst []byte, instrs []Instruction) []byte {
	for _, in := range instrs {
		dst = appendInstruction(dst, in)
	}
	return dst
}

// unmarshalInstructions parses a list of instructions occupying exactly b.
func unmarshalInstructions(b []byte) ([]Instruction, error) {
	var instrs []Instruction
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("instruction header: %w", errTooShort)
		}
		itype := binary.BigEndian.Uint16(b[0:2])
		ilen := int(binary.BigEndian.Uint16(b[2:4]))
		if ilen < 8 || ilen > len(b) {
			return nil, fmt.Errorf("instruction: bad length %d", ilen)
		}
		switch itype {
		case instrTypeGotoTable:
			instrs = append(instrs, &InstructionGotoTable{TableID: b[4]})
		case instrTypeApplyActions:
			acts, err := unmarshalActions(b[8:ilen])
			if err != nil {
				return nil, fmt.Errorf("apply-actions: %w", err)
			}
			instrs = append(instrs, &InstructionApplyActions{Actions: acts})
		case instrTypeWriteActions:
			acts, err := unmarshalActions(b[8:ilen])
			if err != nil {
				return nil, fmt.Errorf("write-actions: %w", err)
			}
			instrs = append(instrs, &InstructionWriteActions{Actions: acts})
		case instrTypeClearActions:
			instrs = append(instrs, &InstructionClearActions{})
		default:
			instrs = append(instrs, &InstructionRaw{Bytes: append([]byte(nil), b[:ilen]...)})
		}
		b = b[ilen:]
	}
	return instrs, nil
}
