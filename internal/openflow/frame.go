package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame is one OpenFlow message as raw wire bytes (header + body). The DFI
// Proxy's relay operates on frames: the common table-space rewrites
// (flow-mod, packet-in, flow-removed, table-mod table ids) are applied in
// place and the bytes forwarded verbatim, so steady-state relaying performs
// no decode, no re-encode and no allocation. Message types that need
// structural interpretation (features reply, multipart filtering, table-0
// packet-ins) fall back to Decode.
//
// A Frame's buffer is reused by the next ReadFrame into it; consumers that
// retain message contents must Decode (every UnmarshalBody deep-copies).
type Frame struct {
	buf []byte
}

// Type returns the frame's ofp_type. Valid only after a successful read.
func (f *Frame) Type() MessageType { return MessageType(f.buf[1]) }

// XID returns the frame's transaction id.
func (f *Frame) XID() uint32 { return binary.BigEndian.Uint32(f.buf[4:8]) }

// SetXID rewrites the frame's transaction id in place.
func (f *Frame) SetXID(xid uint32) { binary.BigEndian.PutUint32(f.buf[4:8], xid) }

// Len returns the total wire length (header + body).
func (f *Frame) Len() int { return len(f.buf) }

// Bytes returns the frame's wire bytes. The slice aliases the frame's
// reusable buffer: it is valid until the next read into this frame.
func (f *Frame) Bytes() []byte { return f.buf }

// Body returns the bytes after the 8-byte header, aliasing the buffer.
func (f *Frame) Body() []byte { return f.buf[headerLen:] }

// SetBytes loads b (a full wire message) into the frame, copying it into
// the frame's reusable buffer.
func (f *Frame) SetBytes(b []byte) {
	f.buf = appendBytes(f.buf[:0], b)
}

// Alias binds the frame to b without copying: the frame views b directly,
// so in-place rewrites (Shift*) mutate b and the frame is valid only while
// b is. The event-loop relay uses this to walk frames straight out of a
// read chunk; everyone else should prefer SetBytes. b must be a complete,
// header-valid wire message.
//
//dfi:hotpath
func (f *Frame) Alias(b []byte) { f.buf = b }

// AppendMessageTo encodes m into the frame's reusable buffer. It exists for
// tests and harnesses that build frames from typed messages.
func (f *Frame) AppendMessageTo(xid uint32, m Message) error {
	b, err := AppendMessage(f.buf[:0], xid, m)
	if err != nil {
		return err
	}
	f.buf = b
	return nil
}

// Decode parses the frame into a typed Message. The result never aliases
// the frame's buffer.
func (f *Frame) Decode() (uint32, Message, error) {
	t := f.Type()
	m := newMessage(t)
	if err := m.UnmarshalBody(f.Body()); err != nil {
		return 0, nil, fmt.Errorf("openflow: decode %v: %w", t, err)
	}
	return f.XID(), m, nil
}

// ReadFrame reads one wire message from r into f, reusing f's buffer. It
// performs the same header validation as ReadMessage but no body decode.
//
//dfi:hotpath
func ReadFrame(r io.Reader, f *Frame) error {
	hdr := grow(f.buf[:0], headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		f.buf = f.buf[:0]
		return err
	}
	if hdr[0] != Version {
		f.buf = f.buf[:0]
		return badVersionErr(hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length > MaxMessageLen {
		f.buf = f.buf[:0]
		return badLengthErr(length)
	}
	b := grow(hdr, length-headerLen)
	if _, err := io.ReadFull(r, b[headerLen:]); err != nil {
		f.buf = b[:0]
		return readBodyErr(err)
	}
	f.buf = b
	return nil
}

// badVersionErr, badLengthErr and readBodyErr keep the fmt calls off the
// annotated read path.
func badVersionErr(v uint8) error {
	return fmt.Errorf("openflow: unsupported version 0x%02x", v)
}

func badLengthErr(length int) error {
	return fmt.Errorf("openflow: bad message length %d", length)
}

func readBodyErr(err error) error {
	return fmt.Errorf("openflow: read body: %w", err)
}

// shiftTableID applies delta to a table id with the same clamping the
// decode-path rewrite uses: never below 0 (table 0 is DFI's).
func shiftTableID(t uint8, delta int) uint8 {
	s := int(t) + delta
	if s < 0 {
		s = 0
	}
	return uint8(s)
}

// Wire offsets of the table-id byte within each rewritable body
// (OpenFlow 1.3.5 struct layouts; see messages.go for the field order).
const (
	flowModFixedLen     = 40 // ofp_flow_mod body before the match
	flowModTableOff     = 16
	packetInTableOff    = 7
	flowRemovedTableOff = 11
	tableModTableOff    = 0
	matchOffInFlowMod   = flowModFixedLen
)

// PacketInTableID returns the packet-in frame's table id; ok is false when
// the frame is not a packet-in or is too short to carry one.
func (f *Frame) PacketInTableID() (uint8, bool) {
	b := f.Body()
	if f.Type() != TypePacketIn || len(b) <= packetInTableOff {
		return 0, false
	}
	return b[packetInTableOff], true
}

// ShiftPacketInTable rewrites the packet-in table id in place by delta.
// It reports whether the rewrite was applied.
//
//dfi:hotpath
func (f *Frame) ShiftPacketInTable(delta int) bool {
	b := f.Body()
	if f.Type() != TypePacketIn || len(b) <= packetInTableOff {
		return false
	}
	b[packetInTableOff] = shiftTableID(b[packetInTableOff], delta)
	return true
}

// FlowRemovedTableID returns the flow-removed frame's table id; ok is
// false when the frame is not a flow-removed or is too short.
func (f *Frame) FlowRemovedTableID() (uint8, bool) {
	b := f.Body()
	if f.Type() != TypeFlowRemoved || len(b) <= flowRemovedTableOff {
		return 0, false
	}
	return b[flowRemovedTableOff], true
}

// ShiftFlowRemovedTable rewrites the flow-removed table id in place.
//
//dfi:hotpath
func (f *Frame) ShiftFlowRemovedTable(delta int) bool {
	b := f.Body()
	if f.Type() != TypeFlowRemoved || len(b) <= flowRemovedTableOff {
		return false
	}
	b[flowRemovedTableOff] = shiftTableID(b[flowRemovedTableOff], delta)
	return true
}

// ShiftTableModTable rewrites the table-mod table id in place by delta,
// leaving OFPTT_ALL (0xff) untouched.
//
//dfi:hotpath
func (f *Frame) ShiftTableModTable(delta int) bool {
	b := f.Body()
	if f.Type() != TypeTableMod || len(b) <= tableModTableOff {
		return false
	}
	if b[tableModTableOff] != AllTables {
		b[tableModTableOff] = shiftTableID(b[tableModTableOff], delta)
	}
	return true
}

// ShiftFlowModTables rewrites a flow-mod frame's table space in place:
// the table id (unless OFPTT_ALL) and every goto-table instruction target
// shift by delta, exactly mirroring the decode-path rewrite
// (TableID±1 + shiftInstructions in the proxy). Returns false when the
// frame is not a structurally valid flow-mod, in which case nothing was
// modified and the caller should fall back to Decode.
//
//dfi:hotpath
func (f *Frame) ShiftFlowModTables(delta int) bool {
	b := f.Body()
	if f.Type() != TypeFlowMod || len(b) < flowModFixedLen+4 {
		return false
	}
	// Walk the match to find the instruction list. ofp_match length covers
	// type+length+oxms and excludes the trailing pad.
	if binary.BigEndian.Uint16(b[matchOffInFlowMod:matchOffInFlowMod+2]) != 1 {
		return false // not OFPMT_OXM
	}
	mlen := int(binary.BigEndian.Uint16(b[matchOffInFlowMod+2 : matchOffInFlowMod+4]))
	if mlen < 4 {
		return false
	}
	padded := (mlen + 7) / 8 * 8
	ioff := matchOffInFlowMod + padded
	if ioff > len(b) {
		return false
	}
	// Validate the whole instruction list before mutating anything, so a
	// malformed frame is left untouched for the decode fallback.
	for rest := b[ioff:]; len(rest) > 0; {
		if len(rest) < 4 {
			return false
		}
		ilen := int(binary.BigEndian.Uint16(rest[2:4]))
		if ilen < 8 || ilen > len(rest) {
			return false
		}
		rest = rest[ilen:]
	}
	if b[flowModTableOff] != AllTables {
		b[flowModTableOff] = shiftTableID(b[flowModTableOff], delta)
	}
	for rest := b[ioff:]; len(rest) > 0; {
		itype := binary.BigEndian.Uint16(rest[0:2])
		ilen := int(binary.BigEndian.Uint16(rest[2:4]))
		if itype == instrTypeGotoTable {
			rest[4] = shiftTableID(rest[4], delta)
		}
		rest = rest[ilen:]
	}
	return true
}
