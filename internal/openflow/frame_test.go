package openflow

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
)

// sampleFlowMod builds a representative flow-mod: full match, apply-actions
// and a goto-table — the shape the proxy relays and the PCP installs.
func sampleFlowMod() *FlowMod {
	return &FlowMod{
		Cookie:      0xd0f1000000000001,
		CookieMask:  0xffffffffffffffff,
		TableID:     1,
		Command:     FlowModAdd,
		IdleTimeout: 30,
		HardTimeout: 300,
		Priority:    1000,
		BufferID:    NoBuffer,
		Match:       sampleMatch(),
		Instructions: []Instruction{
			&InstructionApplyActions{Actions: []Action{&ActionOutput{Port: 2, MaxLen: ControllerMaxLen}}},
			&InstructionGotoTable{TableID: 3},
		},
	}
}

func samplePacketIn() *PacketIn {
	return &PacketIn{
		BufferID: NoBuffer,
		Reason:   PacketInReasonNoMatch,
		TableID:  1,
		Cookie:   0xd0f1,
		Match:    &Match{InPort: U32(3)},
		Data:     bytes.Repeat([]byte{0xab}, 64),
	}
}

// TestAppendMessageMatchesEncode pins the append-style encoders to the
// MarshalBody wire layout: AppendMessage must produce byte-identical output
// and must preserve (only append to) the destination prefix, even when the
// destination has stale capacity from a previous, larger message.
func TestAppendMessageMatchesEncode(t *testing.T) {
	msgs := []Message{
		&Hello{},
		sampleFlowMod(),
		samplePacketIn(),
		&PacketOut{
			BufferID: NoBuffer,
			InPort:   PortController,
			Actions:  []Action{&ActionOutput{Port: 1, MaxLen: 128}},
			Data:     []byte{1, 2, 3, 4},
		},
		&Raw{RawType: 0x63, Body: []byte{9, 8, 7}},
		&FlowMod{Command: FlowModDelete, TableID: AllTables, OutPort: PortAny, OutGroup: 0xffffffff},
	}
	for _, m := range msgs {
		t.Run(fmt.Sprintf("%v", m.Type()), func(t *testing.T) {
			want, err := Encode(42, m)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			// Fresh destination with a prefix to preserve.
			prefix := []byte("PRE")
			got, err := AppendMessage(prefix, 42, m)
			if err != nil {
				t.Fatalf("AppendMessage: %v", err)
			}
			if !bytes.Equal(got[:3], prefix) {
				t.Fatalf("prefix clobbered: % x", got[:3])
			}
			if !bytes.Equal(got[3:], want) {
				t.Fatalf("append bytes = % x\nwant          % x", got[3:], want)
			}
			// Reused destination: fill capacity with junk first so any
			// encoder relying on fresh-make zeroing (pads, reserved
			// fields) would be caught.
			dirty := bytes.Repeat([]byte{0xff}, len(want)+64)
			got2, err := AppendMessage(dirty[:0], 42, m)
			if err != nil {
				t.Fatalf("AppendMessage(reused): %v", err)
			}
			if !bytes.Equal(got2, want) {
				t.Fatalf("reused-buffer bytes = % x\nwant                % x", got2, want)
			}
		})
	}
}

// TestAppendMessageErrorRestoresDst: a failed encode must return the
// destination unchanged (truncated back to the original length).
func TestAppendMessageErrorRestoresDst(t *testing.T) {
	huge := &Raw{RawType: 0x63, Body: make([]byte, MaxMessageLen)}
	dst := []byte{1, 2, 3}
	got, err := AppendMessage(dst, 1, huge)
	if err == nil {
		t.Fatal("want oversize error")
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("dst after error = % x", got)
	}
}

func frameFor(t *testing.T, xid uint32, m Message) *Frame {
	t.Helper()
	var f Frame
	if err := f.AppendMessageTo(xid, m); err != nil {
		t.Fatalf("frame encode %v: %v", m.Type(), err)
	}
	return &f
}

// TestShiftFlowModTablesParity checks the in-place frame rewrite against
// the decode-path semantics: table id and every goto-table target shift by
// delta, OFPTT_ALL stays, shifts clamp at table 0.
func TestShiftFlowModTablesParity(t *testing.T) {
	f := frameFor(t, 7, sampleFlowMod())
	orig := append([]byte(nil), f.Bytes()...)
	if !f.ShiftFlowModTables(+1) {
		t.Fatal("ShiftFlowModTables = false on valid flow-mod")
	}
	_, m, err := f.Decode()
	if err != nil {
		t.Fatal(err)
	}
	fm := m.(*FlowMod)
	if fm.TableID != 2 {
		t.Fatalf("TableID = %d, want 2", fm.TableID)
	}
	var gt *InstructionGotoTable
	for _, in := range fm.Instructions {
		if g, ok := in.(*InstructionGotoTable); ok {
			gt = g
		}
	}
	if gt == nil || gt.TableID != 4 {
		t.Fatalf("goto-table after shift = %+v", gt)
	}
	// Everything except the two table bytes must be untouched.
	f.ShiftFlowModTables(-1)
	if !bytes.Equal(f.Bytes(), orig) {
		t.Fatal("shift +1 then -1 does not round-trip the frame bytes")
	}

	// Clamp at 0: shifting table 0 down stays at 0 (parity with the
	// decode-path rewrite).
	zero := sampleFlowMod()
	zero.TableID = 0
	zero.Instructions = []Instruction{&InstructionGotoTable{TableID: 0}}
	fz := frameFor(t, 7, zero)
	fz.ShiftFlowModTables(-1)
	_, m, err = fz.Decode()
	if err != nil {
		t.Fatal(err)
	}
	fm = m.(*FlowMod)
	if fm.TableID != 0 || fm.Instructions[0].(*InstructionGotoTable).TableID != 0 {
		t.Fatalf("clamped shift: table=%d instr=%+v", fm.TableID, fm.Instructions[0])
	}

	// OFPTT_ALL (wildcard delete) must not shift.
	all := &FlowMod{Command: FlowModDelete, TableID: AllTables, Match: &Match{}}
	fa := frameFor(t, 7, all)
	if !fa.ShiftFlowModTables(+1) {
		t.Fatal("ShiftFlowModTables = false on OFPTT_ALL delete")
	}
	if _, m, err = fa.Decode(); err != nil {
		t.Fatal(err)
	}
	if tid := m.(*FlowMod).TableID; tid != AllTables {
		t.Fatalf("OFPTT_ALL shifted to %d", tid)
	}
}

// TestShiftFlowModTablesMalformed: a structurally invalid instruction list
// must leave the frame byte-for-byte untouched (the caller falls back to
// Decode, which reports the same error the old path did).
func TestShiftFlowModTablesMalformed(t *testing.T) {
	f := frameFor(t, 7, sampleFlowMod())
	b := f.Bytes()
	// Corrupt the first instruction's length to an impossible value.
	mlen := int(uint16(b[headerLen+matchOffInFlowMod+2])<<8 | uint16(b[headerLen+matchOffInFlowMod+3]))
	ioff := headerLen + matchOffInFlowMod + (mlen+7)/8*8
	b[ioff+2], b[ioff+3] = 0, 5 // ilen 5 < 8
	before := append([]byte(nil), b...)
	if f.ShiftFlowModTables(+1) {
		t.Fatal("ShiftFlowModTables = true on malformed instruction list")
	}
	if !bytes.Equal(f.Bytes(), before) {
		t.Fatal("malformed frame was modified")
	}
}

func TestShiftPacketInAndFlowRemoved(t *testing.T) {
	fp := frameFor(t, 7, samplePacketIn())
	if tid, ok := fp.PacketInTableID(); !ok || tid != 1 {
		t.Fatalf("PacketInTableID = %d,%v", tid, ok)
	}
	if !fp.ShiftPacketInTable(-1) {
		t.Fatal("ShiftPacketInTable = false")
	}
	if _, m, err := fp.Decode(); err != nil {
		t.Fatal(err)
	} else if tid := m.(*PacketIn).TableID; tid != 0 {
		t.Fatalf("packet-in table after shift = %d", tid)
	}

	fr := frameFor(t, 7, &FlowRemoved{Cookie: 1, TableID: 2, Match: sampleMatch()})
	if tid, ok := fr.FlowRemovedTableID(); !ok || tid != 2 {
		t.Fatalf("FlowRemovedTableID = %d,%v", tid, ok)
	}
	if !fr.ShiftFlowRemovedTable(-1) {
		t.Fatal("ShiftFlowRemovedTable = false")
	}
	if _, m, err := fr.Decode(); err != nil {
		t.Fatal(err)
	} else if tid := m.(*FlowRemoved).TableID; tid != 1 {
		t.Fatalf("flow-removed table after shift = %d", tid)
	}

	// Wrong-type frames refuse the rewrite.
	if fp.ShiftFlowRemovedTable(1) || fr.ShiftPacketInTable(1) {
		t.Fatal("shift applied to wrong message type")
	}
}

func TestShiftTableModTable(t *testing.T) {
	f := frameFor(t, 7, &TableMod{TableID: 1, Config: 3})
	if !f.ShiftTableModTable(+1) {
		t.Fatal("ShiftTableModTable = false")
	}
	if _, m, err := f.Decode(); err != nil {
		t.Fatal(err)
	} else if tm := m.(*TableMod); tm.TableID != 2 || tm.Config != 3 {
		t.Fatalf("table-mod after shift = %+v", tm)
	}
	fa := frameFor(t, 7, &TableMod{TableID: AllTables})
	fa.ShiftTableModTable(+1)
	if _, m, _ := fa.Decode(); m.(*TableMod).TableID != AllTables {
		t.Fatal("OFPTT_ALL table-mod shifted")
	}
}

// TestReadFrameRoundTrip: ReadFrame must apply the same header validation
// as ReadMessage and reuse its buffer across reads.
func TestReadFrameRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	b1, _ := Encode(1, sampleFlowMod())
	b2, _ := Encode(2, &Hello{})
	stream.Write(b1)
	stream.Write(b2)

	var f Frame
	if err := ReadFrame(&stream, &f); err != nil {
		t.Fatal(err)
	}
	if f.Type() != TypeFlowMod || f.XID() != 1 || !bytes.Equal(f.Bytes(), b1) {
		t.Fatalf("frame 1 = %v xid=%d", f.Type(), f.XID())
	}
	if err := ReadFrame(&stream, &f); err != nil {
		t.Fatal(err)
	}
	if f.Type() != TypeHello || f.XID() != 2 || !bytes.Equal(f.Bytes(), b2) {
		t.Fatalf("frame 2 = %v xid=%d", f.Type(), f.XID())
	}

	// Same rejects as ReadMessage.
	if err := ReadFrame(bytes.NewReader([]byte{0x01, 0, 0, 8, 0, 0, 0, 1}), &f); err == nil {
		t.Fatal("want bad-version error")
	}
	if err := ReadFrame(bytes.NewReader([]byte{0x04, 0, 0, 4, 0, 0, 0, 1}), &f); err == nil {
		t.Fatal("want bad-length error")
	}
	if err := ReadFrame(bytes.NewReader([]byte{0x04, 2, 0, 16, 0, 0, 0, 1, 0xaa}), &f); err == nil {
		t.Fatal("want truncated-body error")
	}
}

// TestPooledReadBufferAliasing locks in the no-aliasing contract that makes
// the pooled read buffer safe: a message retained from ReadMessage must be
// unaffected by later reads that recycle the same scratch buffer. Raw is
// the riskiest type (its body is the entire buffer), so it is the probe.
func TestPooledReadBufferAliasing(t *testing.T) {
	enc := func(xid uint32, fill byte, n int) []byte {
		b, err := Encode(xid, &Raw{RawType: 0x63, Body: bytes.Repeat([]byte{fill}, n)})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var stream bytes.Buffer
	stream.Write(enc(1, 0x11, 100))
	stream.Write(enc(2, 0x22, 100))

	_, m1, err := ReadMessage(&stream)
	if err != nil {
		t.Fatal(err)
	}
	retained := m1.(*Raw)
	want := append([]byte(nil), retained.Body...)
	// Force pool churn: the second read recycles the first read's buffer.
	if _, _, err := ReadMessage(&stream); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		r := bytes.NewReader(enc(3, byte(i), 100))
		if _, _, err := ReadMessage(r); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(retained.Body, want) {
		t.Fatalf("retained body corrupted by pooled-buffer reuse: % x", retained.Body[:8])
	}
}

// countingWriter counts Write syscalls; reads always block (never used).
type countingWriter struct {
	mu     sync.Mutex
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	return w.buf.Write(p)
}

func (w *countingWriter) Read([]byte) (int, error) { return 0, io.EOF }

func (w *countingWriter) snapshot() (int, []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, append([]byte(nil), w.buf.Bytes()...)
}

func decodeAll(t *testing.T, b []byte) []Message {
	t.Helper()
	r := bytes.NewReader(b)
	var msgs []Message
	for r.Len() > 0 {
		_, m, err := ReadMessage(r)
		if err != nil {
			t.Fatalf("decode stream: %v", err)
		}
		msgs = append(msgs, m)
	}
	return msgs
}

// TestConnQueueCoalesces: queued messages stay buffered until Flush, which
// emits them in one write.
func TestConnQueueCoalesces(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	for i := 0; i < 3; i++ {
		if _, err := c.Queue(&EchoRequest{Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := w.snapshot(); n != 0 {
		t.Fatalf("writes before flush = %d, want 0", n)
	}
	if got := c.Buffered(); got == 0 {
		t.Fatal("Buffered() = 0 with queued messages")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	n, b := w.snapshot()
	if n != 1 {
		t.Fatalf("writes after flush = %d, want 1", n)
	}
	if msgs := decodeAll(t, b); len(msgs) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(msgs))
	}
	if c.Buffered() != 0 {
		t.Fatal("Buffered() != 0 after flush")
	}
}

// TestConnSendDrainsQueue: a write-through Send must flush queued bytes
// ahead of itself so stream order is preserved, in a single write.
func TestConnSendDrainsQueue(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	if _, err := c.Queue(&EchoRequest{Data: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendXID(9, &EchoReply{Data: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	n, b := w.snapshot()
	if n != 1 {
		t.Fatalf("writes = %d, want 1 (queue drained with the send)", n)
	}
	msgs := decodeAll(t, b)
	if len(msgs) != 2 {
		t.Fatalf("decoded %d messages, want 2", len(msgs))
	}
	if _, ok := msgs[0].(*EchoRequest); !ok {
		t.Fatalf("queued message not first: %T", msgs[0])
	}
	if _, ok := msgs[1].(*EchoReply); !ok {
		t.Fatalf("sent message not second: %T", msgs[1])
	}
}

// TestConnSendBatch: all messages in one write, in order, distinct xids.
func TestConnSendBatch(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	batch := []Message{
		&EchoRequest{Data: []byte("a")},
		&EchoRequest{Data: []byte("b")},
		&EchoRequest{Data: []byte("c")},
	}
	if err := c.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	n, b := w.snapshot()
	if n != 1 {
		t.Fatalf("writes = %d, want 1", n)
	}
	msgs := decodeAll(t, b)
	if len(msgs) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(msgs))
	}
	for i, m := range msgs {
		if got := string(m.(*EchoRequest).Data); got != string(batch[i].(*EchoRequest).Data) {
			t.Fatalf("message %d = %q", i, got)
		}
	}
}

// TestConnFlushThreshold: crossing the threshold forces a flush without an
// explicit Flush call.
func TestConnFlushThreshold(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	c.SetFlushThreshold(16)
	if _, err := c.Queue(&EchoRequest{Data: []byte("0123456789abcdef")}); err != nil {
		t.Fatal(err)
	}
	if n, _ := w.snapshot(); n != 1 {
		t.Fatalf("writes = %d, want 1 (threshold flush)", n)
	}
	if c.Buffered() != 0 {
		t.Fatal("buffer not drained by threshold flush")
	}
}

// TestConnQueueFrame: frames pass through the coalescing buffer verbatim.
func TestConnQueueFrame(t *testing.T) {
	w := &countingWriter{}
	c := NewConn(w)
	f := frameFor(t, 5, sampleFlowMod())
	want := append([]byte(nil), f.Bytes()...)
	if err := c.QueueFrame(f); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	_, b := w.snapshot()
	if !bytes.Equal(b, want) {
		t.Fatalf("forwarded frame differs from source:\n got % x\nwant % x", b, want)
	}
}

// TestConnConcurrentSendRecvHammer drives many goroutines through the
// pooled encode path of a single Conn while the peer decodes and validates
// every message. Each flow-mod's fields are derived from its cookie, so any
// cross-goroutine pool corruption or aliasing shows up as a field mismatch.
// Run with -race to also catch unsynchronized buffer reuse.
func TestConnConcurrentSendRecvHammer(t *testing.T) {
	const (
		senders = 8
		perSend = 50
	)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	src, sink := NewConn(a), NewConn(b)

	mkFlowMod := func(c uint64) *FlowMod {
		return &FlowMod{
			Cookie:   c,
			TableID:  uint8(c % 32),
			Command:  FlowModAdd,
			Priority: uint16(c),
			BufferID: NoBuffer,
			Match:    &Match{InPort: U32(uint32(c))},
			Instructions: []Instruction{
				&InstructionGotoTable{TableID: uint8(c%32) + 1},
			},
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, senders+1)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSend; i++ {
				c := uint64(s*perSend + i + 1)
				var err error
				if s%2 == 0 {
					_, err = src.Send(mkFlowMod(c))
				} else {
					// Queue + flush exercises the coalescing path
					// concurrently with write-through sends.
					if _, err = src.Queue(mkFlowMod(c)); err == nil {
						err = src.Flush()
					}
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}

	retained := make([]*FlowMod, 0, 8)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for n := 0; n < senders*perSend; n++ {
			_, m, err := sink.Recv()
			if err != nil {
				errc <- err
				return
			}
			fm, ok := m.(*FlowMod)
			if !ok {
				errc <- fmt.Errorf("message %d: got %T", n, m)
				return
			}
			c := fm.Cookie
			if fm.Priority != uint16(c) || fm.TableID != uint8(c%32) ||
				fm.Match == nil || fm.Match.InPort == nil || *fm.Match.InPort != uint32(c) ||
				len(fm.Instructions) != 1 ||
				fm.Instructions[0].(*InstructionGotoTable).TableID != uint8(c%32)+1 {
				errc <- fmt.Errorf("cookie %d: inconsistent decode %+v", c, fm)
				return
			}
			if len(retained) < cap(retained) {
				retained = append(retained, fm)
			}
		}
	}()

	wg.Wait()
	<-recvDone
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Retained messages must still be self-consistent after the pooled
	// read buffer has been recycled hundreds of times.
	for _, fm := range retained {
		if fm.Priority != uint16(fm.Cookie) || *fm.Match.InPort != uint32(fm.Cookie) {
			t.Fatalf("retained flow-mod corrupted: %+v", fm)
		}
	}
}

// BenchmarkWireEncode measures the append-style encoders on the two
// messages the hot path cares about. Steady state must be 0 allocs/op
// (gated by TestWireEncodeZeroAlloc at the repo root).
func BenchmarkWireEncode(b *testing.B) {
	bench := func(b *testing.B, m Message) {
		buf := make([]byte, 0, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendMessage(buf[:0], uint32(i), m)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("FlowMod", func(b *testing.B) { bench(b, sampleFlowMod()) })
	b.Run("PacketIn", func(b *testing.B) { bench(b, samplePacketIn()) })
}

// BenchmarkWireDecode measures full ReadMessage decode (pooled read buffer
// + typed unmarshal) from an in-memory stream.
func BenchmarkWireDecode(b *testing.B) {
	bench := func(b *testing.B, m Message) {
		wire, err := Encode(1, m)
		if err != nil {
			b.Fatal(err)
		}
		r := bytes.NewReader(wire)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(wire)
			if _, _, err := ReadMessage(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("FlowMod", func(b *testing.B) { bench(b, sampleFlowMod()) })
	b.Run("PacketIn", func(b *testing.B) { bench(b, samplePacketIn()) })
}

// BenchmarkWireFrameRelay measures the zero-copy relay primitive: read a
// frame, shift its table space in place, queue it for coalesced write.
func BenchmarkWireFrameRelay(b *testing.B) {
	wire, err := Encode(1, sampleFlowMod())
	if err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(wire)
	c := NewConn(discardRW{})
	var f Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(wire)
		if err := ReadFrame(r, &f); err != nil {
			b.Fatal(err)
		}
		if !f.ShiftFlowModTables(+1) {
			b.Fatal("shift failed")
		}
		if err := c.QueueFrame(&f); err != nil {
			b.Fatal(err)
		}
	}
}

// discardRW is an io.ReadWriter that swallows writes (benchmark sink).
type discardRW struct{}

func (discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (discardRW) Read([]byte) (int, error)    { return 0, io.EOF }
