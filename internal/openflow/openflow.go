// Package openflow implements the OpenFlow 1.3 binary wire protocol subset
// that DFI exercises: connection setup (HELLO/FEATURES/ECHO), reactive flow
// programming (PACKET_IN, PACKET_OUT, FLOW_MOD, FLOW_REMOVED, BARRIER),
// flow statistics (MULTIPART), OXM matches, instructions and actions.
//
// It is the from-scratch substrate standing in for OpenFlowJ in the paper's
// implementation. Messages are encoded/decoded to the exact on-wire layout
// of the OpenFlow 1.3.5 specification so that the DFI Proxy can interpose
// on a real byte stream between switches and an arbitrary controller.
package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the OpenFlow protocol version this package speaks (1.3).
const Version uint8 = 0x04

// MessageType identifies an OpenFlow message type (ofp_type).
type MessageType uint8

// OpenFlow 1.3 message types.
const (
	TypeHello           MessageType = 0
	TypeError           MessageType = 1
	TypeEchoRequest     MessageType = 2
	TypeEchoReply       MessageType = 3
	TypeExperimenter    MessageType = 4
	TypeFeaturesRequest MessageType = 5
	TypeFeaturesReply   MessageType = 6
	TypeGetConfigReq    MessageType = 7
	TypeGetConfigReply  MessageType = 8
	TypeSetConfig       MessageType = 9
	TypePacketIn        MessageType = 10
	TypeFlowRemoved     MessageType = 11
	TypePortStatus      MessageType = 12
	TypePacketOut       MessageType = 13
	TypeFlowMod         MessageType = 14
	TypeGroupMod        MessageType = 15
	TypePortMod         MessageType = 16
	TypeTableMod        MessageType = 17
	TypeMultipartReq    MessageType = 18
	TypeMultipartReply  MessageType = 19
	TypeBarrierRequest  MessageType = 20
	TypeBarrierReply    MessageType = 21
)

// String renders the message type name for logs.
func (t MessageType) String() string {
	names := map[MessageType]string{
		TypeHello: "HELLO", TypeError: "ERROR",
		TypeEchoRequest: "ECHO_REQUEST", TypeEchoReply: "ECHO_REPLY",
		TypeExperimenter: "EXPERIMENTER", TypeFeaturesRequest: "FEATURES_REQUEST",
		TypeFeaturesReply: "FEATURES_REPLY", TypeGetConfigReq: "GET_CONFIG_REQUEST",
		TypeGetConfigReply: "GET_CONFIG_REPLY", TypeSetConfig: "SET_CONFIG",
		TypePacketIn: "PACKET_IN", TypeFlowRemoved: "FLOW_REMOVED",
		TypePortStatus: "PORT_STATUS", TypePacketOut: "PACKET_OUT",
		TypeFlowMod: "FLOW_MOD", TypeGroupMod: "GROUP_MOD",
		TypePortMod: "PORT_MOD", TypeTableMod: "TABLE_MOD",
		TypeMultipartReq: "MULTIPART_REQUEST", TypeMultipartReply: "MULTIPART_REPLY",
		TypeBarrierRequest: "BARRIER_REQUEST", TypeBarrierReply: "BARRIER_REPLY",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Reserved port numbers (ofp_port_no).
const (
	PortMax        uint32 = 0xffffff00
	PortInPort     uint32 = 0xfffffff8
	PortTable      uint32 = 0xfffffff9
	PortNormal     uint32 = 0xfffffffa
	PortFlood      uint32 = 0xfffffffb
	PortAll        uint32 = 0xfffffffc
	PortController uint32 = 0xfffffffd
	PortLocal      uint32 = 0xfffffffe
	PortAny        uint32 = 0xffffffff
)

// NoBuffer indicates an unbuffered packet (OFP_NO_BUFFER).
const NoBuffer uint32 = 0xffffffff

const headerLen = 8

// MaxMessageLen bounds accepted message sizes, guarding the decoder against
// hostile or corrupt length fields.
const MaxMessageLen = 1 << 17

// Message is an OpenFlow message body. Concrete message types implement it.
type Message interface {
	// Type returns the ofp_type this message encodes as.
	Type() MessageType
	// MarshalBody serializes the message body (everything after the
	// 8-byte header).
	MarshalBody() ([]byte, error)
	// UnmarshalBody parses the message body.
	UnmarshalBody(b []byte) error
}

// Raw is a passthrough body for message types this package does not model
// in detail. It preserves bytes exactly, which lets the DFI Proxy forward
// unknown messages transparently.
type Raw struct {
	RawType MessageType
	Body    []byte
}

var _ Message = (*Raw)(nil)

// Type implements Message.
func (r *Raw) Type() MessageType { return r.RawType }

// MarshalBody implements Message.
func (r *Raw) MarshalBody() ([]byte, error) { return r.Body, nil }

// UnmarshalBody implements Message.
func (r *Raw) UnmarshalBody(b []byte) error {
	r.Body = append([]byte(nil), b...)
	return nil
}

// Encode serializes a full message (header + body) with the given
// transaction id.
func Encode(xid uint32, m Message) ([]byte, error) {
	body, err := m.MarshalBody()
	if err != nil {
		return nil, fmt.Errorf("marshal %v: %w", m.Type(), err)
	}
	if headerLen+len(body) > MaxMessageLen {
		return nil, fmt.Errorf("marshal %v: body of %d bytes exceeds max", m.Type(), len(body))
	}
	b := make([]byte, headerLen+len(body))
	b[0] = Version
	b[1] = uint8(m.Type())
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	binary.BigEndian.PutUint32(b[4:8], xid)
	copy(b[headerLen:], body)
	return b, nil
}

// WriteMessage encodes and writes a full message to w.
func WriteMessage(w io.Writer, xid uint32, m Message) error {
	b, err := Encode(xid, m)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("write %v: %w", m.Type(), err)
	}
	return nil
}

// ReadMessage reads one message from r, returning its transaction id and
// decoded body. Unmodeled message types decode as *Raw.
func ReadMessage(r io.Reader) (uint32, Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != Version {
		return 0, nil, fmt.Errorf("openflow: unsupported version 0x%02x", hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length > MaxMessageLen {
		return 0, nil, fmt.Errorf("openflow: bad message length %d", length)
	}
	xid := binary.BigEndian.Uint32(hdr[4:8])
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("openflow: read body: %w", err)
	}
	m := newMessage(MessageType(hdr[1]))
	if err := m.UnmarshalBody(body); err != nil {
		return 0, nil, fmt.Errorf("openflow: decode %v: %w", MessageType(hdr[1]), err)
	}
	return xid, m, nil
}

// newMessage returns a zero value of the concrete type for t, or *Raw for
// unmodeled types.
func newMessage(t MessageType) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &Error{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeGetConfigReq:
		return &GetConfigRequest{}
	case TypeGetConfigReply:
		return &GetConfigReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypePortStatus:
		return &PortStatus{}
	case TypeTableMod:
		return &TableMod{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeMultipartReq:
		return &MultipartRequest{}
	case TypeMultipartReply:
		return &MultipartReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	default:
		return &Raw{RawType: t}
	}
}
