// Package openflow implements the OpenFlow 1.3 binary wire protocol subset
// that DFI exercises: connection setup (HELLO/FEATURES/ECHO), reactive flow
// programming (PACKET_IN, PACKET_OUT, FLOW_MOD, FLOW_REMOVED, BARRIER),
// flow statistics (MULTIPART), OXM matches, instructions and actions.
//
// It is the from-scratch substrate standing in for OpenFlowJ in the paper's
// implementation. Messages are encoded/decoded to the exact on-wire layout
// of the OpenFlow 1.3.5 specification so that the DFI Proxy can interpose
// on a real byte stream between switches and an arbitrary controller.
package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Version is the OpenFlow protocol version this package speaks (1.3).
const Version uint8 = 0x04

// MessageType identifies an OpenFlow message type (ofp_type).
type MessageType uint8

// OpenFlow 1.3 message types.
const (
	TypeHello           MessageType = 0
	TypeError           MessageType = 1
	TypeEchoRequest     MessageType = 2
	TypeEchoReply       MessageType = 3
	TypeExperimenter    MessageType = 4
	TypeFeaturesRequest MessageType = 5
	TypeFeaturesReply   MessageType = 6
	TypeGetConfigReq    MessageType = 7
	TypeGetConfigReply  MessageType = 8
	TypeSetConfig       MessageType = 9
	TypePacketIn        MessageType = 10
	TypeFlowRemoved     MessageType = 11
	TypePortStatus      MessageType = 12
	TypePacketOut       MessageType = 13
	TypeFlowMod         MessageType = 14
	TypeGroupMod        MessageType = 15
	TypePortMod         MessageType = 16
	TypeTableMod        MessageType = 17
	TypeMultipartReq    MessageType = 18
	TypeMultipartReply  MessageType = 19
	TypeBarrierRequest  MessageType = 20
	TypeBarrierReply    MessageType = 21
)

// String renders the message type name for logs.
func (t MessageType) String() string {
	names := map[MessageType]string{
		TypeHello: "HELLO", TypeError: "ERROR",
		TypeEchoRequest: "ECHO_REQUEST", TypeEchoReply: "ECHO_REPLY",
		TypeExperimenter: "EXPERIMENTER", TypeFeaturesRequest: "FEATURES_REQUEST",
		TypeFeaturesReply: "FEATURES_REPLY", TypeGetConfigReq: "GET_CONFIG_REQUEST",
		TypeGetConfigReply: "GET_CONFIG_REPLY", TypeSetConfig: "SET_CONFIG",
		TypePacketIn: "PACKET_IN", TypeFlowRemoved: "FLOW_REMOVED",
		TypePortStatus: "PORT_STATUS", TypePacketOut: "PACKET_OUT",
		TypeFlowMod: "FLOW_MOD", TypeGroupMod: "GROUP_MOD",
		TypePortMod: "PORT_MOD", TypeTableMod: "TABLE_MOD",
		TypeMultipartReq: "MULTIPART_REQUEST", TypeMultipartReply: "MULTIPART_REPLY",
		TypeBarrierRequest: "BARRIER_REQUEST", TypeBarrierReply: "BARRIER_REPLY",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Reserved port numbers (ofp_port_no).
const (
	PortMax        uint32 = 0xffffff00
	PortInPort     uint32 = 0xfffffff8
	PortTable      uint32 = 0xfffffff9
	PortNormal     uint32 = 0xfffffffa
	PortFlood      uint32 = 0xfffffffb
	PortAll        uint32 = 0xfffffffc
	PortController uint32 = 0xfffffffd
	PortLocal      uint32 = 0xfffffffe
	PortAny        uint32 = 0xffffffff
)

// NoBuffer indicates an unbuffered packet (OFP_NO_BUFFER).
const NoBuffer uint32 = 0xffffffff

const headerLen = 8

// MaxMessageLen bounds accepted message sizes, guarding the decoder against
// hostile or corrupt length fields.
const MaxMessageLen = 1 << 17

// Message is an OpenFlow message body. Concrete message types implement it.
type Message interface {
	// Type returns the ofp_type this message encodes as.
	Type() MessageType
	// MarshalBody serializes the message body (everything after the
	// 8-byte header).
	MarshalBody() ([]byte, error)
	// UnmarshalBody parses the message body.
	UnmarshalBody(b []byte) error
}

// Raw is a passthrough body for message types this package does not model
// in detail. It preserves bytes exactly, which lets the DFI Proxy forward
// unknown messages transparently.
type Raw struct {
	RawType MessageType
	Body    []byte
}

var _ Message = (*Raw)(nil)

// Type implements Message.
func (r *Raw) Type() MessageType { return r.RawType }

// MarshalBody implements Message.
func (r *Raw) MarshalBody() ([]byte, error) { return r.Body, nil }

// UnmarshalBody implements Message. It deep-copies b: decode buffers are
// pool-recycled, so retaining the input slice would alias the next read.
func (r *Raw) UnmarshalBody(b []byte) error {
	r.Body = append([]byte(nil), b...)
	return nil
}

// AppendBody implements BodyAppender.
//
//dfi:hotpath
func (r *Raw) AppendBody(dst []byte) ([]byte, error) {
	return appendBytes(dst, r.Body), nil
}

// BodyAppender is implemented by message types whose bodies append-encode
// into a caller-supplied buffer without intermediate allocation. These are
// the types on the DFI Proxy's relay and the PCP's install paths (FlowMod,
// PacketIn, PacketOut, Raw passthrough): with a reused buffer their
// steady-state encoding is zero-alloc. AppendMessage uses AppendBody when
// available and falls back to MarshalBody plus a copy otherwise.
type BodyAppender interface {
	AppendBody(dst []byte) ([]byte, error)
}

// grow extends b by n bytes, zeroing the extension, and returns the
// extended slice. It reallocates only when capacity is exhausted, so a
// reused buffer reaches steady state after a few messages and grows no
// more. Kept out of the //dfi:hotpath-annotated codec functions so dfilint
// sees their bodies allocation-free; this helper is the one sanctioned
// growth point.
func grow(b []byte, n int) []byte {
	if tot := len(b) + n; tot <= cap(b) {
		ext := b[:tot]
		clear(ext[len(b):])
		return ext
	}
	return append(b, make([]byte, n)...)
}

// appendBytes copies src onto dst through grow, keeping annotated callers
// free of append expressions.
func appendBytes(dst, src []byte) []byte {
	n := len(dst)
	dst = grow(dst, len(src))
	copy(dst[n:], src)
	return dst
}

// encodeErr wraps a body-marshal failure off the annotated hot path.
func encodeErr(t MessageType, err error) error {
	return fmt.Errorf("marshal %v: %w", t, err)
}

// oversizeErr reports a message exceeding MaxMessageLen.
func oversizeErr(t MessageType, bodyLen int) error {
	return fmt.Errorf("marshal %v: body of %d bytes exceeds max", t, bodyLen)
}

// appendMarshaledBody is the MarshalBody fallback for message types
// without an AppendBody; it pays the marshal allocation deliberately.
func appendMarshaledBody(dst []byte, m Message) ([]byte, error) {
	body, err := m.MarshalBody()
	if err != nil {
		return dst, err
	}
	return append(dst, body...), nil
}

// AppendMessage append-encodes a full message (header + body) with the
// given transaction id onto dst and returns the extended slice. With a
// reused dst and a BodyAppender message it performs no allocation; this is
// the Conn send path's codec.
//
//dfi:hotpath
func AppendMessage(dst []byte, xid uint32, m Message) ([]byte, error) {
	start := len(dst)
	dst = grow(dst, headerLen)
	dst[start] = Version
	dst[start+1] = uint8(m.Type())
	binary.BigEndian.PutUint32(dst[start+4:start+8], xid)
	var err error
	if ba, ok := m.(BodyAppender); ok {
		dst, err = ba.AppendBody(dst)
	} else {
		dst, err = appendMarshaledBody(dst, m)
	}
	if err != nil {
		return dst[:start], encodeErr(m.Type(), err)
	}
	length := len(dst) - start
	if length > MaxMessageLen {
		return dst[:start], oversizeErr(m.Type(), length-headerLen)
	}
	binary.BigEndian.PutUint16(dst[start+2:start+4], uint16(length))
	return dst, nil
}

// Encode serializes a full message (header + body) with the given
// transaction id into a fresh buffer. Hot paths use AppendMessage with a
// reused buffer instead.
func Encode(xid uint32, m Message) ([]byte, error) {
	return AppendMessage(nil, xid, m)
}

// WriteMessage encodes and writes a full message to w.
func WriteMessage(w io.Writer, xid uint32, m Message) error {
	b, err := Encode(xid, m)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("write %v: %w", m.Type(), err)
	}
	return nil
}

// readBufPool recycles decode scratch buffers across ReadMessage calls.
// Recycling is safe because every UnmarshalBody implementation in this
// package deep-copies any bytes it retains (the pooled-buffer aliasing
// contract; see the openflow tests that hammer it under -race).
var readBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// ReadMessage reads one message from r, returning its transaction id and
// decoded body. Unmodeled message types decode as *Raw. The body is read
// into a pooled scratch buffer; decoded messages never alias it.
func ReadMessage(r io.Reader) (uint32, Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != Version {
		return 0, nil, fmt.Errorf("openflow: unsupported version 0x%02x", hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length > MaxMessageLen {
		return 0, nil, fmt.Errorf("openflow: bad message length %d", length)
	}
	xid := binary.BigEndian.Uint32(hdr[4:8])
	bp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bp)
	if need := length - headerLen; cap(*bp) < need {
		*bp = make([]byte, 0, need)
	}
	body := (*bp)[:length-headerLen]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("openflow: read body: %w", err)
	}
	m := newMessage(MessageType(hdr[1]))
	if err := m.UnmarshalBody(body); err != nil {
		return 0, nil, fmt.Errorf("openflow: decode %v: %w", MessageType(hdr[1]), err)
	}
	return xid, m, nil
}

// newMessage returns a zero value of the concrete type for t, or *Raw for
// unmodeled types.
func newMessage(t MessageType) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &Error{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeGetConfigReq:
		return &GetConfigRequest{}
	case TypeGetConfigReply:
		return &GetConfigReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypePortStatus:
		return &PortStatus{}
	case TypeTableMod:
		return &TableMod{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeMultipartReq:
		return &MultipartRequest{}
	case TypeMultipartReply:
		return &MultipartReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	default:
		return &Raw{RawType: t}
	}
}
