package openflow

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// accumCorpus builds a few wire messages of different shapes and sizes.
func accumCorpus(t testing.TB) [][]byte {
	t.Helper()
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping-1")},
		&FlowMod{
			Cookie:   0xd0f1,
			TableID:  1,
			Command:  FlowModAdd,
			Priority: 500,
			BufferID: NoBuffer,
			Match:    &Match{InPort: U32(3), EthType: U16(0x0800)},
			Instructions: []Instruction{
				&InstructionGotoTable{TableID: 2},
			},
		},
		&PacketIn{
			BufferID: NoBuffer,
			Reason:   PacketInReasonNoMatch,
			TableID:  2,
			Match:    &Match{InPort: U32(7)},
			Data:     bytes.Repeat([]byte{0xab}, 600),
		},
		&EchoReply{},
	}
	var out [][]byte
	for i, m := range msgs {
		b, err := Encode(uint32(i+1), m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// feedAndCollect drives chunks through an accumulator and returns each
// emitted frame as a copy.
func feedAndCollect(t *testing.T, chunks [][]byte) [][]byte {
	t.Helper()
	var acc Accumulator
	var got [][]byte
	for _, ch := range chunks {
		err := acc.Feed(ch, func(f *Frame) error {
			got = append(got, append([]byte(nil), f.Bytes()...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return got
}

func checkFrames(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("emitted %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d mismatch:\n got %x\nwant %x", i, got[i], want[i])
		}
	}
}

func TestAccumulatorWholeFrames(t *testing.T) {
	corpus := accumCorpus(t)
	// One frame per chunk.
	got := feedAndCollect(t, corpus)
	checkFrames(t, got, corpus)
	// All frames in one chunk.
	var all []byte
	for _, b := range corpus {
		all = append(all, b...)
	}
	got = feedAndCollect(t, [][]byte{all})
	checkFrames(t, got, corpus)
}

func TestAccumulatorOneByteTrickle(t *testing.T) {
	corpus := accumCorpus(t)
	var chunks [][]byte
	for _, b := range corpus {
		for i := range b {
			chunks = append(chunks, b[i:i+1])
		}
	}
	got := feedAndCollect(t, chunks)
	checkFrames(t, got, corpus)
}

func TestAccumulatorSplitAcrossReads(t *testing.T) {
	corpus := accumCorpus(t)
	var all []byte
	for _, b := range corpus {
		all = append(all, b...)
	}
	// Every possible single split point.
	for cut := 1; cut < len(all); cut++ {
		got := feedAndCollect(t, [][]byte{all[:cut], all[cut:]})
		checkFrames(t, got, corpus)
	}
	// Random multi-splits.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var chunks [][]byte
		rest := all
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			chunks = append(chunks, rest[:n])
			rest = rest[n:]
		}
		got := feedAndCollect(t, chunks)
		checkFrames(t, got, corpus)
	}
}

func TestAccumulatorMalformedHeader(t *testing.T) {
	var acc Accumulator
	emit := func(*Frame) error { return nil }

	// Wrong version byte.
	if err := acc.Feed([]byte{0x01, 0, 0, 8, 0, 0, 0, 0}, emit); err == nil {
		t.Fatal("bad version accepted")
	}
	acc.Reset()

	// Length below the header size.
	if err := acc.Feed([]byte{Version, 0, 0, 4, 0, 0, 0, 0}, emit); err == nil {
		t.Fatal("undersized length accepted")
	}
	acc.Reset()

	// Length above MaxMessageLen.
	over := MaxMessageLen + 1
	if err := acc.Feed([]byte{Version, 0, byte(over >> 8), byte(over), 0, 0, 0, 0}, emit); err == nil {
		t.Fatal("oversized length accepted")
	}
	acc.Reset()

	// A malformed header *after* a valid frame still fails, and the valid
	// frame is still delivered first.
	good, err := Encode(9, &Hello{})
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	chunk := append(append([]byte(nil), good...), 0x01, 0, 0, 8, 0, 0, 0, 0)
	if err := acc.Feed(chunk, func(*Frame) error { frames++; return nil }); err == nil {
		t.Fatal("bad trailing header accepted")
	}
	if frames != 1 {
		t.Fatalf("delivered %d frames before the malformed header, want 1", frames)
	}
}

func TestAccumulatorEmitErrorStopsWalk(t *testing.T) {
	corpus := accumCorpus(t)
	var all []byte
	for _, b := range corpus {
		all = append(all, b...)
	}
	boom := errors.New("boom")
	var acc Accumulator
	frames := 0
	err := acc.Feed(all, func(*Frame) error {
		frames++
		if frames == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if frames != 2 {
		t.Fatalf("emit ran %d times after error, want 2", frames)
	}
}

// TestAccumulatorMatchesReadFrame pins Feed's validation to ReadFrame's:
// any chunking of a byte stream must yield exactly the frames the blocking
// reader would produce.
func TestAccumulatorMatchesReadFrame(t *testing.T) {
	corpus := accumCorpus(t)
	var all []byte
	for _, b := range corpus {
		all = append(all, b...)
	}
	var want [][]byte
	r := bytes.NewReader(all)
	for {
		var f Frame
		if err := ReadFrame(r, &f); err != nil {
			break
		}
		want = append(want, append([]byte(nil), f.Bytes()...))
	}
	got := feedAndCollect(t, [][]byte{all})
	checkFrames(t, got, want)
}

// TestAccumulatorSteadyStateZeroAlloc: once the carry buffer has grown, a
// whole-frame feed and a split-frame feed both run without allocating —
// the event-loop relay's read path contract.
func TestAccumulatorSteadyStateZeroAlloc(t *testing.T) {
	wire, err := Encode(3, &EchoRequest{Data: []byte("steady")})
	if err != nil {
		t.Fatal(err)
	}
	var acc Accumulator
	emit := func(*Frame) error { return nil }
	prime := func() {
		if err := acc.Feed(wire, emit); err != nil {
			t.Fatal(err)
		}
		if err := acc.Feed(wire[:5], emit); err != nil {
			t.Fatal(err)
		}
		if err := acc.Feed(wire[5:], emit); err != nil {
			t.Fatal(err)
		}
	}
	prime()
	if allocs := testing.AllocsPerRun(200, prime); allocs != 0 {
		t.Fatalf("steady-state Feed allocates %.1f objects/op, want 0", allocs)
	}
}
