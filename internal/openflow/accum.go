package openflow

// Accumulator reassembles OpenFlow frames from arbitrarily fragmented byte
// chunks: the per-connection state machine behind the proxy's event-loop
// relay. Reads from a non-blocking socket arrive as whatever the kernel had
// buffered — half a header, three frames and a tail, one byte — and Feed
// walks complete frames out of each chunk in place, carrying partial bytes
// over to the next call in a per-connection buffer.
//
// Feed performs the same header validation as ReadFrame (version byte,
// length bounds); a malformed header poisons the stream and fails the
// connection, exactly as the blocking reader would.
//
// Frames handed to the callback alias either the caller's chunk or the
// accumulator's carry buffer: they are valid only for the duration of the
// callback, matching the Frame-reuse contract of Conn.RecvFrame (consumers
// that retain contents must Decode, which deep-copies).
type Accumulator struct {
	// partial carries bytes of an incomplete frame between Feed calls.
	// Empty at steady state when frames arrive whole.
	partial []byte
	// frame is the reusable header handed to the callback; its buffer
	// aliases fed chunks and is never retained.
	frame Frame
}

// Buffered returns the partial-frame bytes carried between Feed calls.
func (a *Accumulator) Buffered() int { return len(a.partial) }

// Reset drops any carried partial bytes (connection teardown/reuse).
func (a *Accumulator) Reset() { a.partial = a.partial[:0] }

// Feed consumes one chunk of stream bytes, invoking emit once per complete
// frame, in stream order. It returns the first error from emit or a header
// validation failure; after an error the accumulator must be Reset before
// reuse.
//
//dfi:hotpath
func (a *Accumulator) Feed(chunk []byte, emit func(*Frame) error) error {
	if len(a.partial) > 0 {
		// Complete the carried frame first. Appending the whole chunk keeps
		// the walk linear; the carry buffer is bounded by one maximum-size
		// frame plus one read chunk.
		a.partial = appendBytes(a.partial, chunk)
		rest, err := a.consume(a.partial, emit)
		n := copy(a.partial, rest)
		a.partial = a.partial[:n]
		return err
	}
	rest, err := a.consume(chunk, emit)
	if err == nil && len(rest) > 0 {
		a.partial = appendBytes(a.partial[:0], rest)
	}
	return err
}

// consume walks complete frames off the front of b, returning the
// unconsumed tail (an incomplete frame, possibly empty).
//
//dfi:hotpath
func (a *Accumulator) consume(b []byte, emit func(*Frame) error) ([]byte, error) {
	for len(b) >= headerLen {
		if b[0] != Version {
			return b, badVersionErr(b[0])
		}
		length := int(uint16(b[2])<<8 | uint16(b[3]))
		if length < headerLen || length > MaxMessageLen {
			return b, badLengthErr(length)
		}
		if len(b) < length {
			break
		}
		a.frame.Alias(b[:length])
		if err := emit(&a.frame); err != nil {
			return b[length:], err
		}
		b = b[length:]
	}
	return b, nil
}
