package openflow

import (
	"encoding/binary"
	"fmt"
)

// Multipart types (ofp_multipart_type).
const (
	MultipartDesc      uint16 = 0
	MultipartFlow      uint16 = 1
	MultipartAggregate uint16 = 2
	MultipartTable     uint16 = 3
	MultipartPortStats uint16 = 4
)

// MultipartRequest is an ofp_multipart_request. Flow-stats and
// aggregate-stats requests are modeled (the DFI Proxy must rewrite their
// table ids); table-stats requests have an empty body; other subtypes are
// carried verbatim in RawBody.
type MultipartRequest struct {
	PartType uint16
	Flags    uint16
	// Flow is set when PartType is MultipartFlow or MultipartAggregate
	// (the two share the ofp_flow_stats_request body).
	Flow *FlowStatsRequest
	// RawBody carries the body verbatim for other subtypes.
	RawBody []byte
}

var _ Message = (*MultipartRequest)(nil)

// FlowStatsRequest is the body of a flow-stats multipart request.
type FlowStatsRequest struct {
	TableID    uint8
	OutPort    uint32
	OutGroup   uint32
	Cookie     uint64
	CookieMask uint64
	Match      *Match
}

// AllTables selects every flow table in stats requests (OFPTT_ALL).
const AllTables uint8 = 0xff

// Type implements Message.
func (*MultipartRequest) Type() MessageType { return TypeMultipartReq }

// MarshalBody implements Message.
func (m *MultipartRequest) MarshalBody() ([]byte, error) {
	var body []byte
	switch {
	case (m.PartType == MultipartFlow || m.PartType == MultipartAggregate) && m.Flow != nil:
		match := m.Flow.Match
		if match == nil {
			match = &Match{}
		}
		mb := match.Marshal()
		body = make([]byte, 32+len(mb))
		body[0] = m.Flow.TableID
		binary.BigEndian.PutUint32(body[4:8], m.Flow.OutPort)
		binary.BigEndian.PutUint32(body[8:12], m.Flow.OutGroup)
		binary.BigEndian.PutUint64(body[16:24], m.Flow.Cookie)
		binary.BigEndian.PutUint64(body[24:32], m.Flow.CookieMask)
		copy(body[32:], mb)
	default:
		body = m.RawBody
	}
	b := make([]byte, 8+len(body))
	binary.BigEndian.PutUint16(b[0:2], m.PartType)
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	copy(b[8:], body)
	return b, nil
}

// UnmarshalBody implements Message.
func (m *MultipartRequest) UnmarshalBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("multipart request: %w", errTooShort)
	}
	m.PartType = binary.BigEndian.Uint16(b[0:2])
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	body := b[8:]
	if m.PartType == MultipartFlow || m.PartType == MultipartAggregate {
		if len(body) < 32 {
			return fmt.Errorf("flow stats request: %w", errTooShort)
		}
		match, _, err := unmarshalMatch(body[32:])
		if err != nil {
			return fmt.Errorf("flow stats request: %w", err)
		}
		m.Flow = &FlowStatsRequest{
			TableID:    body[0],
			OutPort:    binary.BigEndian.Uint32(body[4:8]),
			OutGroup:   binary.BigEndian.Uint32(body[8:12]),
			Cookie:     binary.BigEndian.Uint64(body[16:24]),
			CookieMask: binary.BigEndian.Uint64(body[24:32]),
			Match:      match,
		}
		return nil
	}
	m.RawBody = append([]byte(nil), body...)
	return nil
}

// MultipartReply is an ofp_multipart_reply. Flow, table and aggregate
// stats are modeled; other subtypes are carried verbatim in RawBody.
type MultipartReply struct {
	PartType uint16
	Flags    uint16
	// Flows is set when PartType == MultipartFlow.
	Flows []*FlowStatsEntry
	// Tables is set when PartType == MultipartTable.
	Tables []*TableStatsEntry
	// Aggregate is set when PartType == MultipartAggregate.
	Aggregate *AggregateStats
	// RawBody carries the body verbatim for other subtypes.
	RawBody []byte
}

var _ Message = (*MultipartReply)(nil)

// FlowStatsEntry is one ofp_flow_stats record in a flow-stats reply.
type FlowStatsEntry struct {
	TableID      uint8
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Flags        uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Match        *Match
	Instructions []Instruction
}

// Type implements Message.
func (*MultipartReply) Type() MessageType { return TypeMultipartReply }

const flowStatsFixedLen = 48

// MarshalBody implements Message.
func (m *MultipartReply) MarshalBody() ([]byte, error) {
	var body []byte
	switch {
	case m.PartType == MultipartFlow:
		for _, fs := range m.Flows {
			match := fs.Match
			if match == nil {
				match = &Match{}
			}
			mb := match.Marshal()
			ib := marshalInstructions(fs.Instructions)
			entry := make([]byte, flowStatsFixedLen+len(mb)+len(ib))
			binary.BigEndian.PutUint16(entry[0:2], uint16(len(entry)))
			entry[2] = fs.TableID
			binary.BigEndian.PutUint32(entry[4:8], fs.DurationSec)
			binary.BigEndian.PutUint32(entry[8:12], fs.DurationNsec)
			binary.BigEndian.PutUint16(entry[12:14], fs.Priority)
			binary.BigEndian.PutUint16(entry[14:16], fs.IdleTimeout)
			binary.BigEndian.PutUint16(entry[16:18], fs.HardTimeout)
			binary.BigEndian.PutUint16(entry[18:20], fs.Flags)
			binary.BigEndian.PutUint64(entry[24:32], fs.Cookie)
			binary.BigEndian.PutUint64(entry[32:40], fs.PacketCount)
			binary.BigEndian.PutUint64(entry[40:48], fs.ByteCount)
			copy(entry[flowStatsFixedLen:], mb)
			copy(entry[flowStatsFixedLen+len(mb):], ib)
			body = append(body, entry...)
		}
	case m.PartType == MultipartTable:
		for _, ts := range m.Tables {
			body = append(body, ts.marshal()...)
		}
	case m.PartType == MultipartAggregate && m.Aggregate != nil:
		body = m.Aggregate.marshal()
	default:
		body = m.RawBody
	}
	b := make([]byte, 8+len(body))
	binary.BigEndian.PutUint16(b[0:2], m.PartType)
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	copy(b[8:], body)
	return b, nil
}

// UnmarshalBody implements Message.
func (m *MultipartReply) UnmarshalBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("multipart reply: %w", errTooShort)
	}
	m.PartType = binary.BigEndian.Uint16(b[0:2])
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	body := b[8:]
	switch m.PartType {
	case MultipartTable:
		tables, err := unmarshalTableStats(body)
		if err != nil {
			return err
		}
		m.Tables = tables
		return nil
	case MultipartAggregate:
		agg, err := unmarshalAggregateStats(body)
		if err != nil {
			return err
		}
		m.Aggregate = agg
		return nil
	case MultipartFlow:
		// Parsed below.
	default:
		m.RawBody = append([]byte(nil), body...)
		return nil
	}
	m.Flows = nil
	for len(body) > 0 {
		if len(body) < flowStatsFixedLen {
			return fmt.Errorf("flow stats entry: %w", errTooShort)
		}
		entryLen := int(binary.BigEndian.Uint16(body[0:2]))
		if entryLen < flowStatsFixedLen || entryLen > len(body) {
			return fmt.Errorf("flow stats entry: bad length %d", entryLen)
		}
		entry := body[:entryLen]
		body = body[entryLen:]
		match, n, err := unmarshalMatch(entry[flowStatsFixedLen:])
		if err != nil {
			return fmt.Errorf("flow stats entry: %w", err)
		}
		instrs, err := unmarshalInstructions(entry[flowStatsFixedLen+n:])
		if err != nil {
			return fmt.Errorf("flow stats entry: %w", err)
		}
		m.Flows = append(m.Flows, &FlowStatsEntry{
			TableID:      entry[2],
			DurationSec:  binary.BigEndian.Uint32(entry[4:8]),
			DurationNsec: binary.BigEndian.Uint32(entry[8:12]),
			Priority:     binary.BigEndian.Uint16(entry[12:14]),
			IdleTimeout:  binary.BigEndian.Uint16(entry[14:16]),
			HardTimeout:  binary.BigEndian.Uint16(entry[16:18]),
			Flags:        binary.BigEndian.Uint16(entry[18:20]),
			Cookie:       binary.BigEndian.Uint64(entry[24:32]),
			PacketCount:  binary.BigEndian.Uint64(entry[32:40]),
			ByteCount:    binary.BigEndian.Uint64(entry[40:48]),
			Match:        match,
			Instructions: instrs,
		})
	}
	return nil
}
