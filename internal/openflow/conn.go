package openflow

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Conn frames OpenFlow messages over a byte stream. Writes are safe for
// concurrent use; Recv must be called from a single goroutine.
type Conn struct {
	writeMu sync.Mutex
	rw      io.ReadWriter
	nextXID atomic.Uint32
}

// NewConn wraps a byte stream (typically a net.Conn or net.Pipe end).
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{rw: rw}
	c.nextXID.Store(1)
	return c
}

// Send writes m with a freshly allocated transaction id, which it returns.
func (c *Conn) Send(m Message) (uint32, error) {
	xid := c.nextXID.Add(1)
	return xid, c.SendXID(xid, m)
}

// SendXID writes m with the caller's transaction id (used for replies and
// for transparent proxying).
func (c *Conn) SendXID(xid uint32, m Message) error {
	b, err := Encode(xid, m)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.rw.Write(b); err != nil {
		return fmt.Errorf("send %v: %w", m.Type(), err)
	}
	return nil
}

// Recv reads the next message.
func (c *Conn) Recv() (uint32, Message, error) {
	return ReadMessage(c.rw)
}

// Close closes the underlying stream when it is an io.Closer.
func (c *Conn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Handshake performs the initiator side of OpenFlow connection setup:
// exchange HELLOs, then issue FEATURES_REQUEST and return the reply.
// It is used by controllers (and the DFI Proxy when fronting a controller).
func (c *Conn) Handshake() (*FeaturesReply, error) {
	if _, err := c.Send(&Hello{}); err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	// Expect the peer HELLO first.
	_, m, err := c.Recv()
	if err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	if _, ok := m.(*Hello); !ok {
		return nil, fmt.Errorf("handshake: expected HELLO, got %v", m.Type())
	}
	if _, err := c.Send(&FeaturesRequest{}); err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	for {
		_, m, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("handshake: %w", err)
		}
		switch v := m.(type) {
		case *FeaturesReply:
			return v, nil
		case *EchoRequest:
			if err := c.SendXID(0, &EchoReply{Data: v.Data}); err != nil {
				return nil, fmt.Errorf("handshake: %w", err)
			}
		default:
			// Ignore anything else (e.g. port status) until features.
		}
	}
}
