package openflow

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultFlushThreshold is the write-buffer size at which queued messages
// are flushed even without an explicit Flush: large enough to coalesce a
// burst into one write, small enough to bound relay-added latency.
const DefaultFlushThreshold = 32 << 10

// encBufPool recycles encode scratch buffers so Send/Queue encoding is
// zero-alloc at steady state. Buffers never escape: encoded bytes are
// written (or copied into the connection's write buffer) before Put.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Conn frames OpenFlow messages over a byte stream. Writes are safe for
// concurrent use; Recv and RecvFrame must be called from a single
// goroutine.
//
// Two write modes share one ordered stream: Send* encodes outside the
// write lock and writes through immediately (flushing anything queued
// first, so ordering is preserved); Queue*/QueueFrame append to a
// coalescing buffer that is written in one syscall on Flush or when it
// exceeds the flush threshold. The proxy relay queues and flushes on input
// idle, collapsing message bursts into single writes.
type Conn struct {
	writeMu sync.Mutex
	wbuf    []byte // coalescing write buffer, guarded by writeMu
	rw      io.ReadWriter
	br      *bufio.Reader
	nextXID atomic.Uint32
	flushAt int
}

// NewConn wraps a byte stream (typically a net.Conn or net.Pipe end).
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{
		rw:      rw,
		br:      bufio.NewReader(rw),
		flushAt: DefaultFlushThreshold,
	}
	c.nextXID.Store(1)
	return c
}

// NewWriterConn wraps a write side only: Send*/Queue*/Flush work as usual
// but no read buffer is allocated and Recv/RecvFrame return io.EOF. The
// event-loop relay uses this mode — reads happen in the poller's frame
// accumulator, not through the Conn, and skipping the bufio.Reader saves
// 4 KiB per connection at 10k-connection scale.
func NewWriterConn(w io.Writer) *Conn {
	c := &Conn{
		rw:      writerOnly{w},
		flushAt: DefaultFlushThreshold,
	}
	c.nextXID.Store(1)
	return c
}

// writerOnly adapts an io.Writer as the Conn's stream; reads report EOF.
type writerOnly struct{ w io.Writer }

func (w writerOnly) Write(p []byte) (int, error) { return w.w.Write(p) }
func (w writerOnly) Read([]byte) (int, error)    { return 0, io.EOF }

// Close forwards to the wrapped writer so Conn.Close still tears the
// stream down in writer-only mode.
func (w writerOnly) Close() error {
	if c, ok := w.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// SetFlushThreshold overrides the queued-bytes level that forces a flush
// (default DefaultFlushThreshold). Values < 1 flush on every queued
// message, degenerating to write-through.
func (c *Conn) SetFlushThreshold(n int) {
	c.writeMu.Lock()
	c.flushAt = n
	c.writeMu.Unlock()
}

// Send writes m with a freshly allocated transaction id, which it returns.
func (c *Conn) Send(m Message) (uint32, error) {
	xid := c.nextXID.Add(1)
	return xid, c.SendXID(xid, m)
}

// SendXID writes m with the caller's transaction id (used for replies and
// for transparent proxying). Encoding happens outside the write lock into
// a pooled buffer; the lock is held only for the write itself. Queued
// bytes are flushed ahead of m so stream order is preserved.
//
//dfi:hotpath
func (c *Conn) SendXID(xid uint32, m Message) error {
	bp := encBufPool.Get().(*[]byte)
	b, err := AppendMessage((*bp)[:0], xid, m)
	if err == nil {
		err = c.writeThrough(b)
		if err != nil {
			err = sendErr(m.Type(), err)
		}
	}
	*bp = b[:0]
	encBufPool.Put(bp)
	return err
}

// writeThrough writes b to the stream, draining any queued bytes first.
// When the queue is empty (the common case) b is written directly without
// an intermediate copy.
func (c *Conn) writeThrough(b []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if len(c.wbuf) > 0 {
		c.wbuf = appendBytes(c.wbuf, b)
		return c.flushLocked()
	}
	_, err := c.rw.Write(b)
	return err
}

// sendErr wraps a stream write failure off the annotated send path.
func sendErr(t MessageType, err error) error {
	return fmt.Errorf("send %v: %w", t, err)
}

// SendBatch encodes every message (with fresh transaction ids) into one
// buffer outside the lock and writes them in a single syscall.
func (c *Conn) SendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	bp := encBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	var err error
	for _, m := range msgs {
		b, err = AppendMessage(b, c.nextXID.Add(1), m)
		if err != nil {
			break
		}
	}
	if err == nil {
		if werr := c.writeThrough(b); werr != nil {
			err = sendErr(msgs[0].Type(), werr)
		}
	}
	*bp = b[:0]
	encBufPool.Put(bp)
	return err
}

// Queue appends m (with a fresh transaction id, returned) to the write
// buffer without writing, unless the buffer crosses the flush threshold.
func (c *Conn) Queue(m Message) (uint32, error) {
	xid := c.nextXID.Add(1)
	return xid, c.QueueXID(xid, m)
}

// QueueXID appends m with the caller's transaction id to the coalescing
// write buffer. The bytes reach the stream on the next Flush, the next
// Send*, or when the buffer crosses the flush threshold.
//
//dfi:hotpath
func (c *Conn) QueueXID(xid uint32, m Message) error {
	bp := encBufPool.Get().(*[]byte)
	b, err := AppendMessage((*bp)[:0], xid, m)
	if err == nil {
		err = c.queueBytes(b)
	}
	*bp = b[:0]
	encBufPool.Put(bp)
	return err
}

// QueueFrame appends a raw frame to the coalescing write buffer: the
// relay's zero-copy forward path (no encode at all).
//
//dfi:hotpath
func (c *Conn) QueueFrame(f *Frame) error {
	return c.queueBytes(f.Bytes())
}

func (c *Conn) queueBytes(b []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.wbuf = appendBytes(c.wbuf, b)
	if len(c.wbuf) >= c.flushAt {
		return c.flushLocked()
	}
	return nil
}

// Flush writes any queued bytes in one syscall.
func (c *Conn) Flush() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.flushLocked()
}

func (c *Conn) flushLocked() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.rw.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// Buffered returns the bytes queued for write but not yet flushed.
func (c *Conn) Buffered() int {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return len(c.wbuf)
}

// InputBuffered returns the bytes already read from the stream but not yet
// consumed: 0 means the next Recv/RecvFrame will block, which is the relay
// loops' idle signal for flushing coalesced output.
func (c *Conn) InputBuffered() int {
	if c.br == nil {
		return 0
	}
	return c.br.Buffered()
}

// Recv reads the next message, decoded.
func (c *Conn) Recv() (uint32, Message, error) {
	if c.br == nil {
		return 0, nil, io.EOF
	}
	return ReadMessage(c.br)
}

// RecvFrame reads the next message as a raw frame into f, reusing f's
// buffer. The frame is valid until the next RecvFrame into f.
//
//dfi:hotpath
func (c *Conn) RecvFrame(f *Frame) error {
	if c.br == nil {
		return io.EOF
	}
	return ReadFrame(c.br, f)
}

// Close flushes queued bytes (best effort) and closes the underlying
// stream when it is an io.Closer.
func (c *Conn) Close() error {
	_ = c.Flush()
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Handshake performs the initiator side of OpenFlow connection setup:
// exchange HELLOs, then issue FEATURES_REQUEST and return the reply.
// It is used by controllers (and the DFI Proxy when fronting a controller).
func (c *Conn) Handshake() (*FeaturesReply, error) {
	if _, err := c.Send(&Hello{}); err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	// Expect the peer HELLO first.
	_, m, err := c.Recv()
	if err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	if _, ok := m.(*Hello); !ok {
		return nil, fmt.Errorf("handshake: expected HELLO, got %v", m.Type())
	}
	if _, err := c.Send(&FeaturesRequest{}); err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	for {
		_, m, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("handshake: %w", err)
		}
		switch v := m.(type) {
		case *FeaturesReply:
			return v, nil
		case *EchoRequest:
			if err := c.SendXID(0, &EchoReply{Data: v.Data}); err != nil {
				return nil, fmt.Errorf("handshake: %w", err)
			}
		default:
			// Ignore anything else (e.g. port status) until features.
		}
	}
}
