package openflow

import (
	"encoding/binary"
	"fmt"
)

// TableStatsEntry is one ofp_table_stats record: per-table occupancy and
// lookup counters. The DFI Proxy hides table 0's row and shifts the rest.
type TableStatsEntry struct {
	TableID      uint8
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

const tableStatsLen = 24

func (t *TableStatsEntry) marshal() []byte {
	b := make([]byte, tableStatsLen)
	b[0] = t.TableID
	binary.BigEndian.PutUint32(b[4:8], t.ActiveCount)
	binary.BigEndian.PutUint64(b[8:16], t.LookupCount)
	binary.BigEndian.PutUint64(b[16:24], t.MatchedCount)
	return b
}

func unmarshalTableStats(b []byte) ([]*TableStatsEntry, error) {
	if len(b)%tableStatsLen != 0 {
		return nil, fmt.Errorf("table stats: %d bytes not a multiple of %d", len(b), tableStatsLen)
	}
	var out []*TableStatsEntry
	for off := 0; off < len(b); off += tableStatsLen {
		e := b[off : off+tableStatsLen]
		out = append(out, &TableStatsEntry{
			TableID:      e[0],
			ActiveCount:  binary.BigEndian.Uint32(e[4:8]),
			LookupCount:  binary.BigEndian.Uint64(e[8:16]),
			MatchedCount: binary.BigEndian.Uint64(e[16:24]),
		})
	}
	return out, nil
}

// AggregateStats is the body of an aggregate-flow-stats reply
// (ofp_aggregate_stats_reply).
type AggregateStats struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

const aggregateStatsLen = 24

func (a *AggregateStats) marshal() []byte {
	b := make([]byte, aggregateStatsLen)
	binary.BigEndian.PutUint64(b[0:8], a.PacketCount)
	binary.BigEndian.PutUint64(b[8:16], a.ByteCount)
	binary.BigEndian.PutUint32(b[16:20], a.FlowCount)
	return b
}

func unmarshalAggregateStats(b []byte) (*AggregateStats, error) {
	if len(b) < aggregateStatsLen {
		return nil, fmt.Errorf("aggregate stats: %w", errTooShort)
	}
	return &AggregateStats{
		PacketCount: binary.BigEndian.Uint64(b[0:8]),
		ByteCount:   binary.BigEndian.Uint64(b[8:16]),
		FlowCount:   binary.BigEndian.Uint32(b[16:20]),
	}, nil
}
